// rsp_cli — command-line front-end to the RSP-CGRA toolchain.
//
//   rsp_cli list                      kernels and architectures
//   rsp_cli map <kernel> <arch>       schedule + print the context grid
//   rsp_cli eval <kernel>             Tables-4/5-style row for one kernel
//   rsp_cli simulate <kernel> <arch>  run on the cycle simulator, verify
//   rsp_cli explore                   DSE over the full kernel domain
//   rsp_cli batch <requests.json>     serve eval/dse requests over the
//                                     parallel runtime, emit one JSON doc
//   rsp_cli rtl <arch>                emit structural Verilog to stdout
//   rsp_cli dot <kernel>              emit the body DFG in Graphviz format
//   rsp_cli vcd <kernel> <arch>       emit a VCD waveform to stdout
//   rsp_cli bitstream <kernel> <arch> report configuration bitstream size
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/bitstream.hpp"
#include "arch/presets.hpp"
#include "core/evaluator.hpp"
#include "core/report_json.hpp"
#include "dse/explorer.hpp"
#include "ir/dot.hpp"
#include "kernels/registry.hpp"
#include "rtl/generate.hpp"
#include "runtime/batch.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/pretty.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine.hpp"
#include "sim/vcd.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rsp;

arch::Architecture arch_by_name(const std::string& name, int rows, int cols) {
  for (const arch::Architecture& a : arch::standard_suite(rows, cols))
    if (a.name == name) return a;
  throw NotFoundError("unknown architecture '" + name +
                      "' (Base, RS#1..RS#4, RSP#1..RSP#4)");
}

sched::ConfigurationContext schedule_for(const kernels::Workload& w,
                                         const arch::Architecture& a) {
  const sched::LoopPipeliner mapper(w.array);
  const sched::ContextScheduler scheduler;
  sched::ConfigurationContext ctx =
      scheduler.schedule(mapper.map(w.kernel, w.hints, w.reduction), a);
  sched::require_legal(ctx);
  return ctx;
}

int cmd_list() {
  util::Table kernels_table({"Kernel", "Iterations", "Op set", "Array"});
  for (const kernels::Workload& w : kernels::full_catalogue())
    kernels_table.add_row({w.name, std::to_string(w.kernel.trip_count()),
                           w.kernel.op_set_string(),
                           std::to_string(w.array.rows) + "x" +
                               std::to_string(w.array.cols)});
  std::cout << kernels_table.render() << "\nArchitectures: ";
  for (const arch::Architecture& a : arch::standard_suite())
    std::cout << a.name << " ";
  std::cout << "\n";
  return 0;
}

int cmd_map(const std::string& kernel, const std::string& arch_name) {
  const kernels::Workload w = kernels::find_in_catalogue(kernel);
  const arch::Architecture a =
      arch_by_name(arch_name, w.array.rows, w.array.cols);
  const sched::ConfigurationContext ctx = schedule_for(w, a);
  std::cout << render_schedule(ctx) << "cycles: " << ctx.length()
            << ", peak mults/cycle: " << ctx.max_critical_issues_per_cycle()
            << "\n";
  return 0;
}

int cmd_eval(const std::string& kernel, bool as_json) {
  const kernels::Workload w = kernels::find_in_catalogue(kernel);
  const core::RspEvaluator evaluator;
  const sched::LoopPipeliner mapper(w.array);
  const auto rows = evaluator.evaluate_suite(
      mapper.map(w.kernel, w.hints, w.reduction),
      arch::standard_suite(w.array.rows, w.array.cols));
  if (as_json) {
    std::cout << core::to_json(w.name, rows).dump(true) << "\n";
    return 0;
  }
  util::Table table({"Arch", "cycles", "ET(ns)", "DR(%)", "stall"});
  table.set_title(w.name);
  for (const auto& r : rows)
    table.add_row({r.arch_name, std::to_string(r.cycles),
                   util::format_trimmed(r.execution_time_ns, 2),
                   util::format_trimmed(r.delay_reduction_percent, 2),
                   std::to_string(r.stalls)});
  std::cout << table.render();
  return 0;
}

int cmd_simulate(const std::string& kernel, const std::string& arch_name) {
  const kernels::Workload w = kernels::find_in_catalogue(kernel);
  const arch::Architecture a =
      arch_by_name(arch_name, w.array.rows, w.array.cols);
  const sched::ConfigurationContext ctx = schedule_for(w, a);
  ir::Memory mem, golden;
  w.setup(mem);
  w.setup(golden);
  const sim::SimResult result = sim::Machine().run(ctx, mem);
  w.golden(golden);
  std::cout << w.name << " on " << a.name << ": " << result.stats.cycles
            << " cycles, PE util "
            << util::format_trimmed(100 * result.stats.pe_utilization(), 1)
            << "%, result "
            << (mem == golden ? "matches golden" : "MISMATCH") << "\n";
  return mem == golden ? 0 : 1;
}

int cmd_explore() {
  dse::Explorer explorer((arch::ArraySpec()));
  const dse::ExplorationResult result =
      explorer.explore(kernels::paper_suite());
  const dse::Candidate& best = result.best();
  std::cout << "explored " << result.candidates.size()
            << " designs; selected " << best.point.label() << " (area "
            << util::format_trimmed(best.area_synthesized, 0) << ", time "
            << util::format_trimmed(best.exact_time_ns, 0) << " ns)\n";
  return 0;
}

int cmd_batch(const std::vector<std::string>& args) {
  std::string path;
  runtime::BatchOptions options;
  bool pretty = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--pretty") {
      pretty = true;
    } else if (args[i] == "--threads") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError("--threads requires a worker count");
      const std::string& count = args[++i];
      try {
        std::size_t parsed = 0;
        options.threads = std::stoi(count, &parsed);
        if (parsed != count.size()) throw std::invalid_argument(count);
      } catch (const std::exception&) {
        throw InvalidArgumentError("--threads: '" + count +
                                   "' is not a thread count");
      }
      if (options.threads < 1)
        throw InvalidArgumentError("--threads requires a positive count");
    } else if (!args[i].empty() && args[i][0] == '-') {
      throw InvalidArgumentError("unknown flag '" + args[i] +
                                 "' for batch (--threads N, --pretty)");
    } else if (path.empty()) {
      path = args[i];
    } else {
      throw InvalidArgumentError("batch takes exactly one requests file");
    }
  }
  if (path.empty())
    throw InvalidArgumentError("batch requires a <requests.json> file");

  std::ifstream file(path);
  if (!file) throw NotFoundError("cannot open requests file '" + path + "'");
  std::ostringstream text;
  text << file.rdbuf();

  const util::Json requests = util::Json::parse(text.str());
  std::cout << runtime::run_batch(requests, options).dump(pretty) << "\n";
  return 0;
}

int cmd_rtl(const std::string& arch_name) {
  std::cout << rtl::generate_verilog(arch_by_name(arch_name, 8, 8));
  return 0;
}

int cmd_dot(const std::string& kernel) {
  std::cout << ir::to_dot(kernels::find_in_catalogue(kernel).kernel);
  return 0;
}

int cmd_vcd(const std::string& kernel, const std::string& arch_name) {
  const kernels::Workload w = kernels::find_in_catalogue(kernel);
  const arch::Architecture a =
      arch_by_name(arch_name, w.array.rows, w.array.cols);
  const sched::ConfigurationContext ctx = schedule_for(w, a);
  ir::Memory mem;
  w.setup(mem);
  const sim::SimResult result = sim::Machine().run(ctx, mem);
  std::cout << sim::to_vcd(ctx, result);
  return 0;
}

int cmd_bitstream(const std::string& kernel, const std::string& arch_name) {
  const kernels::Workload w = kernels::find_in_catalogue(kernel);
  const arch::Architecture a =
      arch_by_name(arch_name, w.array.rows, w.array.cols);
  const sched::ConfigurationContext ctx = schedule_for(w, a);
  const arch::ConfigCache cache = ctx.encode();
  const auto bytes = arch::encode_bitstream(cache, a.sharing);
  std::cout << w.name << " on " << a.name << ": " << cache.summary() << ", "
            << bytes.size() << "-byte bitstream\n";
  return 0;
}

// Usage errors (no command, unknown command, missing arguments) print the
// synopsis to stderr and exit 1 so scripts and CI can detect misuse.
int usage() {
  std::cerr
      << "usage: rsp_cli <command> [args]\n"
         "  list | map <kernel> <arch> | eval <kernel> [--json] |\n"
         "  simulate <kernel> <arch> | explore |\n"
         "  batch <requests.json> [--threads N] [--pretty] | rtl <arch> |\n"
         "  dot <kernel> | vcd <kernel> <arch> | bitstream <kernel> <arch>\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) return usage();
    const std::string& cmd = args[0];
    // Exact arities: trailing junk ("map SAD RSP#4 --bogus") is a usage
    // error, not silently ignored — scripts must be able to trust rc.
    if (cmd == "list" && args.size() == 1) return cmd_list();
    if (cmd == "explore" && args.size() == 1) return cmd_explore();
    if (cmd == "batch") return cmd_batch(args);
    if (cmd == "eval" && args.size() >= 2) {
      bool as_json = false;
      for (std::size_t i = 2; i < args.size(); ++i) {
        if (args[i] != "--json")
          throw rsp::InvalidArgumentError("unknown flag '" + args[i] +
                                          "' for eval (only --json)");
        as_json = true;
      }
      return cmd_eval(args[1], as_json);
    }
    if (args.size() == 2) {
      if (cmd == "rtl") return cmd_rtl(args[1]);
      if (cmd == "dot") return cmd_dot(args[1]);
    }
    if (args.size() == 3) {
      if (cmd == "map") return cmd_map(args[1], args[2]);
      if (cmd == "simulate") return cmd_simulate(args[1], args[2]);
      if (cmd == "vcd") return cmd_vcd(args[1], args[2]);
      if (cmd == "bitstream") return cmd_bitstream(args[1], args[2]);
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
