// rsp_cli — command-line front-end to the RSP-CGRA toolchain.
//
//   rsp_cli list                      kernels and architectures
//   rsp_cli map <kernel> <arch>       schedule + print the context grid
//   rsp_cli eval <kernel>             Tables-4/5-style row for one kernel
//   rsp_cli simulate <kernel> <arch>  run on the cycle simulator, verify
//   rsp_cli explore                   DSE over the full kernel domain
//   rsp_cli rtl <arch>                emit structural Verilog to stdout
//   rsp_cli dot <kernel>              emit the body DFG in Graphviz format
//   rsp_cli vcd <kernel> <arch>       emit a VCD waveform to stdout
//   rsp_cli bitstream <kernel> <arch> report configuration bitstream size
#include <iostream>
#include <string>
#include <vector>

#include "arch/bitstream.hpp"
#include "arch/presets.hpp"
#include "core/evaluator.hpp"
#include "core/report_json.hpp"
#include "dse/explorer.hpp"
#include "ir/dot.hpp"
#include "kernels/h264.hpp"
#include "kernels/matmul.hpp"
#include "kernels/registry.hpp"
#include "rtl/generate.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/pretty.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine.hpp"
#include "sim/vcd.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rsp;

std::vector<kernels::Workload> all_workloads() {
  std::vector<kernels::Workload> all = kernels::paper_suite();
  for (kernels::Workload& w : kernels::h264_suite())
    all.push_back(std::move(w));
  all.push_back(kernels::make_matmul(4));
  return all;
}

kernels::Workload workload_by_name(const std::string& name) {
  for (kernels::Workload& w : all_workloads())
    if (w.name == name) return w;
  throw NotFoundError("unknown kernel '" + name +
                      "' (run `rsp_cli list` for the catalogue)");
}

arch::Architecture arch_by_name(const std::string& name, int rows, int cols) {
  for (const arch::Architecture& a : arch::standard_suite(rows, cols))
    if (a.name == name) return a;
  throw NotFoundError("unknown architecture '" + name +
                      "' (Base, RS#1..RS#4, RSP#1..RSP#4)");
}

sched::ConfigurationContext schedule_for(const kernels::Workload& w,
                                         const arch::Architecture& a) {
  const sched::LoopPipeliner mapper(w.array);
  const sched::ContextScheduler scheduler;
  sched::ConfigurationContext ctx =
      scheduler.schedule(mapper.map(w.kernel, w.hints, w.reduction), a);
  sched::require_legal(ctx);
  return ctx;
}

int cmd_list() {
  util::Table kernels_table({"Kernel", "Iterations", "Op set", "Array"});
  for (const kernels::Workload& w : all_workloads())
    kernels_table.add_row({w.name, std::to_string(w.kernel.trip_count()),
                           w.kernel.op_set_string(),
                           std::to_string(w.array.rows) + "x" +
                               std::to_string(w.array.cols)});
  std::cout << kernels_table.render() << "\nArchitectures: ";
  for (const arch::Architecture& a : arch::standard_suite())
    std::cout << a.name << " ";
  std::cout << "\n";
  return 0;
}

int cmd_map(const std::string& kernel, const std::string& arch_name) {
  const kernels::Workload w = workload_by_name(kernel);
  const arch::Architecture a =
      arch_by_name(arch_name, w.array.rows, w.array.cols);
  const sched::ConfigurationContext ctx = schedule_for(w, a);
  std::cout << render_schedule(ctx) << "cycles: " << ctx.length()
            << ", peak mults/cycle: " << ctx.max_critical_issues_per_cycle()
            << "\n";
  return 0;
}

int cmd_eval(const std::string& kernel, bool as_json) {
  const kernels::Workload w = workload_by_name(kernel);
  const core::RspEvaluator evaluator;
  const sched::LoopPipeliner mapper(w.array);
  const auto rows = evaluator.evaluate_suite(
      mapper.map(w.kernel, w.hints, w.reduction),
      arch::standard_suite(w.array.rows, w.array.cols));
  if (as_json) {
    std::cout << core::to_json(w.name, rows).dump(true) << "\n";
    return 0;
  }
  util::Table table({"Arch", "cycles", "ET(ns)", "DR(%)", "stall"});
  table.set_title(w.name);
  for (const auto& r : rows)
    table.add_row({r.arch_name, std::to_string(r.cycles),
                   util::format_trimmed(r.execution_time_ns, 2),
                   util::format_trimmed(r.delay_reduction_percent, 2),
                   std::to_string(r.stalls)});
  std::cout << table.render();
  return 0;
}

int cmd_simulate(const std::string& kernel, const std::string& arch_name) {
  const kernels::Workload w = workload_by_name(kernel);
  const arch::Architecture a =
      arch_by_name(arch_name, w.array.rows, w.array.cols);
  const sched::ConfigurationContext ctx = schedule_for(w, a);
  ir::Memory mem, golden;
  w.setup(mem);
  w.setup(golden);
  const sim::SimResult result = sim::Machine().run(ctx, mem);
  w.golden(golden);
  std::cout << w.name << " on " << a.name << ": " << result.stats.cycles
            << " cycles, PE util "
            << util::format_trimmed(100 * result.stats.pe_utilization(), 1)
            << "%, result "
            << (mem == golden ? "matches golden" : "MISMATCH") << "\n";
  return mem == golden ? 0 : 1;
}

int cmd_explore() {
  dse::Explorer explorer((arch::ArraySpec()));
  const dse::ExplorationResult result =
      explorer.explore(kernels::paper_suite());
  const dse::Candidate& best = result.best();
  std::cout << "explored " << result.candidates.size()
            << " designs; selected " << best.point.label() << " (area "
            << util::format_trimmed(best.area_synthesized, 0) << ", time "
            << util::format_trimmed(best.exact_time_ns, 0) << " ns)\n";
  return 0;
}

int cmd_rtl(const std::string& arch_name) {
  std::cout << rtl::generate_verilog(arch_by_name(arch_name, 8, 8));
  return 0;
}

int cmd_dot(const std::string& kernel) {
  std::cout << ir::to_dot(workload_by_name(kernel).kernel);
  return 0;
}

int cmd_vcd(const std::string& kernel, const std::string& arch_name) {
  const kernels::Workload w = workload_by_name(kernel);
  const arch::Architecture a =
      arch_by_name(arch_name, w.array.rows, w.array.cols);
  const sched::ConfigurationContext ctx = schedule_for(w, a);
  ir::Memory mem;
  w.setup(mem);
  const sim::SimResult result = sim::Machine().run(ctx, mem);
  std::cout << sim::to_vcd(ctx, result);
  return 0;
}

int cmd_bitstream(const std::string& kernel, const std::string& arch_name) {
  const kernels::Workload w = workload_by_name(kernel);
  const arch::Architecture a =
      arch_by_name(arch_name, w.array.rows, w.array.cols);
  const sched::ConfigurationContext ctx = schedule_for(w, a);
  const arch::ConfigCache cache = ctx.encode();
  const auto bytes = arch::encode_bitstream(cache, a.sharing);
  std::cout << w.name << " on " << a.name << ": " << cache.summary() << ", "
            << bytes.size() << "-byte bitstream\n";
  return 0;
}

// Usage errors (no command, unknown command, missing arguments) print the
// synopsis to stderr and exit 1 so scripts and CI can detect misuse.
int usage() {
  std::cerr
      << "usage: rsp_cli <command> [args]\n"
         "  list | map <kernel> <arch> | eval <kernel> [--json] |\n"
         "  simulate <kernel> <arch> | explore | rtl <arch> |\n"
         "  dot <kernel> | vcd <kernel> <arch> | bitstream <kernel> <arch>\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) return usage();
    const std::string& cmd = args[0];
    if (cmd == "list") return cmd_list();
    if (cmd == "explore") return cmd_explore();
    if (args.size() >= 2) {
      if (cmd == "eval")
        return cmd_eval(args[1], args.size() > 2 && args[2] == "--json");
      if (cmd == "rtl") return cmd_rtl(args[1]);
      if (cmd == "dot") return cmd_dot(args[1]);
    }
    if (args.size() >= 3) {
      if (cmd == "map") return cmd_map(args[1], args[2]);
      if (cmd == "simulate") return cmd_simulate(args[1], args[2]);
      if (cmd == "vcd") return cmd_vcd(args[1], args[2]);
      if (cmd == "bitstream") return cmd_bitstream(args[1], args[2]);
    }
    return usage();
  } catch (const rsp::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
