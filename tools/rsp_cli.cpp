// rsp_cli — command-line front-end to the RSP-CGRA toolchain.
//
// Every subcommand is a thin dispatcher over rsp::api::Service (the one
// façade all transports share — see src/api/service.hpp): the CLI parses
// arguments, builds a typed request, and renders the typed response as
// text. `batch` and `serve` speak the JSON wire protocol instead
// (docs/PROTOCOL.md): `batch` executes one v1 document, `serve` is the
// long-running mode streaming v2 NDJSON requests from stdin to stdout with
// out-of-order completion by id.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/context_json.hpp"
#include "analysis/verifier.hpp"
#include "api/protocol.hpp"
#include "api/serve.hpp"
#include "api/service.hpp"
#include "api/socket_server.hpp"
#include "core/report_json.hpp"
#include "dist/coordinator.hpp"
#include "gen/fuzz.hpp"
#include "gen/generator.hpp"
#include "ir/dot.hpp"
#include "sim/machine.hpp"
#include "util/fault.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rsp;

// Parses a strictly positive integer flag value ("--threads 4").
int positive_int_flag(const std::string& flag, const std::string& value) {
  int parsed_value = 0;
  try {
    std::size_t parsed = 0;
    parsed_value = std::stoi(value, &parsed);
    if (parsed != value.size()) throw std::invalid_argument(value);
  } catch (const std::exception&) {
    throw InvalidArgumentError(flag + ": '" + value + "' is not a count");
  }
  if (parsed_value < 1)
    throw InvalidArgumentError(flag + " requires a positive count");
  return parsed_value;
}

// Parses a non-negative integer flag value ("--trials 0" is allowed: a
// corpus-only fuzz replay runs zero random trials).
long nonnegative_int_flag(const std::string& flag, const std::string& value) {
  try {
    std::size_t parsed = 0;
    const long parsed_value = std::stol(value, &parsed);
    if (parsed != value.size() || parsed_value < 0)
      throw std::invalid_argument(value);
    return parsed_value;
  } catch (const std::exception&) {
    throw InvalidArgumentError(flag + ": '" + value +
                               "' is not a non-negative count");
  }
}

// Parses a 64-bit generator seed ("--seed 42"); decimal digits only.
std::uint64_t seed_flag(const std::string& flag, const std::string& value) {
  const std::optional<std::uint64_t> seed = gen::parse_gen_name("gen:" + value);
  if (!seed)
    throw InvalidArgumentError(flag + ": '" + value + "' is not a seed");
  return *seed;
}

// Parses a "--workers addr1,addr2,..." operand into listen addresses.
std::vector<api::ListenAddress> parse_worker_list(const std::string& value) {
  std::vector<api::ListenAddress> workers;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    const std::string spec = value.substr(start, end - start);
    if (spec.empty())
      throw InvalidArgumentError(
          "--workers requires a comma-separated list of addresses");
    workers.push_back(api::parse_listen_address(spec));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return workers;
}

int cmd_list(const api::Service& service) {
  const api::ListResponse resp = service.list({});
  util::Table kernels_table({"Kernel", "Iterations", "Op set", "Array"});
  for (const api::KernelInfo& info : resp.kernels)
    kernels_table.add_row({info.name, std::to_string(info.iterations),
                           info.op_set, info.array});
  std::cout << kernels_table.render() << "\nArchitectures: ";
  for (const std::string& name : resp.architectures) std::cout << name << " ";
  std::cout << "\n";
  return 0;
}

int cmd_map(const api::Service& service, const std::string& kernel,
            const std::string& arch) {
  const api::MapResponse resp = service.map({kernel, arch});
  std::cout << resp.schedule << "cycles: " << resp.cycles
            << ", peak mults/cycle: " << resp.peak_critical_issues << "\n";
  return 0;
}

int cmd_eval(const api::Service& service, const std::string& kernel,
             bool as_json) {
  const api::EvalResponse resp = service.eval({kernel});
  if (as_json) {
    std::cout << core::to_json(resp.kernel, resp.rows).dump(true) << "\n";
    return 0;
  }
  util::Table table({"Arch", "cycles", "ET(ns)", "DR(%)", "stall"});
  table.set_title(resp.kernel);
  for (const auto& r : resp.rows)
    table.add_row({r.arch_name, std::to_string(r.cycles),
                   util::format_trimmed(r.execution_time_ns, 2),
                   util::format_trimmed(r.delay_reduction_percent, 2),
                   std::to_string(r.stalls)});
  std::cout << table.render();
  return 0;
}

int cmd_simulate(const api::Service& service, const std::string& kernel,
                 const std::string& arch, sim::SimEngine engine) {
  const api::SimulateResponse resp = service.simulate({kernel, arch, engine});
  std::cout << resp.kernel << " on " << resp.arch << " (" << resp.engine
            << " engine): " << resp.cycles << " cycles, PE util "
            << util::format_trimmed(100 * resp.pe_utilization, 1)
            << "%, result "
            << (resp.matches_golden ? "matches golden" : "MISMATCH") << "\n";
  return resp.matches_golden ? 0 : 1;
}

// `explore` and its alias `dse` run the full Fig. 7 flow over the paper
// domain; --threads sizes the evaluation pool the prepare and exact-eval
// stages fan out on, while --workers farms the grid out to remote serve
// processes instead (dist::DseCoordinator) — same output, byte for byte.
int cmd_explore(const std::vector<std::string>& args) {
  api::ServiceOptions options;
  options.max_inflight = 1;
  bool saw_threads = false;
  bool local_fallback = true;
  std::vector<api::ListenAddress> workers;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--threads") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError("--threads requires a worker count");
      options.threads = positive_int_flag("--threads", args[++i]);
      saw_threads = true;
    } else if (args[i] == "--workers") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError(
            "--workers requires a comma-separated list of addresses");
      workers = parse_worker_list(args[++i]);
    } else if (args[i] == "--no-local-fallback") {
      local_fallback = false;
    } else {
      throw InvalidArgumentError(
          "unknown flag '" + args[i] + "' for " + args[0] +
          " (--threads N, --workers a,b,..., --no-local-fallback)");
    }
  }
  if (saw_threads && !workers.empty())
    throw InvalidArgumentError(
        "--threads and --workers are exclusive: the pool runs locally, the "
        "workers run the grid remotely");
  if (!local_fallback && workers.empty())
    throw InvalidArgumentError(
        "--no-local-fallback only applies with --workers (a local run has "
        "nothing to fall back from)");

  api::DseResponse resp;
  if (workers.empty()) {
    const api::Service service(options);
    resp = service.dse({});
  } else {
    dist::CoordinatorOptions coordinator_options;
    coordinator_options.local_fallback = local_fallback;
    dist::DseCoordinator coordinator(std::move(workers),
                                     coordinator_options);
    resp = coordinator.dse({});
  }
  const dse::Candidate& best = resp.result.best();
  std::cout << "explored " << resp.result.candidates.size()
            << " designs; selected " << best.point.label() << " (area "
            << util::format_trimmed(best.area_synthesized, 0) << ", time "
            << util::format_trimmed(best.exact_time_ns, 0) << " ns)\n";
  return 0;
}

int cmd_batch(const std::vector<std::string>& args) {
  std::string path;
  api::ServiceOptions options;
  bool pretty = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--pretty") {
      pretty = true;
    } else if (args[i] == "--threads") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError("--threads requires a worker count");
      options.threads = positive_int_flag("--threads", args[++i]);
    } else if (args[i] == "--cache-entries") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError("--cache-entries requires an entry count");
      options.cache_max_entries = static_cast<std::size_t>(
          positive_int_flag("--cache-entries", args[++i]));
    } else if (!args[i].empty() && args[i][0] == '-') {
      throw InvalidArgumentError(
          "unknown flag '" + args[i] +
          "' for batch (--threads N, --cache-entries N, --pretty)");
    } else if (path.empty()) {
      path = args[i];
    } else {
      throw InvalidArgumentError("batch takes exactly one requests file");
    }
  }
  if (path.empty())
    throw InvalidArgumentError("batch requires a <requests.json> file");

  std::ifstream file(path);
  if (!file) throw NotFoundError("cannot open requests file '" + path + "'");
  std::ostringstream text;
  text << file.rdbuf();

  const util::Json requests = util::Json::parse(text.str());
  // --threads is the user's concurrency bound: it caps the request-level
  // dispatch pool as well as the evaluation workers.
  options.max_inflight = options.threads;
  api::Service service(options);
  std::cout << api::run_v1_batch(requests, service).dump(pretty) << "\n";
  return 0;
}

int cmd_serve(const std::vector<std::string>& args) {
  api::ServiceOptions options;
  api::SocketServerOptions server_options;
  std::vector<api::ListenAddress> listen;
  std::vector<api::ListenAddress> workers;
  bool saw_max_connections = false;
  bool local_fallback = true;
  bool saw_local_fallback = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--workers") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError(
            "--workers requires a comma-separated list of addresses");
      workers = parse_worker_list(args[++i]);
    } else if (args[i] == "--threads") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError("--threads requires a worker count");
      options.threads = positive_int_flag("--threads", args[++i]);
    } else if (args[i] == "--max-inflight") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError("--max-inflight requires a request count");
      options.max_inflight = positive_int_flag("--max-inflight", args[++i]);
    } else if (args[i] == "--cache-entries") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError("--cache-entries requires an entry count");
      options.cache_max_entries = static_cast<std::size_t>(
          positive_int_flag("--cache-entries", args[++i]));
    } else if (args[i] == "--listen") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError(
            "--listen requires an address (<path> or <host:port>)");
      listen.push_back(api::parse_listen_address(args[++i]));
    } else if (args[i] == "--max-connections") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError(
            "--max-connections requires a connection count");
      server_options.max_connections =
          positive_int_flag("--max-connections", args[++i]);
      saw_max_connections = true;
    } else if (args[i] == "--fault-plan") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError(
            "--fault-plan requires a spec (e.g. at=2:drop,seed=7:count=3)");
      // Parse eagerly so a malformed plan fails the launch, not the run.
      server_options.serve.fault = std::make_shared<util::FaultInjector>(
          util::FaultPlan::parse(args[++i]));
    } else if (args[i] == "--no-local-fallback") {
      local_fallback = false;
      saw_local_fallback = true;
    } else {
      throw InvalidArgumentError(
          "unknown flag '" + args[i] +
          "' for serve (--threads N, --max-inflight N, --cache-entries N, "
          "--listen ADDR, --max-connections N, --workers a,b,..., "
          "--no-local-fallback, --fault-plan SPEC)");
    }
  }

  if (listen.empty() && saw_max_connections)
    throw InvalidArgumentError(
        "--max-connections only applies with --listen (the stdin/stdout "
        "pipe serves exactly one client)");
  if (saw_local_fallback && workers.empty())
    throw InvalidArgumentError(
        "--no-local-fallback only applies with --workers (a local run has "
        "nothing to fall back from)");

  api::Service service(options);
  // `--workers` turns this server into a distributed DSE front-end: dse
  // requests fan out to the worker fleet, everything else stays local,
  // and cache_stats grows a "dist" section with the fleet counters.
  std::unique_ptr<dist::DseCoordinator> coordinator;
  if (!workers.empty()) {
    dist::CoordinatorOptions coordinator_options;
    coordinator_options.local_fallback = local_fallback;
    coordinator = std::make_unique<dist::DseCoordinator>(
        std::move(workers), coordinator_options);
    service.set_dse_delegate([&coordinator](const api::DseRequest& request) {
      return coordinator->dse(request);
    });
    service.set_dist_extension(
        [&coordinator] { return coordinator->stats_json(); });
  }
  if (listen.empty()) {
    // Pipe transport: one client over stdin/stdout.
    const api::ServeResult result =
        api::serve(service, std::cin, std::cout, server_options.serve);
    if (!result.output_ok) {
      // Responses were lost to a dead output stream; the only channel left
      // for reporting it is stderr + the exit code.
      std::cerr << "error: output stream failed; responses were lost\n";
      return 1;
    }
    return 0;
  }

  // Socket transport: all connections share this one service (pools +
  // caches); logs go to stderr. Stdout carries exactly one machine-
  // parseable "READY <resolved-addr>" line per listener (ephemeral ports
  // resolved) so scripts and coordinators can wait for the bind without
  // connect-polling.
  api::SocketServer server(service, listen, server_options);
  service.set_stats_extension([&server] { return server.stats_json(); });
  server.install_signal_handlers();
  for (const api::ListenAddress& address : server.addresses()) {
    std::cerr << "listening on " << address.spec() << "\n";
    std::cout << "READY " << address.spec() << "\n" << std::flush;
  }
  server.run();
  const api::SocketServerStats stats = server.stats();
  std::cerr << "shutdown complete: " << stats.accepted << " connection(s), "
            << stats.requests << " request(s), " << stats.errors
            << " error response(s)\n";
  return 0;
}

// Client side of `serve --listen`: pipes stdin lines to the socket and
// response lines to stdout, exiting when the server finishes the stream.
// `--retry N` waits through up to N refused attempts (backoff between
// tries) — off by default so a typo'd address still fails fast.
int cmd_connect(const std::vector<std::string>& args) {
  std::string address;
  api::ConnectOptions connect;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--retry") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError("--retry requires an attempt count");
      connect.attempts = positive_int_flag("--retry", args[++i]);
    } else if (!args[i].empty() && args[i][0] == '-') {
      throw InvalidArgumentError("unknown flag '" + args[i] +
                                 "' for connect (--retry N)");
    } else if (address.empty()) {
      address = args[i];
    } else {
      throw InvalidArgumentError(
          "connect takes exactly one address (<path> or <host:port>)");
    }
  }
  if (address.empty())
    throw InvalidArgumentError(
        "connect takes exactly one address (<path> or <host:port>)");
  return api::run_socket_client(api::parse_listen_address(address), std::cin,
                                std::cout, connect);
}

// `worker` is the fleet-facing spelling of `serve --listen`: the address
// is positional (a worker always listens somewhere) and every remaining
// serve flag passes through unchanged.
int cmd_worker(const std::vector<std::string>& args) {
  if (args.size() < 2 || (!args[1].empty() && args[1][0] == '-'))
    throw InvalidArgumentError(
        "worker requires an address first (<path> or <host:port>), then "
        "serve flags");
  std::vector<std::string> serve_args = {"serve", "--listen", args[1]};
  serve_args.insert(serve_args.end(), args.begin() + 2, args.end());
  return cmd_serve(serve_args);
}

// `gen` materialises one seeded random kernel, prints its shape, and
// self-checks it through the differential harness (the same checks `fuzz`
// runs per trial), so a printed seed is known-good before it is shared.
int cmd_gen(const std::vector<std::string>& args) {
  std::optional<std::uint64_t> seed;
  bool dump = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--seed") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError("--seed requires a value");
      seed = seed_flag("--seed", args[++i]);
    } else if (args[i] == "--dump") {
      dump = true;
    } else {
      throw InvalidArgumentError("unknown flag '" + args[i] +
                                 "' for gen (--seed N, --dump)");
    }
  }
  if (!seed) throw InvalidArgumentError("gen requires --seed N");

  gen::GeneratorConfig config;
  config.seed = *seed;
  const kernels::Workload w = gen::generate_workload(config);
  std::cout << w.name << ": " << w.kernel.body().size() << " body ops ("
            << w.kernel.op_set_string() << "), " << w.kernel.trip_count()
            << " iterations, " << w.array.rows << "x" << w.array.cols
            << " array\n"
            << "hints: lanes " << w.hints.lanes << ", stagger "
            << w.hints.stagger << ", columns " << w.hints.columns
            << ", row-bands " << (w.hints.cycle_row_bands ? "on" : "off")
            << "\n";
  if (w.reduction.enabled())
    std::cout << "reduction: all -> " << w.reduction.array << "["
              << w.reduction.index0 << "]\n";
  ir::Memory memory;
  w.setup(memory);
  std::cout << "arrays:";
  for (const std::string& array : memory.names())
    std::cout << " " << array << "[" << memory.size(array) << "]";
  std::cout << "\n";

  const gen::FuzzReport report = gen::fuzz_one(*seed);
  if (!report.ok) {
    std::cerr << "self-check FAILED: " << report.detail << "\n";
    return 1;
  }
  std::cout << "self-check: OK (dense == event == interpreter)\n";
  if (dump) std::cout << ir::to_dot(w.kernel);
  return 0;
}

// `fuzz` is the differential harness: corpus replay (when --corpus is
// given) plus N random trials with seeds S, S+1, ... — any divergence
// prints the reproducing seed and exits nonzero. --save-failures writes one
// seed file per failure (CI uploads that directory as an artifact).
int cmd_fuzz(const std::vector<std::string>& args) {
  std::optional<long> trials;
  std::uint64_t base_seed = 1;
  std::string corpus;
  std::string save_dir;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--trials") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError("--trials requires a count");
      trials = nonnegative_int_flag("--trials", args[++i]);
    } else if (args[i] == "--seed") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError("--seed requires a value");
      base_seed = seed_flag("--seed", args[++i]);
    } else if (args[i] == "--corpus") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError("--corpus requires a file or directory");
      corpus = args[++i];
    } else if (args[i] == "--save-failures") {
      if (i + 1 >= args.size())
        throw InvalidArgumentError("--save-failures requires a directory");
      save_dir = args[++i];
    } else {
      throw InvalidArgumentError(
          "unknown flag '" + args[i] +
          "' for fuzz (--trials N, --seed S, --corpus PATH, --save-failures "
          "DIR)");
    }
  }
  if (!trials)
    throw InvalidArgumentError(
        "fuzz requires --trials N (0 runs the corpus replay only)");

  std::vector<gen::FuzzReport> failures;
  std::size_t corpus_count = 0;
  if (!corpus.empty()) {
    const std::vector<std::uint64_t> seeds = gen::load_corpus(corpus);
    corpus_count = seeds.size();
    gen::FuzzOptions replay;
    replay.full_suite = true;  // regression seeds are cheap; check everything
    for (const std::uint64_t seed : seeds) {
      const gen::FuzzReport report = gen::fuzz_one(seed, replay);
      if (!report.ok) failures.push_back(report);
    }
  }

  long done = 0;
  const gen::FuzzSummary summary = gen::fuzz_many(
      base_seed, *trials, {}, [&](const gen::FuzzReport&) {
        if (++done % 100 == 0)
          std::cerr << "fuzz: " << done << "/" << *trials << " trials\n";
      });
  failures.insert(failures.end(), summary.failures.begin(),
                  summary.failures.end());
  if (*trials > 0) {
    const gen::FuzzReport smoke = gen::service_smoke(base_seed);
    if (!smoke.ok) failures.push_back(smoke);
  }

  if (failures.empty()) {
    std::cout << "fuzz: " << corpus_count << " corpus seed(s) + " << *trials
              << " random trial(s) passed (base seed " << base_seed << ")\n";
    return 0;
  }
  if (!save_dir.empty()) {
    std::filesystem::create_directories(save_dir);
    for (const gen::FuzzReport& f : failures) {
      std::ofstream file(save_dir + "/seed_" + std::to_string(f.seed) +
                         ".txt");
      file << f.seed << "  # " << f.detail << "\n";
    }
  }
  for (const gen::FuzzReport& f : failures)
    std::cerr << "FAIL " << f.detail << "\n  reproduce: rsp_cli fuzz "
              << "--trials 1 --seed " << f.seed << "\n";
  std::cerr << "fuzz: " << failures.size() << " failure(s)\n";
  return 1;
}

int cmd_rtl(const api::Service& service, const std::string& arch) {
  std::cout << service.rtl({arch}).verilog;
  return 0;
}

int cmd_dot(const api::Service& service, const std::string& kernel) {
  std::cout << service.dot({kernel}).dot;
  return 0;
}

int cmd_vcd(const api::Service& service, const std::string& kernel,
            const std::string& arch) {
  std::cout << service.vcd({kernel, arch}).vcd;
  return 0;
}

int cmd_bitstream(const api::Service& service, const std::string& kernel,
                  const std::string& arch) {
  const api::BitstreamResponse resp = service.bitstream({kernel, arch});
  std::cout << resp.kernel << " on " << resp.arch << ": " << resp.summary
            << ", " << resp.bytes << "-byte bitstream\n";
  return 0;
}

// Static lint: either a catalogue kernel scheduled through the service
// (`--kernel`/`--arch`, both optional — empty means "everything"), or a
// serialized schedule document (`--context FILE`,
// src/analysis/context_json.hpp) that never has to be constructible, so
// fuzz repros and hand-written illegal schedules lint too. Error findings
// print to stderr (rule id first) and the exit code is 1 whenever any
// error-severity diagnostic fired; warnings alone keep exit 0.
int cmd_lint(const std::vector<std::string>& args) {
  std::string kernel, arch, context_file;
  bool as_json = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& flag = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size())
        throw rsp::InvalidArgumentError(flag + " requires a value");
      return args[++i];
    };
    if (flag == "--kernel") {
      kernel = value();
    } else if (flag == "--arch") {
      arch = value();
    } else if (flag == "--context") {
      context_file = value();
    } else if (flag == "--json") {
      as_json = true;
    } else {
      throw rsp::InvalidArgumentError(
          "unknown flag '" + flag +
          "' for lint (--kernel K, --arch A, --context FILE, --json)");
    }
  }

  api::LintResponse resp;
  if (!context_file.empty()) {
    if (!kernel.empty() || !arch.empty())
      throw rsp::InvalidArgumentError(
          "--context lints a schedule document; it excludes --kernel/--arch");
    std::ifstream in(context_file);
    if (!in)
      throw rsp::InvalidArgumentError("cannot open '" + context_file + "'");
    std::ostringstream text;
    text << in.rdbuf();
    const analysis::ScheduleDocument doc =
        analysis::parse_schedule(text.str());
    api::LintResponse::Row row;
    row.kernel = context_file;
    row.arch = doc.architecture.name;
    row.report = analysis::lint_schedule(doc.architecture, doc.ops);
    resp.rows.push_back(std::move(row));
  } else {
    api::ServiceOptions options;
    options.threads = 1;
    options.max_inflight = 1;
    resp = api::Service(options).lint({kernel, arch});
  }

  if (as_json) {
    std::cout << api::to_body(resp).dump() << "\n";
  } else {
    for (const api::LintResponse::Row& row : resp.rows) {
      for (const analysis::Diagnostic& d : row.report.diagnostics) {
        std::ostream& out =
            d.severity == analysis::Severity::kError ? std::cerr : std::cout;
        out << d.rule << " " << analysis::severity_name(d.severity) << " ["
            << row.kernel << " on " << row.arch << "]: " << d.message;
        if (d.locus.op >= 0) out << " (op " << d.locus.op << ")";
        out << "\n    hint: " << d.hint << "\n";
      }
    }
    std::cout << "linted " << resp.rows.size() << " configuration"
              << (resp.rows.size() == 1 ? "" : "s") << ": "
              << resp.error_count() << " errors, " << resp.warning_count()
              << " warnings\n";
  }
  return resp.clean() ? 0 : 1;
}

// Usage errors (no command, unknown command, missing arguments) print the
// synopsis to stderr and exit 1 so scripts and CI can detect misuse. Every
// subcommand and flag is enumerated here; tools/rsp_cli.cpp and
// docs/PROTOCOL.md must stay in sync with this list.
int usage() {
  std::cerr
      << "usage: rsp_cli <command> [args]\n"
         "  list                              kernels and architectures\n"
         "  map <kernel> <arch>               schedule + print the context "
         "grid\n"
         "  eval <kernel> [--json]            Tables-4/5-style row for one "
         "kernel\n"
         "  simulate <kernel> <arch> [--engine dense|event]\n"
         "                                    run on the cycle simulator, "
         "verify\n"
         "  explore|dse [--threads N | --workers a,b,...] "
         "[--no-local-fallback]\n"
         "                                    DSE over the full kernel "
         "domain, locally\n"
         "                                    or sharded across serve "
         "workers; lost\n"
         "                                    workers are re-admitted, and "
         "a lost fleet\n"
         "                                    finishes locally unless "
         "opted out\n"
         "  batch <requests.json> [--threads N] [--cache-entries N] "
         "[--pretty]\n"
         "                                    run a v1 batch document over "
         "the service\n"
         "  serve [--threads N] [--max-inflight N] [--cache-entries N]\n"
         "        [--listen <path|host:port>]... [--max-connections N]\n"
         "        [--workers a,b,...] [--no-local-fallback]\n"
         "        [--fault-plan SPEC]\n"
         "                                    stream v2 NDJSON requests "
         "stdin->stdout,\n"
         "                                    or serve concurrent socket "
         "clients;\n"
         "                                    --workers delegates dse to a "
         "fleet;\n"
         "                                    --fault-plan injects scripted "
         "transport\n"
         "                                    faults (docs/DISTRIBUTED.md) "
         "for chaos\n"
         "                                    tests\n"
         "  worker <path|host:port> [serve flags]\n"
         "                                    run a DSE worker (= serve "
         "--listen ADDR)\n"
         "  connect <path|host:port> [--retry N]\n"
         "                                    pipe stdin/stdout to a serve "
         "--listen socket\n"
         "  gen --seed N [--dump]             print (and self-check) the "
         "seeded\n"
         "                                    random kernel gen:N; --dump "
         "adds DOT\n"
         "  fuzz --trials N [--seed S] [--corpus PATH] [--save-failures "
         "DIR]\n"
         "                                    differential fuzz: dense == "
         "event ==\n"
         "                                    interpreter on generated "
         "kernels;\n"
         "                                    nonzero exit prints the "
         "reproducing seed\n"
         "  lint [--kernel K] [--arch A] [--context FILE] [--json]\n"
         "                                    static schedule verification "
         "(rule ids,\n"
         "                                    docs/ANALYSIS.md); no flags "
         "lint the full\n"
         "                                    catalogue, --context lints a "
         "schedule\n"
         "                                    document; exit 1 on any error "
         "finding\n"
         "  rtl <arch>                        emit structural Verilog to "
         "stdout\n"
         "  dot <kernel>                      emit the body DFG in Graphviz "
         "format\n"
         "  vcd <kernel> <arch>               emit a VCD waveform to stdout\n"
         "  bitstream <kernel> <arch>         report configuration bitstream "
         "size\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) return usage();
    const std::string& cmd = args[0];
    // batch/serve parse their own flags; everything else has exact arity —
    // trailing junk ("map SAD RSP#4 --bogus") is a usage error, not
    // silently ignored, so scripts can trust the exit code.
    if (cmd == "batch") return cmd_batch(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "worker") return cmd_worker(args);
    if (cmd == "connect") return cmd_connect(args);
    if (cmd == "explore" || cmd == "dse") return cmd_explore(args);
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "fuzz") return cmd_fuzz(args);
    if (cmd == "lint") return cmd_lint(args);

    // One service per invocation, always with a single dispatch thread —
    // the CLI runs exactly one request, so only eval/explore's inner
    // fan-out benefits from hardware-sized worker pools; the single-shot
    // commands run one measurement and keep the workers at one thread too.
    const auto one_shot_service = [](int threads) {
      api::ServiceOptions options;
      options.threads = threads;
      options.max_inflight = 1;
      return api::Service(options);
    };
    const auto light_service = [&] { return one_shot_service(1); };
    if (cmd == "list" && args.size() == 1) return cmd_list(light_service());
    if (cmd == "eval" && args.size() >= 2) {
      bool as_json = false;
      for (std::size_t i = 2; i < args.size(); ++i) {
        if (args[i] != "--json")
          throw rsp::InvalidArgumentError("unknown flag '" + args[i] +
                                          "' for eval (only --json)");
        as_json = true;
      }
      return cmd_eval(one_shot_service(0), args[1], as_json);
    }
    if (args.size() == 2) {
      if (cmd == "rtl") return cmd_rtl(light_service(), args[1]);
      if (cmd == "dot") return cmd_dot(light_service(), args[1]);
    }
    if (cmd == "simulate" && args.size() >= 3) {
      sim::SimEngine engine = sim::SimEngine::kEvent;
      for (std::size_t i = 3; i < args.size(); ++i) {
        if (args[i] == "--engine") {
          if (i + 1 >= args.size())
            throw rsp::InvalidArgumentError(
                "--engine requires 'dense' or 'event'");
          engine = sim::parse_sim_engine(args[++i]);
        } else {
          throw rsp::InvalidArgumentError(
              "unknown flag '" + args[i] +
              "' for simulate (--engine dense|event)");
        }
      }
      return cmd_simulate(light_service(), args[1], args[2], engine);
    }
    if (args.size() == 3) {
      if (cmd == "map") return cmd_map(light_service(), args[1], args[2]);
      if (cmd == "vcd") return cmd_vcd(light_service(), args[1], args[2]);
      if (cmd == "bitstream")
        return cmd_bitstream(light_service(), args[1], args[2]);
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
