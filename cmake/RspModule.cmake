# rsp_add_module(<name> SOURCES <files...> [DEPS <rsp::targets...>])
#
# Declares the static library `rsp_<name>` (alias `rsp::<name>`) for one
# subsystem under src/. Include paths are rooted at src/ so headers are
# addressed as "subsystem/header.hpp" everywhere, and dependencies are PUBLIC
# because module headers include their dependencies' headers.
function(rsp_add_module name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  if(NOT ARG_SOURCES)
    message(FATAL_ERROR "rsp_add_module(${name}) called without SOURCES")
  endif()
  add_library(rsp_${name} STATIC ${ARG_SOURCES})
  add_library(rsp::${name} ALIAS rsp_${name})
  target_include_directories(rsp_${name} PUBLIC ${PROJECT_SOURCE_DIR}/src)
  target_link_libraries(rsp_${name} PUBLIC rsp::build_flags ${ARG_DEPS})
endfunction()
