// The legality checker must catch every class of violation; these tests
// build small illegal contexts by hand and check the precise diagnosis.
#include <gtest/gtest.h>

#include "sched/legality.hpp"
#include "util/error.hpp"

namespace rsp::sched {
namespace {

ScheduledOp make_op(ir::OpKind kind, arch::PeCoord pe, int cycle,
                    int latency = 1) {
  ScheduledOp op;
  op.kind = kind;
  op.pe = pe;
  op.cycle = cycle;
  op.latency = latency;
  if (ir::is_memory_op(kind)) {
    op.array = "x";
    op.address = 0;
  }
  if (ir::op_arity(kind) >= 1) op.operands.resize(ir::op_arity(kind));
  return op;
}

TEST(Legality, AcceptsMinimalLegalContext) {
  const arch::Architecture a = arch::base_architecture();
  std::vector<ScheduledOp> ops;
  ops.push_back(make_op(ir::OpKind::kLoad, {0, 0}, 0));
  auto add = make_op(ir::OpKind::kAbs, {0, 0}, 1);
  add.operands[0] = ProgOperand{0, 0};
  ops.push_back(add);
  const ConfigurationContext ctx(a, ops);
  EXPECT_TRUE(check_legality(ctx).ok);
  EXPECT_NO_THROW(require_legal(ctx));
}

TEST(Legality, CatchesUseBeforeReady) {
  const arch::Architecture a = arch::base_architecture();
  std::vector<ScheduledOp> ops;
  ops.push_back(make_op(ir::OpKind::kLoad, {0, 0}, 3));
  auto abs = make_op(ir::OpKind::kAbs, {0, 1}, 3);  // same cycle as producer
  abs.operands[0] = ProgOperand{0, 0};
  ops.push_back(abs);
  const LegalityReport rep = check_legality(ConfigurationContext(a, ops));
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.violations.front().find("before its result"),
            std::string::npos);
  EXPECT_THROW(require_legal(ConfigurationContext(a, ops)), Error);
}

TEST(Legality, CatchesPeDoubleBooking) {
  const arch::Architecture a = arch::base_architecture();
  std::vector<ScheduledOp> ops;
  ops.push_back(make_op(ir::OpKind::kConst, {2, 2}, 5));
  ops.push_back(make_op(ir::OpKind::kConst, {2, 2}, 5));
  const LegalityReport rep = check_legality(ConfigurationContext(a, ops));
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.violations.front().find("share a PE"), std::string::npos);
}

TEST(Legality, CatchesPipelinedPeOverlap) {
  // On RSP, a mult occupies its PE for both stages; an op in the second
  // stage cycle collides.
  const arch::Architecture a = arch::rsp_architecture(1);
  std::vector<ScheduledOp> ops;
  auto mult = make_op(ir::OpKind::kMult, {0, 0}, 0, 2);
  mult.operands = {ProgOperand{}, ProgOperand{}};
  mult.unit = arch::SharedUnitId{arch::SharedUnitId::Pool::kRow, 0, 0};
  ops.push_back(mult);
  ops.push_back(make_op(ir::OpKind::kConst, {0, 0}, 1));
  const LegalityReport rep = check_legality(ConfigurationContext(a, ops));
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.violations.front().find("share a PE"), std::string::npos);
}

TEST(Legality, CatchesReadBusOversubscription) {
  const arch::Architecture a = arch::base_architecture();  // 2 read buses
  std::vector<ScheduledOp> ops;
  for (int c = 0; c < 3; ++c)
    ops.push_back(make_op(ir::OpKind::kLoad, {4, c}, 7));
  const LegalityReport rep = check_legality(ConfigurationContext(a, ops));
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.violations.front().find("loads"), std::string::npos);
}

TEST(Legality, CatchesWriteBusOversubscription) {
  const arch::Architecture a = arch::base_architecture();  // 1 write bus
  std::vector<ScheduledOp> ops;
  ops.push_back(make_op(ir::OpKind::kConst, {1, 0}, 0));
  ops.push_back(make_op(ir::OpKind::kConst, {1, 1}, 0));
  for (int c = 0; c < 2; ++c) {
    auto st = make_op(ir::OpKind::kStore, {1, c}, 2);
    st.operands[0] = ProgOperand{c, 0};
    ops.push_back(st);
  }
  const LegalityReport rep = check_legality(ConfigurationContext(a, ops));
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.violations.front().find("stores"), std::string::npos);
}

TEST(Legality, CatchesMissingUnitOnSharingArchitecture) {
  const arch::Architecture a = arch::rs_architecture(1);
  std::vector<ScheduledOp> ops;
  auto mult = make_op(ir::OpKind::kMult, {0, 0}, 0);
  mult.operands = {ProgOperand{}, ProgOperand{}};
  ops.push_back(mult);  // no unit assigned
  const LegalityReport rep = check_legality(ConfigurationContext(a, ops));
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.violations.front().find("without a shared unit"),
            std::string::npos);
}

TEST(Legality, CatchesUnreachableUnit) {
  const arch::Architecture a = arch::rs_architecture(1);  // row pools only
  std::vector<ScheduledOp> ops;
  auto mult = make_op(ir::OpKind::kMult, {0, 0}, 0);
  mult.operands = {ProgOperand{}, ProgOperand{}};
  mult.unit = arch::SharedUnitId{arch::SharedUnitId::Pool::kRow, 5, 0};
  ops.push_back(mult);  // row 5's unit from a row 0 PE
  const LegalityReport rep = check_legality(ConfigurationContext(a, ops));
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.violations.front().find("unreachable"), std::string::npos);
}

TEST(Legality, CatchesUnitDoubleIssue) {
  const arch::Architecture a = arch::rs_architecture(1);
  std::vector<ScheduledOp> ops;
  for (int c = 0; c < 2; ++c) {
    auto mult = make_op(ir::OpKind::kMult, {0, c}, 0);
    mult.operands = {ProgOperand{}, ProgOperand{}};
    mult.unit = arch::SharedUnitId{arch::SharedUnitId::Pool::kRow, 0, 0};
    ops.push_back(mult);
  }
  const LegalityReport rep = check_legality(ConfigurationContext(a, ops));
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.violations.front().find("two issues"), std::string::npos);
}

TEST(Legality, CatchesUnitOnNonSharingArchitecture) {
  const arch::Architecture a = arch::base_architecture();
  std::vector<ScheduledOp> ops;
  auto mult = make_op(ir::OpKind::kMult, {0, 0}, 0);
  mult.operands = {ProgOperand{}, ProgOperand{}};
  mult.unit = arch::SharedUnitId{arch::SharedUnitId::Pool::kRow, 0, 0};
  ops.push_back(mult);
  const LegalityReport rep = check_legality(ConfigurationContext(a, ops));
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.violations.front().find("shares nothing"), std::string::npos);
}

TEST(Legality, CatchesWrongLatency) {
  const arch::Architecture a = arch::rsp_architecture(1);
  std::vector<ScheduledOp> ops;
  auto mult = make_op(ir::OpKind::kMult, {0, 0}, 0, /*latency=*/1);  // must be 2
  mult.operands = {ProgOperand{}, ProgOperand{}};
  mult.unit = arch::SharedUnitId{arch::SharedUnitId::Pool::kRow, 0, 0};
  ops.push_back(mult);
  const LegalityReport rep = check_legality(ConfigurationContext(a, ops));
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.violations.front().find("latency"), std::string::npos);
}

TEST(Legality, CatchesUnroutableOperand) {
  const arch::Architecture a = arch::base_architecture();
  std::vector<ScheduledOp> ops;
  ops.push_back(make_op(ir::OpKind::kConst, {0, 0}, 0));
  auto abs = make_op(ir::OpKind::kAbs, {3, 5}, 2);  // diagonal, >1 hop
  abs.operands[0] = ProgOperand{0, 0};
  ops.push_back(abs);
  const LegalityReport rep = check_legality(ConfigurationContext(a, ops));
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.violations.front().find("route"), std::string::npos);
}

TEST(Legality, CatchesMemoryOrderingViolation) {
  const arch::Architecture a = arch::base_architecture();
  std::vector<ScheduledOp> ops;
  ops.push_back(make_op(ir::OpKind::kConst, {0, 0}, 0));
  auto st = make_op(ir::OpKind::kStore, {0, 0}, 2);
  st.operands[0] = ProgOperand{0, 0};
  ops.push_back(st);
  auto ld = make_op(ir::OpKind::kLoad, {0, 1}, 2);  // same cycle as store
  ld.order_deps = {1};
  ops.push_back(ld);
  const LegalityReport rep = check_legality(ConfigurationContext(a, ops));
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.violations.front().find("memory ordering"),
            std::string::npos);
}

TEST(Legality, ContextRejectsNegativeCycleOrLatency) {
  const arch::Architecture a = arch::base_architecture();
  std::vector<ScheduledOp> bad_cycle = {make_op(ir::OpKind::kConst, {0, 0}, -1)};
  EXPECT_THROW(ConfigurationContext(a, bad_cycle), InvalidArgumentError);
  std::vector<ScheduledOp> bad_lat = {
      make_op(ir::OpKind::kConst, {0, 0}, 0, 0)};
  EXPECT_THROW(ConfigurationContext(a, bad_lat), InvalidArgumentError);
}

TEST(Legality, ReportAggregatesMultipleViolations) {
  const arch::Architecture a = arch::base_architecture();
  std::vector<ScheduledOp> ops;
  ops.push_back(make_op(ir::OpKind::kConst, {0, 0}, 0));
  ops.push_back(make_op(ir::OpKind::kConst, {0, 0}, 0));  // PE clash
  for (int c = 0; c < 3; ++c)
    ops.push_back(make_op(ir::OpKind::kLoad, {1, c}, 0));  // bus clash
  const LegalityReport rep = check_legality(ConfigurationContext(a, ops));
  ASSERT_FALSE(rep.ok);
  EXPECT_GE(rep.violations.size(), 2u);
}

}  // namespace
}  // namespace rsp::sched
