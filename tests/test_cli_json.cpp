// End-to-end coverage for the CLI JSON report path: runs the real rsp_cli
// binary (path injected by the build as RSP_CLI_BINARY), parses its stdout
// back through util/json, and asserts the report schema round-trips.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <map>
#include <sstream>
#include <string>

#include "util/json.hpp"

namespace rsp {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string stdout_text;
};

CliResult run_shell(const std::string& command) {
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) throw std::runtime_error("popen failed: " + command);
  CliResult result;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0)
    result.stdout_text.append(buffer, n);
  const int status = pclose(pipe);
  result.exit_code = (status >= 0 && WIFEXITED(status))
                         ? WEXITSTATUS(status)
                         : -1;
  return result;
}

CliResult run_cli(const std::string& args) {
  return run_shell(std::string(RSP_CLI_BINARY) + " " + args);
}

TEST(CliJson, EvalJsonParsesBack) {
  const CliResult r = run_cli("eval SAD --json");
  ASSERT_EQ(r.exit_code, 0);
  ASSERT_FALSE(r.stdout_text.empty());

  const util::Json report = util::Json::parse(r.stdout_text);
  ASSERT_TRUE(report.is_object());
  EXPECT_EQ(report.at("kernel").as_string(), "SAD");

  const util::Json& results = report.at("results");
  ASSERT_TRUE(results.is_array());
  ASSERT_EQ(results.size(), 9u);  // Base, RS#1..RS#4, RSP#1..RSP#4
  for (std::size_t i = 0; i < results.size(); ++i) {
    const util::Json& row = results.at(i);
    for (const char* key :
         {"arch", "cycles", "stalls", "clock_ns", "execution_time_ns",
          "delay_reduction_percent", "max_mults_per_cycle"})
      EXPECT_TRUE(row.contains(key)) << "row " << i << " missing " << key;
    EXPECT_TRUE(row.at("arch").is_string());
    EXPECT_GT(row.at("cycles").as_number(), 0);
    EXPECT_GT(row.at("execution_time_ns").as_number(), 0);
  }
  EXPECT_EQ(results.at(0).at("arch").as_string(), "Base");
}

TEST(CliJson, EvalJsonRoundTripIsStable) {
  const CliResult r = run_cli("eval MVM --json");
  ASSERT_EQ(r.exit_code, 0);
  const util::Json once = util::Json::parse(r.stdout_text);
  const util::Json twice = util::Json::parse(once.dump());
  EXPECT_EQ(once.dump(), twice.dump());
  EXPECT_EQ(once.dump(true), twice.dump(true));
}

TEST(CliJson, UnknownKernelFailsNonzero) {
  const CliResult r = run_cli("eval no-such-kernel --json 2>/dev/null");
  EXPECT_EQ(r.exit_code, 1);
}

TEST(CliJson, UnknownEvalFlagFailsNonzero) {
  const CliResult r = run_cli("eval SAD --verbose 2>/dev/null");
  EXPECT_EQ(r.exit_code, 1);
}

TEST(CliJson, BatchTwoRequestFileRoundTrips) {
  const CliResult r =
      run_cli("batch " RSP_TEST_DATA_DIR "/batch_requests.json --threads 2");
  ASSERT_EQ(r.exit_code, 0);
  ASSERT_FALSE(r.stdout_text.empty());

  // The acceptance gate: the batch output is one valid JSON document that
  // round-trips through util::Json.
  const util::Json response = util::Json::parse(r.stdout_text);
  EXPECT_EQ(util::Json::parse(response.dump()).dump(), response.dump());

  const util::Json& results = response.at("results");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results.at(0).at("ok").as_bool());
  EXPECT_EQ(results.at(0).at("report").at("kernel").as_string(), "SAD");
  EXPECT_TRUE(results.at(1).at("ok").as_bool());
  EXPECT_EQ(results.at(1).at("selected").at("label").as_string(), "1r/p2");
  const util::Json& runtime = response.at("runtime");
  EXPECT_EQ(runtime.at("threads").as_number(), 2);
  // Requests overlap on the shared pool since PR 3; the hit/miss split is
  // scheduling-dependent, the populated table is not.
  EXPECT_GT(runtime.at("cache_entries_total").as_number(), 0);
}

TEST(CliJson, ServeAnswersV1DocumentIdenticallyToBatch) {
  // The compatibility-shim acceptance gate: the same v1 batch document
  // answered by `batch` and by a v1 array line through `serve` must carry
  // byte-identical results (the runtime stats block is
  // scheduling-dependent and excluded).
  const CliResult batch =
      run_cli("batch " RSP_TEST_DATA_DIR "/batch_requests.json --threads 2");
  ASSERT_EQ(batch.exit_code, 0);
  const CliResult served =
      run_shell("tr '\\n' ' ' < " RSP_TEST_DATA_DIR "/batch_requests.json"
                " | " RSP_CLI_BINARY " serve --threads 2");
  ASSERT_EQ(served.exit_code, 0);

  const util::Json batch_doc = util::Json::parse(batch.stdout_text);
  const util::Json serve_doc = util::Json::parse(served.stdout_text);
  EXPECT_EQ(batch_doc.at("results").dump(), serve_doc.at("results").dump());
}

TEST(CliJson, ServeV2NdjsonMatchesBatchPayloads) {
  // The same two requests as batch_requests.json, spoken as v2 NDJSON:
  // response payloads must agree with the batch path field for field.
  const CliResult served =
      run_shell(std::string(RSP_CLI_BINARY) +
                " serve --threads 2 < " RSP_TEST_DATA_DIR
                "/serve_requests.ndjson");
  ASSERT_EQ(served.exit_code, 0);
  std::map<std::string, util::Json> by_id;
  std::istringstream lines(served.stdout_text);
  std::string line;
  while (std::getline(lines, line)) {
    const util::Json response = util::Json::parse(line);
    EXPECT_EQ(response.at("protocol_version").as_number(), 2);
    ASSERT_TRUE(response.at("ok").as_bool()) << line;
    by_id.emplace(response.at("id").as_string(), response);
  }
  ASSERT_EQ(by_id.size(), 2u);

  const CliResult batch =
      run_cli("batch " RSP_TEST_DATA_DIR "/batch_requests.json --threads 2");
  ASSERT_EQ(batch.exit_code, 0);
  const util::Json batch_doc = util::Json::parse(batch.stdout_text);
  const util::Json& results = batch_doc.at("results");

  const util::Json& eval = by_id.at("eval-sad");
  EXPECT_EQ(eval.at("report").dump(), results.at(0).at("report").dump());
  const util::Json& dse = by_id.at("dse-1");
  for (const char* field :
       {"kernels", "candidates", "pareto", "base", "selected"})
    EXPECT_EQ(dse.at(field).dump(), results.at(1).at(field).dump()) << field;
}

TEST(CliJson, ServeRejectsACorruptCacheSnapshotInBand) {
  // A cache_load of a snapshot truncated mid-write must come back as a
  // normal {"ok": false} response naming the parse failure — not kill the
  // serve loop (the next request on the same stream still answers).
  const std::string path = "/tmp/rsp_cli_json_corrupt_cache.json";
  run_shell("printf '{\"format\": \"rsp-eval-cache\", \"ver' > " + path);
  const CliResult r = run_shell(
      "printf '%s\\n%s\\n' "
      "'{\"protocol_version\": 2, \"id\": \"cl\", \"op\": \"cache_load\", "
      "\"path\": \"" + path + "\"}' "
      "'{\"protocol_version\": 2, \"id\": \"p\", \"op\": \"ping\"}' | " +
      std::string(RSP_CLI_BINARY) + " serve");
  run_shell("rm -f " + path);
  ASSERT_EQ(r.exit_code, 0);
  std::istringstream lines(r.stdout_text);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const util::Json failed = util::Json::parse(line);
  EXPECT_EQ(failed.at("id").as_string(), "cl");
  EXPECT_FALSE(failed.at("ok").as_bool());
  EXPECT_NE(failed.at("error").as_string().find("JSON parse error"),
            std::string::npos);
  ASSERT_TRUE(std::getline(lines, line));
  const util::Json ping = util::Json::parse(line);
  EXPECT_EQ(ping.at("id").as_string(), "p");
  EXPECT_TRUE(ping.at("ok").as_bool());
}

}  // namespace
}  // namespace rsp
