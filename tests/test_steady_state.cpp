#include <gtest/gtest.h>

#include "kernels/matmul.hpp"
#include "kernels/registry.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/scheduler.hpp"
#include "sched/steady_state.hpp"

namespace rsp::sched {
namespace {

ConfigurationContext context_for(const kernels::Workload& w,
                                 const arch::Architecture& a) {
  const LoopPipeliner mapper(w.array);
  const ContextScheduler scheduler;
  return scheduler.schedule(mapper.map(w.kernel, w.hints, w.reduction), a);
}

TEST(SteadyState, IiBoundedByLatency) {
  for (const auto& w : kernels::paper_suite()) {
    for (const arch::Architecture& a : arch::standard_suite()) {
      const SteadyState ss = analyze_steady_state(context_for(w, a));
      EXPECT_GE(ss.initiation_interval, 1) << w.name << " " << a.name;
      EXPECT_LE(ss.initiation_interval, ss.latency) << w.name << " " << a.name;
      EXPECT_GT(ss.ops_per_cycle, 0.0);
    }
  }
}

TEST(SteadyState, OverlappedRunsAreStructurallyLegal) {
  // Materialise two runs offset by the computed II and re-run the full
  // legality checker on the union — the analysis must never understate.
  const auto w = kernels::find_workload("MVM");
  for (const arch::Architecture& a :
       {arch::base_architecture(), arch::rs_architecture(1),
        arch::rsp_architecture(2)}) {
    const ConfigurationContext ctx = context_for(w, a);
    const SteadyState ss = analyze_steady_state(ctx);

    std::vector<ScheduledOp> merged = ctx.ops();
    const ProgIndex n = ctx.size();
    for (const ScheduledOp& op : ctx.ops()) {
      ScheduledOp shifted = op;
      shifted.cycle += ss.initiation_interval;
      // Rebase intra-run references to the second copy.
      for (ProgOperand& o : shifted.operands)
        if (!o.is_imm()) o.producer += n;
      for (ProgIndex& d : shifted.order_deps) d += n;
      merged.push_back(shifted);
    }
    const LegalityReport rep =
        check_legality(ConfigurationContext(a, merged));
    EXPECT_TRUE(rep.ok) << a.name << ": "
                        << (rep.violations.empty() ? ""
                                                   : rep.violations.front());
  }
}

TEST(SteadyState, SharingTightensTheInterval) {
  // Fewer multipliers → unit slots busier → the next run must wait at
  // least as long as on the base architecture.
  const auto w = kernels::find_workload("2D-FDCT");
  const SteadyState base =
      analyze_steady_state(context_for(w, arch::base_architecture()));
  const SteadyState rs1 =
      analyze_steady_state(context_for(w, arch::rs_architecture(1)));
  EXPECT_GE(rs1.initiation_interval, base.initiation_interval);
}

TEST(SteadyState, ThroughputImprovesOverSerialReruns) {
  // For at least the pipeline-friendly kernels, II < latency: back-to-back
  // tiles overlap and the array streams.
  const auto w = kernels::make_matmul(4);
  const SteadyState ss =
      analyze_steady_state(context_for(w, arch::base_architecture(4, 4)));
  EXPECT_LT(ss.initiation_interval, ss.latency);
}

TEST(SteadyState, BottleneckNamesAreStable) {
  EXPECT_STREQ(to_string(SteadyState::Bottleneck::kPe), "PE");
  EXPECT_STREQ(to_string(SteadyState::Bottleneck::kSharedUnit),
               "shared unit");
  EXPECT_STREQ(to_string(SteadyState::Bottleneck::kNone), "none");
}

}  // namespace
}  // namespace rsp::sched
