#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "arch/presets.hpp"
#include "core/report_json.hpp"
#include "kernels/registry.hpp"
#include "sched/mapper.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace rsp {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(util::Json(true).dump(), "true");
  EXPECT_EQ(util::Json(42).dump(), "42");
  EXPECT_EQ(util::Json(2.5).dump(), "2.5");
  EXPECT_EQ(util::Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(util::Json().dump(), "null");
}

TEST(Json, Escaping) {
  EXPECT_EQ(util::Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(util::Json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ObjectsPreserveInsertionOrderAndOverwrite) {
  util::Json j = util::Json::object();
  j.set("b", 1).set("a", 2).set("b", 3);
  EXPECT_EQ(j.dump(), "{\"b\":3,\"a\":2}");
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.keys(), (std::vector<std::string>{"b", "a"}));
  EXPECT_THROW(util::Json::array().keys(), rsp::InvalidArgumentError);
}

TEST(Json, MergeMovesFieldsWithSetSemantics) {
  util::Json envelope = util::Json::object();
  envelope.set("version", 2).set("id", "r1");
  util::Json body = util::Json::object();
  body.set("id", "overwritten").set("ok", true);
  envelope.merge(std::move(body));
  EXPECT_EQ(envelope.dump(),
            "{\"version\":2,\"id\":\"overwritten\",\"ok\":true}");
  EXPECT_THROW(util::Json::object().merge(util::Json::array()),
               rsp::InvalidArgumentError);
  EXPECT_THROW(util::Json::array().merge(util::Json::object()),
               rsp::InvalidArgumentError);
}

TEST(Json, ArraysAndNesting) {
  util::Json arr = util::Json::array();
  arr.push(1).push("two");
  util::Json obj = util::Json::object();
  obj.set("list", std::move(arr));
  EXPECT_EQ(obj.dump(), "{\"list\":[1,\"two\"]}");
}

TEST(Json, PrettyPrinting) {
  util::Json j = util::Json::object();
  j.set("x", 1);
  EXPECT_EQ(j.dump(true), "{\n  \"x\": 1\n}");
}

TEST(Json, TypeErrors) {
  util::Json scalar(1);
  EXPECT_THROW(scalar.set("k", 1), InvalidArgumentError);
  EXPECT_THROW(scalar.push(1), InvalidArgumentError);
}

TEST(Json, LargeIntegersStayExact) {
  EXPECT_EQ(util::Json(std::int64_t{55739}).dump(), "55739");
  EXPECT_EQ(util::Json(std::int64_t{-123456789}).dump(), "-123456789");
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(util::Json::parse("null").is_null());
  EXPECT_EQ(util::Json::parse("true").as_bool(), true);
  EXPECT_EQ(util::Json::parse("false").as_bool(), false);
  EXPECT_EQ(util::Json::parse("42").as_number(), 42.0);
  EXPECT_EQ(util::Json::parse("-2.5e2").as_number(), -250.0);
  EXPECT_EQ(util::Json::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(util::Json::parse(" \n\t 7 ").as_number(), 7.0);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(util::Json::parse("\"a\\\"b\\\\c\\nd\"").as_string(), "a\"b\\c\nd");
  EXPECT_EQ(util::Json::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
  EXPECT_EQ(util::Json::parse("\"\\u0001\"").as_string(),
            std::string(1, '\x01'));
}

TEST(JsonParse, SurrogatePairsDecodeToFourByteUtf8) {
  // U+1F600 (grinning face) arrives as the UTF-16 escape pair D83D DE00 and
  // must decode to the 4-byte UTF-8 sequence — an emoji in a request id is
  // a valid string, not a protocol error.
  EXPECT_EQ(util::Json::parse("\"\\uD83D\\uDE00\"").as_string(),
            "\xF0\x9F\x98\x80");
  // Lowest and highest astral code points: U+10000 and U+10FFFF.
  EXPECT_EQ(util::Json::parse("\"\\uD800\\uDC00\"").as_string(),
            "\xF0\x90\x80\x80");
  EXPECT_EQ(util::Json::parse("\"\\uDBFF\\uDFFF\"").as_string(),
            "\xF4\x8F\xBF\xBF");
  // Pairs compose with surrounding text and other escapes.
  EXPECT_EQ(util::Json::parse("\"a\\uD83D\\uDE00\\nb\"").as_string(),
            "a\xF0\x9F\x98\x80\nb");
}

TEST(JsonParse, LoneSurrogatesAreStillRejected) {
  // A lone half of a pair has no code point: reject, never emit WTF-8.
  EXPECT_THROW(util::Json::parse("\"\\uD800\""), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("\"\\uDFFF\""), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("\"\\uD83Dx\""), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("\"\\uD83D\\n\""), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("\"\\uD83D\\uD83D\""), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("\"\\uDE00\\uD83D\""), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("\"\\uD83D\""), InvalidArgumentError);
}

TEST(JsonParse, AstralStringsRoundTripThroughEscapeAndParse) {
  // escape() passes raw UTF-8 through untouched, so a decoded astral string
  // survives dump()+parse() byte-identically — in an id, in a key, nested.
  util::Json doc = util::Json::object();
  doc.set("id", "req-\xF0\x9F\x98\x80");
  doc.set("\xF0\x90\x80\x80", 1);
  const util::Json reparsed = util::Json::parse(doc.dump());
  EXPECT_EQ(reparsed.dump(), doc.dump());
  EXPECT_EQ(reparsed.at("id").as_string(), "req-\xF0\x9F\x98\x80");
  // And the escaped spelling parses to the same string as the raw bytes.
  EXPECT_EQ(
      util::Json::parse("{\"id\": \"req-\\uD83D\\uDE00\"}").at("id").dump(),
      util::Json("req-\xF0\x9F\x98\x80").dump());
}

TEST(JsonParse, Containers) {
  const util::Json j =
      util::Json::parse("{\"a\": [1, \"two\", {\"b\": true}], \"c\": null}");
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.size(), 2u);
  EXPECT_TRUE(j.contains("a"));
  EXPECT_FALSE(j.contains("missing"));
  const util::Json& arr = j.at("a");
  ASSERT_TRUE(arr.is_array());
  EXPECT_EQ(arr.at(0).as_number(), 1.0);
  EXPECT_EQ(arr.at(1).as_string(), "two");
  EXPECT_EQ(arr.at(2).at("b").as_bool(), true);
  EXPECT_TRUE(j.at("c").is_null());
  EXPECT_TRUE(util::Json::parse("{}").is_object());
  EXPECT_EQ(util::Json::parse("[]").size(), 0u);
}

TEST(JsonParse, DumpRoundTrip) {
  util::Json j = util::Json::object();
  j.set("kernel", "SAD").set("count", 3).set("exact", std::int64_t{55739});
  util::Json arr = util::Json::array();
  arr.push(1.5).push("x\ny").push(util::Json());
  j.set("items", std::move(arr));
  EXPECT_EQ(util::Json::parse(j.dump()).dump(), j.dump());
  EXPECT_EQ(util::Json::parse(j.dump(true)).dump(true), j.dump(true));
}

TEST(JsonParse, AccessorTypeErrors) {
  const util::Json j = util::Json::parse("{\"a\": 1}");
  EXPECT_THROW(j.at("missing"), NotFoundError);
  EXPECT_THROW(j.at(std::size_t{0}), InvalidArgumentError);
  EXPECT_THROW(j.at("a").as_string(), InvalidArgumentError);
  EXPECT_THROW(j.at("a").as_bool(), InvalidArgumentError);
  EXPECT_THROW(util::Json("s").as_number(), InvalidArgumentError);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(util::Json::parse(""), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("{"), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("[1,]"), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("{\"a\" 1}"), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("\"unterminated"), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("\"\\q\""), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("1 2"), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("tru"), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("--1"), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("1.2.3"), InvalidArgumentError);
}

TEST(JsonParse, EnforcesStrictNumberGrammar) {
  EXPECT_THROW(util::Json::parse("+5"), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse(".5"), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("5."), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("017"), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("[1e]"), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("-"), InvalidArgumentError);
  EXPECT_EQ(util::Json::parse("0").as_number(), 0.0);
  EXPECT_EQ(util::Json::parse("-0.5e+2").as_number(), -50.0);
  EXPECT_EQ(util::Json::parse("1E3").as_number(), 1000.0);
}

TEST(JsonParse, NonFiniteNumbersRejectedAndRenderedAsNull) {
  EXPECT_THROW(util::Json::parse("1e999"), InvalidArgumentError);
  EXPECT_THROW(util::Json::parse("-1e999"), InvalidArgumentError);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(util::Json(inf).dump(), "null");
  EXPECT_EQ(util::Json(std::nan("")).dump(), "null");
  // A document containing a non-finite metric still round-trips as JSON.
  util::Json j = util::Json::object();
  j.set("ratio", inf);
  EXPECT_TRUE(util::Json::parse(j.dump()).at("ratio").is_null());
}

TEST(JsonParse, DeepNestingFailsInsteadOfOverflowing) {
  const std::string deep(100000, '[');
  EXPECT_THROW(util::Json::parse(deep), InvalidArgumentError);
  // 500 levels is fine (limit is 1000).
  const std::string ok = std::string(500, '[') + std::string(500, ']');
  EXPECT_EQ(util::Json::parse(ok).size(), 1u);
}

TEST(ReportJson, EvaluationExport) {
  const core::RspEvaluator ev;
  const kernels::Workload w = kernels::find_workload("SAD");
  const sched::LoopPipeliner mapper(w.array);
  const auto rows = ev.evaluate_suite(
      mapper.map(w.kernel, w.hints, w.reduction), arch::standard_suite());
  const util::Json j = core::to_json(w.name, rows);
  const std::string s = j.dump();
  EXPECT_NE(s.find("\"kernel\":\"SAD\""), std::string::npos);
  EXPECT_NE(s.find("\"arch\":\"RSP#1\""), std::string::npos);
  EXPECT_NE(s.find("\"delay_reduction_percent\":35.6"), std::string::npos);
}

TEST(ReportJson, SynthesisExport) {
  const synth::SynthesisModel model;
  const util::Json arr =
      core::to_json(model.report_suite(arch::standard_suite()));
  EXPECT_EQ(arr.size(), 9u);
  const std::string s = arr.dump();
  EXPECT_NE(s.find("\"arch\":\"Base\""), std::string::npos);
  EXPECT_NE(s.find("\"clock_ns\":16.72"), std::string::npos);
}

}  // namespace
}  // namespace rsp
