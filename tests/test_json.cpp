#include <gtest/gtest.h>

#include "arch/presets.hpp"
#include "core/report_json.hpp"
#include "kernels/registry.hpp"
#include "sched/mapper.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace rsp {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(util::Json(true).dump(), "true");
  EXPECT_EQ(util::Json(42).dump(), "42");
  EXPECT_EQ(util::Json(2.5).dump(), "2.5");
  EXPECT_EQ(util::Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(util::Json().dump(), "null");
}

TEST(Json, Escaping) {
  EXPECT_EQ(util::Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(util::Json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ObjectsPreserveInsertionOrderAndOverwrite) {
  util::Json j = util::Json::object();
  j.set("b", 1).set("a", 2).set("b", 3);
  EXPECT_EQ(j.dump(), "{\"b\":3,\"a\":2}");
  EXPECT_EQ(j.size(), 2u);
}

TEST(Json, ArraysAndNesting) {
  util::Json arr = util::Json::array();
  arr.push(1).push("two");
  util::Json obj = util::Json::object();
  obj.set("list", std::move(arr));
  EXPECT_EQ(obj.dump(), "{\"list\":[1,\"two\"]}");
}

TEST(Json, PrettyPrinting) {
  util::Json j = util::Json::object();
  j.set("x", 1);
  EXPECT_EQ(j.dump(true), "{\n  \"x\": 1\n}");
}

TEST(Json, TypeErrors) {
  util::Json scalar(1);
  EXPECT_THROW(scalar.set("k", 1), InvalidArgumentError);
  EXPECT_THROW(scalar.push(1), InvalidArgumentError);
}

TEST(Json, LargeIntegersStayExact) {
  EXPECT_EQ(util::Json(std::int64_t{55739}).dump(), "55739");
  EXPECT_EQ(util::Json(std::int64_t{-123456789}).dump(), "-123456789");
}

TEST(ReportJson, EvaluationExport) {
  const core::RspEvaluator ev;
  const kernels::Workload w = kernels::find_workload("SAD");
  const sched::LoopPipeliner mapper(w.array);
  const auto rows = ev.evaluate_suite(
      mapper.map(w.kernel, w.hints, w.reduction), arch::standard_suite());
  const util::Json j = core::to_json(w.name, rows);
  const std::string s = j.dump();
  EXPECT_NE(s.find("\"kernel\":\"SAD\""), std::string::npos);
  EXPECT_NE(s.find("\"arch\":\"RSP#1\""), std::string::npos);
  EXPECT_NE(s.find("\"delay_reduction_percent\":35.6"), std::string::npos);
}

TEST(ReportJson, SynthesisExport) {
  const synth::SynthesisModel model;
  const util::Json arr =
      core::to_json(model.report_suite(arch::standard_suite()));
  EXPECT_EQ(arr.size(), 9u);
  const std::string s = arr.dump();
  EXPECT_NE(s.find("\"arch\":\"Base\""), std::string::npos);
  EXPECT_NE(s.find("\"clock_ns\":16.72"), std::string::npos);
}

}  // namespace
}  // namespace rsp
