# Smoke-test driver for rsp_cli, run via ctest as
#   cmake -DCLI=<binary> [-DARGS="space separated args"] -DEXPECT_RC=<code>
#         [-DEXPECT_STDOUT=1] [-DEXPECT_STDERR=1] [-DSTDIN_FILE=<path>]
#         [-DEXPECT_STDOUT_MATCH=<regex>] [-DEXPECT_STDERR_MATCH=<regex>]
#         -P cli_smoke.cmake
# Fails (non-zero exit) when the exit code differs from EXPECT_RC, when a
# stream expected to carry output is empty, or when a stream does not match
# its EXPECT_*_MATCH regex. STDIN_FILE feeds the command's stdin (serve mode).
if(NOT DEFINED CLI OR NOT DEFINED EXPECT_RC)
  message(FATAL_ERROR "cli_smoke.cmake requires -DCLI=... and -DEXPECT_RC=...")
endif()
if(NOT DEFINED ARGS)
  set(ARGS "")
endif()
separate_arguments(ARGS UNIX_COMMAND "${ARGS}")

if(DEFINED STDIN_FILE)
  set(stdin_option INPUT_FILE ${STDIN_FILE})
else()
  set(stdin_option "")
endif()
execute_process(
  COMMAND ${CLI} ${ARGS}
  ${stdin_option}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)

string(REPLACE ";" " " pretty_args "${ARGS}")
if(NOT rc EQUAL ${EXPECT_RC})
  message(FATAL_ERROR
    "rsp_cli ${pretty_args}: exit code ${rc}, expected ${EXPECT_RC}\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
if(EXPECT_STDOUT AND out STREQUAL "")
  message(FATAL_ERROR "rsp_cli ${pretty_args}: expected non-empty stdout")
endif()
if(EXPECT_STDERR AND err STREQUAL "")
  message(FATAL_ERROR "rsp_cli ${pretty_args}: expected non-empty stderr")
endif()
if(DEFINED EXPECT_STDOUT_MATCH AND NOT out MATCHES "${EXPECT_STDOUT_MATCH}")
  message(FATAL_ERROR
    "rsp_cli ${pretty_args}: stdout does not match '${EXPECT_STDOUT_MATCH}'\n"
    "stdout:\n${out}")
endif()
if(DEFINED EXPECT_STDERR_MATCH AND NOT err MATCHES "${EXPECT_STDERR_MATCH}")
  message(FATAL_ERROR
    "rsp_cli ${pretty_args}: stderr does not match '${EXPECT_STDERR_MATCH}'\n"
    "stderr:\n${err}")
endif()
