#include <gtest/gtest.h>

#include "arch/presets.hpp"
#include "rtl/generate.hpp"
#include "rtl/verilog.hpp"
#include "util/error.hpp"

namespace rsp::rtl {
namespace {

// ---------------------------------------------------------------- verilog
TEST(Verilog, RangeRendering) {
  EXPECT_EQ(range_of(1), "");
  EXPECT_EQ(range_of(16), "[15:0] ");
  EXPECT_THROW(range_of(0), InvalidArgumentError);
}

TEST(Verilog, ModuleEmission) {
  Module m("leaf");
  m.port(PortDir::kInput, "a", 16)
      .port(PortDir::kOutput, "y", 16)
      .wire("t", 16)
      .assign("t", "a")
      .assign("y", "t");
  const std::string v = m.emit();
  EXPECT_NE(v.find("module leaf ("), std::string::npos);
  EXPECT_NE(v.find("input  wire [15:0] a,"), std::string::npos);
  EXPECT_NE(v.find("output wire [15:0] y"), std::string::npos);
  EXPECT_NE(v.find("assign y = t;"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, ValidationErrors) {
  EXPECT_THROW(Module(""), InvalidArgumentError);
  Module m("x");
  EXPECT_THROW(m.port(PortDir::kInput, "p", 0), InvalidArgumentError);
  EXPECT_THROW(m.instance(Instance{"", "i", {}}), InvalidArgumentError);
  Design d;
  d.add(Module("dup"));
  EXPECT_THROW(d.add(Module("dup")), InvalidArgumentError);
}

TEST(Verilog, InstanceEmission) {
  Module m("parent");
  m.port(PortDir::kInput, "clk");
  m.instance(Instance{"child", "u0", {{"clk", "clk"}, {"d", "1'b0"}}});
  const std::string v = m.emit();
  EXPECT_NE(v.find("child u0 ("), std::string::npos);
  EXPECT_NE(v.find(".clk(clk)"), std::string::npos);
  EXPECT_NE(v.find(".d(1'b0)"), std::string::npos);
}

// --------------------------------------------------------------- generate
TEST(Generate, BaseArchitectureStructure) {
  const Design d = generate(arch::base_architecture());
  const RtlStats s = stats_of(d);
  EXPECT_EQ(s.pe_instances, 64);
  EXPECT_EQ(s.config_cache_instances, 64);
  // Base: no shared multipliers at top level (they live inside the PEs),
  // no bus switch module at all.
  EXPECT_EQ(s.shared_multiplier_instances, 0);
  EXPECT_EQ(d.find("rsp_bus_switch"), nullptr);
  ASSERT_NE(d.find("rsp_pe"), nullptr);
  ASSERT_NE(d.find("rsp_array"), nullptr);
}

class GenerateSuite : public ::testing::TestWithParam<int> {};

TEST_P(GenerateSuite, SharedUnitCountMatchesFig8Topology) {
  const int variant = GetParam();
  for (bool pipelined : {false, true}) {
    const arch::Architecture a = pipelined
                                     ? arch::rsp_architecture(variant)
                                     : arch::rs_architecture(variant);
    const Design d = generate(a);
    const RtlStats s = stats_of(d);
    EXPECT_EQ(s.shared_multiplier_instances,
              a.sharing.total_units(a.array))
        << a.name;
    EXPECT_EQ(s.pe_instances, 64);
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, GenerateSuite, ::testing::Range(1, 5));

TEST(Generate, PipelinedMultiplierHasStageRegisters) {
  const std::string rsp = generate_verilog(arch::rsp_architecture(2));
  EXPECT_NE(rsp.find("stage [0:0]"), std::string::npos);  // 2 stages → 1 reg
  EXPECT_NE(rsp.find("always @(posedge clk)"), std::string::npos);
  const std::string rs = generate_verilog(arch::rs_architecture(2));
  EXPECT_EQ(rs.find("stage [0:"), std::string::npos);  // combinational
}

TEST(Generate, SharedPeExposesMultTaps) {
  const Design d = generate(arch::rs_architecture(1));
  const Module* pe = d.find("rsp_pe");
  ASSERT_NE(pe, nullptr);
  bool has_ma = false, has_mp = false;
  for (const Port& p : pe->ports()) {
    if (p.name == "mult_a" && p.dir == PortDir::kOutput) has_ma = true;
    if (p.name == "mult_p" && p.dir == PortDir::kInput && p.width == 32)
      has_mp = true;
  }
  EXPECT_TRUE(has_ma);
  EXPECT_TRUE(has_mp);
}

TEST(Generate, BasePeKeepsPrivateMultiplier) {
  const Design d = generate(arch::base_architecture());
  const Module* pe = d.find("rsp_pe");
  ASSERT_NE(pe, nullptr);
  bool has_private_mult = false;
  for (const Instance& inst : pe->instances())
    if (inst.module == "rsp_multiplier") has_private_mult = true;
  EXPECT_TRUE(has_private_mult);
  for (const Port& p : pe->ports()) EXPECT_NE(p.name, "mult_a");
}

TEST(Generate, TopHasRowBusPorts) {
  const std::string v = generate_verilog(arch::base_architecture());
  // 2 read buses + 1 write bus per row (Fig. 1b scheme).
  EXPECT_NE(v.find("rbus_r0_0"), std::string::npos);
  EXPECT_NE(v.find("rbus_r0_1"), std::string::npos);
  EXPECT_NE(v.find("wbus_r7_0"), std::string::npos);
  EXPECT_EQ(v.find("rbus_r0_2"), std::string::npos);
}

TEST(Generate, DeterministicOutput) {
  const std::string a = generate_verilog(arch::rsp_architecture(3));
  const std::string b = generate_verilog(arch::rsp_architecture(3));
  EXPECT_EQ(a, b);
}

TEST(Generate, AllNineArchitecturesEmit) {
  for (const arch::Architecture& a : arch::standard_suite()) {
    const std::string v = generate_verilog(a);
    EXPECT_GT(v.size(), 10000u) << a.name;
    EXPECT_NE(v.find("module rsp_array"), std::string::npos) << a.name;
  }
}

TEST(Generate, RejectsDegenerateOptions) {
  GenerateOptions opt;
  opt.context_depth = 1;
  EXPECT_THROW(generate(arch::base_architecture(), opt),
               InvalidArgumentError);
}

TEST(Generate, ColumnPoolUnitsAppearForVariant3) {
  const std::string v = generate_verilog(arch::rs_architecture(3));
  EXPECT_NE(v.find("u_mult_row0_u1"), std::string::npos);  // 2 per row
  EXPECT_NE(v.find("u_mult_col7_u0"), std::string::npos);  // 1 per column
  EXPECT_EQ(v.find("u_mult_col0_u1"), std::string::npos);
}

}  // namespace
}  // namespace rsp::rtl
