// The parallel evaluation runtime: thread pool semantics, memo-cache
// correctness (including invalidation), bit-identical parallel/serial
// agreement on the paper workload, the batch request API, and thread-safe
// logging under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "arch/presets.hpp"
#include "core/evaluator.hpp"
#include "dse/explorer.hpp"
#include "kernels/registry.hpp"
#include "runtime/batch.hpp"
#include "runtime/eval_cache.hpp"
#include "runtime/parallel_explorer.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/mapper.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace rsp::runtime {
namespace {

// ------------------------------------------------------------- thread pool
TEST(ThreadPool, DrainsAllTasksOnDestruction) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i)
      pool.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        completed.fetch_add(1);
      });
    // Destruction must wait for every queued task, not just running ones.
  }
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPool, FuturesDeliverValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 16; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, FuturesPropagateExceptions) {
  ThreadPool pool(1);
  std::future<void> f =
      pool.submit([] { throw InvalidArgumentError("task failed"); });
  EXPECT_THROW(f.get(), InvalidArgumentError);
}

TEST(ThreadPool, RejectsNegativeThreadCount) {
  EXPECT_THROW(ThreadPool(-1), InvalidArgumentError);
}

TEST(ThreadPool, ZeroPicksHardwareDefault) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), ThreadPool::default_thread_count());
  EXPECT_GE(pool.thread_count(), 1);
}

TEST(ThreadPool, TaskRngStreamsAreDeterministicPerIndex) {
  util::Rng a = task_rng(7), b = task_rng(7), c = task_rng(8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

// ------------------------------------------------------------- eval cache
TEST(EvalCache, MissThenHitWithStats) {
  EvalCache cache(4);
  const std::string key = "SAD|rsp2";
  EXPECT_FALSE(cache.lookup(key).has_value());

  int computed = 0;
  const auto compute = [&computed] {
    ++computed;
    EvalRecord r;
    r.cycles = 42;
    r.stalls = 3;
    return r;
  };
  const EvalRecord first = cache.get_or_compute(key, compute);
  const EvalRecord again = cache.get_or_compute(key, compute);
  EXPECT_EQ(computed, 1);  // second call served from the cache
  EXPECT_EQ(first, again);
  EXPECT_EQ(again.cycles, 42);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);  // explicit lookup + get_or_compute miss
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.hit_rate(), 0.0);
}

// A minimal placed program for key-composition checks.
sched::PlacedProgram tiny_program(std::int64_t priority) {
  sched::PlacedProgram program((arch::ArraySpec()));
  sched::ProgramOp op;
  op.kind = ir::OpKind::kNop;
  op.priority = priority;
  program.add(op);
  return program;
}

TEST(EvalCache, KeyIgnoresCosmeticNameButNotParameters) {
  const arch::Architecture rsp2 = arch::rsp_architecture(2);
  arch::Architecture renamed = rsp2;
  renamed.name = "same-params-different-name";
  const std::string tag = EvalCache::program_tag(tiny_program(0));
  EXPECT_EQ(EvalCache::key("SAD", tag, rsp2),
            EvalCache::key("SAD", tag, renamed));
  EXPECT_NE(EvalCache::key("SAD", tag, rsp2),
            EvalCache::key("SAD", tag, arch::rs_architecture(2)));
  EXPECT_NE(EvalCache::key("SAD", tag, rsp2),
            EvalCache::key("MVM", tag, rsp2));
  // Same kernel id, different mapping: must not alias one cache entry.
  EXPECT_NE(EvalCache::key("SAD", tag, rsp2),
            EvalCache::key("SAD", EvalCache::program_tag(tiny_program(1)),
                           rsp2));
}

TEST(EvalCache, InvalidationNeverServesStaleEntries) {
  EvalCache cache;
  const std::string key = "SAD|base";
  EvalRecord stale;
  stale.cycles = 1;
  cache.insert(key, stale);
  ASSERT_TRUE(cache.lookup(key).has_value());

  EXPECT_TRUE(cache.invalidate(key));
  EXPECT_FALSE(cache.invalidate(key));  // already gone
  EXPECT_FALSE(cache.lookup(key).has_value());

  EvalRecord fresh;
  fresh.cycles = 2;
  const EvalRecord served =
      cache.get_or_compute(key, [&fresh] { return fresh; });
  EXPECT_EQ(served.cycles, 2);  // recomputed, not the stale value
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(EvalCache, InvalidationDuringComputeIsNotResurrected) {
  EvalCache cache;
  const std::string key = "SAD|base";
  EvalRecord computed;
  computed.cycles = 7;
  // The compute callback races an invalidation: the result may be
  // *returned* but must not be *published* over the invalidation.
  const EvalRecord served = cache.get_or_compute(key, [&] {
    cache.invalidate(key);  // cancels this in-flight compute's publish
    return computed;
  });
  EXPECT_EQ(served.cycles, 7);
  EXPECT_FALSE(cache.lookup(key).has_value());
}

TEST(EvalCache, InvalidatingAnotherKeyDoesNotSuppressPublish) {
  EvalCache cache(1);  // one shard, so both keys share it
  const std::string key = "SAD|base";
  const std::string other = "MVM|base";
  EvalRecord computed;
  computed.cycles = 5;
  cache.get_or_compute(key, [&] {
    cache.invalidate(other);  // unrelated key: must not cancel this publish
    return computed;
  });
  EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST(EvalCache, ClearEmptiesEveryShard) {
  EvalCache cache(8);
  for (int v = 1; v <= 4; ++v) {
    EvalRecord r;
    r.cycles = v;
    cache.insert("k" + std::to_string(v), r);
  }
  EXPECT_EQ(cache.stats().entries, 4u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(EvalCache, SerializeDeserializeRoundTrip) {
  EvalCache cache(4);
  for (int v = 1; v <= 5; ++v) {
    EvalRecord r;
    r.cycles = v;
    r.stalls = v + 1;
    r.nostall_cycles = v + 2;
    r.max_critical_issues = v % 3;
    cache.insert("k" + std::to_string(v), r);
  }
  const util::Json doc = cache.serialize();
  EXPECT_EQ(doc.at("format").as_string(), "rsp-eval-cache");
  EXPECT_EQ(doc.at("version").as_number(), EvalCache::kSerialFormatVersion);
  EXPECT_EQ(doc.at("entries").size(), 5u);

  // Restore into a differently-sharded cache: shard count is a layout
  // detail, not part of the format.
  EvalCache restored(2);
  EXPECT_EQ(restored.deserialize(doc), 5u);
  EXPECT_EQ(restored.stats().entries, 5u);
  for (int v = 1; v <= 5; ++v) {
    const auto record = restored.lookup("k" + std::to_string(v));
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->cycles, v);
    EXPECT_EQ(record->stalls, v + 1);
    EXPECT_EQ(record->nostall_cycles, v + 2);
    EXPECT_EQ(record->max_critical_issues, v % 3);
  }
}

TEST(EvalCache, DeserializeRejectsVersionMismatchWithoutHalfLoading) {
  EvalCache cache;
  EvalRecord r;
  r.cycles = 9;
  cache.insert("k", r);
  util::Json doc = cache.serialize();
  doc.set("version", EvalCache::kSerialFormatVersion + 1);

  EvalCache restored;
  try {
    restored.deserialize(doc);
    FAIL() << "expected a version-mismatch rejection";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
  EXPECT_EQ(restored.stats().entries, 0u);

  // Foreign and malformed documents are rejected whole as well.
  EXPECT_THROW(restored.deserialize(util::Json::parse("{\"x\": 1}")),
               InvalidArgumentError);
  util::Json tampered = util::Json::parse(
      "{\"format\": \"rsp-eval-cache\", \"version\": 1, "
      "\"entries\": [{\"key\": \"k\", \"cycles\": 1.5, \"stalls\": 0, "
      "\"nostall_cycles\": 0, \"max_critical_issues\": 0}]}");
  EXPECT_THROW(restored.deserialize(tampered), InvalidArgumentError);
  EXPECT_EQ(restored.stats().entries, 0u);
}

TEST(EvalCache, ConcurrentGetOrComputeYieldsOneConsistentValue) {
  EvalCache cache(2);  // few shards → real contention
  ThreadPool pool(4);
  std::vector<std::future<EvalRecord>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([&cache, i] {
      const std::string key = "k" + std::to_string(i % 8);
      return cache.get_or_compute(key, [i] {
        EvalRecord r;
        r.cycles = (i % 8) + 1;  // deterministic per key
        return r;
      });
    }));
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().cycles, (i % 8) + 1);
  EXPECT_EQ(cache.stats().entries, 8u);
}

// ------------------------------------------------- parallel vs serial DSE
void expect_bit_identical(const dse::ExplorationResult& serial,
                          const dse::ExplorationResult& parallel) {
  EXPECT_EQ(serial.selected, parallel.selected);
  EXPECT_EQ(serial.base_cycles, parallel.base_cycles);
  EXPECT_EQ(serial.base_area, parallel.base_area);
  EXPECT_EQ(serial.base_time_ns, parallel.base_time_ns);
  ASSERT_EQ(serial.candidates.size(), parallel.candidates.size());
  for (std::size_t i = 0; i < serial.candidates.size(); ++i) {
    const dse::Candidate& s = serial.candidates[i];
    const dse::Candidate& p = parallel.candidates[i];
    EXPECT_EQ(s.point.label(), p.point.label());
    EXPECT_EQ(s.rejected, p.rejected);
    EXPECT_EQ(s.pareto, p.pareto);
    EXPECT_EQ(s.evaluated, p.evaluated);
    EXPECT_EQ(s.exact_cycles, p.exact_cycles) << s.point.label();
    EXPECT_EQ(s.total_stalls, p.total_stalls) << s.point.label();
    // Bitwise double equality is intended: the parallel reduction must
    // replay the serial accumulation order exactly.
    EXPECT_EQ(s.exact_time_ns, p.exact_time_ns) << s.point.label();
    EXPECT_EQ(s.estimated_time_ns, p.estimated_time_ns) << s.point.label();
    EXPECT_EQ(s.area_estimate, p.area_estimate) << s.point.label();
  }
}

TEST(ParallelExplorer, BitIdenticalToSerialOnPaperWorkload) {
  // The acceptance gate: serial Fig. 7 and the 4-thread runtime must agree
  // on every candidate and select the same optimum design point.
  const std::vector<kernels::Workload> domain = kernels::paper_suite();
  const dse::ExplorerConfig config;  // full default enumeration

  const dse::Explorer serial(arch::ArraySpec{}, config);
  const dse::ExplorationResult serial_result = serial.explore(domain);

  RuntimeOptions options;
  options.threads = 4;
  options.cache = std::make_shared<EvalCache>();
  const ParallelExplorer parallel(arch::ArraySpec{}, config,
                                  synth::SynthesisModel(), options);
  const dse::ExplorationResult parallel_result = parallel.explore(domain);

  expect_bit_identical(serial_result, parallel_result);
  ASSERT_GE(parallel_result.selected, 0);
  EXPECT_EQ(serial_result.best().point.label(),
            parallel_result.best().point.label());
}

TEST(ParallelExplorer, RepeatedExplorationServedFromCache) {
  const std::vector<kernels::Workload> domain = kernels::dsp_suite();
  dse::ExplorerConfig config;
  config.max_units_per_row = 2;
  config.max_units_per_col = 1;
  config.max_stages = 2;

  RuntimeOptions options;
  options.threads = 2;
  options.cache = std::make_shared<EvalCache>();
  const ParallelExplorer explorer(arch::ArraySpec{}, config,
                                  synth::SynthesisModel(), options);

  const dse::ExplorationResult first = explorer.explore(domain);
  const CacheStats after_first = options.cache->stats();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_GT(after_first.entries, 0u);

  const dse::ExplorationResult second = explorer.explore(domain);
  const CacheStats after_second = options.cache->stats();
  EXPECT_EQ(after_second.hits, after_first.entries);  // every pair reused
  EXPECT_EQ(after_second.entries, after_first.entries);
  expect_bit_identical(first, second);
}

TEST(ParallelExplorer, WorksWithoutCacheAndWithExternalPool) {
  const std::vector<kernels::Workload> domain = {
      kernels::find_workload("SAD")};
  dse::ExplorerConfig config;
  config.max_units_per_row = 1;
  config.max_units_per_col = 0;
  config.max_stages = 2;

  ThreadPool pool(2);
  RuntimeOptions options;
  options.pool = &pool;  // no cache
  const ParallelExplorer parallel(arch::ArraySpec{}, config,
                                  synth::SynthesisModel(), options);
  const dse::Explorer serial(arch::ArraySpec{}, config);
  expect_bit_identical(serial.explore(domain), parallel.explore(domain));
}

// ------------------------------------------------------ parallel suite eval
TEST(ParallelExplorer, EvaluateSuiteMatchesSerialEvaluator) {
  const kernels::Workload w = kernels::find_workload("SAD");
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram program =
      mapper.map(w.kernel, w.hints, w.reduction);
  const std::vector<arch::Architecture> suite =
      arch::standard_suite(w.array.rows, w.array.cols);

  const core::RspEvaluator serial;
  const std::vector<core::EvalResult> expected =
      serial.evaluate_suite(program, suite);

  RuntimeOptions options;
  options.threads = 4;
  options.cache = std::make_shared<EvalCache>();
  const ParallelExplorer runtime(w.array, {}, synth::SynthesisModel(),
                                 options);
  // Twice: the second pass is served from the cache and must not drift.
  for (int round = 0; round < 2; ++round) {
    const std::vector<core::EvalResult> actual =
        runtime.evaluate_suite(w.name, program, suite);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].arch_name, expected[i].arch_name);
      EXPECT_EQ(actual[i].cycles, expected[i].cycles);
      EXPECT_EQ(actual[i].stalls, expected[i].stalls);
      EXPECT_EQ(actual[i].clock_ns, expected[i].clock_ns);
      EXPECT_EQ(actual[i].execution_time_ns, expected[i].execution_time_ns);
      EXPECT_EQ(actual[i].delay_reduction_percent,
                expected[i].delay_reduction_percent);
      EXPECT_EQ(actual[i].max_mults_per_cycle,
                expected[i].max_mults_per_cycle);
    }
  }
  EXPECT_GT(options.cache->stats().hits, 0u);
}

TEST(ParallelExplorer, EvaluateSuiteRejectsEmptySuite) {
  const kernels::Workload w = kernels::find_workload("SAD");
  const sched::LoopPipeliner mapper(w.array);
  const ParallelExplorer runtime(w.array);
  EXPECT_THROW(runtime.evaluate_suite(
                   w.name, mapper.map(w.kernel, w.hints, w.reduction), {}),
               InvalidArgumentError);
}

// -------------------------------------------------------------- batch API
TEST(Batch, TwoRequestFileRoundTripsThroughJson) {
  util::Json requests = util::Json::array();
  util::Json eval = util::Json::object();
  eval.set("op", "eval").set("kernel", "SAD");
  requests.push(std::move(eval));
  util::Json dse_req = util::Json::object();
  util::Json names = util::Json::array();
  names.push("SAD").push("MVM");
  util::Json config = util::Json::object();
  config.set("max_units_per_row", 2)
      .set("max_units_per_col", 1)
      .set("max_stages", 2);
  dse_req.set("op", "dse").set("kernels", std::move(names));
  dse_req.set("config", std::move(config));
  requests.push(std::move(dse_req));

  BatchOptions options;
  options.threads = 2;
  const util::Json response = run_batch(requests, options);

  // Valid JSON that survives a parse → dump round trip.
  const util::Json reparsed = util::Json::parse(response.dump());
  EXPECT_EQ(reparsed.dump(), response.dump());

  const util::Json& results = response.at("results");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results.at(0).at("ok").as_bool());
  EXPECT_EQ(results.at(0).at("op").as_string(), "eval");
  EXPECT_EQ(results.at(0).at("report").at("kernel").as_string(), "SAD");
  EXPECT_TRUE(results.at(1).at("ok").as_bool());
  EXPECT_EQ(results.at(1).at("op").as_string(), "dse");
  EXPECT_TRUE(results.at(1).at("selected").is_object());
  EXPECT_EQ(results.at(1).at("request").as_number(), 1);

  const util::Json& runtime = response.at("runtime");
  EXPECT_EQ(runtime.at("requests").as_number(), 2);
  EXPECT_EQ(runtime.at("threads").as_number(), 2);
  // Requests overlap on the shared pool since PR 3, so how many of SAD's
  // measurements request 1's DSE reuses is scheduling-dependent — assert
  // the shared table was populated, not an exact hit split.
  EXPECT_GT(runtime.at("cache_entries_total").as_number(), 0);
  EXPECT_GE(runtime.at("cache_hits").as_number(), 0);
}

TEST(Batch, BadRequestIsReportedInBandNotFatal) {
  util::Json requests = util::Json::array();
  util::Json bad = util::Json::object();
  bad.set("op", "eval").set("kernel", "no-such-kernel");
  requests.push(std::move(bad));
  util::Json good = util::Json::object();
  good.set("op", "eval").set("kernel", "MVM");
  requests.push(std::move(good));

  const util::Json response = run_batch(requests);
  const util::Json& results = response.at("results");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results.at(0).at("ok").as_bool());
  EXPECT_FALSE(results.at(0).at("error").as_string().empty());
  EXPECT_TRUE(results.at(1).at("ok").as_bool());
}

TEST(Batch, SharedCacheStatsAreScopedToTheBatch) {
  util::Json requests = util::Json::array();
  util::Json eval = util::Json::object();
  eval.set("op", "eval").set("kernel", "MVM");
  requests.push(std::move(eval));

  BatchOptions options;
  options.threads = 1;
  options.cache = std::make_shared<EvalCache>();  // warm across batches
  const util::Json first = run_batch(requests, options);
  const util::Json second = run_batch(requests, options);

  // First batch populates the shared cache (no hits); the second is served
  // entirely warm, and its report must cover only its own activity — not
  // the first batch's counter totals.
  EXPECT_EQ(first.at("runtime").at("cache_hits").as_number(), 0);
  EXPECT_GT(first.at("runtime").at("cache_misses").as_number(), 0);
  EXPECT_EQ(second.at("runtime").at("cache_misses").as_number(), 0);
  EXPECT_GT(second.at("runtime").at("cache_hits").as_number(), 0);
  EXPECT_EQ(second.at("runtime").at("cache_hit_rate").as_number(), 1.0);
}

TEST(Batch, UnknownDseConfigKeyIsReportedInBand) {
  util::Json requests = util::Json::array();
  util::Json dse_req = util::Json::object();
  util::Json names = util::Json::array();
  names.push("SAD");
  util::Json config = util::Json::object();
  config.set("objetive", "min_area");  // typo'd "objective"
  dse_req.set("op", "dse").set("kernels", std::move(names));
  dse_req.set("config", std::move(config));
  requests.push(std::move(dse_req));

  const util::Json response = run_batch(requests);
  const util::Json& result = response.at("results").at(0);
  EXPECT_FALSE(result.at("ok").as_bool());
  EXPECT_NE(result.at("error").as_string().find("objetive"),
            std::string::npos);
}

TEST(Batch, NonIntegralDseConfigValueIsRejected) {
  util::Json requests = util::Json::array();
  util::Json dse_req = util::Json::object();
  util::Json names = util::Json::array();
  names.push("SAD");
  util::Json config = util::Json::object();
  config.set("max_stages", 3.7);
  dse_req.set("op", "dse").set("kernels", std::move(names));
  dse_req.set("config", std::move(config));
  requests.push(std::move(dse_req));

  const util::Json response = run_batch(requests);
  const util::Json& result = response.at("results").at(0);
  EXPECT_FALSE(result.at("ok").as_bool());
  EXPECT_NE(result.at("error").as_string().find("max_stages"),
            std::string::npos);
}

TEST(Batch, RejectsNonArrayInput) {
  EXPECT_THROW(run_batch(util::Json::object()), InvalidArgumentError);
  EXPECT_THROW(run_batch(util::Json("eval")), InvalidArgumentError);
}

// -------------------------------------------------- thread-safe logging
TEST(LoggingThreads, ConcurrentEmissionIsSerializedAndLossless) {
  std::mutex sink_mutex;
  std::vector<std::string> lines;
  const util::LogLevel previous_threshold = util::log_threshold();
  util::set_log_threshold(util::LogLevel::kDebug);
  util::LogSink previous = util::set_log_sink(
      [&](util::LogLevel, const std::string& message) {
        const std::lock_guard<std::mutex> lock(sink_mutex);
        lines.push_back(message);
      });

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t)
      pool.submit([t] {
        for (int i = 0; i < kPerThread; ++i)
          RSP_LOG(kDebug) << "thread " << t << " message " << i;
      });
  }

  util::set_log_sink(std::move(previous));
  util::set_log_threshold(previous_threshold);

  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // Records must arrive whole: every line matches the emitted shape, with
  // no interleaving of the two stream insertions.
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("thread ", 0), 0u) << line;
    EXPECT_NE(line.find(" message "), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace rsp::runtime
