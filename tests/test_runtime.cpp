// The parallel evaluation runtime: thread pool semantics, memo-cache
// correctness (including invalidation), bit-identical parallel/serial
// agreement on the paper workload, the batch request API, and thread-safe
// logging under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "arch/presets.hpp"
#include "core/evaluator.hpp"
#include "dse/explorer.hpp"
#include "kernels/registry.hpp"
#include "runtime/batch.hpp"
#include "runtime/eval_cache.hpp"
#include "runtime/mapping_cache.hpp"
#include "runtime/parallel_explorer.hpp"
#include "runtime/sim_batch.hpp"
#include "runtime/striped_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/mapper.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace rsp::runtime {
namespace {

// ------------------------------------------------------------- thread pool
TEST(ThreadPool, DrainsAllTasksOnDestruction) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i)
      pool.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        completed.fetch_add(1);
      });
    // Destruction must wait for every queued task, not just running ones.
  }
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPool, FuturesDeliverValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 16; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, FuturesPropagateExceptions) {
  ThreadPool pool(1);
  std::future<void> f =
      pool.submit([] { throw InvalidArgumentError("task failed"); });
  EXPECT_THROW(f.get(), InvalidArgumentError);
}

TEST(ThreadPool, RejectsNegativeThreadCount) {
  EXPECT_THROW(ThreadPool(-1), InvalidArgumentError);
}

TEST(ThreadPool, ZeroPicksHardwareDefault) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), ThreadPool::default_thread_count());
  EXPECT_GE(pool.thread_count(), 1);
}

TEST(ThreadPool, TaskRngStreamsAreDeterministicPerIndex) {
  util::Rng a = task_rng(7), b = task_rng(7), c = task_rng(8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

// ------------------------------------------------------------- eval cache
TEST(EvalCache, MissThenHitWithStats) {
  EvalCache cache(4);
  const std::string key = "SAD|rsp2";
  EXPECT_FALSE(cache.lookup(key).has_value());

  int computed = 0;
  const auto compute = [&computed] {
    ++computed;
    EvalRecord r;
    r.cycles = 42;
    r.stalls = 3;
    return r;
  };
  const EvalRecord first = cache.get_or_compute(key, compute);
  const EvalRecord again = cache.get_or_compute(key, compute);
  EXPECT_EQ(computed, 1);  // second call served from the cache
  EXPECT_EQ(first, again);
  EXPECT_EQ(again.cycles, 42);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);  // explicit lookup + get_or_compute miss
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.hit_rate(), 0.0);
}

// A minimal placed program for key-composition checks.
sched::PlacedProgram tiny_program(std::int64_t priority) {
  sched::PlacedProgram program((arch::ArraySpec()));
  sched::ProgramOp op;
  op.kind = ir::OpKind::kNop;
  op.priority = priority;
  program.add(op);
  return program;
}

TEST(EvalCache, KeyIgnoresCosmeticNameButNotParameters) {
  const arch::Architecture rsp2 = arch::rsp_architecture(2);
  arch::Architecture renamed = rsp2;
  renamed.name = "same-params-different-name";
  const std::string tag = EvalCache::program_tag(tiny_program(0));
  EXPECT_EQ(EvalCache::key("SAD", tag, rsp2),
            EvalCache::key("SAD", tag, renamed));
  EXPECT_NE(EvalCache::key("SAD", tag, rsp2),
            EvalCache::key("SAD", tag, arch::rs_architecture(2)));
  EXPECT_NE(EvalCache::key("SAD", tag, rsp2),
            EvalCache::key("MVM", tag, rsp2));
  // Same kernel id, different mapping: must not alias one cache entry.
  EXPECT_NE(EvalCache::key("SAD", tag, rsp2),
            EvalCache::key("SAD", EvalCache::program_tag(tiny_program(1)),
                           rsp2));
}

TEST(EvalCache, InvalidationNeverServesStaleEntries) {
  EvalCache cache;
  const std::string key = "SAD|base";
  EvalRecord stale;
  stale.cycles = 1;
  cache.insert(key, stale);
  ASSERT_TRUE(cache.lookup(key).has_value());

  EXPECT_TRUE(cache.invalidate(key));
  EXPECT_FALSE(cache.invalidate(key));  // already gone
  EXPECT_FALSE(cache.lookup(key).has_value());

  EvalRecord fresh;
  fresh.cycles = 2;
  const EvalRecord served =
      cache.get_or_compute(key, [&fresh] { return fresh; });
  EXPECT_EQ(served.cycles, 2);  // recomputed, not the stale value
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(EvalCache, InvalidationDuringComputeIsNotResurrected) {
  EvalCache cache;
  const std::string key = "SAD|base";
  EvalRecord computed;
  computed.cycles = 7;
  // The compute callback races an invalidation: the result may be
  // *returned* but must not be *published* over the invalidation.
  const EvalRecord served = cache.get_or_compute(key, [&] {
    cache.invalidate(key);  // cancels this in-flight compute's publish
    return computed;
  });
  EXPECT_EQ(served.cycles, 7);
  EXPECT_FALSE(cache.lookup(key).has_value());
}

TEST(EvalCache, InvalidatingAnotherKeyDoesNotSuppressPublish) {
  EvalCache cache(1);  // one shard, so both keys share it
  const std::string key = "SAD|base";
  const std::string other = "MVM|base";
  EvalRecord computed;
  computed.cycles = 5;
  cache.get_or_compute(key, [&] {
    cache.invalidate(other);  // unrelated key: must not cancel this publish
    return computed;
  });
  EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST(EvalCache, ClearEmptiesEveryShard) {
  EvalCache cache(8);
  for (int v = 1; v <= 4; ++v) {
    EvalRecord r;
    r.cycles = v;
    cache.insert("k" + std::to_string(v), r);
  }
  EXPECT_EQ(cache.stats().entries, 4u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(EvalCache, SerializeDeserializeRoundTrip) {
  EvalCache cache(4);
  for (int v = 1; v <= 5; ++v) {
    EvalRecord r;
    r.cycles = v;
    r.stalls = v + 1;
    r.nostall_cycles = v + 2;
    r.max_critical_issues = v % 3;
    cache.insert("k" + std::to_string(v), r);
  }
  const util::Json doc = cache.serialize();
  EXPECT_EQ(doc.at("format").as_string(), "rsp-eval-cache");
  EXPECT_EQ(doc.at("version").as_number(), EvalCache::kSerialFormatVersion);
  EXPECT_EQ(doc.at("entries").size(), 5u);

  // Restore into a differently-sharded cache: shard count is a layout
  // detail, not part of the format.
  EvalCache restored(2);
  EXPECT_EQ(restored.deserialize(doc), 5u);
  EXPECT_EQ(restored.stats().entries, 5u);
  for (int v = 1; v <= 5; ++v) {
    const auto record = restored.lookup("k" + std::to_string(v));
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->cycles, v);
    EXPECT_EQ(record->stalls, v + 1);
    EXPECT_EQ(record->nostall_cycles, v + 2);
    EXPECT_EQ(record->max_critical_issues, v % 3);
  }
}

TEST(EvalCache, DeserializeRejectsVersionMismatchWithoutHalfLoading) {
  EvalCache cache;
  EvalRecord r;
  r.cycles = 9;
  cache.insert("k", r);
  util::Json doc = cache.serialize();
  doc.set("version", EvalCache::kSerialFormatVersion + 1);

  EvalCache restored;
  try {
    restored.deserialize(doc);
    FAIL() << "expected a version-mismatch rejection";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
  EXPECT_EQ(restored.stats().entries, 0u);

  // Foreign and malformed documents are rejected whole as well.
  EXPECT_THROW(restored.deserialize(util::Json::parse("{\"x\": 1}")),
               InvalidArgumentError);
  util::Json tampered = util::Json::parse(
      "{\"format\": \"rsp-eval-cache\", \"version\": 1, "
      "\"entries\": [{\"key\": \"k\", \"cycles\": 1.5, \"stalls\": 0, "
      "\"nostall_cycles\": 0, \"max_critical_issues\": 0}]}");
  EXPECT_THROW(restored.deserialize(tampered), InvalidArgumentError);
  EXPECT_EQ(restored.stats().entries, 0u);
}

TEST(EvalCache, ConcurrentGetOrComputeYieldsOneConsistentValue) {
  EvalCache cache(2);  // few shards → real contention
  ThreadPool pool(4);
  std::vector<std::future<EvalRecord>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([&cache, i] {
      const std::string key = "k" + std::to_string(i % 8);
      return cache.get_or_compute(key, [i] {
        EvalRecord r;
        r.cycles = (i % 8) + 1;  // deterministic per key
        return r;
      });
    }));
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().cycles, (i % 8) + 1);
  EXPECT_EQ(cache.stats().entries, 8u);
}

// ------------------------------------------------------ bounded eviction
TEST(EvalCache, EvictsLeastRecentlyUsedWhenBounded) {
  EvalCache cache(1, 4);  // one shard so capacity is exact
  for (int v = 0; v < 4; ++v) {
    EvalRecord r;
    r.cycles = v;
    cache.insert("k" + std::to_string(v), r);
  }
  EXPECT_EQ(cache.stats().entries, 4u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().max_entries, 4u);

  // A fifth insert evicts the least-recently-used probation key (k0).
  EvalRecord r;
  r.cycles = 4;
  cache.insert("k4", r);
  EXPECT_EQ(cache.stats().entries, 4u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.lookup("k0").has_value());
  EXPECT_TRUE(cache.lookup("k1").has_value());
}

TEST(EvalCache, SegmentedLruProtectsRepeatedlyHitKeysFromScans) {
  EvalCache cache(1, 4);
  EvalRecord hot;
  hot.cycles = 99;
  cache.insert("hot", hot);
  ASSERT_TRUE(cache.lookup("hot").has_value());  // promoted to protected

  // A scan of one-shot keys three times the capacity churns through the
  // probation segment but must not flush the protected entry.
  for (int v = 0; v < 12; ++v) {
    EvalRecord r;
    r.cycles = v;
    cache.insert("scan" + std::to_string(v), r);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  const auto served = cache.lookup("hot");
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(served->cycles, 99);
}

TEST(EvalCache, NewKeysAreNeverTheirOwnEvictionVictim) {
  // Degenerate small shards: with capacity 1 and the sole resident entry
  // promoted to the protected segment, an insert must evict the protected
  // entry — not the key just admitted, which would pin the old entry
  // forever and make the cache reject every new key.
  EvalCache cache(1, 1);
  EvalRecord a;
  a.cycles = 1;
  cache.insert("a", a);
  ASSERT_TRUE(cache.lookup("a").has_value());  // promote to protected

  EvalRecord b;
  b.cycles = 2;
  cache.insert("b", b);
  EXPECT_FALSE(cache.lookup("a").has_value());
  const auto served = cache.lookup("b");
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(served->cycles, 2);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(EvalCache, UnboundedByDefault) {
  EvalCache cache(2);
  for (int v = 0; v < 256; ++v) {
    EvalRecord r;
    r.cycles = v;
    cache.insert("k" + std::to_string(v), r);
  }
  EXPECT_EQ(cache.stats().entries, 256u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().max_entries, 0u);
}

TEST(EvalCache, EvictingCacheSnapshotRoundTrips) {
  EvalCache cache(2, 8);
  for (int v = 0; v < 32; ++v) {
    EvalRecord r;
    r.cycles = v;
    cache.insert("k" + std::to_string(v), r);
  }
  const CacheStats before = cache.stats();
  EXPECT_GT(before.evictions, 0u);
  const util::Json doc = cache.serialize();
  EXPECT_EQ(doc.at("entries").size(), before.entries);

  // Restoring into an equally-bounded cache keeps every snapshotted entry
  // (resident count <= capacity), and each survives with its exact value.
  EvalCache restored(2, 8);
  EXPECT_EQ(restored.deserialize(doc), before.entries);
  EXPECT_EQ(restored.stats().entries, before.entries);
  for (std::size_t i = 0; i < doc.at("entries").size(); ++i) {
    const util::Json& entry = doc.at("entries").at(i);
    const auto record = restored.lookup(entry.at("key").as_string());
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->cycles, entry.at("cycles").as_number());
  }
}

TEST(EvalCache, EvictionUnderConcurrencyStaysConsistent) {
  // Hammer a small bounded cache from many threads: every get_or_compute
  // must return the right value for its key regardless of eviction churn,
  // and the table must end within its (per-shard) bound.
  EvalCache cache(2, 8);
  ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 256; ++i)
    futures.push_back(pool.submit([&cache, i] {
      const int key = i % 32;
      const EvalRecord served =
          cache.get_or_compute("k" + std::to_string(key), [key] {
            EvalRecord r;
            r.cycles = key;
            return r;
          });
      ASSERT_EQ(served.cycles, key);
      if (i % 7 == 0) cache.invalidate("k" + std::to_string((key + 1) % 32));
    }));
  for (std::future<void>& f : futures) f.get();
  const CacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  // Per-shard bound: 2 shards x ceil(8/2) entries.
  EXPECT_LE(stats.entries, 8u);
}

// ------------------------------------------------------------ mapping cache
TEST(MappingCache, KeySeparatesHintsReductionAndGeometry) {
  const kernels::Workload base = kernels::find_workload("SAD");
  EXPECT_EQ(MappingCache::key(base), MappingCache::key(base));

  kernels::Workload changed_hints = base;
  changed_hints.hints.stagger += 1;
  EXPECT_NE(MappingCache::key(base), MappingCache::key(changed_hints));

  kernels::Workload changed_reduction = base;
  changed_reduction.reduction.index0 += 1;
  EXPECT_NE(MappingCache::key(base), MappingCache::key(changed_reduction));

  kernels::Workload changed_array = base;
  changed_array.array.read_buses_per_row += 1;
  EXPECT_NE(MappingCache::key(base), MappingCache::key(changed_array));

  // Distinct kernels never share an entry even under an equal layout.
  EXPECT_NE(MappingCache::key(base),
            MappingCache::key(kernels::find_workload("MVM")));
}

TEST(MappingCache, GetOrMapHitsAndMatchesDirectPreparation) {
  const kernels::Workload w = kernels::find_workload("SAD");
  MappingCache cache;
  const auto first = cache.get_or_map(w);
  const auto second = cache.get_or_map(w);
  EXPECT_EQ(first.get(), second.get());  // one shared record, no remap
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);

  const dse::KernelPrep direct = dse::prepare_kernel(w);
  EXPECT_EQ(EvalCache::program_tag(first->program),
            EvalCache::program_tag(direct.program));
  EXPECT_EQ(first->base_context.length(), direct.base_context.length());
}

TEST(MappingCache, InvalidationForcesRemapAndDropsDerivedEstimates) {
  const kernels::Workload w = kernels::find_workload("SAD");
  const std::string key = MappingCache::key(w);
  MappingCache cache;
  const auto record = cache.get_or_map(w);
  const core::PerfEstimate est = cache.get_or_estimate(
      key, record->base_context, arch::rsp_architecture(2));
  EXPECT_GT(est.estimated_cycles(), 0);
  EXPECT_EQ(cache.estimate_stats().entries, 1u);

  EXPECT_TRUE(cache.invalidate(key));
  EXPECT_FALSE(cache.invalidate(key));  // already gone
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.estimate_stats().entries, 0u);  // derived entries dropped

  // The remap recomputes an identical record (mapping is deterministic).
  const auto fresh = cache.get_or_map(w);
  EXPECT_NE(fresh.get(), record.get());
  EXPECT_EQ(EvalCache::program_tag(fresh->program),
            EvalCache::program_tag(record->program));
}

TEST(MappingCache, EstimatesMatchDirectComputation) {
  const kernels::Workload w = kernels::find_workload("MVM");
  const std::string key = MappingCache::key(w);
  MappingCache cache;
  const auto record = cache.get_or_map(w);
  for (const arch::Architecture& a :
       arch::standard_suite(w.array.rows, w.array.cols)) {
    if (a.shares_multiplier()) {
      const core::PerfEstimate direct =
          core::estimate_performance(record->base_context, a);
      const core::PerfEstimate cached =
          cache.get_or_estimate(key, record->base_context, a);
      const core::PerfEstimate warm =
          cache.get_or_estimate(key, record->base_context, a);
      EXPECT_EQ(cached.estimated_cycles(), direct.estimated_cycles());
      EXPECT_EQ(warm.estimated_cycles(), direct.estimated_cycles());
      EXPECT_EQ(warm.base_cycles, direct.base_cycles);
      EXPECT_EQ(warm.rs_stall_bound, direct.rs_stall_bound);
      EXPECT_EQ(warm.rp_overhead, direct.rp_overhead);
    }
  }
  EXPECT_GT(cache.estimate_stats().hits, 0u);
}

// ------------------------------------------------- parallel vs serial DSE
void expect_bit_identical(const dse::ExplorationResult& serial,
                          const dse::ExplorationResult& parallel) {
  EXPECT_EQ(serial.selected, parallel.selected);
  EXPECT_EQ(serial.base_cycles, parallel.base_cycles);
  EXPECT_EQ(serial.base_area, parallel.base_area);
  EXPECT_EQ(serial.base_time_ns, parallel.base_time_ns);
  ASSERT_EQ(serial.candidates.size(), parallel.candidates.size());
  for (std::size_t i = 0; i < serial.candidates.size(); ++i) {
    const dse::Candidate& s = serial.candidates[i];
    const dse::Candidate& p = parallel.candidates[i];
    EXPECT_EQ(s.point.label(), p.point.label());
    EXPECT_EQ(s.rejected, p.rejected);
    EXPECT_EQ(s.pareto, p.pareto);
    EXPECT_EQ(s.evaluated, p.evaluated);
    EXPECT_EQ(s.exact_cycles, p.exact_cycles) << s.point.label();
    EXPECT_EQ(s.total_stalls, p.total_stalls) << s.point.label();
    // Bitwise double equality is intended: the parallel reduction must
    // replay the serial accumulation order exactly.
    EXPECT_EQ(s.exact_time_ns, p.exact_time_ns) << s.point.label();
    EXPECT_EQ(s.estimated_time_ns, p.estimated_time_ns) << s.point.label();
    EXPECT_EQ(s.area_estimate, p.area_estimate) << s.point.label();
  }
}

TEST(ParallelExplorer, BitIdenticalToSerialOnPaperWorkload) {
  // The acceptance gate: serial Fig. 7 and the 4-thread runtime must agree
  // on every candidate and select the same optimum design point.
  const std::vector<kernels::Workload> domain = kernels::paper_suite();
  const dse::ExplorerConfig config;  // full default enumeration

  const dse::Explorer serial(arch::ArraySpec{}, config);
  const dse::ExplorationResult serial_result = serial.explore(domain);

  RuntimeOptions options;
  options.threads = 4;
  options.cache = std::make_shared<EvalCache>();
  const ParallelExplorer parallel(arch::ArraySpec{}, config,
                                  synth::SynthesisModel(), options);
  const dse::ExplorationResult parallel_result = parallel.explore(domain);

  expect_bit_identical(serial_result, parallel_result);
  ASSERT_GE(parallel_result.selected, 0);
  EXPECT_EQ(serial_result.best().point.label(),
            parallel_result.best().point.label());
}

TEST(ParallelExplorer, RepeatedExplorationServedFromCache) {
  const std::vector<kernels::Workload> domain = kernels::dsp_suite();
  dse::ExplorerConfig config;
  config.max_units_per_row = 2;
  config.max_units_per_col = 1;
  config.max_stages = 2;

  RuntimeOptions options;
  options.threads = 2;
  options.cache = std::make_shared<EvalCache>();
  const ParallelExplorer explorer(arch::ArraySpec{}, config,
                                  synth::SynthesisModel(), options);

  const dse::ExplorationResult first = explorer.explore(domain);
  const CacheStats after_first = options.cache->stats();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_GT(after_first.entries, 0u);

  const dse::ExplorationResult second = explorer.explore(domain);
  const CacheStats after_second = options.cache->stats();
  EXPECT_EQ(after_second.hits, after_first.entries);  // every pair reused
  EXPECT_EQ(after_second.entries, after_first.entries);
  expect_bit_identical(first, second);
}

// ------------------------------------------ parallel vs serial prepare
void expect_prepared_identical(const dse::PreparedExploration& serial,
                               const dse::PreparedExploration& parallel) {
  ASSERT_EQ(serial.kernel_names.size(), parallel.kernel_names.size());
  for (std::size_t k = 0; k < serial.kernel_names.size(); ++k) {
    EXPECT_EQ(serial.kernel_names[k], parallel.kernel_names[k]);
    EXPECT_EQ(EvalCache::program_tag(serial.programs[k]),
              EvalCache::program_tag(parallel.programs[k]));
  }
  const dse::ExplorationResult& s = serial.result;
  const dse::ExplorationResult& p = parallel.result;
  EXPECT_EQ(s.base_cycles, p.base_cycles);
  EXPECT_EQ(s.base_area, p.base_area);
  EXPECT_EQ(s.base_time_ns, p.base_time_ns);
  ASSERT_EQ(s.candidates.size(), p.candidates.size());
  for (std::size_t i = 0; i < s.candidates.size(); ++i) {
    const dse::Candidate& sc = s.candidates[i];
    const dse::Candidate& pc = p.candidates[i];
    EXPECT_EQ(sc.point.label(), pc.point.label());
    EXPECT_EQ(sc.architecture.name, pc.architecture.name);
    EXPECT_EQ(sc.rejected, pc.rejected) << sc.point.label();
    EXPECT_EQ(sc.reject_reason, pc.reject_reason) << sc.point.label();
    EXPECT_EQ(sc.pareto, pc.pareto) << sc.point.label();
    EXPECT_EQ(sc.estimated_cycles, pc.estimated_cycles) << sc.point.label();
    // Bitwise double equality is intended: the parallel path must replay
    // the serial computation exactly.
    EXPECT_EQ(sc.area_estimate, pc.area_estimate) << sc.point.label();
    EXPECT_EQ(sc.area_synthesized, pc.area_synthesized) << sc.point.label();
    EXPECT_EQ(sc.clock_ns, pc.clock_ns) << sc.point.label();
    EXPECT_EQ(sc.estimated_time_ns, pc.estimated_time_ns)
        << sc.point.label();
    EXPECT_FALSE(pc.evaluated);  // prepare stops before step 5
  }
  EXPECT_EQ(p.selected, -1);
}

TEST(ParallelExplorer, PrepareBitIdenticalToSerialOnPaperDomain) {
  // The prepare acceptance gate: serial steps 1-4 and the 4-thread fanned
  // version (with the mapping memo-cache interposed) must agree on every
  // candidate vector, reject reason and Pareto flag of the full paper
  // domain under the full default grid — and stay identical when served
  // warm from the cache.
  const std::vector<kernels::Workload> domain = kernels::paper_suite();
  const dse::ExplorerConfig config;  // full default enumeration

  const dse::Explorer serial(arch::ArraySpec{}, config);
  const dse::PreparedExploration serial_prep = serial.prepare(domain);

  RuntimeOptions options;
  options.threads = 4;
  options.mapping_cache = std::make_shared<MappingCache>();
  const ParallelExplorer parallel(arch::ArraySpec{}, config,
                                  synth::SynthesisModel(), options);
  const dse::PreparedExploration cold = parallel.prepare(domain);
  expect_prepared_identical(serial_prep, cold);
  EXPECT_EQ(options.mapping_cache->stats().entries, domain.size());

  const dse::PreparedExploration warm = parallel.prepare(domain);
  expect_prepared_identical(serial_prep, warm);
  EXPECT_EQ(options.mapping_cache->stats().hits, domain.size());
  EXPECT_GT(options.mapping_cache->estimate_stats().hits, 0u);
}

TEST(ParallelExplorer, PrepareWorksWithoutMappingCache) {
  const std::vector<kernels::Workload> domain = kernels::dsp_suite();
  dse::ExplorerConfig config;
  config.max_units_per_row = 2;
  config.max_units_per_col = 1;
  config.max_stages = 2;
  const dse::Explorer serial(arch::ArraySpec{}, config);
  ThreadPool pool(2);
  const dse::PreparedExploration parallel_prep =
      prepare_parallel(serial, domain, pool, nullptr);
  expect_prepared_identical(serial.prepare(domain), parallel_prep);
}

TEST(ParallelExplorer, PrepareRejectsBadDomains) {
  const dse::Explorer explorer((arch::ArraySpec()));
  ThreadPool pool(2);
  EXPECT_THROW(prepare_parallel(explorer, {}, pool, nullptr),
               InvalidArgumentError);
  kernels::Workload wrong_geometry = kernels::find_workload("SAD");
  wrong_geometry.array.rows = 4;
  EXPECT_THROW(
      prepare_parallel(explorer, {wrong_geometry}, pool, nullptr),
      InvalidArgumentError);
}

TEST(ParallelExplorer, WorksWithoutCacheAndWithExternalPool) {
  const std::vector<kernels::Workload> domain = {
      kernels::find_workload("SAD")};
  dse::ExplorerConfig config;
  config.max_units_per_row = 1;
  config.max_units_per_col = 0;
  config.max_stages = 2;

  ThreadPool pool(2);
  RuntimeOptions options;
  options.pool = &pool;  // no cache
  const ParallelExplorer parallel(arch::ArraySpec{}, config,
                                  synth::SynthesisModel(), options);
  const dse::Explorer serial(arch::ArraySpec{}, config);
  expect_bit_identical(serial.explore(domain), parallel.explore(domain));
}

// ------------------------------------------------------ parallel suite eval
TEST(ParallelExplorer, EvaluateSuiteMatchesSerialEvaluator) {
  const kernels::Workload w = kernels::find_workload("SAD");
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram program =
      mapper.map(w.kernel, w.hints, w.reduction);
  const std::vector<arch::Architecture> suite =
      arch::standard_suite(w.array.rows, w.array.cols);

  const core::RspEvaluator serial;
  const std::vector<core::EvalResult> expected =
      serial.evaluate_suite(program, suite);

  RuntimeOptions options;
  options.threads = 4;
  options.cache = std::make_shared<EvalCache>();
  const ParallelExplorer runtime(w.array, {}, synth::SynthesisModel(),
                                 options);
  // Twice: the second pass is served from the cache and must not drift.
  for (int round = 0; round < 2; ++round) {
    const std::vector<core::EvalResult> actual =
        runtime.evaluate_suite(w.name, program, suite);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].arch_name, expected[i].arch_name);
      EXPECT_EQ(actual[i].cycles, expected[i].cycles);
      EXPECT_EQ(actual[i].stalls, expected[i].stalls);
      EXPECT_EQ(actual[i].clock_ns, expected[i].clock_ns);
      EXPECT_EQ(actual[i].execution_time_ns, expected[i].execution_time_ns);
      EXPECT_EQ(actual[i].delay_reduction_percent,
                expected[i].delay_reduction_percent);
      EXPECT_EQ(actual[i].max_mults_per_cycle,
                expected[i].max_mults_per_cycle);
    }
  }
  EXPECT_GT(options.cache->stats().hits, 0u);
}

TEST(ParallelExplorer, EvaluateSuiteRejectsEmptySuite) {
  const kernels::Workload w = kernels::find_workload("SAD");
  const sched::LoopPipeliner mapper(w.array);
  const ParallelExplorer runtime(w.array);
  EXPECT_THROW(runtime.evaluate_suite(
                   w.name, mapper.map(w.kernel, w.hints, w.reduction), {}),
               InvalidArgumentError);
}

// -------------------------------------------------------------- batch API
TEST(Batch, TwoRequestFileRoundTripsThroughJson) {
  util::Json requests = util::Json::array();
  util::Json eval = util::Json::object();
  eval.set("op", "eval").set("kernel", "SAD");
  requests.push(std::move(eval));
  util::Json dse_req = util::Json::object();
  util::Json names = util::Json::array();
  names.push("SAD").push("MVM");
  util::Json config = util::Json::object();
  config.set("max_units_per_row", 2)
      .set("max_units_per_col", 1)
      .set("max_stages", 2);
  dse_req.set("op", "dse").set("kernels", std::move(names));
  dse_req.set("config", std::move(config));
  requests.push(std::move(dse_req));

  BatchOptions options;
  options.threads = 2;
  const util::Json response = run_batch(requests, options);

  // Valid JSON that survives a parse → dump round trip.
  const util::Json reparsed = util::Json::parse(response.dump());
  EXPECT_EQ(reparsed.dump(), response.dump());

  const util::Json& results = response.at("results");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results.at(0).at("ok").as_bool());
  EXPECT_EQ(results.at(0).at("op").as_string(), "eval");
  EXPECT_EQ(results.at(0).at("report").at("kernel").as_string(), "SAD");
  EXPECT_TRUE(results.at(1).at("ok").as_bool());
  EXPECT_EQ(results.at(1).at("op").as_string(), "dse");
  EXPECT_TRUE(results.at(1).at("selected").is_object());
  EXPECT_EQ(results.at(1).at("request").as_number(), 1);

  const util::Json& runtime = response.at("runtime");
  EXPECT_EQ(runtime.at("requests").as_number(), 2);
  EXPECT_EQ(runtime.at("threads").as_number(), 2);
  // Requests overlap on the shared pool since PR 3, so how many of SAD's
  // measurements request 1's DSE reuses is scheduling-dependent — assert
  // the shared table was populated, not an exact hit split.
  EXPECT_GT(runtime.at("cache_entries_total").as_number(), 0);
  EXPECT_GE(runtime.at("cache_hits").as_number(), 0);
}

TEST(Batch, BadRequestIsReportedInBandNotFatal) {
  util::Json requests = util::Json::array();
  util::Json bad = util::Json::object();
  bad.set("op", "eval").set("kernel", "no-such-kernel");
  requests.push(std::move(bad));
  util::Json good = util::Json::object();
  good.set("op", "eval").set("kernel", "MVM");
  requests.push(std::move(good));

  const util::Json response = run_batch(requests);
  const util::Json& results = response.at("results");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results.at(0).at("ok").as_bool());
  EXPECT_FALSE(results.at(0).at("error").as_string().empty());
  EXPECT_TRUE(results.at(1).at("ok").as_bool());
}

TEST(Batch, SharedCacheStatsAreScopedToTheBatch) {
  util::Json requests = util::Json::array();
  util::Json eval = util::Json::object();
  eval.set("op", "eval").set("kernel", "MVM");
  requests.push(std::move(eval));

  BatchOptions options;
  options.threads = 1;
  options.cache = std::make_shared<EvalCache>();  // warm across batches
  const util::Json first = run_batch(requests, options);
  const util::Json second = run_batch(requests, options);

  // First batch populates the shared cache (no hits); the second is served
  // entirely warm, and its report must cover only its own activity — not
  // the first batch's counter totals.
  EXPECT_EQ(first.at("runtime").at("cache_hits").as_number(), 0);
  EXPECT_GT(first.at("runtime").at("cache_misses").as_number(), 0);
  EXPECT_EQ(second.at("runtime").at("cache_misses").as_number(), 0);
  EXPECT_GT(second.at("runtime").at("cache_hits").as_number(), 0);
  EXPECT_EQ(second.at("runtime").at("cache_hit_rate").as_number(), 1.0);
}

TEST(Batch, UnknownDseConfigKeyIsReportedInBand) {
  util::Json requests = util::Json::array();
  util::Json dse_req = util::Json::object();
  util::Json names = util::Json::array();
  names.push("SAD");
  util::Json config = util::Json::object();
  config.set("objetive", "min_area");  // typo'd "objective"
  dse_req.set("op", "dse").set("kernels", std::move(names));
  dse_req.set("config", std::move(config));
  requests.push(std::move(dse_req));

  const util::Json response = run_batch(requests);
  const util::Json& result = response.at("results").at(0);
  EXPECT_FALSE(result.at("ok").as_bool());
  EXPECT_NE(result.at("error").as_string().find("objetive"),
            std::string::npos);
}

TEST(Batch, NonIntegralDseConfigValueIsRejected) {
  util::Json requests = util::Json::array();
  util::Json dse_req = util::Json::object();
  util::Json names = util::Json::array();
  names.push("SAD");
  util::Json config = util::Json::object();
  config.set("max_stages", 3.7);
  dse_req.set("op", "dse").set("kernels", std::move(names));
  dse_req.set("config", std::move(config));
  requests.push(std::move(dse_req));

  const util::Json response = run_batch(requests);
  const util::Json& result = response.at("results").at(0);
  EXPECT_FALSE(result.at("ok").as_bool());
  EXPECT_NE(result.at("error").as_string().find("max_stages"),
            std::string::npos);
}

TEST(Batch, RejectsNonArrayInput) {
  EXPECT_THROW(run_batch(util::Json::object()), InvalidArgumentError);
  EXPECT_THROW(run_batch(util::Json("eval")), InvalidArgumentError);
}

// -------------------------------------------------- thread-safe logging
// --------------------------------------------------------- batched sim
sched::ConfigurationContext schedule_workload(const kernels::Workload& w,
                                              const arch::Architecture& a) {
  const sched::LoopPipeliner mapper(w.array);
  return sched::ContextScheduler().schedule(
      mapper.map(w.kernel, w.hints, w.reduction), a);
}

TEST(SimBatch, BatchIsBitIdenticalToSerialRunsAndPositional) {
  const kernels::Workload w = kernels::find_workload("SAD");
  const sched::ConfigurationContext ctx =
      schedule_workload(w, arch::rsp_architecture(4));

  // Six memories, each perturbed at a distinct address so a shuffled result
  // order could not pass.
  std::vector<ir::Memory> memories(6);
  for (int i = 0; i < 6; ++i) {
    w.setup(memories[static_cast<std::size_t>(i)]);
    memories[static_cast<std::size_t>(i)].write("cur", i, 100 + i);
  }

  const std::vector<SimBatchResult> batch =
      simulate_batch(ctx, memories, SimBatchOptions{.threads = 4});
  ASSERT_EQ(batch.size(), memories.size());

  const sim::Machine dense;  // serial reference on the dense engine
  for (std::size_t i = 0; i < memories.size(); ++i) {
    ir::Memory serial = memories[i];
    const sim::SimResult expected = dense.run(ctx, serial);
    EXPECT_TRUE(batch[i].result == expected) << "job " << i;
    EXPECT_TRUE(batch[i].memory == serial) << "job " << i;
  }
}

TEST(SimBatch, DenseAndEventEngineBatchesAgree) {
  const kernels::Workload w = kernels::find_workload("Inner product");
  const sched::ConfigurationContext ctx =
      schedule_workload(w, arch::rs_architecture(2));
  std::vector<ir::Memory> memories(3);
  for (auto& m : memories) w.setup(m);

  const auto event = simulate_batch(
      ctx, memories,
      SimBatchOptions{.threads = 2, .engine = sim::SimEngine::kEvent});
  const auto dense = simulate_batch(
      ctx, memories,
      SimBatchOptions{.threads = 2, .engine = sim::SimEngine::kDense});
  ASSERT_EQ(event.size(), dense.size());
  for (std::size_t i = 0; i < event.size(); ++i) {
    EXPECT_TRUE(event[i].result == dense[i].result) << "job " << i;
    EXPECT_TRUE(event[i].memory == dense[i].memory) << "job " << i;
  }
}

TEST(SimBatch, EmptyAndSingleJobShortcuts) {
  const kernels::Workload w = kernels::find_workload("SAD");
  const sched::ConfigurationContext ctx =
      schedule_workload(w, arch::base_architecture());
  EXPECT_TRUE(simulate_batch(ctx, {}).empty());

  std::vector<ir::Memory> one(1);
  w.setup(one[0]);
  ir::Memory serial = one[0];
  const auto batch = simulate_batch(ctx, std::move(one));
  ASSERT_EQ(batch.size(), 1u);
  const sim::SimResult expected = sim::Machine().run(ctx, serial);
  EXPECT_TRUE(batch[0].result == expected);
  EXPECT_TRUE(batch[0].memory == serial);
}

TEST(SimBatch, RunsOnExternalPool) {
  const kernels::Workload w = kernels::find_workload("MVM");
  const sched::ConfigurationContext ctx =
      schedule_workload(w, arch::rsp_architecture(1));
  std::vector<ir::Memory> memories(4);
  for (auto& m : memories) w.setup(m);

  ThreadPool pool(2);
  SimBatchOptions options;
  options.pool = &pool;
  const auto batch = simulate_batch(ctx, memories, options);
  ASSERT_EQ(batch.size(), 4u);
  ir::Memory golden;
  w.setup(golden);
  w.golden(golden);
  for (const auto& out : batch) EXPECT_TRUE(out.memory == golden);
}

TEST(SimBatch, SimulateManyIsPositionalAcrossContexts) {
  const kernels::Workload sad = kernels::find_workload("SAD");
  const kernels::Workload mvm = kernels::find_workload("MVM");
  const sched::ConfigurationContext sad_ctx =
      schedule_workload(sad, arch::rsp_architecture(4));
  const sched::ConfigurationContext mvm_ctx =
      schedule_workload(mvm, arch::base_architecture());

  std::vector<ir::Memory> memories(2);
  sad.setup(memories[0]);
  mvm.setup(memories[1]);
  const auto outcomes = simulate_many({&sad_ctx, &mvm_ctx}, memories,
                                      SimBatchOptions{.threads = 2});
  ASSERT_EQ(outcomes.size(), 2u);

  ir::Memory sad_golden, mvm_golden;
  sad.setup(sad_golden);
  sad.golden(sad_golden);
  mvm.setup(mvm_golden);
  mvm.golden(mvm_golden);
  EXPECT_TRUE(outcomes[0].memory == sad_golden);
  EXPECT_TRUE(outcomes[1].memory == mvm_golden);
}

TEST(SimBatch, SimulateManyValidatesShapes) {
  const kernels::Workload w = kernels::find_workload("SAD");
  const sched::ConfigurationContext ctx =
      schedule_workload(w, arch::base_architecture());
  std::vector<ir::Memory> two(2);
  w.setup(two[0]);
  w.setup(two[1]);
  EXPECT_THROW(simulate_many({&ctx}, two), InvalidArgumentError);
  std::vector<ir::Memory> one(1);
  w.setup(one[0]);
  EXPECT_THROW(simulate_many({nullptr}, one), InvalidArgumentError);
}

TEST(SimBatch, PropagatesSimulationErrorsFromWorkers) {
  // Two kConst ops double-book PE (0,0): every job must fail, and the
  // batch call surfaces the first failure by position.
  std::vector<sched::ScheduledOp> ops(2);
  ops[0].kind = ir::OpKind::kConst;
  ops[1].kind = ir::OpKind::kConst;
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);
  std::vector<ir::Memory> memories(3);
  for (const sim::SimEngine engine :
       {sim::SimEngine::kDense, sim::SimEngine::kEvent}) {
    SimBatchOptions options;
    options.threads = 2;
    options.engine = engine;
    EXPECT_THROW(simulate_batch(ctx, memories, options), Error)
        << sim::engine_name(engine);
  }
}

TEST(LoggingThreads, ConcurrentEmissionIsSerializedAndLossless) {
  std::mutex sink_mutex;
  std::vector<std::string> lines;
  const util::LogLevel previous_threshold = util::log_threshold();
  util::set_log_threshold(util::LogLevel::kDebug);
  util::LogSink previous = util::set_log_sink(
      [&](util::LogLevel, const std::string& message) {
        const std::lock_guard<std::mutex> lock(sink_mutex);
        lines.push_back(message);
      });

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t)
      pool.submit([t] {
        for (int i = 0; i < kPerThread; ++i)
          RSP_LOG(kDebug) << "thread " << t << " message " << i;
      });
  }

  util::set_log_sink(std::move(previous));
  util::set_log_threshold(previous_threshold);

  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // Records must arrive whole: every line matches the emitted shape, with
  // no interleaving of the two stream insertions.
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("thread ", 0), 0u) << line;
    EXPECT_NE(line.find(" message "), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace rsp::runtime
