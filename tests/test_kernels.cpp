#include <gtest/gtest.h>

#include "ir/interp.hpp"
#include "ir/unroll.hpp"
#include "kernels/matmul.hpp"
#include "kernels/registry.hpp"
#include "synth/paper_reference.hpp"
#include "util/error.hpp"

namespace rsp::kernels {
namespace {

// ------------------------------------------------------------------ suite
TEST(Registry, PaperSuiteCompleteAndOrdered) {
  const auto suite = paper_suite();
  ASSERT_EQ(suite.size(), 9u);
  const char* expected[] = {"Hydro",   "ICCG", "Tri-diagonal",
                            "Inner product", "State", "2D-FDCT",
                            "SAD",     "MVM",  "FFT"};
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(suite[i].name, expected[i]);
}

TEST(Registry, FindByNameAndUnknown) {
  EXPECT_EQ(find_workload("SAD").name, "SAD");
  EXPECT_THROW(find_workload("H264"), NotFoundError);
}

TEST(Registry, IterationCountsMatchPaperAnnotations) {
  EXPECT_EQ(find_workload("Hydro").kernel.trip_count(), 32);
  EXPECT_EQ(find_workload("ICCG").kernel.trip_count(), 32);
  EXPECT_EQ(find_workload("Tri-diagonal").kernel.trip_count(), 64);
  EXPECT_EQ(find_workload("Inner product").kernel.trip_count(), 128);
  EXPECT_EQ(find_workload("State").kernel.trip_count(), 16);
  EXPECT_EQ(find_workload("MVM").kernel.trip_count(), 64);
  EXPECT_EQ(find_workload("FFT").kernel.trip_count(), 32);
}

// Table 3 "operation set" column.
TEST(Registry, OpSetsMatchPaperTable3) {
  EXPECT_EQ(find_workload("Hydro").kernel.op_set_string(), "mult, add");
  EXPECT_EQ(find_workload("ICCG").kernel.op_set_string(), "mult, sub");
  EXPECT_EQ(find_workload("Tri-diagonal").kernel.op_set_string(),
            "mult, sub");
  EXPECT_EQ(find_workload("Inner product").kernel.op_set_string(),
            "mult, add");
  EXPECT_EQ(find_workload("State").kernel.op_set_string(), "mult, add");
  EXPECT_EQ(find_workload("2D-FDCT").kernel.op_set_string(),
            "mult, add, sub, shift");
  EXPECT_EQ(find_workload("FFT").kernel.op_set_string(), "mult, add, sub");
  // SAD must not multiply at all.
  EXPECT_EQ(find_workload("SAD").kernel.mults_per_iteration(), 0);
}

TEST(Registry, BodiesHaveNoDeadValues) {
  for (const auto& w : paper_suite()) {
    for (ir::NodeId dead : w.kernel.body().dead_value_nodes()) {
      // A reduction source is consumed by the mapper's epilogue, not by the
      // body itself; anything else dangling is a kernel-definition bug.
      EXPECT_EQ(dead, w.reduction.source)
          << w.name << " has dead value node " << dead;
    }
  }
}

TEST(Registry, SetupProvidesEveryArrayTheBodyTouches) {
  for (const auto& w : paper_suite()) {
    ir::Memory m;
    w.setup(m);
    for (const ir::Node& n : w.kernel.body().nodes()) {
      if (n.mem) {
        EXPECT_TRUE(m.has(n.mem->array))
            << w.name << " touches unallocated array " << n.mem->array;
      }
    }
  }
}

TEST(Registry, DeterministicDataIsStable) {
  const auto a = deterministic_data("tag", 16, -5, 5);
  const auto b = deterministic_data("tag", 16, -5, 5);
  EXPECT_EQ(a, b);
  const auto c = deterministic_data("other", 16, -5, 5);
  EXPECT_NE(a, c);
  for (auto v : a) {
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Registry, DeterministicDataBoundsEdgeCases) {
  // Degenerate single-value range: every element is the bound itself.
  const auto pinned = deterministic_data("tag", 8, 7, 7);
  for (auto v : pinned) EXPECT_EQ(v, 7);
  // An inverted range is a contract violation, not undefined behavior.
  EXPECT_THROW(deterministic_data("tag", 8, 5, -5), InvalidArgumentError);
  try {
    deterministic_data("tag", 8, 1, 0);
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("empty range"), std::string::npos);
  }
}

// ------------------------------------- interpreter vs golden (every kernel)
class KernelGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelGolden, InterpreterMatchesIndependentReference) {
  const Workload w = find_workload(GetParam());
  ir::Memory interp_mem, golden_mem;
  w.setup(interp_mem);
  w.setup(golden_mem);
  const ir::UnrolledGraph u(w.kernel);
  ir::interpret(u, interp_mem);
  w.golden(golden_mem);

  if (w.reduction.enabled()) {
    // The loop part cannot produce the reduced output; compare everything
    // except the reduction target, which only the golden model wrote.
    for (const std::string& name : golden_mem.names()) {
      if (name == w.reduction.array) continue;
      EXPECT_EQ(interp_mem.array(name), golden_mem.array(name))
          << w.name << " array " << name;
    }
  } else {
    EXPECT_TRUE(interp_mem == golden_mem) << w.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelGolden,
    ::testing::Values("Hydro", "ICCG", "Tri-diagonal", "Inner product",
                      "State", "2D-FDCT", "SAD", "MVM", "FFT"),
    [](const auto& info) {
      std::string n = info.param;
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

// ---------------------------------------------------------------- matmul
TEST(Matmul, GoldenMatchesInterpreter) {
  const Workload w = make_matmul(4, 3);
  ir::Memory a, b;
  w.setup(a);
  w.setup(b);
  ir::interpret(ir::UnrolledGraph(w.kernel), a);
  w.golden(b);
  EXPECT_TRUE(a == b);
}

TEST(Matmul, OrderValidation) {
  EXPECT_THROW(make_matmul(1), InvalidArgumentError);
  EXPECT_THROW(make_matmul(17), InvalidArgumentError);
  EXPECT_EQ(make_matmul(8).kernel.trip_count(), 64);
  EXPECT_EQ(make_matmul(8).array.rows, 8);
}

TEST(Matmul, BodyHasNPlusOneMults) {
  // N products + the C scaling mult of eq. (1).
  EXPECT_EQ(make_matmul(4).kernel.mults_per_iteration(), 5);
}

// --------------------------------------------- accumulator chain distances
TEST(Registry, ReductionKernelsKeepChainsOnOnePe) {
  // Loop-carried accumulator distance must equal lanes × columns so the
  // chain revisits the same PE (mapping-hint invariant).
  for (const char* name : {"Inner product", "SAD"}) {
    const Workload w = find_workload(name);
    const ir::Node& acc = w.kernel.body().node(w.reduction.source);
    ASSERT_FALSE(acc.carried.empty()) << name;
    EXPECT_EQ(acc.carried[0].distance, w.hints.lanes * w.hints.columns)
        << name;
    EXPECT_FALSE(w.hints.cycle_row_bands) << name;
  }
}

}  // namespace
}  // namespace rsp::kernels
