#include <gtest/gtest.h>

#include "dse/explorer.hpp"
#include "dse/pareto.hpp"
#include "kernels/matmul.hpp"
#include "kernels/registry.hpp"
#include "util/error.hpp"

namespace rsp::dse {
namespace {

// ------------------------------------------------------------------ pareto
struct Pt {
  double a, b;
};

TEST(Pareto, ExtractsNonDominatedSet) {
  const std::vector<Pt> pts = {{1, 5}, {2, 2}, {3, 4}, {5, 1}, {4, 4}};
  const auto front = pareto_front<Pt>(
      pts, [](const Pt& p) { return p.a; }, [](const Pt& p) { return p.b; });
  // {3,4} dominated by {2,2}; {4,4} dominated by {2,2}.
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Pareto, DuplicatesKeepFirst) {
  const std::vector<Pt> pts = {{1, 1}, {1, 1}};
  const auto front = pareto_front<Pt>(
      pts, [](const Pt& p) { return p.a; }, [](const Pt& p) { return p.b; });
  EXPECT_EQ(front, std::vector<std::size_t>{0});
}

TEST(Pareto, SinglePointSurvives) {
  const std::vector<Pt> pts = {{7, 7}};
  const auto front = pareto_front<Pt>(
      pts, [](const Pt& p) { return p.a; }, [](const Pt& p) { return p.b; });
  EXPECT_EQ(front.size(), 1u);
}

// ---------------------------------------------------------------- explorer
TEST(Explorer, LabelsAndValidation) {
  EXPECT_EQ((DesignPoint{0, 0, 1}).label(), "Base");
  EXPECT_EQ((DesignPoint{2, 0, 1}).label(), "2r");
  EXPECT_EQ((DesignPoint{2, 1, 2}).label(), "2r+1c/p2");
  ExplorerConfig bad;
  bad.max_stages = 0;
  EXPECT_THROW(Explorer(arch::ArraySpec{}, bad), InvalidArgumentError);
}

TEST(Explorer, ConfigValidationNamesTheOffendingField) {
  const auto expect_rejected = [](ExplorerConfig config,
                                  const std::string& needle) {
    try {
      config.validate();
      FAIL() << "expected rejection mentioning " << needle;
    } catch (const InvalidArgumentError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  ExplorerConfig config;
  config.validate();  // defaults are well-formed

  config.max_units_per_row = -1;
  expect_rejected(config, "max_units_per_row");
  config = ExplorerConfig{};
  config.max_units_per_col = -2;
  expect_rejected(config, "max_units_per_col");
  config = ExplorerConfig{};
  config.max_stages = 0;
  expect_rejected(config, "max_stages");
  config = ExplorerConfig{};
  config.max_area_ratio = 0.0;
  expect_rejected(config, "max_area_ratio");
  config = ExplorerConfig{};
  config.max_time_ratio = -1.0;
  expect_rejected(config, "max_time_ratio");
  config = ExplorerConfig{};
  config.pareto_epsilon = -0.01;
  expect_rejected(config, "pareto_epsilon");

  // Zero unit bounds stay legal for programmatic use: they restrict the
  // grid to one sharing dimension (or the base point alone).
  config = ExplorerConfig{};
  config.max_units_per_row = 0;
  config.max_units_per_col = 0;
  config.validate();
}

TEST(Explorer, EnumeratesTheSerialGridOrder) {
  ExplorerConfig config;
  config.max_units_per_row = 1;
  config.max_units_per_col = 1;
  config.max_stages = 2;
  const Explorer explorer(arch::ArraySpec{}, config);
  const std::vector<DesignPoint> points = explorer.enumerate_points();
  // upr-major, then upc, then stages; the base point skips stages > 1.
  std::vector<std::string> labels;
  for (const DesignPoint& p : points) labels.push_back(p.label());
  const std::vector<std::string> expected = {
      "Base", "1c", "1c/p2", "1r", "1r/p2", "1r+1c", "1r+1c/p2"};
  EXPECT_EQ(labels, expected);
}

class ExplorerFlow : public ::testing::Test {
 protected:
  static const ExplorationResult& result() {
    // Exploring the full DSP domain once is enough for all assertions.
    static const ExplorationResult r = [] {
      ExplorerConfig config;
      config.max_units_per_row = 2;
      config.max_units_per_col = 1;
      config.max_stages = 2;
      Explorer explorer(arch::ArraySpec{}, config);
      return explorer.explore(kernels::dsp_suite());
    }();
    return r;
  }
};

TEST_F(ExplorerFlow, EnumeratesExpectedPointCount) {
  // (upr 0..2) × (upc 0..1) × (stages 1..2) minus the skipped
  // base-with-pipelining point = 12 - 1 = 11.
  EXPECT_EQ(result().candidates.size(), 11u);
}

TEST_F(ExplorerFlow, BaseIsACandidateAndNotRejected) {
  const auto& cands = result().candidates;
  const auto base = std::find_if(
      cands.begin(), cands.end(),
      [](const Candidate& c) { return c.point.is_base(); });
  ASSERT_NE(base, cands.end());
  EXPECT_FALSE(base->rejected);
}

TEST_F(ExplorerFlow, SharedDesignsAreCheaperThanBase) {
  for (const Candidate& c : result().candidates) {
    if (c.point.is_base()) continue;
    EXPECT_LT(c.area_synthesized, result().base_area) << c.point.label();
  }
}

TEST_F(ExplorerFlow, ParetoPointsAreEvaluatedExactly) {
  int pareto = 0;
  for (const Candidate& c : result().candidates) {
    if (c.pareto) {
      ++pareto;
      EXPECT_TRUE(c.evaluated);
      EXPECT_GT(c.exact_cycles, 0);
      // The estimate is an optimistic bound (paper §4).
      EXPECT_LE(c.estimated_cycles, c.exact_cycles) << c.point.label();
    } else {
      EXPECT_FALSE(c.evaluated);
    }
  }
  EXPECT_GE(pareto, 2);
}

TEST_F(ExplorerFlow, ParetoSetIsEpsilonNonDominated) {
  // With the default ε = 0.05 relaxation, no survivor may be beaten by
  // another survivor by more than 5% in BOTH objectives.
  const auto points = result().pareto_points();
  for (const auto* x : points)
    for (const auto* y : points) {
      if (x == y) continue;
      const bool strongly_dominates =
          y->area_estimate * 1.05 <= x->area_estimate &&
          y->estimated_time_ns * 1.05 <= x->estimated_time_ns;
      EXPECT_FALSE(strongly_dominates);
    }
}

TEST(Pareto, EpsilonFrontIsSupersetOfStrictFront) {
  const std::vector<Pt> pts = {{1, 5}, {2, 2}, {3, 4}, {5, 1}, {4, 4}};
  auto a = [](const Pt& p) { return p.a; };
  auto b = [](const Pt& p) { return p.b; };
  const auto strict = pareto_front<Pt>(pts, a, b);
  const auto relaxed = epsilon_pareto_front<Pt>(pts, a, b, 0.6);
  for (std::size_t i : strict)
    EXPECT_NE(std::find(relaxed.begin(), relaxed.end(), i), relaxed.end());
  EXPECT_GE(relaxed.size(), strict.size());
}

TEST_F(ExplorerFlow, SelectsAPipelinedSharedDesign)
{
  // On the DSP domain the optimum under area×time must share AND pipeline
  // (that is the paper's whole point).
  const Candidate& best = result().best();
  EXPECT_TRUE(best.architecture.shares_multiplier());
  EXPECT_TRUE(best.architecture.pipelines_multiplier());
  EXPECT_LT(best.exact_time_ns * best.area_synthesized,
            result().base_time_ns * result().base_area);
}

TEST(Explorer, ObjectiveMinAreaPicksSmallestEvaluated) {
  ExplorerConfig config;
  config.max_units_per_row = 2;
  config.max_units_per_col = 0;
  config.max_stages = 2;
  config.objective = Objective::kMinArea;
  Explorer explorer(arch::ArraySpec{}, config);
  const auto result = explorer.explore({kernels::find_workload("MVM")});
  const Candidate& best = result.best();
  for (const Candidate& c : result.candidates) {
    if (c.evaluated) {
      EXPECT_LE(best.area_synthesized, c.area_synthesized);
    }
  }
}

TEST(Explorer, RejectsTooSlowDesigns) {
  ExplorerConfig config;
  config.max_units_per_row = 1;
  config.max_units_per_col = 0;
  config.max_stages = 1;
  config.max_time_ratio = 1.0;  // nothing slower than base allowed
  Explorer explorer(arch::ArraySpec{}, config);
  // 2D-FDCT on RS#1-style sharing stalls heavily → estimated time exceeds
  // base → rejected.
  const auto result = explorer.explore({kernels::find_workload("2D-FDCT")});
  bool saw_rejection = false;
  for (const Candidate& c : result.candidates)
    if (c.rejected) {
      saw_rejection = true;
      EXPECT_FALSE(c.reject_reason.empty());
    }
  EXPECT_TRUE(saw_rejection);
}

TEST(Explorer, ThrowsOnEmptyDomainOrWrongGeometry) {
  Explorer explorer((arch::ArraySpec()));
  EXPECT_THROW(explorer.explore({}), InvalidArgumentError);
  auto w = kernels::make_matmul(4);  // 4×4 kernel, 8×8 explorer
  EXPECT_THROW(explorer.explore({w}), InvalidArgumentError);
}

}  // namespace
}  // namespace rsp::dse
