// The rsp::api façade: Service typed dispatch (bit-identical to the serial
// paths), the v2 protocol codec, the v1 batch compatibility shim, cache
// persistence, and the NDJSON serve loop (out-of-order streaming, in-band
// protocol errors). The Service/Protocol/Serve suites also run under the
// tsan preset — the serial-vs-service agreement checks are exercised with
// ThreadSanitizer watching the pools.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "api/protocol.hpp"
#include "api/serve.hpp"
#include "api/service.hpp"
#include "arch/presets.hpp"
#include "core/evaluator.hpp"
#include "core/report_json.hpp"
#include "dse/explorer.hpp"
#include "kernels/registry.hpp"
#include "runtime/eval_cache.hpp"
#include "sched/mapper.hpp"
#include "util/error.hpp"

namespace rsp::api {
namespace {

// Unique scratch path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "rsp_api_" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

ServiceOptions small_options(int threads = 2, int max_inflight = 2) {
  ServiceOptions options;
  options.threads = threads;
  options.max_inflight = max_inflight;
  return options;
}

dse::ExplorerConfig small_dse_config() {
  dse::ExplorerConfig config;
  config.max_units_per_row = 2;
  config.max_units_per_col = 1;
  config.max_stages = 2;
  return config;
}

// ----------------------------------------------------------------- service

TEST(Service, EvalBitIdenticalToSerialEvaluator) {
  // The acceptance gate: the Service path (parallel runtime + memo cache)
  // must agree with core::RspEvaluator on every field of every row.
  const kernels::Workload w = kernels::find_workload("SAD");
  const sched::LoopPipeliner mapper(w.array);
  const std::vector<core::EvalResult> expected =
      core::RspEvaluator().evaluate_suite(
          mapper.map(w.kernel, w.hints, w.reduction),
          arch::standard_suite(w.array.rows, w.array.cols));

  const Service service(small_options(4));
  // Twice: the second pass is served from the warm cache and must not
  // drift from the serial rows either.
  for (int round = 0; round < 2; ++round) {
    const EvalResponse resp = service.eval({"SAD"});
    EXPECT_EQ(resp.kernel, "SAD");
    ASSERT_EQ(resp.rows.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(resp.rows[i].arch_name, expected[i].arch_name);
      EXPECT_EQ(resp.rows[i].cycles, expected[i].cycles);
      EXPECT_EQ(resp.rows[i].stalls, expected[i].stalls);
      // Bitwise double equality is intended: the parallel reduction must
      // replay the serial accumulation order exactly.
      EXPECT_EQ(resp.rows[i].clock_ns, expected[i].clock_ns);
      EXPECT_EQ(resp.rows[i].execution_time_ns,
                expected[i].execution_time_ns);
      EXPECT_EQ(resp.rows[i].delay_reduction_percent,
                expected[i].delay_reduction_percent);
      EXPECT_EQ(resp.rows[i].max_mults_per_cycle,
                expected[i].max_mults_per_cycle);
    }
  }
}

TEST(Service, DseBitIdenticalToSerialExplorer) {
  const std::vector<kernels::Workload> domain = {
      kernels::find_workload("SAD"), kernels::find_workload("MVM")};
  const dse::Explorer serial(domain.front().array, small_dse_config());

  const Service service(small_options());
  DseRequest request;
  request.kernels = {"SAD", "MVM"};
  request.config = small_dse_config();
  const DseResponse resp = service.dse(request);

  // Rendering both results through the one body renderer compares every
  // reported field (candidates, pareto set, base, selected optimum).
  DseResponse serial_resp;
  serial_resp.kernels = resp.kernels;
  serial_resp.result = serial.explore(domain);
  EXPECT_EQ(to_body(resp).dump(), to_body(serial_resp).dump());
}

TEST(Service, DseWithoutKernelsExploresPaperSuite) {
  const Service service(small_options());
  DseRequest request;
  request.config = small_dse_config();
  const DseResponse resp = service.dse(request);
  const std::vector<kernels::Workload> suite = kernels::paper_suite();
  ASSERT_EQ(resp.kernels.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i)
    EXPECT_EQ(resp.kernels[i], suite[i].name);
}

TEST(Service, ListReportsCatalogueAndStandardSuite) {
  const Service service(small_options(1, 1));
  const ListResponse resp = service.list({});
  EXPECT_EQ(resp.kernels.size(), kernels::full_catalogue().size());
  ASSERT_EQ(resp.architectures.size(), 9u);  // Base, RS#1..4, RSP#1..4
  EXPECT_EQ(resp.architectures.front(), "Base");
  bool has_sad = false;
  for (const KernelInfo& info : resp.kernels)
    if (info.name == "SAD") {
      has_sad = true;
      EXPECT_GT(info.iterations, 0);
      EXPECT_FALSE(info.array.empty());
    }
  EXPECT_TRUE(has_sad);
}

TEST(Service, MapSimulateBitstreamRoundTrip) {
  const Service service(small_options(1, 1));
  const MapResponse map = service.map({"SAD", "RSP#4"});
  EXPECT_EQ(map.kernel, "SAD");
  EXPECT_EQ(map.arch, "RSP#4");
  EXPECT_GT(map.cycles, 0);
  EXPECT_FALSE(map.schedule.empty());

  const SimulateResponse sim = service.simulate({"SAD", "RSP#4"});
  EXPECT_TRUE(sim.matches_golden);
  EXPECT_GT(sim.cycles, 0);
  EXPECT_GT(sim.pe_utilization, 0.0);

  const BitstreamResponse bits = service.bitstream({"SAD", "RSP#4"});
  EXPECT_GT(bits.bytes, 0u);
  EXPECT_FALSE(bits.summary.empty());
}

TEST(Service, RtlDotVcdEmitText) {
  const Service service(small_options(1, 1));
  EXPECT_NE(service.rtl({"RSP#2"}).verilog.find("module"),
            std::string::npos);
  EXPECT_NE(service.dot({"SAD"}).dot.find("digraph"), std::string::npos);
  EXPECT_FALSE(service.vcd({"SAD", "Base"}).vcd.empty());
}

TEST(Service, UnknownNamesThrowNotFound) {
  const Service service(small_options(1, 1));
  EXPECT_THROW(service.eval({"no-such-kernel"}), NotFoundError);
  EXPECT_THROW(service.map({"SAD", "no-such-arch"}), NotFoundError);
}

TEST(Service, HandleReportsFailuresInBand) {
  const Service service(small_options(1, 1));
  const util::Json body = service.handle(EvalRequest{"no-such-kernel"});
  EXPECT_FALSE(body.at("ok").as_bool());
  EXPECT_NE(body.at("error").as_string().find("no-such-kernel"),
            std::string::npos);
}

TEST(Service, PingRejectsOutOfRangeDelay) {
  const Service service(small_options(1, 1));
  EXPECT_THROW(service.ping({-1}), InvalidArgumentError);
  EXPECT_THROW(service.ping({kMaxPingDelayMs + 1}), InvalidArgumentError);
  EXPECT_EQ(service.ping({0}).delay_ms, 0);
}

TEST(Service, SubmitRunsRequestsConcurrently) {
  // A delayed ping submitted first must still be in flight when an
  // immediate ping submitted second completes: two requests were in the
  // air at once on the dispatch pool. The delay is generous because this
  // suite also runs under ThreadSanitizer (5-15x slowdown) on loaded CI
  // runners — the immediate ping's full round trip must finish inside it.
  const Service service(small_options(1, 2));
  std::future<util::Json> slow = service.submit(PingRequest{1000});
  std::future<util::Json> fast = service.submit(PingRequest{0});
  const util::Json fast_body = fast.get();
  EXPECT_TRUE(fast_body.at("ok").as_bool());
  EXPECT_EQ(slow.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout)
      << "the delayed request should still be in flight";
  EXPECT_TRUE(slow.get().at("ok").as_bool());
}

TEST(Service, CacheStatsTracksSharedCacheActivity) {
  const Service service(small_options());
  EXPECT_EQ(service.cache_stats({}).stats.entries, 0u);
  service.eval({"MVM"});
  const CacheStatsResponse stats = service.cache_stats({});
  EXPECT_GT(stats.stats.entries, 0u);
  EXPECT_EQ(stats.threads, service.thread_count());
}

// ------------------------------------------------------- cache persistence

TEST(Service, CacheSaveLoadRoundTripServesWarm) {
  TempFile file("cache_roundtrip.json");
  const Service warm(small_options());
  const EvalResponse first = warm.eval({"SAD"});
  const CacheSaveResponse saved = warm.cache_save({file.path()});
  EXPECT_EQ(saved.entries, warm.cache_stats({}).stats.entries);
  EXPECT_GT(saved.entries, 0u);

  // A fresh service (fresh cache) restores the table and serves the same
  // evaluation without a single recompute.
  const Service restored(small_options());
  const CacheLoadResponse loaded = restored.cache_load({file.path()});
  EXPECT_EQ(loaded.entries_loaded, saved.entries);
  EXPECT_EQ(loaded.entries_total, saved.entries);

  const runtime::CacheStats before = restored.cache_stats({}).stats;
  const EvalResponse second = restored.eval({"SAD"});
  const runtime::CacheStats after = restored.cache_stats({}).stats;
  EXPECT_EQ(after.misses, before.misses);  // every lookup hit
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(core::to_json(first.kernel, first.rows).dump(),
            core::to_json(second.kernel, second.rows).dump());
}

TEST(Service, CacheLoadRejectsVersionMismatch) {
  TempFile file("cache_badversion.json");
  const Service service(small_options());
  service.eval({"SAD"});
  util::Json doc = service.cache()->serialize();
  doc.set("version", 99);
  {
    std::ofstream out(file.path());
    out << doc.dump() << "\n";
  }
  const Service fresh(small_options());
  const util::Json body = fresh.handle(CacheLoadRequest{file.path()});
  EXPECT_FALSE(body.at("ok").as_bool());
  EXPECT_NE(body.at("error").as_string().find("version"), std::string::npos);
  EXPECT_EQ(fresh.cache_stats({}).stats.entries, 0u);  // nothing half-loaded
}

TEST(Service, CacheLoadRejectsMissingOrForeignFiles) {
  const Service service(small_options(1, 1));
  EXPECT_THROW(service.cache_load({"/nonexistent/cache.json"}),
               NotFoundError);
  TempFile file("cache_foreign.json");
  {
    std::ofstream out(file.path());
    out << "{\"hello\": 1}\n";
  }
  EXPECT_THROW(service.cache_load({file.path()}), InvalidArgumentError);
}

// ---------------------------------------------------------------- protocol

TEST(Protocol, DecodeV2RejectsBadEnvelopes) {
  const auto expect_rejected = [](const std::string& text,
                                  const std::string& needle) {
    const util::Json doc = util::Json::parse(text);
    try {
      decode_v2_request(doc);
      FAIL() << "expected rejection: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << text << " -> " << e.what();
    }
  };
  expect_rejected(R"("ping")", "must be a JSON object");
  expect_rejected(R"({"id": "a", "op": "ping"})", "protocol_version");
  expect_rejected(R"({"protocol_version": 1, "id": "a", "op": "ping"})",
                  "unsupported protocol_version 1");
  expect_rejected(R"({"protocol_version": 2, "op": "ping"})", "missing request 'id'");
  expect_rejected(R"({"protocol_version": 2, "id": true, "op": "ping"})",
                  "'id' must be a string or number");
  expect_rejected(R"({"protocol_version": 2, "id": "a"})", "missing 'op'");
  expect_rejected(R"({"protocol_version": 2, "id": "a", "op": "warp"})",
                  "unknown op 'warp'");
  expect_rejected(
      R"({"protocol_version": 2, "id": "a", "op": "eval", "kernle": "SAD"})",
      "unknown field 'kernle'");
  expect_rejected(R"({"protocol_version": 2, "id": "a", "op": "eval"})",
                  "requires a 'kernel' field");
  expect_rejected(
      R"({"protocol_version": 2, "id": "a", "op": "ping", "delay_ms": 1.5})",
      "'delay_ms' must be an integer");
}

TEST(Protocol, RejectsNonsensicalDseConfigsInBand) {
  // An explicit zero/negative bound or ratio would silently explore an
  // empty or nonsensical grid — it must come back as an in-band error.
  const auto expect_rejected = [](const std::string& config_fragment,
                                  const std::string& needle) {
    const std::string text =
        R"({"protocol_version": 2, "id": "a", "op": "dse", "config": {)" +
        config_fragment + "}}";
    try {
      decode_v2_request(util::Json::parse(text));
      FAIL() << "expected rejection of " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << text << " -> " << e.what();
    }
  };
  expect_rejected(R"("max_units_per_row": 0)",
                  "'max_units_per_row' must be positive");
  expect_rejected(R"("max_units_per_col": -1)",
                  "'max_units_per_col' must be positive");
  expect_rejected(R"("max_stages": 0)", "'max_stages' must be positive");
  expect_rejected(R"("max_area_ratio": 0)",
                  "'max_area_ratio' must be positive");
  expect_rejected(R"("max_time_ratio": -2.5)",
                  "'max_time_ratio' must be positive");
  expect_rejected(R"("pareto_epsilon": -0.1)",
                  "'pareto_epsilon' must be non-negative");

  // The same strictness guards the v1 decode path, and a Service turns it
  // into an {"ok": false} body rather than a dead request.
  EXPECT_THROW(decode_v1_request(util::Json::parse(
                   R"({"op": "dse", "config": {"max_stages": 0}})")),
               InvalidArgumentError);
  Service service(small_options(1, 1));
  DseRequest bad;
  bad.config.max_stages = 0;
  const util::Json body = service.handle(bad);
  EXPECT_FALSE(body.at("ok").as_bool());
  EXPECT_NE(body.at("error").as_string().find("max_stages"),
            std::string::npos);
}

TEST(Service, CacheStatsReportMappingAndEvictionFields) {
  ServiceOptions options = small_options(1, 1);
  options.cache_max_entries = 64;
  const Service service(options);
  service.eval({"SAD"});
  service.map({"SAD", "RSP#2"});  // served without remapping

  const CacheStatsResponse stats = service.cache_stats({});
  EXPECT_EQ(stats.stats.max_entries, 64u);
  EXPECT_EQ(stats.mapping_stats.max_entries, 64u);
  EXPECT_EQ(stats.mapping_stats.entries, 1u);  // one kernel mapped once
  EXPECT_GT(stats.mapping_stats.hits, 0u);     // map reused eval's record

  const util::Json body = service.handle(CacheStatsRequest{});
  EXPECT_TRUE(body.at("ok").as_bool());
  EXPECT_EQ(body.at("evictions").as_number(), 0);
  EXPECT_EQ(body.at("max_entries").as_number(), 64);
  EXPECT_EQ(body.at("mapping").at("entries").as_number(), 1);
  EXPECT_TRUE(body.at("estimates").is_object());
  EXPECT_GE(body.at("estimates").at("entries").as_number(), 0);
}

TEST(Protocol, DecodeV2ParsesTypedPayloads) {
  const util::Json doc = util::Json::parse(
      R"({"protocol_version": 2, "id": "a", "op": "dse",)"
      R"( "kernels": ["SAD"], "config": {"max_stages": 3}})");
  const Request request = decode_v2_request(doc);
  const DseRequest& dse_request = std::get<DseRequest>(request);
  ASSERT_EQ(dse_request.kernels.size(), 1u);
  EXPECT_EQ(dse_request.kernels[0], "SAD");
  EXPECT_EQ(dse_request.config.max_stages, 3);

  const Request map_request = decode_v2_request(util::Json::parse(
      R"({"protocol_version": 2, "id": 1, "op": "map",)"
      R"( "kernel": "SAD", "arch": "RSP#4"})"));
  EXPECT_EQ(std::get<MapRequest>(map_request).arch, "RSP#4");
}

TEST(Protocol, DecodeV1KeepsLegacyRules) {
  // v1 is lenient about unknown top-level fields (they were always
  // ignored) but strict about config keys, with the PR-2 messages.
  const Request request = decode_v1_request(util::Json::parse(
      R"({"op": "eval", "kernel": "SAD", "extra": "ignored"})"));
  EXPECT_EQ(std::get<EvalRequest>(request).kernel, "SAD");

  try {
    decode_v1_request(util::Json::parse(
        R"({"op": "dse", "kernels": ["SAD"], "config": {"objetive": 1}})"));
    FAIL() << "expected rejection";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown config key 'objetive'"),
              std::string::npos);
  }
  try {
    decode_v1_request(util::Json::parse(R"({"op": "serve"})"));
    FAIL() << "expected rejection";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("expected \"eval\" or \"dse\""),
              std::string::npos);
  }
}

TEST(Protocol, EnvelopePutsVersionAndIdFirst) {
  util::Json body = util::Json::object();
  body.set("op", "ping").set("ok", true).set("delay_ms", 0);
  const util::Json response = encode_v2_response(util::Json("r1"), body);
  const std::vector<std::string> keys = response.keys();
  ASSERT_EQ(keys.size(), 5u);
  EXPECT_EQ(keys[0], "protocol_version");
  EXPECT_EQ(keys[1], "id");
  EXPECT_EQ(keys[2], "op");
  EXPECT_EQ(response.at("protocol_version").as_number(), kProtocolVersion);
  EXPECT_EQ(response.at("id").as_string(), "r1");
}

TEST(Protocol, V1BatchKeepsLegacyShapeAndFieldOrder) {
  util::Json requests = util::Json::array();
  util::Json eval = util::Json::object();
  eval.set("op", "eval").set("kernel", "SAD");
  requests.push(std::move(eval));
  util::Json bad = util::Json::object();
  bad.set("op", "eval").set("kernel", "no-such-kernel");
  requests.push(std::move(bad));

  Service service(small_options());
  const util::Json response = run_v1_batch(requests, service);

  // The exact PR-2 document shape: positional results with the legacy
  // field order, then the runtime stats block.
  ASSERT_EQ(response.keys(), (std::vector<std::string>{"results", "runtime"}));
  const util::Json& results = response.at("results");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results.at(0).keys(),
            (std::vector<std::string>{"op", "ok", "report", "request"}));
  EXPECT_TRUE(results.at(0).at("ok").as_bool());
  EXPECT_EQ(results.at(0).at("request").as_number(), 0);
  EXPECT_EQ(results.at(1).keys(),
            (std::vector<std::string>{"ok", "error", "request"}));
  EXPECT_FALSE(results.at(1).at("ok").as_bool());
  EXPECT_EQ(response.at("runtime").keys(),
            (std::vector<std::string>{"threads", "requests", "cache_hits",
                                      "cache_misses", "cache_entries_total",
                                      "cache_hit_rate"}));
  EXPECT_EQ(response.at("runtime").at("requests").as_number(), 2);
}

TEST(Protocol, V1BatchResultsAreDeterministicAcrossRuns) {
  // Cross-request fan-out must not leak scheduling into the payloads: two
  // fresh services produce byte-identical result arrays (cache counters in
  // the runtime block are scheduling-dependent and excluded).
  util::Json requests = util::Json::array();
  util::Json eval = util::Json::object();
  eval.set("op", "eval").set("kernel", "SAD");
  requests.push(std::move(eval));
  util::Json dse_req = util::Json::object();
  util::Json names = util::Json::array();
  names.push("SAD").push("MVM");
  util::Json config = util::Json::object();
  config.set("max_units_per_row", 2)
      .set("max_units_per_col", 1)
      .set("max_stages", 2);
  dse_req.set("op", "dse").set("kernels", std::move(names));
  dse_req.set("config", std::move(config));
  requests.push(std::move(dse_req));

  Service first(small_options(4, 4));
  Service second(small_options(4, 4));
  EXPECT_EQ(run_v1_batch(requests, first).at("results").dump(),
            run_v1_batch(requests, second).at("results").dump());
}

TEST(Protocol, V1BatchRejectsNonArrayInput) {
  Service service(small_options(1, 1));
  EXPECT_THROW(run_v1_batch(util::Json::object(), service),
               InvalidArgumentError);
  EXPECT_THROW(run_v1_batch(util::Json("eval"), service),
               InvalidArgumentError);
}

// ------------------------------------------------------------------- serve

struct ServeOutput {
  ServeResult result;
  std::vector<util::Json> lines;
};

ServeOutput run_serve(Service& service, const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  ServeOutput output;
  output.result = serve(service, in, out);
  std::istringstream reader(out.str());
  std::string line;
  while (std::getline(reader, line))
    output.lines.push_back(util::Json::parse(line));
  return output;
}

TEST(Serve, StreamsResponsesOutOfOrderById) {
  // Delay sized for TSan on loaded CI runners: the immediate ping's
  // parse+dispatch+write round trip must complete inside it.
  Service service(small_options(1, 2));
  const ServeOutput output = run_serve(
      service,
      "{\"protocol_version\": 2, \"id\": \"slow\", \"op\": \"ping\", "
      "\"delay_ms\": 1000}\n"
      "{\"protocol_version\": 2, \"id\": \"fast\", \"op\": \"ping\"}\n");
  EXPECT_EQ(output.result.requests, 2u);
  EXPECT_EQ(output.result.errors, 0u);
  ASSERT_EQ(output.lines.size(), 2u);
  // The immediate ping overtakes the delayed one submitted before it.
  EXPECT_EQ(output.lines[0].at("id").as_string(), "fast");
  EXPECT_EQ(output.lines[1].at("id").as_string(), "slow");
  for (const util::Json& line : output.lines) {
    EXPECT_TRUE(line.at("ok").as_bool());
    EXPECT_EQ(line.at("protocol_version").as_number(), kProtocolVersion);
  }
}

TEST(Serve, ProtocolErrorsAreInBandAndNonFatal) {
  // The four satellite cases — malformed NDJSON, unknown op, missing
  // protocol_version, duplicate id — each answered in-band, and the loop
  // still serves the valid request that follows.
  Service service(small_options(1, 2));
  const ServeOutput output = run_serve(
      service,
      "{this is not json\n"
      "{\"protocol_version\": 2, \"id\": \"a\", \"op\": \"warp\"}\n"
      "{\"id\": \"b\", \"op\": \"ping\"}\n"
      "{\"protocol_version\": 2, \"id\": \"c\", \"op\": \"ping\"}\n"
      "{\"protocol_version\": 2, \"id\": \"c\", \"op\": \"ping\"}\n"
      "{\"protocol_version\": 2, \"id\": \"d\", \"op\": \"ping\"}\n");
  EXPECT_EQ(output.result.requests, 6u);
  EXPECT_EQ(output.result.errors, 4u);
  ASSERT_EQ(output.lines.size(), 6u);

  std::size_t ok_count = 0;
  bool saw_parse_error = false, saw_unknown_op = false,
       saw_missing_version = false, saw_duplicate = false;
  for (const util::Json& line : output.lines) {
    if (line.at("ok").as_bool()) {
      ++ok_count;
      continue;
    }
    const std::string& error = line.at("error").as_string();
    if (error.find("JSON parse error") != std::string::npos) {
      saw_parse_error = true;
      EXPECT_TRUE(line.at("id").is_null());
    }
    if (error.find("unknown op 'warp'") != std::string::npos)
      saw_unknown_op = true;
    if (error.find("protocol_version") != std::string::npos)
      saw_missing_version = true;
    if (error.find("duplicate request id \"c\"") != std::string::npos)
      saw_duplicate = true;
  }
  EXPECT_EQ(ok_count, 2u);  // "c" (first use) and "d"
  EXPECT_TRUE(saw_parse_error);
  EXPECT_TRUE(saw_unknown_op);
  EXPECT_TRUE(saw_missing_version);
  EXPECT_TRUE(saw_duplicate);
}

TEST(Serve, ExecutionErrorsEchoTheRequestId) {
  Service service(small_options(1, 2));
  const ServeOutput output = run_serve(
      service,
      "{\"protocol_version\": 2, \"id\": \"bad\", \"op\": \"eval\", "
      "\"kernel\": \"no-such-kernel\"}\n");
  ASSERT_EQ(output.lines.size(), 1u);
  EXPECT_EQ(output.result.errors, 1u);
  EXPECT_EQ(output.lines[0].at("id").as_string(), "bad");
  EXPECT_FALSE(output.lines[0].at("ok").as_bool());
  EXPECT_NE(output.lines[0].at("error").as_string().find("no-such-kernel"),
            std::string::npos);
}

TEST(Serve, V1BatchArrayDocumentAnsweredInline) {
  Service service(small_options());
  const ServeOutput output =
      run_serve(service, "[{\"op\": \"eval\", \"kernel\": \"SAD\"}]\n");
  EXPECT_EQ(output.result.requests, 1u);
  EXPECT_EQ(output.result.errors, 0u);
  ASSERT_EQ(output.lines.size(), 1u);
  const util::Json& doc = output.lines[0];
  EXPECT_FALSE(doc.contains("protocol_version"));  // v1 has no envelope
  EXPECT_EQ(doc.at("results").at(0).at("report").at("kernel").as_string(),
            "SAD");
}

TEST(Serve, V1InBandFailuresCountAsErrors) {
  Service service(small_options());
  const ServeOutput output = run_serve(
      service,
      "[{\"op\": \"eval\", \"kernel\": \"no-such-kernel\"}, "
      "{\"op\": \"eval\", \"kernel\": \"SAD\"}]\n");
  EXPECT_EQ(output.result.requests, 1u);
  EXPECT_EQ(output.result.errors, 1u);  // the failed result slot
  ASSERT_EQ(output.lines.size(), 1u);
  EXPECT_FALSE(output.lines[0].at("results").at(0).at("ok").as_bool());
  EXPECT_TRUE(output.lines[0].at("results").at(1).at("ok").as_bool());
}

TEST(Serve, BlankLinesAreSkipped) {
  Service service(small_options(1, 1));
  const ServeOutput output = run_serve(
      service,
      "\n   \n{\"protocol_version\": 2, \"id\": \"x\", \"op\": \"list\"}\n");
  EXPECT_EQ(output.result.requests, 1u);
  ASSERT_EQ(output.lines.size(), 1u);
  EXPECT_TRUE(output.lines[0].at("ok").as_bool());
}

TEST(Serve, FailedOutputStreamStopsTheLoopAndIsReported) {
  Service service(small_options(1, 1));
  // The first line's parse-error response is written synchronously by the
  // reader thread, so the stream failure is observed before line two is
  // read — the loop must stop there and report the loss.
  std::istringstream in(
      "{bogus\n"
      "{\"protocol_version\": 2, \"id\": \"b\", \"op\": \"ping\"}\n");
  std::ostringstream out;
  out.setstate(std::ios::badbit);  // every write fails
  const ServeResult result = serve(service, in, out);
  EXPECT_FALSE(result.output_ok);
  EXPECT_EQ(result.requests, 1u);
}

TEST(Serve, NumericIdsEchoVerbatim) {
  Service service(small_options(1, 1));
  const ServeOutput output = run_serve(
      service, "{\"protocol_version\": 2, \"id\": 7, \"op\": \"ping\"}\n");
  ASSERT_EQ(output.lines.size(), 1u);
  ASSERT_TRUE(output.lines[0].at("id").is_number());
  EXPECT_EQ(output.lines[0].at("id").as_number(), 7);
}

TEST(Serve, CacheOpsWorkOverTheWire) {
  TempFile file("serve_cache.json");
  Service service(small_options());
  const ServeOutput output = run_serve(
      service,
      "{\"protocol_version\": 2, \"id\": \"e\", \"op\": \"eval\", "
      "\"kernel\": \"MVM\"}\n"
      "{\"protocol_version\": 2, \"id\": \"s\", \"op\": \"cache_save\", "
      "\"path\": \"" + file.path() + "\"}\n"
      "{\"protocol_version\": 2, \"id\": \"st\", \"op\": \"cache_stats\"}\n");
  EXPECT_EQ(output.result.errors, 0u);
  ASSERT_EQ(output.lines.size(), 3u);
  for (const util::Json& line : output.lines)
    EXPECT_TRUE(line.at("ok").as_bool());

  // Serve runs requests concurrently, so the snapshot may be taken before
  // eval finishes populating the table — assert only that whatever was
  // saved round-trips cleanly into a fresh cache.
  runtime::EvalCache fresh;
  std::ifstream saved(file.path());
  std::ostringstream text;
  text << saved.rdbuf();
  fresh.deserialize(util::Json::parse(text.str()));
  SUCCEED();
}

}  // namespace
}  // namespace rsp::api
