// The rsp::api façade: Service typed dispatch (bit-identical to the serial
// paths), the v2 protocol codec, the v1 batch compatibility shim, cache
// persistence, and the NDJSON serve loop (out-of-order streaming, in-band
// protocol errors). The Service/Protocol/Serve suites also run under the
// tsan preset — the serial-vs-service agreement checks are exercised with
// ThreadSanitizer watching the pools.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include <sys/socket.h>

#include <algorithm>
#include <thread>

#include "api/protocol.hpp"
#include "api/serve.hpp"
#include "api/service.hpp"
#include "api/socket_server.hpp"
#include "arch/presets.hpp"
#include "core/evaluator.hpp"
#include "core/report_json.hpp"
#include "dse/explorer.hpp"
#include "kernels/registry.hpp"
#include "runtime/eval_cache.hpp"
#include "sched/mapper.hpp"
#include "sim/machine.hpp"
#include "util/error.hpp"

namespace rsp::api {
namespace {

// Unique scratch path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + "rsp_api_" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

ServiceOptions small_options(int threads = 2, int max_inflight = 2) {
  ServiceOptions options;
  options.threads = threads;
  options.max_inflight = max_inflight;
  return options;
}

dse::ExplorerConfig small_dse_config() {
  dse::ExplorerConfig config;
  config.max_units_per_row = 2;
  config.max_units_per_col = 1;
  config.max_stages = 2;
  return config;
}

// ----------------------------------------------------------------- service

TEST(Service, EvalBitIdenticalToSerialEvaluator) {
  // The acceptance gate: the Service path (parallel runtime + memo cache)
  // must agree with core::RspEvaluator on every field of every row.
  const kernels::Workload w = kernels::find_workload("SAD");
  const sched::LoopPipeliner mapper(w.array);
  const std::vector<core::EvalResult> expected =
      core::RspEvaluator().evaluate_suite(
          mapper.map(w.kernel, w.hints, w.reduction),
          arch::standard_suite(w.array.rows, w.array.cols));

  const Service service(small_options(4));
  // Twice: the second pass is served from the warm cache and must not
  // drift from the serial rows either.
  for (int round = 0; round < 2; ++round) {
    const EvalResponse resp = service.eval({"SAD"});
    EXPECT_EQ(resp.kernel, "SAD");
    ASSERT_EQ(resp.rows.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(resp.rows[i].arch_name, expected[i].arch_name);
      EXPECT_EQ(resp.rows[i].cycles, expected[i].cycles);
      EXPECT_EQ(resp.rows[i].stalls, expected[i].stalls);
      // Bitwise double equality is intended: the parallel reduction must
      // replay the serial accumulation order exactly.
      EXPECT_EQ(resp.rows[i].clock_ns, expected[i].clock_ns);
      EXPECT_EQ(resp.rows[i].execution_time_ns,
                expected[i].execution_time_ns);
      EXPECT_EQ(resp.rows[i].delay_reduction_percent,
                expected[i].delay_reduction_percent);
      EXPECT_EQ(resp.rows[i].max_mults_per_cycle,
                expected[i].max_mults_per_cycle);
    }
  }
}

TEST(Service, DseBitIdenticalToSerialExplorer) {
  const std::vector<kernels::Workload> domain = {
      kernels::find_workload("SAD"), kernels::find_workload("MVM")};
  const dse::Explorer serial(domain.front().array, small_dse_config());

  const Service service(small_options());
  DseRequest request;
  request.kernels = {"SAD", "MVM"};
  request.config = small_dse_config();
  const DseResponse resp = service.dse(request);

  // Rendering both results through the one body renderer compares every
  // reported field (candidates, pareto set, base, selected optimum).
  DseResponse serial_resp;
  serial_resp.kernels = resp.kernels;
  serial_resp.result = serial.explore(domain);
  EXPECT_EQ(to_body(resp).dump(), to_body(serial_resp).dump());
}

TEST(Service, DseWithoutKernelsExploresPaperSuite) {
  const Service service(small_options());
  DseRequest request;
  request.config = small_dse_config();
  const DseResponse resp = service.dse(request);
  const std::vector<kernels::Workload> suite = kernels::paper_suite();
  ASSERT_EQ(resp.kernels.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i)
    EXPECT_EQ(resp.kernels[i], suite[i].name);
}

TEST(Service, ListReportsCatalogueAndStandardSuite) {
  const Service service(small_options(1, 1));
  const ListResponse resp = service.list({});
  EXPECT_EQ(resp.kernels.size(), kernels::full_catalogue().size());
  ASSERT_EQ(resp.architectures.size(), 9u);  // Base, RS#1..4, RSP#1..4
  EXPECT_EQ(resp.architectures.front(), "Base");
  bool has_sad = false;
  for (const KernelInfo& info : resp.kernels)
    if (info.name == "SAD") {
      has_sad = true;
      EXPECT_GT(info.iterations, 0);
      EXPECT_FALSE(info.array.empty());
    }
  EXPECT_TRUE(has_sad);
}

TEST(Service, MapSimulateBitstreamRoundTrip) {
  const Service service(small_options(1, 1));
  const MapResponse map = service.map({"SAD", "RSP#4"});
  EXPECT_EQ(map.kernel, "SAD");
  EXPECT_EQ(map.arch, "RSP#4");
  EXPECT_GT(map.cycles, 0);
  EXPECT_FALSE(map.schedule.empty());

  const SimulateResponse sim = service.simulate({"SAD", "RSP#4"});
  EXPECT_TRUE(sim.matches_golden);
  EXPECT_GT(sim.cycles, 0);
  EXPECT_GT(sim.pe_utilization, 0.0);

  const BitstreamResponse bits = service.bitstream({"SAD", "RSP#4"});
  EXPECT_GT(bits.bytes, 0u);
  EXPECT_FALSE(bits.summary.empty());
}

TEST(Service, RtlDotVcdEmitText) {
  const Service service(small_options(1, 1));
  EXPECT_NE(service.rtl({"RSP#2"}).verilog.find("module"),
            std::string::npos);
  EXPECT_NE(service.dot({"SAD"}).dot.find("digraph"), std::string::npos);
  EXPECT_FALSE(service.vcd({"SAD", "Base"}).vcd.empty());
}

TEST(Service, UnknownNamesThrowNotFound) {
  const Service service(small_options(1, 1));
  EXPECT_THROW(service.eval({"no-such-kernel"}), NotFoundError);
  EXPECT_THROW(service.map({"SAD", "no-such-arch"}), NotFoundError);
}

TEST(Service, SimulateAndVcdShareOneSimulationRun) {
  // PR-6 satellite: vcd used to rerun the simulation simulate had already
  // produced. Both must now resolve through the sim-run memo table.
  const Service service(small_options(1, 1));
  const SimulateResponse sim = service.simulate({"SAD", "RSP#4"});
  EXPECT_EQ(sim.engine, "event");
  EXPECT_TRUE(sim.matches_golden);
  const CacheStatsResponse after_sim = service.cache_stats({});
  EXPECT_EQ(after_sim.sim_stats.entries, 1u);
  EXPECT_EQ(after_sim.sim_stats.misses, 1u);

  EXPECT_FALSE(service.vcd({"SAD", "RSP#4"}).vcd.empty());
  const CacheStatsResponse after_vcd = service.cache_stats({});
  EXPECT_EQ(after_vcd.sim_stats.entries, 1u)
      << "vcd must not create a second simulation run";
  EXPECT_EQ(after_vcd.sim_stats.misses, 1u);
  EXPECT_GT(after_vcd.sim_stats.hits, after_sim.sim_stats.hits);

  // Repeating simulate is also served from the memo.
  service.simulate({"SAD", "RSP#4"});
  EXPECT_EQ(service.cache_stats({}).sim_stats.misses, 1u);
}

TEST(Service, SimulateEnginesAreInterchangeable) {
  const Service service(small_options(1, 1));
  const SimulateResponse event =
      service.simulate({"SAD", "RSP#4", sim::SimEngine::kEvent});
  const SimulateResponse dense =
      service.simulate({"SAD", "RSP#4", sim::SimEngine::kDense});
  EXPECT_EQ(event.engine, "event");
  EXPECT_EQ(dense.engine, "dense");
  EXPECT_EQ(event.cycles, dense.cycles);
  EXPECT_EQ(event.pe_utilization, dense.pe_utilization);
  EXPECT_TRUE(event.matches_golden);
  EXPECT_TRUE(dense.matches_golden);
  // Engines memoize under distinct keys — a dense run must never be
  // recalled as an event run.
  EXPECT_EQ(service.cache_stats({}).sim_stats.entries, 2u);
}

TEST(Service, SimulateBatchCoversSuiteAndMatchesSingleRuns) {
  const Service service(small_options());
  SimulateBatchRequest whole_suite;
  whole_suite.kernel = "SAD";
  const SimulateBatchResponse suite = service.simulate_batch(whole_suite);
  EXPECT_EQ(suite.kernel, "SAD");
  EXPECT_EQ(suite.engine, "event");
  ASSERT_EQ(suite.rows.size(), 9u);  // Base, RS#1..4, RSP#1..4
  EXPECT_EQ(suite.rows.front().arch, "Base");
  EXPECT_EQ(suite.rows.back().arch, "RSP#4");
  for (const SimulateResponse& row : suite.rows) {
    EXPECT_TRUE(row.matches_golden) << row.arch;
    EXPECT_GT(row.cycles, 0) << row.arch;
  }

  // An explicit arch list is honoured positionally, and every row agrees
  // with the equivalent single-simulation request.
  const SimulateBatchResponse pair =
      service.simulate_batch({"SAD", {"RSP#4", "Base"}});
  ASSERT_EQ(pair.rows.size(), 2u);
  EXPECT_EQ(pair.rows[0].arch, "RSP#4");
  EXPECT_EQ(pair.rows[1].arch, "Base");
  for (const SimulateResponse& row : pair.rows) {
    const SimulateResponse single = service.simulate({"SAD", row.arch});
    EXPECT_EQ(row.cycles, single.cycles) << row.arch;
    EXPECT_EQ(row.pe_utilization, single.pe_utilization) << row.arch;
    EXPECT_EQ(row.matches_golden, single.matches_golden) << row.arch;
  }
}

TEST(Service, HandleReportsFailuresInBand) {
  const Service service(small_options(1, 1));
  const util::Json body = service.handle(EvalRequest{"no-such-kernel"});
  EXPECT_FALSE(body.at("ok").as_bool());
  EXPECT_NE(body.at("error").as_string().find("no-such-kernel"),
            std::string::npos);
}

TEST(Service, PingRejectsOutOfRangeDelay) {
  const Service service(small_options(1, 1));
  EXPECT_THROW(service.ping({-1}), InvalidArgumentError);
  EXPECT_THROW(service.ping({kMaxPingDelayMs + 1}), InvalidArgumentError);
  EXPECT_EQ(service.ping({0}).delay_ms, 0);
}

TEST(Service, SubmitRunsRequestsConcurrently) {
  // A delayed ping submitted first must still be in flight when an
  // immediate ping submitted second completes: two requests were in the
  // air at once on the dispatch pool. The delay is generous because this
  // suite also runs under ThreadSanitizer (5-15x slowdown) on loaded CI
  // runners — the immediate ping's full round trip must finish inside it.
  const Service service(small_options(1, 2));
  std::future<util::Json> slow = service.submit(PingRequest{1000});
  std::future<util::Json> fast = service.submit(PingRequest{0});
  const util::Json fast_body = fast.get();
  EXPECT_TRUE(fast_body.at("ok").as_bool());
  EXPECT_EQ(slow.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout)
      << "the delayed request should still be in flight";
  EXPECT_TRUE(slow.get().at("ok").as_bool());
}

TEST(Service, CacheStatsTracksSharedCacheActivity) {
  const Service service(small_options());
  EXPECT_EQ(service.cache_stats({}).stats.entries, 0u);
  service.eval({"MVM"});
  const CacheStatsResponse stats = service.cache_stats({});
  EXPECT_GT(stats.stats.entries, 0u);
  EXPECT_EQ(stats.threads, service.thread_count());
}

// ------------------------------------------------------- cache persistence

TEST(Service, CacheSaveLoadRoundTripServesWarm) {
  TempFile file("cache_roundtrip.json");
  const Service warm(small_options());
  const EvalResponse first = warm.eval({"SAD"});
  const CacheSaveResponse saved = warm.cache_save({file.path()});
  EXPECT_EQ(saved.entries, warm.cache_stats({}).stats.entries);
  EXPECT_GT(saved.entries, 0u);

  // A fresh service (fresh cache) restores the table and serves the same
  // evaluation without a single recompute.
  const Service restored(small_options());
  const CacheLoadResponse loaded = restored.cache_load({file.path()});
  EXPECT_EQ(loaded.entries_loaded, saved.entries);
  EXPECT_EQ(loaded.entries_total, saved.entries);

  const runtime::CacheStats before = restored.cache_stats({}).stats;
  const EvalResponse second = restored.eval({"SAD"});
  const runtime::CacheStats after = restored.cache_stats({}).stats;
  EXPECT_EQ(after.misses, before.misses);  // every lookup hit
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(core::to_json(first.kernel, first.rows).dump(),
            core::to_json(second.kernel, second.rows).dump());
}

TEST(Service, CacheLoadRejectsVersionMismatch) {
  TempFile file("cache_badversion.json");
  const Service service(small_options());
  service.eval({"SAD"});
  util::Json doc = service.cache()->serialize();
  doc.set("version", 99);
  {
    std::ofstream out(file.path());
    out << doc.dump() << "\n";
  }
  const Service fresh(small_options());
  const util::Json body = fresh.handle(CacheLoadRequest{file.path()});
  EXPECT_FALSE(body.at("ok").as_bool());
  EXPECT_NE(body.at("error").as_string().find("version"), std::string::npos);
  EXPECT_EQ(fresh.cache_stats({}).stats.entries, 0u);  // nothing half-loaded
}

TEST(Service, CacheLoadRejectsMissingOrForeignFiles) {
  const Service service(small_options(1, 1));
  EXPECT_THROW(service.cache_load({"/nonexistent/cache.json"}),
               NotFoundError);
  TempFile file("cache_foreign.json");
  {
    std::ofstream out(file.path());
    out << "{\"hello\": 1}\n";
  }
  EXPECT_THROW(service.cache_load({file.path()}), InvalidArgumentError);
}

TEST(Service, CacheLoadRejectsATruncatedSnapshot) {
  // A snapshot cut mid-write (disk full, killed process) must be rejected
  // with a named parse error — and leave the cache untouched.
  TempFile file("cache_truncated.json");
  const Service warm(small_options());
  warm.eval({"SAD"});
  warm.cache_save({file.path()});
  std::string text;
  {
    std::ifstream in(file.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  ASSERT_GT(text.size(), 40u);
  {
    std::ofstream out(file.path(), std::ios::trunc);
    out << text.substr(0, text.size() / 2);
  }
  const Service fresh(small_options());
  const util::Json body = fresh.handle(CacheLoadRequest{file.path()});
  EXPECT_FALSE(body.at("ok").as_bool());
  EXPECT_NE(body.at("error").as_string().find("JSON parse error"),
            std::string::npos);
  EXPECT_EQ(fresh.cache_stats({}).stats.entries, 0u);
}

TEST(Service, CacheLoadRejectsACorruptedEntryWithoutPartialMerge) {
  // Valid JSON, valid header, but one entry's integer field replaced by a
  // string: the document must be rejected whole — entries validated before
  // the bad one must not leak into the table.
  TempFile file("cache_corrupt_entry.json");
  const Service warm(small_options());
  warm.eval({"SAD"});
  util::Json doc = warm.cache()->serialize();
  const util::Json& entries = doc.at("entries");
  ASSERT_GT(entries.size(), 1u);
  util::Json corrupted = util::Json::array();
  for (std::size_t i = 0; i + 1 < entries.size(); ++i)
    corrupted.push(entries.at(i));
  util::Json bad = entries.at(entries.size() - 1);
  bad.set("cycles", "not-a-number");
  corrupted.push(std::move(bad));
  doc.set("entries", std::move(corrupted));
  {
    std::ofstream out(file.path());
    out << doc.dump() << "\n";
  }
  const Service fresh(small_options());
  const util::Json body = fresh.handle(CacheLoadRequest{file.path()});
  EXPECT_FALSE(body.at("ok").as_bool());
  EXPECT_NE(body.at("error").as_string().find("cycles"), std::string::npos);
  EXPECT_EQ(fresh.cache_stats({}).stats.entries, 0u);  // nothing half-loaded
}

// ---------------------------------------------------------------- protocol

TEST(Protocol, DecodeV2RejectsBadEnvelopes) {
  const auto expect_rejected = [](const std::string& text,
                                  const std::string& needle) {
    const util::Json doc = util::Json::parse(text);
    try {
      decode_v2_request(doc);
      FAIL() << "expected rejection: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << text << " -> " << e.what();
    }
  };
  expect_rejected(R"("ping")", "must be a JSON object");
  expect_rejected(R"({"id": "a", "op": "ping"})", "protocol_version");
  expect_rejected(R"({"protocol_version": 1, "id": "a", "op": "ping"})",
                  "unsupported protocol_version 1");
  expect_rejected(R"({"protocol_version": 2, "op": "ping"})", "missing request 'id'");
  expect_rejected(R"({"protocol_version": 2, "id": true, "op": "ping"})",
                  "'id' must be a string or number");
  expect_rejected(R"({"protocol_version": 2, "id": "a"})", "missing 'op'");
  expect_rejected(R"({"protocol_version": 2, "id": "a", "op": "warp"})",
                  "unknown op 'warp'");
  expect_rejected(
      R"({"protocol_version": 2, "id": "a", "op": "eval", "kernle": "SAD"})",
      "unknown field 'kernle'");
  expect_rejected(R"({"protocol_version": 2, "id": "a", "op": "eval"})",
                  "requires a 'kernel' field");
  expect_rejected(
      R"({"protocol_version": 2, "id": "a", "op": "ping", "delay_ms": 1.5})",
      "'delay_ms' must be an integer");
}

TEST(Protocol, RejectsNonsensicalDseConfigsInBand) {
  // An explicit zero/negative bound or ratio would silently explore an
  // empty or nonsensical grid — it must come back as an in-band error.
  const auto expect_rejected = [](const std::string& config_fragment,
                                  const std::string& needle) {
    const std::string text =
        R"({"protocol_version": 2, "id": "a", "op": "dse", "config": {)" +
        config_fragment + "}}";
    try {
      decode_v2_request(util::Json::parse(text));
      FAIL() << "expected rejection of " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << text << " -> " << e.what();
    }
  };
  expect_rejected(R"("max_units_per_row": 0)",
                  "'max_units_per_row' must be positive");
  expect_rejected(R"("max_units_per_col": -1)",
                  "'max_units_per_col' must be positive");
  expect_rejected(R"("max_stages": 0)", "'max_stages' must be positive");
  expect_rejected(R"("max_area_ratio": 0)",
                  "'max_area_ratio' must be positive");
  expect_rejected(R"("max_time_ratio": -2.5)",
                  "'max_time_ratio' must be positive");
  expect_rejected(R"("pareto_epsilon": -0.1)",
                  "'pareto_epsilon' must be non-negative");

  // The same strictness guards the v1 decode path, and a Service turns it
  // into an {"ok": false} body rather than a dead request.
  EXPECT_THROW(decode_v1_request(util::Json::parse(
                   R"({"op": "dse", "config": {"max_stages": 0}})")),
               InvalidArgumentError);
  Service service(small_options(1, 1));
  DseRequest bad;
  bad.config.max_stages = 0;
  const util::Json body = service.handle(bad);
  EXPECT_FALSE(body.at("ok").as_bool());
  EXPECT_NE(body.at("error").as_string().find("max_stages"),
            std::string::npos);
}

TEST(Service, CacheStatsReportMappingAndEvictionFields) {
  ServiceOptions options = small_options(1, 1);
  options.cache_max_entries = 64;
  const Service service(options);
  service.eval({"SAD"});
  service.map({"SAD", "RSP#2"});  // served without remapping

  const CacheStatsResponse stats = service.cache_stats({});
  EXPECT_EQ(stats.stats.max_entries, 64u);
  EXPECT_EQ(stats.mapping_stats.max_entries, 64u);
  EXPECT_EQ(stats.mapping_stats.entries, 1u);  // one kernel mapped once
  EXPECT_GT(stats.mapping_stats.hits, 0u);     // map reused eval's record

  const util::Json body = service.handle(CacheStatsRequest{});
  EXPECT_TRUE(body.at("ok").as_bool());
  EXPECT_EQ(body.at("evictions").as_number(), 0);
  EXPECT_EQ(body.at("max_entries").as_number(), 64);
  EXPECT_EQ(body.at("mapping").at("entries").as_number(), 1);
  EXPECT_TRUE(body.at("estimates").is_object());
  EXPECT_GE(body.at("estimates").at("entries").as_number(), 0);

  // PR-6: the simulation-run memo table reports its own section.
  EXPECT_TRUE(body.at("sim").is_object());
  EXPECT_EQ(body.at("sim").at("entries").as_number(), 0);
  EXPECT_EQ(body.at("sim").at("max_entries").as_number(), 64);
  service.simulate({"SAD", "RSP#2"});
  const util::Json after = service.handle(CacheStatsRequest{});
  EXPECT_EQ(after.at("sim").at("entries").as_number(), 1);
}

TEST(Protocol, DecodeV2ParsesTypedPayloads) {
  const util::Json doc = util::Json::parse(
      R"({"protocol_version": 2, "id": "a", "op": "dse",)"
      R"( "kernels": ["SAD"], "config": {"max_stages": 3}})");
  const Request request = decode_v2_request(doc);
  const DseRequest& dse_request = std::get<DseRequest>(request);
  ASSERT_EQ(dse_request.kernels.size(), 1u);
  EXPECT_EQ(dse_request.kernels[0], "SAD");
  EXPECT_EQ(dse_request.config.max_stages, 3);

  const Request map_request = decode_v2_request(util::Json::parse(
      R"({"protocol_version": 2, "id": 1, "op": "map",)"
      R"( "kernel": "SAD", "arch": "RSP#4"})"));
  EXPECT_EQ(std::get<MapRequest>(map_request).arch, "RSP#4");
}

TEST(Protocol, DecodeV2ParsesSimulationEngineAndBatch) {
  // "engine" is optional on simulate/vcd and defaults to the event core.
  const Request plain = decode_v2_request(util::Json::parse(
      R"({"protocol_version": 2, "id": 1, "op": "simulate",)"
      R"( "kernel": "SAD", "arch": "RSP#4"})"));
  EXPECT_EQ(std::get<SimulateRequest>(plain).engine, sim::SimEngine::kEvent);

  const Request dense = decode_v2_request(util::Json::parse(
      R"({"protocol_version": 2, "id": 1, "op": "simulate",)"
      R"( "kernel": "SAD", "arch": "RSP#4", "engine": "dense"})"));
  EXPECT_EQ(std::get<SimulateRequest>(dense).engine, sim::SimEngine::kDense);

  const Request vcd = decode_v2_request(util::Json::parse(
      R"({"protocol_version": 2, "id": 1, "op": "vcd",)"
      R"( "kernel": "SAD", "arch": "Base", "engine": "dense"})"));
  EXPECT_EQ(std::get<VcdRequest>(vcd).engine, sim::SimEngine::kDense);

  const Request batch = decode_v2_request(util::Json::parse(
      R"({"protocol_version": 2, "id": 1, "op": "simulate_batch",)"
      R"( "kernel": "SAD", "archs": ["Base", "RSP#1"]})"));
  const SimulateBatchRequest& br = std::get<SimulateBatchRequest>(batch);
  ASSERT_EQ(br.archs.size(), 2u);
  EXPECT_EQ(br.archs[1], "RSP#1");
  EXPECT_EQ(br.engine, sim::SimEngine::kEvent);

  // Omitting "archs" selects the whole standard suite downstream.
  const Request whole = decode_v2_request(util::Json::parse(
      R"({"protocol_version": 2, "id": 1, "op": "simulate_batch",)"
      R"( "kernel": "SAD"})"));
  EXPECT_TRUE(std::get<SimulateBatchRequest>(whole).archs.empty());

  try {
    decode_v2_request(util::Json::parse(
        R"({"protocol_version": 2, "id": 1, "op": "simulate",)"
        R"( "kernel": "SAD", "arch": "Base", "engine": "fast"})"));
    FAIL() << "expected rejection";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("'fast'"), std::string::npos);
  }
  try {
    decode_v2_request(util::Json::parse(
        R"({"protocol_version": 2, "id": 1, "op": "simulate_batch",)"
        R"( "kernel": "SAD", "archs": []})"));
    FAIL() << "expected rejection";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("non-empty array"),
              std::string::npos);
  }
}

TEST(Protocol, DecodeV1KeepsLegacyRules) {
  // v1 is lenient about unknown top-level fields (they were always
  // ignored) but strict about config keys, with the PR-2 messages.
  const Request request = decode_v1_request(util::Json::parse(
      R"({"op": "eval", "kernel": "SAD", "extra": "ignored"})"));
  EXPECT_EQ(std::get<EvalRequest>(request).kernel, "SAD");

  try {
    decode_v1_request(util::Json::parse(
        R"({"op": "dse", "kernels": ["SAD"], "config": {"objetive": 1}})"));
    FAIL() << "expected rejection";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown config key 'objetive'"),
              std::string::npos);
  }
  try {
    decode_v1_request(util::Json::parse(R"({"op": "serve"})"));
    FAIL() << "expected rejection";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("expected \"eval\" or \"dse\""),
              std::string::npos);
  }
}

TEST(Protocol, EnvelopePutsVersionAndIdFirst) {
  util::Json body = util::Json::object();
  body.set("op", "ping").set("ok", true).set("delay_ms", 0);
  const util::Json response = encode_v2_response(util::Json("r1"), body);
  const std::vector<std::string> keys = response.keys();
  ASSERT_EQ(keys.size(), 5u);
  EXPECT_EQ(keys[0], "protocol_version");
  EXPECT_EQ(keys[1], "id");
  EXPECT_EQ(keys[2], "op");
  EXPECT_EQ(response.at("protocol_version").as_number(), kProtocolVersion);
  EXPECT_EQ(response.at("id").as_string(), "r1");
}

TEST(Protocol, V1BatchKeepsLegacyShapeAndFieldOrder) {
  util::Json requests = util::Json::array();
  util::Json eval = util::Json::object();
  eval.set("op", "eval").set("kernel", "SAD");
  requests.push(std::move(eval));
  util::Json bad = util::Json::object();
  bad.set("op", "eval").set("kernel", "no-such-kernel");
  requests.push(std::move(bad));

  Service service(small_options());
  const util::Json response = run_v1_batch(requests, service);

  // The exact PR-2 document shape: positional results with the legacy
  // field order, then the runtime stats block.
  ASSERT_EQ(response.keys(), (std::vector<std::string>{"results", "runtime"}));
  const util::Json& results = response.at("results");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results.at(0).keys(),
            (std::vector<std::string>{"op", "ok", "report", "request"}));
  EXPECT_TRUE(results.at(0).at("ok").as_bool());
  EXPECT_EQ(results.at(0).at("request").as_number(), 0);
  EXPECT_EQ(results.at(1).keys(),
            (std::vector<std::string>{"ok", "error", "request"}));
  EXPECT_FALSE(results.at(1).at("ok").as_bool());
  EXPECT_EQ(response.at("runtime").keys(),
            (std::vector<std::string>{"threads", "requests", "cache_hits",
                                      "cache_misses", "cache_entries_total",
                                      "cache_hit_rate"}));
  EXPECT_EQ(response.at("runtime").at("requests").as_number(), 2);
}

TEST(Protocol, V1BatchResultsAreDeterministicAcrossRuns) {
  // Cross-request fan-out must not leak scheduling into the payloads: two
  // fresh services produce byte-identical result arrays (cache counters in
  // the runtime block are scheduling-dependent and excluded).
  util::Json requests = util::Json::array();
  util::Json eval = util::Json::object();
  eval.set("op", "eval").set("kernel", "SAD");
  requests.push(std::move(eval));
  util::Json dse_req = util::Json::object();
  util::Json names = util::Json::array();
  names.push("SAD").push("MVM");
  util::Json config = util::Json::object();
  config.set("max_units_per_row", 2)
      .set("max_units_per_col", 1)
      .set("max_stages", 2);
  dse_req.set("op", "dse").set("kernels", std::move(names));
  dse_req.set("config", std::move(config));
  requests.push(std::move(dse_req));

  Service first(small_options(4, 4));
  Service second(small_options(4, 4));
  EXPECT_EQ(run_v1_batch(requests, first).at("results").dump(),
            run_v1_batch(requests, second).at("results").dump());
}

TEST(Protocol, V1BatchRejectsNonArrayInput) {
  Service service(small_options(1, 1));
  EXPECT_THROW(run_v1_batch(util::Json::object(), service),
               InvalidArgumentError);
  EXPECT_THROW(run_v1_batch(util::Json("eval"), service),
               InvalidArgumentError);
}

// ------------------------------------------------------------------- serve

struct ServeOutput {
  ServeResult result;
  std::vector<util::Json> lines;
  std::vector<std::string> raw_lines;  ///< exact bytes, for transport diffs
};

ServeOutput run_serve(Service& service, const std::string& input,
                      const ServeOptions& options = {}) {
  std::istringstream in(input);
  std::ostringstream out;
  ServeOutput output;
  output.result = serve(service, in, out, options);
  std::istringstream reader(out.str());
  std::string line;
  while (std::getline(reader, line)) {
    output.raw_lines.push_back(line);
    output.lines.push_back(util::Json::parse(line));
  }
  return output;
}

TEST(Serve, StreamsResponsesOutOfOrderById) {
  // Delay sized for TSan on loaded CI runners: the immediate ping's
  // parse+dispatch+write round trip must complete inside it.
  Service service(small_options(1, 2));
  const ServeOutput output = run_serve(
      service,
      "{\"protocol_version\": 2, \"id\": \"slow\", \"op\": \"ping\", "
      "\"delay_ms\": 1000}\n"
      "{\"protocol_version\": 2, \"id\": \"fast\", \"op\": \"ping\"}\n");
  EXPECT_EQ(output.result.requests, 2u);
  EXPECT_EQ(output.result.errors, 0u);
  ASSERT_EQ(output.lines.size(), 2u);
  // The immediate ping overtakes the delayed one submitted before it.
  EXPECT_EQ(output.lines[0].at("id").as_string(), "fast");
  EXPECT_EQ(output.lines[1].at("id").as_string(), "slow");
  for (const util::Json& line : output.lines) {
    EXPECT_TRUE(line.at("ok").as_bool());
    EXPECT_EQ(line.at("protocol_version").as_number(), kProtocolVersion);
  }
}

TEST(Serve, ProtocolErrorsAreInBandAndNonFatal) {
  // The four satellite cases — malformed NDJSON, unknown op, missing
  // protocol_version, duplicate id — each answered in-band, and the loop
  // still serves the valid request that follows.
  Service service(small_options(1, 2));
  const ServeOutput output = run_serve(
      service,
      "{this is not json\n"
      "{\"protocol_version\": 2, \"id\": \"a\", \"op\": \"warp\"}\n"
      "{\"id\": \"b\", \"op\": \"ping\"}\n"
      "{\"protocol_version\": 2, \"id\": \"c\", \"op\": \"ping\"}\n"
      "{\"protocol_version\": 2, \"id\": \"c\", \"op\": \"ping\"}\n"
      "{\"protocol_version\": 2, \"id\": \"d\", \"op\": \"ping\"}\n");
  EXPECT_EQ(output.result.requests, 6u);
  EXPECT_EQ(output.result.errors, 4u);
  ASSERT_EQ(output.lines.size(), 6u);

  std::size_t ok_count = 0;
  bool saw_parse_error = false, saw_unknown_op = false,
       saw_missing_version = false, saw_duplicate = false;
  for (const util::Json& line : output.lines) {
    if (line.at("ok").as_bool()) {
      ++ok_count;
      continue;
    }
    const std::string& error = line.at("error").as_string();
    if (error.find("JSON parse error") != std::string::npos) {
      saw_parse_error = true;
      EXPECT_TRUE(line.at("id").is_null());
    }
    if (error.find("unknown op 'warp'") != std::string::npos)
      saw_unknown_op = true;
    if (error.find("protocol_version") != std::string::npos)
      saw_missing_version = true;
    if (error.find("duplicate request id \"c\"") != std::string::npos)
      saw_duplicate = true;
  }
  EXPECT_EQ(ok_count, 2u);  // "c" (first use) and "d"
  EXPECT_TRUE(saw_parse_error);
  EXPECT_TRUE(saw_unknown_op);
  EXPECT_TRUE(saw_missing_version);
  EXPECT_TRUE(saw_duplicate);
}

TEST(Serve, ExecutionErrorsEchoTheRequestId) {
  Service service(small_options(1, 2));
  const ServeOutput output = run_serve(
      service,
      "{\"protocol_version\": 2, \"id\": \"bad\", \"op\": \"eval\", "
      "\"kernel\": \"no-such-kernel\"}\n");
  ASSERT_EQ(output.lines.size(), 1u);
  EXPECT_EQ(output.result.errors, 1u);
  EXPECT_EQ(output.lines[0].at("id").as_string(), "bad");
  EXPECT_FALSE(output.lines[0].at("ok").as_bool());
  EXPECT_NE(output.lines[0].at("error").as_string().find("no-such-kernel"),
            std::string::npos);
}

TEST(Serve, V1BatchArrayDocumentAnsweredInline) {
  Service service(small_options());
  const ServeOutput output =
      run_serve(service, "[{\"op\": \"eval\", \"kernel\": \"SAD\"}]\n");
  EXPECT_EQ(output.result.requests, 1u);
  EXPECT_EQ(output.result.errors, 0u);
  ASSERT_EQ(output.lines.size(), 1u);
  const util::Json& doc = output.lines[0];
  EXPECT_FALSE(doc.contains("protocol_version"));  // v1 has no envelope
  EXPECT_EQ(doc.at("results").at(0).at("report").at("kernel").as_string(),
            "SAD");
}

TEST(Serve, V1InBandFailuresCountAsErrors) {
  Service service(small_options());
  const ServeOutput output = run_serve(
      service,
      "[{\"op\": \"eval\", \"kernel\": \"no-such-kernel\"}, "
      "{\"op\": \"eval\", \"kernel\": \"SAD\"}]\n");
  EXPECT_EQ(output.result.requests, 1u);
  EXPECT_EQ(output.result.errors, 1u);  // the failed result slot
  ASSERT_EQ(output.lines.size(), 1u);
  EXPECT_FALSE(output.lines[0].at("results").at(0).at("ok").as_bool());
  EXPECT_TRUE(output.lines[0].at("results").at(1).at("ok").as_bool());
}

TEST(Serve, BlankLinesAreSkipped) {
  Service service(small_options(1, 1));
  const ServeOutput output = run_serve(
      service,
      "\n   \n{\"protocol_version\": 2, \"id\": \"x\", \"op\": \"list\"}\n");
  EXPECT_EQ(output.result.requests, 1u);
  ASSERT_EQ(output.lines.size(), 1u);
  EXPECT_TRUE(output.lines[0].at("ok").as_bool());
}

TEST(Serve, FailedOutputStreamStopsTheLoopAndIsReported) {
  Service service(small_options(1, 1));
  // The first line's parse-error response is written synchronously by the
  // reader thread, so the stream failure is observed before line two is
  // read — the loop must stop there and report the loss.
  std::istringstream in(
      "{bogus\n"
      "{\"protocol_version\": 2, \"id\": \"b\", \"op\": \"ping\"}\n");
  std::ostringstream out;
  out.setstate(std::ios::badbit);  // every write fails
  const ServeResult result = serve(service, in, out);
  EXPECT_FALSE(result.output_ok);
  EXPECT_EQ(result.requests, 1u);
}

TEST(Serve, NumericIdsEchoVerbatim) {
  Service service(small_options(1, 1));
  const ServeOutput output = run_serve(
      service, "{\"protocol_version\": 2, \"id\": 7, \"op\": \"ping\"}\n");
  ASSERT_EQ(output.lines.size(), 1u);
  ASSERT_TRUE(output.lines[0].at("id").is_number());
  EXPECT_EQ(output.lines[0].at("id").as_number(), 7);
}

TEST(Serve, SeenIdWindowAllowsReuseOnceEvicted) {
  // A duplicate inside the sliding window is rejected; an id older than
  // the last `seen_id_window` accepted requests may be reused — the bound
  // that keeps long-lived socket connections at constant memory.
  Service service(small_options(1, 1));
  ServeOptions options;
  options.seen_id_window = 2;
  const ServeOutput output = run_serve(
      service,
      "{\"protocol_version\": 2, \"id\": \"a\", \"op\": \"ping\"}\n"
      "{\"protocol_version\": 2, \"id\": \"a\", \"op\": \"ping\"}\n"  // dup
      "{\"protocol_version\": 2, \"id\": \"b\", \"op\": \"ping\"}\n"
      "{\"protocol_version\": 2, \"id\": \"c\", \"op\": \"ping\"}\n"  // evicts a
      "{\"protocol_version\": 2, \"id\": \"a\", \"op\": \"ping\"}\n",  // ok again
      options);
  EXPECT_EQ(output.result.requests, 5u);
  EXPECT_EQ(output.result.errors, 1u);
  std::size_t ok_count = 0, duplicate_errors = 0;
  for (const util::Json& line : output.lines) {
    if (line.at("ok").as_bool())
      ++ok_count;
    else if (line.at("error").as_string().find("duplicate request id") !=
             std::string::npos)
      ++duplicate_errors;
  }
  EXPECT_EQ(ok_count, 4u);
  EXPECT_EQ(duplicate_errors, 1u);
}

TEST(Serve, RejectedDuplicateDoesNotAgeTheWindow) {
  // Only *accepted* ids enter the window: hammering a duplicate must not
  // evict the id it collides with (which would re-admit the duplicate).
  Service service(small_options(1, 1));
  ServeOptions options;
  options.seen_id_window = 1;
  const ServeOutput output = run_serve(
      service,
      "{\"protocol_version\": 2, \"id\": \"a\", \"op\": \"ping\"}\n"
      "{\"protocol_version\": 2, \"id\": \"a\", \"op\": \"ping\"}\n"
      "{\"protocol_version\": 2, \"id\": \"a\", \"op\": \"ping\"}\n",
      options);
  EXPECT_EQ(output.result.errors, 2u);
}

TEST(Serve, CountV1ResultErrorsNeverThrows) {
  // The serve loop's guarded view of whatever run_v1_batch hands back: a
  // top-level error document (or any malformed shape) is one in-band
  // failure, not an exception that unwinds the stream.
  EXPECT_EQ(count_v1_result_errors(error_body("boom")), 1u);
  EXPECT_EQ(count_v1_result_errors(util::Json()), 1u);
  EXPECT_EQ(count_v1_result_errors(util::Json::parse("{\"results\": 3}")),
            1u);
  EXPECT_EQ(count_v1_result_errors(util::Json::parse("{\"results\": []}")),
            0u);
  EXPECT_EQ(count_v1_result_errors(util::Json::parse(
                "{\"results\": [{\"ok\": true}, {\"ok\": false}, {}, "
                "{\"ok\": 1}, 7]}")),
            4u);
}

TEST(Serve, CacheOpsWorkOverTheWire) {
  TempFile file("serve_cache.json");
  Service service(small_options());
  const ServeOutput output = run_serve(
      service,
      "{\"protocol_version\": 2, \"id\": \"e\", \"op\": \"eval\", "
      "\"kernel\": \"MVM\"}\n"
      "{\"protocol_version\": 2, \"id\": \"s\", \"op\": \"cache_save\", "
      "\"path\": \"" + file.path() + "\"}\n"
      "{\"protocol_version\": 2, \"id\": \"st\", \"op\": \"cache_stats\"}\n");
  EXPECT_EQ(output.result.errors, 0u);
  ASSERT_EQ(output.lines.size(), 3u);
  for (const util::Json& line : output.lines)
    EXPECT_TRUE(line.at("ok").as_bool());

  // Serve runs requests concurrently, so the snapshot may be taken before
  // eval finishes populating the table — assert only that whatever was
  // saved round-trips cleanly into a fresh cache.
  runtime::EvalCache fresh;
  std::ifstream saved(file.path());
  std::ostringstream text;
  text << saved.rdbuf();
  fresh.deserialize(util::Json::parse(text.str()));
  SUCCEED();
}

// ------------------------------------------------------------------ socket

// Runs server.run() on a background thread; the destructor initiates
// shutdown and joins, so a failing assertion can't leak the thread.
class ServerRunner {
 public:
  explicit ServerRunner(SocketServer& server)
      : server_(server), thread_([&server] { server.run(); }) {}
  ~ServerRunner() {
    server_.shutdown();
    thread_.join();
  }

 private:
  SocketServer& server_;
  std::thread thread_;
};

std::vector<std::string> client_round_trip(const ListenAddress& address,
                                           const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  run_socket_client(address, in, out);
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  std::string line;
  while (std::getline(reader, line)) lines.push_back(line);
  return lines;
}

// Responses stream out of completion order on both transports; sorting
// makes "same response set, byte-identical lines" assertable.
std::vector<std::string> sorted(std::vector<std::string> lines) {
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(Socket, ParseListenAddressForms) {
  ListenAddress address = parse_listen_address("/run/rsp.sock");
  EXPECT_EQ(address.kind, ListenAddress::Kind::kUnix);
  EXPECT_EQ(address.path, "/run/rsp.sock");
  EXPECT_EQ(address.spec(), "/run/rsp.sock");
  // No '/' and no ':' is still a unix path (relative, cwd).
  EXPECT_EQ(parse_listen_address("rsp.sock").kind,
            ListenAddress::Kind::kUnix);
  // A path containing ':' stays a unix path as long as it has a '/'.
  EXPECT_EQ(parse_listen_address("./odd:name.sock").kind,
            ListenAddress::Kind::kUnix);

  address = parse_listen_address("127.0.0.1:8080");
  EXPECT_EQ(address.kind, ListenAddress::Kind::kTcp);
  EXPECT_EQ(address.host, "127.0.0.1");
  EXPECT_EQ(address.port, 8080);
  EXPECT_EQ(address.spec(), "127.0.0.1:8080");
  address = parse_listen_address(":0");
  EXPECT_EQ(address.kind, ListenAddress::Kind::kTcp);
  EXPECT_EQ(address.host, "");
  EXPECT_EQ(address.port, 0);

  EXPECT_THROW(parse_listen_address(""), InvalidArgumentError);
  EXPECT_THROW(parse_listen_address("host:"), InvalidArgumentError);
  EXPECT_THROW(parse_listen_address("host:notaport"), InvalidArgumentError);
  EXPECT_THROW(parse_listen_address("host:70000"), InvalidArgumentError);
}

TEST(Socket, RejectsBadServerConfigs) {
  Service service(small_options(1, 1));
  EXPECT_THROW(SocketServer(service, {}), InvalidArgumentError);
  SocketServerOptions zero_connections;
  zero_connections.max_connections = 0;
  EXPECT_THROW(
      SocketServer(service, {parse_listen_address(":0")}, zero_connections),
      InvalidArgumentError);
  EXPECT_THROW(SocketServer(service,
                            {parse_listen_address("/nonexistent-dir/x.sock")}),
               Error);
}

TEST(Socket, BindRefusesToReplaceNonSocketFile) {
  // A typo'd --listen path must never delete data: binding over an
  // existing regular file fails and leaves the file intact.
  TempFile file("not_a_socket");
  {
    std::ofstream out(file.path());
    out << "precious\n";
  }
  Service service(small_options(1, 1));
  try {
    SocketServer server(service, {parse_listen_address(file.path())});
    FAIL() << "expected the bind to be refused";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("non-socket"), std::string::npos);
  }
  std::ifstream check(file.path());
  std::string contents;
  std::getline(check, contents);
  EXPECT_EQ(contents, "precious");
}

TEST(Socket, BindRefusesToStealLiveServerSocket) {
  // Unlink-before-bind only clears *debris*: a second server on the path
  // of a live one must fail, not silently strand the first server.
  TempFile socket_path("live.sock");
  Service service(small_options(1, 2));
  SocketServer first(service, {parse_listen_address(socket_path.path())});
  ServerRunner runner(first);
  try {
    SocketServer second(service, {parse_listen_address(socket_path.path())});
    FAIL() << "expected the second bind to be refused";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("running server"),
              std::string::npos);
  }
  // The live server is unharmed by the refused bind.
  const std::vector<std::string> lines = client_round_trip(
      first.addresses()[0],
      "{\"protocol_version\": 2, \"id\": \"p\", \"op\": \"ping\"}\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(util::Json::parse(lines[0]).at("ok").as_bool());
}

TEST(Socket, SecondShutdownForceClosesNonReadingClient) {
  // A peer that sends requests but never reads responses jams dispatch
  // threads inside send() once the socket buffers fill, so a graceful
  // drain alone could wait forever. The escalation contract: a second
  // shutdown() force-closes such connections and run() still returns.
  TempFile socket_path("force.sock");
  Service service(small_options(2, 2));
  SocketServer server(service,
                      {parse_listen_address(socket_path.path())});
  std::thread run_thread([&server] { server.run(); });

  const int fd = connect_socket(server.addresses()[0]);
  {
    SocketStreamBuf buf(fd);
    std::ostream sock_out(&buf);
    // ~300 eval responses (~2.6KB each) far exceed the server-side stream
    // buffer plus both kernel socket buffers — the writer must jam.
    for (int i = 0; i < 300; ++i)
      sock_out << "{\"protocol_version\": 2, \"id\": \"e" << i
               << "\", \"op\": \"eval\", \"kernel\": \"SAD\"}\n";
    sock_out.flush();
  }
  // Give the server time to read the burst and wedge in send(); the
  // escalation works regardless, this just makes the jam the common case.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  server.shutdown();  // graceful: would hang on the wedged connection
  server.shutdown();  // escalate: force-close it
  run_thread.join();  // must return; a hang fails via the test timeout
  ::close(fd);
  EXPECT_EQ(server.stats().active, 0u);
  EXPECT_EQ(server.stats().accepted, 1u);
}

TEST(Socket, UnixLoopbackByteIdenticalToStdinServe) {
  const std::string requests =
      "{\"protocol_version\": 2, \"id\": \"e\", \"op\": \"eval\", "
      "\"kernel\": \"SAD\"}\n"
      "{\"protocol_version\": 2, \"id\": \"m\", \"op\": \"map\", "
      "\"kernel\": \"SAD\", \"arch\": \"RSP#4\"}\n"
      "{\"protocol_version\": 2, \"id\": \"l\", \"op\": \"list\"}\n"
      "{\"protocol_version\": 2, \"id\": \"bad\", \"op\": \"warp\"}\n";
  Service pipe_service(small_options());
  const ServeOutput reference = run_serve(pipe_service, requests);

  TempFile socket_path("loopback.sock");
  Service service(small_options());
  SocketServer server(service,
                      {parse_listen_address(socket_path.path())});
  ServerRunner runner(server);
  const std::vector<std::string> lines =
      client_round_trip(server.addresses()[0], requests);
  EXPECT_EQ(sorted(lines), sorted(reference.raw_lines));
}

TEST(Socket, TcpEphemeralPortRoundTrip) {
  Service service(small_options(1, 2));
  SocketServer server(service, {parse_listen_address("127.0.0.1:0")});
  ASSERT_EQ(server.addresses().size(), 1u);
  EXPECT_GT(server.addresses()[0].port, 0);  // ephemeral port resolved
  ServerRunner runner(server);
  const std::vector<std::string> lines = client_round_trip(
      server.addresses()[0],
      "{\"protocol_version\": 2, \"id\": \"p\", \"op\": \"ping\"}\n");
  ASSERT_EQ(lines.size(), 1u);
  const util::Json response = util::Json::parse(lines[0]);
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("id").as_string(), "p");
}

TEST(Socket, ConcurrentClientsIsolatedIdScopesByteIdentical) {
  // Two clients interleave eval/dse/ping traffic over ONE shared service,
  // REUSING each other's request ids: id scopes are per-connection, and
  // each client's response set stays byte-identical to a stdin serve run
  // of the same stream (shared caches must not leak into payloads).
  const std::string requests_a =
      "{\"protocol_version\": 2, \"id\": \"r1\", \"op\": \"eval\", "
      "\"kernel\": \"SAD\"}\n"
      "{\"protocol_version\": 2, \"id\": \"r2\", \"op\": \"dse\", "
      "\"kernels\": [\"SAD\"], \"config\": {\"max_units_per_row\": 2, "
      "\"max_units_per_col\": 1, \"max_stages\": 2}}\n"
      "{\"protocol_version\": 2, \"id\": \"r3\", \"op\": \"ping\"}\n";
  const std::string requests_b =
      "{\"protocol_version\": 2, \"id\": \"r1\", \"op\": \"eval\", "
      "\"kernel\": \"MVM\"}\n"
      "{\"protocol_version\": 2, \"id\": \"r2\", \"op\": \"ping\", "
      "\"delay_ms\": 20}\n"
      "{\"protocol_version\": 2, \"id\": \"r3\", \"op\": \"map\", "
      "\"kernel\": \"MVM\", \"arch\": \"RSP#2\"}\n";

  Service reference_a_service(small_options());
  const ServeOutput reference_a = run_serve(reference_a_service, requests_a);
  Service reference_b_service(small_options());
  const ServeOutput reference_b = run_serve(reference_b_service, requests_b);

  TempFile socket_path("concurrent.sock");
  Service service(small_options(2, 4));
  SocketServer server(service,
                      {parse_listen_address(socket_path.path())});
  ServerRunner runner(server);
  const ListenAddress& address = server.addresses()[0];
  std::vector<std::string> lines_a, lines_b;
  std::thread client_a(
      [&] { lines_a = client_round_trip(address, requests_a); });
  std::thread client_b(
      [&] { lines_b = client_round_trip(address, requests_b); });
  client_a.join();
  client_b.join();

  // Every id was answered ok on both connections — a cross-connection id
  // scope would have turned one side's stream into duplicate-id errors.
  EXPECT_EQ(sorted(lines_a), sorted(reference_a.raw_lines));
  EXPECT_EQ(sorted(lines_b), sorted(reference_b.raw_lines));
  for (const std::string& line : lines_a)
    EXPECT_TRUE(util::Json::parse(line).at("ok").as_bool()) << line;
  for (const std::string& line : lines_b)
    EXPECT_TRUE(util::Json::parse(line).at("ok").as_bool()) << line;
}

TEST(Socket, ConnectionLimitAnsweredInBand) {
  TempFile socket_path("limit.sock");
  Service service(small_options(1, 2));
  SocketServerOptions options;
  options.max_connections = 1;
  SocketServer server(service, {parse_listen_address(socket_path.path())},
                      options);
  ServerRunner runner(server);
  const ListenAddress& address = server.addresses()[0];

  // Hold the one allowed connection open — and prove the server has
  // *registered* it (not merely accepted the TCP/unix handshake) by
  // completing a round trip before the second client connects.
  const int fd = connect_socket(address);
  SocketStreamBuf buf(fd);
  std::istream sock_in(&buf);
  std::ostream sock_out(&buf);
  sock_out << "{\"protocol_version\": 2, \"id\": \"hold\", \"op\": "
              "\"ping\"}\n"
           << std::flush;
  std::string line;
  ASSERT_TRUE(std::getline(sock_in, line));
  EXPECT_TRUE(util::Json::parse(line).at("ok").as_bool());

  const std::vector<std::string> rejected = client_round_trip(
      address,
      "{\"protocol_version\": 2, \"id\": \"r\", \"op\": \"ping\"}\n");
  ASSERT_EQ(rejected.size(), 1u);
  const util::Json response = util::Json::parse(rejected[0]);
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_NE(response.at("error").as_string().find("connection limit"),
            std::string::npos);
  EXPECT_TRUE(response.at("id").is_null());
  EXPECT_EQ(server.stats().rejected, 1u);

  // Releasing the held connection frees the slot for a new client.
  ::shutdown(fd, SHUT_WR);
  while (std::getline(sock_in, line)) {
  }
  ::close(fd);
  const std::vector<std::string> accepted = client_round_trip(
      address,
      "{\"protocol_version\": 2, \"id\": \"r\", \"op\": \"ping\"}\n");
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_TRUE(util::Json::parse(accepted[0]).at("ok").as_bool());
}

TEST(Socket, GracefulShutdownDrainsInflightRequests) {
  TempFile socket_path("drain.sock");
  Service service(small_options(1, 2));
  SocketServer server(service,
                      {parse_listen_address(socket_path.path())});
  std::thread run_thread([&server] { server.run(); });

  const int fd = connect_socket(server.addresses()[0]);
  SocketStreamBuf buf(fd);
  std::istream sock_in(&buf);
  std::ostream sock_out(&buf);
  // Round trip an immediate ping first so the delayed one is provably
  // *read* (same single-reader loop) before shutdown is requested.
  sock_out << "{\"protocol_version\": 2, \"id\": \"warm\", \"op\": "
              "\"ping\"}\n"
           << std::flush;
  std::string line;
  ASSERT_TRUE(std::getline(sock_in, line));
  // Delay sized for TSan on loaded CI runners: shutdown() below must land
  // while this request is still in flight for the drain to be observable
  // (and the test still passes — more slowly — if it has already
  // completed).
  sock_out << "{\"protocol_version\": 2, \"id\": \"slow\", \"op\": "
              "\"ping\", \"delay_ms\": 1000}\n"
           << std::flush;
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  server.shutdown();
  // The in-flight response still arrives, then the server closes cleanly.
  ASSERT_TRUE(std::getline(sock_in, line));
  const util::Json response = util::Json::parse(line);
  EXPECT_EQ(response.at("id").as_string(), "slow");
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_FALSE(std::getline(sock_in, line));  // EOF: connection drained
  ::close(fd);
  run_thread.join();

  const SocketServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(Socket, CacheStatsFoldsServerSection) {
  TempFile socket_path("stats.sock");
  Service service(small_options(1, 2));
  SocketServerOptions options;
  options.max_connections = 7;
  SocketServer server(service, {parse_listen_address(socket_path.path())},
                      options);
  service.set_stats_extension([&server] { return server.stats_json(); });
  ServerRunner runner(server);
  const std::vector<std::string> lines = client_round_trip(
      server.addresses()[0],
      "{\"protocol_version\": 2, \"id\": \"s\", \"op\": \"cache_stats\"}\n");
  ASSERT_EQ(lines.size(), 1u);
  const util::Json response = util::Json::parse(lines[0]);
  EXPECT_TRUE(response.at("ok").as_bool());
  const util::Json& section = response.at("server");
  EXPECT_EQ(section.at("connections").at("accepted").as_number(), 1);
  EXPECT_EQ(section.at("connections").at("active").as_number(), 1);
  EXPECT_EQ(section.at("connections").at("max").as_number(), 7);
  EXPECT_EQ(section.at("connections").at("rejected").as_number(), 0);

  // The pipe transport installs no extension: no "server" section there.
  Service pipe_service(small_options(1, 1));
  const ServeOutput pipe = run_serve(
      pipe_service,
      "{\"protocol_version\": 2, \"id\": \"s\", \"op\": \"cache_stats\"}\n");
  EXPECT_FALSE(pipe.lines[0].contains("server"));
}

}  // namespace
}  // namespace rsp::api
