// Property-based sweeps: randomly generated kernels are mapped, scheduled
// on every architecture class, legality-checked, and executed on the cycle
// simulator against the reference interpreter. This fuzzes the whole
// mapper → scheduler → simulator pipeline far beyond the nine paper
// kernels.
#include <gtest/gtest.h>

#include "arch/presets.hpp"
#include "ir/builder.hpp"
#include "ir/interp.hpp"
#include "kernels/workload.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine.hpp"
#include "arch/bitstream.hpp"
#include "core/estimate.hpp"
#include "rtl/generate.hpp"
#include "util/rng.hpp"

namespace rsp {
namespace {

struct RandomKernel {
  ir::LoopKernel kernel;
  sched::MappingHints hints;
  sched::ReductionSpec reduction;
  std::int64_t input_size;
};

/// Builds a random but well-formed kernel: a few loads, a random DAG of
/// arithmetic over them, an optional accumulator, and a store.
RandomKernel random_kernel(util::Rng& rng, const arch::ArraySpec& array) {
  ir::GraphBuilder b;
  std::vector<ir::NodeId> values;

  const int n_loads = static_cast<int>(rng.uniform(1, 3));
  const std::int64_t trips = rng.uniform(3, 24);
  for (int i = 0; i < n_loads; ++i) {
    const std::int64_t stride = rng.uniform(1, 2);
    const std::int64_t offset = rng.uniform(0, 4);
    values.push_back(b.load("in" + std::to_string(i),
                            [stride, offset](std::int64_t k) {
                              return stride * k + offset;
                            }));
  }
  if (rng.chance(0.5)) values.push_back(b.constant(rng.uniform(-9, 9)));

  const int n_ops = static_cast<int>(rng.uniform(2, 8));
  for (int i = 0; i < n_ops; ++i) {
    const auto pick = [&] {
      return values[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(values.size()) - 1))];
    };
    switch (rng.uniform(0, 4)) {
      case 0:
        values.push_back(b.add(pick(), pick()));
        break;
      case 1:
        values.push_back(b.sub(pick(), pick()));
        break;
      case 2:
        values.push_back(b.mult(pick(), pick()));
        break;
      case 3:
        values.push_back(b.abs(pick()));
        break;
      default:
        values.push_back(b.shift(pick(), static_cast<int>(rng.uniform(-2, 2))));
        break;
    }
  }

  sched::MappingHints hints;
  const int lane_options[] = {1, 2, 4, array.rows};
  hints.lanes = lane_options[rng.uniform(0, 3)];
  hints.stagger = static_cast<int>(rng.uniform(0, 3));
  hints.columns = static_cast<int>(rng.uniform(1, array.cols));

  sched::ReductionSpec reduction;
  if (rng.chance(0.4)) {
    // Accumulate with the PE-revisiting distance, then reduce globally.
    const int distance = hints.lanes * hints.columns;
    const ir::NodeId acc = b.accumulate(values.back(), 0, distance);
    reduction.scope = sched::ReductionSpec::Scope::kAll;
    reduction.source = acc;
    reduction.array = "out";
    reduction.index0 = 0;
  } else {
    hints.cycle_row_bands = rng.chance(0.5);
    b.store("out", [](std::int64_t k) { return k; }, values.back());
  }

  return RandomKernel{
      ir::LoopKernel("fuzz", b.take(), trips), hints, reduction,
      2 * trips + 8};
}

class RandomKernelSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomKernelSweep, LegalAndCorrectOnAllArchitectures) {
  util::Rng rng(0xFACE0000u + static_cast<unsigned>(GetParam()));
  const arch::ArraySpec array;  // 8×8
  const RandomKernel rk = random_kernel(rng, array);

  // Input environment.
  ir::Memory golden_mem;
  for (const ir::Node& n : rk.kernel.body().nodes())
    if (n.mem && n.kind == ir::OpKind::kLoad)
      golden_mem.set(n.mem->array,
                     kernels::deterministic_data(
                         n.mem->array + std::to_string(GetParam()),
                         static_cast<std::size_t>(rk.input_size), -50, 50));
  golden_mem.allocate("out", static_cast<std::size_t>(rk.input_size));

  // Golden = reference interpreter (+ manual reduction when enabled).
  const ir::UnrolledGraph unrolled(rk.kernel);
  ir::Memory interp_mem = golden_mem;
  const ir::InterpResult iresult =
      ir::interpret(unrolled, interp_mem, ir::DatapathMode::kWrap16);
  if (rk.reduction.enabled()) {
    // Sum of the accumulator's final value per chain (= per residue class
    // modulo the carried distance).
    const int distance = rk.hints.lanes * rk.hints.columns;
    std::int64_t total = 0;
    const std::int64_t trips = rk.kernel.trip_count();
    for (std::int64_t r = 0; r < std::min<std::int64_t>(distance, trips); ++r) {
      std::int64_t last = r;
      while (last + distance < trips) last += distance;
      total += iresult.values[static_cast<std::size_t>(
          unrolled.id_of(rk.reduction.source, last))];
    }
    // The mapper's reduction tree adds on the 16-bit datapath; modular
    // addition is associative, so wrapping the plain sum once is enough.
    interp_mem.write("out", 0, static_cast<std::int16_t>(
                                   static_cast<std::uint64_t>(total)));
  }

  const sched::LoopPipeliner mapper(array);
  const sched::PlacedProgram program =
      mapper.map(rk.kernel, unrolled, rk.hints, rk.reduction);
  const sched::ContextScheduler scheduler;

  for (const arch::Architecture& a : arch::standard_suite()) {
    const sched::ConfigurationContext ctx = scheduler.schedule(program, a);
    const sched::LegalityReport rep = sched::check_legality(ctx);
    ASSERT_TRUE(rep.ok) << a.name << ": " << rep.violations.front();

    ir::Memory sim_mem = golden_mem;
    sim::Machine machine(ir::DatapathMode::kWrap16);
    machine.run(ctx, sim_mem);
    ASSERT_TRUE(sim_mem == interp_mem)
        << "seed " << GetParam() << " on " << a.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelSweep, ::testing::Range(0, 25));

// ------------------------------------------------------- schedule algebra
class ArchPairProperty : public ::testing::TestWithParam<int> {};

TEST_P(ArchPairProperty, StallAccountingConsistent) {
  util::Rng rng(0xBEEF0000u + static_cast<unsigned>(GetParam()));
  const arch::ArraySpec array;
  const RandomKernel rk = random_kernel(rng, array);
  const sched::LoopPipeliner mapper(array);
  const sched::PlacedProgram p = mapper.map(rk.kernel, rk.hints, rk.reduction);
  const sched::ContextScheduler s;

  const int base_len =
      s.schedule(p, arch::base_architecture()).length();
  for (int v = 1; v <= 4; ++v) {
    // RS with unlimited units = base length exactly.
    const sched::PerfPoint rs = measure(s, p, arch::rs_architecture(v));
    EXPECT_EQ(rs.nostall_cycles, base_len);
    EXPECT_GE(rs.stalls, 0);
    // RSP no-stall schedule is never shorter than the base.
    const sched::PerfPoint rsp = measure(s, p, arch::rsp_architecture(v));
    EXPECT_GE(rsp.nostall_cycles, base_len);
    EXPECT_GE(rsp.stalls, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchPairProperty, ::testing::Range(0, 15));

// -------------------------------------------------- estimator optimism
class EstimateProperty : public ::testing::TestWithParam<int> {};

TEST_P(EstimateProperty, FastEstimateNeverExceedsExactCycles) {
  util::Rng rng(0xCAFE0000u + static_cast<unsigned>(GetParam()));
  const arch::ArraySpec array;
  const RandomKernel rk = random_kernel(rng, array);
  const sched::LoopPipeliner mapper(array);
  const sched::PlacedProgram p = mapper.map(rk.kernel, rk.hints, rk.reduction);
  const sched::ContextScheduler s;
  const sched::ConfigurationContext base_ctx =
      s.schedule(p, arch::base_architecture());
  for (const arch::Architecture& a : arch::standard_suite()) {
    if (!a.shares_multiplier()) continue;
    const core::PerfEstimate est = core::estimate_performance(base_ctx, a);
    EXPECT_LE(est.estimated_cycles(), s.schedule(p, a).length())
        << "seed " << GetParam() << " on " << a.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimateProperty, ::testing::Range(0, 20));

// -------------------------------------------------------- RTL generation
class RtlProperty : public ::testing::TestWithParam<int> {};

TEST_P(RtlProperty, RandomTopologiesGenerateConsistentStructure) {
  util::Rng rng(0xD00D0000u + static_cast<unsigned>(GetParam()));
  const int rows = static_cast<int>(rng.uniform(2, 10));
  const int cols = static_cast<int>(rng.uniform(2, 10));
  const int upr = static_cast<int>(rng.uniform(0, 3));
  const int upc = static_cast<int>(rng.uniform(0, 2));
  const int stages = (upr + upc) > 0 ? static_cast<int>(rng.uniform(1, 3)) : 1;
  const arch::Architecture a = arch::custom_architecture(
      "fuzz", rows, cols, upr, upc, stages);
  const rtl::Design d = rtl::generate(a);
  const rtl::RtlStats st = rtl::stats_of(d);
  EXPECT_EQ(st.pe_instances, rows * cols);
  EXPECT_EQ(st.config_cache_instances, rows * cols);
  EXPECT_EQ(st.shared_multiplier_instances,
            a.shares_multiplier() ? a.sharing.total_units(a.array) : 0);
  // Emission never produces duplicate module definitions.
  const std::string v = d.emit();
  EXPECT_EQ(v.find("module rsp_pe ("), v.rfind("module rsp_pe ("));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtlProperty, ::testing::Range(0, 20));

// ------------------------------------------------------ bitstream fuzzing
class BitstreamProperty : public ::testing::TestWithParam<int> {};

TEST_P(BitstreamProperty, RandomCachesRoundTrip) {
  util::Rng rng(0xB1750000u + static_cast<unsigned>(GetParam()));
  arch::ArraySpec array;
  array.rows = static_cast<int>(rng.uniform(1, 8));
  array.cols = static_cast<int>(rng.uniform(1, 8));
  const int length = static_cast<int>(rng.uniform(1, 40));
  const arch::SharingPlan plan{arch::Resource::kArrayMultiplier,
                               static_cast<int>(rng.uniform(0, 2)),
                               static_cast<int>(rng.uniform(0, 2)), 1};
  arch::ConfigCache cache(array, length);
  for (int r = 0; r < array.rows; ++r)
    for (int c = 0; c < array.cols; ++c)
      for (int t = 0; t < length; ++t) {
        arch::ConfigWord& w = cache.word({r, c}, t);
        w.opcode = static_cast<std::uint8_t>(rng.uniform(0, 10));
        w.src_a = static_cast<std::uint8_t>(rng.uniform(0, 4));
        w.src_b = static_cast<std::uint8_t>(rng.uniform(0, 4));
        w.shared_select = static_cast<std::uint8_t>(
            rng.uniform(0, plan.units_reachable_per_pe()));
        w.immediate = static_cast<std::int32_t>(rng.uniform(-32768, 32767));
        w.mem_access = rng.chance(0.3);
      }
  const auto bytes = arch::encode_bitstream(cache, plan);
  const arch::ConfigCache decoded = arch::decode_bitstream(bytes, plan);
  for (int r = 0; r < array.rows; ++r)
    for (int c = 0; c < array.cols; ++c)
      for (int t = 0; t < length; ++t)
        ASSERT_TRUE(decoded.word({r, c}, t) == cache.word({r, c}, t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitstreamProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace rsp
