// The H.264 extension suite (paper §6 future work): mapping, legality,
// simulation-vs-golden across all nine architectures, and the workload-
// class observations that motivated the extension.
#include <gtest/gtest.h>

#include <tuple>

#include "arch/presets.hpp"
#include "core/evaluator.hpp"
#include "kernels/h264.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine.hpp"

namespace rsp::kernels {
namespace {

TEST(H264, SuiteComposition) {
  const auto suite = h264_suite();
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name, "H264-SAD4x4");
  EXPECT_EQ(suite[3].name, "H264-DCT4x4");
}

TEST(H264, MultiplierFreeKernels) {
  EXPECT_EQ(make_h264_sad4x4().kernel.mults_per_iteration(), 0);
  EXPECT_EQ(make_h264_satd4x4().kernel.mults_per_iteration(), 0);
  EXPECT_EQ(make_h264_idct4x4().kernel.mults_per_iteration(), 0);
  EXPECT_EQ(make_h264_halfpel().kernel.mults_per_iteration(), 2);
}

class H264OnArch
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(H264OnArch, SimulatorMatchesGolden) {
  const auto [kernel_idx, arch_idx] = GetParam();
  const Workload w = h264_suite()[static_cast<std::size_t>(kernel_idx)];
  const arch::Architecture a =
      arch::standard_suite()[static_cast<std::size_t>(arch_idx)];

  const sched::LoopPipeliner mapper(w.array);
  const sched::ContextScheduler scheduler;
  const sched::ConfigurationContext ctx =
      scheduler.schedule(mapper.map(w.kernel, w.hints, w.reduction), a);
  sched::require_legal(ctx);

  ir::Memory mem, golden;
  w.setup(mem);
  w.setup(golden);
  sim::Machine().run(ctx, mem);
  w.golden(golden);
  EXPECT_TRUE(mem == golden) << w.name << " on " << a.name;
}

INSTANTIATE_TEST_SUITE_P(Suite, H264OnArch,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 9)));

TEST(H264, MultiplierFreeKernelsGetFullClockGain) {
  // Like the paper's SAD observation (§5.3): kernels without
  // multiplications convert the whole RSP clock gain into speedup.
  const core::RspEvaluator evaluator;
  for (const Workload& w :
       {make_h264_sad4x4(), make_h264_satd4x4(), make_h264_idct4x4()}) {
    const sched::LoopPipeliner mapper(w.array);
    const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
    const auto rows = evaluator.evaluate_suite(p, arch::standard_suite());
    EXPECT_EQ(rows[5].cycles, rows[0].cycles) << w.name;  // RSP#1 == base
    EXPECT_NEAR(rows[5].delay_reduction_percent, 35.7, 0.3) << w.name;
  }
}

TEST(H264, HalfPelStallsOnlyOnAggressiveSharing) {
  const Workload w = make_h264_halfpel();
  const core::RspEvaluator evaluator;
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
  EXPECT_EQ(evaluator.evaluate(p, arch::rs_architecture(2)).stalls, 0);
  EXPECT_EQ(evaluator.evaluate(p, arch::rsp_architecture(2)).stalls, 0);
}

TEST(H264, GoldenModelsSelfConsistent) {
  // Golden sanity on tiny closed-form cases: DCT of a constant block.
  const Workload w = make_h264_idct4x4();
  ir::Memory m;
  m.set("blk", std::vector<std::int64_t>(256, 1));
  m.allocate("out", 256);
  w.golden(m);
  // Row [1 1 1 1] → y = [4, 0, 0, 0].
  EXPECT_EQ(m.read("out", 0), 4);
  EXPECT_EQ(m.read("out", 1), 0);
  EXPECT_EQ(m.read("out", 2), 0);
  EXPECT_EQ(m.read("out", 3), 0);
}

}  // namespace
}  // namespace rsp::kernels
