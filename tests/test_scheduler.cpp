#include <gtest/gtest.h>

#include <set>

#include "kernels/matmul.hpp"
#include "kernels/registry.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/pretty.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"
#include "util/error.hpp"

namespace rsp::sched {
namespace {

PlacedProgram place(const kernels::Workload& w) {
  LoopPipeliner mapper(w.array);
  return mapper.map(w.kernel, w.hints, w.reduction);
}

arch::Architecture base_for(const kernels::Workload& w) {
  return arch::base_architecture(w.array.rows, w.array.cols);
}

// ------------------------------------------------------------- base rules
TEST(Scheduler, BaseScheduleIsLegalForEveryKernel) {
  const ContextScheduler s;
  for (const auto& w : kernels::paper_suite()) {
    const ConfigurationContext ctx = s.schedule(place(w), base_for(w));
    const LegalityReport rep = check_legality(ctx);
    EXPECT_TRUE(rep.ok) << w.name << ": "
                        << (rep.violations.empty() ? ""
                                                   : rep.violations.front());
  }
}

TEST(Scheduler, DeterministicAcrossRuns) {
  const ContextScheduler s;
  const auto w = kernels::find_workload("FFT");
  const PlacedProgram p = place(w);
  const ConfigurationContext a = s.schedule(p, arch::rsp_architecture(1));
  const ConfigurationContext b = s.schedule(p, arch::rsp_architecture(1));
  ASSERT_EQ(a.size(), b.size());
  for (ProgIndex i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.op(i).cycle, b.op(i).cycle);
    EXPECT_EQ(a.op(i).unit.has_value(), b.op(i).unit.has_value());
    if (a.op(i).unit) {
      EXPECT_EQ(*a.op(i).unit, *b.op(i).unit);
    }
  }
}

TEST(Scheduler, NotBeforeRespected) {
  const ContextScheduler s;
  const auto w = kernels::find_workload("ICCG");
  const PlacedProgram p = place(w);
  const ConfigurationContext ctx = s.schedule(p, base_for(w));
  for (ProgIndex i = 0; i < p.size(); ++i)
    EXPECT_GE(ctx.op(i).cycle, p.op(i).not_before);
}

TEST(Scheduler, RejectsGeometryMismatch) {
  const ContextScheduler s;
  const auto w = kernels::make_matmul(4);  // 4×4 program
  EXPECT_THROW(s.schedule(place(w), arch::base_architecture(8, 8)),
               InvalidArgumentError);
}

// ------------------------------------------------------- sharing semantics
TEST(Scheduler, SharedMultsCarryUnits) {
  const ContextScheduler s;
  const auto w = kernels::find_workload("MVM");
  const ConfigurationContext ctx =
      s.schedule(place(w), arch::rs_architecture(2));
  int mults = 0;
  for (const ScheduledOp& op : ctx.ops()) {
    if (ir::is_critical_op(op.kind)) {
      ++mults;
      ASSERT_TRUE(op.unit.has_value());
      // Unit reachable: row pool of the op's own row.
      EXPECT_EQ(op.unit->pool, arch::SharedUnitId::Pool::kRow);
      EXPECT_EQ(op.unit->line, op.pe.row);
    } else {
      EXPECT_FALSE(op.unit.has_value());
    }
  }
  EXPECT_EQ(mults, 64);
}

TEST(Scheduler, BaseMultsCarryNoUnit) {
  const ContextScheduler s;
  const auto w = kernels::find_workload("MVM");
  const ConfigurationContext ctx = s.schedule(place(w), base_for(w));
  for (const ScheduledOp& op : ctx.ops()) EXPECT_FALSE(op.unit.has_value());
}

TEST(Scheduler, RsWithEnoughUnitsMatchesBaseCycles) {
  // RS rescheduling with unlimited units must not change the schedule
  // length (same latencies, sharing constraint not binding).
  const ContextScheduler s;
  for (const auto& w : kernels::paper_suite()) {
    const PlacedProgram p = place(w);
    const int base_len = s.schedule(p, base_for(w)).length();
    const arch::Architecture unlimited =
        unlimited_units(arch::rs_architecture(1, w.array.rows, w.array.cols));
    EXPECT_EQ(s.schedule(p, unlimited).length(), base_len) << w.name;
  }
}

TEST(Scheduler, StallsNonNegativeAndMonotoneInSharing) {
  // Fewer shared units can never shorten the schedule: RS#1 >= RS#2 >= RS#3
  // >= RS#4 in cycles (pools only grow from #1 to #4).
  const ContextScheduler s;
  for (const auto& w : kernels::paper_suite()) {
    const PlacedProgram p = place(w);
    int prev = std::numeric_limits<int>::max();
    for (int v = 1; v <= 4; ++v) {
      const int len =
          s.schedule(p, arch::rs_architecture(v, w.array.rows, w.array.cols))
              .length();
      EXPECT_LE(len, prev) << w.name << " RS#" << v;
      prev = len;
    }
  }
}

TEST(Scheduler, UnitNeverDoubleIssued) {
  const ContextScheduler s;
  const auto w = kernels::find_workload("2D-FDCT");
  const ConfigurationContext ctx =
      s.schedule(place(w), arch::rsp_architecture(1));
  std::set<std::pair<std::string, int>> issues;
  for (const ScheduledOp& op : ctx.ops()) {
    if (!op.unit) continue;
    EXPECT_TRUE(
        issues.emplace(arch::to_string(*op.unit), op.cycle).second);
  }
}

// ---------------------------------------------------- pipelining semantics
TEST(Scheduler, RspLatencyAppliedToMults) {
  const ContextScheduler s;
  const auto w = kernels::find_workload("FFT");
  const ConfigurationContext ctx =
      s.schedule(place(w), arch::rsp_architecture(2));
  for (const ScheduledOp& op : ctx.ops())
    EXPECT_EQ(op.latency, ir::is_critical_op(op.kind) ? 2 : 1);
}

TEST(Scheduler, DeeperPipeliningNeverShortensSchedule) {
  const ContextScheduler s;
  const auto w = kernels::find_workload("Hydro");
  const PlacedProgram p = place(w);
  int prev = 0;
  for (int stages = 2; stages <= 4; ++stages) {
    const int len =
        s.schedule(p, arch::rsp_architecture(2, 8, 8, stages)).length();
    EXPECT_GE(len, prev);
    prev = len;
  }
}

TEST(Scheduler, PipeliningReducesPeakUnitDemand) {
  // The Fig. 2 → Fig. 6 claim: the same matmul needs 8 concurrent
  // multipliers un-pipelined but only 4 once the multiplier is 2-stage
  // pipelined (the PE occupies both stages, staggering the bursts).
  const ContextScheduler s;
  const auto w = kernels::make_matmul(4);
  const PlacedProgram p = place(w);

  const arch::Architecture base = arch::base_architecture(4, 4);
  const int base_peak =
      s.schedule(p, base).max_critical_issues_per_cycle();
  EXPECT_EQ(base_peak, 8);

  // Pipelining halves the peak issue demand even with unlimited units: the
  // PE occupies both multiplication stages, so the column bursts stagger.
  const arch::Architecture rsp_unlimited = unlimited_units(
      arch::custom_architecture("RSP-unl", 4, 4, 1, 0, 2));
  const int rsp_peak =
      s.schedule(p, rsp_unlimited).max_critical_issues_per_cycle();
  EXPECT_LE(rsp_peak, 4);

  // Hence 4 pipelined multipliers (1 per row) suffice without any stall.
  const PerfPoint rsp =
      measure(s, p, arch::custom_architecture("RSP-4u", 4, 4, 1, 0, 2));
  EXPECT_EQ(rsp.stalls, 0);
}

// ------------------------------------------------------------ perf points
TEST(Scheduler, MeasureDecomposesStalls) {
  const ContextScheduler s;
  const auto w = kernels::find_workload("State");
  const PlacedProgram p = place(w);
  const PerfPoint base = measure(s, p, base_for(w));
  EXPECT_EQ(base.stalls, 0);
  EXPECT_EQ(base.cycles, base.nostall_cycles);
  const PerfPoint rs1 = measure(s, p, arch::rs_architecture(1));
  EXPECT_EQ(rs1.cycles, rs1.nostall_cycles + rs1.stalls);
  EXPECT_GT(rs1.stalls, 0);  // State hammers RS#1 (paper: 15 stalls)
  const PerfPoint rs4 = measure(s, p, arch::rs_architecture(4));
  EXPECT_EQ(rs4.stalls, 0);
}

// ------------------------------------------------------------------ stats
TEST(Stats, HistogramSumsToTotalMults) {
  const ContextScheduler s;
  const auto w = kernels::find_workload("Hydro");
  const ConfigurationContext ctx = s.schedule(place(w), base_for(w));
  const ScheduleStats st = stats_of(ctx);
  long total = 0;
  for (int c : st.mult_histogram) total += c;
  EXPECT_EQ(total, st.total_mults);
  EXPECT_EQ(st.total_mults, 32 * 3);  // 3 mults × 32 iterations
  EXPECT_EQ(st.max_mults_per_cycle, 6);  // the Table 3 value
}

// ----------------------------------------------------------------- pretty
TEST(Pretty, RendersStagesForPipelinedMults) {
  const ContextScheduler s;
  const auto w = kernels::make_matmul(4);
  const ConfigurationContext ctx =
      s.schedule(place(w), arch::custom_architecture("RSP", 4, 4, 2, 0, 2));
  const std::string grid = render_schedule(ctx);
  EXPECT_NE(grid.find("1*"), std::string::npos);
  EXPECT_NE(grid.find("2*"), std::string::npos);
  EXPECT_NE(grid.find("Ld"), std::string::npos);
  const std::string base_grid =
      render_schedule(s.schedule(place(w), arch::base_architecture(4, 4)));
  EXPECT_EQ(base_grid.find("1*"), std::string::npos);
  EXPECT_NE(base_grid.find("*"), std::string::npos);
}

TEST(Pretty, PerPeViewListsEveryPe) {
  const ContextScheduler s;
  const auto w = kernels::make_matmul(4);
  const ConfigurationContext ctx =
      s.schedule(place(w), arch::base_architecture(4, 4));
  PrettyOptions opt;
  opt.per_pe = true;
  const std::string grid = render_schedule(ctx, opt);
  EXPECT_NE(grid.find("(3,3)"), std::string::npos);
}

// ---------------------------------------------------------------- encode
TEST(Encode, ConfigCacheReflectsSchedule) {
  const ContextScheduler s;
  const auto w = kernels::find_workload("ICCG");
  const ConfigurationContext ctx =
      s.schedule(place(w), arch::rs_architecture(1));
  const arch::ConfigCache cache = ctx.encode();
  EXPECT_EQ(cache.context_length(), std::max(ctx.length(), 1));
  // Every scheduled op occupies exactly one non-idle word.
  int words = 0;
  for (int t = 0; t < cache.context_length(); ++t)
    for (int r = 0; r < 8; ++r)
      for (int c = 0; c < 8; ++c)
        if (cache.word({r, c}, t).opcode != 0) ++words;
  EXPECT_EQ(words, ctx.size());
}

}  // namespace
}  // namespace rsp::sched
