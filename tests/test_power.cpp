#include <gtest/gtest.h>

#include "kernels/registry.hpp"
#include "power/power.hpp"
#include "sched/mapper.hpp"
#include "sched/scheduler.hpp"

namespace rsp::power {
namespace {

sched::ConfigurationContext context_for(const std::string& kernel,
                                        const arch::Architecture& a) {
  const kernels::Workload w = kernels::find_workload(kernel);
  const sched::LoopPipeliner mapper(w.array);
  const sched::ContextScheduler scheduler;
  return scheduler.schedule(mapper.map(w.kernel, w.hints, w.reduction), a);
}

TEST(Power, BreakdownSumsToTotal) {
  const PowerModel model;
  const PowerReport r =
      model.estimate(context_for("MVM", arch::base_architecture()));
  const EnergyBreakdown& e = r.energy;
  EXPECT_DOUBLE_EQ(e.total(), e.dynamic_total() + e.leakage);
  EXPECT_GT(e.multiplier, 0.0);
  EXPECT_GT(e.config_cache, 0.0);
  EXPECT_GT(e.data_buses, 0.0);
  EXPECT_GT(r.average_power, 0.0);
}

TEST(Power, SadUsesNoMultiplierEnergy) {
  const PowerModel model;
  const PowerReport r =
      model.estimate(context_for("SAD", arch::base_architecture()));
  EXPECT_EQ(r.energy.multiplier, 0.0);
  EXPECT_EQ(r.energy.bus_switch, 0.0);
  EXPECT_GT(r.energy.alu, 0.0);
}

TEST(Power, SharingChargesTheBusSwitch) {
  const PowerModel model;
  const PowerReport base =
      model.estimate(context_for("MVM", arch::base_architecture()));
  const PowerReport rs =
      model.estimate(context_for("MVM", arch::rs_architecture(1)));
  EXPECT_EQ(base.energy.bus_switch, 0.0);
  EXPECT_GT(rs.energy.bus_switch, 0.0);
}

TEST(Power, SharedDesignLeaksLessPerCycle) {
  // Leakage scales with area × time. Same kernel, same cycle count (MVM has
  // no RS stalls): RS#1's array is 42% smaller, so its leakage per ns must
  // be smaller; total leakage is also smaller despite the slower clock.
  const PowerModel model;
  const PowerReport base =
      model.estimate(context_for("MVM", arch::base_architecture()));
  const PowerReport rs =
      model.estimate(context_for("MVM", arch::rs_architecture(1)));
  const double base_rate = base.energy.leakage / base.execution_time_ns;
  const double rs_rate = rs.energy.leakage / rs.execution_time_ns;
  EXPECT_LT(rs_rate, base_rate);
}

TEST(Power, RspReducesEnergyOnMultFreeKernels) {
  // The paper's future-work hypothesis, checked on SAD: RSP#1 runs the
  // same cycle count on a 40% smaller array at a 36% faster clock, so both
  // leakage (area×time) and cache energy (cycles) drop.
  const PowerModel model;
  const PowerReport base =
      model.estimate(context_for("SAD", arch::base_architecture()));
  const PowerReport rsp =
      model.estimate(context_for("SAD", arch::rsp_architecture(1)));
  EXPECT_LT(rsp.energy.leakage, base.energy.leakage);
  EXPECT_LT(rsp.energy.total(), base.energy.total());
}

TEST(Power, FactorsAreTunable) {
  PowerModel model;
  PowerModel::Factors f = model.factors();
  f.leakage_per_slice_ns = 0.0;
  model.set_factors(f);
  const PowerReport r =
      model.estimate(context_for("SAD", arch::base_architecture()));
  EXPECT_EQ(r.energy.leakage, 0.0);
}

TEST(Power, EnergyScalesWithWorkloadSize) {
  const PowerModel model;
  const double small =
      model.estimate(context_for("ICCG", arch::base_architecture()))
          .energy.dynamic_total();
  const double large =
      model.estimate(context_for("2D-FDCT", arch::base_architecture()))
          .energy.dynamic_total();
  EXPECT_GT(large, small);  // FDCT does far more work than ICCG
}

}  // namespace
}  // namespace rsp::power
