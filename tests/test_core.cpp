#include <gtest/gtest.h>

#include "core/estimate.hpp"
#include "core/evaluator.hpp"
#include "kernels/registry.hpp"
#include "sched/mapper.hpp"
#include "synth/paper_reference.hpp"
#include "util/error.hpp"

namespace rsp::core {
namespace {

sched::PlacedProgram place(const kernels::Workload& w) {
  sched::LoopPipeliner mapper(w.array);
  return mapper.map(w.kernel, w.hints, w.reduction);
}

// ---------------------------------------------------------------- evaluator
TEST(Evaluator, EtIsCyclesTimesClock) {
  const RspEvaluator ev;
  const auto w = kernels::find_workload("ICCG");
  const sched::PlacedProgram p = place(w);
  const EvalResult base = ev.evaluate(p, arch::base_architecture());
  EXPECT_DOUBLE_EQ(base.execution_time_ns, base.cycles * 26.0);
  EXPECT_EQ(base.stalls, 0);
  EXPECT_EQ(base.delay_reduction_percent, 0.0);
}

TEST(Evaluator, DelayReductionAgainstBase) {
  const RspEvaluator ev;
  const auto w = kernels::find_workload("SAD");
  const sched::PlacedProgram p = place(w);
  const auto rows = ev.evaluate_suite(p, arch::standard_suite());
  ASSERT_EQ(rows.size(), 9u);
  // SAD: cycle counts identical everywhere (no mults), so DR equals the
  // clock ratio; RSP#1 must land on the paper's 35.7 % headline.
  for (const auto& r : rows) EXPECT_EQ(r.cycles, rows[0].cycles);
  EXPECT_NEAR(rows[5].delay_reduction_percent, 35.7, 0.2);
  EXPECT_NEAR(rows[8].delay_reduction_percent, 27.57, 0.2);
  // RS rows are slowdowns.
  for (int i = 1; i <= 4; ++i)
    EXPECT_LT(rows[static_cast<std::size_t>(i)].delay_reduction_percent, 0.0);
}

TEST(Evaluator, SuiteRequiresArchitectures) {
  const RspEvaluator ev;
  const auto w = kernels::find_workload("SAD");
  EXPECT_THROW(ev.evaluate_suite(place(w), {}), InvalidArgumentError);
}

TEST(Evaluator, RspNoStallCyclesDominateBase) {
  // RSP cycles = base + RP stretching, never less.
  const RspEvaluator ev;
  for (const auto& w : kernels::paper_suite()) {
    const sched::PlacedProgram p = place(w);
    const EvalResult base = ev.evaluate(p, arch::base_architecture());
    const EvalResult rsp2 = ev.evaluate(p, arch::rsp_architecture(2),
                                        base.execution_time_ns);
    EXPECT_GE(rsp2.cycles, base.cycles) << w.name;
  }
}

// ----------------------------------------------------------------- stalls
TEST(Evaluator, StallShapeMatchesPaper) {
  // The qualitative stall pattern of Tables 4/5:
  //   RS#1 stalls multiplier-hungry kernels; RS#3/RS#4 never stall;
  //   RSP#2 never stalls; SAD never stalls anywhere.
  const RspEvaluator ev;
  const std::vector<std::string> hungry = {"State", "2D-FDCT", "FFT"};
  for (const auto& name : hungry) {
    const auto w = kernels::find_workload(name);
    const sched::PlacedProgram p = place(w);
    EXPECT_GT(ev.evaluate(p, arch::rs_architecture(1)).stalls, 0) << name;
  }
  for (const auto& w : kernels::paper_suite()) {
    const sched::PlacedProgram p = place(w);
    EXPECT_EQ(ev.evaluate(p, arch::rs_architecture(3)).stalls, 0) << w.name;
    EXPECT_EQ(ev.evaluate(p, arch::rs_architecture(4)).stalls, 0) << w.name;
    EXPECT_EQ(ev.evaluate(p, arch::rsp_architecture(2)).stalls, 0) << w.name;
  }
  const auto sad = kernels::find_workload("SAD");
  const sched::PlacedProgram sp = place(sad);
  for (const auto& a : arch::standard_suite())
    EXPECT_EQ(ev.evaluate(sp, a).stalls, 0);
}

TEST(Evaluator, BestArchitectureIsRsp1OrRsp2) {
  // Paper §5.3: "the best performance for individual kernels can be
  // obtained with RSP#1 or RSP#2".
  const RspEvaluator ev;
  for (const auto& w : kernels::paper_suite()) {
    const sched::PlacedProgram p = place(w);
    const auto rows = ev.evaluate_suite(p, arch::standard_suite());
    std::size_t best = 0;
    for (std::size_t i = 1; i < rows.size(); ++i)
      if (rows[i].execution_time_ns < rows[best].execution_time_ns) best = i;
    EXPECT_TRUE(rows[best].arch_name == "RSP#1" ||
                rows[best].arch_name == "RSP#2")
        << w.name << " best on " << rows[best].arch_name;
  }
}

// --------------------------------------------------------------- estimate
TEST(Estimate, RequiresBaseContext) {
  const RspEvaluator ev;
  const auto w = kernels::find_workload("MVM");
  const sched::PlacedProgram p = place(w);
  const auto rs_ctx = ev.scheduler().schedule(p, arch::rs_architecture(1));
  EXPECT_THROW(estimate_performance(rs_ctx, arch::rs_architecture(2)),
               InvalidArgumentError);
}

TEST(Estimate, BaseTargetHasNoOverheads) {
  const RspEvaluator ev;
  const auto w = kernels::find_workload("MVM");
  const sched::PlacedProgram p = place(w);
  const auto base_ctx = ev.scheduler().schedule(p, arch::base_architecture());
  const PerfEstimate est =
      estimate_performance(base_ctx, arch::base_architecture());
  EXPECT_EQ(est.rs_stall_bound, 0);
  EXPECT_EQ(est.rp_overhead, 0);
  EXPECT_EQ(est.estimated_cycles(), base_ctx.length());
}

TEST(Estimate, IsOptimisticUpperBoundOnPerformance) {
  // Paper §4: the quick estimate never *overstates* the cost — estimated
  // cycles <= exactly rescheduled cycles for every kernel × architecture.
  const RspEvaluator ev;
  for (const auto& w : kernels::paper_suite()) {
    const sched::PlacedProgram p = place(w);
    const auto base_ctx =
        ev.scheduler().schedule(p, arch::base_architecture());
    for (const auto& a : arch::standard_suite()) {
      if (!a.shares_multiplier()) continue;
      const PerfEstimate est = estimate_performance(base_ctx, a);
      const int exact =
          ev.scheduler().schedule(p, a).length();
      EXPECT_LE(est.estimated_cycles(), exact)
          << w.name << " on " << a.name;
    }
  }
}

TEST(Estimate, LongestMultChainOnKnownKernels) {
  const RspEvaluator ev;
  // Hydro: r*z + t*z feed y*(...): chain of 2 dependent multiplications.
  const auto hydro = kernels::find_workload("Hydro");
  const auto ctx = ev.scheduler().schedule(place(hydro),
                                           arch::base_architecture());
  EXPECT_EQ(longest_mult_chain(ctx), 2);
  // SAD has none.
  const auto sad = kernels::find_workload("SAD");
  EXPECT_EQ(longest_mult_chain(ev.scheduler().schedule(
                place(sad), arch::base_architecture())),
            0);
}

TEST(Estimate, RsStallBoundGrowsWhenUnitsShrink) {
  const RspEvaluator ev;
  const auto w = kernels::find_workload("2D-FDCT");
  const auto base_ctx =
      ev.scheduler().schedule(place(w), arch::base_architecture());
  const PerfEstimate rs1 =
      estimate_performance(base_ctx, arch::rs_architecture(1));
  const PerfEstimate rs4 =
      estimate_performance(base_ctx, arch::rs_architecture(4));
  EXPECT_GE(rs1.rs_stall_bound, rs4.rs_stall_bound);
}

}  // namespace
}  // namespace rsp::core
