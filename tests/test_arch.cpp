#include <gtest/gtest.h>

#include "arch/array.hpp"
#include "arch/bus_switch.hpp"
#include "arch/config_cache.hpp"
#include "arch/presets.hpp"
#include "arch/resources.hpp"
#include "arch/sharing.hpp"
#include "util/error.hpp"

namespace rsp::arch {
namespace {

// ------------------------------------------------------------------ array
TEST(Array, ValidationRejectsDegenerateSpecs) {
  ArraySpec a;
  a.rows = 0;
  EXPECT_THROW(a.validate(), InvalidArgumentError);
  a = ArraySpec{};
  a.read_buses_per_row = 0;
  EXPECT_THROW(a.validate(), InvalidArgumentError);
  a = ArraySpec{};
  a.data_width_bits = 80;
  EXPECT_THROW(a.validate(), InvalidArgumentError);
  EXPECT_NO_THROW(ArraySpec{}.validate());
}

TEST(Array, LinearCoordRoundTrip) {
  ArraySpec a;
  a.rows = 3;
  a.cols = 5;
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 5; ++c) {
      const PeCoord pe{r, c};
      EXPECT_EQ(a.coord(a.linear(pe)), pe);
    }
}

TEST(Array, RouteClassification) {
  const ArraySpec a;  // 8×8
  EXPECT_EQ(a.route({2, 2}, {2, 2}), RouteKind::kSamePe);
  EXPECT_EQ(a.route({2, 2}, {2, 3}), RouteKind::kNeighbor);
  EXPECT_EQ(a.route({2, 2}, {3, 2}), RouteKind::kNeighbor);
  EXPECT_EQ(a.route({2, 2}, {2, 7}), RouteKind::kRowLine);
  EXPECT_EQ(a.route({0, 4}, {6, 4}), RouteKind::kColumnLine);
  EXPECT_EQ(a.route({0, 0}, {1, 1}), RouteKind::kNone);
}

// ---------------------------------------------------------------- sharing
TEST(Sharing, TotalUnitsMatchesEquation2Term) {
  const ArraySpec a;  // 8×8
  SharingPlan plan{Resource::kArrayMultiplier, 2, 1, 1};
  // n·shr + m·shc = 8·2 + 8·1 = 24 (paper RS#3).
  EXPECT_EQ(plan.total_units(a), 24);
}

TEST(Sharing, ReachableUnitsRowThenColumn) {
  const ArraySpec a;
  SharingPlan plan{Resource::kArrayMultiplier, 2, 1, 1};
  const auto units = plan.reachable_units(a, {3, 5});
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0], (SharedUnitId{SharedUnitId::Pool::kRow, 3, 0}));
  EXPECT_EQ(units[1], (SharedUnitId{SharedUnitId::Pool::kRow, 3, 1}));
  EXPECT_EQ(units[2], (SharedUnitId{SharedUnitId::Pool::kColumn, 5, 0}));
}

TEST(Sharing, ValidateRejectsBadPlans) {
  const ArraySpec a;
  SharingPlan negative{Resource::kArrayMultiplier, -1, 0, 1};
  EXPECT_THROW(negative.validate(a), InvalidArgumentError);
  SharingPlan zero_stages{Resource::kArrayMultiplier, 1, 0, 0};
  EXPECT_THROW(zero_stages.validate(a), InvalidArgumentError);
  SharingPlan alu_shared{Resource::kAlu, 1, 0, 1};
  EXPECT_THROW(alu_shared.validate(a), InvalidArgumentError);
  SharingPlan too_deep{Resource::kArrayMultiplier, 1, 0, 9};
  EXPECT_THROW(too_deep.validate(a), InvalidArgumentError);
}

TEST(Sharing, UnitIdToString) {
  EXPECT_EQ(to_string(SharedUnitId{SharedUnitId::Pool::kRow, 3, 1}),
            "row3.u1");
  EXPECT_EQ(to_string(SharedUnitId{SharedUnitId::Pool::kColumn, 0, 0}),
            "col0.u0");
}

// -------------------------------------------------------------- resources
TEST(Resources, PeSpecComposition) {
  const auto base = base_pe().resources();
  EXPECT_NE(std::find(base.begin(), base.end(), Resource::kArrayMultiplier),
            base.end());
  const auto shared = shared_pe().resources();
  EXPECT_EQ(std::find(shared.begin(), shared.end(),
                      Resource::kArrayMultiplier),
            shared.end());
  EXPECT_NE(std::find(shared.begin(), shared.end(), Resource::kBusSwitch),
            shared.end());
  const auto pipe = shared_pipelined_pe().resources();
  EXPECT_NE(std::find(pipe.begin(), pipe.end(), Resource::kPipelineRegister),
            pipe.end());
}

TEST(Resources, OnlyMultiplierSharableAndPipelinable) {
  EXPECT_TRUE(is_sharable(Resource::kArrayMultiplier));
  EXPECT_TRUE(is_pipelinable(Resource::kArrayMultiplier));
  EXPECT_FALSE(is_sharable(Resource::kAlu));
  EXPECT_FALSE(is_pipelinable(Resource::kShiftLogic));
}

// ---------------------------------------------------------------- presets
TEST(Presets, StandardSuiteMatchesPaperOrder) {
  const auto suite = standard_suite();
  ASSERT_EQ(suite.size(), 9u);
  EXPECT_EQ(suite[0].name, "Base");
  EXPECT_EQ(suite[1].name, "RS#1");
  EXPECT_EQ(suite[4].name, "RS#4");
  EXPECT_EQ(suite[5].name, "RSP#1");
  EXPECT_EQ(suite[8].name, "RSP#4");
  for (const auto& a : suite) EXPECT_NO_THROW(a.validate());
}

TEST(Presets, Fig8Topologies) {
  EXPECT_EQ(rs_architecture(1).sharing.units_per_row, 1);
  EXPECT_EQ(rs_architecture(1).sharing.units_per_col, 0);
  EXPECT_EQ(rs_architecture(3).sharing.units_per_col, 1);
  EXPECT_EQ(rs_architecture(4).sharing.units_per_row, 2);
  EXPECT_EQ(rs_architecture(4).sharing.units_per_col, 2);
  EXPECT_THROW(rs_architecture(5), InvalidArgumentError);
}

TEST(Presets, MultLatencyFollowsPipelining) {
  EXPECT_EQ(base_architecture().mult_latency(), 1);
  EXPECT_EQ(rs_architecture(2).mult_latency(), 1);
  EXPECT_EQ(rsp_architecture(2).mult_latency(), 2);
  EXPECT_EQ(rsp_architecture(2, 8, 8, 3).mult_latency(), 3);
}

TEST(Presets, ValidateCatchesInconsistentCompositions) {
  Architecture bad = rs_architecture(1);
  bad.pe.has_multiplier = true;  // shares AND keeps private multipliers
  EXPECT_THROW(bad.validate(), InvalidArgumentError);

  Architecture bad2 = base_architecture();
  bad2.pe.has_multiplier = false;  // nobody can multiply
  EXPECT_THROW(bad2.validate(), InvalidArgumentError);

  Architecture bad3 = rsp_architecture(1);
  bad3.pe.has_pipeline_regs = false;
  EXPECT_THROW(bad3.validate(), InvalidArgumentError);
}

TEST(Presets, CustomArchitectureRules) {
  const Architecture c = custom_architecture("X", 4, 4, 1, 1, 2);
  EXPECT_TRUE(c.pipelines_multiplier());
  EXPECT_EQ(c.sharing.total_units(c.array), 8);
  // Pipelining without sharing is outside the template.
  EXPECT_THROW(custom_architecture("Y", 4, 4, 0, 0, 2),
               InvalidArgumentError);
  // No sharing and no pipelining = base-style.
  EXPECT_FALSE(custom_architecture("Z", 4, 4, 0, 0, 1).shares_multiplier());
}

// ------------------------------------------------------------- bus switch
TEST(BusSwitch, SelectBitsGrowLogarithmically) {
  EXPECT_EQ(BusSwitchSpec{0}.select_bits(), 0);
  BusSwitchSpec one;
  one.reachable_units = 1;
  EXPECT_EQ(one.select_bits(), 1);
  BusSwitchSpec three;
  three.reachable_units = 3;
  EXPECT_EQ(three.select_bits(), 2);
  BusSwitchSpec four;
  four.reachable_units = 4;
  EXPECT_EQ(four.select_bits(), 3);
}

TEST(BusSwitch, DerivedFromPlan) {
  const ArraySpec a;
  const SharingPlan plan{Resource::kArrayMultiplier, 2, 2, 2};
  const BusSwitchSpec sw = make_bus_switch(plan, a.data_width_bits);
  EXPECT_EQ(sw.reachable_units, 4);
  EXPECT_EQ(sw.operand_width_bits, 16);
  EXPECT_GT(sw.wire_count(), 0);
}

// ----------------------------------------------------------- config cache
TEST(ConfigCache, StorageAndBounds) {
  const ArraySpec a;
  ConfigCache cache(a, 16);
  EXPECT_EQ(cache.context_length(), 16);
  cache.word({1, 2}, 3).opcode = 7;
  EXPECT_EQ(cache.word({1, 2}, 3).opcode, 7);
  EXPECT_THROW(cache.word({9, 0}, 0), InvalidArgumentError);
  EXPECT_THROW(cache.word({0, 0}, 16), InvalidArgumentError);
  EXPECT_THROW(ConfigCache(a, 0), InvalidArgumentError);
}

TEST(ConfigCache, TotalBitsScalesWithSwitchComplexity) {
  const ArraySpec a;
  ConfigCache cache(a, 8);
  const SharingPlan none{Resource::kArrayMultiplier, 0, 0, 1};
  const SharingPlan four{Resource::kArrayMultiplier, 2, 2, 2};
  EXPECT_LT(cache.total_bits(none), cache.total_bits(four));
  // 8×8 PEs × 8 words × word bits.
  EXPECT_EQ(cache.total_bits(none),
            64 * 8 * ConfigCache::word_bits(0));
}

}  // namespace
}  // namespace rsp::arch
