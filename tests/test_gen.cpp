// src/gen: the seeded random-kernel generator and the differential fuzzing
// harness. Suites prefixed Gen* — GenCatalogue and GenFuzz also run under
// the tsan preset (generated-name resolution is hit from concurrent Service
// dispatch threads).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "api/service.hpp"
#include "gen/fuzz.hpp"
#include "gen/generator.hpp"
#include "ir/builder.hpp"
#include "kernels/registry.hpp"
#include "util/error.hpp"

namespace rsp {
namespace {

// ------------------------------------------------------------ configuration
TEST(GenConfig, ValidatesEveryKnob) {
  gen::GeneratorConfig config;
  EXPECT_NO_THROW(config.validate());

  gen::GeneratorConfig bad = config;
  bad.min_body_ops = 0;
  EXPECT_THROW(bad.validate(), InvalidArgumentError);
  bad = config;
  bad.min_body_ops = 9;
  bad.max_body_ops = 8;
  EXPECT_THROW(bad.validate(), InvalidArgumentError);
  bad = config;
  bad.max_trips = 1 << 20;
  EXPECT_THROW(bad.validate(), InvalidArgumentError);
  bad = config;
  bad.min_rows = 0;
  EXPECT_THROW(bad.validate(), InvalidArgumentError);
  bad = config;
  bad.min_cols = 1;  // reductions need lanes x columns >= 2
  EXPECT_THROW(bad.validate(), InvalidArgumentError);
  bad = config;
  bad.mix = gen::OpMix{0, 0, 0, 0, 0, 0, 0};
  EXPECT_THROW(bad.validate(), InvalidArgumentError);
  bad = config;
  bad.mix.mult = -1;
  EXPECT_THROW(bad.validate(), InvalidArgumentError);
  bad = config;
  bad.reduction_probability = 1.5;
  EXPECT_THROW(bad.validate(), InvalidArgumentError);
  bad = config;
  bad.value_magnitude = 0;
  EXPECT_THROW(bad.validate(), InvalidArgumentError);
}

TEST(GenConfig, NameRoundTrip) {
  EXPECT_EQ(gen::gen_name(42), "gen:42");
  EXPECT_EQ(gen::parse_gen_name("gen:42"), 42u);
  EXPECT_EQ(gen::parse_gen_name("gen:0"), 0u);
  EXPECT_EQ(gen::parse_gen_name("gen:18446744073709551615"),
            ~std::uint64_t{0});
  EXPECT_FALSE(gen::parse_gen_name("gen:"));
  EXPECT_FALSE(gen::parse_gen_name("gen:abc"));
  EXPECT_FALSE(gen::parse_gen_name("gen:-1"));
  EXPECT_FALSE(gen::parse_gen_name("gen:1 "));
  EXPECT_FALSE(gen::parse_gen_name("gen:18446744073709551616"));  // overflow
  EXPECT_FALSE(gen::parse_gen_name("SAD"));
  EXPECT_FALSE(gen::parse_gen_name("generic"));
}

// ------------------------------------------------------------- determinism
TEST(GenDeterminism, SameSeedSameWorkload) {
  gen::GeneratorConfig config;
  config.seed = 7;
  const kernels::Workload a = gen::generate_workload(config);
  const kernels::Workload b = gen::generate_workload(config);
  EXPECT_EQ(a.name, "gen:7");
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.kernel.trip_count(), b.kernel.trip_count());
  ASSERT_EQ(a.kernel.body().size(), b.kernel.body().size());
  for (ir::NodeId id = 0; id < a.kernel.body().size(); ++id) {
    EXPECT_EQ(a.kernel.body().node(id).kind, b.kernel.body().node(id).kind);
    EXPECT_EQ(a.kernel.body().node(id).imm, b.kernel.body().node(id).imm);
  }
  EXPECT_EQ(a.hints.lanes, b.hints.lanes);
  EXPECT_EQ(a.hints.columns, b.hints.columns);
  EXPECT_EQ(a.hints.stagger, b.hints.stagger);
  EXPECT_EQ(a.hints.cycle_row_bands, b.hints.cycle_row_bands);
  EXPECT_EQ(a.reduction.scope, b.reduction.scope);

  ir::Memory ma, mb;
  a.setup(ma);
  b.setup(mb);
  EXPECT_TRUE(ma == mb);
  a.golden(ma);
  b.golden(mb);
  EXPECT_TRUE(ma == mb);
}

TEST(GenDeterminism, DifferentSeedsDiffer) {
  gen::GeneratorConfig config;
  config.seed = 1;
  const kernels::Workload a = gen::generate_workload(config);
  config.seed = 2;
  const kernels::Workload b = gen::generate_workload(config);
  ir::Memory ma, mb;
  a.setup(ma);
  b.setup(mb);
  a.golden(ma);
  b.golden(mb);
  EXPECT_FALSE(a.kernel.body().size() == b.kernel.body().size() &&
               a.kernel.trip_count() == b.kernel.trip_count() && ma == mb);
}

// --------------------------------------------- differential sweep (tentpole)
class GenSweep : public ::testing::TestWithParam<int> {};

TEST_P(GenSweep, DenseEventInterpreterAgreeOnEveryArchitecture) {
  gen::FuzzOptions options;
  options.full_suite = true;
  const gen::FuzzReport report = gen::fuzz_one(
      0x5EED0000ull + static_cast<std::uint64_t>(GetParam()), options);
  EXPECT_TRUE(report.ok) << report.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenSweep, ::testing::Range(0, 40));

// ----------------------------------------------------------- reference model
TEST(GenReference, GoldenClosureMatchesReferenceExecute) {
  gen::GeneratorConfig config;
  config.seed = 13;  // reduction kernel (see tests/data/gen_corpus notes)
  const kernels::Workload w = gen::generate_workload(config);
  ASSERT_TRUE(w.reduction.enabled());
  ir::Memory via_golden, via_reference;
  w.setup(via_golden);
  w.setup(via_reference);
  w.golden(via_golden);
  gen::reference_execute(w, via_reference, ir::DatapathMode::kExact);
  EXPECT_TRUE(via_golden == via_reference);
}

TEST(GenReference, PerRowReductionRejected) {
  ir::GraphBuilder b;
  const ir::NodeId load = b.load("in", [](std::int64_t k) { return k; });
  const ir::NodeId acc = b.accumulate(load, 0, 1);
  const ir::LoopKernel kernel("per-row", b.take(), 4);
  sched::ReductionSpec reduction;
  reduction.scope = sched::ReductionSpec::Scope::kPerRow;
  reduction.source = acc;
  reduction.array = "red";
  const ir::UnrolledGraph unrolled(kernel);
  ir::Memory memory;
  memory.set("in", {1, 2, 3, 4});
  memory.allocate("red", 4);
  EXPECT_THROW(gen::reference_run(kernel, reduction, unrolled, memory,
                                  ir::DatapathMode::kExact),
               InvalidArgumentError);
}

// ------------------------------------------------------ catalogue resolution
TEST(GenCatalogue, FindInCatalogueResolvesGenNames) {
  const kernels::Workload w = kernels::find_in_catalogue("gen:42");
  EXPECT_EQ(w.name, "gen:42");
  gen::GeneratorConfig config;
  config.seed = 42;
  EXPECT_EQ(w.kernel.body().size(),
            gen::generate_workload(config).kernel.body().size());
}

TEST(GenCatalogue, ConstRefOverloadReturnsStableReferences) {
  const std::vector<kernels::Workload> catalogue;
  const kernels::Workload& a = kernels::find_in_catalogue(catalogue, "gen:5");
  const kernels::Workload& b = kernels::find_in_catalogue(catalogue, "gen:5");
  EXPECT_EQ(&a, &b);  // one materialisation, process-wide cache
  EXPECT_EQ(a.name, "gen:5");
}

TEST(GenCatalogue, NotFoundListsCatalogueAndGenForm) {
  try {
    kernels::find_in_catalogue("no-such-kernel");
    FAIL() << "expected NotFoundError";
  } catch (const NotFoundError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Hydro"), std::string::npos) << what;
    EXPECT_NE(what.find("SAD"), std::string::npos) << what;
    EXPECT_NE(what.find("gen:<seed>"), std::string::npos) << what;
  }
}

TEST(GenCatalogue, FindWorkloadNotFoundListsPaperSuite) {
  try {
    kernels::find_workload("no-such-kernel");
    FAIL() << "expected NotFoundError";
  } catch (const NotFoundError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Hydro"), std::string::npos) << what;
    EXPECT_NE(what.find("2D-FDCT"), std::string::npos) << what;
    EXPECT_NE(what.find("gen:<seed>"), std::string::npos) << what;
  }
}

TEST(GenCatalogue, MalformedGenNamesAreNotFound) {
  for (const char* name : {"gen:", "gen:abc", "gen:-1", "gen:1x",
                           "gen:18446744073709551616"})
    EXPECT_THROW(kernels::find_in_catalogue(name), NotFoundError) << name;
}

TEST(GenCatalogue, ServiceServesGeneratedKernels) {
  api::ServiceOptions options;
  options.threads = 2;
  options.max_inflight = 2;
  const api::Service service(options);

  const api::EvalResponse eval = service.eval({"gen:9"});
  EXPECT_EQ(eval.kernel, "gen:9");
  EXPECT_EQ(eval.rows.size(), 9u);

  for (const sim::SimEngine engine :
       {sim::SimEngine::kDense, sim::SimEngine::kEvent}) {
    const api::SimulateResponse sim = service.simulate({"gen:9", "Base",
                                                        engine});
    EXPECT_TRUE(sim.matches_golden) << sim::engine_name(engine);
  }

  // Concurrent dispatch resolves the same gen name from several threads —
  // the registry cache must hand every thread the same stable workload.
  std::vector<std::future<util::Json>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(service.submit(api::SimulateRequest{
        "gen:11", "RS#2", sim::SimEngine::kEvent}));
  for (auto& f : futures) {
    const util::Json body = f.get();
    EXPECT_TRUE(body.at("ok").as_bool()) << body.dump();
  }
}

// -------------------------------------------------- wrap16 datapath coverage
TEST(GenWrap16, DivergenceDetectedAcrossSixteenGeneratedKernels) {
  // High-magnitude inputs force values past the 16-bit datapath; the exact
  // and wrap16 references must visibly diverge (not silently agree) on at
  // least 16 of these kernels while the simulators track the interpreter
  // under *both* modes (fuzz_one always checks kExact and kWrap16). The
  // window is deterministic: seeds 2000..2023 at magnitude 20000 yield 20
  // divergent kernels; the floor of 16 leaves room for generator drift.
  gen::FuzzOptions options;
  options.config.value_magnitude = 20000;
  int divergent = 0;
  for (std::uint64_t seed = 2000; seed < 2024; ++seed) {
    gen::GeneratorConfig config = options.config;
    config.seed = seed;
    const kernels::Workload w = gen::generate_workload(config);
    ir::Memory exact, wrapped;
    w.setup(exact);
    w.setup(wrapped);
    gen::reference_execute(w, exact, ir::DatapathMode::kExact);
    gen::reference_execute(w, wrapped, ir::DatapathMode::kWrap16);
    if (!(exact == wrapped)) ++divergent;

    const gen::FuzzReport report = gen::fuzz_one(seed, options);
    EXPECT_TRUE(report.ok) << report.detail;
  }
  EXPECT_GE(divergent, 16) << "wrap16 coverage collapsed: only " << divergent
                           << "/24 generated kernels diverge from exact";
}

// ------------------------------------------------------------------ harness
TEST(GenFuzz, RandomTrialsPass) {
  const gen::FuzzSummary summary = gen::fuzz_many(1000, 25);
  EXPECT_EQ(summary.trials, 25);
  for (const gen::FuzzReport& f : summary.failures) ADD_FAILURE() << f.detail;
}

TEST(GenFuzz, TrialSeedsAreSequentialAndReproducible) {
  std::vector<std::uint64_t> seeds;
  gen::fuzz_many(500, 5, {},
                 [&](const gen::FuzzReport& r) { seeds.push_back(r.seed); });
  ASSERT_EQ(seeds.size(), 5u);
  for (std::size_t i = 0; i < seeds.size(); ++i) EXPECT_EQ(seeds[i], 500 + i);
}

// The acceptance demonstration: a deliberately-injected simulator bug (the
// event engine's final memory corrupted by one element) must be caught.
TEST(GenFuzz, InjectedSimulatorBugIsCaught) {
  gen::FuzzOptions options;
  options.inject_event_bug = true;
  const gen::FuzzReport report = gen::fuzz_one(3, options);
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.detail.find("seed 3"), std::string::npos) << report.detail;
  EXPECT_NE(report.detail.find("final memories diverge"), std::string::npos)
      << report.detail;
}

TEST(GenFuzz, CorpusReplaysCleanOnFullSuite) {
  const std::vector<std::uint64_t> seeds =
      gen::load_corpus(std::string(RSP_TEST_DATA_DIR) + "/gen_corpus");
  ASSERT_FALSE(seeds.empty());
  gen::FuzzOptions options;
  options.full_suite = true;
  for (const std::uint64_t seed : seeds) {
    const gen::FuzzReport report = gen::fuzz_one(seed, options);
    EXPECT_TRUE(report.ok) << report.detail;
  }
}

TEST(GenFuzz, LoadCorpusParsesCommentsAndRejectsJunk) {
  const std::string path =
      ::testing::TempDir() + "/gen_corpus_parse_test.txt";
  {
    std::ofstream file(path);
    file << "# header comment\n\n  12  # trailing comment\n34\n";
  }
  EXPECT_EQ(gen::load_corpus(path), (std::vector<std::uint64_t>{12, 34}));
  {
    std::ofstream file(path);
    file << "12\nnot-a-seed\n";
  }
  EXPECT_THROW(gen::load_corpus(path), InvalidArgumentError);
  std::remove(path.c_str());
  EXPECT_THROW(gen::load_corpus("/nonexistent/gen_corpus"), NotFoundError);
}

TEST(GenFuzz, ServiceSmokePasses) {
  const gen::FuzzReport report = gen::service_smoke(9);
  EXPECT_TRUE(report.ok) << report.detail;
}

}  // namespace
}  // namespace rsp
