#include <gtest/gtest.h>

#include <set>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rsp {
namespace {

// ---------------------------------------------------------------- strings
TEST(Strings, FormatFixed) {
  EXPECT_EQ(util::format_fixed(26.85, 2), "26.85");
  EXPECT_EQ(util::format_fixed(26.0, 2), "26.00");
  EXPECT_EQ(util::format_fixed(-4.876, 2), "-4.88");
}

TEST(Strings, FormatTrimmed) {
  EXPECT_EQ(util::format_trimmed(26.0), "26");
  EXPECT_EQ(util::format_trimmed(26.85), "26.85");
  EXPECT_EQ(util::format_trimmed(26.50), "26.5");
  EXPECT_EQ(util::format_trimmed(-0.001, 2), "0");
  EXPECT_EQ(util::format_trimmed(0.0), "0");
}

TEST(Strings, JoinAndSplit) {
  EXPECT_EQ(util::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(util::join({}, ","), "");
  const auto parts = util::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, Padding) {
  EXPECT_EQ(util::pad_left("x", 3), "  x");
  EXPECT_EQ(util::pad_right("x", 3), "x  ");
  EXPECT_EQ(util::pad_left("xyz", 2), "xyz");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(util::starts_with("RSP#1", "RSP"));
  EXPECT_FALSE(util::starts_with("RS", "RSP"));
}

// ------------------------------------------------------------------ table
TEST(Table, RendersAlignedGrid) {
  util::Table t({"Arch", "Area"});
  t.add_row({"Base", "55739"});
  t.add_row({"RS#1", "32446"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| Base | 55739 |"), std::string::npos);
  EXPECT_NE(s.find("| RS#1 | 32446 |"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgumentError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(util::Table({}), InvalidArgumentError);
}

TEST(Table, TitleAndSeparator) {
  util::Table t({"x"});
  t.set_title("My title");
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.render();
  EXPECT_EQ(s.rfind("My title", 0), 0u);
}

// -------------------------------------------------------------------- csv
TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(util::csv_escape("plain"), "plain");
  EXPECT_EQ(util::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(util::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, RendersRows) {
  util::CsvWriter csv({"k", "v"});
  csv.add_row({"x", "1"});
  EXPECT_EQ(csv.render(), "k,v\nx,1\n");
  EXPECT_THROW(csv.add_row({"too", "many", "cells"}), InvalidArgumentError);
}

// -------------------------------------------------------------------- rng
TEST(Rng, DeterministicAcrossInstances) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformStaysInRange) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 4);
}

// ------------------------------------------------------------------ error
TEST(Error, AssertThrowsInternalError) {
  EXPECT_THROW([] { RSP_ASSERT(1 == 2); }(), InternalError);
  EXPECT_NO_THROW([] { RSP_ASSERT(2 == 2); }());
}

TEST(Error, HierarchyIsCatchable) {
  try {
    throw InfeasibleError("too big");
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("too big"), std::string::npos);
  }
}

// ---------------------------------------------------------------- logging
TEST(Logging, SinkReceivesAboveThreshold) {
  std::vector<std::string> seen;
  auto prev = util::set_log_sink(
      [&](util::LogLevel, const std::string& m) { seen.push_back(m); });
  util::set_log_threshold(util::LogLevel::kInfo);
  RSP_LOG(kDebug) << "hidden";
  RSP_LOG(kInfo) << "visible " << 42;
  util::set_log_sink(prev);
  util::set_log_threshold(util::LogLevel::kWarning);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "visible 42");
}

// ------------------------------------------------------------------- hash
TEST(Hash, Fnv1aMatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(util::fnv1a(""), 14695981039346656037ull);
  EXPECT_EQ(util::fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(util::fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Hash, StableAcrossCallsAndSensitiveToInput) {
  EXPECT_EQ(util::fnv1a("SAD|8x8"), util::fnv1a("SAD|8x8"));
  EXPECT_NE(util::fnv1a("SAD|8x8"), util::fnv1a("SAD|8x9"));
  EXPECT_NE(util::mix64(1), util::mix64(2));
}

TEST(Hash, Mix64SpreadsConsecutiveInputsAcrossBuckets) {
  // The shard-selection role: consecutive inputs must not cluster.
  std::set<std::uint64_t> buckets;
  for (std::uint64_t i = 0; i < 16; ++i)
    buckets.insert(util::mix64(i) % 16);
  EXPECT_GE(buckets.size(), 8u);
}

// ---------------------------------------------------------------- retry
TEST(Retry, ValidateNamesTheOffendingFieldWithThePrefix) {
  util::RetryPolicy p;
  p.attempts = 0;
  try {
    p.validate("'redispatch'");
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_EQ(std::string(e.what()),
              "'redispatch': 'attempts' must be positive");
  }
  p = {};
  p.backoff_ms = -1;
  EXPECT_THROW(p.validate("'probe'"), InvalidArgumentError);
  p = {};
  p.max_backoff_ms = -1;
  EXPECT_THROW(p.validate("'probe'"), InvalidArgumentError);
  p = {};
  p.backoff_ms = 0;  // disabled backoff is a valid policy
  EXPECT_NO_THROW(p.validate("'connect'"));
}

TEST(Retry, ShouldRetryCountsTheFirstAttemptInTheBudget) {
  util::RetryPolicy once{1, 25};
  EXPECT_TRUE(once.should_retry(0));
  EXPECT_FALSE(once.should_retry(1));
  util::RetryPolicy three{3, 25};
  EXPECT_TRUE(three.should_retry(2));
  EXPECT_FALSE(three.should_retry(3));
}

TEST(Retry, LinearDelayGrowsByTheBaseEachRetry) {
  util::RetryPolicy p{5, 10};
  EXPECT_EQ(p.delay_ms(0), 0);  // nothing failed yet
  EXPECT_EQ(p.delay_ms(1), 10);
  EXPECT_EQ(p.delay_ms(3), 30);
  p.max_backoff_ms = 25;
  EXPECT_EQ(p.delay_ms(3), 25);  // capped
  p.backoff_ms = 0;
  EXPECT_EQ(p.delay_ms(3), 0);  // backoff disabled
}

TEST(Retry, ExponentialDelayDoublesAndHitsTheCap) {
  util::RetryPolicy p{8, 10, util::RetryPolicy::Backoff::kExponential, 2000};
  EXPECT_EQ(p.delay_ms(1), 10);
  EXPECT_EQ(p.delay_ms(2), 20);
  EXPECT_EQ(p.delay_ms(5), 160);
  EXPECT_EQ(p.delay_ms(20), 2000);  // cap, not 10 << 19
  // Huge attempt counts must not overflow the shift.
  EXPECT_EQ(p.delay_ms(1000), 2000);
}

TEST(Retry, GiveUpMessageNamesOperationBudgetAndLastError) {
  util::RetryPolicy one{1, 0};
  EXPECT_EQ(one.give_up("health probe of worker 'w0'", "timed out"),
            "health probe of worker 'w0' gave up after 1 attempt: timed out");
  util::RetryPolicy three{3, 0};
  EXPECT_EQ(three.give_up("shard [0, 8)", "connection reset"),
            "shard [0, 8) gave up after 3 attempts: connection reset");
}

// ---------------------------------------------------------------- fault
TEST(Fault, ParsesEveryActionAndCanonicalizes) {
  const auto plan = util::FaultPlan::parse(
      "at=2:drop,at=3:delay=40,at=4:truncate,at=5:garbage,at=6:refuse");
  EXPECT_EQ(plan.size(), 5u);
  EXPECT_EQ(plan.spec(),
            "at=2:drop,at=3:delay=40,at=4:truncate,at=5:garbage,at=6:refuse");
  EXPECT_TRUE(util::FaultPlan().empty());
  EXPECT_FALSE(plan.empty());
}

TEST(Fault, SpecRoundTripsThroughParse) {
  const std::string spec = "at=1:refuse,at=7:delay=60000,at=9:drop";
  const auto plan = util::FaultPlan::parse(spec);
  EXPECT_EQ(util::FaultPlan::parse(plan.spec()).spec(), plan.spec());
  EXPECT_EQ(plan.spec(), spec);
  // Delays beyond the 60s cap are clamped, not rejected.
  EXPECT_EQ(util::FaultPlan::parse("at=2:delay=999999").spec(),
            "at=2:delay=60000");
}

TEST(Fault, SeededExpansionIsDeterministicAndRecoverable) {
  const auto a = util::FaultPlan::parse("seed=7:count=3");
  const auto b = util::FaultPlan::parse("seed=7:count=3");
  EXPECT_EQ(a.spec(), b.spec());
  EXPECT_EQ(a.size(), 3u);
  // Seeded rules never refuse (fatal in-band path) and never hit the
  // handshake ordinal 1 — they must stay recoverable chaos.
  EXPECT_EQ(a.spec().find("refuse"), std::string::npos);
  EXPECT_EQ(a.spec().find("at=1:"), std::string::npos);
  EXPECT_NE(a.spec(), util::FaultPlan::parse("seed=8:count=3").spec());
  EXPECT_EQ(util::FaultPlan::parse("seed=7").size(), 1u);
}

TEST(Fault, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(util::FaultPlan::parse(""), InvalidArgumentError);
  EXPECT_THROW(util::FaultPlan::parse("at=2:drop,"), InvalidArgumentError);
  EXPECT_THROW(util::FaultPlan::parse("at=0:drop"), InvalidArgumentError);
  EXPECT_THROW(util::FaultPlan::parse("at=x:drop"), InvalidArgumentError);
  EXPECT_THROW(util::FaultPlan::parse("at=2:explode"), InvalidArgumentError);
  EXPECT_THROW(util::FaultPlan::parse("at=2:delay="), InvalidArgumentError);
  EXPECT_THROW(util::FaultPlan::parse("seed=5:count=33"),
               InvalidArgumentError);
  EXPECT_THROW(util::FaultPlan::parse("seed="), InvalidArgumentError);
  EXPECT_THROW(util::FaultPlan::parse("banana"), InvalidArgumentError);
  try {
    util::FaultPlan::parse("at=2:explode");
  } catch (const InvalidArgumentError& e) {
    EXPECT_EQ(std::string(e.what()),
              "fault plan rule 'at=2:explode': unknown action 'explode' "
              "(drop, delay=MS, truncate, garbage, refuse)");
  }
}

TEST(Fault, InjectorFiresEachRuleOnceAtItsExactOrdinal) {
  util::FaultInjector injector(
      util::FaultPlan::parse("at=2:drop,at=4:delay=7"));
  using Kind = util::FaultAction::Kind;
  EXPECT_EQ(injector.on_message().kind, Kind::kNone);  // ordinal 1
  EXPECT_EQ(injector.on_message().kind, Kind::kDrop);  // ordinal 2
  EXPECT_EQ(injector.on_message().kind, Kind::kNone);  // ordinal 3
  const auto delayed = injector.on_message();          // ordinal 4
  EXPECT_EQ(delayed.kind, Kind::kDelay);
  EXPECT_EQ(delayed.delay_ms, 7);
  EXPECT_EQ(injector.on_message().kind, Kind::kNone);  // ordinal 5
  EXPECT_EQ(injector.messages(), 5);
  EXPECT_EQ(injector.fired(), 2);
}

TEST(Fault, InjectorWithAnEmptyPlanNeverFires) {
  util::FaultInjector injector{util::FaultPlan{}};
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(injector.on_message().kind, util::FaultAction::Kind::kNone);
  EXPECT_EQ(injector.messages(), 10);
  EXPECT_EQ(injector.fired(), 0);
}

}  // namespace
}  // namespace rsp
