#include <gtest/gtest.h>

#include <cmath>

#include "arch/presets.hpp"
#include "synth/paper_reference.hpp"
#include "synth/synthesis.hpp"
#include "util/error.hpp"

namespace rsp::synth {
namespace {

// -------------------------------------------------------------- components
TEST(Components, Table1Values) {
  const ComponentLibrary lib;
  EXPECT_EQ(lib.base_pe().area_slices, 910);
  EXPECT_EQ(lib.base_pe().delay_ns, 25.6);
  EXPECT_EQ(lib.component(arch::Resource::kAlu).area_slices, 253);
  EXPECT_EQ(lib.component(arch::Resource::kArrayMultiplier).delay_ns, 19.7);
  EXPECT_EQ(lib.component(arch::Resource::kShiftLogic).area_slices, 156);
  EXPECT_EQ(lib.component(arch::Resource::kMultiplexer).delay_ns, 1.3);
}

TEST(Components, SharedPePathIsMuxAluShift) {
  const ComponentLibrary lib;
  const double expected =
      lib.component(arch::Resource::kMultiplexer).delay_ns +
      lib.component(arch::Resource::kAlu).delay_ns +
      lib.component(arch::Resource::kShiftLogic).delay_ns;
  EXPECT_DOUBLE_EQ(lib.shared_pe().delay_ns, expected);  // 15.3 ns
}

TEST(Components, BusSwitchMeasuredPoints) {
  const ComponentLibrary lib;
  EXPECT_EQ(lib.bus_switch(1).area_slices, 10);
  EXPECT_EQ(lib.bus_switch(2).area_slices, 34);
  EXPECT_EQ(lib.bus_switch(3).area_slices, 55);
  EXPECT_EQ(lib.bus_switch(4).area_slices, 68);
  EXPECT_EQ(lib.bus_switch(4).delay_ns, 2.0);
  EXPECT_EQ(lib.bus_switch(0).area_slices, 0);
  // Extrapolation is monotone.
  EXPECT_GT(lib.bus_switch(6).area_slices, lib.bus_switch(4).area_slices);
  EXPECT_GT(lib.bus_switch(6).delay_ns, lib.bus_switch(4).delay_ns);
}

TEST(Components, WireLoadMonotoneInUnits) {
  const ComponentLibrary lib;
  double prev = 0.0;
  for (int units : {4, 8, 12, 16, 24, 32, 40}) {
    const double rs = lib.wire_load_ns(units, false);
    EXPECT_GE(rs, prev);
    prev = rs;
  }
  EXPECT_EQ(lib.wire_load_ns(0, false), 0.0);
}

TEST(Components, BusSwitchCostViaComponentThrows) {
  const ComponentLibrary lib;
  EXPECT_THROW(lib.component(arch::Resource::kBusSwitch),
               InvalidArgumentError);
}

// ------------------------------------------------------------- area model
class AreaVsPaper : public ::testing::TestWithParam<paper::SynthesisRow> {};

TEST_P(AreaVsPaper, Within2PercentOfTable2) {
  const paper::SynthesisRow row = GetParam();
  const AreaModel model;
  arch::Architecture a = arch::base_architecture();
  if (row.arch != "Base") {
    const int variant = row.arch.back() - '0';
    a = row.arch[1] == 'S' && row.arch[2] == 'P'
            ? arch::rsp_architecture(variant)
            : arch::rs_architecture(variant);
  }
  const double measured = model.synthesized(a);
  EXPECT_NEAR(measured, row.array_area, 0.02 * row.array_area)
      << a.name << ": measured " << measured << " vs paper "
      << row.array_area;
}

INSTANTIATE_TEST_SUITE_P(Table2, AreaVsPaper,
                         ::testing::ValuesIn(paper::table2()),
                         [](const auto& info) {
                           std::string n = info.param.arch;
                           for (char& c : n)
                             if (c == '#') c = '_';
                           return n;
                         });

TEST(AreaModel, Equation2ConstraintHoldsForAllPaperDesigns) {
  const AreaModel model;
  for (const arch::Architecture& a : arch::standard_suite()) {
    if (!a.shares_multiplier()) continue;
    EXPECT_TRUE(model.satisfies_cost_constraint(a)) << a.name;
  }
}

TEST(AreaModel, MoreUnitsMoreArea) {
  const AreaModel model;
  double prev = 0.0;
  for (int v = 1; v <= 4; ++v) {
    const double area = model.synthesized(arch::rs_architecture(v));
    EXPECT_GT(area, prev);
    prev = area;
  }
  // RSP adds pipeline registers on top of RS.
  for (int v = 1; v <= 4; ++v)
    EXPECT_GT(model.synthesized(arch::rsp_architecture(v)),
              model.synthesized(arch::rs_architecture(v)));
}

TEST(AreaModel, ReductionPercentSignsMatchPaper) {
  const AreaModel model;
  for (const arch::Architecture& a : arch::standard_suite()) {
    if (!a.shares_multiplier()) continue;
    EXPECT_GT(model.reduction_percent(a), 0.0) << a.name;  // always smaller
  }
}

// ------------------------------------------------------------ clock model
class ClockVsPaper : public ::testing::TestWithParam<paper::SynthesisRow> {};

TEST_P(ClockVsPaper, MatchesTable2Within50ps) {
  const paper::SynthesisRow row = GetParam();
  const ClockModel model;
  arch::Architecture a = arch::base_architecture();
  if (row.arch != "Base") {
    const int variant = row.arch.back() - '0';
    a = row.arch[2] == 'P' ? arch::rsp_architecture(variant)
                           : arch::rs_architecture(variant);
  }
  EXPECT_NEAR(model.clock_ns(a), row.clock, 0.05) << a.name;
}

INSTANTIATE_TEST_SUITE_P(Table2, ClockVsPaper,
                         ::testing::ValuesIn(paper::table2()),
                         [](const auto& info) {
                           std::string n = info.param.arch;
                           for (char& c : n)
                             if (c == '#') c = '_';
                           return n;
                         });

TEST(ClockModel, RsSlowerRspFasterThanBase) {
  const ClockModel model;
  const double base = model.clock_ns(arch::base_architecture());
  for (int v = 1; v <= 4; ++v) {
    EXPECT_GT(model.clock_ns(arch::rs_architecture(v)), base) << "RS#" << v;
    EXPECT_LT(model.clock_ns(arch::rsp_architecture(v)), base) << "RSP#" << v;
  }
}

TEST(ClockModel, StageSweepSaturatesAtPrimitivePath) {
  // Beyond 2 stages the mux+ALU+shift path (15.3 ns) dominates: deeper
  // pipelining buys nothing — the reason the paper stops at 2 stages.
  const ClockModel model;
  const double two = model.clock_ns(arch::rsp_architecture(1, 8, 8, 2));
  const double three = model.clock_ns(arch::rsp_architecture(1, 8, 8, 3));
  const double four = model.clock_ns(arch::rsp_architecture(1, 8, 8, 4));
  EXPECT_DOUBLE_EQ(two, three);
  EXPECT_DOUBLE_EQ(three, four);
}

TEST(ClockModel, MultStageShrinksWithStages) {
  const ClockModel model;
  EXPECT_DOUBLE_EQ(model.mult_stage_ns(1), 19.7);
  EXPECT_NEAR(model.mult_stage_ns(2), 19.7 / 2 + 0.5, 1e-9);
  EXPECT_LT(model.mult_stage_ns(4), model.mult_stage_ns(2));
  EXPECT_THROW(model.mult_stage_ns(0), InvalidArgumentError);
}

// -------------------------------------------------------- synthesis model
TEST(SynthesisModel, ReportFieldsConsistent) {
  const SynthesisModel model;
  const SynthesisReport base = model.report(arch::base_architecture());
  EXPECT_EQ(base.arch_name, "Base");
  EXPECT_EQ(base.switch_area, 0.0);
  EXPECT_EQ(base.area_reduction, 0.0);
  EXPECT_EQ(base.delay_reduction, 0.0);

  const SynthesisReport rsp2 = model.report(arch::rsp_architecture(2));
  EXPECT_EQ(rsp2.pe_area, 489);
  EXPECT_EQ(rsp2.switch_area, 34);
  EXPECT_NEAR(rsp2.pe_delay, 15.3, 1e-9);
  EXPECT_GT(rsp2.delay_reduction, 30.0);
}

TEST(SynthesisModel, SuiteReportCoversAllNine) {
  const SynthesisModel model;
  const auto reports = model.report_suite(arch::standard_suite());
  ASSERT_EQ(reports.size(), 9u);
  EXPECT_EQ(reports.front().arch_name, "Base");
  EXPECT_EQ(reports.back().arch_name, "RSP#4");
}

// --------------------------------------------------------- paper reference
TEST(PaperReference, LookupAndShape) {
  EXPECT_EQ(paper::table1().size(), 5u);
  EXPECT_EQ(paper::table2().size(), 9u);
  EXPECT_EQ(paper::table2_row("RSP#2").clock, 17.26);
  EXPECT_THROW(paper::table2_row("XX"), NotFoundError);
  EXPECT_EQ(paper::table4().size(), 5u);
  EXPECT_EQ(paper::table5().size(), 4u);
  for (const auto& rec : paper::table4()) ASSERT_EQ(rec.cells.size(), 9u);
  for (const auto& rec : paper::table5()) ASSERT_EQ(rec.cells.size(), 9u);
  EXPECT_EQ(paper::kernel_record("SAD").cells[5].delay_reduction_percent,
            35.7);
  EXPECT_THROW(paper::kernel_record("nope"), NotFoundError);
  EXPECT_EQ(paper::table3().size(), 9u);
}

TEST(PaperReference, EtEqualsCyclesTimesClockInPaperData) {
  // Internal consistency of the transcribed tables: every ET cell equals
  // cycles × the Table 2 clock of its architecture. Tolerance 0.35 ns: the
  // paper's own State/RSP#2 cell is printed as 396.68 although
  // 23 × 17.26 = 396.98 (rounding in the original).
  const char* arch_names[] = {"Base",  "RS#1",  "RS#2",  "RS#3", "RS#4",
                              "RSP#1", "RSP#2", "RSP#3", "RSP#4"};
  auto check = [&](const paper::KernelRecord& rec) {
    for (int i = 0; i < 9; ++i) {
      const double clock = paper::table2_row(arch_names[i]).clock;
      const auto& cell = rec.cells[static_cast<std::size_t>(i)];
      EXPECT_NEAR(cell.execution_time_ns, cell.cycles * clock, 0.35)
          << rec.kernel << " on " << arch_names[i];
    }
  };
  for (const auto& rec : paper::table4()) check(rec);
  for (const auto& rec : paper::table5()) check(rec);
}

}  // namespace
}  // namespace rsp::synth
