#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/interp.hpp"
#include "ir/unroll.hpp"
#include "util/error.hpp"

namespace rsp::ir {
namespace {

LoopKernel axpy_kernel(std::int64_t n) {
  GraphBuilder b;
  auto a = b.constant(3, "a");
  auto x = b.load("x", [](std::int64_t k) { return k; });
  auto m = b.mult(a, x);
  auto y = b.load("y", [](std::int64_t k) { return k; });
  auto s = b.add(m, y);
  b.store("out", [](std::int64_t k) { return k; }, s);
  return LoopKernel("axpy", b.take(), n);
}

// ----------------------------------------------------------------- unroll
TEST(Unroll, SizeAndIndexing) {
  const LoopKernel k = axpy_kernel(5);
  const UnrolledGraph u(k);
  EXPECT_EQ(u.size(), 5 * k.body().size());
  EXPECT_EQ(u.body_size(), k.body().size());
  const OpId id = u.id_of(2, 3);
  EXPECT_EQ(u.op(id).body_node, 2);
  EXPECT_EQ(u.op(id).iter, 3);
  EXPECT_THROW(u.id_of(99, 0), NotFoundError);
  EXPECT_THROW(u.op(-1), NotFoundError);
}

TEST(Unroll, AddressesAreConcrete) {
  GraphBuilder b;
  auto x = b.load("x", [](std::int64_t k) { return 2 * k + 1; });
  b.store("y", [](std::int64_t k) { return k; }, x);
  const LoopKernel k("strided", b.take(), 4);
  const UnrolledGraph u(k);
  EXPECT_EQ(u.op(u.id_of(0, 0)).address, 1);
  EXPECT_EQ(u.op(u.id_of(0, 3)).address, 7);
}

TEST(Unroll, RejectsNegativeAddress) {
  GraphBuilder b;
  auto x = b.load("x", [](std::int64_t k) { return k - 1; });
  b.store("y", [](std::int64_t k) { return k; }, x);
  const LoopKernel k("neg", b.take(), 2);
  EXPECT_THROW(UnrolledGraph{k}, InvalidArgumentError);
}

TEST(Unroll, CarriedInputResolvesAcrossIterations) {
  GraphBuilder b;
  auto x = b.load("x", [](std::int64_t k) { return k; });
  auto acc = b.accumulate(x, 100, 2);
  b.store("o", [](std::int64_t k) { return k; }, acc);
  const LoopKernel k("acc2", b.take(), 5);
  const UnrolledGraph u(k);
  // Iterations 0 and 1: boundary → immediate init 100.
  EXPECT_TRUE(u.op(u.id_of(acc, 0)).operands[1].is_imm());
  EXPECT_EQ(u.op(u.id_of(acc, 1)).operands[1].imm, 100);
  // Iteration 3 reads the accumulator of iteration 1.
  EXPECT_EQ(u.op(u.id_of(acc, 3)).operands[1].op, u.id_of(acc, 1));
}

TEST(Unroll, TopologicalOrderInvariant) {
  const UnrolledGraph u(axpy_kernel(7));
  for (OpId i = 0; i < u.size(); ++i) {
    for (const ConcreteOperand& o : u.op(i).operands) {
      if (!o.is_imm()) {
        EXPECT_LT(o.op, i);
      }
    }
  }
}

// Memory dependences: load-after-store, store-after-store, store-after-load.
TEST(Unroll, MemoryDependencesTracked) {
  GraphBuilder b;
  auto x = b.load("buf", [](std::int64_t k) { return k; });       // RAW source
  b.store("buf", [](std::int64_t k) { return k + 1; }, x);        // writes next
  const LoopKernel k("chain", b.take(), 3);
  const UnrolledGraph u(k);
  // Iteration 1's load of buf[1] must depend on iteration 0's store to buf[1].
  const ConcreteOp& load1 = u.op(u.id_of(0, 1));
  ASSERT_EQ(load1.mem_deps.size(), 1u);
  EXPECT_EQ(load1.mem_deps[0], u.id_of(1, 0));
  // Iteration 0's load of buf[0] has no prior store.
  EXPECT_TRUE(u.op(u.id_of(0, 0)).mem_deps.empty());
}

TEST(Unroll, WarDependenceOnStore) {
  GraphBuilder b;
  auto x = b.load("buf", [](std::int64_t) { return 0; });
  b.store("buf", [](std::int64_t) { return 0; }, x);
  const LoopKernel k("war", b.take(), 2);
  const UnrolledGraph u(k);
  // Iteration 0's store to buf[0] must wait for iteration 0's load (WAR).
  const ConcreteOp& st0 = u.op(u.id_of(1, 0));
  ASSERT_EQ(st0.mem_deps.size(), 1u);
  EXPECT_EQ(st0.mem_deps[0], u.id_of(0, 0));
  // Iteration 1's store has WAW on store 0 and WAR on load 1.
  const ConcreteOp& st1 = u.op(u.id_of(1, 1));
  EXPECT_EQ(st1.mem_deps.size(), 2u);
}

// ----------------------------------------------------------------- memory
TEST(Memory, BoundsAndNames) {
  Memory m;
  m.allocate("x", 4);
  EXPECT_TRUE(m.has("x"));
  EXPECT_FALSE(m.has("y"));
  EXPECT_THROW(m.read("y", 0), NotFoundError);
  EXPECT_THROW(m.read("x", 4), InvalidArgumentError);
  EXPECT_THROW(m.write("x", -1, 0), InvalidArgumentError);
  m.write("x", 2, 9);
  EXPECT_EQ(m.read("x", 2), 9);
  EXPECT_EQ(m.names(), std::vector<std::string>{"x"});
}

TEST(Memory, EqualityComparesContents) {
  Memory a, b;
  a.set("x", {1, 2});
  b.set("x", {1, 2});
  EXPECT_TRUE(a == b);
  b.write("x", 0, 5);
  EXPECT_FALSE(a == b);
}

// ----------------------------------------------------------------- interp
TEST(Interp, EvalOpSemantics) {
  using enum OpKind;
  const auto mode = DatapathMode::kExact;
  EXPECT_EQ(eval_op(kAdd, 3, 4, 0, mode), 7);
  EXPECT_EQ(eval_op(kSub, 3, 4, 0, mode), -1);
  EXPECT_EQ(eval_op(kMult, -3, 4, 0, mode), -12);
  EXPECT_EQ(eval_op(kAbs, -9, 0, 0, mode), 9);
  EXPECT_EQ(eval_op(kShift, 3, 0, 2, mode), 12);
  EXPECT_EQ(eval_op(kShift, -12, 0, -2, mode), -3);
  EXPECT_EQ(eval_op(kRoute, 5, 0, 0, mode), 5);
  EXPECT_EQ(eval_op(kConst, 0, 0, 77, mode), 77);
  EXPECT_THROW(eval_op(kLoad, 0, 0, 0, mode), InvalidArgumentError);
}

TEST(Interp, Wrap16Mode) {
  using enum OpKind;
  const auto mode = DatapathMode::kWrap16;
  EXPECT_EQ(eval_op(kAdd, 0x7fff, 1, 0, mode), -32768);  // 16-bit wraparound
  // Multiplier keeps the full 2n-bit product (paper Fig. 4: 2n-bit output).
  EXPECT_EQ(eval_op(kMult, 0x4000, 4, 0, mode), 0x10000);
}

TEST(Interp, ComputesAxpy) {
  const LoopKernel k = axpy_kernel(4);
  const UnrolledGraph u(k);
  Memory m;
  m.set("x", {1, 2, 3, 4});
  m.set("y", {10, 20, 30, 40});
  m.allocate("out", 4);
  const InterpResult r = interpret(u, m);
  EXPECT_EQ(m.array("out"), (std::vector<std::int64_t>{13, 26, 39, 52}));
  EXPECT_EQ(r.loads, 8);
  EXPECT_EQ(r.stores, 4);
}

TEST(Interp, AccumulatorSemantics) {
  GraphBuilder b;
  auto x = b.load("x", [](std::int64_t k) { return k; });
  auto acc = b.accumulate(x, 0, 1);
  b.store("o", [](std::int64_t) { return 0; }, acc);
  const LoopKernel k("sum", b.take(), 4);
  Memory m;
  m.set("x", {1, 2, 3, 4});
  m.allocate("o", 1);
  interpret(UnrolledGraph(k), m);
  EXPECT_EQ(m.read("o", 0), 10);
}

}  // namespace
}  // namespace rsp::ir
