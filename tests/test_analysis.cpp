// Static verification layer (src/analysis): the schedule/program linter.
//
// The load-bearing contract is one-source-of-truth: for every error-class
// rule, the linter's diagnostic message must be byte-identical to the
// exception the simulator throws on the same context — because both run
// the same analysis::validation_pass / structural_pass. Each rule class in
// docs/ANALYSIS.md gets a test asserting its stable id, its locus, and
// (for error rules) that message-for-message agreement; the whole kernel
// catalogue is pinned lint-clean and the fuzz corpus warning-profile is
// golden-tested.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/context_json.hpp"
#include "analysis/verifier.hpp"
#include "api/protocol.hpp"
#include "api/service.hpp"
#include "arch/presets.hpp"
#include "gen/fuzz.hpp"
#include "gen/generator.hpp"
#include "kernels/registry.hpp"
#include "sched/mapper.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"
#include "util/error.hpp"

namespace rsp {
namespace {

using analysis::Diagnostic;
using analysis::LintReport;
using analysis::Severity;

/// First diagnostic of `rule`, or nullptr.
const Diagnostic* find_rule(const LintReport& report,
                            const std::string& rule) {
  for (const Diagnostic& d : report.diagnostics)
    if (d.rule == rule) return &d;
  return nullptr;
}

sched::ConfigurationContext schedule_workload(const kernels::Workload& w,
                                              const arch::Architecture& a) {
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram program =
      mapper.map(w.kernel, w.hints, w.reduction);
  return sched::ContextScheduler().schedule(program, a);
}

/// The exception message `sim::Machine::run` raises on `ctx` — the text
/// every validation-class diagnostic must reproduce byte-for-byte.
std::string run_error(const sched::ConfigurationContext& ctx) {
  ir::Memory mem;
  try {
    sim::Machine().run(ctx, mem);
  } catch (const std::exception& e) {
    return e.what();
  }
  ADD_FAILURE() << "simulator accepted a context the linter rejects";
  return "";
}

/// Ditto for structural-class rules: `sim::SimProgram::compile`'s message.
std::string compile_error(const sched::ConfigurationContext& ctx) {
  try {
    sim::SimProgram::compile(ctx);
  } catch (const std::exception& e) {
    return e.what();
  }
  ADD_FAILURE() << "compile accepted a context the linter rejects";
  return "";
}

// ------------------------------------------------- validation rules (V)

TEST(LintValidation, V001NegativeCycleMatchesConstructorMessage) {
  std::vector<sched::ScheduledOp> ops(2);
  ops[0].kind = ir::OpKind::kConst;
  ops[1].kind = ir::OpKind::kConst;
  ops[1].pe = {0, 1};
  ops[1].cycle = -3;

  std::string constructor_message;
  try {
    sched::ConfigurationContext ctx(arch::base_architecture(), ops);
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    constructor_message = e.what();
  }

  const LintReport report =
      analysis::lint_schedule(arch::base_architecture(), ops);
  const Diagnostic* d = find_rule(report, "RSP-V001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->locus.op, 1);
  EXPECT_EQ(d->locus.cycle, -3);
  EXPECT_EQ(d->message, constructor_message);
  EXPECT_FALSE(d->hint.empty());
  EXPECT_FALSE(report.clean());
}

TEST(LintValidation, V002NonPositiveLatencyMatchesConstructorMessage) {
  std::vector<sched::ScheduledOp> ops(1);
  ops[0].kind = ir::OpKind::kConst;
  ops[0].latency = 0;

  std::string constructor_message;
  try {
    sched::ConfigurationContext ctx(arch::base_architecture(), ops);
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    constructor_message = e.what();
  }

  const LintReport report =
      analysis::lint_schedule(arch::base_architecture(), ops);
  const Diagnostic* d = find_rule(report, "RSP-V002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->locus.op, 0);
  EXPECT_EQ(d->message, constructor_message);
}

TEST(LintValidation, V003PeOutsideArrayMatchesSimulatorMessage) {
  std::vector<sched::ScheduledOp> ops(1);
  ops[0].kind = ir::OpKind::kConst;
  ops[0].pe = {9, 9};  // 8x8 array
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);

  const LintReport report = analysis::lint_context(ctx);
  const Diagnostic* d = find_rule(report, "RSP-V003");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->locus.op, 0);
  EXPECT_EQ(d->locus.pe_row, 9);
  EXPECT_EQ(d->locus.pe_col, 9);
  EXPECT_EQ(d->message, run_error(ctx));
  EXPECT_THROW(analysis::verify_context(ctx), InvalidArgumentError);
}

TEST(LintValidation, V004ProducerOutOfRangeMatchesSimulatorMessage) {
  std::vector<sched::ScheduledOp> ops(2);
  ops[0].kind = ir::OpKind::kConst;
  ops[1].kind = ir::OpKind::kAbs;
  ops[1].pe = {0, 1};
  ops[1].cycle = 1;
  ops[1].operands = {sched::ProgOperand{5, 0}};  // only ops 0..1 exist
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);

  const LintReport report = analysis::lint_context(ctx);
  const Diagnostic* d = find_rule(report, "RSP-V004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->locus.op, 1);
  EXPECT_EQ(d->locus.cycle, 1);
  EXPECT_EQ(d->message, run_error(ctx));
}

TEST(LintValidation, V005StoreWithoutValueMatchesSimulatorMessage) {
  std::vector<sched::ScheduledOp> ops(1);
  ops[0].kind = ir::OpKind::kStore;
  ops[0].array = "x";
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);

  const LintReport report = analysis::lint_context(ctx);
  const Diagnostic* d = find_rule(report, "RSP-V005");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->locus.op, 0);
  EXPECT_EQ(d->message, run_error(ctx));
}

TEST(LintValidation, V006UnitOutsidePoolsMatchesSimulatorMessage) {
  const arch::Architecture a = arch::rsp_architecture(1);  // 1 unit per row
  std::vector<sched::ScheduledOp> ops(1);
  ops[0].kind = ir::OpKind::kMult;
  ops[0].latency = a.mult_latency();
  ops[0].operands = {sched::ProgOperand{}, sched::ProgOperand{}};
  ops[0].unit = arch::SharedUnitId{arch::SharedUnitId::Pool::kRow, 0, 3};
  const sched::ConfigurationContext ctx(a, ops);

  const LintReport report = analysis::lint_context(ctx);
  const Diagnostic* d = find_rule(report, "RSP-V006");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->locus.op, 0);
  EXPECT_EQ(d->message, run_error(ctx));
}

// ------------------------------------------------- structural rules (S)

TEST(LintStructural, S001PeDoubleBookedMatchesCompileMessage) {
  std::vector<sched::ScheduledOp> ops(2);
  ops[0].kind = ir::OpKind::kConst;
  ops[1].kind = ir::OpKind::kConst;  // same PE (0,0), same cycle 0
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);

  const LintReport report = analysis::lint_context(ctx);
  const Diagnostic* d = find_rule(report, "RSP-S001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->locus.op, 1);
  EXPECT_EQ(d->locus.cycle, 0);
  EXPECT_EQ(d->message, compile_error(ctx));
  EXPECT_THROW(analysis::verify_structural(ctx), Error);
}

TEST(LintStructural, S002ReadBusOversubscribedMatchesCompileMessage) {
  // Base rows have 2 read buses; a third same-row load in one cycle spills.
  std::vector<sched::ScheduledOp> ops(3);
  for (int i = 0; i < 3; ++i) {
    ops[static_cast<std::size_t>(i)].kind = ir::OpKind::kLoad;
    ops[static_cast<std::size_t>(i)].pe = {0, i};
    ops[static_cast<std::size_t>(i)].array = "x";
    ops[static_cast<std::size_t>(i)].address = i;
  }
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);

  const LintReport report = analysis::lint_context(ctx);
  const Diagnostic* d = find_rule(report, "RSP-S002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->locus.op, 2);
  EXPECT_EQ(d->locus.cycle, 0);
  EXPECT_EQ(d->message, compile_error(ctx));
}

TEST(LintStructural, S003WriteBusOversubscribedMatchesCompileMessage) {
  // Base rows have 1 write bus; two same-row stores in one cycle collide.
  std::vector<sched::ScheduledOp> ops(2);
  for (int i = 0; i < 2; ++i) {
    ops[static_cast<std::size_t>(i)].kind = ir::OpKind::kStore;
    ops[static_cast<std::size_t>(i)].pe = {0, i};
    ops[static_cast<std::size_t>(i)].array = "x";
    ops[static_cast<std::size_t>(i)].address = i;
    ops[static_cast<std::size_t>(i)].operands = {sched::ProgOperand{-1, 7}};
  }
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);

  const LintReport report = analysis::lint_context(ctx);
  const Diagnostic* d = find_rule(report, "RSP-S003");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->locus.op, 1);
  EXPECT_EQ(d->locus.cycle, 0);
  EXPECT_EQ(d->message, compile_error(ctx));
}

TEST(LintStructural, S004SharedMultiplyWithoutUnitMatchesCompileMessage) {
  const arch::Architecture a = arch::rsp_architecture(1);
  std::vector<sched::ScheduledOp> ops(1);
  ops[0].kind = ir::OpKind::kMult;
  ops[0].latency = a.mult_latency();
  ops[0].operands = {sched::ProgOperand{-1, 2}, sched::ProgOperand{-1, 3}};
  const sched::ConfigurationContext ctx(a, ops);

  const LintReport report = analysis::lint_context(ctx);
  const Diagnostic* d = find_rule(report, "RSP-S004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->locus.op, 0);
  EXPECT_EQ(d->message, compile_error(ctx));
}

TEST(LintStructural, S005UnitDoubleIssuedMatchesCompileMessage) {
  const arch::Architecture a = arch::rsp_architecture(1);
  const arch::SharedUnitId unit{arch::SharedUnitId::Pool::kRow, 0, 0};
  std::vector<sched::ScheduledOp> ops(2);
  for (int i = 0; i < 2; ++i) {
    ops[static_cast<std::size_t>(i)].kind = ir::OpKind::kMult;
    ops[static_cast<std::size_t>(i)].pe = {0, i};  // distinct PEs: no S001
    ops[static_cast<std::size_t>(i)].latency = a.mult_latency();
    ops[static_cast<std::size_t>(i)].operands = {sched::ProgOperand{-1, 2},
                                                 sched::ProgOperand{-1, 3}};
    ops[static_cast<std::size_t>(i)].unit = unit;
  }
  const sched::ConfigurationContext ctx(a, ops);

  const LintReport report = analysis::lint_context(ctx);
  const Diagnostic* d = find_rule(report, "RSP-S005");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->locus.op, 1);
  EXPECT_EQ(d->locus.cycle, 0);
  EXPECT_EQ(d->message, compile_error(ctx));
}

TEST(LintStructural, S006OperandBeforeReadyMatchesCompileMessage) {
  std::vector<sched::ScheduledOp> ops(2);
  ops[0].kind = ir::OpKind::kConst;
  ops[0].latency = 2;  // result ready at cycle 2
  ops[1].kind = ir::OpKind::kAdd;
  ops[1].pe = {0, 1};
  ops[1].cycle = 1;  // consumes at cycle 1
  ops[1].operands = {sched::ProgOperand{0, 0}, sched::ProgOperand{-1, 1}};
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);

  const LintReport report = analysis::lint_context(ctx);
  const Diagnostic* d = find_rule(report, "RSP-S006");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->locus.op, 1);
  EXPECT_EQ(d->locus.cycle, 1);
  EXPECT_EQ(d->message, compile_error(ctx));
}

// --------------------------------------------------- warning rules (W)
//
// Everything below is simulator-legal — the engines accept the context —
// so each test also pins report.clean() true (unless stated otherwise).

TEST(LintWarnings, W001FutureProducerReadsInitialZero) {
  std::vector<sched::ScheduledOp> ops(2);
  ops[0].kind = ir::OpKind::kAbs;
  ops[0].operands = {sched::ProgOperand{1, 0}};  // producer issues later
  ops[1].kind = ir::OpKind::kConst;
  ops[1].pe = {0, 1};
  ops[1].cycle = 1;
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);

  const LintReport report = analysis::lint_context(ctx);
  EXPECT_TRUE(report.clean());
  const Diagnostic* d = find_rule(report, "RSP-W001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->locus.op, 0);
  EXPECT_EQ(d->locus.cycle, 0);
}

TEST(LintWarnings, W002DeadValueNeverConsumed) {
  std::vector<sched::ScheduledOp> ops(1);
  ops[0].kind = ir::OpKind::kConst;
  ops[0].imm = 42;
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);

  const LintReport report = analysis::lint_context(ctx);
  EXPECT_TRUE(report.clean());
  const Diagnostic* d = find_rule(report, "RSP-W002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->locus.op, 0);
}

TEST(LintWarnings, W003IterationInversion) {
  std::vector<sched::ScheduledOp> ops(2);
  ops[0].kind = ir::OpKind::kConst;
  ops[0].iter = 2;
  ops[1].kind = ir::OpKind::kAbs;
  ops[1].pe = {0, 1};
  ops[1].cycle = 1;
  ops[1].iter = 0;
  ops[1].operands = {sched::ProgOperand{0, 0}};
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);

  const LintReport report = analysis::lint_context(ctx);
  EXPECT_TRUE(report.clean());
  const Diagnostic* d = find_rule(report, "RSP-W003");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->locus.op, 1);
}

TEST(LintWarnings, W004SameCycleDoubleStore) {
  std::vector<sched::ScheduledOp> ops(2);
  for (int i = 0; i < 2; ++i) {
    ops[static_cast<std::size_t>(i)].kind = ir::OpKind::kStore;
    ops[static_cast<std::size_t>(i)].pe = {i, 0};  // rows differ: no S003
    ops[static_cast<std::size_t>(i)].array = "x";
    ops[static_cast<std::size_t>(i)].address = 3;
    ops[static_cast<std::size_t>(i)].operands = {sched::ProgOperand{-1, i}};
  }
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);

  const LintReport report = analysis::lint_context(ctx);
  EXPECT_TRUE(report.clean());
  const Diagnostic* d = find_rule(report, "RSP-W004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->locus.op, 1);  // anchored to the second store
  EXPECT_EQ(d->locus.cycle, 0);
}

TEST(LintWarnings, W005SameCycleLoadAndStore) {
  std::vector<sched::ScheduledOp> ops(2);
  ops[0].kind = ir::OpKind::kLoad;
  ops[0].array = "x";
  ops[0].address = 3;
  ops[1].kind = ir::OpKind::kStore;
  ops[1].pe = {1, 0};
  ops[1].array = "x";
  ops[1].address = 3;
  ops[1].operands = {sched::ProgOperand{-1, 9}};
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);

  const LintReport report = analysis::lint_context(ctx);
  EXPECT_TRUE(report.clean());
  const Diagnostic* d = find_rule(report, "RSP-W005");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->locus.op, 0);  // anchored to the load
  EXPECT_EQ(d->locus.cycle, 0);
}

TEST(LintWarnings, W006AggregateSharedPoolOversubscription) {
  // 2x2 array with one row-pool unit per row: 2 physical units total, so 3
  // critical issues in one cycle cannot be legalised by any assignment.
  // The unit collisions also produce S005 errors — W006 is the aggregate
  // explanation on top, anchored to the cycle (op = -1).
  const arch::Architecture a =
      arch::custom_architecture("tiny-shared", 2, 2, 1, 0, 1);
  std::vector<sched::ScheduledOp> ops(3);
  const arch::PeCoord pes[3] = {{0, 0}, {0, 1}, {1, 0}};
  for (int i = 0; i < 3; ++i) {
    ops[static_cast<std::size_t>(i)].kind = ir::OpKind::kMult;
    ops[static_cast<std::size_t>(i)].pe = pes[i];
    ops[static_cast<std::size_t>(i)].latency = a.mult_latency();
    ops[static_cast<std::size_t>(i)].operands = {sched::ProgOperand{-1, 2},
                                                 sched::ProgOperand{-1, 3}};
    ops[static_cast<std::size_t>(i)].unit = arch::SharedUnitId{
        arch::SharedUnitId::Pool::kRow, pes[i].row, 0};
  }
  const sched::ConfigurationContext ctx(a, ops);

  const LintReport report = analysis::lint_context(ctx);
  const Diagnostic* d = find_rule(report, "RSP-W006");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->locus.op, -1);
  EXPECT_EQ(d->locus.cycle, 0);
}

TEST(LintWarnings, W007UnroutableOperand) {
  std::vector<sched::ScheduledOp> ops(2);
  ops[0].kind = ir::OpKind::kConst;  // PE (0,0)
  ops[1].kind = ir::OpKind::kAbs;
  ops[1].pe = {3, 5};  // neither same row/col nor neighbour of (0,0)
  ops[1].cycle = 1;
  ops[1].operands = {sched::ProgOperand{0, 0}};
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);

  const LintReport report = analysis::lint_context(ctx);
  EXPECT_TRUE(report.clean());
  const Diagnostic* d = find_rule(report, "RSP-W007");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->locus.op, 1);
  EXPECT_EQ(d->locus.pe_row, 3);
  EXPECT_EQ(d->locus.pe_col, 5);
}

TEST(LintWarnings, W008UnitUnreachableFromPe) {
  const arch::Architecture a = arch::rsp_architecture(1);  // row pools
  std::vector<sched::ScheduledOp> ops(1);
  ops[0].kind = ir::OpKind::kMult;  // PE (0,0)
  ops[0].latency = a.mult_latency();
  ops[0].operands = {sched::ProgOperand{-1, 2}, sched::ProgOperand{-1, 3}};
  // Row 5's unit exists (no V006) but PE (0,0) only reaches row 0's pool.
  ops[0].unit = arch::SharedUnitId{arch::SharedUnitId::Pool::kRow, 5, 0};
  const sched::ConfigurationContext ctx(a, ops);

  const LintReport report = analysis::lint_context(ctx);
  EXPECT_TRUE(report.clean());
  const Diagnostic* d = find_rule(report, "RSP-W008");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->locus.op, 0);
}

// ------------------------------------------------- toolchain rule (T001)

TEST(LintProtocol, T001RowSurvivesProtocolEncoding) {
  // RSP-T001 is synthesized by Service::lint when mapping/scheduling dies
  // before a context exists; no catalogue pair triggers it, so pin the
  // reporting path: the wire body must carry the rule id, severity and
  // message with the empty locus omitted.
  api::LintResponse resp;
  api::LintResponse::Row row;
  row.kernel = "K";
  row.arch = "RSP#1";
  row.report.diagnostics.push_back(analysis::Diagnostic{
      "RSP-T001", Severity::kError, analysis::Locus{},
      "mapper: kernel does not fit", "hint"});
  resp.rows.push_back(row);
  ASSERT_EQ(resp.error_count(), 1);
  ASSERT_FALSE(resp.clean());

  const util::Json body = api::to_body(resp);
  EXPECT_FALSE(body.at("clean").as_bool());
  EXPECT_EQ(body.at("errors").as_int("errors"), 1);
  const util::Json& entry = body.at("results").at(0).at("diagnostics").at(0);
  EXPECT_EQ(entry.at("rule").as_string(), "RSP-T001");
  EXPECT_EQ(entry.at("severity").as_string(), "error");
  EXPECT_EQ(entry.at("message").as_string(), "mapper: kernel does not fit");
  EXPECT_FALSE(entry.contains("op"));  // empty locus is omitted
  EXPECT_FALSE(entry.contains("pe"));
}

// ------------------------------------------- report plumbing + catalogue

TEST(LintReportJson, RoundTripsThroughUtilJson) {
  std::vector<sched::ScheduledOp> ops(2);
  ops[0].kind = ir::OpKind::kConst;
  ops[1].kind = ir::OpKind::kConst;  // S001 error + two W002 warnings
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);
  const LintReport report = analysis::lint_context(ctx);
  ASSERT_FALSE(report.clean());

  const util::Json parsed = util::Json::parse(report.to_json().dump());
  EXPECT_EQ(parsed.at("errors").as_int("errors"), report.error_count());
  EXPECT_EQ(parsed.at("warnings").as_int("warnings"),
            report.warning_count());
  ASSERT_EQ(static_cast<int>(parsed.at("diagnostics").size()),
            static_cast<int>(report.diagnostics.size()));
  const util::Json& first = parsed.at("diagnostics").at(0);
  EXPECT_EQ(first.at("rule").as_string(), report.diagnostics[0].rule);
  EXPECT_EQ(first.at("message").as_string(),
            report.diagnostics[0].message);
  EXPECT_EQ(first.at("op").as_int("op"), report.diagnostics[0].locus.op);
}

TEST(LintSubject, ContextJsonRoundTripsAndAgreesWithDirectLint) {
  const kernels::Workload w = kernels::find_workload("SAD");
  const arch::Architecture a =
      arch::rsp_architecture(4, w.array.rows, w.array.cols);
  const sched::ConfigurationContext ctx = schedule_workload(w, a);

  const util::Json doc = analysis::encode_schedule(a, ctx.ops());
  const analysis::ScheduleDocument decoded =
      analysis::parse_schedule(doc.dump());
  EXPECT_EQ(decoded.architecture.name, a.name);
  ASSERT_EQ(decoded.ops.size(), ctx.ops().size());
  // Re-encoding the decoded document must be byte-stable.
  EXPECT_EQ(analysis::encode_schedule(decoded.architecture, decoded.ops)
                .dump(),
            doc.dump());
  // And the decoded subject must lint identically to the live context.
  const LintReport direct = analysis::lint_context(ctx);
  const LintReport decoded_report =
      analysis::lint_schedule(decoded.architecture, decoded.ops);
  EXPECT_EQ(decoded_report.diagnostics, direct.diagnostics);
}

TEST(LintSubject, MalformedDocumentsThrow) {
  EXPECT_THROW(analysis::parse_schedule("not json"), Error);
  EXPECT_THROW(analysis::parse_schedule("{\"ops\": []}"),
               InvalidArgumentError);  // missing arch
  EXPECT_THROW(
      analysis::parse_schedule(
          "{\"arch\": \"RSP#1\", \"ops\": [], \"bogus\": 1}"),
      InvalidArgumentError);  // unknown key
  EXPECT_THROW(
      analysis::parse_schedule(
          "{\"arch\": \"RSP#1\", \"ops\": [{\"op\": \"teleport\"}]}"),
      InvalidArgumentError);  // unknown op kind
}

TEST(LintCatalogue, EveryKernelOnEveryArchitectureIsStrictlyClean) {
  // The toolchain's own output must carry zero findings of any severity —
  // this is the regression net for both the scheduler and the linter.
  for (const kernels::Workload& w : kernels::full_catalogue()) {
    for (const arch::Architecture& a :
         arch::standard_suite(w.array.rows, w.array.cols)) {
      const LintReport report =
          analysis::lint_context(schedule_workload(w, a));
      EXPECT_TRUE(report.diagnostics.empty())
          << w.name << " on " << a.name << ": "
          << (report.diagnostics.empty()
                  ? ""
                  : report.diagnostics[0].rule + ": " +
                        report.diagnostics[0].message);
    }
  }
}

TEST(LintCatalogue, ServiceLintIsCleanOverTheCatalogue) {
  api::ServiceOptions options;
  options.threads = 1;
  options.max_inflight = 1;
  const api::Service service(options);
  const api::LintResponse resp = service.lint({"", ""});
  EXPECT_TRUE(resp.clean());
  EXPECT_EQ(resp.error_count(), 0);
  EXPECT_EQ(resp.warning_count(), 0);
  // catalogue × standard suite rows
  EXPECT_EQ(resp.rows.size(),
            kernels::full_catalogue().size() * arch::standard_suite().size());
}

TEST(LintCorpus, FuzzCorpusHasNoErrorsAndOnlyDeadAddressChainWarnings) {
  // Generated kernels legitimately carry dead const/add address-chain ops
  // (RSP-W002); anything else — any error, any other warning class — is a
  // generator or linter regression.
  const std::vector<std::uint64_t> seeds =
      gen::load_corpus(RSP_TEST_DATA_DIR "/gen_corpus");
  ASSERT_FALSE(seeds.empty());
  for (const std::uint64_t seed : seeds) {
    gen::GeneratorConfig config;
    config.seed = seed;
    const kernels::Workload w = gen::generate_workload(config);
    for (const char* arch_name : {"Base", "RSP#4"}) {
      const arch::Architecture a =
          arch_name == std::string("Base")
              ? arch::base_architecture(w.array.rows, w.array.cols)
              : arch::rsp_architecture(4, w.array.rows, w.array.cols);
      const LintReport report =
          analysis::lint_context(schedule_workload(w, a));
      EXPECT_EQ(report.error_count(), 0)
          << "gen:" << seed << " on " << a.name;
      for (const Diagnostic& d : report.diagnostics)
        EXPECT_EQ(d.rule, "RSP-W002")
            << "gen:" << seed << " on " << a.name << ": " << d.message;
    }
  }
}

}  // namespace
}  // namespace rsp
