#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/dot.hpp"
#include "ir/graph.hpp"
#include "ir/kernel.hpp"
#include "util/error.hpp"

namespace rsp::ir {
namespace {

DataflowGraph simple_mac() {
  GraphBuilder b;
  auto x = b.load("x", [](std::int64_t k) { return k; });
  auto y = b.load("y", [](std::int64_t k) { return k; });
  auto m = b.mult(x, y);
  b.store("z", [](std::int64_t k) { return k; }, m);
  return b.take();
}

// ------------------------------------------------------------------ arity
TEST(Graph, OpArityTable) {
  EXPECT_EQ(op_arity(OpKind::kConst), 0);
  EXPECT_EQ(op_arity(OpKind::kLoad), 0);
  EXPECT_EQ(op_arity(OpKind::kNop), 0);
  EXPECT_EQ(op_arity(OpKind::kStore), 1);
  EXPECT_EQ(op_arity(OpKind::kAbs), 1);
  EXPECT_EQ(op_arity(OpKind::kShift), 1);
  EXPECT_EQ(op_arity(OpKind::kRoute), 1);
  EXPECT_EQ(op_arity(OpKind::kAdd), 2);
  EXPECT_EQ(op_arity(OpKind::kSub), 2);
  EXPECT_EQ(op_arity(OpKind::kMult), 2);
}

TEST(Graph, Classification) {
  EXPECT_TRUE(is_critical_op(OpKind::kMult));
  EXPECT_FALSE(is_critical_op(OpKind::kAdd));
  EXPECT_TRUE(is_memory_op(OpKind::kLoad));
  EXPECT_TRUE(is_memory_op(OpKind::kStore));
  EXPECT_TRUE(is_primitive_op(OpKind::kAdd));
  EXPECT_FALSE(is_primitive_op(OpKind::kMult));
  EXPECT_FALSE(produces_value(OpKind::kStore));
  EXPECT_TRUE(produces_value(OpKind::kMult));
}

TEST(Graph, RejectsWrongOperandCount) {
  DataflowGraph g;
  Node n;
  n.kind = OpKind::kAdd;
  n.inputs = {};  // add needs 2
  EXPECT_THROW(g.add(std::move(n)), InvalidArgumentError);
}

TEST(Graph, RejectsForwardReference) {
  DataflowGraph g;
  Node c;
  c.kind = OpKind::kConst;
  g.add(std::move(c));
  Node n;
  n.kind = OpKind::kAbs;
  n.inputs = {5};  // node 5 does not exist yet
  EXPECT_THROW(g.add(std::move(n)), InvalidArgumentError);
}

TEST(Graph, RejectsMemoryOpWithoutRef) {
  DataflowGraph g;
  Node n;
  n.kind = OpKind::kLoad;  // no MemRef attached
  EXPECT_THROW(g.add(std::move(n)), InvalidArgumentError);
}

TEST(Graph, RejectsNonMemoryOpWithRef) {
  DataflowGraph g;
  Node n;
  n.kind = OpKind::kConst;
  n.mem = MemRef{"x", [](std::int64_t) { return 0; }};
  EXPECT_THROW(g.add(std::move(n)), InvalidArgumentError);
}

TEST(Graph, RejectsCarriedWithoutOpenSlot) {
  DataflowGraph g;
  Node c;
  c.kind = OpKind::kConst;
  const NodeId cid = g.add(std::move(c));
  Node n;
  n.kind = OpKind::kAbs;
  n.inputs = {cid};
  n.carried = {CarriedInput{cid, 1, 0}};  // no kInvalidNode slot to fill
  EXPECT_THROW(g.add(std::move(n)), InvalidArgumentError);
}

TEST(Graph, RejectsNonPositiveCarriedDistance) {
  DataflowGraph g;
  Node c;
  c.kind = OpKind::kConst;
  const NodeId cid = g.add(std::move(c));
  Node n;
  n.kind = OpKind::kAdd;
  n.inputs = {cid, kInvalidNode};
  n.carried = {CarriedInput{cid, 0, 0}};
  EXPECT_THROW(g.add(std::move(n)), InvalidArgumentError);
}

// ------------------------------------------------------------- structure
TEST(Graph, AsapLevelsAndDepth) {
  const DataflowGraph g = simple_mac();
  const auto levels = g.asap_levels();
  EXPECT_EQ(levels[0], 0);  // load
  EXPECT_EQ(levels[1], 0);  // load
  EXPECT_EQ(levels[2], 1);  // mult
  EXPECT_EQ(levels[3], 2);  // store
  EXPECT_EQ(g.depth(), 3);
}

TEST(Graph, CountsAndOpSet) {
  const DataflowGraph g = simple_mac();
  EXPECT_EQ(g.count(OpKind::kLoad), 2);
  EXPECT_EQ(g.count(OpKind::kMult), 1);
  const auto ops = g.op_set();
  ASSERT_EQ(ops.size(), 1u);  // loads/stores excluded, only mult remains
  EXPECT_EQ(ops[0], OpKind::kMult);
}

TEST(Graph, DeadValueNodesDetected) {
  GraphBuilder b;
  auto x = b.load("x", [](std::int64_t k) { return k; });
  b.constant(42);  // dead: nobody consumes it
  b.store("y", [](std::int64_t k) { return k; }, x);
  const DataflowGraph g = b.take();
  const auto dead = g.dead_value_nodes();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(g.node(dead[0]).kind, OpKind::kConst);
}

TEST(Graph, UsersAreInverseOfInputs) {
  const DataflowGraph g = simple_mac();
  const auto users = g.build_users();
  ASSERT_EQ(users[0].size(), 1u);
  EXPECT_EQ(users[0][0], 2);  // load 0 feeds the mult
  EXPECT_TRUE(users[3].empty());
}

TEST(Graph, AccumulatorBuilderWiresSelfReference) {
  GraphBuilder b;
  auto x = b.load("x", [](std::int64_t k) { return k; });
  auto acc = b.accumulate(x, 7, 4);
  const DataflowGraph g = b.take();
  const Node& n = g.node(acc);
  ASSERT_EQ(n.carried.size(), 1u);
  EXPECT_EQ(n.carried[0].producer, acc);
  EXPECT_EQ(n.carried[0].distance, 4);
  EXPECT_EQ(n.carried[0].init, 7);
}

// ----------------------------------------------------------------- kernel
TEST(Kernel, ValidatesArguments) {
  EXPECT_THROW(ir::LoopKernel("x", DataflowGraph(), 4), InvalidArgumentError);
  EXPECT_THROW(ir::LoopKernel("x", simple_mac(), 0), InvalidArgumentError);
  EXPECT_THROW(ir::LoopKernel("", simple_mac(), 4), InvalidArgumentError);
}

TEST(Kernel, SummaryAccessors) {
  const ir::LoopKernel k("mac", simple_mac(), 10);
  EXPECT_EQ(k.mults_per_iteration(), 1);
  EXPECT_EQ(k.total_ops(), 40);
  EXPECT_EQ(k.op_set_string(), "mult");
}

// -------------------------------------------------------------------- dot
TEST(Dot, EmitsNodesAndEdges) {
  const ir::LoopKernel k("mac", simple_mac(), 4);
  const std::string dot = to_dot(k);
  EXPECT_NE(dot.find("digraph \"mac\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("lightcoral"), std::string::npos);  // mult highlighted
}

TEST(Dot, CarriedEdgesDashes) {
  GraphBuilder b;
  auto x = b.load("x", [](std::int64_t k) { return k; });
  b.accumulate(x, 0, 8);
  const std::string dot = to_dot(b.take(), "acc");
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("d=8"), std::string::npos);
}

}  // namespace
}  // namespace rsp::ir
