// Bitstream serialisation and VCD export.
#include <gtest/gtest.h>

#include "arch/bitstream.hpp"
#include "arch/presets.hpp"
#include "kernels/registry.hpp"
#include "sched/mapper.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine.hpp"
#include "sim/vcd.hpp"
#include "util/error.hpp"

namespace rsp {
namespace {

sched::ConfigurationContext context_for(const std::string& kernel,
                                        const arch::Architecture& a) {
  const kernels::Workload w = kernels::find_workload(kernel);
  const sched::LoopPipeliner mapper(w.array);
  const sched::ContextScheduler scheduler;
  return scheduler.schedule(mapper.map(w.kernel, w.hints, w.reduction), a);
}

// -------------------------------------------------------------- bitstream
class BitstreamRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BitstreamRoundTrip, EncodeDecodeIsIdentity) {
  const arch::Architecture a =
      arch::standard_suite()[static_cast<std::size_t>(GetParam())];
  const sched::ConfigurationContext ctx = context_for("FFT", a);
  const arch::ConfigCache original = ctx.encode();
  const auto bytes = arch::encode_bitstream(original, a.sharing);
  EXPECT_EQ(bytes.size(), arch::bitstream_size(original, a.sharing));
  const arch::ConfigCache decoded = arch::decode_bitstream(bytes, a.sharing);
  ASSERT_EQ(decoded.context_length(), original.context_length());
  for (int r = 0; r < a.array.rows; ++r)
    for (int c = 0; c < a.array.cols; ++c)
      for (int t = 0; t < original.context_length(); ++t)
        EXPECT_TRUE(decoded.word({r, c}, t) == original.word({r, c}, t))
            << "PE(" << r << "," << c << ") cycle " << t;
}

INSTANTIATE_TEST_SUITE_P(AllArchs, BitstreamRoundTrip,
                         ::testing::Range(0, 9));

TEST(Bitstream, HeaderValidation) {
  const arch::Architecture a = arch::rs_architecture(1);
  const sched::ConfigurationContext ctx = context_for("MVM", a);
  auto bytes = arch::encode_bitstream(ctx.encode(), a.sharing);

  auto corrupted = bytes;
  corrupted[0] = 'X';
  EXPECT_THROW(arch::decode_bitstream(corrupted, a.sharing), Error);

  auto truncated = bytes;
  truncated.resize(8);
  EXPECT_THROW(arch::decode_bitstream(truncated, a.sharing), Error);

  truncated = bytes;
  truncated.resize(bytes.size() / 2);
  EXPECT_THROW(arch::decode_bitstream(truncated, a.sharing), Error);

  // Wrong sharing plan → word width mismatch.
  EXPECT_THROW(
      arch::decode_bitstream(bytes, arch::rs_architecture(4).sharing), Error);
}

TEST(Bitstream, NegativeImmediatesSurvive) {
  const arch::Architecture a = arch::base_architecture();
  arch::ConfigCache cache(a.array, 2);
  cache.word({0, 0}, 0).immediate = -5;  // right-shift amounts are negative
  cache.word({0, 0}, 0).opcode = 3;
  const auto bytes = arch::encode_bitstream(cache, a.sharing);
  const arch::ConfigCache decoded = arch::decode_bitstream(bytes, a.sharing);
  EXPECT_EQ(decoded.word({0, 0}, 0).immediate, -5);
}

// -------------------------------------------------------------------- vcd
TEST(Vcd, WellFormedDocument) {
  const arch::Architecture a = arch::rsp_architecture(2);
  const sched::ConfigurationContext ctx = context_for("ICCG", a);
  ir::Memory mem;
  kernels::find_workload("ICCG").setup(mem);
  const sim::SimResult result = sim::Machine().run(ctx, mem);
  const std::string vcd = sim::to_vcd(ctx, result);

  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module pe_r0c0 $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module pe_r7c7 $end"), std::string::npos);
  // One timestamp per cycle plus the closing stamp.
  std::size_t stamps = 0;
  for (std::size_t pos = vcd.find("\n#"); pos != std::string::npos;
       pos = vcd.find("\n#", pos + 1))
    ++stamps;
  EXPECT_EQ(stamps, static_cast<std::size_t>(ctx.length()) + 1);
}

TEST(Vcd, RejectsForeignSimResult) {
  const arch::Architecture a = arch::base_architecture();
  const sched::ConfigurationContext ctx = context_for("ICCG", a);
  sim::SimResult bogus;
  bogus.values.resize(3);
  EXPECT_THROW(sim::to_vcd(ctx, bogus), InvalidArgumentError);
}

TEST(Vcd, BusSignalsOptional) {
  const arch::Architecture a = arch::base_architecture();
  const sched::ConfigurationContext ctx = context_for("MVM", a);
  ir::Memory mem;
  kernels::find_workload("MVM").setup(mem);
  const sim::SimResult result = sim::Machine().run(ctx, mem);
  sim::VcdOptions opt;
  opt.include_bus_signals = false;
  const std::string without = sim::to_vcd(ctx, result, opt);
  EXPECT_EQ(without.find("rbus_row"), std::string::npos);
  const std::string with = sim::to_vcd(ctx, result);
  EXPECT_NE(with.find("rbus_row0"), std::string::npos);
}

}  // namespace
}  // namespace rsp
