// Integration: mapper → scheduler → cycle simulator, checked against the
// independent golden model for every kernel on every one of the paper's
// nine architectures (81 combinations + matmul variants). The same matrix
// pins down the PR-6 bit-identity guarantee: the event engine
// (sim::SimProgram) must produce the same SimResult, final memory, and VCD
// bytes as the dense reference loop everywhere.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <tuple>

#include "arch/presets.hpp"
#include "ir/interp.hpp"
#include "kernels/matmul.hpp"
#include "kernels/registry.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"
#include "sim/vcd.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rsp {
namespace {

arch::Architecture arch_by_name(const std::string& name, int rows, int cols) {
  if (name == "Base") return arch::base_architecture(rows, cols);
  const int variant = name.back() - '0';
  if (name.find("RSP") == 0) return arch::rsp_architecture(variant, rows, cols);
  return arch::rs_architecture(variant, rows, cols);
}

class KernelOnArch
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(KernelOnArch, SimulatorMatchesGoldenModel) {
  const auto [kernel_name, arch_name] = GetParam();
  const kernels::Workload w = kernels::find_workload(kernel_name);
  const arch::Architecture a =
      arch_by_name(arch_name, w.array.rows, w.array.cols);

  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram program =
      mapper.map(w.kernel, w.hints, w.reduction);
  const sched::ContextScheduler scheduler;
  const sched::ConfigurationContext context = scheduler.schedule(program, a);
  sched::require_legal(context);

  ir::Memory sim_mem, event_mem, golden_mem;
  w.setup(sim_mem);
  w.setup(event_mem);
  w.setup(golden_mem);
  const sim::Machine machine;
  const sim::SimResult result = machine.run(context, sim_mem);
  w.golden(golden_mem);

  EXPECT_TRUE(sim_mem == golden_mem)
      << kernel_name << " on " << arch_name
      << ": simulated memory differs from the golden model";

  // PR-6 bit-identity: the event engine must reproduce the dense engine's
  // SimResult, final memory, and VCD dump exactly.
  const sim::Machine event_machine(ir::DatapathMode::kExact,
                                   sim::SimEngine::kEvent);
  const sim::SimResult event_result = event_machine.run(context, event_mem);
  EXPECT_TRUE(event_result == result)
      << kernel_name << " on " << arch_name
      << ": event-engine SimResult differs from the dense engine";
  EXPECT_TRUE(event_mem == sim_mem)
      << kernel_name << " on " << arch_name
      << ": event-engine final memory differs from the dense engine";
  EXPECT_EQ(sim::to_vcd(context, event_result), sim::to_vcd(context, result))
      << kernel_name << " on " << arch_name
      << ": event-engine VCD dump differs from the dense engine";

  // Utilisation sanity.
  EXPECT_EQ(result.stats.cycles, context.length());
  EXPECT_GT(result.stats.pe_utilization(), 0.0);
  EXPECT_LE(result.stats.pe_utilization(), 1.0);
  if (a.shares_multiplier() && result.stats.mult_ops > 0) {
    EXPECT_EQ(result.stats.shared_unit_issues, result.stats.mult_ops);
    EXPECT_LE(result.stats.shared_unit_utilization(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, KernelOnArch,
    ::testing::Combine(
        ::testing::Values("Hydro", "ICCG", "Tri-diagonal", "Inner product",
                          "State", "2D-FDCT", "SAD", "MVM", "FFT"),
        ::testing::Values("Base", "RS#1", "RS#2", "RS#3", "RS#4", "RSP#1",
                          "RSP#2", "RSP#3", "RSP#4")),
    [](const auto& info) {
      std::string n =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

// ------------------------------------------------------------- matmul demo
TEST(Simulator, MatmulFig2AndFig6ProduceIdenticalResults) {
  const kernels::Workload w = kernels::make_matmul(4);
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
  const sched::ContextScheduler s;

  ir::Memory base_mem, rsp_mem, golden;
  w.setup(base_mem);
  w.setup(rsp_mem);
  w.setup(golden);
  w.golden(golden);

  const sim::Machine machine;
  machine.run(s.schedule(p, arch::base_architecture(4, 4)), base_mem);
  machine.run(
      s.schedule(p, arch::custom_architecture("RSP", 4, 4, 1, 0, 2)),
      rsp_mem);
  EXPECT_TRUE(base_mem == golden);
  EXPECT_TRUE(rsp_mem == golden);
}

TEST(Simulator, DeeperPipelinesStillCorrect) {
  const kernels::Workload w = kernels::find_workload("FFT");
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
  const sched::ContextScheduler s;
  for (int stages = 2; stages <= 4; ++stages) {
    ir::Memory mem, golden;
    w.setup(mem);
    w.setup(golden);
    w.golden(golden);
    sim::Machine machine;
    machine.run(
        s.schedule(p, arch::rsp_architecture(2, 8, 8, stages)), mem);
    EXPECT_TRUE(mem == golden) << stages << " stages";
  }
}

// ------------------------------------------------------ structural checks
//
// Every structural refusal is asserted on both engines: the event engine
// hoists the legality replay into SimProgram::compile, and it must reject
// exactly the schedules the dense per-cycle loop rejects.
const sim::SimEngine kBothEngines[] = {sim::SimEngine::kDense,
                                       sim::SimEngine::kEvent};

TEST(Simulator, RefusesDoubleBookedPe) {
  const arch::Architecture a = arch::base_architecture();
  std::vector<sched::ScheduledOp> ops;
  for (int i = 0; i < 2; ++i) {
    sched::ScheduledOp op;
    op.kind = ir::OpKind::kConst;
    op.pe = {0, 0};
    op.cycle = 0;
    ops.push_back(op);
  }
  for (const sim::SimEngine engine : kBothEngines) {
    ir::Memory mem;
    EXPECT_THROW(sim::Machine(ir::DatapathMode::kExact, engine)
                     .run(sched::ConfigurationContext(a, ops), mem),
                 Error)
        << sim::engine_name(engine);
  }
}

TEST(Simulator, RefusesOperandConsumedBeforeReady) {
  const arch::Architecture a = arch::rsp_architecture(1);
  std::vector<sched::ScheduledOp> ops;
  sched::ScheduledOp mult;
  mult.kind = ir::OpKind::kMult;
  mult.pe = {0, 0};
  mult.cycle = 0;
  mult.latency = 2;
  mult.operands = {sched::ProgOperand{}, sched::ProgOperand{}};
  mult.unit = arch::SharedUnitId{arch::SharedUnitId::Pool::kRow, 0, 0};
  ops.push_back(mult);
  sched::ScheduledOp abs;
  abs.kind = ir::OpKind::kAbs;
  abs.pe = {0, 1};
  abs.cycle = 1;  // result only ready at cycle 2
  abs.operands = {sched::ProgOperand{0, 0}};
  ops.push_back(abs);
  for (const sim::SimEngine engine : kBothEngines) {
    ir::Memory mem;
    EXPECT_THROW(sim::Machine(ir::DatapathMode::kExact, engine)
                     .run(sched::ConfigurationContext(a, ops), mem),
                 Error)
        << sim::engine_name(engine);
  }
}

TEST(Simulator, RefusesBusOversubscription) {
  const arch::Architecture a = arch::base_architecture();
  std::vector<sched::ScheduledOp> ops;
  for (int c = 0; c < 3; ++c) {
    sched::ScheduledOp ld;
    ld.kind = ir::OpKind::kLoad;
    ld.pe = {0, c};
    ld.cycle = 0;
    ld.array = "x";
    ld.address = c;
    ops.push_back(ld);
  }
  for (const sim::SimEngine engine : kBothEngines) {
    ir::Memory mem;
    mem.allocate("x", 8);
    EXPECT_THROW(sim::Machine(ir::DatapathMode::kExact, engine)
                     .run(sched::ConfigurationContext(a, ops), mem),
                 Error)
        << sim::engine_name(engine);
  }
}

TEST(Simulator, Wrap16ModeAppliesDatapathWidth) {
  // A kernel whose adds overflow 16 bits behaves differently in kWrap16.
  const arch::Architecture a = arch::base_architecture();
  std::vector<sched::ScheduledOp> ops;
  sched::ScheduledOp big;
  big.kind = ir::OpKind::kConst;
  big.pe = {0, 0};
  big.cycle = 0;
  big.imm = 0x7fff;
  ops.push_back(big);
  sched::ScheduledOp add;
  add.kind = ir::OpKind::kAdd;
  add.pe = {0, 0};
  add.cycle = 1;
  add.operands = {sched::ProgOperand{0, 0}, sched::ProgOperand{-1, 1}};
  ops.push_back(add);
  const sched::ConfigurationContext ctx(a, ops);
  for (const sim::SimEngine engine : kBothEngines) {
    ir::Memory mem;
    const auto exact =
        sim::Machine(ir::DatapathMode::kExact, engine).run(ctx, mem);
    EXPECT_EQ(exact.values[1], 0x8000) << sim::engine_name(engine);
    const auto wrapped =
        sim::Machine(ir::DatapathMode::kWrap16, engine).run(ctx, mem);
    EXPECT_EQ(wrapped.values[1], -32768) << sim::engine_name(engine);
  }
}

// --------------------------------------------------- engine selection API
TEST(Simulator, EngineNamesRoundTrip) {
  EXPECT_STREQ(sim::engine_name(sim::SimEngine::kDense), "dense");
  EXPECT_STREQ(sim::engine_name(sim::SimEngine::kEvent), "event");
  EXPECT_EQ(sim::parse_sim_engine("dense"), sim::SimEngine::kDense);
  EXPECT_EQ(sim::parse_sim_engine("event"), sim::SimEngine::kEvent);
  try {
    sim::parse_sim_engine("fast");
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("'fast'"), std::string::npos);
  }
}

// ------------------------------------------------- entry-point validation
TEST(SimulatorValidation, ContextRejectsNegativeCycleNamingOp) {
  std::vector<sched::ScheduledOp> ops(2);
  ops[0].kind = ir::OpKind::kConst;
  ops[1].kind = ir::OpKind::kConst;
  ops[1].pe = {0, 1};
  ops[1].cycle = -3;
  try {
    sched::ConfigurationContext ctx(arch::base_architecture(), ops);
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("op 1"), std::string::npos)
        << e.what();
  }
}

TEST(SimulatorValidation, ContextRejectsNonPositiveLatencyNamingOp) {
  std::vector<sched::ScheduledOp> ops(1);
  ops[0].kind = ir::OpKind::kConst;
  ops[0].latency = 0;
  try {
    sched::ConfigurationContext ctx(arch::base_architecture(), ops);
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("op 0"), std::string::npos)
        << e.what();
  }
}

TEST(SimulatorValidation, RejectsOperandProducerOutOfRange) {
  std::vector<sched::ScheduledOp> ops(2);
  ops[0].kind = ir::OpKind::kConst;
  ops[1].kind = ir::OpKind::kAbs;
  ops[1].pe = {0, 1};
  ops[1].cycle = 1;
  ops[1].operands = {sched::ProgOperand{5, 0}};  // only ops 0..1 exist
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);
  for (const sim::SimEngine engine : kBothEngines) {
    ir::Memory mem;
    try {
      sim::Machine(ir::DatapathMode::kExact, engine).run(ctx, mem);
      FAIL() << "expected InvalidArgumentError (" << sim::engine_name(engine)
             << ")";
    } catch (const InvalidArgumentError& e) {
      EXPECT_NE(std::string(e.what()).find("producer 5"), std::string::npos)
          << e.what();
    }
  }
}

TEST(SimulatorValidation, RejectsStoreWithoutValueOperand) {
  std::vector<sched::ScheduledOp> ops(1);
  ops[0].kind = ir::OpKind::kStore;
  ops[0].array = "x";
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);
  for (const sim::SimEngine engine : kBothEngines) {
    ir::Memory mem;
    mem.allocate("x", 4);
    EXPECT_THROW(sim::Machine(ir::DatapathMode::kExact, engine).run(ctx, mem),
                 InvalidArgumentError)
        << sim::engine_name(engine);
  }
}

TEST(SimulatorValidation, RejectsOpPlacedOutsideArray) {
  std::vector<sched::ScheduledOp> ops(1);
  ops[0].kind = ir::OpKind::kConst;
  ops[0].pe = {9, 9};  // 8x8 array
  const sched::ConfigurationContext ctx(arch::base_architecture(), ops);
  for (const sim::SimEngine engine : kBothEngines) {
    ir::Memory mem;
    EXPECT_THROW(sim::Machine(ir::DatapathMode::kExact, engine).run(ctx, mem),
                 InvalidArgumentError)
        << sim::engine_name(engine);
  }
}

TEST(SimulatorValidation, RejectsSharedUnitOutsidePools) {
  const arch::Architecture a = arch::rsp_architecture(1);  // 1 unit per row
  std::vector<sched::ScheduledOp> ops(1);
  ops[0].kind = ir::OpKind::kMult;
  ops[0].latency = a.mult_latency();
  ops[0].operands = {sched::ProgOperand{}, sched::ProgOperand{}};
  ops[0].unit = arch::SharedUnitId{arch::SharedUnitId::Pool::kRow, 0, 3};
  const sched::ConfigurationContext ctx(a, ops);
  for (const sim::SimEngine engine : kBothEngines) {
    ir::Memory mem;
    EXPECT_THROW(sim::Machine(ir::DatapathMode::kExact, engine).run(ctx, mem),
                 InvalidArgumentError)
        << sim::engine_name(engine);
  }
}

// --------------------------------------------------- SimProgram lifecycle
TEST(SimProgram, CompileOnceRunManyOnSparseSchedule) {
  // A deliberately sparse schedule: two issues, padded to 64 cycles by the
  // trailing op's latency... (cycle 0 const, cycle 60 add).
  const arch::Architecture a = arch::base_architecture();
  std::vector<sched::ScheduledOp> ops(2);
  ops[0].kind = ir::OpKind::kConst;
  ops[0].imm = 21;
  ops[1].kind = ir::OpKind::kAdd;
  ops[1].pe = {0, 1};
  ops[1].cycle = 60;
  ops[1].latency = 4;
  ops[1].operands = {sched::ProgOperand{0, 0}, sched::ProgOperand{-1, 21}};
  const sched::ConfigurationContext ctx(a, ops);

  const sim::SimProgram program = sim::SimProgram::compile(ctx);
  EXPECT_EQ(program.size(), 2);
  EXPECT_EQ(program.total_cycles(), 64);
  EXPECT_EQ(program.active_cycle_count(), 2);  // only cycles 0 and 60 issue

  ir::Memory mem_a, mem_b;
  const sim::SimResult first = program.run(mem_a);
  EXPECT_EQ(first.values[1], 42);
  EXPECT_TRUE(program.static_stats() == first.stats);

  // The compiled program is immutable: a second run is bit-identical.
  const sim::SimResult second = program.run(mem_b);
  EXPECT_TRUE(second == first);
  EXPECT_TRUE(mem_a == mem_b);
}

// ---------------------------------------------------- VCD golden file
TEST(Simulator, VcdDumpMatchesCheckedInGolden) {
  const kernels::Workload w = kernels::find_workload("SAD");
  const arch::Architecture a =
      arch_by_name("RSP#4", w.array.rows, w.array.cols);
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram program =
      mapper.map(w.kernel, w.hints, w.reduction);
  const sched::ConfigurationContext context =
      sched::ContextScheduler().schedule(program, a);

  std::string expected;
  {
    std::ifstream in(RSP_TEST_DATA_DIR "/sad_rsp4_golden.vcd",
                     std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing tests/data/sad_rsp4_golden.vcd";
    std::ostringstream buf;
    buf << in.rdbuf();
    expected = buf.str();
  }

  for (const sim::SimEngine engine : kBothEngines) {
    ir::Memory mem;
    w.setup(mem);
    const sim::SimResult result =
        sim::Machine(ir::DatapathMode::kExact, engine).run(context, mem);
    EXPECT_EQ(sim::to_vcd(context, result), expected)
        << sim::engine_name(engine)
        << ": VCD dump drifted from the checked-in golden file";
  }
}

// ------------------------------------------- randomized equivalence check
//
// Legal-by-construction schedule generator: walks cycles in order and only
// emits issues that respect the same constraints the simulator enforces
// (PE occupancy, bus budgets, shared-unit arbitration, operand readiness),
// so every generated schedule must run to completion on both engines.
sched::ConfigurationContext random_context(util::Rng& rng,
                                           const arch::Architecture& a) {
  const arch::ArraySpec& array = a.array;
  const int length = static_cast<int>(rng.uniform(8, 24));
  const double density = 0.10 + 0.35 * rng.uniform01();
  constexpr int kArraySize = 32;

  std::vector<sched::ScheduledOp> ops;
  std::vector<int> pe_busy_until(static_cast<std::size_t>(array.num_pes()), 0);
  std::vector<int> ready_at;  // per emitted op

  for (int t = 0; t < length; ++t) {
    std::vector<int> row_reads(static_cast<std::size_t>(array.rows), 0);
    std::vector<int> row_writes(static_cast<std::size_t>(array.rows), 0);
    std::set<std::string> unit_taken;

    // Producers whose results are consumable this cycle.
    std::vector<int> ready;
    for (std::size_t i = 0; i < ready_at.size(); ++i)
      if (ready_at[i] <= t && ir::produces_value(ops[i].kind))
        ready.push_back(static_cast<int>(i));

    auto operand = [&]() {
      if (!ready.empty() && rng.chance(0.5)) {
        const int producer = ready[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(ready.size()) - 1))];
        return sched::ProgOperand{producer, 0};
      }
      return sched::ProgOperand{-1, rng.uniform(-50, 50)};
    };

    for (int pe = 0; pe < array.num_pes(); ++pe) {
      if (pe_busy_until[static_cast<std::size_t>(pe)] > t) continue;
      if (!rng.chance(density)) continue;
      const arch::PeCoord coord = array.coord(pe);

      sched::ScheduledOp op;
      op.pe = coord;
      op.cycle = t;
      const std::int64_t roll = rng.uniform(0, 9);
      switch (roll) {
        case 0:
        case 1:
          op.kind = ir::OpKind::kConst;
          op.imm = rng.uniform(-100, 100);
          break;
        case 2:
          op.kind = ir::OpKind::kAdd;
          op.operands = {operand(), operand()};
          break;
        case 3:
          op.kind = ir::OpKind::kSub;
          op.operands = {operand(), operand()};
          break;
        case 4:
          op.kind = ir::OpKind::kAbs;
          op.operands = {operand()};
          break;
        case 5:
          op.kind = ir::OpKind::kShift;
          op.operands = {operand()};
          op.imm = rng.uniform(-3, 3);
          break;
        case 6:
        case 7:
          op.kind = ir::OpKind::kMult;
          op.operands = {operand(), operand()};
          break;
        case 8:
          op.kind = ir::OpKind::kLoad;
          op.array = "m";
          op.address = rng.uniform(0, kArraySize - 1);
          break;
        default:
          op.kind = ir::OpKind::kStore;
          op.array = "m";
          op.address = rng.uniform(0, kArraySize - 1);
          op.operands = {operand()};
          break;
      }

      // Enforce the structural budgets the simulator checks; demote to a
      // kConst when a resource is exhausted so density stays high.
      if (op.kind == ir::OpKind::kLoad &&
          row_reads[static_cast<std::size_t>(coord.row)] >=
              array.read_buses_per_row) {
        op = sched::ScheduledOp{};
        op.kind = ir::OpKind::kConst;
        op.pe = coord;
        op.cycle = t;
      }
      if (op.kind == ir::OpKind::kStore &&
          row_writes[static_cast<std::size_t>(coord.row)] >=
              array.write_buses_per_row) {
        op = sched::ScheduledOp{};
        op.kind = ir::OpKind::kConst;
        op.pe = coord;
        op.cycle = t;
      }
      if (op.kind == ir::OpKind::kMult && a.shares_multiplier()) {
        bool placed = false;
        for (const arch::SharedUnitId& unit :
             a.sharing.reachable_units(array, coord)) {
          if (unit_taken.insert(arch::to_string(unit)).second) {
            op.unit = unit;
            placed = true;
            break;
          }
        }
        if (!placed) {  // every reachable unit already issued this cycle
          op.kind = ir::OpKind::kAdd;
          if (op.operands.size() != 2) op.operands.resize(2);
        }
      }

      op.latency = op.kind == ir::OpKind::kMult ? a.mult_latency() : 1;
      if (op.kind == ir::OpKind::kLoad)
        ++row_reads[static_cast<std::size_t>(coord.row)];
      if (op.kind == ir::OpKind::kStore)
        ++row_writes[static_cast<std::size_t>(coord.row)];
      pe_busy_until[static_cast<std::size_t>(pe)] =
          t + (ir::is_critical_op(op.kind) ? op.latency : 1);
      ready_at.push_back(t + op.latency);
      ops.push_back(std::move(op));
    }
  }

  if (ops.empty()) {  // degenerate draw: keep the context constructible
    sched::ScheduledOp op;
    op.kind = ir::OpKind::kConst;
    ops.push_back(op);
  }
  return sched::ConfigurationContext(a, std::move(ops));
}

TEST(SimulatorProperty, EventEngineMatchesDenseOnRandomSchedules) {
  util::Rng rng(0x5eed20260808ull);
  const arch::Architecture archs[] = {
      arch::base_architecture(4, 4), arch::rs_architecture(2, 4, 4),
      arch::rsp_architecture(1, 4, 4), arch::rsp_architecture(4, 4, 4)};
  int total_ops = 0;
  for (int trial = 0; trial < 48; ++trial) {
    const arch::Architecture& a = archs[trial % 4];
    const ir::DatapathMode mode =
        trial % 3 == 0 ? ir::DatapathMode::kWrap16 : ir::DatapathMode::kExact;
    const sched::ConfigurationContext ctx = random_context(rng, a);
    total_ops += static_cast<int>(ctx.size());

    ir::Memory dense_mem, event_mem;
    dense_mem.allocate("m", 32);
    event_mem.allocate("m", 32);
    for (int i = 0; i < 32; ++i) {
      dense_mem.write("m", i, i * 3 - 7);
      event_mem.write("m", i, i * 3 - 7);
    }

    const sim::SimResult dense =
        sim::Machine(mode, sim::SimEngine::kDense).run(ctx, dense_mem);
    const sim::SimResult event =
        sim::Machine(mode, sim::SimEngine::kEvent).run(ctx, event_mem);
    EXPECT_TRUE(event == dense)
        << "trial " << trial << " on " << a.name << ": SimResult diverged";
    EXPECT_TRUE(event_mem == dense_mem)
        << "trial " << trial << " on " << a.name << ": final memory diverged";
  }
  EXPECT_GT(total_ops, 500) << "generator produced suspiciously few ops";
}

}  // namespace
}  // namespace rsp
