// Integration: mapper → scheduler → cycle simulator, checked against the
// independent golden model for every kernel on every one of the paper's
// nine architectures (81 combinations + matmul variants).
#include <gtest/gtest.h>

#include <tuple>

#include "arch/presets.hpp"
#include "ir/interp.hpp"
#include "kernels/matmul.hpp"
#include "kernels/registry.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine.hpp"
#include "util/error.hpp"

namespace rsp {
namespace {

arch::Architecture arch_by_name(const std::string& name, int rows, int cols) {
  if (name == "Base") return arch::base_architecture(rows, cols);
  const int variant = name.back() - '0';
  if (name.find("RSP") == 0) return arch::rsp_architecture(variant, rows, cols);
  return arch::rs_architecture(variant, rows, cols);
}

class KernelOnArch
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(KernelOnArch, SimulatorMatchesGoldenModel) {
  const auto [kernel_name, arch_name] = GetParam();
  const kernels::Workload w = kernels::find_workload(kernel_name);
  const arch::Architecture a =
      arch_by_name(arch_name, w.array.rows, w.array.cols);

  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram program =
      mapper.map(w.kernel, w.hints, w.reduction);
  const sched::ContextScheduler scheduler;
  const sched::ConfigurationContext context = scheduler.schedule(program, a);
  sched::require_legal(context);

  ir::Memory sim_mem, golden_mem;
  w.setup(sim_mem);
  w.setup(golden_mem);
  const sim::Machine machine;
  const sim::SimResult result = machine.run(context, sim_mem);
  w.golden(golden_mem);

  EXPECT_TRUE(sim_mem == golden_mem)
      << kernel_name << " on " << arch_name
      << ": simulated memory differs from the golden model";

  // Utilisation sanity.
  EXPECT_EQ(result.stats.cycles, context.length());
  EXPECT_GT(result.stats.pe_utilization(), 0.0);
  EXPECT_LE(result.stats.pe_utilization(), 1.0);
  if (a.shares_multiplier() && result.stats.mult_ops > 0) {
    EXPECT_EQ(result.stats.shared_unit_issues, result.stats.mult_ops);
    EXPECT_LE(result.stats.shared_unit_utilization(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, KernelOnArch,
    ::testing::Combine(
        ::testing::Values("Hydro", "ICCG", "Tri-diagonal", "Inner product",
                          "State", "2D-FDCT", "SAD", "MVM", "FFT"),
        ::testing::Values("Base", "RS#1", "RS#2", "RS#3", "RS#4", "RSP#1",
                          "RSP#2", "RSP#3", "RSP#4")),
    [](const auto& info) {
      std::string n =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

// ------------------------------------------------------------- matmul demo
TEST(Simulator, MatmulFig2AndFig6ProduceIdenticalResults) {
  const kernels::Workload w = kernels::make_matmul(4);
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
  const sched::ContextScheduler s;

  ir::Memory base_mem, rsp_mem, golden;
  w.setup(base_mem);
  w.setup(rsp_mem);
  w.setup(golden);
  w.golden(golden);

  const sim::Machine machine;
  machine.run(s.schedule(p, arch::base_architecture(4, 4)), base_mem);
  machine.run(
      s.schedule(p, arch::custom_architecture("RSP", 4, 4, 1, 0, 2)),
      rsp_mem);
  EXPECT_TRUE(base_mem == golden);
  EXPECT_TRUE(rsp_mem == golden);
}

TEST(Simulator, DeeperPipelinesStillCorrect) {
  const kernels::Workload w = kernels::find_workload("FFT");
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
  const sched::ContextScheduler s;
  for (int stages = 2; stages <= 4; ++stages) {
    ir::Memory mem, golden;
    w.setup(mem);
    w.setup(golden);
    w.golden(golden);
    sim::Machine machine;
    machine.run(
        s.schedule(p, arch::rsp_architecture(2, 8, 8, stages)), mem);
    EXPECT_TRUE(mem == golden) << stages << " stages";
  }
}

// ------------------------------------------------------ structural checks
TEST(Simulator, RefusesDoubleBookedPe) {
  const arch::Architecture a = arch::base_architecture();
  std::vector<sched::ScheduledOp> ops;
  for (int i = 0; i < 2; ++i) {
    sched::ScheduledOp op;
    op.kind = ir::OpKind::kConst;
    op.pe = {0, 0};
    op.cycle = 0;
    ops.push_back(op);
  }
  ir::Memory mem;
  EXPECT_THROW(sim::Machine().run(sched::ConfigurationContext(a, ops), mem),
               Error);
}

TEST(Simulator, RefusesOperandConsumedBeforeReady) {
  const arch::Architecture a = arch::rsp_architecture(1);
  std::vector<sched::ScheduledOp> ops;
  sched::ScheduledOp mult;
  mult.kind = ir::OpKind::kMult;
  mult.pe = {0, 0};
  mult.cycle = 0;
  mult.latency = 2;
  mult.operands = {sched::ProgOperand{}, sched::ProgOperand{}};
  mult.unit = arch::SharedUnitId{arch::SharedUnitId::Pool::kRow, 0, 0};
  ops.push_back(mult);
  sched::ScheduledOp abs;
  abs.kind = ir::OpKind::kAbs;
  abs.pe = {0, 1};
  abs.cycle = 1;  // result only ready at cycle 2
  abs.operands = {sched::ProgOperand{0, 0}};
  ops.push_back(abs);
  ir::Memory mem;
  EXPECT_THROW(sim::Machine().run(sched::ConfigurationContext(a, ops), mem),
               Error);
}

TEST(Simulator, RefusesBusOversubscription) {
  const arch::Architecture a = arch::base_architecture();
  std::vector<sched::ScheduledOp> ops;
  for (int c = 0; c < 3; ++c) {
    sched::ScheduledOp ld;
    ld.kind = ir::OpKind::kLoad;
    ld.pe = {0, c};
    ld.cycle = 0;
    ld.array = "x";
    ld.address = c;
    ops.push_back(ld);
  }
  ir::Memory mem;
  mem.allocate("x", 8);
  EXPECT_THROW(sim::Machine().run(sched::ConfigurationContext(a, ops), mem),
               Error);
}

TEST(Simulator, Wrap16ModeAppliesDatapathWidth) {
  // A kernel whose adds overflow 16 bits behaves differently in kWrap16.
  const arch::Architecture a = arch::base_architecture();
  std::vector<sched::ScheduledOp> ops;
  sched::ScheduledOp big;
  big.kind = ir::OpKind::kConst;
  big.pe = {0, 0};
  big.cycle = 0;
  big.imm = 0x7fff;
  ops.push_back(big);
  sched::ScheduledOp add;
  add.kind = ir::OpKind::kAdd;
  add.pe = {0, 0};
  add.cycle = 1;
  add.operands = {sched::ProgOperand{0, 0}, sched::ProgOperand{-1, 1}};
  ops.push_back(add);
  const sched::ConfigurationContext ctx(a, ops);
  ir::Memory mem;
  const auto exact = sim::Machine(ir::DatapathMode::kExact).run(ctx, mem);
  EXPECT_EQ(exact.values[1], 0x8000);
  const auto wrapped = sim::Machine(ir::DatapathMode::kWrap16).run(ctx, mem);
  EXPECT_EQ(wrapped.values[1], -32768);
}

}  // namespace
}  // namespace rsp
