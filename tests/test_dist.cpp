// The distributed-DSE stack: worker-side shard executors (rsp::runtime),
// the v2 `dse_shard`/`worker_info` codec, connect retries, and the
// DseCoordinator end to end against in-process socket workers — including
// the resilience paths (worker death mid-run with redispatch, scripted
// connection drops with health-probe re-admission, the all-workers-lost
// local fallback and its opt-out abort, in-band shard rejection). The
// Dist* suites also run under the tsan preset: the coordinator's pull
// queue, its prober thread and the shard executors' fan-outs are
// exercised with ThreadSanitizer watching.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "api/protocol.hpp"
#include "api/service.hpp"
#include "api/socket_server.hpp"
#include "dist/coordinator.hpp"
#include "dse/explorer.hpp"
#include "kernels/registry.hpp"
#include "runtime/dist_shard.hpp"
#include "runtime/eval_cache.hpp"
#include "runtime/mapping_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"

namespace rsp::dist {
namespace {

api::ServiceOptions small_options(int threads = 2, int max_inflight = 2) {
  api::ServiceOptions options;
  options.threads = threads;
  options.max_inflight = max_inflight;
  return options;
}

// A grid small enough that exact evaluation stays cheap but still has
// several Pareto survivors to shard.
dse::ExplorerConfig small_dse_config() {
  dse::ExplorerConfig config;
  config.max_units_per_row = 2;
  config.max_units_per_col = 1;
  config.max_stages = 2;
  return config;
}

std::vector<kernels::Workload> small_domain() {
  return {kernels::find_workload("SAD"), kernels::find_workload("MVM")};
}

// Runs server.run() on a background thread; the destructor initiates
// shutdown and joins, so a failing assertion can't leak the thread.
class ServerRunner {
 public:
  explicit ServerRunner(api::SocketServer& server)
      : server_(server), thread_([&server] { server.run(); }) {}
  ~ServerRunner() {
    server_.shutdown();
    thread_.join();
  }

 private:
  api::SocketServer& server_;
  std::thread thread_;
};

// Every field of the merged exploration result must match the
// single-process answer exactly — including the doubles, which the
// coordinator recomputes locally rather than parsing off the wire, so
// plain == is the right comparison.
void expect_identical(const api::DseResponse& got,
                      const api::DseResponse& expect) {
  EXPECT_EQ(got.kernels, expect.kernels);
  EXPECT_EQ(got.result.base_area, expect.result.base_area);
  EXPECT_EQ(got.result.base_cycles, expect.result.base_cycles);
  EXPECT_EQ(got.result.base_time_ns, expect.result.base_time_ns);
  EXPECT_EQ(got.result.selected, expect.result.selected);
  ASSERT_EQ(got.result.candidates.size(), expect.result.candidates.size());
  for (std::size_t i = 0; i < expect.result.candidates.size(); ++i) {
    const dse::Candidate& g = got.result.candidates[i];
    const dse::Candidate& e = expect.result.candidates[i];
    EXPECT_EQ(g.point.label(), e.point.label()) << "candidate " << i;
    EXPECT_EQ(g.area_estimate, e.area_estimate) << "candidate " << i;
    EXPECT_EQ(g.area_synthesized, e.area_synthesized) << "candidate " << i;
    EXPECT_EQ(g.clock_ns, e.clock_ns) << "candidate " << i;
    EXPECT_EQ(g.estimated_cycles, e.estimated_cycles) << "candidate " << i;
    EXPECT_EQ(g.estimated_time_ns, e.estimated_time_ns) << "candidate " << i;
    EXPECT_EQ(g.rejected, e.rejected) << "candidate " << i;
    EXPECT_EQ(g.reject_reason, e.reject_reason) << "candidate " << i;
    EXPECT_EQ(g.pareto, e.pareto) << "candidate " << i;
    EXPECT_EQ(g.evaluated, e.evaluated) << "candidate " << i;
    EXPECT_EQ(g.exact_cycles, e.exact_cycles) << "candidate " << i;
    EXPECT_EQ(g.exact_time_ns, e.exact_time_ns) << "candidate " << i;
    EXPECT_EQ(g.total_stalls, e.total_stalls) << "candidate " << i;
  }
}

// ------------------------------------------------------- shard executors

TEST(Dist, EstimateShardMatchesSerialPrepare) {
  const std::vector<kernels::Workload> domain = small_domain();
  const dse::Explorer explorer(domain.front().array, small_dse_config());
  const dse::PreparedExploration prep = explorer.prepare(domain);
  const std::size_t n = prep.result.candidates.size();
  ASSERT_GT(n, 2u);

  runtime::ThreadPool pool(2);
  runtime::MappingCache mapping_cache;
  const std::size_t mid = n / 2;
  const runtime::EstimateShard lo =
      runtime::estimate_shard(explorer, domain, 0, mid, pool, &mapping_cache);
  const runtime::EstimateShard hi =
      runtime::estimate_shard(explorer, domain, mid, n, pool, &mapping_cache);

  // Every shard reports the whole-domain base schedule, and the
  // concatenated per-point sums are the serial prepare's estimates.
  EXPECT_EQ(lo.base_cycles, prep.result.base_cycles);
  EXPECT_EQ(hi.base_cycles, prep.result.base_cycles);
  ASSERT_EQ(lo.estimated_cycles.size(), mid);
  ASSERT_EQ(hi.estimated_cycles.size(), n - mid);
  for (std::size_t i = 0; i < n; ++i) {
    const long got = i < mid ? lo.estimated_cycles[i]
                             : hi.estimated_cycles[i - mid];
    EXPECT_EQ(got, prep.result.candidates[i].estimated_cycles)
        << "point " << i;
  }

  // The uncached path computes the same integers.
  const runtime::EstimateShard cold =
      runtime::estimate_shard(explorer, domain, 0, n, pool, nullptr);
  EXPECT_EQ(cold.base_cycles, prep.result.base_cycles);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(cold.estimated_cycles[i],
              prep.result.candidates[i].estimated_cycles);
}

TEST(Dist, ExactShardAgreesAcrossSplitsAndCacheStates) {
  const std::vector<kernels::Workload> domain = small_domain();
  const dse::Explorer explorer(domain.front().array, small_dse_config());
  const std::size_t n = explorer.enumerate_points().size();

  runtime::ThreadPool pool(2);
  runtime::MappingCache mapping_cache;
  runtime::EvalCache eval_cache;
  const runtime::ExactShard whole = runtime::exact_shard(
      explorer, domain, 0, n, pool, &mapping_cache, &eval_cache);
  ASSERT_EQ(whole.cycles.size(), n);
  ASSERT_EQ(whole.stalls.size(), n);

  // Single-point shards against the now-warm caches: identical rows —
  // shard geometry and cache temperature can only skip work, never change
  // a number.
  for (std::size_t i = 0; i < n; ++i) {
    const runtime::ExactShard one = runtime::exact_shard(
        explorer, domain, i, i + 1, pool, &mapping_cache, &eval_cache);
    ASSERT_EQ(one.cycles.size(), 1u);
    EXPECT_EQ(one.cycles[0], whole.cycles[i]) << "point " << i;
    EXPECT_EQ(one.stalls[0], whole.stalls[i]) << "point " << i;
    ASSERT_EQ(one.cycles[0].size(), domain.size());
  }

  // And fully uncached.
  const runtime::ExactShard cold =
      runtime::exact_shard(explorer, domain, 0, n, pool, nullptr, nullptr);
  EXPECT_EQ(cold.cycles, whole.cycles);
  EXPECT_EQ(cold.stalls, whole.stalls);
}

TEST(Dist, ShardBoundsAreValidated) {
  const std::vector<kernels::Workload> domain = small_domain();
  const dse::Explorer explorer(domain.front().array, small_dse_config());
  const std::size_t n = explorer.enumerate_points().size();
  runtime::ThreadPool pool(1);

  EXPECT_THROW(
      runtime::estimate_shard(explorer, domain, 1, 1, pool, nullptr),
      InvalidArgumentError);
  EXPECT_THROW(
      runtime::estimate_shard(explorer, domain, 2, 1, pool, nullptr),
      InvalidArgumentError);
  EXPECT_THROW(
      runtime::estimate_shard(explorer, domain, 0, n + 1, pool, nullptr),
      InvalidArgumentError);
  EXPECT_THROW(runtime::exact_shard(explorer, domain, n, n, pool, nullptr,
                                    nullptr),
               InvalidArgumentError);
  EXPECT_THROW(runtime::exact_shard(explorer, domain, n - 1, n + 1, pool,
                                    nullptr, nullptr),
               InvalidArgumentError);
}

// ---------------------------------------------------------------- protocol

TEST(DistProtocol, DecodeDseShardParsesTypedPayloads) {
  const api::Request request = api::decode_v2_request(util::Json::parse(
      R"({"protocol_version": 2, "id": "a", "op": "dse_shard",)"
      R"( "kernels": ["SAD"], "config": {"max_stages": 2},)"
      R"( "begin": 8, "end": 16, "mode": "estimate"})"));
  const api::DseShardRequest& shard = std::get<api::DseShardRequest>(request);
  ASSERT_EQ(shard.kernels.size(), 1u);
  EXPECT_EQ(shard.kernels[0], "SAD");
  EXPECT_EQ(shard.config.max_stages, 2);
  EXPECT_EQ(shard.begin, 8);
  EXPECT_EQ(shard.end, 16);
  EXPECT_FALSE(shard.exact);

  const api::Request exact = api::decode_v2_request(util::Json::parse(
      R"({"protocol_version": 2, "id": 1, "op": "dse_shard",)"
      R"( "begin": 0, "end": 1, "mode": "exact"})"));
  EXPECT_TRUE(std::get<api::DseShardRequest>(exact).exact);
  // Omitted kernels = the paper suite, resolved worker-side.
  EXPECT_TRUE(std::get<api::DseShardRequest>(exact).kernels.empty());

  const api::Request info = api::decode_v2_request(util::Json::parse(
      R"({"protocol_version": 2, "id": 1, "op": "worker_info"})"));
  EXPECT_TRUE(std::holds_alternative<api::WorkerInfoRequest>(info));
}

TEST(DistProtocol, DecodeDseShardRejectsMalformedRequests) {
  const auto expect_rejected = [](const std::string& payload,
                                  const std::string& needle) {
    const std::string text =
        R"({"protocol_version": 2, "id": "a", )" + payload + "}";
    try {
      api::decode_v2_request(util::Json::parse(text));
      FAIL() << "expected rejection: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << text << " -> " << e.what();
    }
  };
  // Missing and ill-typed bounds.
  expect_rejected(R"("op": "dse_shard", "end": 4, "mode": "estimate")",
                  "requires a 'begin' field");
  expect_rejected(R"("op": "dse_shard", "begin": 0, "mode": "estimate")",
                  "requires a 'end' field");
  expect_rejected(
      R"("op": "dse_shard", "begin": "x", "end": 4, "mode": "estimate")",
      "'begin' must be an integer");
  expect_rejected(
      R"("op": "dse_shard", "begin": 0, "end": 1.5, "mode": "estimate")",
      "'end' must be an integer");
  // Negative, empty and inverted ranges.
  expect_rejected(
      R"("op": "dse_shard", "begin": -1, "end": 4, "mode": "estimate")",
      "'begin' must be non-negative");
  expect_rejected(
      R"("op": "dse_shard", "begin": 3, "end": 3, "mode": "estimate")",
      "shard range is empty");
  expect_rejected(
      R"("op": "dse_shard", "begin": 3, "end": 2, "mode": "estimate")",
      "shard range is empty");
  // Mode is mandatory and closed.
  expect_rejected(R"("op": "dse_shard", "begin": 0, "end": 4)",
                  "requires a 'mode' field");
  expect_rejected(
      R"("op": "dse_shard", "begin": 0, "end": 4, "mode": "fast")",
      "unknown shard mode 'fast'");
  // Strict field checking, same as every other v2 op.
  expect_rejected(
      R"("op": "dse_shard", "begin": 0, "end": 4, "mode": "estimate",)"
      R"( "bogus": 1)",
      "unknown field 'bogus'");
  expect_rejected(R"("op": "worker_info", "verbose": true)",
                  "unknown field 'verbose'");
  // The unknown-op catalogue advertises the new worker ops.
  expect_rejected(R"("op": "warp")", "dse_shard, worker_info");
}

TEST(DistProtocol, EncodeDseConfigRoundTrips) {
  dse::ExplorerConfig config;
  config.max_units_per_row = 3;
  config.max_units_per_col = 2;
  config.max_stages = 3;
  config.max_area_ratio = 0.75;
  config.max_time_ratio = 2.5;
  config.pareto_epsilon = 0.125;
  config.objective = dse::Objective::kMinTime;

  util::Json doc = util::Json::object();
  doc.set("protocol_version", 2)
      .set("id", "a")
      .set("op", "dse_shard")
      .set("config", api::encode_dse_config(config))
      .set("begin", 0)
      .set("end", 1)
      .set("mode", "estimate");
  const api::Request request = api::decode_v2_request(doc);
  const dse::ExplorerConfig& got =
      std::get<api::DseShardRequest>(request).config;
  EXPECT_EQ(got.max_units_per_row, config.max_units_per_row);
  EXPECT_EQ(got.max_units_per_col, config.max_units_per_col);
  EXPECT_EQ(got.max_stages, config.max_stages);
  EXPECT_EQ(got.max_area_ratio, config.max_area_ratio);
  EXPECT_EQ(got.max_time_ratio, config.max_time_ratio);
  EXPECT_EQ(got.pareto_epsilon, config.pareto_epsilon);
  EXPECT_EQ(got.objective, config.objective);
}

TEST(DistProtocol, ShardAndWorkerInfoBodies) {
  api::DseShardResponse estimate;
  estimate.begin = 2;
  estimate.end = 4;
  estimate.base_cycles = 100;
  estimate.estimated_cycles = {7, 9};
  const util::Json est_body = api::to_body(estimate);
  EXPECT_TRUE(est_body.at("ok").as_bool());
  EXPECT_EQ(est_body.at("op").as_string(), "dse_shard");
  EXPECT_EQ(est_body.at("mode").as_string(), "estimate");
  EXPECT_EQ(est_body.at("begin").as_number(), 2);
  EXPECT_EQ(est_body.at("end").as_number(), 4);
  EXPECT_EQ(est_body.at("base_cycles").as_number(), 100);
  ASSERT_EQ(est_body.at("estimated_cycles").size(), 2u);
  EXPECT_EQ(est_body.at("estimated_cycles").at(1).as_number(), 9);
  EXPECT_FALSE(est_body.contains("cycles"));

  api::DseShardResponse exact;
  exact.exact = true;
  exact.begin = 5;
  exact.end = 6;
  exact.cycles = {{30, 40}};
  exact.stalls = {{1, 2}};
  const util::Json exact_body = api::to_body(exact);
  EXPECT_EQ(exact_body.at("mode").as_string(), "exact");
  ASSERT_EQ(exact_body.at("cycles").size(), 1u);
  EXPECT_EQ(exact_body.at("cycles").at(0).at(1).as_number(), 40);
  EXPECT_EQ(exact_body.at("stalls").at(0).at(0).as_number(), 1);
  EXPECT_FALSE(exact_body.contains("base_cycles"));

  api::WorkerInfoResponse info;
  info.threads = 2;
  info.max_inflight = 4;
  info.kernels = 9;
  info.architectures = 5;
  info.pid = 1234;
  info.uptime_ms = 5678;
  const util::Json info_body = api::to_body(info);
  EXPECT_EQ(info_body.at("op").as_string(), "worker_info");
  EXPECT_EQ(info_body.at("threads").as_number(), 2);
  EXPECT_EQ(info_body.at("max_inflight").as_number(), 4);
  EXPECT_EQ(info_body.at("kernels").as_number(), 9);
  EXPECT_EQ(info_body.at("architectures").as_number(), 5);
  EXPECT_EQ(info_body.at("pid").as_number(), 1234);
  EXPECT_EQ(info_body.at("uptime_ms").as_number(), 5678);
}

TEST(DistProtocol, ServiceShardMatchesServiceDseAndChecksBounds) {
  const api::Service service(small_options());
  api::DseRequest dse_request;
  dse_request.kernels = {"SAD", "MVM"};
  dse_request.config = small_dse_config();
  const api::DseResponse expect = service.dse(dse_request);
  const long n = static_cast<long>(expect.result.candidates.size());

  api::DseShardRequest shard;
  shard.kernels = dse_request.kernels;
  shard.config = dse_request.config;
  shard.begin = 0;
  shard.end = n;
  const api::DseShardResponse got = service.dse_shard(shard);
  EXPECT_EQ(got.base_cycles, expect.result.base_cycles);
  ASSERT_EQ(got.estimated_cycles.size(), static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i)
    EXPECT_EQ(got.estimated_cycles[i],
              expect.result.candidates[i].estimated_cycles);

  // Out-of-grid bounds surface as an in-band error body, not a dead
  // connection.
  shard.end = n + 1;
  const util::Json body = service.handle(shard);
  EXPECT_FALSE(body.at("ok").as_bool());
  EXPECT_NE(body.at("error").as_string().find("exceeds the enumeration grid"),
            std::string::npos);

  const api::WorkerInfoResponse info = service.worker_info({});
  EXPECT_EQ(info.threads, 2);
  EXPECT_EQ(info.max_inflight, 2);
  EXPECT_GT(info.kernels, 0u);
  EXPECT_GT(info.architectures, 0u);
  EXPECT_GT(info.pid, 0);
  // Uptime counts from Service construction; a fresh service is young but
  // never negative, and a second probe can only be older.
  EXPECT_GE(info.uptime_ms, 0);
  EXPECT_GE(service.worker_info({}).uptime_ms, info.uptime_ms);
}

// ----------------------------------------------------------- connect retry

TEST(DistConnect, ValidatesOptions) {
  const api::ListenAddress address = api::parse_listen_address(":1");
  EXPECT_THROW(api::connect_socket(address, {0, 25}), InvalidArgumentError);
  EXPECT_THROW(api::connect_socket(address, {1, -1}), InvalidArgumentError);
}

TEST(DistConnect, ExhaustedRetriesReportTheUnderlyingError) {
  const api::ListenAddress address =
      api::parse_listen_address(::testing::TempDir() + "rsp_dist_absent.sock");
  try {
    api::connect_socket(address, {3, 1});
    FAIL() << "expected the connect to fail";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot connect"), std::string::npos);
  }
}

TEST(DistConnect, RetriesUntilTheServerBinds) {
  const std::string path = ::testing::TempDir() + "rsp_dist_late.sock";
  std::remove(path.c_str());
  const api::ListenAddress address = api::parse_listen_address(path);
  api::Service service(small_options(1, 1));
  std::unique_ptr<api::SocketServer> server;
  std::thread binder([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server = std::make_unique<api::SocketServer>(
        service, std::vector<api::ListenAddress>{address});
  });
  // The first attempts race the binder thread and see ENOENT — a
  // transient error the bounded retry must absorb.
  const int fd = api::connect_socket(address, {100, 10});
  EXPECT_GE(fd, 0);
  ::close(fd);
  binder.join();
  server.reset();
  std::remove(path.c_str());
}

// ------------------------------------------------------------- coordinator

// A scripted worker speaking just enough of the v2 protocol to pass the
// worker_info handshake, then failing every dse_shard the configured way —
// the deterministic stand-in for a worker that dies or misbehaves mid-run.
class FakeWorker {
 public:
  enum class Behaviour {
    kDieOnShard,    ///< close the connection on the first dse_shard
    kRejectShard,   ///< answer dse_shard with an in-band {"ok": false}
  };

  explicit FakeWorker(Behaviour behaviour) : behaviour_(behaviour) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_TRUE_OR_THROW(listen_fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_TRUE_OR_THROW(
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) == 0);
    ASSERT_TRUE_OR_THROW(::listen(listen_fd_, 4) == 0);
    socklen_t len = sizeof(addr);
    ASSERT_TRUE_OR_THROW(::getsockname(
        listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { accept_loop(); });
  }

  ~FakeWorker() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    thread_.join();
  }

  api::ListenAddress address() const {
    return api::parse_listen_address("127.0.0.1:" + std::to_string(port_));
  }

 private:
  static void ASSERT_TRUE_OR_THROW(bool ok) {
    if (!ok) throw Error("fake worker setup failed");
  }

  void accept_loop() {
    for (;;) {
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) return;  // listener shut down
      serve_connection(conn);
      ::close(conn);
    }
  }

  void serve_connection(int conn) {
    api::SocketStreamBuf buf(conn);
    std::istream in(&buf);
    std::ostream out(&buf);
    std::string line;
    while (std::getline(in, line)) {
      util::Json request;
      try {
        request = util::Json::parse(line);
      } catch (const std::exception&) {
        return;
      }
      const std::string op = request.at("op").as_string();
      util::Json reply = util::Json::object();
      reply.set("protocol_version", 2);
      reply.set("id", request.at("id").as_string());
      if (op == "worker_info") {
        reply.set("op", "worker_info").set("ok", true);
      } else if (behaviour_ == Behaviour::kDieOnShard) {
        return;  // vanish mid-request: transport failure at the peer
      } else {
        reply.set("ok", false).set("error", "synthetic shard refusal");
      }
      out << reply.dump() << "\n" << std::flush;
    }
  }

  Behaviour behaviour_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
};

CoordinatorOptions fast_coordinator_options() {
  CoordinatorOptions options;
  options.shard_points = 2;  // many shards: exercises the pull queue
  options.redispatch.backoff_ms = 0;
  options.connect.attempts = 40;
  options.connect.backoff_ms = 10;
  options.probe = {2, 1};  // probe fast so re-admission never stalls tests
  return options;
}

api::DseRequest small_dse_request() {
  api::DseRequest request;
  request.kernels = {"SAD", "MVM"};
  request.config = small_dse_config();
  return request;
}

TEST(DistCoordinator, BitIdenticalToServiceDseColdAndWarm) {
  const api::DseRequest request = small_dse_request();
  const api::Service reference(small_options());
  const api::DseResponse expect = reference.dse(request);

  // Two independent worker services behind real sockets.
  api::Service worker_a(small_options());
  api::Service worker_b(small_options());
  api::SocketServer server_a(worker_a, {api::parse_listen_address(":0")});
  api::SocketServer server_b(worker_b, {api::parse_listen_address(":0")});
  ServerRunner runner_a(server_a);
  ServerRunner runner_b(server_b);

  DseCoordinator coordinator(
      {server_a.addresses()[0], server_b.addresses()[0]},
      fast_coordinator_options());
  // Cold worker caches, then warm: a cache can skip work, never change it.
  expect_identical(coordinator.dse(request), expect);
  expect_identical(coordinator.dse(request), expect);

  const util::Json stats = coordinator.stats_json();
  EXPECT_EQ(stats.at("runs").as_number(), 2);
  EXPECT_EQ(stats.at("redispatched").as_number(), 0);
  EXPECT_EQ(stats.at("workers_lost").as_number(), 0);
  ASSERT_EQ(stats.at("workers").size(), 2u);
  long shards = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    const util::Json& entry = stats.at("workers").at(i);
    EXPECT_TRUE(entry.at("alive").as_bool());
    EXPECT_GE(entry.at("busy_ms").as_number(), 0);
    shards += static_cast<long>(entry.at("shards").as_number());
  }
  EXPECT_EQ(shards, static_cast<long>(stats.at("shards").as_number()));
  EXPECT_GT(shards, 0);
}

TEST(DistCoordinator, RedispatchesWhenAWorkerDiesMidRun) {
  const api::DseRequest request = small_dse_request();
  const api::Service reference(small_options());
  const api::DseResponse expect = reference.dse(request);

  // Worker 0 passes the handshake, then drops the connection on its first
  // shard; the survivor must absorb the re-dispatched work with the merged
  // result unchanged.
  FakeWorker dying(FakeWorker::Behaviour::kDieOnShard);
  api::Service worker_service(small_options());
  api::SocketServer server(worker_service, {api::parse_listen_address(":0")});
  ServerRunner runner(server);

  DseCoordinator coordinator({dying.address(), server.addresses()[0]},
                             fast_coordinator_options());
  expect_identical(coordinator.dse(request), expect);

  const util::Json stats = coordinator.stats_json();
  EXPECT_GE(stats.at("redispatched").as_number(), 1);
  EXPECT_EQ(stats.at("workers_lost").as_number(), 1);
  EXPECT_FALSE(stats.at("workers").at(0).at("alive").as_bool());
  EXPECT_TRUE(stats.at("workers").at(1).at("alive").as_bool());
  EXPECT_EQ(stats.at("workers").at(0).at("shards").as_number(), 0);
  EXPECT_GE(stats.at("workers").at(0).at("retries").as_number(), 1);
}

TEST(DistCoordinator, LosingEveryWorkerAbortsTheRunWhenFallbackIsOff) {
  // The worker accepts every connection and handshake but dies on every
  // shard: quarantine, re-admission, another death — until the circuit
  // breaker stops the probing. With the local fallback opted out, and a
  // redispatch budget too large to exhaust first, the run must abort with
  // the all-workers-lost error.
  FakeWorker dying(FakeWorker::Behaviour::kDieOnShard);
  CoordinatorOptions options = fast_coordinator_options();
  options.local_fallback = false;
  options.redispatch.attempts = 10;
  DseCoordinator coordinator({dying.address()}, options);
  try {
    coordinator.dse(small_dse_request());
    FAIL() << "expected the run to abort";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("all workers lost"),
              std::string::npos);
  }
  const util::Json stats = coordinator.stats_json();
  EXPECT_EQ(stats.at("workers_lost").as_number(), 1);
  EXPECT_EQ(stats.at("local_fallback_shards").as_number(), 0);
  EXPECT_GE(stats.at("workers").at(0).at("quarantined").as_number(), 1);
}

TEST(DistCoordinator, LocalFallbackFinishesTheRunWhenTheFleetDies) {
  const api::DseRequest request = small_dse_request();
  const api::Service reference(small_options());
  const api::DseResponse expect = reference.dse(request);

  // One worker, dead on its first shard, breaker tripped immediately: the
  // coordinator must compute every remaining shard in-process — through
  // the same dse_shard code the worker would run, so the merged result is
  // still bit-identical.
  FakeWorker dying(FakeWorker::Behaviour::kDieOnShard);
  CoordinatorOptions options = fast_coordinator_options();
  options.circuit_breaker_failures = 1;  // no re-admission attempts
  DseCoordinator coordinator({dying.address()}, options);
  expect_identical(coordinator.dse(request), expect);

  const util::Json stats = coordinator.stats_json();
  EXPECT_GT(stats.at("local_fallback_shards").as_number(), 0);
  EXPECT_EQ(stats.at("workers_lost").as_number(), 1);
  const util::Json& worker = stats.at("workers").at(0);
  EXPECT_GE(worker.at("quarantined").as_number(), 1);
  EXPECT_EQ(worker.at("readmitted").as_number(), 0);
  EXPECT_EQ(worker.at("shards").as_number(), 0);
  EXPECT_FALSE(worker.at("alive").as_bool());
}

TEST(DistCoordinator, ReadmitsAWorkerAfterAScriptedDrop) {
  const api::DseRequest request = small_dse_request();
  const api::Service reference(small_options());
  const api::DseResponse expect = reference.dse(request);

  // The worker's serve loop drops its connection on the 2nd request it
  // ever sees (ordinal 1 is the handshake, ordinal 2 the first shard) and
  // behaves from then on: the health prober's next handshake (ordinal 3)
  // succeeds, the worker is re-admitted mid-run, and the sole-worker fleet
  // still finishes remotely — no local fallback involved.
  api::Service worker_service(small_options());
  api::SocketServerOptions server_options;
  server_options.serve.fault = std::make_shared<util::FaultInjector>(
      util::FaultPlan::parse("at=2:drop"));
  api::SocketServer server(worker_service, {api::parse_listen_address(":0")},
                           server_options);
  ServerRunner runner(server);

  DseCoordinator coordinator({server.addresses()[0]},
                             fast_coordinator_options());
  expect_identical(coordinator.dse(request), expect);

  const util::Json stats = coordinator.stats_json();
  const util::Json& worker = stats.at("workers").at(0);
  EXPECT_GE(worker.at("quarantined").as_number(), 1);
  EXPECT_GE(worker.at("readmitted").as_number(), 1);
  EXPECT_GE(worker.at("probes").as_number(), 1);
  EXPECT_TRUE(worker.at("alive").as_bool());
  EXPECT_GT(worker.at("shards").as_number(), 0);
  EXPECT_GE(stats.at("redispatched").as_number(), 1);
  EXPECT_EQ(stats.at("workers_lost").as_number(), 0);
  EXPECT_EQ(stats.at("local_fallback_shards").as_number(), 0);
}

TEST(DistCoordinator, QuarantinesAnUnreachableWorkerAtRunStart) {
  const api::DseRequest request = small_dse_request();
  const api::Service reference(small_options());
  const api::DseResponse expect = reference.dse(request);

  // Nothing listens on the first address: the coordinator must quarantine
  // it (one connect attempt, no 40-try stall) and run the whole grid on
  // the reachable worker.
  api::Service worker_service(small_options());
  api::SocketServer server(worker_service, {api::parse_listen_address(":0")});
  ServerRunner runner(server);
  const api::ListenAddress absent = api::parse_listen_address(
      ::testing::TempDir() + "rsp_dist_never.sock");

  CoordinatorOptions options = fast_coordinator_options();
  options.connect = {1, 0};           // absent means absent, immediately
  options.circuit_breaker_failures = 1;  // don't re-probe it mid-run
  DseCoordinator coordinator({absent, server.addresses()[0]}, options);
  expect_identical(coordinator.dse(request), expect);

  const util::Json stats = coordinator.stats_json();
  EXPECT_EQ(stats.at("workers_lost").as_number(), 1);
  EXPECT_GE(stats.at("workers").at(0).at("quarantined").as_number(), 1);
  EXPECT_FALSE(stats.at("workers").at(0).at("alive").as_bool());
  EXPECT_TRUE(stats.at("workers").at(1).at("alive").as_bool());
  EXPECT_EQ(stats.at("local_fallback_shards").as_number(), 0);
}

TEST(DistCoordinator, InBandRejectionIsFatalNotRetried) {
  // A shard rejection is deterministic — every worker would reject it
  // identically, so retrying would loop forever.
  FakeWorker refusing(FakeWorker::Behaviour::kRejectShard);
  DseCoordinator coordinator({refusing.address()},
                             fast_coordinator_options());
  try {
    coordinator.dse(small_dse_request());
    FAIL() << "expected the run to abort";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rejected shard"), std::string::npos) << what;
    EXPECT_NE(what.find("synthetic shard refusal"), std::string::npos)
        << what;
  }
  EXPECT_EQ(coordinator.stats_json().at("redispatched").as_number(), 0);
}

TEST(DistCoordinator, ValidatesConstructionOptions) {
  const std::vector<api::ListenAddress> one = {
      api::parse_listen_address(":1")};
  EXPECT_THROW(DseCoordinator({}), InvalidArgumentError);
  CoordinatorOptions bad;
  bad.shard_points = 0;
  EXPECT_THROW(DseCoordinator(one, bad), InvalidArgumentError);
  bad = CoordinatorOptions{};
  bad.redispatch.attempts = 0;
  EXPECT_THROW(DseCoordinator(one, bad), InvalidArgumentError);
  bad = CoordinatorOptions{};
  bad.request_timeout_ms = -1;
  EXPECT_THROW(DseCoordinator(one, bad), InvalidArgumentError);
  bad = CoordinatorOptions{};
  bad.probe.backoff_ms = -1;
  EXPECT_THROW(DseCoordinator(one, bad), InvalidArgumentError);
  bad = CoordinatorOptions{};
  bad.connect.attempts = 0;
  EXPECT_THROW(DseCoordinator(one, bad), InvalidArgumentError);
  bad = CoordinatorOptions{};
  bad.circuit_breaker_failures = 0;
  EXPECT_THROW(DseCoordinator(one, bad), InvalidArgumentError);
}

}  // namespace
}  // namespace rsp::dist
