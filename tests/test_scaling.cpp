// Template scalability: the RSP machinery must work on any rectangular
// geometry, not just the paper's 8×8 — mapper, scheduler, simulator, cost
// models and DSE on 4×4 .. 16×16 arrays, plus cost-model extrapolation
// beyond the calibrated bus-switch fan-out.
#include <gtest/gtest.h>

#include "arch/presets.hpp"
#include "core/evaluator.hpp"
#include "dse/explorer.hpp"
#include "kernels/matmul.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine.hpp"
#include "synth/synthesis.hpp"

namespace rsp {
namespace {

class MatmulOrder : public ::testing::TestWithParam<int> {};

TEST_P(MatmulOrder, EndToEndOnMatchingArray) {
  const int n = GetParam();
  const kernels::Workload w = kernels::make_matmul(n);
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
  const sched::ContextScheduler s;

  for (const arch::Architecture& a :
       {arch::base_architecture(n, n),
        arch::custom_architecture("RS", n, n, 1, 0, 1),
        arch::custom_architecture("RSP", n, n, 1, 0, 2),
        arch::custom_architecture("RSP-cols", n, n, 0, 1, 2)}) {
    const sched::ConfigurationContext ctx = s.schedule(p, a);
    sched::require_legal(ctx);
    ir::Memory mem, golden;
    w.setup(mem);
    w.setup(golden);
    sim::Machine().run(ctx, mem);
    w.golden(golden);
    EXPECT_TRUE(mem == golden) << "order " << n << " on " << a.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, MatmulOrder, ::testing::Values(2, 3, 4, 6,
                                                                8, 12, 16));

TEST(Scaling, CostModelsExtrapolateBeyondCalibration) {
  // 3 units/row + 3/col = 6 reachable per PE: past the measured 1..4 range.
  const arch::Architecture big =
      arch::custom_architecture("wide", 8, 8, 3, 3, 2);
  const synth::SynthesisModel model;
  EXPECT_GT(model.area(big), model.area(arch::rsp_architecture(4)));
  EXPECT_GT(model.clock_ns(big),
            model.clock_ns(arch::rsp_architecture(4)));
  // Still a valid architecture for scheduling.
  const kernels::Workload w = kernels::make_matmul(8);
  const sched::LoopPipeliner mapper(w.array);
  const sched::ContextScheduler s;
  const sched::ConfigurationContext ctx =
      s.schedule(mapper.map(w.kernel, w.hints, w.reduction), big);
  EXPECT_TRUE(sched::check_legality(ctx).ok);
}

TEST(Scaling, AreaGrowsQuadraticallyClockStaysFlat) {
  const synth::SynthesisModel model;
  const double a4 = model.area(arch::base_architecture(4, 4));
  const double a8 = model.area(arch::base_architecture(8, 8));
  const double a16 = model.area(arch::base_architecture(16, 16));
  EXPECT_NEAR(a8 / a4, 4.0, 0.01);
  EXPECT_NEAR(a16 / a8, 4.0, 0.01);
  EXPECT_DOUBLE_EQ(model.clock_ns(arch::base_architecture(4, 4)),
                   model.clock_ns(arch::base_architecture(16, 16)));
}

TEST(Scaling, RectangularArraysWork) {
  // Non-square geometry: 4 rows × 8 columns.
  const arch::Architecture a = arch::custom_architecture("rect", 4, 8, 1, 0, 2);
  EXPECT_EQ(a.sharing.total_units(a.array), 4);
  const kernels::Workload w = kernels::make_matmul(4);
  // Kernel array is 4×4; geometry mismatch must be rejected.
  const sched::LoopPipeliner mapper(w.array);
  const sched::ContextScheduler s;
  EXPECT_THROW(s.schedule(mapper.map(w.kernel, w.hints, w.reduction), a),
               InvalidArgumentError);
  // But a 4×8 mapper placing into the first 4 columns works.
  const sched::LoopPipeliner wide_mapper(a.array);
  sched::MappingHints hints = w.hints;
  hints.columns = 4;
  const sched::PlacedProgram p =
      wide_mapper.map(w.kernel, hints, w.reduction);
  const sched::ConfigurationContext ctx = s.schedule(p, a);
  EXPECT_TRUE(sched::check_legality(ctx).ok);
}

TEST(Scaling, DseOnSmallArray) {
  dse::ExplorerConfig config;
  config.max_units_per_row = 2;
  config.max_units_per_col = 1;
  config.max_stages = 2;
  arch::ArraySpec small;
  small.rows = 4;
  small.cols = 4;
  dse::Explorer explorer(small, config);
  const auto result = explorer.explore({kernels::make_matmul(4)});
  EXPECT_GE(result.candidates.size(), 8u);
  const dse::Candidate& best = result.best();
  EXPECT_TRUE(best.architecture.shares_multiplier());
}

TEST(Scaling, EvaluatorConsistentAcrossGeometries) {
  // DR% on a 4×4 RSP mirrors the 8×8 behaviour for a mult-free-tail kernel.
  const core::RspEvaluator ev;
  const kernels::Workload w = kernels::make_matmul(4);
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
  const auto base = ev.evaluate(p, arch::base_architecture(4, 4));
  const auto rsp = ev.evaluate(
      p, arch::custom_architecture("RSP", 4, 4, 1, 0, 2),
      base.execution_time_ns);
  EXPECT_GT(rsp.delay_reduction_percent, 20.0);
}

}  // namespace
}  // namespace rsp
