#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "kernels/matmul.hpp"
#include "kernels/registry.hpp"
#include "sched/mapper.hpp"
#include "util/error.hpp"

namespace rsp::sched {
namespace {

ir::LoopKernel tiny_kernel(std::int64_t trips) {
  ir::GraphBuilder b;
  auto x = b.load("x", [](std::int64_t k) { return k; });
  auto y = b.load("y", [](std::int64_t k) { return k; });
  auto m = b.mult(x, y);
  b.store("z", [](std::int64_t k) { return k; }, m);
  return ir::LoopKernel("tiny", b.take(), trips);
}

TEST(MappingHints, Validation) {
  MappingHints h;
  h.lanes = 0;
  EXPECT_THROW(h.validate(), InvalidArgumentError);
  h = MappingHints{};
  h.stagger = -1;
  EXPECT_THROW(h.validate(), InvalidArgumentError);
  h = MappingHints{};
  h.columns = 0;
  EXPECT_THROW(h.validate(), InvalidArgumentError);
  EXPECT_NO_THROW(MappingHints{}.validate());
}

TEST(Mapper, PlacesWavesColumnRoundRobin) {
  const arch::ArraySpec array;
  LoopPipeliner mapper(array);
  MappingHints hints;
  hints.lanes = 4;
  hints.columns = 3;
  const PlacedProgram p = mapper.map(tiny_kernel(24), hints);
  // iteration 0 → wave 0 lane 0 → PE(0,0); iteration 5 → wave 1 lane 1 →
  // PE(1,1); iteration 13 → wave 3 lane 1 → column 3 % 3 = 0.
  const ir::UnrolledGraph u(tiny_kernel(24));
  auto pe_of = [&](std::int64_t iter) {
    return p.op(p.index_of_source(u.id_of(0, iter))).pe;
  };
  EXPECT_EQ(pe_of(0), (arch::PeCoord{0, 0}));
  EXPECT_EQ(pe_of(5), (arch::PeCoord{1, 1}));
  EXPECT_EQ(pe_of(13), (arch::PeCoord{1, 0}));
}

TEST(Mapper, RowBandsCycleWhenEnabled) {
  const arch::ArraySpec array;  // 8 rows
  LoopPipeliner mapper(array);
  MappingHints hints;
  hints.lanes = 2;
  hints.columns = 2;
  hints.cycle_row_bands = true;  // 4 bands of 2 rows
  const PlacedProgram p = mapper.map(tiny_kernel(16), hints);
  const ir::UnrolledGraph u(tiny_kernel(16));
  auto pe_of = [&](std::int64_t iter) {
    return p.op(p.index_of_source(u.id_of(0, iter))).pe;
  };
  EXPECT_EQ(pe_of(0).row, 0);   // wave 0 band 0
  EXPECT_EQ(pe_of(4).row, 2);   // wave 2 band 1
  EXPECT_EQ(pe_of(8).row, 4);   // wave 4 band 2
  EXPECT_EQ(pe_of(12).row, 6);  // wave 6 band 3
}

TEST(Mapper, NotBeforeEncodesNominalLockstepSlot) {
  const arch::ArraySpec array;
  LoopPipeliner mapper(array);
  MappingHints hints;
  hints.lanes = 8;
  hints.stagger = 3;
  const PlacedProgram p = mapper.map(tiny_kernel(32), hints);
  const ir::UnrolledGraph u(tiny_kernel(32));
  // iteration 17 → wave 2: not_before = 2·3 + slot.
  for (ir::NodeId slot = 0; slot < 4; ++slot)
    EXPECT_EQ(p.op(p.index_of_source(u.id_of(slot, 17))).not_before, 6 + slot);
}

TEST(Mapper, PrioritiesStrictlyIncreaseAlongEdges) {
  for (const auto& w : kernels::paper_suite()) {
    LoopPipeliner mapper(w.array);
    const PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
    EXPECT_NO_THROW(p.validate()) << w.name;
  }
}

TEST(Mapper, EveryUnrolledOpIsPlacedExactlyOnce) {
  const auto w = kernels::find_workload("ICCG");
  const ir::UnrolledGraph u(w.kernel);
  LoopPipeliner mapper(w.array);
  const PlacedProgram p = mapper.map(w.kernel, u, w.hints, w.reduction);
  for (ir::OpId id = 0; id < u.size(); ++id) {
    const ProgIndex idx = p.index_of_source(id);
    ASSERT_NE(idx, kNoProducer);
    EXPECT_EQ(p.op(idx).source, id);
    EXPECT_EQ(p.op(idx).kind, u.op(id).kind);
  }
}

TEST(Mapper, InfeasibleHintsRejected) {
  const arch::ArraySpec array;  // 8×8
  LoopPipeliner mapper(array);
  MappingHints too_tall;
  too_tall.lanes = 9;
  EXPECT_THROW(mapper.map(tiny_kernel(9), too_tall), InfeasibleError);
  MappingHints too_wide;
  too_wide.columns = 9;
  EXPECT_THROW(mapper.map(tiny_kernel(9), too_wide), InfeasibleError);
  MappingHints offset;
  offset.first_row = 4;
  offset.lanes = 5;
  EXPECT_THROW(mapper.map(tiny_kernel(5), offset), InfeasibleError);
}

TEST(Mapper, UnroutableCarriedDependenceDiagnosed) {
  // Accumulator distance 3 with 2 lanes: iteration 5 (wave 2, lane 1) needs
  // iteration 2's value (wave 1, lane 0) — different row AND column.
  ir::GraphBuilder b;
  auto x = b.load("x", [](std::int64_t k) { return k; });
  b.accumulate(x, 0, 3);
  const ir::LoopKernel k("bad-chain", b.take(), 8);
  LoopPipeliner mapper(arch::ArraySpec{});
  MappingHints hints;
  hints.lanes = 2;
  hints.columns = 4;
  EXPECT_THROW(mapper.map(k, hints), InvalidArgumentError);
}

// --------------------------------------------------------------- reduction
TEST(Mapper, ReductionAllAppendsTreeAndStore) {
  const auto w = kernels::find_workload("Inner product");
  LoopPipeliner mapper(w.array);
  const PlacedProgram with = mapper.map(w.kernel, w.hints, w.reduction);
  const PlacedProgram without = mapper.map(w.kernel, w.hints, {});
  // 64 partials → 63 combining adds + 1 store.
  EXPECT_EQ(with.size(), without.size() + 64);
  const ProgramOp& last = with.op(with.size() - 1);
  EXPECT_EQ(last.kind, ir::OpKind::kStore);
  EXPECT_EQ(last.array, "sum");
  EXPECT_EQ(last.iter, -1);
  EXPECT_EQ(last.source, ir::kInvalidOp);
}

TEST(Mapper, ReductionPerRowProducesOneStorePerRow) {
  const auto w = kernels::find_workload("MVM");
  LoopPipeliner mapper(w.array);
  const PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
  int stores = 0;
  std::set<std::int64_t> addresses;
  for (const ProgramOp& op : p.ops()) {
    if (op.kind == ir::OpKind::kStore && op.array == "y") {
      ++stores;
      addresses.insert(op.address);
      EXPECT_EQ(op.pe.row, op.address);  // row r stores y[r]
    }
  }
  EXPECT_EQ(stores, 8);
  EXPECT_EQ(addresses.size(), 8u);
}

TEST(Mapper, ReductionRequiresValidSourceAndArray) {
  const auto w = kernels::find_workload("Inner product");
  LoopPipeliner mapper(w.array);
  ReductionSpec bad = w.reduction;
  bad.source = 99;
  EXPECT_THROW(mapper.map(w.kernel, w.hints, bad), InvalidArgumentError);
  bad = w.reduction;
  bad.array.clear();
  EXPECT_THROW(mapper.map(w.kernel, w.hints, bad), InvalidArgumentError);
}

// --------------------------------------------------------------- programs
TEST(Program, AddRejectsMalformedOps) {
  PlacedProgram p(arch::ArraySpec{});
  ProgramOp op;
  op.kind = ir::OpKind::kAdd;
  op.pe = {0, 0};
  op.operands = {ProgOperand{}, ProgOperand{}};
  EXPECT_NO_THROW(p.add(op));
  ProgramOp bad = op;
  bad.pe = {8, 0};
  EXPECT_THROW(p.add(bad), InvalidArgumentError);
  ProgramOp fwd = op;
  fwd.operands = {ProgOperand{5, 0}, ProgOperand{}};
  EXPECT_THROW(p.add(fwd), InvalidArgumentError);
  ProgramOp mem;
  mem.kind = ir::OpKind::kLoad;
  mem.pe = {0, 0};
  EXPECT_THROW(p.add(mem), InvalidArgumentError);  // missing array name
}

TEST(Program, MatmulPlacementMatchesFig2Discipline) {
  const auto w = kernels::make_matmul(4);
  LoopPipeliner mapper(w.array);
  const PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
  // Every op of iteration (i,j) lives on PE(i,j).
  for (const ProgramOp& op : p.ops()) {
    ASSERT_GE(op.iter, 0);
    EXPECT_EQ(op.pe.row, op.iter % 4);
    EXPECT_EQ(op.pe.col, op.iter / 4);
  }
}

}  // namespace
}  // namespace rsp::sched
