#!/usr/bin/env sh
# Differential-fuzz smoke: replays the regression corpus against the full
# architecture suite, runs a fixed-base batch of random trials (reproducible
# run to run), then one batch from a time-derived base seed to widen
# coverage build over build. Any failing seed is written to the save
# directory (one seed_<seed>.txt each) and reproduces standalone via
# `rsp_cli fuzz --trials 1 --seed <seed>`.
#
#   scripts/fuzz_smoke.sh <rsp_cli binary> <corpus dir> [save dir] [trials]
set -eu

cli=$1
corpus=$2
save_dir=${3:-build/fuzz-failures}
trials=${4:-250}

"$cli" fuzz --trials "$trials" --seed 1 --corpus "$corpus" \
  --save-failures "$save_dir"

tseed=$(date +%s)
echo "fuzz_smoke: time-derived base seed: $tseed"
"$cli" fuzz --trials "$trials" --seed "$tseed" --save-failures "$save_dir"

echo "fuzz_smoke: OK (corpus + $trials fixed-base + $trials time-derived trials)"
