#!/usr/bin/env sh
# Distributed-DSE smoke: `rsp_cli dse --workers a,b,c` must print output
# byte-identical to single-process `rsp_cli dse` — both on a healthy
# 3-worker fleet and when one worker is killed (SIGKILL) mid-run, which
# forces the coordinator to re-dispatch that worker's shards to the
# survivors.
#
#   scripts/dist_smoke.sh <rsp_cli binary>
set -eu

cli=$1
workdir=$(mktemp -d)
w1_pid=
w2_pid=
w3_pid=
cleanup() {
  for pid in "$w1_pid" "$w2_pid" "$w3_pid"; do
    if [ -n "$pid" ]; then
      kill "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

# Reference: the single-process explorer over the full paper domain.
"$cli" dse > "$workdir/expect" 2> "$workdir/expect.log"

start_worker() {
  # $1 = slot name. Binds an ephemeral TCP port and prints READY <addr>.
  "$cli" worker 127.0.0.1:0 --threads 2 \
    > "$workdir/$1.ready" 2> "$workdir/$1.log" &
}

wait_ready() {
  # $1 = slot name. Echoes the resolved address from the READY line.
  i=0
  while ! grep -q "^READY " "$workdir/$1.ready" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "dist_smoke: worker $1 never printed READY" >&2
      cat "$workdir/$1.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  awk '/^READY /{print $2; exit}' "$workdir/$1.ready"
}

start_worker w1; w1_pid=$!
start_worker w2; w2_pid=$!
start_worker w3; w3_pid=$!
a1=$(wait_ready w1)
a2=$(wait_ready w2)
a3=$(wait_ready w3)

# Run 1: healthy fleet.
if ! "$cli" dse --workers "$a1,$a2,$a3" \
    > "$workdir/got_healthy" 2> "$workdir/healthy.log"; then
  echo "dist_smoke: dse --workers failed on a healthy fleet" >&2
  cat "$workdir/healthy.log" >&2
  exit 1
fi
if ! cmp -s "$workdir/expect" "$workdir/got_healthy"; then
  echo "dist_smoke: healthy-fleet output diverges from single-process dse" >&2
  diff "$workdir/expect" "$workdir/got_healthy" >&2 || true
  exit 1
fi

# Run 2: kill one worker shortly after the run starts; its shards must be
# re-dispatched to the survivors with byte-identical results.
"$cli" dse --workers "$a1,$a2,$a3" \
  > "$workdir/got_degraded" 2> "$workdir/degraded.log" &
dse_pid=$!
sleep 0.05
kill -9 "$w3_pid" 2>/dev/null || true
wait "$w3_pid" 2>/dev/null || true
w3_pid=
dse_rc=0
wait "$dse_pid" || dse_rc=$?
if [ "$dse_rc" -ne 0 ]; then
  echo "dist_smoke: dse --workers exited $dse_rc after a worker was killed" >&2
  cat "$workdir/degraded.log" >&2
  exit 1
fi
if ! cmp -s "$workdir/expect" "$workdir/got_degraded"; then
  echo "dist_smoke: degraded-fleet output diverges from single-process dse" >&2
  diff "$workdir/expect" "$workdir/got_degraded" >&2 || true
  exit 1
fi

echo "dist_smoke: 3-worker and worker-killed runs byte-identical to" \
  "single-process dse ($(wc -c < "$workdir/expect" | tr -d ' ') bytes)"
