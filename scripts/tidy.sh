#!/usr/bin/env sh
# clang-tidy over every first-party translation unit, with a content-hash
# result cache so repeat runs (and the CI cache restore) only re-analyse
# files whose preprocessed inputs could have changed.
#
#   scripts/tidy.sh [build dir] [cache dir]
#
# Degrades gracefully: when clang-tidy is not installed (the local dev
# container ships only gcc) the script prints a notice and exits 0, so it
# is always safe to wire into wrapper targets. CI installs clang-tidy and
# gets the real run.
#
# Cache model: one marker file per source, named by the SHA-256 of the
# .clang-tidy profile, the clang-tidy version banner, and the source file
# content. A marker hit skips the invocation entirely. Header edits are
# caught conservatively by folding every in-tree header's hash into each
# key, so any header change invalidates the whole cache rather than
# tracking include graphs.
set -eu

build_dir=${1:-build}
cache_dir=${2:-"$build_dir/tidy-cache"}

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy: clang-tidy not installed; skipping (CI runs the real check)"
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "tidy: no compile_commands.json under $build_dir" >&2
  exit 1
fi

hash_cmd="sha256sum"
if ! command -v sha256sum >/dev/null 2>&1; then
  hash_cmd="shasum -a 256"
fi

mkdir -p "$cache_dir"

# Folded into every cache key: the profile, the tool version, and every
# in-tree header (conservative include-graph invalidation).
env_hash=$( { clang-tidy --version
              cat .clang-tidy
              find src tools bench -name '*.hpp' -type f | LC_ALL=C sort \
                | xargs cat
            } | $hash_cmd | cut -d' ' -f1 )

sources=$(find src tools bench -name '*.cpp' -type f | LC_ALL=C sort)

total=0
analysed=0
failed=0
for source in $sources; do
  total=$((total + 1))
  file_hash=$( { printf '%s\n' "$env_hash"; cat "$source"; } \
    | $hash_cmd | cut -d' ' -f1 )
  marker="$cache_dir/$(printf '%s' "$source" | tr '/' '_').$file_hash"
  if [ -f "$marker" ]; then
    continue
  fi
  analysed=$((analysed + 1))
  echo "tidy: $source"
  if clang-tidy -p "$build_dir" --quiet "$source"; then
    # Drop stale markers for this source before writing the fresh one.
    rm -f "$cache_dir/$(printf '%s' "$source" | tr '/' '_')".*
    : > "$marker"
  else
    failed=$((failed + 1))
  fi
done

echo "tidy: $total sources, $analysed analysed, $((total - analysed)) cached, $failed failed"
if [ "$failed" -gt 0 ]; then
  exit 1
fi
