#!/usr/bin/env sh
# Chaos smoke: `rsp_cli dse --workers <w>` must stay byte-identical to
# single-process `rsp_cli dse` while the worker misbehaves on a scripted
# schedule (`--fault-plan`, see docs/DISTRIBUTED.md). Each scenario runs
# the full paper-domain DSE against one worker executing a checked-in
# fault plan:
#
#   at=2:drop      the worker drops its connection on the first shard; the
#                  coordinator must quarantine it, health-probe it back and
#                  finish the run (the re-admission line is asserted);
#   at=2:truncate  a reply cut mid-line, then the connection closes;
#   at=3:garbage   a non-JSON line injected before a real reply;
#   at=3:delay=40  a 40 ms stall inside the request timeout;
#   seed=7:count=2 two pseudo-random recoverable faults (deterministic:
#                  same seed, same plan, any platform);
#   at=2:refuse    an in-band {"ok": false} rejection — deliberately fatal,
#                  the run must abort with a nonzero exit.
#
# A diverging plan is appended to $CHAOS_ARTIFACT_DIR/chaos_failed_plans.txt
# (the CI artifact) before the script exits nonzero.
#
#   scripts/chaos_smoke.sh <rsp_cli binary>
set -eu

cli=$1
workdir=$(mktemp -d)
artifact_dir=${CHAOS_ARTIFACT_DIR:-$workdir}
mkdir -p "$artifact_dir"
worker_pid=
cleanup() {
  if [ -n "$worker_pid" ]; then
    kill "$worker_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

# Reference: the single-process explorer over the full paper domain.
"$cli" dse > "$workdir/expect" 2> "$workdir/expect.log"

start_worker() {
  # $1 = slot name, $2 = fault plan. Ephemeral TCP port, READY <addr>.
  "$cli" worker 127.0.0.1:0 --threads 2 --fault-plan "$2" \
    > "$workdir/$1.ready" 2> "$workdir/$1.log" &
  worker_pid=$!
}

wait_ready() {
  # $1 = slot name. Echoes the resolved address from the READY line.
  i=0
  while ! grep -q "^READY " "$workdir/$1.ready" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "chaos_smoke: worker $1 never printed READY" >&2
      cat "$workdir/$1.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  awk '/^READY /{print $2; exit}' "$workdir/$1.ready"
}

fail_plan() {
  # $1 = scenario name, $2 = fault plan, $3 = message. Records the failing
  # plan for the CI artifact upload, dumps the logs and exits nonzero.
  echo "$2" >> "$artifact_dir/chaos_failed_plans.txt"
  echo "chaos_smoke: plan '$2' ($1): $3" >&2
  echo "--- coordinator log ---" >&2
  cat "$workdir/$1.coord.log" >&2 || true
  echo "--- worker log ---" >&2
  cat "$workdir/$1.log" >&2 || true
  exit 1
}

stop_worker() {
  if [ -n "$worker_pid" ]; then
    kill "$worker_pid" 2>/dev/null || true
    wait "$worker_pid" 2>/dev/null || true
  fi
  worker_pid=
}

run_recoverable() {
  # $1 = scenario name, $2 = fault plan. The run must succeed and match
  # the single-process reference byte for byte.
  start_worker "$1" "$2"
  addr=$(wait_ready "$1")
  rc=0
  "$cli" dse --workers "$addr" \
    > "$workdir/$1.got" 2> "$workdir/$1.coord.log" || rc=$?
  stop_worker
  if [ "$rc" -ne 0 ]; then
    fail_plan "$1" "$2" "dse --workers exited $rc"
  fi
  if ! cmp -s "$workdir/expect" "$workdir/$1.got"; then
    diff "$workdir/expect" "$workdir/$1.got" >&2 || true
    fail_plan "$1" "$2" "output diverges from single-process dse"
  fi
}

run_recoverable drop "at=2:drop"
# The drop scenario must have gone through quarantine AND re-admission —
# the worker process never died, so the health probe has to win it back.
if ! grep -q "re-admitted to the run" "$workdir/drop.coord.log"; then
  fail_plan drop "at=2:drop" "coordinator never re-admitted the worker"
fi

run_recoverable truncate "at=2:truncate"
run_recoverable garbage "at=3:garbage"
run_recoverable delay "at=3:delay=40"
run_recoverable seeded "seed=7:count=2"

# An in-band refusal is deterministic misbehaviour, not a transport fault:
# the coordinator must abort instead of retrying or falling back.
start_worker refuse "at=2:refuse"
addr=$(wait_ready refuse)
rc=0
"$cli" dse --workers "$addr" \
  > "$workdir/refuse.got" 2> "$workdir/refuse.coord.log" || rc=$?
stop_worker
if [ "$rc" -eq 0 ]; then
  fail_plan refuse "at=2:refuse" "dse --workers succeeded; a refusal must abort"
fi

echo "chaos_smoke: 5 recoverable plans byte-identical to single-process" \
  "dse (worker re-admitted after at=2:drop); at=2:refuse aborted as designed"
