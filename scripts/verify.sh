#!/usr/bin/env sh
# Tier-1 verify: configure, build, and run the full test suite from a clean
# tree, exactly as ROADMAP.md specifies. Run from anywhere; builds into
# <repo>/build.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure --no-tests=error -j "$(nproc 2>/dev/null || echo 4)"
