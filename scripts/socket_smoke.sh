#!/usr/bin/env sh
# Socket-mode smoke: `rsp_cli serve --listen <unix socket>` must serve two
# CONCURRENT clients — which reuse each other's request ids, proving id
# scopes are per-connection — with response sets byte-identical to the
# stdin/stdout serve path, and must shut down gracefully on SIGTERM
# (exit 0 after draining). Responses complete out of order on both
# transports, so each set is compared sorted.
#
#   scripts/socket_smoke.sh <rsp_cli binary>
set -eu

cli=$1
workdir=$(mktemp -d)
server_pid=
cleanup() {
  if [ -n "$server_pid" ]; then
    kill "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

sock="$workdir/rsp.sock"

cat > "$workdir/requests_a.ndjson" <<'EOF'
{"protocol_version": 2, "id": "r1", "op": "eval", "kernel": "SAD"}
{"protocol_version": 2, "id": "r2", "op": "ping", "delay_ms": 50}
{"protocol_version": 2, "id": "r3", "op": "list"}
EOF
cat > "$workdir/requests_b.ndjson" <<'EOF'
{"protocol_version": 2, "id": "r1", "op": "eval", "kernel": "MVM"}
{"protocol_version": 2, "id": "r2", "op": "map", "kernel": "MVM", "arch": "RSP#2"}
{"protocol_version": 2, "id": "r3", "op": "ping"}
EOF

# Reference: the same streams through the plain stdin/stdout serve path.
"$cli" serve --threads 2 < "$workdir/requests_a.ndjson" \
  | sort > "$workdir/expect_a"
"$cli" serve --threads 2 < "$workdir/requests_b.ndjson" \
  | sort > "$workdir/expect_b"

"$cli" serve --listen "$sock" --threads 2 --max-connections 8 \
  > "$workdir/server.ready" 2> "$workdir/server.log" &
server_pid=$!

# The server prints a machine-parseable "READY <resolved-addr>" line per
# listener once it is accepting — no connect-polling needed.
i=0
while ! grep -q "^READY " "$workdir/server.ready" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "socket_smoke: server never printed READY for $sock" >&2
    cat "$workdir/server.log" >&2
    exit 1
  fi
  sleep 0.1
done
ready_addr=$(awk '/^READY /{print $2; exit}' "$workdir/server.ready")
if [ "$ready_addr" != "$sock" ]; then
  echo "socket_smoke: READY reported '$ready_addr', expected '$sock'" >&2
  exit 1
fi

# Two clients at once, overlapping ids.
"$cli" connect "$sock" < "$workdir/requests_a.ndjson" \
  | sort > "$workdir/got_a" &
client_a=$!
"$cli" connect "$sock" < "$workdir/requests_b.ndjson" \
  | sort > "$workdir/got_b" &
client_b=$!
wait "$client_a"
wait "$client_b"

kill -TERM "$server_pid"
server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=
if [ "$server_rc" -ne 0 ]; then
  echo "socket_smoke: server exited $server_rc on SIGTERM" >&2
  cat "$workdir/server.log" >&2
  exit 1
fi

for side in a b; do
  if ! cmp -s "$workdir/expect_$side" "$workdir/got_$side"; then
    echo "socket_smoke: client $side diverges from the stdin serve path" >&2
    diff "$workdir/expect_$side" "$workdir/got_$side" >&2 || true
    exit 1
  fi
  if [ ! -s "$workdir/got_$side" ]; then
    echo "socket_smoke: client $side produced no output" >&2
    exit 1
  fi
done

echo "socket_smoke: 2 concurrent clients byte-identical to the stdin path," \
  "graceful SIGTERM shutdown ($(wc -c < "$workdir/got_a" | tr -d ' ')+$(wc \
  -c < "$workdir/got_b" | tr -d ' ') bytes compared)"
