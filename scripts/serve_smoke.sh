#!/usr/bin/env sh
# Serve-mode smoke: the same v1 batch document answered through
# `rsp_cli batch <file>` and through a v1 array line piped into
# `rsp_cli serve` must produce byte-identical results. The trailing
# "runtime" stats block is scheduling-dependent (cross-request fan-out)
# and stripped before the comparison.
#
#   scripts/serve_smoke.sh <rsp_cli binary> <requests.json>
set -eu

cli=$1
requests=$2

strip_runtime() {
  sed 's/,"runtime":.*//'
}

batch_results=$("$cli" batch "$requests" --threads 2 | strip_runtime)
serve_results=$(tr '\n' ' ' < "$requests" | "$cli" serve --threads 2 \
  | strip_runtime)

if [ -z "$batch_results" ]; then
  echo "serve_smoke: batch produced no output" >&2
  exit 1
fi
if [ "$batch_results" != "$serve_results" ]; then
  echo "serve_smoke: serve and batch results diverge" >&2
  printf 'batch: %s\nserve: %s\n' "$batch_results" "$serve_results" >&2
  exit 1
fi
echo "serve_smoke: serve results byte-identical to batch" \
  "($(printf %s "$batch_results" | wc -c) bytes compared)"
