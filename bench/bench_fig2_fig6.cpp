// Regenerates paper Figures 2 and 6 (and the Fig. 3 sizing claim):
// the loop-pipelined schedule of an order-4 matrix multiplication on a 4×4
// array, first with per-PE multipliers (Fig. 2), then with shared 2-stage
// pipelined multipliers (Fig. 6). The headline: un-pipelined execution
// peaks at 8 concurrent multiplications, while the pipelined schedule fits
// 4 shared multipliers with zero stalls.
#include <iostream>

#include "arch/presets.hpp"
#include "bench_common.hpp"
#include "kernels/matmul.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/pretty.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"

int main() {
  using namespace rsp;
  bench::print_header("Figures 2/6: matrix multiplication of order 4, loop "
                      "pipelining");

  const kernels::Workload w = kernels::make_matmul(4);
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram program =
      mapper.map(w.kernel, w.hints, w.reduction);
  const sched::ContextScheduler scheduler;

  // ---- Fig. 2: base array, every PE owns a multiplier ----
  const arch::Architecture base = arch::base_architecture(4, 4);
  const sched::ConfigurationContext fig2 = scheduler.schedule(program, base);
  sched::require_legal(fig2);
  std::cout << "Fig. 2 — base schedule (rows = array columns):\n"
            << render_schedule(fig2) << "cycles: " << fig2.length()
            << "  |  peak concurrent multiplications: "
            << fig2.max_critical_issues_per_cycle()
            << "  (paper: 8 multipliers needed, Fig. 3)\n\n";

  // ---- Fig. 6: shared multipliers pipelined into two stages ----
  const arch::Architecture rsp =
      arch::custom_architecture("RSP-2stage", 4, 4, 1, 0, 2);  // 4 units
  const sched::ConfigurationContext fig6 = scheduler.schedule(program, rsp);
  sched::require_legal(fig6);
  const sched::PerfPoint perf = sched::measure(scheduler, program, rsp);
  std::cout << "Fig. 6 — 4 shared 2-stage multipliers (1*/2* = stages):\n"
            << render_schedule(fig6) << "cycles: " << fig6.length()
            << "  |  RS stalls: " << perf.stalls
            << "  (paper: only 4 multipliers, no stall)\n\n";

  // ---- Fig. 3 claim: the un-pipelined design needs twice the units ----
  const sched::PerfPoint rs4 = sched::measure(
      scheduler, program, arch::custom_architecture("RS-4u", 4, 4, 1, 0, 1));
  const sched::PerfPoint rs8 = sched::measure(
      scheduler, program, arch::custom_architecture("RS-8u", 4, 4, 2, 0, 1));
  util::Table t({"Design", "multipliers", "cycles", "stalls",
                 "peak issue demand"});
  auto peak = [&](const arch::Architecture& a) {
    return scheduler.schedule(program, a).max_critical_issues_per_cycle();
  };
  t.add_row({"Base (per-PE)", "16", std::to_string(fig2.length()), "-",
             std::to_string(fig2.max_critical_issues_per_cycle())});
  t.add_row({"RS, 2/row", "8", std::to_string(rs8.cycles),
             std::to_string(rs8.stalls),
             std::to_string(peak(arch::custom_architecture("RS8", 4, 4, 2, 0, 1)))});
  t.add_row({"RS, 1/row", "4", std::to_string(rs4.cycles),
             std::to_string(rs4.stalls),
             std::to_string(peak(arch::custom_architecture("RS4", 4, 4, 1, 0, 1)))});
  t.add_row({"RSP, 1/row (2-stage)", "4", std::to_string(perf.cycles),
             std::to_string(perf.stalls),
             std::to_string(fig6.max_critical_issues_per_cycle())});
  std::cout << t.render()
            << "\nThe base schedule's intrinsic demand peaks at 8 concurrent"
               " multiplications\n(paper Fig. 3: 8 multipliers for 16 PEs);"
               " with the 2-stage pipelined multiplier\nthe issuing PE"
               " occupies both stages, the column bursts destagger, and the"
               "\npeak falls to 4 — half the units sustain the loop with no"
               " stall (Fig. 6).\nOur explicit bus model serialises operand"
               " loads, so absolute cycle counts are\nlonger than the"
               " figure's idealised 8-cycle window; the structure matches.\n";
  return 0;
}
