// Regenerates paper Figures 7/8 as an executable exploration (ablation A1):
// sweeps the RSP parameter space over the Fig. 8 sharing topologies and
// beyond (units per row 0..4 × units per column 0..4 × stages 1..2) on the
// full nine-kernel domain, prints every candidate with its eq. (2) cost
// estimate and performance bound, marks rejected/Pareto/selected points,
// and reports the chosen architecture.
#include <iostream>

#include "bench_common.hpp"
#include "dse/explorer.hpp"
#include "kernels/registry.hpp"

int main() {
  using namespace rsp;
  bench::print_header(
      "Figures 7/8: RSP design space exploration over the kernel domain");

  dse::ExplorerConfig config;
  config.max_units_per_row = 4;
  config.max_units_per_col = 4;
  config.max_stages = 2;
  dse::Explorer explorer(arch::ArraySpec{}, config);
  const dse::ExplorationResult result =
      explorer.explore(kernels::paper_suite());

  util::Table table({"Design", "Area est (eq.2)", "Clock (ns)", "Est cycles",
                     "Exact cycles", "Stalls", "Status"});
  util::CsvWriter csv({"design", "area_estimate", "clock_ns",
                       "estimated_cycles", "exact_cycles", "status"});
  int shown = 0;
  for (const dse::Candidate& c : result.candidates) {
    std::string status = c.rejected   ? "rejected"
                         : c.pareto   ? "PARETO"
                                      : "dominated";
    if (result.selected >= 0 &&
        &c == &result.candidates[static_cast<std::size_t>(result.selected)])
      status = "SELECTED";
    csv.add_row({c.point.label(), util::format_trimmed(c.area_estimate, 0),
                 util::format_trimmed(c.clock_ns, 2),
                 std::to_string(c.estimated_cycles),
                 c.evaluated ? std::to_string(c.exact_cycles) : "",
                 status});
    // Keep the printed table readable: all Fig. 8 topologies + every
    // Pareto/selected/rejected-for-cost point.
    const bool fig8_point =
        (c.point.stages <= 2) &&
        ((c.point.units_per_row == 1 && c.point.units_per_col == 0) ||
         (c.point.units_per_row == 2 && c.point.units_per_col <= 2));
    if (!fig8_point && !c.pareto && !c.point.is_base() && shown > 40) continue;
    ++shown;
    table.add_row({c.point.label(), util::format_trimmed(c.area_estimate, 0),
                   util::format_trimmed(c.clock_ns, 2),
                   std::to_string(c.estimated_cycles),
                   c.evaluated ? std::to_string(c.exact_cycles) : "-",
                   c.evaluated ? std::to_string(c.total_stalls) : "-",
                   c.pareto ? status + " *" : status});
  }
  std::cout << table.render() << "\n";

  const dse::Candidate& best = result.best();
  std::cout << "Selected: " << best.point.label() << " ("
            << best.point.units_per_row << " unit(s)/row + "
            << best.point.units_per_col << "/col, " << best.point.stages
            << "-stage)\n"
            << "  area "
            << util::format_trimmed(best.area_synthesized, 0)
            << " slices vs base "
            << util::format_trimmed(result.base_area, 0) << " ("
            << util::format_trimmed(
                   100.0 * (result.base_area - best.area_synthesized) /
                       result.base_area, 1)
            << "% smaller)\n"
            << "  domain time "
            << util::format_trimmed(best.exact_time_ns, 0) << " ns vs base "
            << util::format_trimmed(result.base_time_ns, 0) << " ns ("
            << util::format_trimmed(
                   100.0 * (result.base_time_ns - best.exact_time_ns) /
                       result.base_time_ns, 1)
            << "% faster)\n"
            << "\nThe RS-only points (stages=1) are never selected: they are"
               " smaller but always\nslower than base; pipelining is what"
               " turns sharing into a win — the paper's thesis.\n";
  bench::maybe_write_csv(csv, "fig8_dse");
  return 0;
}
