// Regenerates paper Table 5: performance of the DSP kernels (2D-FDCT, SAD,
// MVM, FFT multiplication loop) on Base, RS#1..4 and RSP#1..4.
#include "bench_perf_tables.hpp"
#include "kernels/registry.hpp"

int main() {
  rsp::bench::run_performance_table(
      rsp::kernels::dsp_suite(),
      "Table 5: DSP kernels across architectures", "table5");
  std::cout <<
      "Shape checks (paper Table 5 / §5.3):\n"
      "  * SAD (no multiplications) gains the most from RSP — the paper's\n"
      "    headline 35.7% with RSP#1 — because the pipelined multiplier only\n"
      "    raises the clock and never costs extra cycles.\n"
      "  * 2D-FDCT is the only kernel that still stalls on RS#2/RSP#1's\n"
      "    sharing budget; RSP#2 supports all kernels stall-free.\n";
  return 0;
}
