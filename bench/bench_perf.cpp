// Ablation A3: toolchain throughput (google-benchmark).
//
// Measures the speed of the pieces a user iterates with during design space
// exploration: kernel unrolling, mapping, scheduling per architecture
// class, legality checking, cycle simulation, and the fast performance
// estimate that makes the exploration loop cheap.
#include <benchmark/benchmark.h>

#include "arch/presets.hpp"
#include "core/estimate.hpp"
#include "ir/unroll.hpp"
#include "kernels/registry.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine.hpp"

namespace {

using namespace rsp;

const kernels::Workload& workload(int index) {
  static const std::vector<kernels::Workload> suite = kernels::paper_suite();
  return suite[static_cast<std::size_t>(index) % suite.size()];
}

void BM_Unroll(benchmark::State& state) {
  const kernels::Workload& w = workload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ir::UnrolledGraph u(w.kernel);
    benchmark::DoNotOptimize(u.size());
  }
  state.SetLabel(w.name);
}
BENCHMARK(BM_Unroll)->DenseRange(0, 8);

void BM_Map(benchmark::State& state) {
  const kernels::Workload& w = workload(static_cast<int>(state.range(0)));
  const sched::LoopPipeliner mapper(w.array);
  for (auto _ : state) {
    sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
    benchmark::DoNotOptimize(p.size());
  }
  state.SetLabel(w.name);
}
BENCHMARK(BM_Map)->DenseRange(0, 8);

void BM_ScheduleBase(benchmark::State& state) {
  const kernels::Workload& w = workload(static_cast<int>(state.range(0)));
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
  const sched::ContextScheduler s;
  const arch::Architecture a = arch::base_architecture();
  for (auto _ : state) {
    auto ctx = s.schedule(p, a);
    benchmark::DoNotOptimize(ctx.length());
  }
  state.SetLabel(w.name);
}
BENCHMARK(BM_ScheduleBase)->DenseRange(0, 8);

void BM_ScheduleRsp(benchmark::State& state) {
  const kernels::Workload& w = workload(static_cast<int>(state.range(0)));
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
  const sched::ContextScheduler s;
  const arch::Architecture a = arch::rsp_architecture(2);
  for (auto _ : state) {
    auto ctx = s.schedule(p, a);
    benchmark::DoNotOptimize(ctx.length());
  }
  state.SetLabel(w.name);
}
BENCHMARK(BM_ScheduleRsp)->DenseRange(0, 8);

void BM_Legality(benchmark::State& state) {
  const kernels::Workload& w = workload(static_cast<int>(state.range(0)));
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
  const sched::ContextScheduler s;
  const auto ctx = s.schedule(p, arch::rsp_architecture(2));
  for (auto _ : state) {
    auto rep = sched::check_legality(ctx);
    benchmark::DoNotOptimize(rep.ok);
  }
  state.SetLabel(w.name);
}
BENCHMARK(BM_Legality)->DenseRange(0, 8);

void BM_Simulate(benchmark::State& state) {
  const kernels::Workload& w = workload(static_cast<int>(state.range(0)));
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
  const sched::ContextScheduler s;
  const auto ctx = s.schedule(p, arch::rsp_architecture(2));
  const sim::Machine machine;
  for (auto _ : state) {
    ir::Memory mem;
    w.setup(mem);
    auto result = machine.run(ctx, mem);
    benchmark::DoNotOptimize(result.stats.pe_issues);
  }
  state.SetLabel(w.name);
}
BENCHMARK(BM_Simulate)->DenseRange(0, 8);

void BM_FastEstimate(benchmark::State& state) {
  const kernels::Workload& w = workload(static_cast<int>(state.range(0)));
  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
  const sched::ContextScheduler s;
  const auto base_ctx = s.schedule(p, arch::base_architecture());
  const arch::Architecture target = arch::rsp_architecture(1);
  for (auto _ : state) {
    auto est = core::estimate_performance(base_ctx, target);
    benchmark::DoNotOptimize(est.estimated_cycles());
  }
  state.SetLabel(w.name);
}
BENCHMARK(BM_FastEstimate)->DenseRange(0, 8);

}  // namespace

BENCHMARK_MAIN();
