// Regenerates paper Table 2: RTL synthesis of the nine architectures
// (Base, RS#1..4, RSP#1..4 on the 8×8 array — the four Fig. 8 sharing
// topologies, plain and pipelined). Measured = our synthesis cost model;
// paper values in parentheses.
#include <iostream>

#include "arch/presets.hpp"
#include "bench_common.hpp"
#include "synth/paper_reference.hpp"
#include "synth/synthesis.hpp"

int main() {
  using namespace rsp;
  bench::print_header(
      "Table 2: synthesis result of various architectures (measured vs paper)");

  const synth::SynthesisModel model;
  util::Table table({"Arch", "PE area", "SW area", "Array area", "Area R(%)",
                     "PE delay", "SW delay", "Clock (ns)", "Delay R(%)"});
  util::CsvWriter csv({"arch", "pe_area", "sw_area", "array_area",
                       "area_reduction_pct", "pe_delay_ns", "sw_delay_ns",
                       "clock_ns", "delay_reduction_pct"});

  for (const arch::Architecture& a : arch::standard_suite()) {
    const synth::SynthesisReport r = model.report(a);
    const synth::paper::SynthesisRow& p = synth::paper::table2_row(a.name);
    table.add_row({a.name, util::format_trimmed(r.pe_area, 0),
                   util::format_trimmed(r.switch_area, 0),
                   bench::vs_paper(r.array_area, p.array_area, 0),
                   bench::vs_paper(r.area_reduction, p.area_reduction),
                   util::format_trimmed(r.pe_delay, 1),
                   util::format_trimmed(r.switch_delay, 1),
                   bench::vs_paper(r.clock, p.clock),
                   bench::vs_paper(r.delay_reduction, p.delay_reduction)});
    csv.add_row({a.name, util::format_trimmed(r.pe_area, 1),
                 util::format_trimmed(r.switch_area, 1),
                 util::format_trimmed(r.array_area, 1),
                 util::format_fixed(r.area_reduction, 2),
                 util::format_trimmed(r.pe_delay, 2),
                 util::format_trimmed(r.switch_delay, 2),
                 util::format_fixed(r.clock, 2),
                 util::format_fixed(r.delay_reduction, 2)});
  }

  std::cout << table.render();
  std::cout <<
      "\nShape checks (paper §5.2):\n"
      "  * RS#1 is the smallest array (paper: −42.8% area) but RS clocks are\n"
      "    *slower* than base — the combinational multiplier now also crosses\n"
      "    the bus switch.\n"
      "  * RSP clocks are ~35% faster: the pipelined multiplier stage no\n"
      "    longer dominates; the mux+ALU+shift path (15.3 ns) sets the clock.\n"
      "  * Area grows and delay worsens monotonically from #1 to #4 as the\n"
      "    switch fan-out grows.\n";
  bench::maybe_write_csv(csv, "table2");
  return 0;
}
