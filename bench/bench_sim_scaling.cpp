// Simulator scaling bench: what does the PR-6 event-driven core buy over
// the dense per-cycle reference loop, and how does batched multi-config
// simulation scale on the thread pool?
//
// The gated workload is a deliberately sparse schedule — the shape the
// event engine exists for: a long configuration (65536 cycles) in which
// only one cycle in 512 issues anything. The dense loop must visit all
// 65536 cycles and allocate its per-cycle occupancy maps either way; the
// event engine compiles the context once into a SimProgram and then
// touches only the ~128 active cycles. Modes:
//
//   dense              sim::Machine(kDense), measured directly
//   event              sim::Machine(kEvent): compile + run each round
//   event-precompiled  SimProgram::compile once, run() per round
//   batch              runtime::simulate_batch over a busy schedule,
//                      kBatchJobs memories on a 4-worker pool, vs the
//                      same compile-once-run-all work done serially
//
// Expected shape: event beats dense by well over the 1.5x acceptance bar
// on sparse schedules (the gate this binary exits on), precompiled runs
// shave the remaining compile cost, and batch adds pool scaling across
// independent memories.
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "arch/presets.hpp"
#include "bench_common.hpp"
#include "ir/interp.hpp"
#include "runtime/sim_batch.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/context.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace rsp;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Best-of-N timing: the minimum over repetitions is the standard defence
// against scheduler noise on loaded CI runners.
template <typename Fn>
double best_of(int reps, const Fn& fn) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const Clock::time_point start = Clock::now();
    fn();
    const double elapsed = ms_since(start);
    if (rep == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

constexpr int kLength = 65536;
constexpr int kStride = 512;  // one active cycle in kStride
constexpr int kRounds = 40;
constexpr int kBatchRounds = 5;
constexpr int kBatchJobs = 32;
constexpr int kBatchThreads = 4;
constexpr int kArraySize = 64;

// Legal-by-construction schedule on the base 8x8 array: every active cycle
// (one in `stride`) issues on `rows_used` rows — two loads and one store
// per row (inside the bus budgets) plus adds chained across active cycles.
sched::ConfigurationContext make_context(const arch::Architecture& a,
                                         int length, int stride,
                                         int rows_used) {
  const int pes = rows_used * 8;
  std::vector<sched::ScheduledOp> ops;
  std::vector<int> prev(static_cast<std::size_t>(pes), -1);
  for (int t = 0; t + 1 < length; t += stride) {
    std::vector<int> next(static_cast<std::size_t>(pes), -1);
    for (int pe = 0; pe < pes; ++pe) {
      const arch::PeCoord coord{pe / 8, pe % 8};
      sched::ScheduledOp op;
      op.pe = coord;
      op.cycle = t;
      if (coord.col < 2) {
        op.kind = ir::OpKind::kLoad;
        op.array = "m";
        op.address = (t / stride + pe) % kArraySize;
      } else if (coord.col == 2) {
        op.kind = ir::OpKind::kStore;
        op.array = "m";
        op.address = (t / stride + pe * 7) % kArraySize;
        op.operands = {prev[static_cast<std::size_t>(pe)] >= 0
                           ? sched::ProgOperand{prev[static_cast<std::size_t>(
                                                    pe)],
                                                0}
                           : sched::ProgOperand{-1, t + pe}};
      } else if (prev[static_cast<std::size_t>(pe)] >= 0) {
        op.kind = ir::OpKind::kAdd;
        op.operands = {
            sched::ProgOperand{prev[static_cast<std::size_t>(pe)], 0},
            sched::ProgOperand{-1, pe + 1}};
      } else {
        op.kind = ir::OpKind::kConst;
        op.imm = 3 * pe + 1;
      }
      next[static_cast<std::size_t>(pe)] =
          ir::produces_value(op.kind) ? static_cast<int>(ops.size()) : -1;
      ops.push_back(std::move(op));
    }
    prev = next;
  }
  // Pad the schedule to exactly `length` cycles of dense scanning.
  sched::ScheduledOp tail;
  tail.kind = ir::OpKind::kNop;
  tail.pe = {7, 7};
  tail.cycle = length - 1;
  ops.push_back(tail);
  return sched::ConfigurationContext(a, std::move(ops));
}

ir::Memory make_memory() {
  ir::Memory mem;
  mem.allocate("m", kArraySize);
  for (int i = 0; i < kArraySize; ++i) mem.write("m", i, 5 * i - 11);
  return mem;
}

}  // namespace

int main() {
  const arch::Architecture a = arch::base_architecture();
  const sched::ConfigurationContext context =
      make_context(a, kLength, kStride, /*rows_used=*/2);
  const sim::SimProgram program = sim::SimProgram::compile(context);

  bench::print_header("Simulator scaling: dense vs event-driven core");
  std::cout << context.size() << " ops over " << context.length()
            << " cycles, " << program.active_cycle_count()
            << " active cycles, " << kRounds << " rounds\n";

  // Correctness pre-flight: both engines must agree before being timed.
  {
    ir::Memory dense_mem = make_memory(), event_mem = make_memory();
    const sim::SimResult dense =
        sim::Machine(ir::DatapathMode::kExact, sim::SimEngine::kDense)
            .run(context, dense_mem);
    const sim::SimResult event =
        sim::Machine(ir::DatapathMode::kExact, sim::SimEngine::kEvent)
            .run(context, event_mem);
    if (!(dense == event) || !(dense_mem == event_mem)) {
      std::cerr << "engines disagree on the bench schedule; aborting\n";
      return 1;
    }
  }

  util::Table table({"Mode", "Time(ms)", "Speedup"});
  util::CsvWriter csv({"mode", "time_ms", "speedup"});
  util::Json json_rows = util::Json::array();
  const auto record = [&](const std::string& mode, double time_ms,
                          double speedup) {
    table.add_row({mode, util::format_trimmed(time_ms, 2),
                   util::format_trimmed(speedup, 2)});
    csv.add_row({mode, util::format_trimmed(time_ms, 3),
                 util::format_trimmed(speedup, 3)});
    util::Json row = util::Json::object();
    row.set("mode", mode).set("time_ms", time_ms).set("speedup", speedup);
    json_rows.push(std::move(row));
  };

  const sim::Machine dense_machine(ir::DatapathMode::kExact,
                                   sim::SimEngine::kDense);
  const double dense_ms = best_of(3, [&] {
    for (int r = 0; r < kRounds; ++r) {
      ir::Memory mem = make_memory();
      dense_machine.run(context, mem);
    }
  });
  record("dense", dense_ms, 1.0);

  const sim::Machine event_machine(ir::DatapathMode::kExact,
                                   sim::SimEngine::kEvent);
  const double event_ms = best_of(3, [&] {
    for (int r = 0; r < kRounds; ++r) {
      ir::Memory mem = make_memory();
      event_machine.run(context, mem);
    }
  });
  const double event_speedup = dense_ms / event_ms;
  record("event", event_ms, event_speedup);

  const double precompiled_ms = best_of(3, [&] {
    for (int r = 0; r < kRounds; ++r) {
      ir::Memory mem = make_memory();
      program.run(mem);
    }
  });
  record("event-precompiled", precompiled_ms, dense_ms / precompiled_ms);

  // Batched multi-config simulation. Jobs must dwarf the fan-out cost for
  // pool scaling to mean anything, so this section runs a *busy* schedule
  // — every cycle active on all 8 rows — with kBatchJobs independent
  // memories per round: serial event baseline vs the pool fan-out. The
  // speedup column compares the two directly (serial = 1).
  const sched::ConfigurationContext busy =
      make_context(a, 1024, /*stride=*/1, /*rows_used=*/8);
  const sim::SimProgram busy_program = sim::SimProgram::compile(busy);
  std::vector<ir::Memory> memories;
  for (int j = 0; j < kBatchJobs; ++j) memories.push_back(make_memory());

  // The serial baseline mirrors simulate_batch's own work per call —
  // compile once, then run every job — so the comparison isolates the
  // pool fan-out.
  const Clock::time_point serial_batch_start = Clock::now();
  for (int r = 0; r < kBatchRounds; ++r) {
    const sim::SimProgram round_program = sim::SimProgram::compile(busy);
    for (int j = 0; j < kBatchJobs; ++j) {
      ir::Memory mem = memories[static_cast<std::size_t>(j)];
      round_program.run(mem);
    }
  }
  const double serial_batch_ms = ms_since(serial_batch_start);

  runtime::ThreadPool pool(kBatchThreads);
  runtime::SimBatchOptions options;
  options.pool = &pool;
  const Clock::time_point batch_start = Clock::now();
  for (int r = 0; r < kBatchRounds; ++r)
    runtime::simulate_batch(busy, memories, options);
  const double batch_ms = ms_since(batch_start);
  const double batch_speedup = serial_batch_ms / batch_ms;
  record("batch-serial(" + std::to_string(kBatchJobs) + " busy jobs)",
         serial_batch_ms, 1.0);
  record("batch-pool(" + std::to_string(kBatchThreads) + " threads)",
         batch_ms, batch_speedup);

  std::cout << table.render();
  bench::maybe_write_csv(csv, "bench_sim_scaling");

  // BENCH_sim_scaling.json: the regression-tracking document CI archives
  // alongside the runtime/prepare scaling twins.
  util::Json json_doc = util::Json::object();
  json_doc.set("bench", "sim_scaling")
      .set("ops", context.size())
      .set("total_cycles", context.length())
      .set("active_cycles", program.active_cycle_count())
      .set("rounds", kRounds)
      .set("batch_jobs", kBatchJobs)
      .set("batch_threads", kBatchThreads)
      .set("hardware_threads",
           static_cast<std::int64_t>(std::thread::hardware_concurrency()))
      .set("rows", std::move(json_rows));
  util::Json summary = util::Json::object();
  summary.set("event_speedup", event_speedup)
      .set("event_speedup_target", 1.5)
      .set("batch_pool_speedup", batch_speedup);
  json_doc.set("summary", std::move(summary));
  bench::maybe_write_json(json_doc, "sim_scaling");

  // Acceptance bar: the event core must beat the dense loop >1.5x on
  // sparse schedules, compile cost included.
  std::cout << "\nevent vs dense speedup: "
            << util::format_trimmed(event_speedup, 2)
            << "x (target >1.5x), batch pool speedup "
            << util::format_trimmed(batch_speedup, 2) << "x ("
            << kBatchThreads << " threads, " << kBatchJobs << " jobs)\n";
  return event_speedup > 1.5 ? 0 : 1;
}
