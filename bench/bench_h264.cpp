// Extension bench (paper §6): the H.264 encoder loops the authors were
// porting to the template when the paper was published. Evaluates the four
// kernels across the nine architectures in the exact format of Tables 4/5.
#include <iostream>

#include "arch/presets.hpp"
#include "bench_common.hpp"
#include "core/evaluator.hpp"
#include "kernels/h264.hpp"
#include "sched/mapper.hpp"

int main() {
  using namespace rsp;
  bench::print_header(
      "Extension: H.264 encoder kernels across architectures (paper §6)");

  const core::RspEvaluator evaluator;
  const auto archs = arch::standard_suite();
  util::CsvWriter csv(
      {"kernel", "arch", "cycles", "execution_time_ns", "dr_pct", "stalls"});

  for (const kernels::Workload& w : kernels::h264_suite()) {
    const sched::LoopPipeliner mapper(w.array);
    const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
    const auto rows = evaluator.evaluate_suite(p, archs);
    util::Table table({"Arch", "cycles", "ET(ns)", "DR(%)", "stall"});
    table.set_title(w.name + " (" + std::to_string(w.kernel.trip_count()) +
                    " iterations, " + w.kernel.op_set_string() + ")");
    for (const auto& r : rows) {
      table.add_row({r.arch_name, std::to_string(r.cycles),
                     util::format_trimmed(r.execution_time_ns, 2),
                     util::format_trimmed(r.delay_reduction_percent, 2),
                     std::to_string(r.stalls)});
      csv.add_row({w.name, r.arch_name, std::to_string(r.cycles),
                   util::format_fixed(r.execution_time_ns, 2),
                   util::format_fixed(r.delay_reduction_percent, 2),
                   std::to_string(r.stalls)});
    }
    std::cout << table.render() << "\n";
  }
  std::cout <<
      "Three of the four H.264 loops are multiplier-free by design (the\n"
      "standard replaced DCT multiplications with shifts/adds), so they take\n"
      "the full ~35% RSP clock gain with zero stalls — H.264 is an even\n"
      "better domain for the RSP template than H.263, supporting the\n"
      "authors' direction in §6.\n";
  bench::maybe_write_csv(csv, "h264");
  return 0;
}
