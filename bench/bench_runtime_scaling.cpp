// Runtime scaling bench: how much faster does the exact-evaluation stage
// of the Fig. 7 DSE loop get with the parallel runtime?
//
// The workload is the paper's nine-kernel domain under the default
// explorer configuration. `rounds` repeated evaluations of the same Pareto
// survivors model a serving scenario (many exploration requests touching
// the same design points per process). Modes:
//
//   serial       the dse::Explorer step-5 loop, measured directly
//   pool         fan-out over a ThreadPool, no memoization
//   pool+cache   fan-out plus the EvalCache memo table
//
// Expected shape: pool scales with physical cores on cold evaluations;
// pool+cache collapses repeated rounds to lookups, which is where the
// >1.5x win comes from even on small machines.
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "dse/explorer.hpp"
#include "kernels/registry.hpp"
#include "runtime/eval_cache.hpp"
#include "runtime/parallel_explorer.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/report.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace rsp;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Setup {
  dse::PreparedExploration prep;
  std::vector<std::size_t> survivors;
  /// Survivor candidates only, so the per-round copies in the pool and
  /// serial paths move the same amount of data.
  dse::ExplorationResult pareto_only;
};

// One serial pass over the Pareto survivors — the exact step-5 loop.
void run_serial_round(const Setup& setup) {
  const sched::ContextScheduler scheduler;
  for (const std::size_t index : setup.survivors) {
    dse::Candidate cand = setup.prep.result.candidates[index];
    dse::evaluate_exact(cand, setup.prep.programs.size(),
                        [&](std::size_t k, const arch::Architecture& a) {
                          return sched::measure(
                              scheduler, setup.prep.programs[k], a);
                        });
  }
}

// One pooled pass: the production step-5 driver (a task per (survivor,
// kernel), optionally memoized) on a fresh copy of the survivor set.
void run_pool_round(const Setup& setup, runtime::ThreadPool& pool,
                    runtime::EvalCache* cache) {
  dse::ExplorationResult result = setup.pareto_only;
  runtime::evaluate_pareto_exact(setup.prep.programs,
                                 setup.prep.kernel_names, result, pool,
                                 cache);
}

}  // namespace

int main() {
  const std::vector<kernels::Workload> domain = kernels::paper_suite();
  const dse::Explorer explorer((arch::ArraySpec()));

  Setup setup;
  setup.prep = explorer.prepare(domain);
  for (std::size_t i = 0; i < setup.prep.result.candidates.size(); ++i)
    if (setup.prep.result.candidates[i].pareto) {
      setup.survivors.push_back(i);
      setup.pareto_only.candidates.push_back(
          setup.prep.result.candidates[i]);
    }

  constexpr int kRounds = 3;
  bench::print_header("Runtime scaling: exact evaluation, paper domain");
  std::cout << setup.survivors.size() << " Pareto survivors x "
            << setup.prep.programs.size() << " kernels, " << kRounds
            << " rounds (repeated design points)\n";

  util::Table table(
      {"Mode", "Threads", "Time(ms)", "Speedup", "Hit rate(%)"});
  util::CsvWriter csv(
      {"mode", "threads", "time_ms", "speedup", "hit_rate_percent"});
  util::Json json_rows = util::Json::array();
  const auto add_json_row = [&json_rows](const std::string& mode, int threads,
                                         double time_ms, double speedup,
                                         double hit_rate) {
    util::Json row = util::Json::object();
    row.set("mode", mode)
        .set("threads", threads)
        .set("time_ms", time_ms)
        .set("speedup", speedup)
        .set("hit_rate_percent", hit_rate);
    json_rows.push(std::move(row));
  };

  const Clock::time_point serial_start = Clock::now();
  for (int r = 0; r < kRounds; ++r) run_serial_round(setup);
  const double serial_ms = ms_since(serial_start);
  table.add_row({"serial", "1", util::format_trimmed(serial_ms, 2), "1.00",
                 "-"});
  csv.add_row({"serial", "1", util::format_trimmed(serial_ms, 3), "1.00",
               "0"});
  add_json_row("serial", 1, serial_ms, 1.0, 0.0);

  double speedup_4_threads = 0.0;
  double hit_rate_4_threads = 0.0;
  for (const bool with_cache : {false, true}) {
    for (const int threads : {1, 2, 4}) {
      runtime::ThreadPool pool(threads);
      runtime::EvalCache cache;
      const Clock::time_point start = Clock::now();
      for (int r = 0; r < kRounds; ++r)
        run_pool_round(setup, pool, with_cache ? &cache : nullptr);
      const double elapsed_ms = ms_since(start);
      const double speedup = serial_ms / elapsed_ms;
      const double hit_rate = 100.0 * cache.stats().hit_rate();
      const std::string mode = with_cache ? "pool+cache" : "pool";
      table.add_row({mode, std::to_string(threads),
                     util::format_trimmed(elapsed_ms, 2),
                     util::format_trimmed(speedup, 2),
                     with_cache ? util::format_trimmed(hit_rate, 1) : "-"});
      csv.add_row({mode, std::to_string(threads),
                   util::format_trimmed(elapsed_ms, 3),
                   util::format_trimmed(speedup, 3),
                   util::format_trimmed(hit_rate, 2)});
      add_json_row(mode, threads, elapsed_ms, speedup,
                   with_cache ? hit_rate : 0.0);
      if (with_cache && threads == 4) {
        speedup_4_threads = speedup;
        hit_rate_4_threads = hit_rate;
      }
    }
  }

  std::cout << table.render();
  bench::maybe_write_csv(csv, "bench_runtime_scaling");

  // BENCH_runtime_scaling.json: the regression-tracking document CI
  // archives (speedup vs thread count, hit rate) alongside the paper-table
  // benches' CSVs.
  util::Json json_doc = util::Json::object();
  json_doc.set("bench", "runtime_scaling")
      .set("pareto_survivors",
           static_cast<std::int64_t>(setup.survivors.size()))
      .set("kernels", static_cast<std::int64_t>(setup.prep.programs.size()))
      .set("rounds", kRounds)
      .set("rows", std::move(json_rows));
  util::Json summary = util::Json::object();
  summary.set("speedup_4_threads_cached", speedup_4_threads)
      .set("hit_rate_percent", hit_rate_4_threads)
      .set("speedup_target", 1.5);
  json_doc.set("summary", std::move(summary));
  bench::maybe_write_json(json_doc, "runtime_scaling");

  // The acceptance bar for the runtime subsystem: repeated design points
  // must be served >1.5x faster at 4 threads with a warm memo cache.
  std::cout << "\n4-thread pool+cache speedup: "
            << util::format_trimmed(speedup_4_threads, 2) << "x (target >1.5x), "
            << "cache hit rate " << util::format_trimmed(hit_rate_4_threads, 1)
            << "% (target >0%)\n";
  return speedup_4_threads > 1.5 && hit_rate_4_threads > 0.0 ? 0 : 1;
}
