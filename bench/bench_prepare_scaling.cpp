// Prepare scaling bench: how much faster does the serial front-end of the
// Fig. 7 DSE loop — steps 1–4, initial mapping + base scheduling,
// parameter enumeration, estimation and Pareto filtering — get with the
// parallel runtime?
//
// The workload is the paper's nine-kernel domain under the default
// explorer configuration. `rounds` repeated prepares of the same domain
// model a serving scenario (many dse/map requests touching the same
// kernels per process). Modes:
//
//   serial       dse::Explorer::prepare, measured directly
//   pool         runtime::prepare_parallel, no memoization
//   pool+cache   prepare_parallel plus the MappingCache memo table
//
// Expected shape: pool scales steps 2–3 with physical cores; pool+cache
// additionally collapses the repeated step-1 mapping work to shared_ptr
// copies, which is where the >1.5x win comes from even on small machines.
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "dse/explorer.hpp"
#include "kernels/registry.hpp"
#include "runtime/mapping_cache.hpp"
#include "runtime/parallel_explorer.hpp"
#include "runtime/thread_pool.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace rsp;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main() {
  const std::vector<kernels::Workload> domain = kernels::paper_suite();
  const dse::Explorer explorer((arch::ArraySpec()));
  const std::size_t grid_points = explorer.enumerate_points().size();

  constexpr int kRounds = 3;
  bench::print_header("Prepare scaling: DSE steps 1-4, paper domain");
  std::cout << domain.size() << " kernels x " << grid_points
            << " grid points, " << kRounds << " rounds (repeated domains)\n";

  util::Table table(
      {"Mode", "Threads", "Time(ms)", "Speedup", "Hit rate(%)"});
  util::CsvWriter csv(
      {"mode", "threads", "time_ms", "speedup", "hit_rate_percent"});
  util::Json json_rows = util::Json::array();
  const auto add_json_row = [&json_rows](const std::string& mode, int threads,
                                         double time_ms, double speedup,
                                         double hit_rate) {
    util::Json row = util::Json::object();
    row.set("mode", mode)
        .set("threads", threads)
        .set("time_ms", time_ms)
        .set("speedup", speedup)
        .set("hit_rate_percent", hit_rate);
    json_rows.push(std::move(row));
  };

  const Clock::time_point serial_start = Clock::now();
  for (int r = 0; r < kRounds; ++r) explorer.prepare(domain);
  const double serial_ms = ms_since(serial_start);
  table.add_row({"serial", "1", util::format_trimmed(serial_ms, 2), "1.00",
                 "-"});
  csv.add_row({"serial", "1", util::format_trimmed(serial_ms, 3), "1.00",
               "0"});
  add_json_row("serial", 1, serial_ms, 1.0, 0.0);

  double speedup_4_threads = 0.0;
  double hit_rate_4_threads = 0.0;
  for (const bool with_cache : {false, true}) {
    for (const int threads : {1, 2, 4}) {
      runtime::ThreadPool pool(threads);
      runtime::MappingCache cache;
      const Clock::time_point start = Clock::now();
      for (int r = 0; r < kRounds; ++r)
        runtime::prepare_parallel(explorer, domain, pool,
                                  with_cache ? &cache : nullptr);
      const double elapsed_ms = ms_since(start);
      const double speedup = serial_ms / elapsed_ms;
      const double hit_rate = 100.0 * cache.stats().hit_rate();
      const std::string mode = with_cache ? "pool+cache" : "pool";
      table.add_row({mode, std::to_string(threads),
                     util::format_trimmed(elapsed_ms, 2),
                     util::format_trimmed(speedup, 2),
                     with_cache ? util::format_trimmed(hit_rate, 1) : "-"});
      csv.add_row({mode, std::to_string(threads),
                   util::format_trimmed(elapsed_ms, 3),
                   util::format_trimmed(speedup, 3),
                   util::format_trimmed(hit_rate, 2)});
      add_json_row(mode, threads, elapsed_ms, speedup,
                   with_cache ? hit_rate : 0.0);
      if (with_cache && threads == 4) {
        speedup_4_threads = speedup;
        hit_rate_4_threads = hit_rate;
      }
    }
  }

  std::cout << table.render();
  bench::maybe_write_csv(csv, "bench_prepare_scaling");

  // BENCH_prepare_scaling.json: the regression-tracking document CI
  // archives alongside BENCH_runtime_scaling.json.
  util::Json json_doc = util::Json::object();
  json_doc.set("bench", "prepare_scaling")
      .set("kernels", static_cast<std::int64_t>(domain.size()))
      .set("grid_points", static_cast<std::int64_t>(grid_points))
      .set("rounds", kRounds)
      .set("rows", std::move(json_rows));
  util::Json summary = util::Json::object();
  summary.set("speedup_4_threads_cached", speedup_4_threads)
      .set("mapping_hit_rate_percent", hit_rate_4_threads)
      .set("speedup_target", 1.5)
      .set("hit_rate_target_percent", 50.0);
  json_doc.set("summary", std::move(summary));
  bench::maybe_write_json(json_doc, "prepare_scaling");

  // The acceptance bar for the parallel front-end: repeated domains must
  // be prepared >1.5x faster at 4 threads with the mapping cache serving
  // more than half of the step-1 requests.
  std::cout << "\n4-thread pool+cache speedup: "
            << util::format_trimmed(speedup_4_threads, 2)
            << "x (target >1.5x), mapping hit rate "
            << util::format_trimmed(hit_rate_4_threads, 1)
            << "% (target >50%)\n";
  return speedup_4_threads > 1.5 && hit_rate_4_threads > 50.0 ? 0 : 1;
}
