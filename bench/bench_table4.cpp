// Regenerates paper Table 4: performance of the Livermore-loop kernels
// (Hydro, ICCG, Tri-diagonal, Inner product, State) on Base, RS#1..4 and
// RSP#1..4.
#include "bench_perf_tables.hpp"
#include "kernels/registry.hpp"

int main() {
  rsp::bench::run_performance_table(
      rsp::kernels::livermore_suite(),
      "Table 4: Livermore loop kernels across architectures", "table4");
  std::cout <<
      "Shape checks (paper Table 4):\n"
      "  * RS never beats the base in time: same or more cycles at a slower\n"
      "    clock (negative DR everywhere).\n"
      "  * RSP#2 runs every kernel without stalls and achieves the best or\n"
      "    near-best delay reduction.\n"
      "  * Aggressive sharing (#1) stalls the multiplier-hungry kernels\n"
      "    (Hydro, State) but not ICCG/Tri-diagonal/Inner product.\n";
  return 0;
}
