// Regenerates paper Table 3: kernel operation sets and the peak number of
// multiplications the mapped kernel issues in one cycle ("Mult No").
// Measured = statistics of our base-architecture configuration contexts.
#include <iostream>

#include "arch/presets.hpp"
#include "bench_common.hpp"
#include "kernels/registry.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"
#include "synth/paper_reference.hpp"

int main() {
  using namespace rsp;
  bench::print_header("Table 3: kernels in the experiments (measured vs paper)");

  util::Table table(
      {"Kernel", "Iterations", "Operation set", "Mult/iter", "Mult No", "Paper Mult No"});
  util::CsvWriter csv({"kernel", "iterations", "op_set", "mults_per_iter",
                       "max_mults_per_cycle"});

  const sched::ContextScheduler scheduler;
  for (const kernels::Workload& w : kernels::paper_suite()) {
    const sched::LoopPipeliner mapper(w.array);
    const sched::PlacedProgram program =
        mapper.map(w.kernel, w.hints, w.reduction);
    const arch::Architecture base =
        arch::base_architecture(w.array.rows, w.array.cols);
    const sched::ConfigurationContext context =
        scheduler.schedule(program, base);
    sched::require_legal(context);
    const sched::ScheduleStats stats = sched::stats_of(context);

    int paper_mult_no = -1;
    for (const auto& info : synth::paper::table3())
      if (info.kernel == w.name) paper_mult_no = info.max_mults_per_cycle;

    table.add_row({w.name, std::to_string(w.kernel.trip_count()),
                   w.kernel.op_set_string(),
                   std::to_string(w.kernel.mults_per_iteration()),
                   std::to_string(stats.max_mults_per_cycle),
                   paper_mult_no >= 0 ? std::to_string(paper_mult_no) : "-"});
    csv.add_row({w.name, std::to_string(w.kernel.trip_count()),
                 w.kernel.op_set_string(),
                 std::to_string(w.kernel.mults_per_iteration()),
                 std::to_string(stats.max_mults_per_cycle)});
  }

  std::cout << table.render();
  std::cout << "\nSAD is the multiplication-free kernel; 2D-FDCT has the"
               " highest multiplier pressure.\n";
  bench::maybe_write_csv(csv, "table3");
  return 0;
}
