// Ablation A2: pipeline depth sweep.
//
// The paper pipelines the multiplier into exactly two stages. This bench
// sweeps 1..4 stages for every Fig. 8 sharing topology and shows why 2 is
// the sweet spot: the system clock stops improving once the mux+ALU+shift
// path dominates (15.3 ns), while every extra stage still costs pipeline-
// register area and multi-cycle multiplication latency.
#include <iostream>

#include "arch/presets.hpp"
#include "bench_common.hpp"
#include "core/evaluator.hpp"
#include "kernels/registry.hpp"
#include "sched/mapper.hpp"
#include "synth/synthesis.hpp"

int main() {
  using namespace rsp;
  bench::print_header("Ablation: pipeline stage sweep (1..4 stages)");

  const synth::SynthesisModel synth;
  const core::RspEvaluator evaluator;
  const auto domain = kernels::paper_suite();

  // Pre-map every kernel once.
  std::vector<sched::PlacedProgram> programs;
  for (const auto& w : domain) {
    const sched::LoopPipeliner mapper(w.array);
    programs.push_back(mapper.map(w.kernel, w.hints, w.reduction));
  }
  const arch::Architecture base = arch::base_architecture();
  long base_cycles = 0;
  for (const auto& p : programs)
    base_cycles += evaluator.evaluate(p, base).cycles;
  const double base_time = static_cast<double>(base_cycles) * 26.0;

  util::Table table({"Topology", "Stages", "Clock (ns)", "Area (slices)",
                     "Domain cycles", "Domain time (ns)", "vs base (%)"});
  util::CsvWriter csv({"topology", "stages", "clock_ns", "area",
                       "cycles", "time_ns"});

  for (int variant = 1; variant <= 2; ++variant) {
    for (int stages = 1; stages <= 4; ++stages) {
      const arch::Architecture a =
          stages == 1 ? arch::rs_architecture(variant)
                      : arch::rsp_architecture(variant, 8, 8, stages);
      long cycles = 0;
      for (const auto& p : programs)
        cycles += evaluator.evaluate(p, a).cycles;
      const double clock = synth.clock_ns(a);
      const double area = synth.area(a);
      const double time = static_cast<double>(cycles) * clock;
      table.add_row({"#" + std::to_string(variant), std::to_string(stages),
                     util::format_trimmed(clock, 2),
                     util::format_trimmed(area, 0), std::to_string(cycles),
                     util::format_trimmed(time, 0),
                     util::format_trimmed(
                         100.0 * (base_time - time) / base_time, 1)});
      csv.add_row({"#" + std::to_string(variant), std::to_string(stages),
                   util::format_trimmed(clock, 2),
                   util::format_trimmed(area, 0), std::to_string(cycles),
                   util::format_trimmed(time, 1)});
    }
    table.add_separator();
  }
  std::cout << table.render()
            << "\nTwo stages capture the whole clock gain (the multiplier "
               "stage falls below\nthe 15.3 ns primitive path); deeper "
               "pipelines only add latency cycles and\nregister area — "
               "consistent with the paper's choice of 2 stages.\n";
  bench::maybe_write_csv(csv, "ablation_stages");
  return 0;
}
