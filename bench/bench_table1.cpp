// Regenerates paper Table 1: synthesis characterisation of one PE and its
// components (area in Virtex-II slices, critical-path delay in ns).
// Our component library *is* this calibration database, so the measured
// column must match the paper exactly; the bench also derives the ratio
// columns from the model rather than echoing them.
#include <iostream>

#include "arch/resources.hpp"
#include "bench_common.hpp"
#include "synth/components.hpp"
#include "synth/paper_reference.hpp"

int main() {
  using namespace rsp;
  bench::print_header("Table 1: synthesis result of a PE");

  const synth::ComponentLibrary lib;
  const double pe_area = lib.base_pe().area_slices;
  const double pe_delay = lib.base_pe().delay_ns;

  util::Table table({"Component", "Slices", "Area %", "Delay (ns)",
                     "Delay %", "Paper slices", "Paper delay"});
  util::CsvWriter csv({"component", "slices", "area_pct", "delay_ns",
                       "delay_pct"});

  auto emit = [&](const std::string& name, double area, double delay) {
    const auto& paper_rows = synth::paper::table1();
    double paper_area = 0, paper_delay = 0;
    for (const auto& r : paper_rows)
      if (r.component == name) {
        paper_area = r.area_slices;
        paper_delay = r.delay_ns;
      }
    table.add_row({name, util::format_trimmed(area, 0),
                   util::format_fixed(100.0 * area / pe_area, 2),
                   util::format_trimmed(delay, 1),
                   util::format_fixed(100.0 * delay / pe_delay, 2),
                   util::format_trimmed(paper_area, 0),
                   util::format_trimmed(paper_delay, 1)});
    csv.add_row({name, util::format_trimmed(area, 0),
                 util::format_fixed(100.0 * area / pe_area, 2),
                 util::format_trimmed(delay, 1),
                 util::format_fixed(100.0 * delay / pe_delay, 2)});
  };

  emit("PE", pe_area, pe_delay);
  emit("Multiplexer", lib.component(arch::Resource::kMultiplexer).area_slices,
       lib.component(arch::Resource::kMultiplexer).delay_ns);
  emit("ALU", lib.component(arch::Resource::kAlu).area_slices,
       lib.component(arch::Resource::kAlu).delay_ns);
  emit("Array multiplier",
       lib.component(arch::Resource::kArrayMultiplier).area_slices,
       lib.component(arch::Resource::kArrayMultiplier).delay_ns);
  emit("Shift logic", lib.component(arch::Resource::kShiftLogic).area_slices,
       lib.component(arch::Resource::kShiftLogic).delay_ns);

  std::cout << table.render();
  std::cout << "\nThe array multiplier dominates both area (45.7%) and delay"
               " (77%):\nit is the critical resource the RSP template"
               " extracts, shares and pipelines.\n";
  bench::maybe_write_csv(csv, "table1");
  return 0;
}
