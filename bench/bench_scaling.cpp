// Ablation A5: array-size scaling of the RSP benefit.
//
// The paper evaluates one geometry (8×8). This bench sweeps square arrays
// from 4×4 to 16×16 running a matched matrix multiplication, comparing the
// base array against a 1-unit-per-row 2-stage RSP design. The area saving
// grows with the array (one multiplier amortised over more PEs per row is
// replaced by… fewer per PE), while the clock gain is size-independent —
// so the area×time advantage of RSP widens with scale.
#include <iostream>

#include "arch/presets.hpp"
#include "bench_common.hpp"
#include "core/evaluator.hpp"
#include "kernels/matmul.hpp"
#include "sched/mapper.hpp"
#include "synth/synthesis.hpp"

int main() {
  using namespace rsp;
  bench::print_header("Ablation: array-size scaling (order-n matmul on n x n)");

  const synth::SynthesisModel synth;
  const core::RspEvaluator evaluator;

  util::Table table({"Array", "Arch", "Area (slices)", "Clock (ns)",
                     "cycles", "ET (ns)", "Area saving", "Speedup"});
  util::CsvWriter csv({"n", "arch", "area", "clock_ns", "cycles", "et_ns"});

  for (int n : {4, 8, 12, 16}) {
    const kernels::Workload w = kernels::make_matmul(n);
    const sched::LoopPipeliner mapper(w.array);
    const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);

    const arch::Architecture base = arch::base_architecture(n, n);
    const arch::Architecture rsp =
        arch::custom_architecture("RSP(1r/p2)", n, n, 1, 0, 2);

    const auto base_r = evaluator.evaluate(p, base);
    const auto rsp_r =
        evaluator.evaluate(p, rsp, base_r.execution_time_ns);
    const double base_area = synth.area(base);
    const double rsp_area = synth.area(rsp);

    const std::string dims = std::to_string(n) + "x" + std::to_string(n);
    table.add_row({dims, "Base", util::format_trimmed(base_area, 0),
                   util::format_trimmed(base_r.clock_ns, 2),
                   std::to_string(base_r.cycles),
                   util::format_trimmed(base_r.execution_time_ns, 0), "-",
                   "-"});
    table.add_row(
        {dims, "RSP 1r/p2", util::format_trimmed(rsp_area, 0),
         util::format_trimmed(rsp_r.clock_ns, 2),
         std::to_string(rsp_r.cycles),
         util::format_trimmed(rsp_r.execution_time_ns, 0),
         util::format_trimmed(100.0 * (base_area - rsp_area) / base_area, 1) +
             "%",
         util::format_trimmed(rsp_r.delay_reduction_percent, 1) + "%"});
    table.add_separator();
    csv.add_row({std::to_string(n), "base", util::format_trimmed(base_area, 1),
                 util::format_trimmed(base_r.clock_ns, 2),
                 std::to_string(base_r.cycles),
                 util::format_trimmed(base_r.execution_time_ns, 1)});
    csv.add_row({std::to_string(n), "rsp", util::format_trimmed(rsp_area, 1),
                 util::format_trimmed(rsp_r.clock_ns, 2),
                 std::to_string(rsp_r.cycles),
                 util::format_trimmed(rsp_r.execution_time_ns, 1)});
  }

  std::cout << table.render()
            << "\nThe per-PE multiplier the base design wastes grows"
               " quadratically with the\narray while RSP adds only one unit"
               " per row: the area saving approaches the\nmultiplier's 46%"
               " share, and the ~35% clock gain applies at every size.\n";
  bench::maybe_write_csv(csv, "scaling");
  return 0;
}
