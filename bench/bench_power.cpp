// Extension bench (paper §6 future work): energy/power comparison of the
// nine architectures across the kernel suite, using the activity-based
// power model. Energy units are normalised (slice-activations); ratios
// between architectures are the meaningful output.
#include <iostream>

#include "arch/presets.hpp"
#include "bench_common.hpp"
#include "kernels/registry.hpp"
#include "power/power.hpp"
#include "sched/mapper.hpp"
#include "sched/scheduler.hpp"

int main() {
  using namespace rsp;
  bench::print_header(
      "Extension: energy per kernel run (normalised units; paper future work)");

  const power::PowerModel model;
  const sched::ContextScheduler scheduler;
  util::CsvWriter csv({"kernel", "arch", "dynamic", "leakage", "total",
                       "avg_power"});

  // Per-architecture totals across the suite.
  const auto archs = arch::standard_suite();
  std::vector<double> totals(archs.size(), 0.0);

  for (const kernels::Workload& w : kernels::paper_suite()) {
    const sched::LoopPipeliner mapper(w.array);
    const sched::PlacedProgram p = mapper.map(w.kernel, w.hints, w.reduction);
    util::Table table({"Arch", "dynamic", "leakage", "total", "avg power"});
    table.set_title(w.name);
    double base_total = 0;
    for (std::size_t i = 0; i < archs.size(); ++i) {
      const power::PowerReport r =
          model.estimate(scheduler.schedule(p, archs[i]));
      if (i == 0) base_total = r.energy.total();
      totals[i] += r.energy.total();
      table.add_row({archs[i].name,
                     util::format_trimmed(r.energy.dynamic_total(), 0),
                     util::format_trimmed(r.energy.leakage, 0),
                     util::format_trimmed(r.energy.total(), 0) + " (" +
                         util::format_trimmed(
                             100.0 * r.energy.total() / base_total, 1) +
                         "%)",
                     util::format_trimmed(r.average_power, 1)});
      csv.add_row({w.name, archs[i].name,
                   util::format_trimmed(r.energy.dynamic_total(), 1),
                   util::format_trimmed(r.energy.leakage, 1),
                   util::format_trimmed(r.energy.total(), 1),
                   util::format_trimmed(r.average_power, 2)});
    }
    std::cout << table.render() << "\n";
  }

  util::Table summary({"Arch", "Suite energy", "vs base (%)"});
  for (std::size_t i = 0; i < archs.size(); ++i)
    summary.add_row({archs[i].name, util::format_trimmed(totals[i], 0),
                     util::format_trimmed(100.0 * totals[i] / totals[0], 1)});
  std::cout << summary.render()
            << "\nThe trade-off the model exposes: sharing cuts leakage"
               " (40% smaller array)\nand pipelining cuts runtime, but every"
               " shared multiplication also pays a\nbus-switch toggle."
               " Multiplier-light kernels (SAD) come out ahead on RSP;\n"
               "multiplier-heavy ones roughly break even — consistent with"
               " the paper's\ncautious wording that domain-specific"
               " optimization *may* also help power.\n";
  bench::maybe_write_csv(csv, "power");
  return 0;
}
