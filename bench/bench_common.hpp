// Shared helpers for the table-regeneration benches: each bench binary
// reproduces one table or figure of the paper, printing measured values
// side by side with the paper's published numbers and writing a CSV next
// to the pretty table.
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rsp::bench {

inline void print_header(const std::string& what) {
  std::cout << "\n=== " << what << " ===\n";
}

/// "measured (paper X)" cell formatting.
inline std::string vs_paper(double measured, double paper, int digits = 2) {
  return util::format_trimmed(measured, digits) + " (" +
         util::format_trimmed(paper, digits) + ")";
}

inline std::string vs_paper_int(long measured, long paper) {
  return std::to_string(measured) + " (" + std::to_string(paper) + ")";
}

/// Writes the CSV twin of a table if RSP_BENCH_CSV_DIR is set.
inline void maybe_write_csv(const util::CsvWriter& csv,
                            const std::string& name) {
  const char* dir = std::getenv("RSP_BENCH_CSV_DIR");
  if (!dir) return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  csv.write_file(path);
  std::cout << "[csv written to " << path << "]\n";
}

/// Writes a BENCH_<name>.json regression document if RSP_BENCH_JSON_DIR is
/// set — the machine-readable twin CI archives run over run.
inline void maybe_write_json(const util::Json& doc, const std::string& name) {
  const char* dir = std::getenv("RSP_BENCH_JSON_DIR");
  if (!dir) return;
  const std::string path = std::string(dir) + "/BENCH_" + name + ".json";
  std::ofstream file(path);
  file << doc.dump(true) << "\n";
  file.flush();  // surface late write errors before claiming success
  if (file)
    std::cout << "[json written to " << path << "]\n";
  else
    std::cout << "[FAILED to write " << path << "]\n";
}

}  // namespace rsp::bench
