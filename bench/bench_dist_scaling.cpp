// Distributed-DSE scaling: the coordinator/worker split must never change
// a single number (the hard gate, checked at every fleet size), and a
// 4-worker fleet must beat a 1-worker fleet by >= 1.3x wall clock (the
// speedup gate, enforced only when the host actually has >= 4 hardware
// threads to run the fleet on — the ratio is recorded either way).
//
// Workers are real api::SocketServer instances behind loopback TCP, one
// Service each, cold caches per measurement, driven by the same
// dist::DseCoordinator `rsp_cli dse --workers` uses.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "api/service.hpp"
#include "api/socket_server.hpp"
#include "bench_common.hpp"
#include "dist/coordinator.hpp"
#include "dse/explorer.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rsp;

constexpr double kSpeedupThreshold = 1.3;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Field-exact agreement with the single-process answer; any divergence is
/// a correctness failure no speedup can excuse.
bool identical(const api::DseResponse& got, const api::DseResponse& expect) {
  if (got.kernels != expect.kernels) return false;
  const dse::ExplorationResult& g = got.result;
  const dse::ExplorationResult& e = expect.result;
  if (g.base_area != e.base_area || g.base_cycles != e.base_cycles ||
      g.base_time_ns != e.base_time_ns || g.selected != e.selected ||
      g.candidates.size() != e.candidates.size())
    return false;
  for (std::size_t i = 0; i < e.candidates.size(); ++i) {
    const dse::Candidate& a = g.candidates[i];
    const dse::Candidate& b = e.candidates[i];
    if (a.point.label() != b.point.label() ||
        a.area_estimate != b.area_estimate ||
        a.area_synthesized != b.area_synthesized ||
        a.clock_ns != b.clock_ns ||
        a.estimated_cycles != b.estimated_cycles ||
        a.estimated_time_ns != b.estimated_time_ns ||
        a.rejected != b.rejected || a.reject_reason != b.reject_reason ||
        a.pareto != b.pareto || a.evaluated != b.evaluated ||
        a.exact_cycles != b.exact_cycles ||
        a.exact_time_ns != b.exact_time_ns ||
        a.total_stalls != b.total_stalls)
      return false;
  }
  return true;
}

/// One in-process worker: its own Service (cold caches), its own socket
/// server on an ephemeral loopback port, its own accept thread.
struct Worker {
  explicit Worker(int threads) {
    api::ServiceOptions options;
    options.threads = threads;
    options.max_inflight = 2;
    service = std::make_unique<api::Service>(options);
    server = std::make_unique<api::SocketServer>(
        *service, std::vector<api::ListenAddress>{
                      api::parse_listen_address("127.0.0.1:0")});
    thread = std::thread([this] { server->run(); });
  }
  ~Worker() {
    server->shutdown();
    thread.join();
  }
  std::unique_ptr<api::Service> service;
  std::unique_ptr<api::SocketServer> server;
  std::thread thread;
};

struct FleetRun {
  int workers = 0;
  double ms = 0.0;
  bool identical_to_serial = false;
};

FleetRun run_fleet(int worker_count, const api::DseRequest& request,
                   const api::DseResponse& expect) {
  std::vector<std::unique_ptr<Worker>> fleet;
  std::vector<api::ListenAddress> addresses;
  for (int i = 0; i < worker_count; ++i) {
    fleet.push_back(std::make_unique<Worker>(/*threads=*/2));
    addresses.push_back(fleet.back()->server->addresses()[0]);
  }
  dist::CoordinatorOptions options;
  options.shard_points = 8;
  dist::DseCoordinator coordinator(std::move(addresses), options);

  FleetRun run;
  run.workers = worker_count;
  const double start = now_ms();
  const api::DseResponse got = coordinator.dse(request);
  run.ms = now_ms() - start;
  run.identical_to_serial = identical(got, expect);
  return run;
}

}  // namespace

int main() {
  bench::print_header(
      "Distributed DSE scaling (paper domain, 1/2/4 local workers)");

  const api::DseRequest request;  // full paper suite, default config

  // Serial reference: a fresh single-process Service, cold caches.
  double serial_ms = 0.0;
  api::DseResponse expect;
  {
    api::ServiceOptions options;
    options.threads = 2;
    options.max_inflight = 2;
    const api::Service service(options);
    const double start = now_ms();
    expect = service.dse(request);
    serial_ms = now_ms() - start;
  }
  std::cout << "single-process dse: " << util::format_trimmed(serial_ms, 1)
            << " ms, " << expect.result.candidates.size()
            << " candidates, selected "
            << (expect.result.selected >= 0
                    ? expect.result.best().point.label()
                    : std::string("none"))
            << "\n";

  util::Table table({"Workers", "Wall (ms)", "vs 1 worker", "Identical"});
  std::vector<FleetRun> runs;
  for (const int workers : {1, 2, 4})
    runs.push_back(run_fleet(workers, request, expect));

  bool all_identical = true;
  for (const FleetRun& run : runs) {
    all_identical = all_identical && run.identical_to_serial;
    table.add_row({std::to_string(run.workers),
                   util::format_trimmed(run.ms, 1),
                   util::format_trimmed(runs[0].ms / run.ms, 2) + "x",
                   run.identical_to_serial ? "yes" : "NO"});
  }
  std::cout << table.render();

  const double speedup = runs[0].ms / runs[2].ms;
  const unsigned cores = std::thread::hardware_concurrency();
  // A 4-worker fleet can only outrun a 1-worker fleet when the host can
  // actually run the workers in parallel; on fewer cores the ratio is
  // reported but the gate is informational.
  const bool enforce_speedup = cores >= 4;
  const bool speedup_ok = speedup >= kSpeedupThreshold;

  util::Json doc = util::Json::object();
  doc.set("serial_ms", serial_ms);
  doc.set("hardware_concurrency", static_cast<std::int64_t>(cores));
  util::Json fleet_rows = util::Json::array();
  for (const FleetRun& run : runs) {
    util::Json row = util::Json::object();
    row.set("workers", run.workers)
        .set("ms", run.ms)
        .set("identical", run.identical_to_serial);
    fleet_rows.push(std::move(row));
  }
  doc.set("fleets", std::move(fleet_rows));
  util::Json gate = util::Json::object();
  gate.set("speedup_4v1", speedup)
      .set("threshold", kSpeedupThreshold)
      .set("enforced", enforce_speedup)
      .set("pass", speedup_ok)
      .set("identical", all_identical);
  doc.set("gate", std::move(gate));
  bench::maybe_write_json(doc, "dist_scaling");

  if (!all_identical) {
    std::cout << "FAIL: a distributed run diverged from single-process dse\n";
    return 1;
  }
  std::cout << "speedup 4 workers vs 1: " << util::format_trimmed(speedup, 2)
            << "x (threshold " << util::format_trimmed(kSpeedupThreshold, 1)
            << "x, " << (enforce_speedup ? "enforced" : "informational on ")
            << (enforce_speedup ? "" : std::to_string(cores) + " cores")
            << ")\n";
  if (enforce_speedup && !speedup_ok) {
    std::cout << "FAIL: 4-worker fleet below the speedup threshold\n";
    return 1;
  }
  std::cout << "distributed results identical at every fleet size\n";
  return 0;
}
