// Shared implementation of the Table 4 / Table 5 benches: evaluate a set of
// kernels across the nine standard architectures, printing cycles, execution
// time, delay reduction and stall counts, measured vs paper.
#pragma once

#include <iostream>
#include <vector>

#include "arch/presets.hpp"
#include "bench_common.hpp"
#include "core/evaluator.hpp"
#include "kernels/workload.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "synth/paper_reference.hpp"

namespace rsp::bench {

inline void run_performance_table(const std::vector<kernels::Workload>& suite,
                                  const std::string& title,
                                  const std::string& csv_name) {
  print_header(title);
  const core::RspEvaluator evaluator;
  const std::vector<arch::Architecture> archs = arch::standard_suite();

  util::CsvWriter csv({"kernel", "arch", "cycles", "execution_time_ns",
                       "delay_reduction_pct", "stalls"});

  for (const kernels::Workload& w : suite) {
    const sched::LoopPipeliner mapper(w.array);
    const sched::PlacedProgram program =
        mapper.map(w.kernel, w.hints, w.reduction);
    const std::vector<core::EvalResult> rows =
        evaluator.evaluate_suite(program, archs);
    const synth::paper::KernelRecord& paper =
        synth::paper::kernel_record(w.name);

    util::Table table({"Arch", "cycles", "ET(ns)", "DR(%)", "stall"});
    table.set_title(w.name + " (" + std::to_string(w.kernel.trip_count()) +
                    " iterations) — measured (paper)");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const core::EvalResult& r = rows[i];
      const synth::paper::PerformanceCell& p = paper.cells.at(i);
      table.add_row(
          {r.arch_name, vs_paper_int(r.cycles, p.cycles),
           vs_paper(r.execution_time_ns, p.execution_time_ns),
           vs_paper(r.delay_reduction_percent, p.delay_reduction_percent),
           i == 0 ? std::string("-")
                  : vs_paper_int(r.stalls, p.stalls.value_or(0))});
      csv.add_row({w.name, r.arch_name, std::to_string(r.cycles),
                   util::format_fixed(r.execution_time_ns, 2),
                   util::format_fixed(r.delay_reduction_percent, 2),
                   std::to_string(r.stalls)});
    }
    std::cout << table.render() << "\n";
  }
  maybe_write_csv(csv, csv_name);
}

}  // namespace rsp::bench
