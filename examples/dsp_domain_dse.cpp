// Domain-specific design space exploration (paper §4, Fig. 7).
//
// Takes the DSP application domain (2D-FDCT, SAD, MVM, FFT — the critical
// loops an H.263 encoder profile would select), explores the RSP parameter
// space (units per row/column × pipeline stages), rejects designs violating
// the eq. (2) cost constraint or the performance floor, extracts the Pareto
// front of (area, time) estimates, evaluates the survivors exactly, and
// reports the selected architecture.
#include <iostream>

#include "dse/explorer.hpp"
#include "kernels/registry.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsp;

  dse::ExplorerConfig config;
  config.max_units_per_row = 3;
  config.max_units_per_col = 2;
  config.max_stages = 3;
  config.objective = dse::Objective::kMinAreaTimeProduct;

  dse::Explorer explorer(arch::ArraySpec{}, config);
  const std::vector<kernels::Workload> domain = kernels::dsp_suite();
  std::cout << "Domain: ";
  for (const auto& w : domain) std::cout << w.name << " ";
  std::cout << "\nExploring " << (4 * 3 * 3 - 2)
            << " RSP parameter combinations on the 8x8 array...\n\n";

  const dse::ExplorationResult result = explorer.explore(domain);

  util::Table table({"Design", "Area est", "Area synth", "Clock",
                     "Est cycles", "Exact cycles", "Stalls", "Status"});
  for (const dse::Candidate& c : result.candidates) {
    std::string status = c.rejected ? "rejected: " + c.reject_reason
                         : c.pareto ? "pareto"
                                    : "dominated";
    table.add_row(
        {c.point.label(), util::format_trimmed(c.area_estimate, 0),
         util::format_trimmed(c.area_synthesized, 0),
         util::format_trimmed(c.clock_ns, 2),
         std::to_string(c.estimated_cycles),
         c.evaluated ? std::to_string(c.exact_cycles) : "-",
         c.evaluated ? std::to_string(c.total_stalls) : "-", status});
  }
  std::cout << table.render() << "\n";

  std::cout << "Base: " << util::format_trimmed(result.base_area, 0)
            << " slices, " << result.base_cycles << " cycles, "
            << util::format_trimmed(result.base_time_ns, 0) << " ns total\n";

  const dse::Candidate& best = result.best();
  std::cout << "\nSelected design: " << best.point.label() << " — "
            << best.point.units_per_row << " multiplier(s)/row + "
            << best.point.units_per_col << "/column, "
            << best.point.stages << "-stage pipelined\n"
            << "  area  " << util::format_trimmed(best.area_synthesized, 0)
            << " slices ("
            << util::format_trimmed(
                   100.0 * (result.base_area - best.area_synthesized) /
                       result.base_area,
                   1)
            << "% smaller than base)\n"
            << "  time  " << util::format_trimmed(best.exact_time_ns, 0)
            << " ns ("
            << util::format_trimmed(100.0 *
                                        (result.base_time_ns -
                                         best.exact_time_ns) /
                                        result.base_time_ns,
                                    1)
            << "% faster than base)\n";
  return 0;
}
