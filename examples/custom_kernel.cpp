// Bring-your-own-kernel walk-through: how a user of the library maps their
// own loop onto the RSP template, end to end.
//
// The loop is a FIR-style correlation,  y[k] = Σ_{t<4} c[t] · x[k+t],
// written directly with GraphBuilder, mapped with explicit hints, explored
// across the standard architectures, checked for steady-state throughput,
// and executed on the simulator against a plain C++ reference.
#include <iostream>

#include "arch/presets.hpp"
#include "core/evaluator.hpp"
#include "ir/builder.hpp"
#include "kernels/workload.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/scheduler.hpp"
#include "sched/steady_state.hpp"
#include "sim/machine.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsp;
  constexpr std::int64_t kTaps = 4;
  constexpr std::int64_t kIters = 64;
  const std::int64_t coeff[kTaps] = {3, -1, 4, 2};

  // 1. Describe one loop iteration as a dataflow graph.
  ir::GraphBuilder b;
  ir::NodeId acc = ir::kInvalidNode;
  for (std::int64_t t = 0; t < kTaps; ++t) {
    auto x = b.load("x", [t](std::int64_t k) { return k + t; },
                    "x[k+" + std::to_string(t) + "]");
    auto c = b.constant(coeff[t], "c" + std::to_string(t));
    auto prod = b.mult(c, x);
    acc = (t == 0) ? prod : b.add(acc, prod);
  }
  b.store("y", [](std::int64_t k) { return k; }, acc, "y[k]");
  const ir::LoopKernel kernel("FIR4", b.take(), kIters);

  std::cout << "Kernel FIR4: " << kernel.body().size() << " ops/iteration ("
            << kernel.op_set_string() << "), "
            << kernel.mults_per_iteration() << " mults, " << kIters
            << " iterations\n\n";

  // 2. Choose the wave layout: 4 lanes, staggered, cycling row bands.
  sched::MappingHints hints;
  hints.lanes = 4;
  hints.stagger = 2;
  hints.columns = 8;
  hints.cycle_row_bands = true;

  const arch::ArraySpec array;  // paper 8×8
  const sched::LoopPipeliner mapper(array);
  const sched::PlacedProgram program = mapper.map(kernel, hints);

  // 3. Evaluate across the nine standard architectures.
  const core::RspEvaluator evaluator;
  const auto rows = evaluator.evaluate_suite(program, arch::standard_suite());
  util::Table table({"Arch", "cycles", "ET(ns)", "DR(%)", "stall", "II"});
  const sched::ContextScheduler scheduler;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    const sched::SteadyState ss = sched::analyze_steady_state(
        scheduler.schedule(program, arch::standard_suite()[i]));
    table.add_row({r.arch_name, std::to_string(r.cycles),
                   util::format_trimmed(r.execution_time_ns, 1),
                   util::format_trimmed(r.delay_reduction_percent, 2),
                   std::to_string(r.stalls),
                   std::to_string(ss.initiation_interval)});
  }
  std::cout << table.render() << "\n";

  // 4. Execute on the simulator and compare with a plain C++ loop.
  const arch::Architecture chosen = arch::rsp_architecture(2);
  const sched::ConfigurationContext ctx =
      scheduler.schedule(program, chosen);
  sched::require_legal(ctx);

  ir::Memory mem;
  mem.set("x", kernels::deterministic_data("fir.x", kIters + kTaps, -40, 40));
  mem.allocate("y", kIters);
  sim::Machine().run(ctx, mem);

  bool ok = true;
  for (std::int64_t k = 0; k < kIters; ++k) {
    std::int64_t expect = 0;
    for (std::int64_t t = 0; t < kTaps; ++t)
      expect += coeff[t] * mem.read("x", k + t);
    ok &= mem.read("y", k) == expect;
  }
  std::cout << "simulated FIR4 on " << chosen.name << ": "
            << (ok ? "matches the C++ reference" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}
