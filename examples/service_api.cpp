// Service façade tour: the one API every transport shares.
//
// Builds an rsp::api::Service (shared thread pool + evaluation memo cache),
// runs typed requests directly, overlaps independent requests with
// submit(), and round-trips the warm cache through a snapshot file — the
// same machinery `rsp_cli serve` exposes as NDJSON (docs/PROTOCOL.md).
#include <cstdio>
#include <iostream>

#include "api/service.hpp"
#include "util/strings.hpp"

int main() {
  using namespace rsp;

  api::ServiceOptions options;
  options.threads = 4;       // evaluation fan-out
  options.max_inflight = 4;  // concurrent requests
  api::Service service(options);

  // 1. Typed single calls: a Tables-4/5 evaluation and a mapping report.
  const api::EvalResponse eval = service.eval({"SAD"});
  std::cout << "eval " << eval.kernel << ": " << eval.rows.size()
            << " architectures, best ET "
            << util::format_trimmed(eval.rows.back().execution_time_ns, 0)
            << " ns on " << eval.rows.back().arch_name << "\n";

  const api::MapResponse map = service.map({"MVM", "RSP#4"});
  std::cout << "map " << map.kernel << " on " << map.arch << ": "
            << map.cycles << " cycles, peak mults/cycle "
            << map.peak_critical_issues << "\n";

  // 2. Concurrent requests: two explorations in flight at once, sharing
  //    the pool and the cache (SAD's measurements are reused).
  api::DseRequest narrow;
  narrow.kernels = {"SAD", "MVM"};
  narrow.config.max_units_per_row = 2;
  narrow.config.max_units_per_col = 1;
  narrow.config.max_stages = 2;
  api::DseRequest wide = narrow;
  wide.config.max_units_per_col = 2;
  auto narrow_future = service.submit(narrow);
  auto wide_future = service.submit(wide);
  for (auto* future : {&narrow_future, &wide_future}) {
    const util::Json body = future->get();
    std::cout << "dse: explored " << body.at("candidates").as_number()
              << " candidates, selected "
              << body.at("selected").at("label").as_string() << "\n";
  }

  // 3. The shared cache is warm now; snapshot it and restore into a fresh
  //    service, which then evaluates without recomputing anything.
  const api::CacheStatsResponse stats = service.cache_stats({});
  std::cout << "cache: " << stats.stats.entries << " entries, "
            << stats.stats.hits << " hits\n";
  const std::string snapshot = "/tmp/rsp_service_api_cache.json";
  service.cache_save({snapshot});

  api::Service restored(options);
  const api::CacheLoadResponse loaded = restored.cache_load({snapshot});
  restored.eval({"SAD"});
  std::cout << "restored service: loaded " << loaded.entries_loaded
            << " entries, re-eval of SAD hit "
            << restored.cache_stats({}).stats.hits << " times\n";
  std::remove(snapshot.c_str());
  return 0;
}
