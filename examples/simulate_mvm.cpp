// End-to-end walk-through of one kernel on one architecture, with full
// visibility into every intermediate artefact:
//   kernel DFG → unrolled ops → placed program → configuration context →
//   per-PE configuration cache footprint → cycle simulation + utilisation.
//
// The kernel is the matrix-vector multiply (paper Table 5, "MVM"): PE(r,c)
// computes A[r][c]·x[c] and each array row tree-reduces its products into
// y[r] — a textbook use of the row interconnect.
#include <iostream>

#include "arch/presets.hpp"
#include "ir/unroll.hpp"
#include "kernels/registry.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/pretty.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine.hpp"
#include "util/strings.hpp"

int main() {
  using namespace rsp;

  const kernels::Workload w = kernels::find_workload("MVM");
  std::cout << "Kernel " << w.name << ": " << w.kernel.trip_count()
            << " iterations of {" << w.kernel.op_set_string()
            << "}, mapped with " << w.hints.lanes << " lanes over "
            << w.hints.columns << " columns + per-row reduction\n\n";

  const ir::UnrolledGraph unrolled(w.kernel);
  std::cout << "Unrolled: " << unrolled.size() << " concrete ops\n";

  const sched::LoopPipeliner mapper(w.array);
  const sched::PlacedProgram program =
      mapper.map(w.kernel, unrolled, w.hints, w.reduction);
  std::cout << "Placed:   " << program.size()
            << " ops (loop + reduction tree + stores)\n\n";

  const arch::Architecture a = arch::rsp_architecture(2);
  const sched::ContextScheduler scheduler;
  const sched::ConfigurationContext ctx = scheduler.schedule(program, a);
  sched::require_legal(ctx);

  std::cout << "Schedule on " << a.name << " (" << ctx.length()
            << " cycles):\n";
  sched::PrettyOptions opt;
  opt.max_cycles = 24;
  std::cout << render_schedule(ctx, opt) << "\n";

  const arch::ConfigCache cache = ctx.encode();
  std::cout << "Configuration cache: " << cache.summary() << ", "
            << cache.total_bits(a.sharing) / 8 << " bytes total\n\n";

  ir::Memory mem, golden;
  w.setup(mem);
  w.setup(golden);
  const sim::Machine machine;
  const sim::SimResult result = machine.run(ctx, mem);
  w.golden(golden);

  std::cout << "Simulation: " << result.stats.cycles << " cycles, "
            << result.stats.bus_reads << " bus reads, "
            << result.stats.bus_writes << " bus writes\n"
            << "  PE utilisation:          "
            << util::format_trimmed(100 * result.stats.pe_utilization(), 1)
            << "%\n"
            << "  shared-unit utilisation: "
            << util::format_trimmed(
                   100 * result.stats.shared_unit_utilization(), 1)
            << "% (" << result.stats.shared_unit_issues << " issues on "
            << a.sharing.total_units(a.array) << " units)\n\n";

  std::cout << "y = [ ";
  for (std::int64_t v : mem.array("y")) std::cout << v << " ";
  std::cout << "]  —  " << (mem == golden ? "matches" : "DOES NOT match")
            << " the golden model\n";
  return 0;
}
