// Quickstart: the paper's running example end to end.
//
// Maps an order-4 matrix multiplication (paper eq. (1)) on a 4×4 array,
// prints the loop-pipelined schedule (paper Fig. 2), reschedules it with a
// 2-stage pipelined shared multiplier (paper Fig. 6), shows that the
// pipelined design needs half the multipliers, and verifies both schedules
// on the cycle-accurate simulator.
#include <iostream>

#include "arch/presets.hpp"
#include "ir/dot.hpp"
#include "kernels/matmul.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/pretty.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine.hpp"

int main() {
  using namespace rsp;

  // 1. The kernel: Z[i][j] = C · Σ_k X[i][k]·Y[k][j], order 4.
  const kernels::Workload matmul = kernels::make_matmul(4, /*scale=*/2);
  std::cout << "Kernel: " << matmul.name << ", "
            << matmul.kernel.trip_count() << " iterations, body of "
            << matmul.kernel.body().size() << " ops ("
            << matmul.kernel.op_set_string() << ")\n\n";

  // 2. Map it: one iteration (i,j) per PE(i,j), columns staggered.
  const sched::LoopPipeliner mapper(matmul.array);
  const sched::PlacedProgram program =
      mapper.map(matmul.kernel, matmul.hints, matmul.reduction);

  // 3. Schedule on the base architecture (every PE owns a multiplier).
  const sched::ContextScheduler scheduler;
  const arch::Architecture base = arch::base_architecture(4, 4);
  const sched::ConfigurationContext base_ctx =
      scheduler.schedule(program, base);
  sched::require_legal(base_ctx);
  std::cout << "Loop-pipelined schedule on the base 4x4 array (cf. paper"
               " Fig. 2;\nrows = array columns, cells = ops issued):\n"
            << render_schedule(base_ctx)
            << "cycles: " << base_ctx.length()
            << ", peak concurrent multiplications: "
            << base_ctx.max_critical_issues_per_cycle() << "\n\n";

  // 4. Reschedule with shared, 2-stage pipelined multipliers (1 per row =
  //    4 total instead of 16).
  const arch::Architecture rsp =
      arch::custom_architecture("RSP-4x4", 4, 4, /*per_row=*/1,
                                /*per_col=*/0, /*stages=*/2);
  const sched::ConfigurationContext rsp_ctx = scheduler.schedule(program, rsp);
  sched::require_legal(rsp_ctx);
  std::cout << "Same program with 4 shared 2-stage multipliers (cf. paper"
               " Fig. 6;\n1*/2* are the pipeline stages):\n"
            << render_schedule(rsp_ctx)
            << "cycles: " << rsp_ctx.length() << ", RS stalls: "
            << sched::measure(scheduler, program, rsp).stalls << "\n\n";

  // 5. Execute both on the cycle simulator and verify against the golden.
  ir::Memory base_mem, rsp_mem, golden;
  matmul.setup(base_mem);
  matmul.setup(rsp_mem);
  matmul.setup(golden);
  matmul.golden(golden);
  const sim::Machine machine;
  machine.run(base_ctx, base_mem);
  machine.run(rsp_ctx, rsp_mem);
  std::cout << "simulated(base) == golden: "
            << (base_mem == golden ? "yes" : "NO") << "\n";
  std::cout << "simulated(RSP)  == golden: "
            << (rsp_mem == golden ? "yes" : "NO") << "\n";
  std::cout << "\nZ = ";
  for (std::int64_t v : rsp_mem.array("Z")) std::cout << v << " ";
  std::cout << "\n\nDataflow graph of one iteration (Graphviz):\n"
            << ir::to_dot(matmul.kernel);
  return 0;
}
