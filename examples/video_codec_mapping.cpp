// Domain scenario from the paper's motivation: an H.263 video encoder.
//
// The two hot loops of H.263 motion-estimation + transform coding are SAD
// (sum of absolute differences) and the 2D forward DCT — the paper's
// Table 5 kernels. This example maps both on every candidate architecture,
// prints a per-kernel ranking, and demonstrates the paper's observation
// (§5.3): the multiplication-free SAD gains the full clock speedup from
// pipelining, while the multiplication-heavy FDCT needs a large enough
// sharing budget (RSP#2) before pipelining pays off.
#include <iostream>

#include "arch/presets.hpp"
#include "core/evaluator.hpp"
#include "kernels/registry.hpp"
#include "sched/mapper.hpp"
#include "sim/machine.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace rsp;

  const core::RspEvaluator evaluator;
  const std::vector<arch::Architecture> archs = arch::standard_suite();

  std::cout << "H.263 encoder hot loops on the RSP template\n\n";

  struct Ranked {
    std::string kernel;
    std::string best_arch;
    double best_dr = -1e9;
  };
  std::vector<Ranked> ranking;

  for (const char* name : {"SAD", "2D-FDCT"}) {
    const kernels::Workload w = kernels::find_workload(name);
    const sched::LoopPipeliner mapper(w.array);
    const sched::PlacedProgram program =
        mapper.map(w.kernel, w.hints, w.reduction);
    const auto rows = evaluator.evaluate_suite(program, archs);

    util::Table table({"Arch", "cycles", "stalls", "ET (ns)", "DR (%)"});
    table.set_title(w.name);
    Ranked r{w.name, "", -1e9};
    for (const auto& row : rows) {
      table.add_row({row.arch_name, std::to_string(row.cycles),
                     std::to_string(row.stalls),
                     util::format_trimmed(row.execution_time_ns, 2),
                     util::format_trimmed(row.delay_reduction_percent, 2)});
      if (row.delay_reduction_percent > r.best_dr &&
          row.arch_name != "Base") {
        r.best_dr = row.delay_reduction_percent;
        r.best_arch = row.arch_name;
      }
    }
    std::cout << table.render() << "\n";
    ranking.push_back(r);
  }

  std::cout << "Per-kernel winners:\n";
  for (const Ranked& r : ranking)
    std::cout << "  " << r.kernel << ": " << r.best_arch << " ("
              << util::format_trimmed(r.best_dr, 2) << "% faster)\n";

  // A codec needs ONE fabric for both loops: pick the architecture with the
  // best combined time and verify it functionally on the simulator.
  std::size_t best = 0;
  double best_time = 1e300;
  for (std::size_t i = 1; i < archs.size(); ++i) {
    double total = 0;
    for (const char* name : {"SAD", "2D-FDCT"}) {
      const kernels::Workload w = kernels::find_workload(name);
      const sched::LoopPipeliner mapper(w.array);
      total += evaluator
                   .evaluate(mapper.map(w.kernel, w.hints, w.reduction),
                             archs[i])
                   .execution_time_ns;
    }
    if (total < best_time) {
      best_time = total;
      best = i;
    }
  }
  std::cout << "\nBest single fabric for the codec: " << archs[best].name
            << "\n";

  for (const char* name : {"SAD", "2D-FDCT"}) {
    const kernels::Workload w = kernels::find_workload(name);
    const sched::LoopPipeliner mapper(w.array);
    const sched::ContextScheduler scheduler;
    const auto ctx = scheduler.schedule(
        mapper.map(w.kernel, w.hints, w.reduction), archs[best]);
    ir::Memory mem, golden;
    w.setup(mem);
    w.setup(golden);
    sim::Machine().run(ctx, mem);
    w.golden(golden);
    std::cout << "  " << w.name << " simulated on " << archs[best].name
              << ": " << (mem == golden ? "correct" : "WRONG") << "\n";
  }
  return 0;
}
