// Schedule statistics: lengths, stalls and multiplier pressure.
#pragma once

#include <vector>

#include "sched/context.hpp"
#include "sched/program.hpp"
#include "sched/scheduler.hpp"

namespace rsp::sched {

struct ScheduleStats {
  int length = 0;                 ///< cycles
  int max_mults_per_cycle = 0;    ///< Table 3 "Mult No"
  std::int64_t total_mults = 0;
  std::int64_t total_ops = 0;
  std::vector<int> mult_histogram;  ///< mult issues per cycle
};

ScheduleStats stats_of(const ConfigurationContext& context);

/// Cycles and stall decomposition of one (program, architecture) pair.
///
/// `stalls` follows the paper's accounting: the difference between the
/// schedule under the real unit counts and the schedule under the same
/// pipelining with unlimited units. For the base architecture it is 0 by
/// definition; for RS it equals cycles − base cycles; for RSP the pipeline
/// stretching is part of `cycles` but not of `stalls`.
struct PerfPoint {
  int cycles = 0;
  int stalls = 0;
  int nostall_cycles = 0;  ///< schedule length with unlimited units
};

PerfPoint measure(const ContextScheduler& scheduler,
                  const PlacedProgram& program,
                  const arch::Architecture& architecture);

/// As above, but reuses `real` — the context already scheduled for
/// `architecture` — so callers that also need the context itself (e.g. for
/// max_critical_issues_per_cycle) pay for one schedule, not two.
PerfPoint measure(const ContextScheduler& scheduler,
                  const PlacedProgram& program,
                  const arch::Architecture& architecture,
                  const ConfigurationContext& real);

}  // namespace rsp::sched
