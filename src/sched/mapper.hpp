// Loop-pipelining mapper (paper Fig. 2 discipline, after Lee/Choi/Dutt).
//
// The mapper turns an unrolled kernel into a `PlacedProgram`:
//   * the body is linearised (its topological order) so every iteration is
//     a straight op sequence executed by one PE, one op per cycle;
//   * `lanes` iterations form a wave occupying `lanes` rows of one column;
//     successive waves take successive columns (round-robin) and are offset
//     by `stagger` in the priority order;
//   * optional reduction epilogue: per-PE partial results are combined with
//     a binary tree along columns and then along a row, and stored.
//
// The mapper fixes placement and competition order only. Concrete cycles —
// base schedule, RS stalls, RP stretching — come from ContextScheduler.
#pragma once

#include "ir/kernel.hpp"
#include "ir/unroll.hpp"
#include "sched/mapping.hpp"
#include "sched/program.hpp"

namespace rsp::sched {

class LoopPipeliner {
 public:
  explicit LoopPipeliner(arch::ArraySpec array) : array_(array) {
    array_.validate();
  }

  /// Maps the kernel. Throws InfeasibleError when the hints do not fit the
  /// array (too many lanes/columns) and InvalidArgumentError when a
  /// loop-carried dependence cannot be routed under the given hints
  /// (distance not compatible with the wave layout).
  PlacedProgram map(const ir::LoopKernel& kernel,
                    const ir::UnrolledGraph& unrolled,
                    const MappingHints& hints,
                    const ReductionSpec& reduction = {}) const;

  /// Convenience: unrolls internally.
  PlacedProgram map(const ir::LoopKernel& kernel, const MappingHints& hints,
                    const ReductionSpec& reduction = {}) const;

 private:
  arch::ArraySpec array_;
};

}  // namespace rsp::sched
