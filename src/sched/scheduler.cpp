#include "sched/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace rsp::sched {

namespace {

/// Per-cycle occupancy tables, grown on demand.
class OccupancyTable {
 public:
  explicit OccupancyTable(int slots_per_cycle) : slots_(slots_per_cycle) {}

  int used(int cycle, int slot) const {
    if (cycle >= static_cast<int>(rows_.size())) return 0;
    return rows_[static_cast<std::size_t>(cycle)]
                [static_cast<std::size_t>(slot)];
  }

  void take(int cycle, int slot) {
    if (cycle >= static_cast<int>(rows_.size()))
      rows_.resize(static_cast<std::size_t>(cycle) + 1,
                   std::vector<int>(static_cast<std::size_t>(slots_), 0));
    ++rows_[static_cast<std::size_t>(cycle)][static_cast<std::size_t>(slot)];
  }

 private:
  int slots_;
  std::vector<std::vector<int>> rows_;
};

}  // namespace

arch::Architecture unlimited_units(const arch::Architecture& a) {
  if (!a.shares_multiplier()) return a;
  arch::Architecture u = a;
  u.name = a.name + "-unlimited";
  // One unit per PE of each row is always enough: a row can issue at most
  // `cols` multiplications per cycle.
  u.sharing.units_per_row = a.array.cols;
  u.sharing.units_per_col = 0;
  u.validate();
  return u;
}

ConfigurationContext ContextScheduler::schedule(
    const PlacedProgram& program, const arch::Architecture& architecture)
    const {
  architecture.validate();
  program.validate();
  if (program.array() != architecture.array)
    throw InvalidArgumentError(
        "program was placed for a different array geometry");

  const arch::ArraySpec& array = architecture.array;
  const bool shared = architecture.shares_multiplier();
  const int mult_latency = architecture.mult_latency();

  // Scheduling order: by priority (stable on index for determinism).
  std::vector<ProgIndex> order(static_cast<std::size_t>(program.size()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ProgIndex a, ProgIndex b) {
    return program.op(a).priority < program.op(b).priority;
  });

  // Occupancy: PEs, row read buses, row write buses, shared units.
  OccupancyTable pe_busy(array.num_pes());
  OccupancyTable read_bus(array.rows);
  OccupancyTable write_bus(array.rows);
  // Shared unit slot numbering: row pools first, then column pools.
  const int row_units = array.rows * architecture.sharing.units_per_row;
  const int col_units = array.cols * architecture.sharing.units_per_col;
  OccupancyTable unit_busy(std::max(row_units + col_units, 1));
  auto unit_slot = [&](const arch::SharedUnitId& u) {
    if (u.pool == arch::SharedUnitId::Pool::kRow)
      return u.line * architecture.sharing.units_per_row + u.index;
    return row_units + u.line * architecture.sharing.units_per_col + u.index;
  };

  std::vector<int> cycle_of(static_cast<std::size_t>(program.size()), -1);
  std::vector<ScheduledOp> scheduled(static_cast<std::size_t>(program.size()));

  for (ProgIndex idx : order) {
    const ProgramOp& op = program.op(idx);

    // Earliest cycle by dataflow and memory ordering.
    int ready = 0;
    for (const ProgOperand& o : op.operands) {
      if (o.is_imm()) continue;
      const int pc = cycle_of[static_cast<std::size_t>(o.producer)];
      RSP_ASSERT_MSG(pc >= 0, "producer scheduled after consumer");
      ready = std::max(
          ready, pc + scheduled[static_cast<std::size_t>(o.producer)].latency);
    }
    for (ProgIndex d : op.order_deps) {
      const int pc = cycle_of[static_cast<std::size_t>(d)];
      RSP_ASSERT_MSG(pc >= 0, "order dep scheduled after consumer");
      ready = std::max(ready,
                       pc + scheduled[static_cast<std::size_t>(d)].latency);
    }

    const bool is_mult = ir::is_critical_op(op.kind);
    const bool needs_unit = is_mult && shared;
    const std::vector<arch::SharedUnitId> reachable =
        needs_unit ? architecture.sharing.reachable_units(array, op.pe)
                   : std::vector<arch::SharedUnitId>{};
    if (needs_unit && reachable.empty())
      throw InfeasibleError("architecture '" + architecture.name +
                            "' shares multipliers but PE(" +
                            std::to_string(op.pe.row) + "," +
                            std::to_string(op.pe.col) +
                            ") reaches no unit");

    const int pe_slot = array.linear(op.pe);
    // A multi-cycle (pipelined) operation keeps its issuing PE busy for all
    // stages: the PE waits for the product to return through the bus switch
    // (paper Fig. 6 — the 1*/2* stage pair occupies the PE's slots).
    const int occupancy = is_mult ? mult_latency : 1;
    int t = std::max(ready, op.not_before);
    std::optional<arch::SharedUnitId> unit;
    for (;; ++t) {
      if (t > options_.max_cycles)
        throw InternalError("schedule exceeds max_cycles — livelock?");
      bool pe_free = true;
      for (int s = 0; s < occupancy && pe_free; ++s)
        pe_free = pe_busy.used(t + s, pe_slot) == 0;
      if (!pe_free) continue;
      if (op.kind == ir::OpKind::kLoad &&
          read_bus.used(t, op.pe.row) >= array.read_buses_per_row)
        continue;
      if (op.kind == ir::OpKind::kStore &&
          write_bus.used(t, op.pe.row) >= array.write_buses_per_row)
        continue;
      if (needs_unit) {
        unit.reset();
        for (const arch::SharedUnitId& u : reachable) {
          if (unit_busy.used(t, unit_slot(u)) == 0) {
            unit = u;
            break;
          }
        }
        if (!unit) continue;  // RS stall: bump to the next cycle
      }
      break;
    }

    // Commit.
    for (int s = 0; s < occupancy; ++s) pe_busy.take(t + s, pe_slot);
    if (op.kind == ir::OpKind::kLoad) read_bus.take(t, op.pe.row);
    if (op.kind == ir::OpKind::kStore) write_bus.take(t, op.pe.row);
    if (unit) unit_busy.take(t, unit_slot(*unit));
    cycle_of[static_cast<std::size_t>(idx)] = t;

    ScheduledOp& out = scheduled[static_cast<std::size_t>(idx)];
    out.kind = op.kind;
    out.pe = op.pe;
    out.cycle = t;
    out.latency = is_mult ? mult_latency : 1;
    out.priority = op.priority;
    out.iter = op.iter;
    out.source = op.source;
    out.operands = op.operands;
    out.order_deps = op.order_deps;
    out.imm = op.imm;
    out.array = op.array;
    out.address = op.address;
    out.unit = unit;
  }

  return ConfigurationContext(architecture, std::move(scheduled));
}

}  // namespace rsp::sched
