// Independent legality verification of configuration contexts.
//
// Re-checks every architectural constraint from scratch, without trusting
// anything the scheduler recorded. The property-based test suites run this
// on every (kernel × architecture) combination.
#pragma once

#include <string>
#include <vector>

#include "sched/context.hpp"

namespace rsp::sched {

struct LegalityReport {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string what) {
    ok = false;
    violations.push_back(std::move(what));
  }
};

/// Checks:
///  1. dataflow: consumer.cycle >= producer.cycle + producer.latency;
///  2. PE exclusivity: at most one op per PE per cycle;
///  3. row bus caps: loads <= read buses, stores <= write buses per row/cycle;
///  4. shared units: every mult on a sharing architecture has a unit, the
///     unit is reachable from the PE, and no unit accepts two issues in one
///     cycle; on non-sharing architectures no op names a unit;
///  5. latencies match the architecture (mult_latency for mults, 1 else);
///  6. every producer→consumer edge is routable in one hop.
LegalityReport check_legality(const ConfigurationContext& context);

/// Throws rsp::Error with the first violation if the context is illegal.
void require_legal(const ConfigurationContext& context);

}  // namespace rsp::sched
