#include "sched/report.hpp"

namespace rsp::sched {

ScheduleStats stats_of(const ConfigurationContext& context) {
  ScheduleStats s;
  s.length = context.length();
  s.mult_histogram = context.critical_issues_per_cycle();
  s.max_mults_per_cycle = context.max_critical_issues_per_cycle();
  s.total_ops = context.size();
  for (const ScheduledOp& op : context.ops())
    if (ir::is_critical_op(op.kind)) ++s.total_mults;
  return s;
}

PerfPoint measure(const ContextScheduler& scheduler,
                  const PlacedProgram& program,
                  const arch::Architecture& architecture) {
  return measure(scheduler, program, architecture,
                 scheduler.schedule(program, architecture));
}

PerfPoint measure(const ContextScheduler& scheduler,
                  const PlacedProgram& program,
                  const arch::Architecture& architecture,
                  const ConfigurationContext& real) {
  PerfPoint p;
  p.cycles = real.length();
  if (!architecture.shares_multiplier()) {
    p.nostall_cycles = p.cycles;
    p.stalls = 0;
    return p;
  }
  const ConfigurationContext free_run =
      scheduler.schedule(program, unlimited_units(architecture));
  p.nostall_cycles = free_run.length();
  p.stalls = p.cycles - p.nostall_cycles;
  return p;
}

}  // namespace rsp::sched
