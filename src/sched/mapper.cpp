#include "sched/mapper.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace rsp::sched {

void MappingHints::validate() const {
  if (lanes <= 0) throw InvalidArgumentError("lanes must be positive");
  if (stagger < 0) throw InvalidArgumentError("stagger must be >= 0");
  if (columns <= 0) throw InvalidArgumentError("columns must be positive");
  if (first_col < 0 || first_row < 0)
    throw InvalidArgumentError("first_row/first_col must be >= 0");
}

namespace {

/// Priority layout: waves are `wave_pitch` apart; inside a wave, the body
/// slot dominates and the lane breaks ties — lane order implements the
/// paper's "shared resources are assigned in the order of loop iteration".
struct PriorityLayout {
  std::int64_t wave_pitch;
  std::int64_t lanes;

  std::int64_t of(std::int64_t wave, std::int64_t slot,
                  std::int64_t lane) const {
    return (wave * wave_pitch + slot) * (lanes + 1) + lane;
  }
};

}  // namespace

PlacedProgram LoopPipeliner::map(const ir::LoopKernel& kernel,
                                 const MappingHints& hints,
                                 const ReductionSpec& reduction) const {
  ir::UnrolledGraph unrolled(kernel);
  return map(kernel, unrolled, hints, reduction);
}

PlacedProgram LoopPipeliner::map(const ir::LoopKernel& kernel,
                                 const ir::UnrolledGraph& unrolled,
                                 const MappingHints& hints,
                                 const ReductionSpec& reduction) const {
  hints.validate();
  if (hints.first_row + hints.lanes > array_.rows)
    throw InfeasibleError("kernel '" + kernel.name() + "': " +
                          std::to_string(hints.lanes) + " lanes from row " +
                          std::to_string(hints.first_row) +
                          " exceed the array's " +
                          std::to_string(array_.rows) + " rows");
  if (hints.first_col + hints.columns > array_.cols)
    throw InfeasibleError("kernel '" + kernel.name() +
                          "': columns exceed the array width");

  const ir::DataflowGraph& body = kernel.body();
  const std::int32_t body_len = body.size();
  const std::int64_t trips = kernel.trip_count();
  const std::int64_t lanes = hints.lanes;

  // The body is linearised in node-id order (already topological); the
  // wave pitch must exceed the body length so priorities stay monotone
  // along loop-carried edges between consecutive waves.
  const PriorityLayout prio{static_cast<std::int64_t>(body_len) + lanes,
                            lanes};

  PlacedProgram program(array_);

  const std::int64_t bands =
      hints.cycle_row_bands
          ? std::max<std::int64_t>(1, (array_.rows - hints.first_row) / lanes)
          : 1;
  auto pe_of_iter = [&](std::int64_t iter) {
    const std::int64_t wave = iter / lanes;
    const std::int64_t lane = iter % lanes;
    const std::int64_t band = (wave / hints.columns) % bands;
    return arch::PeCoord{
        hints.first_row + static_cast<int>(band * lanes + lane),
        hints.first_col + static_cast<int>(wave % hints.columns)};
  };

  // --- loop body ---------------------------------------------------------
  for (ir::OpId uid = 0; uid < unrolled.size(); ++uid) {
    const ir::ConcreteOp& cop = unrolled.op(uid);
    const std::int64_t wave = cop.iter / lanes;
    const std::int64_t lane = cop.iter % lanes;

    ProgramOp pop;
    pop.kind = cop.kind;
    pop.pe = pe_of_iter(cop.iter);
    pop.priority = prio.of(wave, cop.body_node, lane);
    pop.not_before =
        static_cast<int>(wave) * hints.stagger + cop.body_node;
    pop.iter = cop.iter;
    pop.source = uid;
    pop.imm = cop.imm;
    pop.array = cop.array;
    pop.address = cop.address;

    for (const ir::ConcreteOperand& operand : cop.operands) {
      ProgOperand po;
      if (operand.is_imm()) {
        po.imm = operand.imm;
      } else {
        po.producer = program.index_of_source(operand.op);
        RSP_ASSERT_MSG(po.producer != kNoProducer,
                       "producer op was not placed");
        // Routability check with a kernel-level diagnostic.
        const arch::PeCoord from = program.op(po.producer).pe;
        if (array_.route(from, pop.pe) == arch::RouteKind::kNone)
          throw InvalidArgumentError(
              "kernel '" + kernel.name() +
              "': loop-carried dependence between iterations " +
              std::to_string(unrolled.op(operand.op).iter) + " and " +
              std::to_string(cop.iter) +
              " is not routable under the given mapping hints");
      }
      pop.operands.push_back(po);
    }
    for (ir::OpId dep : cop.mem_deps) {
      const ProgIndex pi = program.index_of_source(dep);
      RSP_ASSERT_MSG(pi != kNoProducer, "memory dep op was not placed");
      pop.order_deps.push_back(pi);
    }
    program.add(std::move(pop));
  }

  // --- reduction epilogue -------------------------------------------------
  if (reduction.enabled()) {
    if (reduction.source < 0 || reduction.source >= body_len)
      throw InvalidArgumentError("reduction source node out of range");
    if (reduction.array.empty())
      throw InvalidArgumentError("reduction requires a destination array");

    // Final value of the source node on every PE = the instance with the
    // highest priority per PE.
    std::map<int, ProgIndex> partial;  // pe linear id -> program index
    for (ProgIndex i = 0; i < program.size(); ++i) {
      const ProgramOp& op = program.op(i);
      if (op.source == ir::kInvalidOp) continue;
      if (unrolled.op(op.source).body_node != reduction.source) continue;
      const int pe = array_.linear(op.pe);
      auto it = partial.find(pe);
      if (it == partial.end() ||
          program.op(it->second).priority < op.priority)
        partial[pe] = i;
    }
    if (partial.empty())
      throw InvalidArgumentError("reduction source produced no partials");

    const std::int64_t num_waves = (trips + lanes - 1) / lanes;
    std::int64_t level = 0;
    auto epilogue_priority = [&]() {
      return prio.of(num_waves + level, body_len, 0) + level;
    };

    // Combines `b` into `a` (result lives on a's PE); returns new index.
    auto combine = [&](ProgIndex a, ProgIndex b) {
      ProgramOp add;
      add.kind = ir::OpKind::kAdd;
      add.pe = program.op(a).pe;
      add.priority = epilogue_priority();
      add.operands = {ProgOperand{a, 0}, ProgOperand{b, 0}};
      return program.add(std::move(add));
    };
    auto store_result = [&](ProgIndex value, std::int64_t index) {
      ProgramOp st;
      st.kind = ir::OpKind::kStore;
      st.pe = program.op(value).pe;
      st.priority = epilogue_priority();
      st.operands = {ProgOperand{value, 0}};
      st.array = reduction.array;
      st.address = index;
      program.add(std::move(st));
    };

    // Phase 1: within each column, tree-reduce the lanes (column routes).
    std::map<int, std::vector<ProgIndex>> by_col;
    for (const auto& [pe_lin, idx] : partial)
      by_col[array_.coord(pe_lin).col].push_back(idx);

    auto tree_reduce = [&](std::vector<ProgIndex> items) {
      while (items.size() > 1) {
        ++level;
        const std::size_t half = (items.size() + 1) / 2;
        std::vector<ProgIndex> next;
        for (std::size_t i = 0; i < half; ++i) {
          if (i + half < items.size())
            next.push_back(combine(items[i], items[i + half]));
          else
            next.push_back(items[i]);
        }
        items = std::move(next);
      }
      return items.front();
    };

    if (reduction.scope == ReductionSpec::Scope::kAll) {
      std::vector<ProgIndex> col_sums;
      for (auto& [col, items] : by_col) col_sums.push_back(tree_reduce(items));
      ++level;
      const ProgIndex total = tree_reduce(col_sums);
      ++level;
      store_result(total, reduction.index0);
    } else {  // kPerRow: reduce along each row, store per row.
      std::map<int, std::vector<ProgIndex>> by_row;
      for (const auto& [pe_lin, idx] : partial)
        by_row[array_.coord(pe_lin).row].push_back(idx);
      for (auto& [row, items] : by_row) {
        const ProgIndex sum = tree_reduce(items);
        ++level;
        store_result(sum, reduction.index0 + row);
        level -= 1;  // rows reduce in parallel: share priority bands
      }
      ++level;
    }
  }

  program.validate();
  return program;
}

}  // namespace rsp::sched
