#include "sched/legality.hpp"

#include <map>
#include <sstream>

#include "util/error.hpp"

namespace rsp::sched {

LegalityReport check_legality(const ConfigurationContext& context) {
  LegalityReport report;
  const arch::Architecture& a = context.architecture();
  const arch::ArraySpec& array = a.array;
  const auto& ops = context.ops();

  auto describe = [&](ProgIndex i) {
    const ScheduledOp& op = ops[static_cast<std::size_t>(i)];
    std::ostringstream os;
    os << "op#" << i << " (" << ir::op_name(op.kind) << " @PE(" << op.pe.row
       << "," << op.pe.col << ") cycle " << op.cycle << ")";
    return os.str();
  };

  // 1 + 6: dataflow timing and routability.
  for (ProgIndex i = 0; i < context.size(); ++i) {
    const ScheduledOp& op = ops[static_cast<std::size_t>(i)];
    for (const ProgOperand& o : op.operands) {
      if (o.is_imm()) continue;
      if (o.producer < 0 || o.producer >= context.size()) {
        report.fail(describe(i) + ": operand index out of range");
        continue;
      }
      const ScheduledOp& prod = ops[static_cast<std::size_t>(o.producer)];
      if (op.cycle < prod.cycle + prod.latency)
        report.fail(describe(i) + " consumes " + describe(o.producer) +
                    " before its result is ready");
      if (array.route(prod.pe, op.pe) == arch::RouteKind::kNone)
        report.fail(describe(i) + " cannot route operand from " +
                    describe(o.producer));
    }
    for (sched::ProgIndex d : op.order_deps) {
      if (d < 0 || d >= context.size()) {
        report.fail(describe(i) + ": order dep index out of range");
        continue;
      }
      const ScheduledOp& prod = ops[static_cast<std::size_t>(d)];
      if (op.cycle < prod.cycle + prod.latency)
        report.fail(describe(i) + " violates memory ordering against " +
                    describe(d));
    }
  }

  // 2: PE exclusivity. A critical (multiplied) op occupies its PE for all
  // `latency` stages; every other op for one cycle.
  std::map<std::pair<int, int>, ProgIndex> pe_cycle;
  for (ProgIndex i = 0; i < context.size(); ++i) {
    const ScheduledOp& op = ops[static_cast<std::size_t>(i)];
    const int occupancy = ir::is_critical_op(op.kind) ? op.latency : 1;
    for (int s = 0; s < occupancy; ++s) {
      auto key = std::make_pair(array.linear(op.pe), op.cycle + s);
      auto [it, inserted] = pe_cycle.emplace(key, i);
      if (!inserted)
        report.fail(describe(i) + " and " + describe(it->second) +
                    " share a PE in the same cycle");
    }
  }

  // 3: bus caps.
  std::map<std::pair<int, int>, int> reads, writes;
  for (const ScheduledOp& op : ops) {
    if (op.kind == ir::OpKind::kLoad) ++reads[{op.pe.row, op.cycle}];
    if (op.kind == ir::OpKind::kStore) ++writes[{op.pe.row, op.cycle}];
  }
  for (const auto& [key, n] : reads)
    if (n > array.read_buses_per_row)
      report.fail("row " + std::to_string(key.first) + " issues " +
                  std::to_string(n) + " loads in cycle " +
                  std::to_string(key.second) + " (cap " +
                  std::to_string(array.read_buses_per_row) + ")");
  for (const auto& [key, n] : writes)
    if (n > array.write_buses_per_row)
      report.fail("row " + std::to_string(key.first) + " issues " +
                  std::to_string(n) + " stores in cycle " +
                  std::to_string(key.second) + " (cap " +
                  std::to_string(array.write_buses_per_row) + ")");

  // 4: shared units. 5: latencies.
  std::map<std::pair<std::string, int>, ProgIndex> unit_issue;
  for (ProgIndex i = 0; i < context.size(); ++i) {
    const ScheduledOp& op = ops[static_cast<std::size_t>(i)];
    const bool is_mult = ir::is_critical_op(op.kind);
    const int expected_latency = is_mult ? a.mult_latency() : 1;
    if (op.latency != expected_latency)
      report.fail(describe(i) + " has latency " + std::to_string(op.latency) +
                  ", architecture dictates " +
                  std::to_string(expected_latency));
    if (is_mult && a.shares_multiplier()) {
      if (!op.unit) {
        report.fail(describe(i) + " multiplies without a shared unit");
        continue;
      }
      const auto reachable = a.sharing.reachable_units(array, op.pe);
      if (std::find(reachable.begin(), reachable.end(), *op.unit) ==
          reachable.end())
        report.fail(describe(i) + " uses unreachable unit " +
                    arch::to_string(*op.unit));
      auto key = std::make_pair(arch::to_string(*op.unit), op.cycle);
      auto [it, inserted] = unit_issue.emplace(key, i);
      if (!inserted)
        report.fail("unit " + key.first + " accepts two issues in cycle " +
                    std::to_string(op.cycle) + ": " + describe(i) + " and " +
                    describe(it->second));
    } else if (op.unit) {
      report.fail(describe(i) + " names a shared unit on architecture '" +
                  a.name + "' which shares nothing");
    }
  }

  return report;
}

void require_legal(const ConfigurationContext& context) {
  const LegalityReport report = check_legality(context);
  if (!report.ok)
    throw Error("illegal configuration context: " + report.violations.front() +
                (report.violations.size() > 1
                     ? " (+" + std::to_string(report.violations.size() - 1) +
                           " more)"
                     : ""));
}

}  // namespace rsp::sched
