// Mapping directives: how a kernel's iterations are laid out on the array.
//
// The loop-pipelining discipline (paper Fig. 2, after Lee/Choi/Dutt) groups
// iterations into *waves* of `lanes` iterations. Wave w occupies the
// `lanes` bottom rows of column (first_col + w mod columns); all lanes of a
// wave run the same linearised body, one op per PE per cycle. Consecutive
// waves start `stagger` cycles apart, so in any one cycle different columns
// execute different parts of the loop body — which is exactly what lets
// area-critical resources be shared.
#pragma once

#include <cstdint>
#include <string>

#include "ir/graph.hpp"

namespace rsp::sched {

struct MappingHints {
  /// Iterations per wave = PEs (rows) of one column used in lockstep.
  int lanes = 8;
  /// Cycles between the starts of consecutive waves.
  int stagger = 1;
  /// Columns used round-robin by successive waves.
  int columns = 8;
  /// First column used (waves go to columns first_col .. first_col+columns-1).
  int first_col = 0;
  /// First row used by lane 0.
  int first_row = 0;
  /// When lanes < rows, successive column sweeps may occupy successive
  /// row bands (wave w uses rows first_row + band·lanes …, with
  /// band = (w / columns) mod available bands). Spreads PE and bus load
  /// over the whole array for kernels with many short waves. Must be false
  /// for kernels with loop-carried chains of distance lanes×columns, which
  /// must revisit the same PE.
  bool cycle_row_bands = false;

  void validate() const;
};

/// Cross-PE reduction appended after the loop (sum of per-PE partial
/// results), used by dot-product style kernels whose accumulators live in
/// the PEs.
struct ReductionSpec {
  enum class Scope {
    kNone,    ///< no reduction
    kAll,     ///< one global sum over every participating PE
    kPerRow,  ///< one sum per array row (e.g. matrix-vector products)
  };
  Scope scope = Scope::kNone;
  /// Body node whose final per-PE value is the partial result.
  ir::NodeId source = ir::kInvalidNode;
  /// Destination of the reduced value(s).
  std::string array;
  /// Element index of the result; for kPerRow, row r stores to index0 + r.
  std::int64_t index0 = 0;

  bool enabled() const { return scope != Scope::kNone; }
};

}  // namespace rsp::sched
