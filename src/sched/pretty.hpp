// Schedule pretty-printers reproducing the look of the paper's Fig. 2 and
// Fig. 6: one row per array column, one text column per cycle, cells showing
// the op symbols issued in that (array column, cycle). Pipelined
// multiplications show their stages as "1*" and "2*".
#pragma once

#include <string>

#include "sched/context.hpp"

namespace rsp::sched {

struct PrettyOptions {
  int max_cycles = 64;        ///< truncate very long schedules
  bool per_pe = false;        ///< one row per PE instead of per array column
  bool show_stages = true;    ///< display pipelined mults as 1*/2*/...
};

std::string render_schedule(const ConfigurationContext& context,
                            PrettyOptions options = {});

}  // namespace rsp::sched
