#include "sched/steady_state.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace rsp::sched {

const char* to_string(SteadyState::Bottleneck b) {
  switch (b) {
    case SteadyState::Bottleneck::kPe:
      return "PE";
    case SteadyState::Bottleneck::kReadBus:
      return "read bus";
    case SteadyState::Bottleneck::kWriteBus:
      return "write bus";
    case SteadyState::Bottleneck::kSharedUnit:
      return "shared unit";
    case SteadyState::Bottleneck::kNone:
      return "none";
  }
  throw InternalError("unknown Bottleneck");
}

namespace {

/// True when offsetting a second copy of the context by `ii` cycles double
/// -books some resource (PE slot, bus slot, unit issue slot).
bool conflicts_at(const ConfigurationContext& ctx, int ii) {
  const arch::ArraySpec& array = ctx.architecture().array;

  // Occupancy of one run, keyed by resource id and cycle.
  std::map<std::pair<int, int>, int> pe;           // (pe, t)
  std::map<std::pair<int, int>, int> reads, writes;  // (row, t)
  std::map<std::pair<std::string, int>, int> units;  // (unit, t)
  for (const ScheduledOp& op : ctx.ops()) {
    const int occupancy = ir::is_critical_op(op.kind) ? op.latency : 1;
    for (int s = 0; s < occupancy; ++s)
      ++pe[{array.linear(op.pe), op.cycle + s}];
    if (op.kind == ir::OpKind::kLoad) ++reads[{op.pe.row, op.cycle}];
    if (op.kind == ir::OpKind::kStore) ++writes[{op.pe.row, op.cycle}];
    if (op.unit) ++units[{arch::to_string(*op.unit), op.cycle}];
  }

  // Overlap window: run 2 shifted by ii. A clash exists when combined
  // usage at some (resource, cycle) exceeds the capacity.
  for (const auto& [key, n] : pe) {
    auto it = pe.find({key.first, key.second + ii});
    if (it != pe.end() && n + it->second > 1) return true;
  }
  for (const auto& [key, n] : reads) {
    auto it = reads.find({key.first, key.second + ii});
    if (it != reads.end() &&
        n + it->second > array.read_buses_per_row)
      return true;
  }
  for (const auto& [key, n] : writes) {
    auto it = writes.find({key.first, key.second + ii});
    if (it != writes.end() &&
        n + it->second > array.write_buses_per_row)
      return true;
  }
  for (const auto& [key, n] : units) {
    auto it = units.find({key.first, key.second + ii});
    if (it != units.end() && n + it->second > 1) return true;
  }
  return false;
}

SteadyState::Bottleneck bottleneck_at(const ConfigurationContext& ctx,
                                      int ii) {
  // Re-test each class in isolation at ii-1 (the first infeasible offset).
  const arch::ArraySpec& array = ctx.architecture().array;
  std::map<std::pair<int, int>, int> pe, reads, writes;
  std::map<std::pair<std::string, int>, int> units;
  for (const ScheduledOp& op : ctx.ops()) {
    const int occupancy = ir::is_critical_op(op.kind) ? op.latency : 1;
    for (int s = 0; s < occupancy; ++s)
      ++pe[{array.linear(op.pe), op.cycle + s}];
    if (op.kind == ir::OpKind::kLoad) ++reads[{op.pe.row, op.cycle}];
    if (op.kind == ir::OpKind::kStore) ++writes[{op.pe.row, op.cycle}];
    if (op.unit) ++units[{arch::to_string(*op.unit), op.cycle}];
  }
  for (const auto& [key, n] : pe) {
    auto it = pe.find({key.first, key.second + ii});
    if (it != pe.end() && n + it->second > 1)
      return SteadyState::Bottleneck::kPe;
  }
  for (const auto& [key, n] : units) {
    auto it = units.find({key.first, key.second + ii});
    if (it != units.end() && n + it->second > 1)
      return SteadyState::Bottleneck::kSharedUnit;
  }
  for (const auto& [key, n] : reads) {
    auto it = reads.find({key.first, key.second + ii});
    if (it != reads.end() && n + it->second > array.read_buses_per_row)
      return SteadyState::Bottleneck::kReadBus;
  }
  for (const auto& [key, n] : writes) {
    auto it = writes.find({key.first, key.second + ii});
    if (it != writes.end() && n + it->second > array.write_buses_per_row)
      return SteadyState::Bottleneck::kWriteBus;
  }
  return SteadyState::Bottleneck::kNone;
}

}  // namespace

SteadyState analyze_steady_state(const ConfigurationContext& context) {
  SteadyState ss;
  ss.latency = context.length();
  if (context.size() == 0) {
    ss.initiation_interval = 0;
    return ss;
  }

  // Dataflow between runs is decoupled through memory, so only structural
  // hazards constrain the offset. At interval ii, every pair of in-flight
  // runs is offset by a multiple of ii, so all multiples below the latency
  // must be clash-free. offset = latency is always safe.
  auto safe = [&](int ii) {
    for (int off = ii; off < ss.latency; off += ii)
      if (conflicts_at(context, off)) return false;
    return true;
  };
  int ii = 1;
  while (ii < ss.latency && !safe(ii)) ++ii;
  ss.initiation_interval = ii;
  ss.ops_per_cycle = static_cast<double>(context.size()) / ii;
  if (ii > 1 && ii <= ss.latency)
    ss.bottleneck = bottleneck_at(context, ii - 1);
  return ss;
}

}  // namespace rsp::sched
