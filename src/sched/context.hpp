// Configuration context: the fully scheduled program for one architecture.
//
// This corresponds to the paper's "configuration contexts": per PE and per
// cycle, which operation executes, where its operands come from, and — on
// RS/RSP architectures — which shared unit performs a multiplication. The
// RSP exploration rearranges these contexts; here the rearranged context is
// produced directly by scheduling the placed program under the target
// architecture's resource constraints.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/config_cache.hpp"
#include "arch/presets.hpp"
#include "sched/program.hpp"

namespace rsp::sched {

/// One scheduled operation.
struct ScheduledOp {
  ir::OpKind kind = ir::OpKind::kNop;
  arch::PeCoord pe;
  int cycle = 0;    ///< issue cycle
  int latency = 1;  ///< cycles until the result is consumable
  std::int64_t priority = 0;
  std::int64_t iter = -1;
  ir::OpId source = ir::kInvalidOp;
  std::vector<ProgOperand> operands;  ///< indices into the context's op list
  std::vector<ProgIndex> order_deps;  ///< memory-ordering predecessors
  std::int64_t imm = 0;
  std::string array;
  std::int64_t address = 0;
  /// Shared unit executing this op (engaged iff critical op on a sharing
  /// architecture).
  std::optional<arch::SharedUnitId> unit;
};

class ConfigurationContext {
 public:
  ConfigurationContext(arch::Architecture architecture,
                       std::vector<ScheduledOp> ops);

  const arch::Architecture& architecture() const { return arch_; }
  const std::vector<ScheduledOp>& ops() const { return ops_; }
  const ScheduledOp& op(ProgIndex i) const;
  std::int64_t size() const { return static_cast<std::int64_t>(ops_.size()); }

  /// Schedule length in cycles: max over ops of (cycle + latency).
  int length() const { return length_; }

  /// Indices of ops issued at `cycle`, ascending by priority.
  std::vector<ProgIndex> ops_at(int cycle) const;

  /// Number of critical-resource (mult) issues per cycle.
  std::vector<int> critical_issues_per_cycle() const;

  /// Max of the above — the paper's Table 3 "Mult No" metric.
  int max_critical_issues_per_cycle() const;

  /// Encodes the schedule into per-PE configuration-cache words
  /// (storage/footprint model; the functional simulator executes the
  /// ScheduledOps directly).
  arch::ConfigCache encode() const;

 private:
  arch::Architecture arch_;
  std::vector<ScheduledOp> ops_;
  int length_ = 0;
};

}  // namespace rsp::sched
