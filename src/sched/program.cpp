#include "sched/program.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rsp::sched {

ProgIndex PlacedProgram::add(ProgramOp op) {
  const ProgIndex idx = size();
  if (!array_.contains(op.pe))
    throw InvalidArgumentError("placed op PE out of range");
  const int arity = ir::op_arity(op.kind);
  if (static_cast<int>(op.operands.size()) != arity)
    throw InvalidArgumentError(std::string("placed op of kind ") +
                               ir::op_name(op.kind) + " expects " +
                               std::to_string(arity) + " operands");
  for (const ProgOperand& o : op.operands) {
    if (o.is_imm()) continue;
    if (o.producer < 0 || o.producer >= idx)
      throw InvalidArgumentError(
          "placed op operands must reference earlier ops");
  }
  if (ir::is_memory_op(op.kind) && op.array.empty())
    throw InvalidArgumentError("memory op requires an array name");
  for (ProgIndex d : op.order_deps)
    if (d < 0 || d >= idx)
      throw InvalidArgumentError(
          "order dependences must reference earlier ops");
  if (op.source != ir::kInvalidOp) {
    if (op.source >= static_cast<ir::OpId>(source_index_.size()))
      source_index_.resize(static_cast<std::size_t>(op.source) + 1,
                           kNoProducer);
    source_index_[static_cast<std::size_t>(op.source)] = idx;
  }
  ops_.push_back(std::move(op));
  return idx;
}

const ProgramOp& PlacedProgram::op(ProgIndex i) const {
  if (i < 0 || i >= size()) throw NotFoundError("program index out of range");
  return ops_[static_cast<std::size_t>(i)];
}

ProgIndex PlacedProgram::index_of_source(ir::OpId source) const {
  if (source < 0 ||
      source >= static_cast<ir::OpId>(source_index_.size()))
    return kNoProducer;
  return source_index_[static_cast<std::size_t>(source)];
}

void PlacedProgram::validate() const {
  for (ProgIndex i = 0; i < size(); ++i) {
    const ProgramOp& op = ops_[static_cast<std::size_t>(i)];
    RSP_ASSERT(array_.contains(op.pe));
    for (const ProgOperand& o : op.operands) {
      if (o.is_imm()) continue;
      RSP_ASSERT_MSG(o.producer >= 0 && o.producer < i,
                     "operands must reference earlier ops");
      const ProgramOp& prod = ops_[static_cast<std::size_t>(o.producer)];
      if (array_.route(prod.pe, op.pe) == arch::RouteKind::kNone)
        throw InvalidArgumentError(
            "producer→consumer edge is not routable in one hop between " +
            std::to_string(prod.pe.row) + "," + std::to_string(prod.pe.col) +
            " and " + std::to_string(op.pe.row) + "," +
            std::to_string(op.pe.col));
      if (prod.priority >= op.priority)
        throw InvalidArgumentError(
            "priorities must strictly increase along dependence edges");
    }
    for (ProgIndex d : op.order_deps) {
      const ProgramOp& prod = ops_[static_cast<std::size_t>(d)];
      if (prod.priority >= op.priority)
        throw InvalidArgumentError(
            "priorities must strictly increase along order dependences");
    }
  }
}

std::int64_t PlacedProgram::count(ir::OpKind kind) const {
  return static_cast<std::int64_t>(
      std::count_if(ops_.begin(), ops_.end(),
                    [&](const ProgramOp& o) { return o.kind == kind; }));
}

}  // namespace rsp::sched
