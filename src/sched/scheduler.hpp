// Context scheduler: resource-constrained list scheduling of a placed
// program on a concrete architecture. This single pass realises:
//
//   * the base configuration context (base architecture: every PE owns a
//     multiplier, nothing to contend for except PEs and data buses);
//   * the paper's RS rearrangement rule — "shared resources are assigned to
//     PEs in the order of loop iteration; if shared resources lack, the
//     operations in later loop iterations are moved to the next cycle" —
//     via priority-ordered greedy unit assignment;
//   * the paper's RP rearrangement rule — "operations dependent on the
//     output of pipelined resources stall together; overlapped cycles of
//     consecutive pipelined operations are removed" — via the multi-cycle
//     multiplier latency and the units' one-issue-per-cycle pipelining.
//
// Resources modelled per cycle: one op per PE, `read_buses_per_row` loads
// and `write_buses_per_row` stores per row, and one issue per shared
// multiplier unit.
#pragma once

#include "arch/presets.hpp"
#include "sched/context.hpp"
#include "sched/program.hpp"

namespace rsp::sched {

struct SchedulerOptions {
  /// Safety valve: abort if a schedule exceeds this many cycles.
  int max_cycles = 1 << 20;
};

class ContextScheduler {
 public:
  explicit ContextScheduler(SchedulerOptions options = {})
      : options_(options) {}

  /// Schedules `program` on `architecture`.
  ConfigurationContext schedule(const PlacedProgram& program,
                                const arch::Architecture& architecture) const;

 private:
  SchedulerOptions options_;
};

/// The architecture with the same pipelining but effectively unlimited
/// shared units (one per PE in each row pool), used as the stall-free
/// reference when counting RS stalls.
arch::Architecture unlimited_units(const arch::Architecture& a);

}  // namespace rsp::sched
