// Steady-state (back-to-back) execution analysis.
//
// The paper's contexts describe one batch of loop iterations; streaming
// applications re-run the same context for the next data tile. Consecutive
// runs can overlap: run k+1 may start before run k drains, as long as no
// PE, bus or shared unit is double-booked and dataflow stays causal. The
// minimal safe offset between runs is the *initiation interval* (II); the
// steady-state throughput is ops-per-cycle at that II. This quantifies the
// pipelining headroom the schedule grids (Figs. 2/6) show visually: the
// staggered tail of one run interleaves with the head of the next.
#pragma once

#include "sched/context.hpp"

namespace rsp::sched {

struct SteadyState {
  int latency = 0;          ///< single-run length (context cycles)
  int initiation_interval = 0;  ///< min safe offset between runs
  double ops_per_cycle = 0.0;   ///< context ops / II
  /// Resource class that binds the II.
  enum class Bottleneck { kPe, kReadBus, kWriteBus, kSharedUnit, kNone };
  Bottleneck bottleneck = Bottleneck::kNone;
};

const char* to_string(SteadyState::Bottleneck b);

/// Computes the steady state of repeating `context` indefinitely.
SteadyState analyze_steady_state(const ConfigurationContext& context);

}  // namespace rsp::sched
