#include "sched/pretty.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace rsp::sched {

std::string render_schedule(const ConfigurationContext& context,
                            PrettyOptions options) {
  const arch::ArraySpec& array = context.architecture().array;
  const int cycles = std::min(context.length(), options.max_cycles);
  const bool pipelined = context.architecture().pipelines_multiplier();
  const int stages = context.architecture().mult_latency();

  // lane -> cycle -> symbols.
  const int lanes = options.per_pe ? array.num_pes() : array.cols;
  std::map<std::pair<int, int>, std::vector<std::string>> cells;

  for (const ScheduledOp& op : context.ops()) {
    const int lane =
        options.per_pe ? array.linear(op.pe) : op.pe.col;
    if (ir::is_critical_op(op.kind) && pipelined && options.show_stages) {
      for (int s = 0; s < stages; ++s) {
        if (op.cycle + s >= cycles) break;
        cells[{lane, op.cycle + s}].push_back(std::to_string(s + 1) + "*");
      }
    } else {
      if (op.cycle < cycles)
        cells[{lane, op.cycle}].push_back(ir::op_symbol(op.kind));
    }
  }

  std::vector<std::string> header = {options.per_pe ? "PE" : "col#"};
  for (int t = 0; t < cycles; ++t) header.push_back(std::to_string(t + 1));
  util::Table table(std::move(header));

  for (int lane = 0; lane < lanes; ++lane) {
    std::vector<std::string> row;
    if (options.per_pe) {
      const arch::PeCoord pe = array.coord(lane);
      row.push_back("(" + std::to_string(pe.row) + "," +
                    std::to_string(pe.col) + ")");
    } else {
      row.push_back(std::to_string(lane + 1));
    }
    bool any = false;
    for (int t = 0; t < cycles; ++t) {
      auto it = cells.find({lane, t});
      if (it == cells.end()) {
        row.push_back("");
        continue;
      }
      any = true;
      // Deduplicate symbols, keeping order of first appearance.
      std::vector<std::string> unique;
      for (const std::string& s : it->second)
        if (std::find(unique.begin(), unique.end(), s) == unique.end())
          unique.push_back(s);
      row.push_back(util::join(unique, ","));
    }
    if (any || options.per_pe) table.add_row(std::move(row));
  }

  std::ostringstream os;
  os << table.render();
  if (context.length() > options.max_cycles)
    os << "... (" << context.length() - options.max_cycles
       << " more cycles truncated)\n";
  return os.str();
}

}  // namespace rsp::sched
