#include "sched/context.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rsp::sched {

ConfigurationContext::ConfigurationContext(arch::Architecture architecture,
                                           std::vector<ScheduledOp> ops)
    : arch_(std::move(architecture)), ops_(std::move(ops)) {
  arch_.validate();
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const ScheduledOp& op = ops_[i];
    if (op.cycle < 0)
      throw InvalidArgumentError("op " + std::to_string(i) +
                                 " has negative issue cycle " +
                                 std::to_string(op.cycle));
    if (op.latency < 1)
      throw InvalidArgumentError("op " + std::to_string(i) + " has latency " +
                                 std::to_string(op.latency) +
                                 "; latency must be >= 1");
    length_ = std::max(length_, op.cycle + op.latency);
  }
}

const ScheduledOp& ConfigurationContext::op(ProgIndex i) const {
  if (i < 0 || i >= size()) throw NotFoundError("op index out of range");
  return ops_[static_cast<std::size_t>(i)];
}

std::vector<ProgIndex> ConfigurationContext::ops_at(int cycle) const {
  std::vector<ProgIndex> out;
  for (ProgIndex i = 0; i < size(); ++i)
    if (ops_[static_cast<std::size_t>(i)].cycle == cycle) out.push_back(i);
  std::sort(out.begin(), out.end(), [&](ProgIndex a, ProgIndex b) {
    return ops_[static_cast<std::size_t>(a)].priority <
           ops_[static_cast<std::size_t>(b)].priority;
  });
  return out;
}

std::vector<int> ConfigurationContext::critical_issues_per_cycle() const {
  std::vector<int> counts(static_cast<std::size_t>(length_), 0);
  for (const ScheduledOp& op : ops_)
    if (ir::is_critical_op(op.kind))
      ++counts[static_cast<std::size_t>(op.cycle)];
  return counts;
}

int ConfigurationContext::max_critical_issues_per_cycle() const {
  const std::vector<int> counts = critical_issues_per_cycle();
  return counts.empty() ? 0 : *std::max_element(counts.begin(), counts.end());
}

namespace {

std::uint8_t opcode_of(ir::OpKind kind) {
  return static_cast<std::uint8_t>(kind) + 1;  // 0 = idle
}

}  // namespace

arch::ConfigCache ConfigurationContext::encode() const {
  arch::ConfigCache cache(arch_.array, std::max(length_, 1));
  for (ProgIndex i = 0; i < size(); ++i) {
    const ScheduledOp& op = ops_[static_cast<std::size_t>(i)];
    arch::ConfigWord& w = cache.word(op.pe, op.cycle);
    if (w.opcode != 0)
      throw InvalidArgumentError(
          "PE issues two operations in the same cycle; context is illegal");
    w.opcode = opcode_of(op.kind);
    w.immediate = static_cast<std::int32_t>(op.imm);
    w.mem_access = ir::is_memory_op(op.kind);
    // Operand source encoding: 0 = none/immediate, 1 = same PE,
    // 2 = neighbour, 3 = row line, 4 = column line.
    auto encode_src = [&](const ProgOperand& o) -> std::uint8_t {
      if (o.is_imm()) return 0;
      switch (arch_.array.route(op.pe,
                                ops_[static_cast<std::size_t>(o.producer)].pe)) {
        case arch::RouteKind::kSamePe:
          return 1;
        case arch::RouteKind::kNeighbor:
          return 2;
        case arch::RouteKind::kRowLine:
          return 3;
        case arch::RouteKind::kColumnLine:
          return 4;
        case arch::RouteKind::kNone:
          break;
      }
      throw InvalidArgumentError("unroutable operand in context encoding");
    };
    // Sources are stored from the *consumer* perspective.
    if (!op.operands.empty()) w.src_a = encode_src(op.operands[0]);
    if (op.operands.size() > 1) w.src_b = encode_src(op.operands[1]);
    if (op.unit) {
      // 1-based position of the unit among the PE's reachable units.
      const auto reachable = arch_.sharing.reachable_units(arch_.array, op.pe);
      auto it = std::find(reachable.begin(), reachable.end(), *op.unit);
      if (it == reachable.end())
        throw InvalidArgumentError("scheduled unit unreachable from its PE");
      w.shared_select =
          static_cast<std::uint8_t>(1 + (it - reachable.begin()));
    }
  }
  return cache;
}

}  // namespace rsp::sched
