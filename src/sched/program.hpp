// Placed program: the output of the loop-pipelining mapper and the input of
// the context scheduler.
//
// A `PlacedProgram` fixes *where* every operation runs (its PE) and in which
// *order* operations compete for resources (the priority, which encodes the
// paper's "in the order of loop iteration" rule), but not *when* — cycles
// are assigned by the `ContextScheduler` for a concrete architecture. The
// same placed program scheduled on Base / RS#k / RSP#k yields the paper's
// base context and its RS/RSP rearrangements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/array.hpp"
#include "ir/unroll.hpp"

namespace rsp::sched {

/// Index into PlacedProgram::ops.
using ProgIndex = std::int64_t;
inline constexpr ProgIndex kNoProducer = -1;

/// Operand of a placed op: a producer inside the program or an immediate.
struct ProgOperand {
  ProgIndex producer = kNoProducer;
  std::int64_t imm = 0;
  bool is_imm() const { return producer == kNoProducer; }
};

/// One placed operation.
struct ProgramOp {
  ir::OpKind kind = ir::OpKind::kNop;
  arch::PeCoord pe;
  /// Resource-competition order; strictly increasing along every dependence
  /// chain. Lower priority = earlier loop iteration = wins contended units.
  std::int64_t priority = 0;
  /// Originating iteration; -1 for mapper-inserted epilogue (reduction) ops.
  std::int64_t iter = -1;
  /// Originating op in the unrolled graph; ir::kInvalidOp for epilogue ops.
  ir::OpId source = ir::kInvalidOp;
  std::vector<ProgOperand> operands;
  std::int64_t imm = 0;      ///< const value / shift amount
  std::string array;         ///< memory ops
  std::int64_t address = 0;  ///< memory ops
  /// Ordering-only predecessors (memory RAW/WAR/WAW). They carry no value
  /// and need no route — the dependence flows through data memory.
  std::vector<ProgIndex> order_deps;
  /// Earliest issue cycle. The mapper pins every loop op to its nominal
  /// lockstep slot (wave start + body slot) so the configuration context
  /// follows the Fig. 2 staggered-wave discipline; the scheduler may only
  /// move ops *later* (stalls), never earlier.
  int not_before = 0;
};

/// The full placed computation for one kernel on one array geometry.
class PlacedProgram {
 public:
  explicit PlacedProgram(arch::ArraySpec array) : array_(array) {
    array_.validate();
  }

  const arch::ArraySpec& array() const { return array_; }

  /// Appends an op; operands must reference earlier ops. Returns its index.
  ProgIndex add(ProgramOp op);

  const std::vector<ProgramOp>& ops() const { return ops_; }
  const ProgramOp& op(ProgIndex i) const;
  std::int64_t size() const { return static_cast<std::int64_t>(ops_.size()); }

  /// Index of the program op realising unrolled op `source`
  /// (kNoProducer if the mapper dropped/replaced it).
  ProgIndex index_of_source(ir::OpId source) const;

  /// Structural checks: operand ordering, PE bounds, single-hop routability
  /// of every producer→consumer edge, priorities monotone along edges.
  void validate() const;

  /// Number of mult ops (for quick sanity checks).
  std::int64_t count(ir::OpKind kind) const;

 private:
  arch::ArraySpec array_;
  std::vector<ProgramOp> ops_;
  std::vector<ProgIndex> source_index_;  // unrolled OpId -> program index
};

}  // namespace rsp::sched
