#include "core/evaluator.hpp"

#include "util/error.hpp"

namespace rsp::core {

EvalResult RspEvaluator::evaluate(const sched::PlacedProgram& program,
                                  const arch::Architecture& architecture,
                                  double base_et_ns) const {
  EvalResult r;
  r.arch_name = architecture.name;
  const sched::PerfPoint perf =
      sched::measure(scheduler_, program, architecture);
  r.cycles = perf.cycles;
  r.stalls = perf.stalls;
  r.clock_ns = synth_.clock_ns(architecture);
  r.execution_time_ns = r.cycles * r.clock_ns;
  const sched::ConfigurationContext context =
      scheduler_.schedule(program, architecture);
  r.max_mults_per_cycle = context.max_critical_issues_per_cycle();
  if (base_et_ns > 0.0)
    r.delay_reduction_percent =
        100.0 * (base_et_ns - r.execution_time_ns) / base_et_ns;
  return r;
}

std::vector<EvalResult> RspEvaluator::evaluate_suite(
    const sched::PlacedProgram& program,
    const std::vector<arch::Architecture>& suite) const {
  if (suite.empty())
    throw InvalidArgumentError("evaluate_suite requires architectures");
  std::vector<EvalResult> out;
  out.reserve(suite.size());
  const EvalResult base = evaluate(program, suite.front(), 0.0);
  out.push_back(base);
  for (std::size_t i = 1; i < suite.size(); ++i)
    out.push_back(
        evaluate(program, suite[i], base.execution_time_ns));
  return out;
}

}  // namespace rsp::core
