#include "core/evaluator.hpp"

#include "util/error.hpp"

namespace rsp::core {

MeasuredPerf measure_perf(const sched::ContextScheduler& scheduler,
                          const sched::PlacedProgram& program,
                          const arch::Architecture& architecture) {
  // One schedule serves both the PerfPoint and the issue-width column.
  const sched::ConfigurationContext context =
      scheduler.schedule(program, architecture);
  MeasuredPerf m;
  m.perf = sched::measure(scheduler, program, architecture, context);
  m.max_critical_issues = context.max_critical_issues_per_cycle();
  return m;
}

EvalResult make_eval_result(const arch::Architecture& architecture,
                            const MeasuredPerf& measured, double clock_ns) {
  EvalResult r;
  r.arch_name = architecture.name;
  r.cycles = measured.perf.cycles;
  r.stalls = measured.perf.stalls;
  r.clock_ns = clock_ns;
  r.execution_time_ns = r.cycles * r.clock_ns;
  r.max_mults_per_cycle = measured.max_critical_issues;
  return r;
}

EvalResult RspEvaluator::evaluate_raw(
    const sched::PlacedProgram& program,
    const arch::Architecture& architecture) const {
  return make_eval_result(architecture,
                          measure_perf(scheduler_, program, architecture),
                          synth_.clock_ns(architecture));
}

EvalResult RspEvaluator::evaluate(const sched::PlacedProgram& program,
                                  const arch::Architecture& architecture,
                                  double base_et_ns) const {
  EvalResult r = evaluate_raw(program, architecture);
  if (base_et_ns > 0.0)
    r.delay_reduction_percent =
        100.0 * (base_et_ns - r.execution_time_ns) / base_et_ns;
  return r;
}

void RspEvaluator::apply_delay_reductions(std::vector<EvalResult>& rows) {
  if (rows.empty()) return;
  const double base_et_ns = rows.front().execution_time_ns;
  if (base_et_ns <= 0.0) return;
  for (std::size_t i = 1; i < rows.size(); ++i)
    rows[i].delay_reduction_percent =
        100.0 * (base_et_ns - rows[i].execution_time_ns) / base_et_ns;
}

std::vector<EvalResult> RspEvaluator::evaluate_suite(
    const sched::PlacedProgram& program,
    const std::vector<arch::Architecture>& suite) const {
  if (suite.empty())
    throw InvalidArgumentError("evaluate_suite requires architectures");
  std::vector<EvalResult> out;
  out.reserve(suite.size());
  for (const arch::Architecture& a : suite)
    out.push_back(evaluate_raw(program, a));
  apply_delay_reductions(out);
  return out;
}

}  // namespace rsp::core
