// Fast performance upper bound used inside the RSP exploration loop
// (paper §4): instead of fully rescheduling every candidate, count per
// cycle how many critical operations the *initial* (base) context issues
// and compare with the candidate's shared-unit capacity (RS stall bound),
// and account for the extra latency of pipelined multiplications along the
// longest multiplication chain (RP stall bound). The paper notes "in
// reality, more cycles may stall … thus this approximation is an upper
// bound of the performance" — i.e. the estimate is optimistic; the exact
// number comes from full rescheduling afterwards.
#pragma once

#include "arch/presets.hpp"
#include "sched/context.hpp"

namespace rsp::core {

struct PerfEstimate {
  int base_cycles = 0;
  int rs_stall_bound = 0;   ///< extra cycles from lacking shared units
  int rp_overhead = 0;      ///< extra cycles from multi-cycle multiplication
  int estimated_cycles() const {
    return base_cycles + rs_stall_bound + rp_overhead;
  }
};

/// Estimates the cycle count of `target` from the base-architecture context
/// without rescheduling. `base_context` must come from the base
/// architecture of the same array geometry.
PerfEstimate estimate_performance(const sched::ConfigurationContext& base_context,
                                  const arch::Architecture& target);

/// Longest chain of dependent multiplications in the context (the RP
/// overhead multiplies this by stages-1).
int longest_mult_chain(const sched::ConfigurationContext& context);

}  // namespace rsp::core
