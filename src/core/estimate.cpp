#include "core/estimate.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace rsp::core {

int longest_mult_chain(const sched::ConfigurationContext& context) {
  // DP over ops in index order (operands reference earlier indices).
  const auto& ops = context.ops();
  std::vector<int> depth(ops.size(), 0);
  int best = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    int in_depth = 0;
    for (const sched::ProgOperand& o : ops[i].operands) {
      if (o.is_imm()) continue;
      in_depth = std::max(in_depth, depth[static_cast<std::size_t>(o.producer)]);
    }
    depth[i] = in_depth + (ir::is_critical_op(ops[i].kind) ? 1 : 0);
    best = std::max(best, depth[i]);
  }
  return best;
}

namespace {

/// Maximum number of multiplications in one cycle that can be served by the
/// row/column unit pools (bipartite matching, Kuhn's algorithm; each mult
/// at PE(r,c) may use a unit of row pool r or column pool c). Exact, so the
/// derived stall bound stays optimistic.
int max_served(const std::vector<arch::PeCoord>& mults,
               const arch::Architecture& target) {
  const int upr = target.sharing.units_per_row;
  const int upc = target.sharing.units_per_col;
  // Unit slots: row pools first, then column pools.
  const int row_slots = target.array.rows * upr;
  const int total_slots = row_slots + target.array.cols * upc;
  std::vector<int> slot_owner(static_cast<std::size_t>(total_slots), -1);

  auto candidate_slots = [&](const arch::PeCoord& pe) {
    std::vector<int> slots;
    for (int u = 0; u < upr; ++u) slots.push_back(pe.row * upr + u);
    for (int u = 0; u < upc; ++u)
      slots.push_back(row_slots + pe.col * upc + u);
    return slots;
  };

  std::vector<char> visited;
  // Augmenting path search from mult `m`.
  auto try_assign = [&](auto&& self, int m) -> bool {
    for (int slot : candidate_slots(mults[static_cast<std::size_t>(m)])) {
      if (visited[static_cast<std::size_t>(slot)]) continue;
      visited[static_cast<std::size_t>(slot)] = 1;
      if (slot_owner[static_cast<std::size_t>(slot)] < 0 ||
          self(self, slot_owner[static_cast<std::size_t>(slot)])) {
        slot_owner[static_cast<std::size_t>(slot)] = m;
        return true;
      }
    }
    return false;
  };

  int served = 0;
  for (int m = 0; m < static_cast<int>(mults.size()); ++m) {
    visited.assign(static_cast<std::size_t>(total_slots), 0);
    if (try_assign(try_assign, m)) ++served;
  }
  return served;
}

}  // namespace

PerfEstimate estimate_performance(
    const sched::ConfigurationContext& base_context,
    const arch::Architecture& target) {
  if (base_context.architecture().shares_multiplier())
    throw InvalidArgumentError(
        "estimate_performance expects the base-architecture context");
  if (base_context.architecture().array != target.array)
    throw InvalidArgumentError("array geometries differ");

  PerfEstimate est;
  est.base_cycles = base_context.length();

  if (target.shares_multiplier()) {
    const int capacity = target.sharing.total_units(target.array);
    RSP_ASSERT(capacity > 0);

    // Per-cycle multiplication sites from the initial (base) context.
    std::vector<std::vector<arch::PeCoord>> mults_at(
        static_cast<std::size_t>(est.base_cycles));
    for (const sched::ScheduledOp& op : base_context.ops())
      if (ir::is_critical_op(op.kind))
        mults_at[static_cast<std::size_t>(op.cycle)].push_back(op.pe);

    // Backlog model: each cycle serves what the unit pools can reach
    // (exact matching); the surplus queues and may drain into later spare
    // capacity. Only the final backlog forces extra cycles. Dependences
    // and operand routing are ignored, so the bound never overestimates —
    // the paper's "upper bound of the performance".
    long backlog = 0;
    for (const auto& mults : mults_at) {
      const int demand = static_cast<int>(mults.size());
      const int served = demand == 0 ? 0 : max_served(mults, target);
      backlog += demand - served;
      if (demand < capacity)
        backlog = std::max<long>(0, backlog - (capacity - demand));
    }
    est.rs_stall_bound = static_cast<int>((backlog + capacity - 1) / capacity);
  }
  if (target.pipelines_multiplier()) {
    est.rp_overhead =
        (target.sharing.pipeline_stages - 1) * longest_mult_chain(base_context);
  }
  return est;
}

}  // namespace rsp::core
