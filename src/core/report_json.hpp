// JSON export of evaluation results and synthesis reports, so downstream
// tooling (plots, regression dashboards) consumes structured data instead
// of scraping the bench tables.
#pragma once

#include <vector>

#include "core/evaluator.hpp"
#include "synth/synthesis.hpp"
#include "util/json.hpp"

namespace rsp::core {

/// One kernel's evaluation across a suite of architectures.
util::Json to_json(const std::string& kernel_name,
                   const std::vector<EvalResult>& rows);

/// A synthesis report row (Table 2 style).
util::Json to_json(const synth::SynthesisReport& report);

/// Whole Table-2-style suite.
util::Json to_json(const std::vector<synth::SynthesisReport>& reports);

}  // namespace rsp::core
