// RSP evaluation: cycles, stalls, execution time and delay reduction of a
// placed program across architectures — the machinery behind the paper's
// Tables 4 and 5:
//   ET(ns) = cycles × system clock period
//   DR(%)  = 100 · (ET_base − ET) / ET_base
//   stalls = cycles − cycles(same pipelining, unlimited units)
#pragma once

#include <string>
#include <vector>

#include "sched/report.hpp"
#include "sched/scheduler.hpp"
#include "synth/synthesis.hpp"

namespace rsp::core {

struct EvalResult {
  std::string arch_name;
  int cycles = 0;
  int stalls = 0;            ///< RS-style stalls (resource lack)
  double clock_ns = 0.0;
  double execution_time_ns = 0.0;
  double delay_reduction_percent = 0.0;  ///< vs the base architecture
  int max_mults_per_cycle = 0;           ///< measured on this context
};

/// Scheduling-only measurement of one (program, architecture) pair.
struct MeasuredPerf {
  sched::PerfPoint perf;
  int max_critical_issues = 0;  ///< peak critical-resource issues per cycle
};

/// Measures a pair with a single schedule serving both the PerfPoint and
/// the issue-width column. Shared by the serial evaluator and
/// runtime::ParallelExplorer so the two paths cannot drift.
MeasuredPerf measure_perf(const sched::ContextScheduler& scheduler,
                          const sched::PlacedProgram& program,
                          const arch::Architecture& architecture);

/// Assembles the EvalResult row (delay reduction left 0) from a
/// measurement — the single definition of the row's derived fields.
EvalResult make_eval_result(const arch::Architecture& architecture,
                            const MeasuredPerf& measured, double clock_ns);

class RspEvaluator {
 public:
  explicit RspEvaluator(synth::SynthesisModel synth = synth::SynthesisModel(),
                        sched::SchedulerOptions options = {})
      : synth_(std::move(synth)), scheduler_(options) {}

  const synth::SynthesisModel& synthesis() const { return synth_; }
  const sched::ContextScheduler& scheduler() const { return scheduler_; }

  /// Evaluates one architecture. `base_et_ns` <= 0 means "this is the base";
  /// pass the base's ET to fill the delay-reduction column.
  EvalResult evaluate(const sched::PlacedProgram& program,
                      const arch::Architecture& architecture,
                      double base_et_ns = 0.0) const;

  /// Evaluates one architecture without the delay-reduction column. Rows
  /// produced this way are position-independent, so parallel runtimes can
  /// compute them in any order and fill the column afterwards with
  /// `apply_delay_reductions` — bit-identical to the serial path.
  EvalResult evaluate_raw(const sched::PlacedProgram& program,
                          const arch::Architecture& architecture) const;

  /// Fills `delay_reduction_percent` of rows[1..] against rows[0] (the
  /// base); rows[0] keeps 0. Uses the exact formula of `evaluate`.
  static void apply_delay_reductions(std::vector<EvalResult>& rows);

  /// Evaluates the whole suite; the first entry must be the base
  /// architecture (delay reductions are computed against it).
  std::vector<EvalResult> evaluate_suite(
      const sched::PlacedProgram& program,
      const std::vector<arch::Architecture>& suite) const;

 private:
  synth::SynthesisModel synth_;
  sched::ContextScheduler scheduler_;
};

}  // namespace rsp::core
