#include "core/report_json.hpp"

namespace rsp::core {

util::Json to_json(const std::string& kernel_name,
                   const std::vector<EvalResult>& rows) {
  util::Json j = util::Json::object();
  j.set("kernel", kernel_name);
  util::Json arr = util::Json::array();
  for (const EvalResult& r : rows) {
    util::Json row = util::Json::object();
    row.set("arch", r.arch_name)
        .set("cycles", r.cycles)
        .set("stalls", r.stalls)
        .set("clock_ns", r.clock_ns)
        .set("execution_time_ns", r.execution_time_ns)
        .set("delay_reduction_percent", r.delay_reduction_percent)
        .set("max_mults_per_cycle", r.max_mults_per_cycle);
    arr.push(std::move(row));
  }
  j.set("results", std::move(arr));
  return j;
}

util::Json to_json(const synth::SynthesisReport& r) {
  util::Json j = util::Json::object();
  j.set("arch", r.arch_name)
      .set("pe_area_slices", r.pe_area)
      .set("switch_area_slices", r.switch_area)
      .set("array_area_slices", r.array_area)
      .set("area_reduction_percent", r.area_reduction)
      .set("pe_delay_ns", r.pe_delay)
      .set("switch_delay_ns", r.switch_delay)
      .set("clock_ns", r.clock)
      .set("delay_reduction_percent", r.delay_reduction);
  return j;
}

util::Json to_json(const std::vector<synth::SynthesisReport>& reports) {
  util::Json arr = util::Json::array();
  for (const synth::SynthesisReport& r : reports) arr.push(to_json(r));
  return arr;
}

}  // namespace rsp::core
