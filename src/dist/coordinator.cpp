#include "dist/coordinator.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "api/protocol.hpp"
#include "kernels/registry.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace rsp::dist {

// ------------------------------------------------------------ run plumbing

/// One per-run worker connection. The owning phase thread is the only
/// reader/writer of the streams; the shared PhaseState mutex covers every
/// field the merge and accounting paths read. Links live in a std::deque
/// so the prober can append re-admitted connections mid-phase without
/// invalidating the pointers running worker threads hold.
struct DseCoordinator::WorkerLink {
  std::size_t index = 0;  ///< into addresses_ / worker_stats_
  api::ListenAddress address;
  int fd = -1;
  std::unique_ptr<api::SocketStreamBuf> buf;
  std::unique_ptr<std::istream> in;
  std::unique_ptr<std::ostream> out;
  bool alive = false;
  long next_id = 0;
  std::string last_error;
  // Run-local counters, folded into worker_stats_ once per run.
  long shards = 0;
  long retries = 0;
  long busy_ms = 0;
};

struct DseCoordinator::Shard {
  std::size_t begin = 0;
  std::size_t end = 0;
  int attempts = 0;  ///< transport failures so far
};

/// The pull queue one phase's worker threads drain. Workers pop shards
/// when ready (work stealing by construction: a slow worker simply pulls
/// less), push failed shards back for the survivors, and wait on the
/// condition while peers still have shards in flight — an in-flight shard
/// may yet be re-queued. The prober thread shares the same mutex/condition:
/// quarantine events wake it, and it appends re-admitted links and their
/// worker threads under the same lock.
struct DseCoordinator::PhaseState {
  util::Mutex mu;
  std::condition_variable_any cv;
  std::deque<Shard> queue RSP_GUARDED_BY(mu);
  /// Shards out of remote attempts (or stranded when every worker was
  /// lost), destined for the in-process fallback after the joins.
  std::deque<Shard> local_queue RSP_GUARDED_BY(mu);
  /// Shards queued or in flight *remotely*.
  std::size_t pending RSP_GUARDED_BY(mu) = 0;
  int active_workers RSP_GUARDED_BY(mu) = 0;
  bool failed RSP_GUARDED_BY(mu) = false;
  std::string error RSP_GUARDED_BY(mu);
  /// Most recent transport failure, for messages.
  std::string last_loss RSP_GUARDED_BY(mu);
  long redispatched RSP_GUARDED_BY(mu) = 0;
  /// op/kernels/config/mode — identical for every shard of the phase;
  /// begin/end and the envelope are stamped per request.
  util::Json request_template;
  // The same shard parameters, typed — what drain_locally feeds
  // Service::dse_shard so the fallback path runs the identical request.
  std::vector<std::string> kernels;
  dse::ExplorerConfig config;
  bool exact = false;
  /// Merges one ok response into the run's slots; called under `mu`, in
  /// completion order (slot writes make order irrelevant). Throws
  /// rsp::Error on malformed or inconsistent payloads — fatal.
  std::function<void(const Shard&, const util::Json&)> apply;
  /// The run's link deque — the prober appends re-admitted links here.
  std::deque<WorkerLink>* links = nullptr;
  /// Every worker thread of the phase, the prober's re-admissions
  /// included; grows only under `mu`, joined after the prober exits.
  std::vector<std::thread> threads RSP_GUARDED_BY(mu);
};

DseCoordinator::DseCoordinator(std::vector<api::ListenAddress> workers,
                               CoordinatorOptions options)
    : addresses_(std::move(workers)),
      options_(options),
      worker_stats_(addresses_.size()) {
  if (addresses_.empty())
    throw InvalidArgumentError("coordinator requires at least one worker");
  if (options_.shard_points < 1)
    throw InvalidArgumentError("'shard_points' must be positive");
  if (options_.request_timeout_ms < 0)
    throw InvalidArgumentError("'request_timeout_ms' must be non-negative");
  options_.redispatch.validate("'redispatch'");
  options_.connect.validate("'connect'");
  options_.probe.validate("'probe'");
  if (options_.circuit_breaker_failures < 1)
    throw InvalidArgumentError(
        "'circuit_breaker_failures' must be positive");
}

DseCoordinator::~DseCoordinator() = default;

DseCoordinator::LinkResult DseCoordinator::open_link(
    std::size_t index, const api::ConnectOptions& policy, WorkerLink& link,
    std::string& error) {
  link.index = index;
  link.address = addresses_[index];
  try {
    link.fd = api::connect_socket(link.address, policy);
  } catch (const std::exception& e) {
    error = e.what();
    return LinkResult::kTransport;
  }
  if (options_.request_timeout_ms > 0) {
    // Per-request timeout: a stalled worker surfaces as a failed
    // recv/send, which the transport-failure path turns into a
    // quarantine + redispatch.
    timeval tv{};
    tv.tv_sec = options_.request_timeout_ms / 1000;
    tv.tv_usec =
        static_cast<suseconds_t>(options_.request_timeout_ms % 1000) * 1000;
    ::setsockopt(link.fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(link.fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  link.buf = std::make_unique<api::SocketStreamBuf>(link.fd);
  link.in = std::make_unique<std::istream>(link.buf.get());
  link.out = std::make_unique<std::ostream>(link.buf.get());

  // Handshake: proves the peer speaks v2 *and* the worker ops before any
  // shard is entrusted to it. A pre-dist server answers with its
  // unknown-op error, which is exactly the message to surface.
  util::Json probe = util::Json::object();
  probe.set("op", "worker_info");
  util::Json info;
  if (!round_trip(link, std::move(probe), info)) {
    error = "worker '" + link.address.spec() +
            "' handshake failed: " + link.last_error;
    ::close(link.fd);
    link.fd = -1;
    return LinkResult::kTransport;
  }
  const bool ok = info.contains("ok") && info.at("ok").is_bool() &&
                  info.at("ok").as_bool();
  if (!ok) {
    const std::string why =
        info.contains("error") && info.at("error").is_string()
            ? info.at("error").as_string()
            : info.dump();
    error = "worker '" + link.address.spec() +
            "' refused the worker_info handshake: " + why;
    ::close(link.fd);
    link.fd = -1;
    return LinkResult::kRefused;
  }
  long pid = 0;
  if (info.contains("pid") && info.at("pid").is_number())
    pid = static_cast<long>(info.at("pid").as_number());
  link.alive = true;
  {
    const util::MutexLock lk(mu_);
    WorkerStats& stats = worker_stats_[index];
    if (pid != 0 && stats.last_pid != 0 && stats.last_pid != pid)
      RSP_LOG(kInfo) << "worker '" << link.address.spec()
                     << "' restarted (pid " << stats.last_pid << " -> "
                     << pid << ")";
    if (pid != 0) stats.last_pid = pid;
    stats.alive = true;
  }
  return LinkResult::kOk;
}

std::deque<DseCoordinator::WorkerLink> DseCoordinator::connect_workers() {
  std::deque<WorkerLink> links;
  std::size_t connected = 0;
  std::string first_error;
  try {
    for (std::size_t i = 0; i < addresses_.size(); ++i) {
      WorkerLink link;
      std::string error;
      const LinkResult result = open_link(i, options_.connect, link, error);
      if (result == LinkResult::kRefused)
        // Deterministic misconfiguration (wrong binary, a pre-dist
        // server): every retry and every run would be refused
        // identically, so no quarantine — fail loudly now.
        throw Error(error);
      if (result == LinkResult::kTransport) {
        // Unreachable is a fleet-health event, not a run-fatal one: the
        // health prober keeps trying mid-run, and the survivors (or the
        // local fallback) carry the shards meanwhile.
        const util::MutexLock lk(mu_);
        WorkerStats& stats = worker_stats_[i];
        if (!stats.in_quarantine) {
          stats.in_quarantine = true;
          ++stats.quarantined;
        }
        ++stats.consecutive_failures;
        stats.alive = false;
        if (first_error.empty()) first_error = error;
        RSP_LOG(kWarning) << "worker '" << addresses_[i].spec()
                          << "' unreachable at run start, quarantined: "
                          << error;
        continue;
      }
      {
        const util::MutexLock lk(mu_);
        worker_stats_[i].in_quarantine = false;
      }
      ++connected;
      links.push_back(std::move(link));
    }
  } catch (...) {
    for (WorkerLink& link : links)
      if (link.fd >= 0) ::close(link.fd);
    throw;
  }
  if (connected == 0 && !options_.local_fallback)
    throw Error("cannot reach any worker (first: " + first_error + ")");
  return links;
}

bool DseCoordinator::round_trip(WorkerLink& link, util::Json request,
                                util::Json& response) {
  const std::string id = "shard-" + std::to_string(++link.next_id);
  util::Json envelope = util::Json::object();
  envelope.set("protocol_version", api::kProtocolVersion);
  envelope.set("id", id);
  envelope.merge(std::move(request));

  const auto start = std::chrono::steady_clock::now();
  *link.out << envelope.dump() << "\n" << std::flush;
  if (!*link.out) {
    link.last_error = "send failed";
    return false;
  }
  std::string line;
  if (!std::getline(*link.in, line)) {
    link.last_error = link.buf->read_failed()
                          ? "connection reset or request timed out"
                          : "connection closed by worker";
    return false;
  }
  link.busy_ms += std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  try {
    response = util::Json::parse(line);
  } catch (const std::exception& e) {
    link.last_error = std::string("malformed response: ") + e.what();
    return false;
  }
  // Strict pairing: exactly one outstanding request per link, so anything
  // but our own id echoed back means the conversation is corrupt.
  if (!response.is_object() || !response.contains("id") ||
      !response.at("id").is_string() ||
      response.at("id").as_string() != id) {
    link.last_error = "response id mismatch";
    return false;
  }
  return true;
}

void DseCoordinator::quarantine_worker(WorkerLink& link, PhaseState& state)
    RSP_REQUIRES(state.mu) {
  link.alive = false;
  --state.active_workers;
  state.last_loss = link.last_error;
  const util::MutexLock lk(mu_);
  WorkerStats& stats = worker_stats_[link.index];
  if (!stats.in_quarantine) {
    stats.in_quarantine = true;
    ++stats.quarantined;
  }
  ++stats.consecutive_failures;
  stats.alive = false;
}

void DseCoordinator::worker_loop(WorkerLink& link, PhaseState& state) {
  for (;;) {
    Shard shard;
    {
      util::MutexLock lk(state.mu);
      lk.wait(state.cv, [&]() RSP_REQUIRES(state.mu) {
        return state.failed || !state.queue.empty() || state.pending == 0;
      });
      // Queue empty with nothing in flight = phase done; an in-flight
      // shard elsewhere may still be re-queued, so keep waiting for it.
      if (state.failed || state.queue.empty()) return;
      shard = state.queue.front();
      state.queue.pop_front();
    }
    if (shard.attempts > 0)
      options_.redispatch.sleep_before_retry(shard.attempts);

    util::Json request = state.request_template;
    request.set("begin", static_cast<std::int64_t>(shard.begin));
    request.set("end", static_cast<std::int64_t>(shard.end));

    util::Json response;
    if (!round_trip(link, std::move(request), response)) {
      // Transport failure: quarantine the worker (the prober may bring it
      // — or a restarted successor — back) and put the shard back for the
      // survivors, under the bounded redispatch policy.
      const std::string shard_name = "shard [" +
                                     std::to_string(shard.begin) + ", " +
                                     std::to_string(shard.end) + ")";
      const util::MutexLock lk(state.mu);
      ++link.retries;
      quarantine_worker(link, state);
      ++shard.attempts;
      if (!options_.redispatch.should_retry(shard.attempts)) {
        if (options_.local_fallback) {
          state.local_queue.push_back(shard);
          --state.pending;
          RSP_LOG(kWarning)
              << shard_name << " out of remote attempts, queued for "
              << "local evaluation (last: " << link.last_error << ")";
        } else {
          state.failed = true;
          state.error =
              options_.redispatch.give_up(shard_name, link.last_error);
        }
      } else {
        state.queue.push_back(shard);
        ++state.redispatched;
        RSP_LOG(kWarning) << "worker " << link.address.spec()
                          << " lost, re-dispatching " << shard_name << ": "
                          << link.last_error;
      }
      state.cv.notify_all();
      return;
    }

    const util::MutexLock lk(state.mu);
    if (state.failed) return;
    try {
      // An in-band rejection is fatal, not retryable: shard requests are
      // deterministic, so every worker would reject them identically.
      const bool ok = response.contains("ok") &&
                      response.at("ok").is_bool() &&
                      response.at("ok").as_bool();
      if (!ok) {
        const std::string why =
            response.contains("error") && response.at("error").is_string()
                ? response.at("error").as_string()
                : response.dump();
        throw Error("worker " + link.address.spec() +
                    " rejected shard: " + why);
      }
      state.apply(shard, response);
    } catch (const std::exception& e) {
      state.failed = true;
      state.error = e.what();
      state.cv.notify_all();
      return;
    }
    ++link.shards;
    --state.pending;
    {
      // A completed shard is the one event that resets the circuit
      // breaker: the worker proved it can do real work again.
      const util::MutexLock stats_lk(mu_);
      worker_stats_[link.index].consecutive_failures = 0;
    }
    state.cv.notify_all();
  }
}

void DseCoordinator::prober_loop(PhaseState& state) {
  using Clock = std::chrono::steady_clock;
  // Per-phase probe schedule; a fresh quarantine (or a successful
  // re-admission followed by a later loss) restarts a worker's budget.
  struct Slot {
    int attempts = 0;
    Clock::time_point next;  ///< default epoch: due immediately
    bool exhausted = false;
  };
  std::unordered_map<std::size_t, Slot> slots;

  util::MutexLock lk(state.mu);
  for (;;) {
    if (state.failed || state.pending == 0) return;

    // Snapshot the probe-eligible quarantined workers (stats lock nests
    // inside state.mu).
    std::vector<std::size_t> candidates;
    {
      const util::MutexLock stats_lk(mu_);
      for (std::size_t i = 0; i < addresses_.size(); ++i) {
        const WorkerStats& stats = worker_stats_[i];
        if (!stats.in_quarantine) continue;
        if (stats.consecutive_failures >= options_.circuit_breaker_failures)
          continue;  // breaker open: stop probing a flapper
        if (slots[i].exhausted) continue;
        candidates.push_back(i);
      }
    }

    const auto now = Clock::now();
    std::size_t due = addresses_.size();  // sentinel: nobody due yet
    auto earliest = now + std::chrono::hours(1);
    for (const std::size_t i : candidates) {
      const Slot& slot = slots[i];
      if (slot.next <= now) {
        due = i;
        break;
      }
      earliest = std::min(earliest, slot.next);
    }

    if (due == addresses_.size()) {
      if (!candidates.empty()) {
        // Everyone eligible is backing off; sleep until the earliest
        // probe comes due (or the phase resolves).
        lk.wait_until(state.cv, earliest);
        continue;
      }
      if (state.active_workers > 0) {
        // Nothing to probe while the survivors work; a quarantine event
        // or the end of the phase wakes us.
        lk.wait(state.cv);
        continue;
      }
      // Endgame: every worker is lost (or breaker-open, or out of probe
      // budget) and shards are still pending — nothing is in flight, so
      // the queue holds them all. Finish the run locally, or abort.
      if (options_.local_fallback) {
        while (!state.queue.empty()) {
          state.local_queue.push_back(state.queue.front());
          state.queue.pop_front();
          --state.pending;
        }
      } else {
        state.failed = true;
        state.error = "all workers lost with shards pending (last: " +
                      state.last_loss + ")";
      }
      state.cv.notify_all();
      return;
    }

    // Probe `due` outside both locks: one single-shot connect+handshake.
    Slot& slot = slots[due];
    ++slot.attempts;
    {
      const util::MutexLock stats_lk(mu_);
      ++worker_stats_[due].probes;
    }
    lk.unlock();
    WorkerLink fresh;
    std::string error;
    const api::ConnectOptions single_attempt{1, 0};
    const LinkResult result = open_link(due, single_attempt, fresh, error);
    lk.lock();

    if (result == LinkResult::kOk) {
      slot.attempts = 0;  // a later quarantine gets a fresh budget
      state.links->push_back(std::move(fresh));
      WorkerLink& link = state.links->back();
      {
        const util::MutexLock stats_lk(mu_);
        WorkerStats& stats = worker_stats_[due];
        stats.in_quarantine = false;
        ++stats.readmitted;
      }
      // kWarning like the quarantine that preceded it: the pair of lines
      // is the operator's (and chaos_smoke.sh's) record of the outage.
      RSP_LOG(kWarning) << "worker '" << link.address.spec()
                        << "' re-admitted to the run";
      if (!state.failed && state.pending > 0) {
        ++state.active_workers;
        state.threads.emplace_back(
            [this, &link, &state] { worker_loop(link, state); });
      }
      state.cv.notify_all();
      continue;
    }
    // kRefused is deterministic (see connect_workers): further probes
    // would be refused identically, so stop wasting them. Transport
    // failures back off under the probe policy.
    if (result == LinkResult::kRefused ||
        !options_.probe.should_retry(slot.attempts)) {
      slot.exhausted = true;
      RSP_LOG(kWarning) << options_.probe.give_up(
          "health probe of worker '" + addresses_[due].spec() + "'", error);
    } else {
      slot.next = Clock::now() + std::chrono::milliseconds(
                                     options_.probe.delay_ms(slot.attempts));
    }
  }
}

void DseCoordinator::run_phase(std::deque<WorkerLink>& links,
                               PhaseState& state, const char* phase) {
  // The locks below this point are uncontended until the worker threads
  // start (and again after the joins) — they exist so every access to the
  // phase's guarded state is under state.mu, which is what the
  // thread-safety analysis checks.
  {
    const util::MutexLock lk(state.mu);
    if (state.queue.empty()) return;
    state.pending = state.queue.size();
  }
  state.links = &links;
  std::vector<WorkerLink*> alive;
  for (WorkerLink& link : links)
    if (link.alive) alive.push_back(&link);

  if (alive.empty()) {
    // The whole fleet is already gone (lost in an earlier phase, or
    // unreachable from the start): the run continues in-process, or not
    // at all.
    if (!options_.local_fallback)
      throw Error(std::string("no live workers left for the ") + phase +
                  " phase");
    const util::MutexLock lk(state.mu);
    while (!state.queue.empty()) {
      state.local_queue.push_back(state.queue.front());
      state.queue.pop_front();
    }
    state.pending = 0;
  } else {
    {
      const util::MutexLock lk(state.mu);
      state.active_workers = static_cast<int>(alive.size());
      state.threads.reserve(alive.size() + 1);
      for (WorkerLink* link : alive)
        state.threads.emplace_back(
            [this, link, &state] { worker_loop(*link, state); });
    }
    std::thread prober([this, &state] { prober_loop(state); });
    // The prober exits only once the phase is resolved (done, failed, or
    // handed to the local fallback), so after this join the thread vector
    // is final and every worker thread is on its way out. The joins happen
    // outside state.mu — a worker's last iteration still takes it.
    prober.join();
    std::vector<std::thread> to_join;
    {
      const util::MutexLock lk(state.mu);
      to_join.swap(state.threads);
    }
    for (std::thread& t : to_join) t.join();
  }

  {
    const util::MutexLock lk(state.mu);
    {
      const util::MutexLock stats_lk(mu_);
      redispatched_ += state.redispatched;
    }
    if (state.failed)
      throw Error(std::string("distributed ") + phase +
                  " phase failed: " + state.error);
  }
  drain_locally(state, phase);
}

api::Service& DseCoordinator::local_service() {
  // run_mu_ is held for the whole run, so lazy creation is serialized.
  if (!local_service_) local_service_ = std::make_unique<api::Service>();
  return *local_service_;
}

void DseCoordinator::drain_locally(PhaseState& state, const char* phase) {
  // Single-threaded by the time this runs (run_phase joined everything);
  // the lock satisfies the guarded-access contract at zero contention.
  const util::MutexLock lk(state.mu);
  if (state.local_queue.empty()) return;
  RSP_LOG(kWarning) << "computing " << state.local_queue.size() << " "
                    << phase << " shard(s) locally (fleet unavailable)";
  api::Service& service = local_service();
  for (const Shard& shard : state.local_queue) {
    api::DseShardRequest request;
    request.kernels = state.kernels;
    request.config = state.config;
    request.begin = static_cast<long>(shard.begin);
    request.end = static_cast<long>(shard.end);
    request.exact = state.exact;
    // Through to_body and the phase's own apply: the fallback merges by
    // the exact path a remote response would take, validation included —
    // bit-identity is inherited, not re-proven.
    state.apply(shard, api::to_body(service.dse_shard(request)));
    const util::MutexLock stats_lk(mu_);
    ++local_fallback_shards_;
  }
}

void DseCoordinator::fold_stats(const std::deque<WorkerLink>& links) {
  const util::MutexLock lk(mu_);
  ++runs_;
  for (const WorkerLink& link : links) {
    WorkerStats& stats = worker_stats_[link.index];
    stats.shards += link.shards;
    stats.retries += link.retries;
    stats.busy_ms += link.busy_ms;
    shards_ += link.shards;
  }
  // A worker still quarantined when the run ends was lost to *this* run;
  // the next run's connect (or its prober) gives it a fresh chance.
  for (const WorkerStats& stats : worker_stats_)
    if (stats.in_quarantine) ++workers_lost_;
}

// ------------------------------------------------------------------- runs

namespace {

util::Json shard_request_template(const std::vector<std::string>& kernels,
                                  const dse::ExplorerConfig& config,
                                  bool exact) {
  util::Json doc = util::Json::object();
  doc.set("op", "dse_shard");
  util::Json names = util::Json::array();
  for (const std::string& name : kernels) names.push(name);
  doc.set("kernels", std::move(names));
  doc.set("config", api::encode_dse_config(config));
  doc.set("mode", exact ? "exact" : "estimate");
  return doc;
}

long integer_field(const util::Json& doc, std::size_t index,
                   const char* what) {
  const util::Json& value = doc.at(index);
  if (!value.is_number())
    throw Error(std::string("worker returned a non-numeric ") + what);
  return static_cast<long>(value.as_number());
}

}  // namespace

api::DseResponse DseCoordinator::dse(const api::DseRequest& request) {
  const util::MutexLock run_lock(run_mu_);

  // Resolve the domain exactly as Service::dse does (empty = the paper
  // suite), so coordinator and workers agree on the run by construction —
  // the resolved names are pinned into every shard request.
  std::vector<kernels::Workload> domain;
  if (request.kernels.empty()) {
    domain = kernels::paper_suite();
  } else {
    const std::vector<kernels::Workload> catalogue =
        kernels::full_catalogue();
    for (const std::string& name : request.kernels)
      domain.push_back(kernels::find_in_catalogue(catalogue, name));
  }
  api::DseResponse resp;
  for (const kernels::Workload& w : domain) resp.kernels.push_back(w.name);

  const dse::Explorer explorer(domain.front().array, request.config);
  const std::vector<dse::DesignPoint> points = explorer.enumerate_points();
  const arch::Architecture base = explorer.base_architecture();
  const std::size_t num_kernels = domain.size();

  std::deque<WorkerLink> links = connect_workers();
  try {
    // Phase 1: estimate shards over the whole grid. Workers return
    // integer cycle sums only; slot i always receives enumeration index
    // i's sum, so completion order is irrelevant.
    std::vector<long> estimated(points.size(), 0);
    std::optional<long> base_cycles;
    {
      PhaseState state;
      state.request_template =
          shard_request_template(resp.kernels, request.config, false);
      state.kernels = resp.kernels;
      state.config = request.config;
      state.exact = false;
      const auto shard_points =
          static_cast<std::size_t>(options_.shard_points);
      {
        const util::MutexLock lk(state.mu);
        for (std::size_t lo = 0; lo < points.size(); lo += shard_points)
          state.queue.push_back(
              {lo, std::min(lo + shard_points, points.size()), 0});
      }
      state.apply = [&](const Shard& shard, const util::Json& body) {
        const util::Json& est = body.at("estimated_cycles");
        if (!est.is_array() || est.size() != shard.end - shard.begin)
          throw Error("worker returned a malformed estimate shard");
        if (!body.at("base_cycles").is_number())
          throw Error("worker returned a non-numeric base_cycles");
        const long bc = static_cast<long>(body.at("base_cycles").as_number());
        // Every shard reports the whole-domain base schedule; any
        // disagreement means the fleet is not running the same code or
        // domain, and no merge of its numbers can be trusted.
        if (!base_cycles) base_cycles = bc;
        else if (*base_cycles != bc)
          throw Error("workers disagree on base cycles (" +
                      std::to_string(*base_cycles) + " vs " +
                      std::to_string(bc) + ")");
        for (std::size_t i = 0; i < est.size(); ++i)
          estimated[shard.begin + i] =
              integer_field(est, i, "estimated cycle count");
      };
      run_phase(links, state, "estimate");
    }

    // Local merge, in serial enumeration order, through the same
    // make_candidate / pareto_filter the single-process path runs: every
    // derived double and every reject/pareto decision is recomputed here,
    // never parsed off the wire.
    dse::ExplorationResult& result = resp.result;
    result.base_cycles = base_cycles.value_or(0);
    result.base_area = explorer.synthesis().area(base);
    result.base_time_ns = static_cast<double>(result.base_cycles) *
                          explorer.synthesis().clock_ns(base);
    const double base_area_raw = explorer.base_area_raw();
    result.candidates.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
      result.candidates.push_back(explorer.make_candidate(
          points[i], explorer.point_architecture(points[i], base),
          estimated[i], base_area_raw, result.base_time_ns));
    explorer.pareto_filter(result);

    // Phase 2: one exact shard per Pareto survivor (single-point shards —
    // exact evaluation dominates the run, so the finest granularity is
    // the best steal unit).
    std::vector<std::vector<long>> exact_cycles(points.size());
    std::vector<std::vector<long>> exact_stalls(points.size());
    {
      PhaseState state;
      state.request_template =
          shard_request_template(resp.kernels, request.config, true);
      state.kernels = resp.kernels;
      state.config = request.config;
      state.exact = true;
      {
        const util::MutexLock lk(state.mu);
        for (std::size_t i = 0; i < result.candidates.size(); ++i)
          if (result.candidates[i].pareto)
            state.queue.push_back({i, i + 1, 0});
      }
      state.apply = [&](const Shard& shard, const util::Json& body) {
        const util::Json& cycles = body.at("cycles");
        const util::Json& stalls = body.at("stalls");
        if (!cycles.is_array() || cycles.size() != 1 ||
            !stalls.is_array() || stalls.size() != 1 ||
            !cycles.at(0).is_array() ||
            cycles.at(0).size() != num_kernels ||
            !stalls.at(0).is_array() ||
            stalls.at(0).size() != num_kernels)
          throw Error("worker returned a malformed exact shard");
        std::vector<long>& c = exact_cycles[shard.begin];
        std::vector<long>& s = exact_stalls[shard.begin];
        c.resize(num_kernels);
        s.resize(num_kernels);
        for (std::size_t k = 0; k < num_kernels; ++k) {
          c[k] = integer_field(cycles.at(0), k, "cycle count");
          s[k] = integer_field(stalls.at(0), k, "stall count");
        }
      };
      run_phase(links, state, "exact");
    }

    // Steps 5–6 reductions, in candidate order and domain order — the
    // exact serial loop structure.
    for (std::size_t i = 0; i < result.candidates.size(); ++i) {
      dse::Candidate& cand = result.candidates[i];
      if (!cand.pareto) continue;
      dse::evaluate_exact(
          cand, num_kernels,
          [&](std::size_t k, const arch::Architecture&) {
            return sched::PerfPoint{
                static_cast<int>(exact_cycles[i][k]),
                static_cast<int>(exact_stalls[i][k]), 0};
          });
      RSP_LOG(kInfo) << "pareto point " << cand.point.label() << ": area "
                     << cand.area_synthesized << " slices, time "
                     << cand.exact_time_ns << " ns";
    }
    explorer.select_optimum(result);
  } catch (...) {
    fold_stats(links);
    for (WorkerLink& link : links)
      if (link.fd >= 0) ::close(link.fd);
    throw;
  }
  fold_stats(links);
  for (WorkerLink& link : links)
    if (link.fd >= 0) ::close(link.fd);
  return resp;
}

util::Json DseCoordinator::stats_json() const {
  const util::MutexLock lk(mu_);
  util::Json workers = util::Json::array();
  for (std::size_t i = 0; i < addresses_.size(); ++i) {
    const WorkerStats& stats = worker_stats_[i];
    util::Json entry = util::Json::object();
    entry.set("address", addresses_[i].spec())
        .set("shards", static_cast<std::int64_t>(stats.shards))
        .set("retries", static_cast<std::int64_t>(stats.retries))
        .set("busy_ms", static_cast<std::int64_t>(stats.busy_ms))
        .set("quarantined", static_cast<std::int64_t>(stats.quarantined))
        .set("readmitted", static_cast<std::int64_t>(stats.readmitted))
        .set("probes", static_cast<std::int64_t>(stats.probes))
        .set("alive", stats.alive);
    workers.push(std::move(entry));
  }
  util::Json doc = util::Json::object();
  doc.set("workers", std::move(workers))
      .set("runs", static_cast<std::int64_t>(runs_))
      .set("shards", static_cast<std::int64_t>(shards_))
      .set("redispatched", static_cast<std::int64_t>(redispatched_))
      .set("workers_lost", static_cast<std::int64_t>(workers_lost_))
      .set("local_fallback_shards",
           static_cast<std::int64_t>(local_fallback_shards_));
  return doc;
}

}  // namespace rsp::dist
