// Distributed DSE: coordinator/worker sharding of the exploration grid
// over the v2 socket protocol (docs/DISTRIBUTED.md).
//
// The DseCoordinator answers an api::DseRequest exactly like
// Service::dse, but farms the expensive per-point work out to N
// `rsp_cli worker` processes over the existing socket transport:
//
//   phase 1 — the enumeration grid [0, points) is cut into many small
//     shards (`shard_points` each) and pulled by workers over `dse_shard`
//     estimate requests; the coordinator rebuilds every Candidate locally
//     from the returned integer cycle sums via dse::Explorer::
//     make_candidate and runs the Pareto filter itself;
//   phase 2 — one exact `dse_shard` per Pareto survivor; the returned
//     per-kernel cycle/stall integers feed dse::evaluate_exact and
//     select_optimum locally.
//
// Because only integers cross the wire and every derived double, reject
// check, Pareto decision and reduction is recomputed by the same
// dse::Explorer code the single-process path runs — in serial enumeration
// order, after all shards join — the merged ExplorationResult is
// bit-identical to Service::dse by construction, regardless of worker
// count, shard size, completion order, retries, worker death, re-admission
// or local fallback.
//
// Failure model (a resilient fleet, not a happy-path loop):
//   * connections are opened per run with bounded connect retries
//     (`connect`, a util::RetryPolicy) and a `worker_info` handshake;
//     per-request SO_RCVTIMEO/SO_SNDTIMEO timeouts bound every round trip;
//   * a transport failure (reset, EOF, timeout, malformed or mismatched
//     response) *quarantines* that worker instead of dropping it: its
//     shard is re-queued for the survivors under the bounded `redispatch`
//     policy, while a health-prober thread re-probes the quarantined
//     address (bounded-backoff `worker_info` probes, the `probe` policy)
//     and re-admits the worker mid-run on success — a restarted process
//     (new pid in the handshake) rejoins transparently. A worker still
//     quarantined when a run ends is retried afresh on the next run's
//     connect, so re-admission also happens across runs;
//   * a worker that keeps failing shards trips a per-worker circuit
//     breaker after `circuit_breaker_failures` consecutive failures and is
//     no longer probed (a completed shard resets the count) — a flapping
//     worker cannot consume the run in probe/re-admit/die loops;
//   * an in-band {"ok": false} rejection — of the handshake or of a shard
//     — is fatal: requests are deterministic, so every worker would
//     reject them identically; no quarantine, no retry;
//   * when every worker is lost (or unreachable from the start) with
//     shards still pending, the coordinator *finishes the run itself*:
//     remaining shards are computed in-process through the same
//     Service::dse_shard code the workers run, so the result is still
//     bit-identical. `local_fallback = false` opts out and restores the
//     hard "all workers lost" abort.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "api/service.hpp"
#include "api/socket_server.hpp"
#include "util/json.hpp"
#include "util/mutex.hpp"
#include "util/retry.hpp"

namespace rsp::dist {

struct CoordinatorOptions {
  /// Points per phase-1 shard. Small shards are the work-stealing knob:
  /// workers pull the next shard when ready, so a slow worker holds at
  /// most one shard's worth of the grid, never a static 1/N slice.
  int shard_points = 8;
  /// Per-request send/receive timeout; a worker that stalls longer is
  /// treated as dead and its shard re-dispatched.
  int request_timeout_ms = 30000;
  /// Per-shard dispatch budget: a shard may fail transport `attempts`
  /// times in total (with the policy's backoff before each re-send)
  /// before it stops being re-dispatched — it bounds the damage of a
  /// shard that kills every worker it visits. An exhausted shard falls
  /// back to local evaluation (or aborts the run, see `local_fallback`).
  util::RetryPolicy redispatch{3, 10};
  /// Connect policy for the per-run worker connections. Retries are on by
  /// default here (unlike `rsp_cli connect`): coordinators routinely race
  /// freshly spawned workers to the bind.
  api::ConnectOptions connect{40, 25};
  /// Health-probe policy for quarantined workers: per phase, each
  /// quarantined worker gets `attempts` single-shot worker_info probes
  /// with exponential backoff between them; a successful probe re-admits
  /// the worker into the running phase.
  util::RetryPolicy probe{4, 25, util::RetryPolicy::Backoff::kExponential,
                          2000};
  /// Consecutive shard-level failures (never reset by a mere handshake —
  /// only by a *completed* shard) after which a worker stops being
  /// health-probed: the flapping-worker circuit breaker.
  int circuit_breaker_failures = 3;
  /// When every worker is lost with shards pending, compute the remaining
  /// shards in-process instead of aborting (see header comment).
  bool local_fallback = true;
};

class DseCoordinator {
 public:
  /// `workers` are the `--listen` specs of running `rsp_cli worker` (or
  /// `serve --listen`) processes. Throws InvalidArgumentError when empty.
  explicit DseCoordinator(std::vector<api::ListenAddress> workers,
                          CoordinatorOptions options = {});
  ~DseCoordinator();

  DseCoordinator(const DseCoordinator&) = delete;
  DseCoordinator& operator=(const DseCoordinator&) = delete;

  /// The distributed Fig. 7 flow; bit-identical to api::Service::dse on
  /// the same request. Thread-safe (concurrent calls serialize); throws
  /// rsp::Error when the run cannot complete (all workers lost with
  /// local_fallback off, a worker rejecting a request in-band,
  /// disagreeing base cycles).
  api::DseResponse dse(const api::DseRequest& request);

  /// The "dist" section folded into cache_stats (Service::
  /// set_dist_extension): {"workers": [{"address", "shards", "retries",
  /// "busy_ms", "quarantined", "readmitted", "probes", "alive"}...],
  /// "runs", "shards", "redispatched", "workers_lost",
  /// "local_fallback_shards"}. Counters aggregate across runs.
  util::Json stats_json() const;

  const std::vector<api::ListenAddress>& workers() const {
    return addresses_;
  }

 private:
  struct WorkerLink;   // one per-run connection (dist/coordinator.cpp)
  struct Shard;        // one [begin, end) work item
  struct PhaseState;   // the pull queue one phase's workers drain

  /// Outcome of opening one worker connection (connect + handshake).
  enum class LinkResult {
    kOk,         ///< connected, handshake accepted
    kTransport,  ///< unreachable / died mid-handshake — quarantineable
    kRefused,    ///< in-band handshake rejection — deterministic, fatal
  };

  /// Connects addresses_[index] under `policy` and runs the worker_info
  /// handshake into `link`. On kOk the link is open and `alive`; otherwise
  /// `error` explains and the fd is closed.
  LinkResult open_link(std::size_t index, const api::ConnectOptions& policy,
                       WorkerLink& link, std::string& error);
  std::deque<WorkerLink> connect_workers();
  void run_phase(std::deque<WorkerLink>& links, PhaseState& state,
                 const char* phase) RSP_REQUIRES(run_mu_);
  void worker_loop(WorkerLink& link, PhaseState& state);
  /// The per-phase health prober: re-admits quarantined workers mid-run,
  /// and resolves the all-workers-lost endgame (local fallback or abort).
  void prober_loop(PhaseState& state);
  bool round_trip(WorkerLink& link, util::Json request,
                  util::Json& response);
  /// Marks `link`'s worker lost for now (stats + phase accounting); called
  /// under state.mu.
  void quarantine_worker(WorkerLink& link, PhaseState& state);
  /// Computes state.local_queue in-process through Service::dse_shard and
  /// the phase's own apply — the byte-identical fallback path.
  void drain_locally(PhaseState& state, const char* phase)
      RSP_REQUIRES(run_mu_);
  api::Service& local_service() RSP_REQUIRES(run_mu_);
  void fold_stats(const std::deque<WorkerLink>& links);

  const std::vector<api::ListenAddress> addresses_;
  const CoordinatorOptions options_;

  /// Serializes runs: one grid-wide pull queue at a time keeps the
  /// failure/redispatch accounting legible.
  util::Mutex run_mu_;
  /// Lazily created on first local fallback.
  std::unique_ptr<api::Service> local_service_ RSP_GUARDED_BY(run_mu_);

  /// Cross-run aggregates for stats_json(). Guarded by mu_, which nests
  /// *inside* PhaseState::mu — never take state.mu while holding mu_.
  struct WorkerStats {
    long shards = 0;       ///< shards completed, all runs
    long retries = 0;      ///< transport failures charged to this worker
    long busy_ms = 0;      ///< summed round-trip latency
    long quarantined = 0;  ///< times this worker entered quarantine
    long readmitted = 0;   ///< successful mid-run re-admissions
    long probes = 0;       ///< health probes attempted
    /// Circuit-breaker state: shard-level failures since the last
    /// *completed* shard (handshakes do not reset it).
    int consecutive_failures = 0;
    bool in_quarantine = false;  ///< currently lost, awaiting re-admission
    long last_pid = 0;           ///< last handshake pid (restart detection)
    bool alive = true;           ///< connected and serving right now
  };
  mutable util::Mutex mu_;
  std::vector<WorkerStats> worker_stats_ RSP_GUARDED_BY(mu_);
  long runs_ RSP_GUARDED_BY(mu_) = 0;
  long shards_ RSP_GUARDED_BY(mu_) = 0;
  long redispatched_ RSP_GUARDED_BY(mu_) = 0;
  long workers_lost_ RSP_GUARDED_BY(mu_) = 0;
  long local_fallback_shards_ RSP_GUARDED_BY(mu_) = 0;
};

}  // namespace rsp::dist
