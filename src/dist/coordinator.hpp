// Distributed DSE: coordinator/worker sharding of the exploration grid
// over the v2 socket protocol (docs/DISTRIBUTED.md).
//
// The DseCoordinator answers an api::DseRequest exactly like
// Service::dse, but farms the expensive per-point work out to N
// `rsp_cli worker` processes over the existing socket transport:
//
//   phase 1 — the enumeration grid [0, points) is cut into many small
//     shards (`shard_points` each) and pulled by workers over `dse_shard`
//     estimate requests; the coordinator rebuilds every Candidate locally
//     from the returned integer cycle sums via dse::Explorer::
//     make_candidate and runs the Pareto filter itself;
//   phase 2 — one exact `dse_shard` per Pareto survivor; the returned
//     per-kernel cycle/stall integers feed dse::evaluate_exact and
//     select_optimum locally.
//
// Because only integers cross the wire and every derived double, reject
// check, Pareto decision and reduction is recomputed by the same
// dse::Explorer code the single-process path runs — in serial enumeration
// order, after all shards join — the merged ExplorationResult is
// bit-identical to Service::dse by construction, regardless of worker
// count, shard size, completion order, retries or worker death.
//
// Failure model (robust fleet behaviour, not a happy-path loop):
//   * connections are opened per run with bounded connect retries and a
//     `worker_info` handshake; per-request SO_RCVTIMEO/SO_SNDTIMEO
//     timeouts bound every round trip;
//   * a transport failure (reset, EOF, timeout, malformed or mismatched
//     response) kills that worker for the rest of the run and re-queues
//     the shard for the survivors, with linear redispatch backoff and a
//     bounded attempt count;
//   * an in-band {"ok": false} rejection is fatal — shard requests are
//     deterministic, so another worker would reject them identically;
//   * losing the last worker with shards pending aborts the run with a
//     clear error.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "api/service.hpp"
#include "api/socket_server.hpp"
#include "util/json.hpp"

namespace rsp::dist {

struct CoordinatorOptions {
  /// Points per phase-1 shard. Small shards are the work-stealing knob:
  /// workers pull the next shard when ready, so a slow worker holds at
  /// most one shard's worth of the grid, never a static 1/N slice.
  int shard_points = 8;
  /// Per-request send/receive timeout; a worker that stalls longer is
  /// treated as dead and its shard re-dispatched.
  int request_timeout_ms = 30000;
  /// A shard that has failed transport this many times aborts the run —
  /// it bounds the damage of a shard that kills every worker it visits.
  int max_shard_attempts = 3;
  /// Sleep `redispatch_backoff_ms × attempts` before re-sending a
  /// previously failed shard.
  int redispatch_backoff_ms = 10;
  /// Connect policy for the per-run worker connections. Retries are on by
  /// default here (unlike `rsp_cli connect`): coordinators routinely race
  /// freshly spawned workers to the bind.
  api::ConnectOptions connect{40, 25};
};

class DseCoordinator {
 public:
  /// `workers` are the `--listen` specs of running `rsp_cli worker` (or
  /// `serve --listen`) processes. Throws InvalidArgumentError when empty.
  explicit DseCoordinator(std::vector<api::ListenAddress> workers,
                          CoordinatorOptions options = {});
  ~DseCoordinator();

  DseCoordinator(const DseCoordinator&) = delete;
  DseCoordinator& operator=(const DseCoordinator&) = delete;

  /// The distributed Fig. 7 flow; bit-identical to api::Service::dse on
  /// the same request. Thread-safe (concurrent calls serialize); throws
  /// rsp::Error when the run cannot complete (all workers lost, a shard
  /// out of attempts, a worker rejecting a shard, disagreeing base
  /// cycles).
  api::DseResponse dse(const api::DseRequest& request);

  /// The "dist" section folded into cache_stats (Service::
  /// set_dist_extension): {"workers": [{"address", "shards", "retries",
  /// "busy_ms", "alive"}...], "runs", "shards", "redispatched",
  /// "workers_lost"}. Counters aggregate across runs.
  util::Json stats_json() const;

  const std::vector<api::ListenAddress>& workers() const {
    return addresses_;
  }

 private:
  struct WorkerLink;   // one per-run connection (dist/coordinator.cpp)
  struct Shard;        // one [begin, end) work item
  struct PhaseState;   // the pull queue one phase's workers drain

  std::vector<WorkerLink> connect_workers();
  void run_phase(std::vector<WorkerLink>& links, PhaseState& state,
                 const char* phase);
  void worker_loop(WorkerLink& link, PhaseState& state);
  bool round_trip(WorkerLink& link, util::Json request,
                  util::Json& response);
  void fold_stats(const std::vector<WorkerLink>& links);

  const std::vector<api::ListenAddress> addresses_;
  const CoordinatorOptions options_;

  /// Serializes runs: one grid-wide pull queue at a time keeps the
  /// failure/redispatch accounting legible.
  std::mutex run_mu_;

  /// Cross-run aggregates for stats_json(), guarded by mu_.
  struct WorkerStats {
    long shards = 0;    ///< shards completed, all runs
    long retries = 0;   ///< transport failures charged to this worker
    long busy_ms = 0;   ///< summed round-trip latency
    bool alive = true;  ///< survived the most recent run it served
  };
  mutable std::mutex mu_;
  std::vector<WorkerStats> worker_stats_;
  long runs_ = 0;
  long shards_ = 0;
  long redispatched_ = 0;
  long workers_lost_ = 0;
};

}  // namespace rsp::dist
