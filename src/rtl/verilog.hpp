// Minimal structural-Verilog builder.
//
// The paper implements its architectures in VHDL and synthesises them with
// Synplify Pro; this module is the equivalent generator layer for our
// template: a tiny AST for synthesizable structural/behavioural Verilog
// that the architecture generator (generate.hpp) targets. The output is
// deterministic text so tests can assert structural properties.
#pragma once

#include <string>
#include <vector>

namespace rsp::rtl {

enum class PortDir { kInput, kOutput };

struct Port {
  PortDir dir = PortDir::kInput;
  std::string name;
  int width = 1;  ///< bits; 1 renders without a range
};

struct Wire {
  std::string name;
  int width = 1;
};

/// Instantiation of a child module with positional-free (named) port map.
struct Instance {
  std::string module;
  std::string name;
  std::vector<std::pair<std::string, std::string>> connections;
};

/// One continuous assignment `assign lhs = rhs;`.
struct Assign {
  std::string lhs;
  std::string rhs;
};

class Module {
 public:
  explicit Module(std::string name);

  const std::string& name() const { return name_; }

  Module& port(PortDir dir, const std::string& name, int width = 1);
  Module& wire(const std::string& name, int width = 1);
  Module& instance(Instance inst);
  Module& assign(const std::string& lhs, const std::string& rhs);
  /// Raw behavioural body (always blocks etc.), emitted verbatim.
  Module& body(const std::string& text);
  Module& comment(const std::string& text);

  const std::vector<Port>& ports() const { return ports_; }
  const std::vector<Instance>& instances() const { return instances_; }

  std::string emit() const;

 private:
  std::string name_;
  std::vector<std::string> comments_;
  std::vector<Port> ports_;
  std::vector<Wire> wires_;
  std::vector<Instance> instances_;
  std::vector<Assign> assigns_;
  std::vector<std::string> bodies_;
};

/// A design = ordered list of modules; emit() concatenates with a header.
class Design {
 public:
  Module& add(Module module);
  const std::vector<Module>& modules() const { return modules_; }
  const Module* find(const std::string& name) const;
  std::string emit(const std::string& header_comment = {}) const;

 private:
  std::vector<Module> modules_;
};

/// Renders `width`-bit range "[width-1:0]" (empty for width 1).
std::string range_of(int width);

}  // namespace rsp::rtl
