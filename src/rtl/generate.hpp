// Architecture → structural Verilog.
//
// Generates a synthesizable design for any template instance:
//   rsp_alu / rsp_shift / rsp_mux      — primitive PE resources
//   rsp_multiplier                     — array multiplier, 1..N stages
//   rsp_pe                             — PE variant (with/without multiplier,
//                                        with/without bus-switch taps)
//   rsp_bus_switch                     — operand/result steering (Fig. 4)
//   rsp_config_cache                   — per-PE context word memory
//   rsp_array (top)                    — rows×cols PEs, row buses, shared
//                                        units per row/column (Fig. 8)
// The paper built these by hand in VHDL; here they derive from the same
// Architecture object the scheduler and cost models use, so the hardware
// view and the mapping view can never drift apart.
#pragma once

#include <string>

#include "arch/presets.hpp"
#include "rtl/verilog.hpp"

namespace rsp::rtl {

struct GenerateOptions {
  int context_depth = 32;  ///< configuration words per PE cache
};

/// Builds the complete design for `architecture`.
Design generate(const arch::Architecture& architecture,
                GenerateOptions options = {});

/// Convenience: emitted Verilog text for `architecture`.
std::string generate_verilog(const arch::Architecture& architecture,
                             GenerateOptions options = {});

/// Summary statistics of a generated design (used by tests and reports).
struct RtlStats {
  int modules = 0;
  int pe_instances = 0;
  int shared_multiplier_instances = 0;
  int bus_switch_instances = 0;
  int config_cache_instances = 0;
};
RtlStats stats_of(const Design& design);

}  // namespace rsp::rtl
