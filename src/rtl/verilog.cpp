#include "rtl/verilog.hpp"

#include <sstream>

#include "util/error.hpp"

namespace rsp::rtl {

std::string range_of(int width) {
  if (width <= 0) throw InvalidArgumentError("width must be positive");
  if (width == 1) return "";
  return "[" + std::to_string(width - 1) + ":0] ";
}

Module::Module(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw InvalidArgumentError("module requires a name");
}

Module& Module::port(PortDir dir, const std::string& name, int width) {
  if (width <= 0) throw InvalidArgumentError("port width must be positive");
  ports_.push_back(Port{dir, name, width});
  return *this;
}

Module& Module::wire(const std::string& name, int width) {
  if (width <= 0) throw InvalidArgumentError("wire width must be positive");
  wires_.push_back(Wire{name, width});
  return *this;
}

Module& Module::instance(Instance inst) {
  if (inst.module.empty() || inst.name.empty())
    throw InvalidArgumentError("instance requires module and instance names");
  instances_.push_back(std::move(inst));
  return *this;
}

Module& Module::assign(const std::string& lhs, const std::string& rhs) {
  assigns_.push_back(Assign{lhs, rhs});
  return *this;
}

Module& Module::body(const std::string& text) {
  bodies_.push_back(text);
  return *this;
}

Module& Module::comment(const std::string& text) {
  comments_.push_back(text);
  return *this;
}

std::string Module::emit() const {
  std::ostringstream os;
  for (const std::string& c : comments_) os << "// " << c << "\n";
  os << "module " << name_ << " (\n";
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    const Port& p = ports_[i];
    os << "  " << (p.dir == PortDir::kInput ? "input  wire " : "output wire ")
       << range_of(p.width) << p.name
       << (i + 1 == ports_.size() ? "" : ",") << "\n";
  }
  os << ");\n";
  for (const Wire& w : wires_)
    os << "  wire " << range_of(w.width) << w.name << ";\n";
  for (const Assign& a : assigns_)
    os << "  assign " << a.lhs << " = " << a.rhs << ";\n";
  for (const Instance& inst : instances_) {
    os << "  " << inst.module << " " << inst.name << " (";
    for (std::size_t i = 0; i < inst.connections.size(); ++i) {
      os << (i == 0 ? "" : ",") << "\n    ." << inst.connections[i].first
         << "(" << inst.connections[i].second << ")";
    }
    os << "\n  );\n";
  }
  for (const std::string& b : bodies_) os << b << "\n";
  os << "endmodule\n";
  return os.str();
}

Module& Design::add(Module module) {
  if (find(module.name()))
    throw InvalidArgumentError("duplicate module name: " + module.name());
  modules_.push_back(std::move(module));
  return modules_.back();
}

const Module* Design::find(const std::string& name) const {
  for (const Module& m : modules_)
    if (m.name() == name) return &m;
  return nullptr;
}

std::string Design::emit(const std::string& header_comment) const {
  std::ostringstream os;
  if (!header_comment.empty()) os << "// " << header_comment << "\n\n";
  for (const Module& m : modules_) os << m.emit() << "\n";
  return os.str();
}

}  // namespace rsp::rtl
