#include "rtl/generate.hpp"

#include <sstream>

#include "arch/bus_switch.hpp"
#include "arch/config_cache.hpp"
#include "util/error.hpp"

namespace rsp::rtl {

namespace {

// ---------------------------------------------------------------- leaves

Module make_alu(int w) {
  Module m("rsp_alu");
  m.comment("PE ALU: add/sub/abs plus pass-through (opcode-selected).");
  m.port(PortDir::kInput, "op", 3)
      .port(PortDir::kInput, "a", w)
      .port(PortDir::kInput, "b", w)
      .port(PortDir::kOutput, "y", w);
  std::ostringstream body;
  body << "  reg " << range_of(w) << "r;\n"
       << "  always @(*) begin\n"
       << "    case (op)\n"
       << "      3'd0: r = a + b;\n"
       << "      3'd1: r = a - b;\n"
       << "      3'd2: r = a[" << w - 1 << "] ? (~a + 1'b1) : a; // abs\n"
       << "      default: r = a;\n"
       << "    endcase\n"
       << "  end\n"
       << "  assign y = r;";
  m.body(body.str());
  return m;
}

Module make_shift(int w) {
  Module m("rsp_shift");
  m.comment("PE barrel shifter; amt[5] selects direction (1 = right).");
  m.port(PortDir::kInput, "a", w)
      .port(PortDir::kInput, "amt", 6)
      .port(PortDir::kOutput, "y", w);
  m.body("  assign y = amt[5] ? ($signed(a) >>> amt[4:0]) : (a << amt[4:0]);");
  return m;
}

Module make_mux(int w) {
  Module m("rsp_mux");
  m.comment("Operand front-end: selects register file / neighbour / row or");
  m.comment("column line / immediate, per the configuration word source"
            " field.");
  m.port(PortDir::kInput, "sel", 3)
      .port(PortDir::kInput, "from_reg", w)
      .port(PortDir::kInput, "from_neighbor", w)
      .port(PortDir::kInput, "from_row", w)
      .port(PortDir::kInput, "from_col", w)
      .port(PortDir::kInput, "imm", w)
      .port(PortDir::kOutput, "y", w);
  std::ostringstream body;
  body << "  reg " << range_of(w) << "r;\n"
       << "  always @(*) begin\n"
       << "    case (sel)\n"
       << "      3'd1: r = from_reg;\n"
       << "      3'd2: r = from_neighbor;\n"
       << "      3'd3: r = from_row;\n"
       << "      3'd4: r = from_col;\n"
       << "      default: r = imm;\n"
       << "    endcase\n"
       << "  end\n"
       << "  assign y = r;";
  m.body(body.str());
  return m;
}

Module make_multiplier(int w, int stages) {
  Module m("rsp_multiplier");
  m.comment("Array multiplier, " + std::to_string(stages) +
            " pipeline stage(s); 2n-bit product (paper Fig. 4).");
  m.port(PortDir::kInput, "clk")
      .port(PortDir::kInput, "en")
      .port(PortDir::kInput, "a", w)
      .port(PortDir::kInput, "b", w)
      .port(PortDir::kOutput, "p", 2 * w);
  std::ostringstream body;
  if (stages <= 1) {
    body << "  assign p = $signed(a) * $signed(b);";
  } else {
    body << "  reg " << range_of(2 * w) << "stage [0:" << stages - 2
         << "];\n"
         << "  integer i;\n"
         << "  always @(posedge clk) if (en) begin\n"
         << "    stage[0] <= $signed(a) * $signed(b);\n"
         << "    for (i = 1; i < " << stages - 1 << "; i = i + 1)\n"
         << "      stage[i] <= stage[i-1];\n"
         << "  end\n"
         << "  assign p = stage[" << stages - 2 << "];";
  }
  m.body(body.str());
  return m;
}

Module make_bus_switch(int w, int reachable) {
  Module m("rsp_bus_switch");
  m.comment("Per-PE bus switch (paper Fig. 4): routes the two n-bit"
            " operands to one of " + std::to_string(reachable) +
            " reachable shared units and the 2n-bit product back.");
  m.port(PortDir::kInput, "sel",
         arch::BusSwitchSpec{reachable, w}.select_bits() == 0
             ? 1
             : arch::BusSwitchSpec{reachable, w}.select_bits());
  m.port(PortDir::kInput, "a", w).port(PortDir::kInput, "b", w);
  for (int u = 0; u < reachable; ++u) {
    m.port(PortDir::kOutput, "unit" + std::to_string(u) + "_a", w);
    m.port(PortDir::kOutput, "unit" + std::to_string(u) + "_b", w);
    m.port(PortDir::kInput, "unit" + std::to_string(u) + "_p", 2 * w);
  }
  m.port(PortDir::kOutput, "p", 2 * w);
  std::ostringstream body;
  for (int u = 0; u < reachable; ++u) {
    body << "  assign unit" << u << "_a = (sel == " << u + 1
         << ") ? a : " << w << "'d0;\n"
         << "  assign unit" << u << "_b = (sel == " << u + 1
         << ") ? b : " << w << "'d0;\n";
  }
  body << "  assign p =";
  for (int u = 0; u < reachable; ++u)
    body << " (sel == " << u + 1 << ") ? unit" << u << "_p :";
  body << " " << 2 * w << "'d0;";
  m.body(body.str());
  return m;
}

Module make_config_cache(int word_bits, int depth) {
  Module m("rsp_config_cache");
  m.comment("Per-PE configuration cache: one context word per cycle"
            " (loop pipelining needs per-PE control, unlike SIMD).");
  int addr_bits = 1;
  while ((1 << addr_bits) < depth) ++addr_bits;
  m.port(PortDir::kInput, "clk")
      .port(PortDir::kInput, "we")
      .port(PortDir::kInput, "waddr", addr_bits)
      .port(PortDir::kInput, "wdata", word_bits)
      .port(PortDir::kInput, "raddr", addr_bits)
      .port(PortDir::kOutput, "word", word_bits);
  std::ostringstream body;
  body << "  reg " << range_of(word_bits) << "mem [0:" << depth - 1 << "];\n"
       << "  reg " << range_of(word_bits) << "r;\n"
       << "  always @(posedge clk) begin\n"
       << "    if (we) mem[waddr] <= wdata;\n"
       << "    r <= mem[raddr];\n"
       << "  end\n"
       << "  assign word = r;";
  m.body(body.str());
  return m;
}

Module make_pe(const arch::Architecture& a, int word_bits) {
  const int w = a.array.data_width_bits;
  Module m("rsp_pe");
  m.comment(a.pe.has_multiplier
                ? "Base PE: mux front-end, ALU, private array multiplier,"
                  " shift logic, output register."
                : "Shared-multiplier PE: the multiplier is extracted; two"
                  " operand taps and a product return port go through the"
                  " bus switch.");
  m.port(PortDir::kInput, "clk")
      .port(PortDir::kInput, "cfg_word", word_bits)
      .port(PortDir::kInput, "from_neighbor", w)
      .port(PortDir::kInput, "from_row", w)
      .port(PortDir::kInput, "from_col", w)
      .port(PortDir::kOutput, "result", w);
  if (!a.pe.has_multiplier) {
    m.port(PortDir::kOutput, "mult_a", w)
        .port(PortDir::kOutput, "mult_b", w)
        .port(PortDir::kInput, "mult_p", 2 * w);
  }
  // Configuration word fields (see arch::ConfigCache::word_bits).
  m.wire("opcode", 4).wire("src_a", 4).wire("src_b", 4).wire("imm", 16);
  m.wire("opa", w).wire("opb", w).wire("alu_y", w).wire("shift_y", w);
  m.assign("opcode", "cfg_word[3:0]");
  m.assign("src_a", "cfg_word[7:4]");
  m.assign("src_b", "cfg_word[11:8]");
  m.assign("imm", "cfg_word[27:12]");

  m.instance(Instance{"rsp_mux", "u_mux_a",
                      {{"sel", "src_a[2:0]"},
                       {"from_reg", "result"},
                       {"from_neighbor", "from_neighbor"},
                       {"from_row", "from_row"},
                       {"from_col", "from_col"},
                       {"imm", "imm"},
                       {"y", "opa"}}});
  m.instance(Instance{"rsp_mux", "u_mux_b",
                      {{"sel", "src_b[2:0]"},
                       {"from_reg", "result"},
                       {"from_neighbor", "from_neighbor"},
                       {"from_row", "from_row"},
                       {"from_col", "from_col"},
                       {"imm", "imm"},
                       {"y", "opb"}}});
  m.instance(Instance{"rsp_alu", "u_alu",
                      {{"op", "opcode[2:0]"},
                       {"a", "opa"},
                       {"b", "opb"},
                       {"y", "alu_y"}}});
  m.instance(Instance{"rsp_shift", "u_shift",
                      {{"a", "alu_y"}, {"amt", "imm[5:0]"}, {"y", "shift_y"}}});

  std::ostringstream body;
  if (a.pe.has_multiplier) {
    m.wire("mult_p_local", 2 * w);
    m.instance(Instance{"rsp_multiplier", "u_mult",
                        {{"clk", "clk"},
                         {"en", "1'b1"},
                         {"a", "opa"},
                         {"b", "opb"},
                         {"p", "mult_p_local"}}});
    body << "  reg " << range_of(w) << "out_r;\n"
         << "  always @(posedge clk)\n"
         << "    out_r <= (opcode == 4'd6) ? mult_p_local[" << w - 1
         << ":0] : shift_y;\n"
         << "  assign result = out_r;";
  } else {
    body << "  assign mult_a = opa;\n"
         << "  assign mult_b = opb;\n"
         << "  reg " << range_of(w) << "out_r;\n"
         << "  always @(posedge clk)\n"
         << "    out_r <= (opcode == 4'd6) ? mult_p[" << w - 1
         << ":0] : shift_y;\n"
         << "  assign result = out_r;";
  }
  m.body(body.str());
  return m;
}

}  // namespace

Design generate(const arch::Architecture& a, GenerateOptions options) {
  a.validate();
  if (options.context_depth < 2)
    throw InvalidArgumentError("context depth must be >= 2");
  const int w = a.array.data_width_bits;
  const arch::BusSwitchSpec sw =
      arch::make_bus_switch(a.sharing, a.array.data_width_bits);
  const int word_bits = arch::ConfigCache::word_bits(sw.select_bits());

  Design design;
  design.add(make_mux(w));
  design.add(make_alu(w));
  design.add(make_shift(w));
  design.add(make_multiplier(w, a.mult_latency()));
  design.add(make_config_cache(word_bits, options.context_depth));
  if (a.shares_multiplier())
    design.add(make_bus_switch(w, a.sharing.units_reachable_per_pe()));
  design.add(make_pe(a, word_bits));

  // ------------------------------------------------------------- top level
  Module top("rsp_array");
  top.comment("Top: " + std::to_string(a.array.rows) + "x" +
              std::to_string(a.array.cols) + " array '" + a.name + "', " +
              std::to_string(a.sharing.total_units(a.array)) +
              " shared multiplier(s), " +
              std::to_string(a.array.read_buses_per_row) +
              " read / " + std::to_string(a.array.write_buses_per_row) +
              " write bus(es) per row.");
  top.port(PortDir::kInput, "clk");
  top.port(PortDir::kInput, "cfg_we");
  top.port(PortDir::kInput, "cfg_pe", 16);
  int addr_bits = 1;
  while ((1 << addr_bits) < options.context_depth) ++addr_bits;
  top.port(PortDir::kInput, "cfg_addr", addr_bits);
  top.port(PortDir::kInput, "cfg_data", word_bits);
  top.port(PortDir::kInput, "pc", addr_bits);
  for (int r = 0; r < a.array.rows; ++r) {
    for (int b = 0; b < a.array.read_buses_per_row; ++b)
      top.port(PortDir::kInput,
               "rbus_r" + std::to_string(r) + "_" + std::to_string(b), w);
    for (int b = 0; b < a.array.write_buses_per_row; ++b)
      top.port(PortDir::kOutput,
               "wbus_r" + std::to_string(r) + "_" + std::to_string(b), w);
  }

  auto pe_wire = [&](int r, int c, const std::string& suffix) {
    return "pe_r" + std::to_string(r) + "c" + std::to_string(c) + "_" +
           suffix;
  };

  // Per-PE wires, config caches and PEs.
  for (int r = 0; r < a.array.rows; ++r) {
    for (int c = 0; c < a.array.cols; ++c) {
      const std::string id = "r" + std::to_string(r) + "c" + std::to_string(c);
      top.wire(pe_wire(r, c, "result"), w);
      top.wire(pe_wire(r, c, "word"), word_bits);
      top.instance(Instance{
          "rsp_config_cache", "u_cache_" + id,
          {{"clk", "clk"},
           {"we", "cfg_we && (cfg_pe == " + std::to_string(
                        a.array.linear({r, c})) + ")"},
           {"waddr", "cfg_addr"},
           {"wdata", "cfg_data"},
           {"raddr", "pc"},
           {"word", pe_wire(r, c, "word")}}});

      Instance pe{"rsp_pe", "u_pe_" + id, {}};
      pe.connections.push_back({"clk", "clk"});
      pe.connections.push_back({"cfg_word", pe_wire(r, c, "word")});
      const int nr = (c + 1) % a.array.cols;
      pe.connections.push_back({"from_neighbor", pe_wire(r, nr, "result")});
      pe.connections.push_back({"from_row", "rbus_r" + std::to_string(r) +
                                                "_0"});
      pe.connections.push_back(
          {"from_col", pe_wire((r + 1) % a.array.rows, c, "result")});
      pe.connections.push_back({"result", pe_wire(r, c, "result")});
      if (!a.pe.has_multiplier) {
        top.wire(pe_wire(r, c, "ma"), w);
        top.wire(pe_wire(r, c, "mb"), w);
        top.wire(pe_wire(r, c, "mp"), 2 * w);
        pe.connections.push_back({"mult_a", pe_wire(r, c, "ma")});
        pe.connections.push_back({"mult_b", pe_wire(r, c, "mb")});
        pe.connections.push_back({"mult_p", pe_wire(r, c, "mp")});
      }
      top.instance(std::move(pe));
    }
    // Row write bus: OR-reduction of the row's results (arbitration is a
    // configuration-time guarantee — the mapper never double-drives).
    std::string wor;
    for (int c = 0; c < a.array.cols; ++c)
      wor += (c ? " | " : "") + pe_wire(r, c, "result");
    for (int b = 0; b < a.array.write_buses_per_row; ++b)
      top.assign("wbus_r" + std::to_string(r) + "_" + std::to_string(b), wor);
  }

  // Shared multiplier units per row/column pool (Fig. 8 placement), with a
  // per-unit operand-merge: a unit's operands are the OR of the taps of all
  // PEs in its line (only the selected PE drives non-zero data).
  if (a.shares_multiplier()) {
    auto add_units = [&](bool row_pool, int line, int index) {
      const std::string id = (row_pool ? "row" : "col") + std::to_string(line) +
                             "_u" + std::to_string(index);
      top.wire("unit_" + id + "_a", w);
      top.wire("unit_" + id + "_b", w);
      top.wire("unit_" + id + "_p", 2 * w);
      std::string a_or, b_or;
      const int span = row_pool ? a.array.cols : a.array.rows;
      for (int k = 0; k < span; ++k) {
        const int r = row_pool ? line : k;
        const int c = row_pool ? k : line;
        a_or += (k ? " | " : "") + pe_wire(r, c, "ma");
        b_or += (k ? " | " : "") + pe_wire(r, c, "mb");
      }
      top.assign("unit_" + id + "_a", a_or);
      top.assign("unit_" + id + "_b", b_or);
      top.instance(Instance{"rsp_multiplier", "u_mult_" + id,
                            {{"clk", "clk"},
                             {"en", "1'b1"},
                             {"a", "unit_" + id + "_a"},
                             {"b", "unit_" + id + "_b"},
                             {"p", "unit_" + id + "_p"}}});
    };
    for (int r = 0; r < a.array.rows; ++r)
      for (int u = 0; u < a.sharing.units_per_row; ++u) add_units(true, r, u);
    for (int c = 0; c < a.array.cols; ++c)
      for (int u = 0; u < a.sharing.units_per_col; ++u)
        add_units(false, c, u);
    // Product return: each PE sees the OR of its reachable units' products
    // (the bus switch masks the unselected ones inside the PE in the full
    // implementation; structurally the return network is this fabric).
    for (int r = 0; r < a.array.rows; ++r)
      for (int c = 0; c < a.array.cols; ++c) {
        std::string p_or;
        int k = 0;
        for (const arch::SharedUnitId& u :
             a.sharing.reachable_units(a.array, {r, c})) {
          const std::string id =
              (u.pool == arch::SharedUnitId::Pool::kRow ? "row" : "col") +
              std::to_string(u.line) + "_u" + std::to_string(u.index);
          p_or += (k++ ? " | " : "") + ("unit_" + id + "_p");
        }
        top.assign(pe_wire(r, c, "mp"), p_or);
      }
  }

  design.add(std::move(top));
  return design;
}

std::string generate_verilog(const arch::Architecture& a,
                             GenerateOptions options) {
  return generate(a, options)
      .emit("Generated by rsp-cgra from architecture '" + a.name + "'");
}

RtlStats stats_of(const Design& design) {
  RtlStats stats;
  stats.modules = static_cast<int>(design.modules().size());
  const Module* top = design.find("rsp_array");
  if (!top) return stats;
  for (const Instance& inst : top->instances()) {
    if (inst.module == "rsp_pe") ++stats.pe_instances;
    if (inst.module == "rsp_multiplier") ++stats.shared_multiplier_instances;
    if (inst.module == "rsp_bus_switch") ++stats.bus_switch_instances;
    if (inst.module == "rsp_config_cache") ++stats.config_cache_instances;
  }
  return stats;
}

}  // namespace rsp::rtl
