#include "gen/fuzz.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/verifier.hpp"
#include "api/service.hpp"
#include "arch/presets.hpp"
#include "sched/legality.hpp"
#include "sched/mapper.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine.hpp"
#include "util/error.hpp"

namespace rsp::gen {

namespace {

const char* mode_name(ir::DatapathMode mode) {
  return mode == ir::DatapathMode::kExact ? "exact" : "wrap16";
}

std::string fail_prefix(std::uint64_t seed, const std::string& arch,
                        ir::DatapathMode mode) {
  return "seed " + std::to_string(seed) + " on " + arch + " (" +
         mode_name(mode) + "): ";
}

// Base first, then up to (max_archs - 1) sharing designs rotated by the
// seed, so consecutive trials walk the whole standard suite.
std::vector<std::size_t> arch_indices(std::uint64_t seed,
                                      std::size_t suite_size,
                                      const FuzzOptions& options) {
  std::vector<std::size_t> indices;
  if (options.full_suite) {
    for (std::size_t i = 0; i < suite_size; ++i) indices.push_back(i);
    return indices;
  }
  indices.push_back(0);
  const std::size_t sharing = suite_size - 1;
  const std::size_t limit =
      static_cast<std::size_t>(std::max(1, options.max_archs));
  for (const std::uint64_t pick : {seed % sharing, (seed / sharing) % sharing}) {
    const std::size_t index = 1 + static_cast<std::size_t>(pick);
    if (indices.size() < limit &&
        std::find(indices.begin(), indices.end(), index) == indices.end())
      indices.push_back(index);
  }
  return indices;
}

}  // namespace

FuzzReport fuzz_one(std::uint64_t seed, const FuzzOptions& options) {
  FuzzReport report;
  report.seed = seed;
  try {
    GeneratorConfig config = options.config;
    config.seed = seed;
    const kernels::Workload w = generate_workload(config);
    const ir::UnrolledGraph unrolled(w.kernel);

    ir::Memory initial;
    w.setup(initial);

    // The interpreter is the semantic authority; one reference run per
    // datapath mode, shared across every architecture below.
    const ir::DatapathMode modes[] = {ir::DatapathMode::kExact,
                                      ir::DatapathMode::kWrap16};
    ir::Memory reference_memory[2] = {initial, initial};
    ir::InterpResult reference_values[2];
    for (int m = 0; m < 2; ++m)
      reference_values[m] = reference_run(w.kernel, w.reduction, unrolled,
                                          reference_memory[m], modes[m]);

    const sched::LoopPipeliner mapper(w.array);
    const sched::PlacedProgram program =
        mapper.map(w.kernel, unrolled, w.hints, w.reduction);
    const sched::ContextScheduler scheduler;

    const std::vector<arch::Architecture> suite =
        arch::standard_suite(w.array.rows, w.array.cols);
    for (const std::size_t index : arch_indices(seed, suite.size(), options)) {
      const arch::Architecture& a = suite[index];
      const sched::ConfigurationContext ctx = scheduler.schedule(program, a);
      const sched::LegalityReport legality = sched::check_legality(ctx);
      if (!legality.ok) {
        report.ok = false;
        report.detail = "seed " + std::to_string(seed) + " on " + a.name +
                        ": illegal schedule: " + legality.violations.front();
        return report;
      }
      // Pre-flight static lint: any error-severity finding is a divergence
      // (the simulators would reject the context that check_legality just
      // accepted, or vice versa). Warnings are expected — generated
      // kernels legitimately carry dead address-chain ops (RSP-W002).
      const analysis::LintReport lint = analysis::lint_context(ctx);
      if (!lint.clean()) {
        const analysis::Diagnostic* first = nullptr;
        for (const analysis::Diagnostic& d : lint.diagnostics)
          if (d.severity == analysis::Severity::kError) {
            first = &d;
            break;
          }
        report.ok = false;
        report.detail = "seed " + std::to_string(seed) + " on " + a.name +
                        ": lint error " + first->rule + ": " +
                        first->message;
        return report;
      }

      for (int m = 0; m < 2; ++m) {
        const ir::DatapathMode mode = modes[m];
        ir::Memory dense_memory = initial;
        const sim::SimResult dense =
            sim::Machine(mode, sim::SimEngine::kDense).run(ctx, dense_memory);
        ir::Memory event_memory = initial;
        const sim::SimResult event =
            sim::Machine(mode, sim::SimEngine::kEvent).run(ctx, event_memory);
        if (options.inject_event_bug) {
          // names() returns by value; copy the name out of the temporary.
          const std::string array = event_memory.names().front();
          event_memory.write(array, 0, event_memory.read(array, 0) + 1);
        }

        if (!(dense == event)) {
          report.ok = false;
          report.detail = fail_prefix(seed, a.name, mode) +
                          "dense and event SimResults diverge";
          return report;
        }
        if (!(dense_memory == event_memory)) {
          report.ok = false;
          report.detail = fail_prefix(seed, a.name, mode) +
                          "dense and event final memories diverge";
          return report;
        }
        if (!(dense_memory == reference_memory[m])) {
          report.ok = false;
          report.detail = fail_prefix(seed, a.name, mode) +
                          "simulator final memory diverges from the "
                          "reference interpreter";
          return report;
        }
        // Value-level check: every scheduled op that carries a source link
        // into the unrolled graph must compute the interpreter's value.
        const std::vector<sched::ScheduledOp>& ops = ctx.ops();
        for (std::size_t i = 0; i < ops.size(); ++i) {
          const sched::ScheduledOp& op = ops[i];
          if (op.source == ir::kInvalidOp || !ir::produces_value(op.kind) ||
              op.kind == ir::OpKind::kRoute)
            continue;
          const std::int64_t expected = reference_values[m].values[
              static_cast<std::size_t>(op.source)];
          if (dense.values[i] != expected) {
            report.ok = false;
            report.detail = fail_prefix(seed, a.name, mode) + "op " +
                            std::to_string(i) + " value " +
                            std::to_string(dense.values[i]) +
                            " != interpreter value " +
                            std::to_string(expected);
            return report;
          }
        }
      }
    }
  } catch (const std::exception& e) {
    report.ok = false;
    report.detail =
        "seed " + std::to_string(seed) + ": exception: " + e.what();
  }
  return report;
}

FuzzSummary fuzz_many(
    std::uint64_t base_seed, std::int64_t trials, const FuzzOptions& options,
    const std::function<void(const FuzzReport&)>& on_trial) {
  FuzzSummary summary;
  for (std::int64_t i = 0; i < trials; ++i) {
    FuzzReport report = fuzz_one(base_seed + static_cast<std::uint64_t>(i),
                                 options);
    ++summary.trials;
    if (on_trial) on_trial(report);
    if (!report.ok) summary.failures.push_back(std::move(report));
  }
  return summary;
}

FuzzReport service_smoke(std::uint64_t seed) {
  FuzzReport report;
  report.seed = seed;
  const auto fail = [&](const std::string& what) {
    report.ok = false;
    report.detail =
        "seed " + std::to_string(seed) + ": service smoke: " + what;
    return report;
  };
  try {
    api::ServiceOptions options;
    options.threads = 2;
    options.max_inflight = 2;
    const api::Service service(options);
    const std::string name = gen_name(seed);

    const api::EvalResponse eval = service.eval({name});
    if (eval.kernel != name ||
        eval.rows.size() != arch::standard_suite().size())
      return fail("eval returned an unexpected row set");

    for (const sim::SimEngine engine :
         {sim::SimEngine::kDense, sim::SimEngine::kEvent}) {
      const api::SimulateResponse sim =
          service.simulate({name, "RSP#4", engine});
      if (!sim.matches_golden)
        return fail(std::string("simulate (") + sim::engine_name(engine) +
                    ") does not match golden");
    }

    const api::SimulateBatchResponse batch =
        service.simulate_batch({name, {}, sim::SimEngine::kEvent});
    for (const api::SimulateResponse& row : batch.rows)
      if (!row.matches_golden)
        return fail("simulate_batch row " + row.arch +
                    " does not match golden");

    dse::ExplorerConfig config;
    config.max_units_per_row = 1;
    config.max_units_per_col = 1;
    config.max_stages = 2;
    const api::DseResponse dse = service.dse({{name}, config});
    if (dse.result.candidates.empty())
      return fail("dse explored no candidates");
  } catch (const std::exception& e) {
    return fail(std::string("exception: ") + e.what());
  }
  return report;
}

namespace {

void load_corpus_file(const std::filesystem::path& path,
                      std::vector<std::uint64_t>& seeds) {
  std::ifstream file(path);
  if (!file)
    throw NotFoundError("cannot open corpus file '" + path.string() + "'");
  std::string line;
  while (std::getline(file, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    const std::string token = line.substr(begin, end - begin + 1);
    const std::optional<std::uint64_t> seed = parse_gen_name("gen:" + token);
    if (!seed)
      throw InvalidArgumentError("corpus file '" + path.string() +
                                 "': '" + token + "' is not a seed");
    seeds.push_back(*seed);
  }
}

}  // namespace

std::vector<std::uint64_t> load_corpus(const std::string& path) {
  namespace fs = std::filesystem;
  std::vector<std::uint64_t> seeds;
  if (fs::is_directory(path)) {
    std::vector<fs::path> files;
    for (const fs::directory_entry& entry : fs::directory_iterator(path))
      if (entry.path().extension() == ".txt") files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) load_corpus_file(file, seeds);
  } else if (fs::exists(path)) {
    load_corpus_file(path, seeds);
  } else {
    throw NotFoundError("corpus path '" + path + "' does not exist");
  }
  return seeds;
}

}  // namespace rsp::gen
