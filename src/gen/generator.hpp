// Seeded random-kernel generator (ROADMAP "open the scenario space").
//
// `generate_workload()` turns a 64-bit seed into a legal-by-construction
// `kernels::Workload`: a random DAG body over the existing ir::Op set, a
// random-but-valid mapping (lanes/stagger/columns/row-bands), an optional
// global reduction built on the PE-revisiting carried distance, a
// deterministic seeded memory environment, and a golden model.
//
// Legality invariants (docs/GENERATOR.md spells them out):
//   * lanes <= rows and columns <= cols, so the mapper never runs out of PEs;
//   * the only carried dependence is an accumulator at distance
//     lanes x columns with cycle_row_bands off — iteration i and
//     i + distance land on the same PE, so the chain is trivially routable;
//   * same-iteration edges point backwards by construction (GraphBuilder);
//   * load/store index functions are affine with non-negative addresses and
//     the setup sizes every array to the maximum touched index;
//   * every node tracks a magnitude bound and is renormalised (arithmetic
//     right shift) once it could exceed kNodeMagnitudeCap, so exact-mode
//     evaluation never reaches signed-overflow UB.
//
// Unlike the paper-suite workloads, whose goldens are independent C++
// references, the generated family's golden is *derived from the reference
// interpreter* (`reference_execute`) — this is the one catalogue family
// where that is the right trade: the interpreter is the semantic authority
// the simulators are tested against, and the generator emits arbitrary
// graphs no hand-written model could anticipate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ir/interp.hpp"
#include "ir/unroll.hpp"
#include "kernels/workload.hpp"

namespace rsp::gen {

/// Relative op-mix weights for body construction (need not sum to anything
/// particular; all zero is invalid).
struct OpMix {
  int add = 20;
  int sub = 15;
  int mult = 25;
  int abs = 10;
  int shift = 10;
  int load = 12;
  int constant = 8;

  int total() const { return add + sub + mult + abs + shift + load + constant; }
};

/// Bound on any pool value's magnitude; results that could exceed it are
/// renormalised with an arithmetic right shift before they re-enter the
/// operand pool (see the overflow invariant in the header comment).
inline constexpr std::int64_t kNodeMagnitudeCap = std::int64_t{1} << 26;

struct GeneratorConfig {
  std::uint64_t seed = 0;

  /// Arithmetic/load body nodes beyond the initial loads.
  int min_body_ops = 3;
  int max_body_ops = 16;

  std::int64_t min_trips = 4;
  std::int64_t max_trips = 64;

  /// PE-array geometry bounds (inclusive).
  int min_rows = 4;
  int max_rows = 8;
  int min_cols = 4;
  int max_cols = 8;

  OpMix mix;

  /// Probability of a global (kAll) reduction epilogue.
  double reduction_probability = 0.35;
  /// Probability of a second store (to a distinct array).
  double second_store_probability = 0.25;

  /// Input data and constants are drawn from [-value_magnitude,
  /// value_magnitude]. Raise it (e.g. to a few hundred) to force wrap16 vs
  /// exact divergence through multiplications.
  std::int64_t value_magnitude = 64;

  /// Datapath the workload's golden closure evaluates under. The catalogue
  /// (`gen:<seed>` names) always uses the default config, hence kExact —
  /// matching how api::Service checks `matches_golden`.
  ir::DatapathMode golden_mode = ir::DatapathMode::kExact;

  /// Throws InvalidArgumentError naming the offending knob.
  void validate() const;
};

/// Deterministically generates one workload from `config`. The result is
/// named `gen:<seed>` and is fully self-contained (setup + golden).
kernels::Workload generate_workload(const GeneratorConfig& config);

/// "gen:<seed>" — the catalogue spelling of a generated kernel.
std::string gen_name(std::uint64_t seed);

/// Parses "gen:<decimal-seed>"; nullopt when `name` is not of that form.
std::optional<std::uint64_t> parse_gen_name(const std::string& name);

/// Runs the reference interpreter over `unrolled` against `memory` and
/// applies the kAll reduction epilogue (sum of the accumulator's final value
/// per residue class modulo the carried distance, wrapped once under
/// kWrap16 — modular addition is associative, so the mapper's tree order is
/// irrelevant). Returns the interpreter result. Throws InvalidArgumentError
/// for kPerRow reductions, which the generator never emits.
ir::InterpResult reference_run(const ir::LoopKernel& kernel,
                               const sched::ReductionSpec& reduction,
                               const ir::UnrolledGraph& unrolled,
                               ir::Memory& memory, ir::DatapathMode mode);

/// Convenience wrapper: unrolls `w.kernel` and calls `reference_run`. The
/// generated workloads' golden closures are exactly this at `golden_mode`.
void reference_execute(const kernels::Workload& w, ir::Memory& memory,
                       ir::DatapathMode mode);

}  // namespace rsp::gen
