#include "gen/generator.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "ir/builder.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rsp::gen {

namespace {

// Local seeded data (FNV-1a of the array name mixed into the kernel seed).
// Intentionally not kernels::deterministic_data: rsp_kernels links rsp_gen
// for `gen:<seed>` catalogue resolution, so the generator cannot link back.
std::vector<std::int64_t> seeded_data(std::uint64_t seed,
                                      const std::string& tag,
                                      std::size_t length, std::int64_t lo,
                                      std::int64_t hi) {
  std::uint64_t mixed = 1469598103934665603ull ^ seed;
  for (char c : tag) {
    mixed ^= static_cast<std::uint8_t>(c);
    mixed *= 1099511628211ull;
  }
  util::Rng rng(mixed);
  std::vector<std::int64_t> data(length);
  for (auto& v : data) v = rng.uniform(lo, hi);
  return data;
}

struct PoolEntry {
  ir::NodeId id = ir::kInvalidNode;
  std::int64_t bound = 0;  ///< upper bound on the value's magnitude
};

// Renormalises a node whose magnitude bound exceeds kNodeMagnitudeCap with
// one arithmetic right shift, keeping exact-mode evaluation clear of signed
// overflow no matter how ops are composed downstream.
PoolEntry normalized(ir::GraphBuilder& b, PoolEntry e) {
  if (e.bound <= kNodeMagnitudeCap) return e;
  int s = 1;
  while ((e.bound >> s) > kNodeMagnitudeCap) ++s;
  e.id = b.shift(e.id, -s);
  // |x >> s| <= (|x| >> s) + 1 for arithmetic shifts of negative values.
  e.bound = (e.bound >> s) + 1;
  return e;
}

}  // namespace

void GeneratorConfig::validate() const {
  if (min_body_ops < 1 || min_body_ops > max_body_ops || max_body_ops > 256)
    throw InvalidArgumentError(
        "generator: body-op bounds require 1 <= min_body_ops <= max_body_ops "
        "<= 256");
  if (min_trips < 1 || min_trips > max_trips || max_trips > 4096)
    throw InvalidArgumentError(
        "generator: trip-count bounds require 1 <= min_trips <= max_trips <= "
        "4096");
  if (min_rows < 1 || min_rows > max_rows || max_rows > 16)
    throw InvalidArgumentError(
        "generator: row bounds require 1 <= min_rows <= max_rows <= 16");
  if (min_cols < 2 || min_cols > max_cols || max_cols > 16)
    throw InvalidArgumentError(
        "generator: column bounds require 2 <= min_cols <= max_cols <= 16 "
        "(reductions need lanes x columns >= 2)");
  if (mix.add < 0 || mix.sub < 0 || mix.mult < 0 || mix.abs < 0 ||
      mix.shift < 0 || mix.load < 0 || mix.constant < 0 || mix.total() <= 0)
    throw InvalidArgumentError(
        "generator: op-mix weights must be non-negative with a positive sum");
  if (reduction_probability < 0.0 || reduction_probability > 1.0)
    throw InvalidArgumentError(
        "generator: reduction_probability must be in [0, 1]");
  if (second_store_probability < 0.0 || second_store_probability > 1.0)
    throw InvalidArgumentError(
        "generator: second_store_probability must be in [0, 1]");
  if (value_magnitude < 1 || value_magnitude > (std::int64_t{1} << 20))
    throw InvalidArgumentError(
        "generator: value_magnitude must be in [1, 2^20]");
}

std::string gen_name(std::uint64_t seed) {
  return "gen:" + std::to_string(seed);
}

std::optional<std::uint64_t> parse_gen_name(const std::string& name) {
  constexpr const char kPrefix[] = "gen:";
  constexpr std::size_t kPrefixLen = 4;
  if (name.size() <= kPrefixLen || name.compare(0, kPrefixLen, kPrefix) != 0)
    return std::nullopt;
  const std::string digits = name.substr(kPrefixLen);
  if (digits.size() > 20) return std::nullopt;  // > max uint64 digit count
  for (char c : digits)
    if (c < '0' || c > '9') return std::nullopt;
  try {
    std::size_t parsed = 0;
    const unsigned long long value = std::stoull(digits, &parsed);
    if (parsed != digits.size()) return std::nullopt;
    return static_cast<std::uint64_t>(value);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

kernels::Workload generate_workload(const GeneratorConfig& config) {
  config.validate();
  util::Rng rng(config.seed);
  const std::int64_t mag = config.value_magnitude;

  // Geometry, trip count and layout first: the reduction's carried distance
  // depends on lanes x columns, so the mapping is fixed before the body.
  arch::ArraySpec array;
  array.rows = static_cast<int>(rng.uniform(config.min_rows, config.max_rows));
  array.cols = static_cast<int>(rng.uniform(config.min_cols, config.max_cols));
  const std::int64_t trips = rng.uniform(config.min_trips, config.max_trips);

  sched::MappingHints hints;
  hints.lanes = static_cast<int>(rng.uniform(1, array.rows));
  hints.columns = static_cast<int>(rng.uniform(1, array.cols));
  hints.stagger = static_cast<int>(rng.uniform(0, 3));

  const bool reduce = rng.chance(config.reduction_probability);
  // An accumulator chain must span >= 2 PEs to reduce; widen the column
  // round-robin if lanes x columns collapsed to a single PE.
  if (reduce && hints.lanes * hints.columns < 2) hints.columns = 2;
  // Row-band cycling moves iteration i + lanes*columns to a different PE
  // band, which would break the accumulator's same-PE carried chain.
  hints.cycle_row_bands =
      !reduce && hints.lanes < array.rows && rng.chance(0.5);

  ir::GraphBuilder b;
  std::vector<PoolEntry> pool;
  std::map<std::string, std::int64_t> input_sizes;

  const auto pick = [&]() -> const PoolEntry& {
    return pool[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };
  const int n_arrays = static_cast<int>(rng.uniform(1, 3));
  const auto new_load = [&] {
    const std::string name =
        "in" + std::to_string(rng.uniform(0, n_arrays - 1));
    const std::int64_t stride = rng.uniform(0, 2);  // 0 = broadcast element
    const std::int64_t offset = rng.uniform(0, 8);
    const ir::NodeId id =
        b.load(name, [stride, offset](std::int64_t k) {
          return stride * k + offset;
        });
    std::int64_t& size = input_sizes[name];
    size = std::max(size, stride * (trips - 1) + offset + 1);
    pool.push_back(PoolEntry{id, mag});
  };

  const int n_init_loads = static_cast<int>(rng.uniform(1, 3));
  for (int i = 0; i < n_init_loads; ++i) new_load();

  const int n_ops = static_cast<int>(
      rng.uniform(config.min_body_ops, config.max_body_ops));
  const OpMix& mix = config.mix;
  for (int i = 0; i < n_ops; ++i) {
    std::int64_t w = rng.uniform(0, mix.total() - 1);
    if ((w -= mix.add) < 0) {
      const PoolEntry a = pick(), c = pick();
      pool.push_back(
          normalized(b, {b.add(a.id, c.id), a.bound + c.bound}));
    } else if ((w -= mix.sub) < 0) {
      const PoolEntry a = pick(), c = pick();
      pool.push_back(
          normalized(b, {b.sub(a.id, c.id), a.bound + c.bound}));
    } else if ((w -= mix.mult) < 0) {
      // Pool bounds never exceed kNodeMagnitudeCap (2^26), so the product
      // bound stays below 2^52 — exact int64 arithmetic cannot overflow.
      const PoolEntry a = pick(), c = pick();
      pool.push_back(
          normalized(b, {b.mult(a.id, c.id), a.bound * c.bound}));
    } else if ((w -= mix.abs) < 0) {
      const PoolEntry a = pick();
      pool.push_back(PoolEntry{b.abs(a.id), a.bound});
    } else if ((w -= mix.shift) < 0) {
      std::int64_t amount = rng.uniform(-3, 3);
      if (amount == 0) amount = 1;
      const PoolEntry a = pick();
      const std::int64_t bound =
          amount > 0 ? (a.bound << amount) : a.bound;
      pool.push_back(normalized(
          b, {b.shift(a.id, static_cast<int>(amount)), bound}));
    } else if ((w -= mix.load) < 0) {
      new_load();
    } else {
      const std::int64_t imm = rng.uniform(-mag, mag);
      pool.push_back(PoolEntry{b.constant(imm), mag});
    }
  }

  sched::ReductionSpec reduction;
  std::vector<std::pair<std::string, std::int64_t>> output_sizes;
  bool store_body = true;
  if (reduce) {
    const PoolEntry operand = pick();
    const int distance = hints.lanes * hints.columns;
    reduction.scope = sched::ReductionSpec::Scope::kAll;
    reduction.source = b.accumulate(operand.id, 0, distance);
    reduction.array = "red";
    reduction.index0 = 0;
    output_sizes.emplace_back("red", 1);
    store_body = rng.chance(0.5);
  }
  if (store_body) {
    b.store("out", [](std::int64_t k) { return k; }, pool.back().id);
    output_sizes.emplace_back("out", trips);
    if (rng.chance(config.second_store_probability)) {
      b.store("out2", [](std::int64_t k) { return k; }, pick().id);
      output_sizes.emplace_back("out2", trips);
    }
  }

  const std::string name = gen_name(config.seed);
  ir::LoopKernel kernel(name, b.take(), trips);

  std::vector<std::pair<std::string, std::int64_t>> inputs(
      input_sizes.begin(), input_sizes.end());
  const std::uint64_t seed = config.seed;
  auto setup = [inputs, output_sizes, seed, mag](ir::Memory& m) {
    for (const auto& [arr, size] : inputs)
      m.set(arr, seeded_data(seed, arr, static_cast<std::size_t>(size), -mag,
                             mag));
    for (const auto& [arr, size] : output_sizes)
      m.allocate(arr, static_cast<std::size_t>(size));
  };

  const ir::DatapathMode mode = config.golden_mode;
  auto golden = [kernel, reduction, mode](ir::Memory& m) {
    const ir::UnrolledGraph unrolled(kernel);
    reference_run(kernel, reduction, unrolled, m, mode);
  };

  return kernels::Workload{name,      std::move(kernel),  array, hints,
                           reduction, std::move(setup),   std::move(golden)};
}

ir::InterpResult reference_run(const ir::LoopKernel& kernel,
                               const sched::ReductionSpec& reduction,
                               const ir::UnrolledGraph& unrolled,
                               ir::Memory& memory, ir::DatapathMode mode) {
  const ir::InterpResult result = ir::interpret(unrolled, memory, mode);
  if (!reduction.enabled()) return result;
  if (reduction.scope != sched::ReductionSpec::Scope::kAll)
    throw InvalidArgumentError(
        "reference_run supports kAll reductions only (the generator never "
        "emits kPerRow)");
  const ir::Node& source = kernel.body().node(reduction.source);
  RSP_ASSERT_MSG(!source.carried.empty(),
                 "reduction source must be a carried accumulator");
  const std::int64_t distance = source.carried.front().distance;
  const std::int64_t trips = kernel.trip_count();
  // One partial per residue class modulo the carried distance (= per PE of
  // the accumulator chain); the class's final value is its last iteration.
  std::int64_t total = 0;
  for (std::int64_t r = 0; r < std::min(distance, trips); ++r) {
    std::int64_t last = r;
    while (last + distance < trips) last += distance;
    total += result.values[static_cast<std::size_t>(
        unrolled.id_of(reduction.source, last))];
  }
  // The mapper's reduction tree adds on the 16-bit datapath; modular
  // addition is associative, so wrapping the plain sum once is enough.
  if (mode == ir::DatapathMode::kWrap16)
    total = static_cast<std::int16_t>(static_cast<std::uint64_t>(total));
  memory.write(reduction.array, reduction.index0, total);
  return result;
}

void reference_execute(const kernels::Workload& w, ir::Memory& memory,
                       ir::DatapathMode mode) {
  const ir::UnrolledGraph unrolled(w.kernel);
  reference_run(w.kernel, w.reduction, unrolled, memory, mode);
}

}  // namespace rsp::gen
