// Differential fuzzing harness over the generated-kernel family.
//
// `fuzz_one(seed)` drives gen::generate_workload(seed) through the whole
// toolchain — map, schedule, legality — and cross-checks every execution
// path against every other on a rotating subset of the standard
// architecture suite:
//
//   * dense engine == event engine (SimResult and final memory), per
//     DatapathMode (kExact and kWrap16);
//   * simulator final memory == reference-interpreter final memory
//     (including the reduction epilogue);
//   * per-op simulator values == interpreter values, matched through
//     ScheduledOp::source.
//
// Any divergence, scheduling failure or unexpected exception produces a
// FuzzReport whose seed reproduces the failure standalone
// (`rsp_cli fuzz --trials 1 --seed <seed>`); fuzz_many runs seeds
// base, base+1, ... so a failing trial's printed seed is all that is needed.
// `tests/data/gen_corpus/` holds previously-failing seeds replayed by ctest
// and CI.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gen/generator.hpp"

namespace rsp::gen {

struct FuzzOptions {
  /// Generation knobs; `config.seed` is overwritten by the trial seed.
  GeneratorConfig config;
  /// Architectures checked per trial: Base plus up to (max_archs - 1)
  /// seed-rotated sharing designs. Across many trials the rotation covers
  /// the whole standard suite.
  int max_archs = 3;
  /// Check every design of the standard suite (corpus replay uses this).
  bool full_suite = false;
  /// Harness self-test: corrupt the event engine's final memory so a
  /// demonstration test can prove a simulator bug would be caught.
  bool inject_event_bug = false;
};

struct FuzzReport {
  std::uint64_t seed = 0;
  bool ok = true;
  std::string detail;  ///< empty when ok; names arch/mode/check otherwise
};

/// One complete differential trial. Never throws: failures (including
/// exceptions out of the toolchain) are reported in the FuzzReport.
FuzzReport fuzz_one(std::uint64_t seed, const FuzzOptions& options = {});

struct FuzzSummary {
  std::int64_t trials = 0;
  std::vector<FuzzReport> failures;
};

/// Runs trials with seeds base_seed, base_seed + 1, ... base_seed + trials
/// - 1. `on_trial`, when set, observes every report (progress/logging).
FuzzSummary fuzz_many(
    std::uint64_t base_seed, std::int64_t trials,
    const FuzzOptions& options = {},
    const std::function<void(const FuzzReport&)>& on_trial = {});

/// End-to-end smoke of the `gen:<seed>` catalogue path through
/// api::Service: eval, simulate (both engines), simulate_batch and a small
/// dse run must all succeed and match golden. Reported like a fuzz trial.
FuzzReport service_smoke(std::uint64_t seed);

/// Loads a regression corpus: `path` is either one seed file or a directory
/// whose *.txt files are read in sorted order. Seed files hold one decimal
/// seed per line; blank lines and '#' comments are ignored. Throws
/// NotFoundError when the path does not exist and InvalidArgumentError on a
/// malformed line.
std::vector<std::uint64_t> load_corpus(const std::string& path);

}  // namespace rsp::gen
