#include "arch/sharing.hpp"

#include <sstream>

#include "util/error.hpp"

namespace rsp::arch {

std::string to_string(const SharedUnitId& id) {
  std::ostringstream os;
  os << (id.pool == SharedUnitId::Pool::kRow ? "row" : "col") << id.line
     << ".u" << id.index;
  return os.str();
}

int SharingPlan::total_units(const ArraySpec& array) const {
  return array.rows * units_per_row + array.cols * units_per_col;
}

std::vector<SharedUnitId> SharingPlan::reachable_units(const ArraySpec& array,
                                                       PeCoord pe) const {
  RSP_ASSERT(array.contains(pe));
  std::vector<SharedUnitId> out;
  out.reserve(static_cast<std::size_t>(units_reachable_per_pe()));
  for (int u = 0; u < units_per_row; ++u)
    out.push_back(SharedUnitId{SharedUnitId::Pool::kRow, pe.row, u});
  for (int u = 0; u < units_per_col; ++u)
    out.push_back(SharedUnitId{SharedUnitId::Pool::kColumn, pe.col, u});
  return out;
}

void SharingPlan::validate(const ArraySpec& array) const {
  array.validate();
  if (!is_sharable(resource) && shares())
    throw InvalidArgumentError(std::string(resource_name(resource)) +
                               " is not a sharable resource");
  if (units_per_row < 0 || units_per_col < 0)
    throw InvalidArgumentError("shared unit counts must be non-negative");
  if (pipeline_stages < 1)
    throw InvalidArgumentError("pipeline stages must be >= 1");
  if (pipeline_stages > 1 && !is_pipelinable(resource))
    throw InvalidArgumentError(std::string(resource_name(resource)) +
                               " is not a pipelinable resource");
  if (pipeline_stages > 8)
    throw InvalidArgumentError(
        "more than 8 pipeline stages is outside the template's design space");
}

}  // namespace rsp::arch
