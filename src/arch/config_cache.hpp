// Configuration cache model.
//
// The paper allocates a configuration cache to *each PE* (loop pipelining
// needs per-PE control, unlike Morphosys' SIMD broadcast). A configuration
// context is, per PE, a sequence of configuration words — one per cycle —
// selecting the operation, operand sources and, in RS/RSP architectures,
// the shared unit to use. This module models the storage (word layout and
// bit count), not the scheduling; the mapper in src/sched fills it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/array.hpp"
#include "arch/sharing.hpp"

namespace rsp::arch {

/// One per-cycle configuration word of one PE.
struct ConfigWord {
  std::uint8_t opcode = 0;       ///< PE operation selector
  std::uint8_t src_a = 0;        ///< operand A source selector
  std::uint8_t src_b = 0;        ///< operand B source selector
  std::uint8_t shared_select = 0;///< bus-switch unit selector (0 = idle)
  std::int32_t immediate = 0;    ///< constant / shift amount
  bool mem_access = false;       ///< drives a row bus this cycle

  bool operator==(const ConfigWord&) const = default;
};

/// Per-PE context storage for one kernel.
class ConfigCache {
 public:
  ConfigCache(const ArraySpec& array, int context_length);

  const ArraySpec& array() const { return array_; }
  int context_length() const { return context_length_; }

  ConfigWord& word(PeCoord pe, int cycle);
  const ConfigWord& word(PeCoord pe, int cycle) const;

  /// Bits of one configuration word for the given switch complexity
  /// (opcode 4 + two source selectors 4 each + shared-unit select +
  /// immediate 16 + mem flag 1).
  static int word_bits(int shared_select_bits);

  /// Total storage of this cache in bits, given the sharing plan.
  std::int64_t total_bits(const SharingPlan& plan) const;

  std::string summary() const;

 private:
  ArraySpec array_;
  int context_length_;
  std::vector<ConfigWord> words_;  // [pe_linear * context_length + cycle]
};

}  // namespace rsp::arch
