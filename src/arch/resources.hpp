// Functional resources of a processing element.
//
// The paper's PE (Table 1) is built from a multiplexer front-end, an ALU, an
// array multiplier and shift logic, plus output registers. The RSP template
// classifies resources as *primitive* (stay inside every PE) or *critical*
// (area/delay-critical; candidates for sharing and pipelining — the array
// multiplier in the paper's domain).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace rsp::arch {

enum class Resource : std::uint8_t {
  kMultiplexer,      // operand selection front-end
  kAlu,              // add/sub/abs/logic
  kArrayMultiplier,  // the critical resource of the paper's domain
  kShiftLogic,       // barrel shifter
  kOutputRegister,   // PE output register file
  kPipelineRegister, // register inserted when a resource is pipelined
  kBusSwitch,        // per-PE switch steering operands to shared resources
};

const char* resource_name(Resource r);
std::ostream& operator<<(std::ostream& os, Resource r);

/// Resource classification used by the RSP exploration.
bool is_sharable(Resource r);    // may be extracted and shared (multiplier)
bool is_pipelinable(Resource r); // may be split into stages (multiplier)

/// The composition of one PE variant.
struct PeSpec {
  bool has_multiplier = true;   ///< false once the multiplier is extracted
  bool has_bus_switch = false;  ///< true in RS/RSP architectures
  bool has_pipeline_regs = false;  ///< true in RSP architectures

  /// Resources physically inside this PE, in Table 1 order.
  std::vector<Resource> resources() const;
};

/// PE of the base (Morphosys-like) architecture: everything inside.
PeSpec base_pe();
/// PE of an RS architecture: multiplier extracted, bus switch added.
PeSpec shared_pe();
/// PE of an RSP architecture: additionally has pipeline registers.
PeSpec shared_pipelined_pe();

}  // namespace rsp::arch
