#include "arch/array.hpp"

#include <cstdlib>
#include <ostream>

namespace rsp::arch {

std::ostream& operator<<(std::ostream& os, const PeCoord& c) {
  return os << "PE(" << c.row << "," << c.col << ")";
}

const char* route_kind_name(RouteKind kind) {
  switch (kind) {
    case RouteKind::kSamePe:
      return "same-pe";
    case RouteKind::kNeighbor:
      return "neighbor";
    case RouteKind::kRowLine:
      return "row-line";
    case RouteKind::kColumnLine:
      return "column-line";
    case RouteKind::kNone:
      return "none";
  }
  throw InternalError("unknown RouteKind");
}

void ArraySpec::validate() const {
  if (rows <= 0 || cols <= 0)
    throw InvalidArgumentError("array must have positive dimensions");
  if (read_buses_per_row <= 0)
    throw InvalidArgumentError("need at least one read bus per row");
  if (write_buses_per_row <= 0)
    throw InvalidArgumentError("need at least one write bus per row");
  if (data_width_bits <= 0 || data_width_bits > 64)
    throw InvalidArgumentError("data width must be in (0, 64] bits");
}

RouteKind ArraySpec::route(PeCoord from, PeCoord to) const {
  RSP_ASSERT(contains(from) && contains(to));
  if (from == to) return RouteKind::kSamePe;
  const int dr = std::abs(from.row - to.row);
  const int dc = std::abs(from.col - to.col);
  if (dr + dc == 1) return RouteKind::kNeighbor;
  if (from.row == to.row) return RouteKind::kRowLine;
  if (from.col == to.col) return RouteKind::kColumnLine;
  return RouteKind::kNone;
}

}  // namespace rsp::arch
