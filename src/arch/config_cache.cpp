#include "arch/config_cache.hpp"

#include <sstream>

#include "arch/bus_switch.hpp"
#include "util/error.hpp"

namespace rsp::arch {

ConfigCache::ConfigCache(const ArraySpec& array, int context_length)
    : array_(array), context_length_(context_length) {
  array_.validate();
  if (context_length <= 0)
    throw InvalidArgumentError("context length must be positive");
  words_.assign(static_cast<std::size_t>(array_.num_pes()) *
                    static_cast<std::size_t>(context_length_),
                ConfigWord{});
}

ConfigWord& ConfigCache::word(PeCoord pe, int cycle) {
  if (!array_.contains(pe)) throw InvalidArgumentError("PE out of range");
  if (cycle < 0 || cycle >= context_length_)
    throw InvalidArgumentError("cycle out of range");
  return words_[static_cast<std::size_t>(array_.linear(pe)) *
                    static_cast<std::size_t>(context_length_) +
                static_cast<std::size_t>(cycle)];
}

const ConfigWord& ConfigCache::word(PeCoord pe, int cycle) const {
  return const_cast<ConfigCache*>(this)->word(pe, cycle);
}

int ConfigCache::word_bits(int shared_select_bits) {
  constexpr int kOpcodeBits = 4;
  constexpr int kSrcBits = 4;
  constexpr int kImmBits = 16;
  constexpr int kMemBits = 1;
  return kOpcodeBits + 2 * kSrcBits + shared_select_bits + kImmBits + kMemBits;
}

std::int64_t ConfigCache::total_bits(const SharingPlan& plan) const {
  const BusSwitchSpec sw = make_bus_switch(plan, array_.data_width_bits);
  return static_cast<std::int64_t>(word_bits(sw.select_bits())) *
         array_.num_pes() * context_length_;
}

std::string ConfigCache::summary() const {
  std::ostringstream os;
  os << array_.rows << "x" << array_.cols << " cache, " << context_length_
     << " words/PE";
  return os.str();
}

}  // namespace rsp::arch
