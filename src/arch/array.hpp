// Reconfigurable array geometry and interconnect.
//
// A rectangular rows×cols mesh of PEs (Fig. 1a). Each row owns a small set
// of read buses and write buses to data memory (Fig. 1b: two read buses and
// one write bus in the paper's 4×4 illustration; the 8×8 experimental array
// keeps the same scheme). PEs additionally talk to 4-neighbours and over
// row/column lines, which the mapper uses for operand routing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/error.hpp"

namespace rsp::arch {

/// Position of a PE: row-major, 0-based.
struct PeCoord {
  int row = 0;
  int col = 0;

  bool operator==(const PeCoord&) const = default;
  auto operator<=>(const PeCoord&) const = default;
};

std::ostream& operator<<(std::ostream& os, const PeCoord& c);

/// How two PEs may exchange a value in one hop.
enum class RouteKind {
  kSamePe,     // producer and consumer on the same PE (register file)
  kNeighbor,   // 4-neighbour link
  kRowLine,    // same row, via row interconnect/bus
  kColumnLine, // same column, via column interconnect
  kNone,       // not reachable in one hop
};

const char* route_kind_name(RouteKind kind);

struct ArraySpec {
  int rows = 8;
  int cols = 8;
  int read_buses_per_row = 2;   ///< simultaneous loads per row per cycle
  int write_buses_per_row = 1;  ///< simultaneous stores per row per cycle
  int data_width_bits = 16;     ///< paper §5.1: bus width extended to 16

  int num_pes() const { return rows * cols; }

  /// Throws InvalidArgumentError unless the spec is well-formed.
  void validate() const;

  bool contains(PeCoord c) const {
    return c.row >= 0 && c.row < rows && c.col >= 0 && c.col < cols;
  }

  /// Row-major linear id of a PE.
  int linear(PeCoord c) const {
    RSP_ASSERT(contains(c));
    return c.row * cols + c.col;
  }

  PeCoord coord(int linear_id) const {
    RSP_ASSERT(linear_id >= 0 && linear_id < num_pes());
    return PeCoord{linear_id / cols, linear_id % cols};
  }

  /// Classifies the single-hop route from `from` to `to`.
  RouteKind route(PeCoord from, PeCoord to) const;

  bool operator==(const ArraySpec&) const = default;
};

}  // namespace rsp::arch
