// Configuration bitstream: serialisation of a configuration cache into the
// byte stream a host processor (the paper's Tiny_RISC/LEON-style companion
// core) would DMA into the array's per-PE caches at kernel-switch time.
//
// Layout (little-endian):
//   magic "RSPC", u16 version, u16 rows, u16 cols, u16 context_length,
//   u16 word_bits, u16 reserved, then rows×cols×length packed words
//   (word_bits each, bit-packed contiguously).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/config_cache.hpp"

namespace rsp::arch {

/// Packs the cache into a bitstream. `plan` determines the word width
/// (bus-switch select bits).
std::vector<std::uint8_t> encode_bitstream(const ConfigCache& cache,
                                           const SharingPlan& plan);

/// Reconstructs a cache from a bitstream; throws rsp::Error on malformed
/// input (bad magic, truncated payload, inconsistent geometry).
ConfigCache decode_bitstream(const std::vector<std::uint8_t>& bytes,
                             const SharingPlan& plan);

/// Size in bytes a kernel's context occupies (header + payload).
std::size_t bitstream_size(const ConfigCache& cache, const SharingPlan& plan);

}  // namespace rsp::arch
