// The RSP template parameters (paper §4):
//   - which resource types are shared / pipelined,
//   - the number of pipeline stages,
//   - the number of shared-resource rows (shr: units attached per row) and
//     columns (shc: units attached per column).
//
// Shared units sit in line with the rows/columns of the array (Fig. 8); a PE
// reaches every unit of its own row pool and its own column pool through its
// bus switch (Fig. 4).
#pragma once

#include <string>
#include <vector>

#include "arch/array.hpp"
#include "arch/resources.hpp"

namespace rsp::arch {

/// Identifier of one physical shared unit.
struct SharedUnitId {
  /// Pool the unit belongs to: row pool r serves all PEs with row == r,
  /// column pool c serves all PEs with col == c.
  enum class Pool { kRow, kColumn } pool = Pool::kRow;
  int line = 0;   ///< row index (kRow) or column index (kColumn)
  int index = 0;  ///< which unit within the line's pool

  bool operator==(const SharedUnitId&) const = default;
  auto operator<=>(const SharedUnitId&) const = default;
};

std::string to_string(const SharedUnitId& id);

/// Placement plan of shared units for one resource type.
struct SharingPlan {
  Resource resource = Resource::kArrayMultiplier;
  int units_per_row = 0;     ///< paper's shr
  int units_per_col = 0;     ///< paper's shc
  int pipeline_stages = 1;   ///< 1 = not pipelined (pure RS); >=2 = RSP

  bool shares() const { return units_per_row > 0 || units_per_col > 0; }
  bool pipelines() const { return pipeline_stages > 1; }

  /// Total physical units on a rows×cols array:
  /// rows·units_per_row + cols·units_per_col (paper eq. (2) term).
  int total_units(const ArraySpec& array) const;

  /// All unit ids available to a PE at `pe` (its row pool then column pool).
  std::vector<SharedUnitId> reachable_units(const ArraySpec& array,
                                            PeCoord pe) const;

  /// Units a single PE can reach (= units_per_row + units_per_col);
  /// drives the bus-switch complexity model.
  int units_reachable_per_pe() const {
    return units_per_row + units_per_col;
  }

  void validate(const ArraySpec& array) const;

  bool operator==(const SharingPlan&) const = default;
};

}  // namespace rsp::arch
