// Complete architecture instances and the paper's nine named designs.
//
// `Architecture` bundles the array geometry, the PE variant and the sharing
// plan; `standard_suite()` returns Base, RS#1..RS#4 and RSP#1..RSP#4 exactly
// as evaluated in the paper's Tables 2, 4 and 5 (Fig. 8 topologies):
//   RS/RSP#1: one multiplier per row            (shr=1, shc=0)
//   RS/RSP#2: two multipliers per row           (shr=2, shc=0)
//   RS/RSP#3: two per row + one per column      (shr=2, shc=1)
//   RS/RSP#4: two per row + two per column      (shr=2, shc=2)
// RSP variants pipeline the shared multiplier into two stages.
#pragma once

#include <string>
#include <vector>

#include "arch/array.hpp"
#include "arch/resources.hpp"
#include "arch/sharing.hpp"

namespace rsp::arch {

struct Architecture {
  std::string name;
  ArraySpec array;
  PeSpec pe;
  SharingPlan sharing;

  /// True if multipliers are extracted from the PEs and shared.
  bool shares_multiplier() const { return sharing.shares(); }
  /// True if the (shared) multiplier is pipelined.
  bool pipelines_multiplier() const { return sharing.pipelines(); }

  /// Cycles a multiplication occupies from issue to result availability.
  int mult_latency() const {
    return pipelines_multiplier() ? sharing.pipeline_stages : 1;
  }

  /// Multipliers usable by PEs of row r / column c in a single cycle:
  /// unlimited (= cols per row) in the base architecture, pool-bounded when
  /// shared. `-1` encodes "one per PE" (base).
  int multipliers_per_row_pool() const {
    return shares_multiplier() ? sharing.units_per_row : -1;
  }
  int multipliers_per_col_pool() const {
    return shares_multiplier() ? sharing.units_per_col : -1;
  }

  void validate() const;

  bool operator==(const Architecture&) const = default;
};

/// The Morphosys-like base: 8×8, every PE owns its multiplier.
Architecture base_architecture(int rows = 8, int cols = 8);

/// RS#variant (variant in 1..4), multipliers shared, not pipelined.
Architecture rs_architecture(int variant, int rows = 8, int cols = 8);

/// RSP#variant (variant in 1..4), shared and 2-stage pipelined.
Architecture rsp_architecture(int variant, int rows = 8, int cols = 8,
                              int stages = 2);

/// Custom RSP design for exploration: any shr/shc/stage combination.
Architecture custom_architecture(std::string name, int rows, int cols,
                                 int units_per_row, int units_per_col,
                                 int stages);

/// [Base, RS#1..4, RSP#1..4] in the paper's table order.
std::vector<Architecture> standard_suite(int rows = 8, int cols = 8);

}  // namespace rsp::arch
