#include "arch/bus_switch.hpp"

namespace rsp::arch {

int BusSwitchSpec::select_bits() const {
  int bits = 0;
  int states = reachable_units + 1;  // +1 for "idle"
  while ((1 << bits) < states) ++bits;
  return bits;
}

int BusSwitchSpec::wire_count() const {
  // Two operand buses (n bits each) and one result bus (2n bits) per
  // reachable unit.
  return reachable_units * (2 * operand_width_bits + 2 * operand_width_bits);
}

BusSwitchSpec make_bus_switch(const SharingPlan& plan, int data_width_bits) {
  BusSwitchSpec spec;
  spec.reachable_units = plan.units_reachable_per_pe();
  spec.operand_width_bits = data_width_bits;
  return spec;
}

}  // namespace rsp::arch
