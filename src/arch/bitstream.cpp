#include "arch/bitstream.hpp"

#include <cstring>

#include "arch/bus_switch.hpp"
#include "util/error.hpp"

namespace rsp::arch {

namespace {

constexpr char kMagic[4] = {'R', 'S', 'P', 'C'};
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 16;

/// Sequential bit packer/unpacker (LSB-first within the stream).
class BitCursor {
 public:
  explicit BitCursor(std::vector<std::uint8_t>& bytes, std::size_t bit_offset)
      : bytes_(bytes), bit_(bit_offset) {}

  void put(std::uint64_t value, int bits) {
    for (int i = 0; i < bits; ++i, ++bit_) {
      const std::size_t byte = bit_ / 8;
      if (byte >= bytes_.size()) bytes_.resize(byte + 1, 0);
      if ((value >> i) & 1u)
        bytes_[byte] = static_cast<std::uint8_t>(bytes_[byte] | (1u << (bit_ % 8)));
    }
  }

  std::uint64_t get(int bits) {
    std::uint64_t value = 0;
    for (int i = 0; i < bits; ++i, ++bit_) {
      const std::size_t byte = bit_ / 8;
      if (byte >= bytes_.size())
        throw Error("bitstream truncated while reading payload");
      if ((bytes_[byte] >> (bit_ % 8)) & 1u) value |= (1ull << i);
    }
    return value;
  }

 private:
  std::vector<std::uint8_t>& bytes_;
  std::size_t bit_;
};

void put_u16(std::vector<std::uint8_t>& bytes, std::size_t at,
             std::uint16_t v) {
  bytes[at] = static_cast<std::uint8_t>(v & 0xff);
  bytes[at + 1] = static_cast<std::uint8_t>(v >> 8);
}

std::uint16_t get_u16(const std::vector<std::uint8_t>& bytes,
                      std::size_t at) {
  return static_cast<std::uint16_t>(bytes[at] | (bytes[at + 1] << 8));
}

// Field widths inside one packed word.
struct WordLayout {
  int select_bits;
  int total_bits;
};

WordLayout layout_for(const ConfigCache& cache, const SharingPlan& plan) {
  const BusSwitchSpec sw =
      make_bus_switch(plan, cache.array().data_width_bits);
  return WordLayout{sw.select_bits(),
                    ConfigCache::word_bits(sw.select_bits())};
}

}  // namespace

std::vector<std::uint8_t> encode_bitstream(const ConfigCache& cache,
                                           const SharingPlan& plan) {
  const WordLayout layout = layout_for(cache, plan);
  const ArraySpec& array = cache.array();

  std::vector<std::uint8_t> bytes(kHeaderBytes, 0);
  std::memcpy(bytes.data(), kMagic, 4);
  put_u16(bytes, 4, kVersion);
  put_u16(bytes, 6, static_cast<std::uint16_t>(array.rows));
  put_u16(bytes, 8, static_cast<std::uint16_t>(array.cols));
  put_u16(bytes, 10, static_cast<std::uint16_t>(cache.context_length()));
  put_u16(bytes, 12, static_cast<std::uint16_t>(layout.total_bits));
  put_u16(bytes, 14, 0);

  BitCursor cursor(bytes, kHeaderBytes * 8);
  for (int r = 0; r < array.rows; ++r)
    for (int c = 0; c < array.cols; ++c)
      for (int t = 0; t < cache.context_length(); ++t) {
        const ConfigWord& w = cache.word({r, c}, t);
        cursor.put(w.opcode, 4);
        cursor.put(w.src_a, 4);
        cursor.put(w.src_b, 4);
        if (layout.select_bits > 0)
          cursor.put(w.shared_select, layout.select_bits);
        cursor.put(static_cast<std::uint16_t>(w.immediate), 16);
        cursor.put(w.mem_access ? 1 : 0, 1);
      }
  return bytes;
}

ConfigCache decode_bitstream(const std::vector<std::uint8_t>& bytes,
                             const SharingPlan& plan) {
  if (bytes.size() < kHeaderBytes)
    throw Error("bitstream shorter than its header");
  if (std::memcmp(bytes.data(), kMagic, 4) != 0)
    throw Error("bitstream has bad magic");
  if (get_u16(bytes, 4) != kVersion)
    throw Error("unsupported bitstream version");

  ArraySpec array;
  array.rows = get_u16(bytes, 6);
  array.cols = get_u16(bytes, 8);
  const int length = get_u16(bytes, 10);
  array.validate();
  ConfigCache cache(array, length);

  const WordLayout layout = layout_for(cache, plan);
  if (get_u16(bytes, 12) != static_cast<std::uint16_t>(layout.total_bits))
    throw Error("bitstream word width does not match the sharing plan");

  std::vector<std::uint8_t> payload(bytes);
  BitCursor cursor(payload, kHeaderBytes * 8);
  for (int r = 0; r < array.rows; ++r)
    for (int c = 0; c < array.cols; ++c)
      for (int t = 0; t < length; ++t) {
        ConfigWord& w = cache.word({r, c}, t);
        w.opcode = static_cast<std::uint8_t>(cursor.get(4));
        w.src_a = static_cast<std::uint8_t>(cursor.get(4));
        w.src_b = static_cast<std::uint8_t>(cursor.get(4));
        w.shared_select =
            layout.select_bits > 0
                ? static_cast<std::uint8_t>(cursor.get(layout.select_bits))
                : 0;
        w.immediate = static_cast<std::int16_t>(cursor.get(16));
        w.mem_access = cursor.get(1) != 0;
      }
  return cache;
}

std::size_t bitstream_size(const ConfigCache& cache,
                           const SharingPlan& plan) {
  const WordLayout layout = layout_for(cache, plan);
  const std::size_t words = static_cast<std::size_t>(cache.array().num_pes()) *
                            static_cast<std::size_t>(cache.context_length());
  return kHeaderBytes + (words * layout.total_bits + 7) / 8;
}

}  // namespace rsp::arch
