#include "arch/resources.hpp"

#include <ostream>

#include "util/error.hpp"

namespace rsp::arch {

const char* resource_name(Resource r) {
  switch (r) {
    case Resource::kMultiplexer:
      return "Multiplexer";
    case Resource::kAlu:
      return "ALU";
    case Resource::kArrayMultiplier:
      return "Array multiplier";
    case Resource::kShiftLogic:
      return "Shift logic";
    case Resource::kOutputRegister:
      return "Output register";
    case Resource::kPipelineRegister:
      return "Pipeline register";
    case Resource::kBusSwitch:
      return "Bus switch";
  }
  throw InternalError("unknown Resource");
}

std::ostream& operator<<(std::ostream& os, Resource r) {
  return os << resource_name(r);
}

bool is_sharable(Resource r) { return r == Resource::kArrayMultiplier; }

bool is_pipelinable(Resource r) { return r == Resource::kArrayMultiplier; }

std::vector<Resource> PeSpec::resources() const {
  std::vector<Resource> out = {Resource::kMultiplexer, Resource::kAlu};
  if (has_multiplier) out.push_back(Resource::kArrayMultiplier);
  out.push_back(Resource::kShiftLogic);
  out.push_back(Resource::kOutputRegister);
  if (has_pipeline_regs) out.push_back(Resource::kPipelineRegister);
  if (has_bus_switch) out.push_back(Resource::kBusSwitch);
  return out;
}

PeSpec base_pe() { return PeSpec{true, false, false}; }

PeSpec shared_pe() { return PeSpec{false, true, false}; }

PeSpec shared_pipelined_pe() { return PeSpec{false, true, true}; }

}  // namespace rsp::arch
