// Bus switch model (Fig. 4).
//
// Each PE of an RS/RSP architecture owns a bus switch that routes its two
// n-bit operands to one of the shared units it can reach and routes the
// 2n-bit product back. The switch is configured per cycle by the
// configuration cache; its hardware complexity grows with the number of
// reachable units, which is what makes aggressive sharing plans (RS#4)
// slower per Table 2.
#pragma once

#include <cstdint>

#include "arch/sharing.hpp"

namespace rsp::arch {

struct BusSwitchSpec {
  int reachable_units = 0;  ///< units selectable by this switch
  int operand_width_bits = 16;

  /// Selector bits needed in each configuration word (ceil(log2(units+1));
  /// the +1 encodes "no shared op this cycle").
  int select_bits() const;

  /// Total wires through the switch: two operand buses out, one double-width
  /// result bus back, per reachable unit.
  int wire_count() const;
};

/// Builds the switch spec implied by a sharing plan.
BusSwitchSpec make_bus_switch(const SharingPlan& plan, int data_width_bits);

}  // namespace rsp::arch
