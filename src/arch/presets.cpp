#include "arch/presets.hpp"

#include "util/error.hpp"

namespace rsp::arch {

namespace {

/// shr/shc of the paper's four sharing topologies (Fig. 8).
struct Topology {
  int per_row;
  int per_col;
};

Topology topology(int variant) {
  switch (variant) {
    case 1:
      return {1, 0};
    case 2:
      return {2, 0};
    case 3:
      return {2, 1};
    case 4:
      return {2, 2};
    default:
      throw InvalidArgumentError("sharing variant must be in 1..4, got " +
                                 std::to_string(variant));
  }
}

ArraySpec make_array(int rows, int cols) {
  ArraySpec array;
  array.rows = rows;
  array.cols = cols;
  array.validate();
  return array;
}

}  // namespace

void Architecture::validate() const {
  array.validate();
  sharing.validate(array);
  if (shares_multiplier() && pe.has_multiplier)
    throw InvalidArgumentError(
        name + ": PEs keep private multipliers although the plan shares them");
  if (!shares_multiplier() && !pe.has_multiplier)
    throw InvalidArgumentError(
        name + ": PEs have no multiplier and none is shared");
  if (shares_multiplier() && !pe.has_bus_switch)
    throw InvalidArgumentError(name +
                               ": sharing requires a bus switch in every PE");
  if (pipelines_multiplier() && !pe.has_pipeline_regs)
    throw InvalidArgumentError(
        name + ": pipelined operation requires pipeline registers in the PE");
}

Architecture base_architecture(int rows, int cols) {
  Architecture a;
  a.name = "Base";
  a.array = make_array(rows, cols);
  a.pe = base_pe();
  a.sharing = SharingPlan{Resource::kArrayMultiplier, 0, 0, 1};
  a.validate();
  return a;
}

Architecture rs_architecture(int variant, int rows, int cols) {
  const Topology t = topology(variant);
  Architecture a;
  a.name = "RS#" + std::to_string(variant);
  a.array = make_array(rows, cols);
  a.pe = shared_pe();
  a.sharing = SharingPlan{Resource::kArrayMultiplier, t.per_row, t.per_col, 1};
  a.validate();
  return a;
}

Architecture rsp_architecture(int variant, int rows, int cols, int stages) {
  if (stages < 2)
    throw InvalidArgumentError("an RSP architecture needs >= 2 stages");
  const Topology t = topology(variant);
  Architecture a;
  a.name = "RSP#" + std::to_string(variant);
  a.array = make_array(rows, cols);
  a.pe = shared_pipelined_pe();
  a.sharing =
      SharingPlan{Resource::kArrayMultiplier, t.per_row, t.per_col, stages};
  a.validate();
  return a;
}

Architecture custom_architecture(std::string name, int rows, int cols,
                                 int units_per_row, int units_per_col,
                                 int stages) {
  Architecture a;
  a.name = std::move(name);
  a.array = make_array(rows, cols);
  const bool shares = units_per_row > 0 || units_per_col > 0;
  if (!shares && stages > 1)
    throw InvalidArgumentError(
        "pipelining without sharing is not part of the explored template");
  a.pe = !shares ? base_pe()
         : stages > 1 ? shared_pipelined_pe()
                      : shared_pe();
  a.sharing = SharingPlan{Resource::kArrayMultiplier, units_per_row,
                          units_per_col, stages};
  a.validate();
  return a;
}

std::vector<Architecture> standard_suite(int rows, int cols) {
  std::vector<Architecture> out;
  out.push_back(base_architecture(rows, cols));
  for (int v = 1; v <= 4; ++v) out.push_back(rs_architecture(v, rows, cols));
  for (int v = 1; v <= 4; ++v) out.push_back(rsp_architecture(v, rows, cols));
  return out;
}

}  // namespace rsp::arch
