// Parallel drivers for the two expensive evaluation loops:
//
//   * dse::Explorer's step 5 (exact rescheduling of every Pareto survivor
//     on every kernel), fanned out one task per (survivor, kernel) pair;
//   * core::RspEvaluator::evaluate_suite, fanned out one task per
//     architecture.
//
// Results are **bit-identical** to the serial paths: each task computes an
// independent (program, architecture) measurement with the same
// deterministic scheduler, and the reductions (per-candidate cycle sums,
// the delay-reduction column, optimum selection) happen after the join in
// the serial iteration order. Task *submission* order is shuffled with a
// deterministic per-run util::Rng stream purely to spread early tasks
// across cache shards; it cannot affect any result.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "dse/explorer.hpp"
#include "runtime/eval_cache.hpp"
#include "runtime/thread_pool.hpp"

namespace rsp::runtime {

struct RuntimeOptions {
  /// Worker threads when no external pool is supplied; 0 = hardware count.
  int threads = 0;
  /// External pool to run on (non-owning). nullptr = a private pool is
  /// created per call. Sharing one pool avoids thread churn when serving
  /// many requests per process (see runtime::run_batch).
  ThreadPool* pool = nullptr;
  /// Memo table consulted before any rescheduling. nullptr = no caching.
  std::shared_ptr<EvalCache> cache;
};

/// The parallel step 5: exact-evaluates every Pareto survivor in `result`
/// across `pool`, one task per (survivor, kernel), memoized through
/// `cache` when non-null. `programs`/`kernel_names` come from
/// dse::Explorer::prepare. This is the exact fan-out ParallelExplorer
/// runs; it is exposed so benches measure the production code path.
void evaluate_pareto_exact(const std::vector<sched::PlacedProgram>& programs,
                           const std::vector<std::string>& kernel_names,
                           dse::ExplorationResult& result, ThreadPool& pool,
                           EvalCache* cache);

class ParallelExplorer {
 public:
  explicit ParallelExplorer(arch::ArraySpec array,
                            dse::ExplorerConfig config = {},
                            synth::SynthesisModel synth =
                                synth::SynthesisModel(),
                            RuntimeOptions options = {});

  /// The full Fig. 7 flow with step 5 parallelized; bit-identical to
  /// dse::Explorer::explore on the same inputs.
  dse::ExplorationResult explore(
      const std::vector<kernels::Workload>& domain) const;

  /// Parallel counterpart of core::RspEvaluator::evaluate_suite;
  /// bit-identical to the serial path. `kernel_id` names the program in
  /// cache keys (use the workload name).
  std::vector<core::EvalResult> evaluate_suite(
      const std::string& kernel_id, const sched::PlacedProgram& program,
      const std::vector<arch::Architecture>& suite) const;

  const RuntimeOptions& options() const { return options_; }

 private:
  dse::Explorer explorer_;
  RuntimeOptions options_;
};

}  // namespace rsp::runtime
