// Parallel drivers for the expensive stages of the Fig. 7 flow:
//
//   * steps 1–4 (prepare_parallel): the initial per-kernel mapping and
//     base scheduling fan out one task per kernel — memoized through the
//     MappingCache so repeated domains skip remapping entirely — and the
//     parameter-grid estimation (steps 2–3) fans out in chunks over the
//     enumerated DesignPoints; the Pareto filter (step 4) runs after the
//     join in serial enumeration order;
//   * step 5 (evaluate_pareto_exact): exact rescheduling of every Pareto
//     survivor on every kernel, one task per (survivor, kernel) pair,
//     memoized through the EvalCache;
//   * core::RspEvaluator::evaluate_suite, fanned out one task per
//     architecture.
//
// Results are **bit-identical** to the serial paths: every task runs the
// exact serial loop body (the dse::Explorer stage helpers and the same
// deterministic scheduler) on an independent slice, and all reductions
// (base-cycle sums, candidate order, the Pareto filter, per-candidate
// cycle sums, optimum selection) happen after the join in the serial
// iteration order. Task *submission* order for step 5 is shuffled with a
// deterministic per-run util::Rng stream purely to spread early tasks
// across cache shards; it cannot affect any result.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "dse/explorer.hpp"
#include "runtime/eval_cache.hpp"
#include "runtime/mapping_cache.hpp"
#include "runtime/thread_pool.hpp"

namespace rsp::runtime {

struct RuntimeOptions {
  /// Worker threads when no external pool is supplied; 0 = hardware count.
  int threads = 0;
  /// External pool to run on (non-owning). nullptr = a private pool is
  /// created per call. Sharing one pool avoids thread churn when serving
  /// many requests per process (see runtime::run_batch).
  ThreadPool* pool = nullptr;
  /// Memo table consulted before any rescheduling. nullptr = no caching.
  std::shared_ptr<EvalCache> cache;
  /// Step-1 memo table consulted before any remapping. nullptr = the
  /// ParallelExplorer creates a private one (bounded by `max_entries`), so
  /// repeated explore() calls on one instance already skip remapping; pass
  /// one in to share across instances and requests (api::Service does).
  std::shared_ptr<MappingCache> mapping_cache;
  /// Capacity bound for memo tables created on the caller's behalf
  /// (segmented-LRU eviction); 0 = unbounded. Tables passed in keep the
  /// bound they were constructed with.
  std::size_t max_entries = 0;
};

/// Step 1 alone, fanned out one task per kernel (through `mapping_cache`
/// when non-null): the per-kernel mapping + base-schedule records, plus the
/// mapping keys the estimate memo-table is addressed by (empty strings when
/// no cache is wired). Shared by prepare_parallel and the distributed
/// shard executors (runtime/dist_shard.hpp) so step-1 products cannot
/// drift between the single-process and sharded flows.
struct PreparedKernels {
  std::vector<std::shared_ptr<const dse::KernelPrep>> records;  ///< domain order
  std::vector<std::string> mapping_keys;                        ///< "" sans cache
};
PreparedKernels prepare_kernels_parallel(
    const dse::Explorer& explorer,
    const std::vector<kernels::Workload>& domain, ThreadPool& pool,
    MappingCache* mapping_cache);

/// The memoization protocol every exact measurement shares (DSE step 5,
/// suite eval, distributed exact shards): consult `cache` under `key` when
/// non-null, measure via the deterministic scheduler otherwise. One
/// function so no fan-out path can drift from the serial measurement.
EvalRecord cached_measure(EvalCache* cache, const std::string& key,
                          const sched::ContextScheduler& scheduler,
                          const sched::PlacedProgram& program,
                          const arch::Architecture& architecture);

/// The parallel steps 1–4: bit-identical to dse::Explorer::prepare on the
/// same domain. Step 1 runs one task per kernel (through `mapping_cache`
/// when non-null), steps 2–3 run chunked over the enumerated grid, step 4
/// reduces after the join in serial enumeration order. Exposed so benches
/// measure the production code path.
dse::PreparedExploration prepare_parallel(
    const dse::Explorer& explorer,
    const std::vector<kernels::Workload>& domain, ThreadPool& pool,
    MappingCache* mapping_cache);

/// The parallel step 5: exact-evaluates every Pareto survivor in `result`
/// across `pool`, one task per (survivor, kernel), memoized through
/// `cache` when non-null. `programs`/`kernel_names` come from
/// dse::Explorer::prepare. This is the exact fan-out ParallelExplorer
/// runs; it is exposed so benches measure the production code path.
void evaluate_pareto_exact(const std::vector<sched::PlacedProgram>& programs,
                           const std::vector<std::string>& kernel_names,
                           dse::ExplorationResult& result, ThreadPool& pool,
                           EvalCache* cache);

class ParallelExplorer {
 public:
  explicit ParallelExplorer(arch::ArraySpec array,
                            dse::ExplorerConfig config = {},
                            synth::SynthesisModel synth =
                                synth::SynthesisModel(),
                            RuntimeOptions options = {});

  /// The full Fig. 7 flow with steps 1–5 parallelized; bit-identical to
  /// dse::Explorer::explore on the same inputs.
  dse::ExplorationResult explore(
      const std::vector<kernels::Workload>& domain) const;

  /// Steps 1–4 only (prepare_parallel on this explorer's pool and mapping
  /// cache); bit-identical to dse::Explorer::prepare.
  dse::PreparedExploration prepare(
      const std::vector<kernels::Workload>& domain) const;

  /// Parallel counterpart of core::RspEvaluator::evaluate_suite;
  /// bit-identical to the serial path. `kernel_id` names the program in
  /// cache keys (use the workload name).
  std::vector<core::EvalResult> evaluate_suite(
      const std::string& kernel_id, const sched::PlacedProgram& program,
      const std::vector<arch::Architecture>& suite) const;

  const RuntimeOptions& options() const { return options_; }
  const std::shared_ptr<MappingCache>& mapping_cache() const {
    return options_.mapping_cache;
  }

 private:
  dse::Explorer explorer_;
  RuntimeOptions options_;
};

}  // namespace rsp::runtime
