// Striped memo table with bounded capacity and segmented-LRU eviction.
//
// StripedMemoCache<Value> is the concurrency core shared by the runtime's
// memo tables (EvalCache for (kernel, architecture) measurements, the
// MappingCache for step-1 mapping products): a string-keyed table striped
// over independently locked shards so worker threads rarely contend, with
// hit/miss/invalidation/eviction counters feeding the runtime reports.
//
// Capacity is bounded per shard (ceil(max_entries / shards); 0 keeps the
// table unbounded) and enforced with a *segmented* LRU: new keys enter a
// probationary segment and are promoted to a protected segment on their
// first hit, so a scan of one-shot keys (a sweep over a huge design grid)
// cannot flush the repeatedly-hit entries a serving process lives off.
// Victims come from the probation tail first; the protected segment is
// capped at ~80% of the shard so promotion pressure demotes its tail back
// to probation instead of pinning the whole shard.
//
// get_or_compute runs the compute outside any shard lock (computes
// reschedule kernels — far too slow to serialize) and publishes through a
// per-key ticket, so an entry invalidated mid-compute is never resurrected
// while invalidations of *other* keys do not block the publish. Values are
// deterministic functions of their key, so two threads racing to compute
// the same key insert identical values and the race is benign.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/mutex.hpp"

namespace rsp::runtime {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t evictions = 0;
  /// Configured capacity bound; 0 = unbounded.
  std::uint64_t max_entries = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Recency bookkeeping for one shard (externally guarded by the shard
/// mutex). Tracks exactly the shard's resident keys, split into the
/// probation and protected segments described above; both lists keep their
/// most-recently-used key at the front.
class SegmentedLru {
 public:
  /// Registers a new resident key as the probation MRU (refreshes in place
  /// when the key is already tracked — an insert-overwrite).
  void admit(const std::string& key) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      refresh(it->second);
      return;
    }
    probation_.push_front(key);
    index_.emplace(key, Pos{Segment::kProbation, probation_.begin()});
  }

  /// Records a hit: probation keys are promoted to the protected MRU slot,
  /// protected keys move back to it. When promotion pushes the protected
  /// segment past `protected_capacity`, its LRU tail is demoted to the
  /// probation MRU slot (not evicted — it keeps one more chance).
  void touch(const std::string& key, std::size_t protected_capacity) {
    const auto it = index_.find(key);
    if (it == index_.end()) return;  // not resident
    protected_.splice(protected_.begin(),
                      it->second.segment == Segment::kProbation ? probation_
                                                                : protected_,
                      it->second.it);
    it->second = Pos{Segment::kProtected, protected_.begin()};
    while (protected_capacity > 0 && protected_.size() > protected_capacity) {
      probation_.splice(probation_.begin(), protected_,
                        std::prev(protected_.end()));
      index_[probation_.front()] = Pos{Segment::kProbation,
                                       probation_.begin()};
    }
  }

  void erase(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    segment_list(it->second.segment).erase(it->second.it);
    index_.erase(it);
  }

  void clear() {
    probation_.clear();
    protected_.clear();
    index_.clear();
  }

  bool empty() const { return index_.empty(); }

  /// Removes and returns the eviction victim: the probation LRU tail when
  /// one exists, the protected LRU tail otherwise — except that `exclude`
  /// (the key whose admission triggered the eviction) is never chosen
  /// while another candidate exists. Without the exception, a shard whose
  /// protected segment fills its whole capacity would evict every new key
  /// the moment it is inserted and pin the protected entries forever.
  /// Precondition: !empty().
  std::string pop_victim(const std::string& exclude) {
    std::list<std::string>& from =
        probation_.empty() ||
                (probation_.size() == 1 && probation_.front() == exclude &&
                 !protected_.empty())
            ? protected_
            : probation_;
    std::string key = std::move(from.back());
    from.pop_back();
    index_.erase(key);
    return key;
  }

 private:
  enum class Segment { kProbation, kProtected };
  struct Pos {
    Segment segment;
    std::list<std::string>::iterator it;
  };

  std::list<std::string>& segment_list(Segment s) {
    return s == Segment::kProbation ? probation_ : protected_;
  }

  void refresh(Pos& pos) {
    std::list<std::string>& list = segment_list(pos.segment);
    list.splice(list.begin(), list, pos.it);
    pos.it = list.begin();
  }

  std::list<std::string> probation_;
  std::list<std::string> protected_;
  std::unordered_map<std::string, Pos> index_;
};

template <typename Value>
class StripedMemoCache {
 public:
  explicit StripedMemoCache(std::size_t shards = 16,
                            std::size_t max_entries = 0)
      : max_entries_(max_entries), shards_(shards) {
    if (shards == 0)
      throw InvalidArgumentError("memo cache requires at least one shard");
    if (max_entries > 0) {
      shard_capacity_ = (max_entries + shards - 1) / shards;  // ceil
      protected_capacity_ =
          shard_capacity_ > 1 ? (shard_capacity_ * 4) / 5 : 1;
    }
  }

  StripedMemoCache(const StripedMemoCache&) = delete;
  StripedMemoCache& operator=(const StripedMemoCache&) = delete;

  std::optional<Value> lookup(const std::string& key) const {
    const Shard& shard = shard_for(key);
    const util::MutexLock lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (shard_capacity_ > 0) shard.lru.touch(key, protected_capacity_);
    return it->second;
  }

  void insert(const std::string& key, const Value& value) {
    Shard& shard = shard_for(key);
    const util::MutexLock lock(shard.mutex);
    shard.map.insert_or_assign(key, value);  // last writer wins
    if (shard_capacity_ > 0) {
      shard.lru.admit(key);
      evict_overflow(shard, key);
    }
  }

  /// lookup, or run `compute` and insert its result. `compute` runs outside
  /// any shard lock, and the result is published only if this key was not
  /// invalidated meanwhile — an entry invalidated mid-compute stays
  /// invalidated, and invalidations of *other* keys do not block the
  /// publish.
  Value get_or_compute(const std::string& key,
                       const std::function<Value()>& compute) {
    Shard& shard = shard_for(key);
    std::uint64_t ticket = 0;
    {
      const util::MutexLock lock(shard.mutex);
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (shard_capacity_ > 0) shard.lru.touch(key, protected_capacity_);
        return it->second;
      }
      misses_.fetch_add(1, std::memory_order_relaxed);
      ticket = ++shard.next_ticket;
      shard.pending[key] = ticket;
    }
    const auto drop_ticket = [&] {
      const util::MutexLock lock(shard.mutex);
      const auto it = shard.pending.find(key);
      if (it != shard.pending.end() && it->second == ticket)
        shard.pending.erase(it);
    };
    std::optional<Value> value;
    try {
      value = compute();  // slow path, outside the lock
    } catch (...) {
      drop_ticket();
      throw;
    }
    {
      const util::MutexLock lock(shard.mutex);
      // Publish only if this key's compute was not superseded: an
      // invalidation dropped the ticket (the key must stay gone) or a later
      // compute of the same key replaced it (that one publishes instead).
      const auto it = shard.pending.find(key);
      if (it != shard.pending.end() && it->second == ticket) {
        shard.map.insert_or_assign(key, *value);
        shard.pending.erase(it);
        if (shard_capacity_ > 0) {
          shard.lru.admit(key);
          evict_overflow(shard, key);
        }
      }
    }
    return std::move(*value);
  }

  /// Removes one entry; returns whether it existed. A subsequent lookup
  /// misses and recomputes — stale values are never served. Also cancels
  /// any in-flight compute of the key (see get_or_compute).
  bool invalidate(const std::string& key) {
    Shard& shard = shard_for(key);
    const util::MutexLock lock(shard.mutex);
    const bool erased = shard.map.erase(key) > 0;
    shard.lru.erase(key);
    shard.pending.erase(key);
    if (erased) invalidations_.fetch_add(1, std::memory_order_relaxed);
    return erased;
  }

  /// Invalidates every entry whose key starts with `prefix` (a full-table
  /// scan — meant for explicit invalidation of derived-value families, not
  /// hot paths); returns how many entries were removed. In-flight computes
  /// under matching keys are cancelled like in invalidate().
  std::size_t invalidate_prefix(const std::string& prefix) {
    std::size_t removed = 0;
    for (Shard& shard : shards_) {
      const util::MutexLock lock(shard.mutex);
      for (auto it = shard.map.begin(); it != shard.map.end();) {
        if (it->first.compare(0, prefix.size(), prefix) == 0) {
          shard.lru.erase(it->first);
          shard.pending.erase(it->first);
          it = shard.map.erase(it);
          ++removed;
        } else {
          ++it;
        }
      }
      for (auto it = shard.pending.begin(); it != shard.pending.end();) {
        if (it->first.compare(0, prefix.size(), prefix) == 0)
          it = shard.pending.erase(it);
        else
          ++it;
      }
    }
    invalidations_.fetch_add(removed, std::memory_order_relaxed);
    return removed;
  }

  void clear() {
    for (Shard& shard : shards_) {
      const util::MutexLock lock(shard.mutex);
      shard.map.clear();
      shard.lru.clear();
      shard.pending.clear();
    }
  }

  /// Consistent per entry, not across concurrent writers (shards are locked
  /// one at a time) — callers wanting an exact image quiesce the pool first.
  std::vector<std::pair<std::string, Value>> snapshot() const {
    std::vector<std::pair<std::string, Value>> out;
    for (const Shard& shard : shards_) {
      const util::MutexLock lock(shard.mutex);
      for (const auto& [key, value] : shard.map) out.emplace_back(key, value);
    }
    return out;
  }

  CacheStats stats() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.invalidations = invalidations_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.max_entries = max_entries_;
    for (const Shard& shard : shards_) {
      const util::MutexLock lock(shard.mutex);
      s.entries += shard.map.size();
    }
    return s;
  }

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t max_entries() const { return max_entries_; }

 private:
  struct Shard {
    mutable util::Mutex mutex;
    std::unordered_map<std::string, Value> map RSP_GUARDED_BY(mutex);
    /// Recency over the resident keys; mutable because a lookup hit is a
    /// (mutex-guarded) recency update on a logically-const table.
    mutable SegmentedLru lru RSP_GUARDED_BY(mutex);
    /// In-flight computes: key → ticket of the compute allowed to publish.
    std::unordered_map<std::string, std::uint64_t> pending
        RSP_GUARDED_BY(mutex);
    std::uint64_t next_ticket RSP_GUARDED_BY(mutex) = 0;
  };

  // mix64 on top of FNV-1a: near-identical keys (consecutive parameter
  // fingerprints) must not cluster on one shard.
  Shard& shard_for(const std::string& key) {
    return shards_[util::mix64(util::fnv1a(key)) % shards_.size()];
  }
  const Shard& shard_for(const std::string& key) const {
    return shards_[util::mix64(util::fnv1a(key)) % shards_.size()];
  }

  // Under the shard lock: evict until the shard is back within capacity,
  // never choosing `admitted` (the key that triggered the overflow) while
  // another entry exists. Eviction only removes *published* entries; an
  // in-flight compute keeps its ticket (eviction is capacity management,
  // not invalidation).
  void evict_overflow(Shard& shard, const std::string& admitted)
      RSP_REQUIRES(shard.mutex) {
    while (shard_capacity_ > 0 && shard.map.size() > shard_capacity_ &&
           !shard.lru.empty()) {
      shard.map.erase(shard.lru.pop_victim(admitted));
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::size_t max_entries_ = 0;
  std::size_t shard_capacity_ = 0;      ///< per shard; 0 = unbounded
  std::size_t protected_capacity_ = 0;  ///< per shard; 0 = unbounded
  std::vector<Shard> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace rsp::runtime
