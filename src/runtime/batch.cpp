#include "runtime/batch.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "arch/presets.hpp"
#include "core/report_json.hpp"
#include "kernels/registry.hpp"
#include "runtime/parallel_explorer.hpp"
#include "sched/mapper.hpp"
#include "util/error.hpp"

namespace rsp::runtime {

namespace {

dse::ExplorerConfig parse_dse_config(const util::Json& request) {
  dse::ExplorerConfig config;
  if (!request.contains("config")) return config;
  const util::Json& c = request.at("config");
  if (!c.is_object())
    throw InvalidArgumentError("'config' must be an object");
  // Reject misspelled keys — a typo'd "objetive" silently running the
  // default objective would look like a successful exploration.
  static const std::vector<std::string> known = {
      "max_units_per_row", "max_units_per_col", "max_stages",
      "max_area_ratio",    "max_time_ratio",    "pareto_epsilon",
      "objective"};
  for (const std::string& key : c.keys())
    if (std::find(known.begin(), known.end(), key) == known.end())
      throw InvalidArgumentError("unknown config key '" + key + "'");
  const auto int_field = [&](const char* key, int fallback) {
    if (!c.contains(key)) return fallback;
    const double value = c.at(key).as_number();
    // Range check before the cast (out-of-range double→int is UB), then
    // integrality — {"max_stages": 3.7} must fail, not explore with 3.
    if (!(value >= -2147483648.0 && value <= 2147483647.0) ||
        value != static_cast<double>(static_cast<int>(value)))
      throw InvalidArgumentError("config key '" + std::string(key) +
                                 "' must be an integer");
    return static_cast<int>(value);
  };
  const auto num_field = [&](const char* key, double fallback) {
    return c.contains(key) ? c.at(key).as_number() : fallback;
  };
  config.max_units_per_row =
      int_field("max_units_per_row", config.max_units_per_row);
  config.max_units_per_col =
      int_field("max_units_per_col", config.max_units_per_col);
  config.max_stages = int_field("max_stages", config.max_stages);
  config.max_area_ratio = num_field("max_area_ratio", config.max_area_ratio);
  config.max_time_ratio = num_field("max_time_ratio", config.max_time_ratio);
  config.pareto_epsilon = num_field("pareto_epsilon", config.pareto_epsilon);
  if (c.contains("objective")) {
    const std::string& objective = c.at("objective").as_string();
    if (objective == "min_time")
      config.objective = dse::Objective::kMinTime;
    else if (objective == "min_area")
      config.objective = dse::Objective::kMinArea;
    else if (objective == "min_area_time")
      config.objective = dse::Objective::kMinAreaTimeProduct;
    else
      throw InvalidArgumentError("unknown objective '" + objective + "'");
  }
  return config;
}

util::Json run_eval_request(const util::Json& request,
                            const std::vector<kernels::Workload>& catalogue,
                            const RuntimeOptions& runtime) {
  const std::string& kernel = request.at("kernel").as_string();
  const kernels::Workload& w = kernels::find_in_catalogue(catalogue, kernel);
  const sched::LoopPipeliner mapper(w.array);
  const ParallelExplorer evaluator(w.array, {}, synth::SynthesisModel(),
                                   runtime);
  const std::vector<core::EvalResult> rows = evaluator.evaluate_suite(
      w.name, mapper.map(w.kernel, w.hints, w.reduction),
      arch::standard_suite(w.array.rows, w.array.cols));
  util::Json out = util::Json::object();
  out.set("op", "eval").set("ok", true);
  out.set("report", core::to_json(w.name, rows));
  return out;
}

util::Json run_dse_request(const util::Json& request,
                           const std::vector<kernels::Workload>& catalogue,
                           const RuntimeOptions& runtime) {
  std::vector<kernels::Workload> domain;
  util::Json kernel_names = util::Json::array();
  if (request.contains("kernels")) {
    const util::Json& names = request.at("kernels");
    if (!names.is_array() || names.size() == 0)
      throw InvalidArgumentError("'kernels' must be a non-empty array");
    for (std::size_t i = 0; i < names.size(); ++i)
      domain.push_back(
          kernels::find_in_catalogue(catalogue, names.at(i).as_string()));
  } else {
    // Default domain: one paper_suite() build per request. Unlike the
    // per-name lookups above, this is a single construction dominated by
    // the exploration that follows, so no catalogue reuse is needed.
    domain = kernels::paper_suite();
  }
  for (const kernels::Workload& w : domain) kernel_names.push(w.name);

  const ParallelExplorer explorer(domain.front().array,
                                  parse_dse_config(request),
                                  synth::SynthesisModel(), runtime);
  const dse::ExplorationResult result = explorer.explore(domain);

  util::Json pareto = util::Json::array();
  for (const dse::Candidate* c : result.pareto_points())
    pareto.push(c->point.label());
  util::Json base = util::Json::object();
  base.set("area_slices", result.base_area)
      .set("cycles", static_cast<std::int64_t>(result.base_cycles))
      .set("time_ns", result.base_time_ns);

  util::Json out = util::Json::object();
  out.set("op", "dse").set("ok", true);
  out.set("kernels", std::move(kernel_names));
  out.set("candidates", static_cast<std::int64_t>(result.candidates.size()));
  out.set("pareto", std::move(pareto));
  out.set("base", std::move(base));
  if (result.selected >= 0) {
    const dse::Candidate& best = result.best();
    util::Json selected = util::Json::object();
    selected.set("label", best.point.label())
        .set("area_slices", best.area_synthesized)
        .set("cycles", static_cast<std::int64_t>(best.exact_cycles))
        .set("time_ns", best.exact_time_ns)
        .set("stalls", static_cast<std::int64_t>(best.total_stalls));
    out.set("selected", std::move(selected));
  } else {
    out.set("selected", util::Json());
  }
  return out;
}

util::Json run_request(const util::Json& request,
                       const std::vector<kernels::Workload>& catalogue,
                       const RuntimeOptions& runtime) {
  if (!request.is_object())
    throw InvalidArgumentError("request must be a JSON object");
  const std::string& op = request.at("op").as_string();
  if (op == "eval") return run_eval_request(request, catalogue, runtime);
  if (op == "dse") return run_dse_request(request, catalogue, runtime);
  throw InvalidArgumentError("unknown op '" + op +
                             "' (expected \"eval\" or \"dse\")");
}

}  // namespace

util::Json run_batch(const util::Json& requests,
                     const BatchOptions& options) {
  if (!requests.is_array())
    throw InvalidArgumentError("batch input must be a JSON array of requests");

  ThreadPool pool(options.threads);
  std::shared_ptr<EvalCache> cache =
      options.cache ? options.cache : std::make_shared<EvalCache>();
  RuntimeOptions runtime;
  runtime.pool = &pool;
  runtime.cache = cache;
  // One catalogue per batch — rebuilding every kernel DFG per lookup would
  // be O(requests × catalogue) on the serving path.
  const std::vector<kernels::Workload> catalogue = kernels::full_catalogue();
  // A shared cache carries counters from earlier batches; report only this
  // batch's activity by diffing against a snapshot.
  const CacheStats before = cache->stats();

  // Requests run in order (results are positional); each request fans its
  // evaluation work out across the shared pool and memo cache.
  util::Json results = util::Json::array();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    util::Json entry;
    try {
      entry = run_request(requests.at(i), catalogue, runtime);
    } catch (const std::exception& e) {
      // rsp::Error and anything else (bad_alloc on an oversized DSE space,
      // ...): one bad request never aborts the batch.
      entry = util::Json::object();
      entry.set("ok", false).set("error", std::string(e.what()));
    }
    entry.set("request", static_cast<std::int64_t>(i));
    results.push(std::move(entry));
  }

  const CacheStats after = cache->stats();
  CacheStats batch_stats;
  batch_stats.hits = after.hits - before.hits;
  batch_stats.misses = after.misses - before.misses;
  util::Json runtime_report = util::Json::object();
  runtime_report.set("threads", pool.thread_count())
      .set("requests", static_cast<std::int64_t>(requests.size()))
      .set("cache_hits", static_cast<std::int64_t>(batch_stats.hits))
      .set("cache_misses", static_cast<std::int64_t>(batch_stats.misses))
      .set("cache_entries_total", static_cast<std::int64_t>(after.entries))
      .set("cache_hit_rate", batch_stats.hit_rate());

  util::Json out = util::Json::object();
  out.set("results", std::move(results));
  out.set("runtime", std::move(runtime_report));
  return out;
}

}  // namespace rsp::runtime
