#include "runtime/mapping_cache.hpp"

#include <string_view>

#include "runtime/eval_cache.hpp"
#include "util/hash.hpp"

namespace rsp::runtime {

std::string MappingCache::key(const kernels::Workload& w) {
  // Byte-view hashing is endianness-dependent, which is fine for an
  // in-memory memo table — the key only needs to be stable within one
  // process. Variable-length sections are length-prefixed so adjacent
  // lists cannot alias (same discipline as EvalCache::program_tag).
  std::uint64_t h = util::kFnvOffsetBasis;
  const auto mix = [&h](std::int64_t v) {
    h = util::fnv1a(
        std::string_view(reinterpret_cast<const char*>(&v), sizeof v), h);
  };
  const auto mix_string = [&](const std::string& s) {
    mix(static_cast<std::int64_t>(s.size()));
    h = util::fnv1a(s, h);
  };

  // Mapping hints.
  mix(w.hints.lanes);
  mix(w.hints.stagger);
  mix(w.hints.columns);
  mix(w.hints.first_col);
  mix(w.hints.first_row);
  mix(w.hints.cycle_row_bands ? 1 : 0);
  // Reduction spec.
  mix(static_cast<std::int64_t>(w.reduction.scope));
  mix(w.reduction.source);
  mix_string(w.reduction.array);
  mix(w.reduction.index0);
  // Body-graph structure: kinds, same-iteration edges, carried edges,
  // immediates and memory array names in topological order. The index
  // functions themselves are opaque closures and not hashable — kernels
  // differing solely there must carry distinct names.
  mix(w.kernel.trip_count());
  const ir::DataflowGraph& body = w.kernel.body();
  mix(static_cast<std::int64_t>(body.size()));
  for (const ir::Node& node : body.nodes()) {
    mix(static_cast<std::int64_t>(node.kind));
    mix(node.imm);
    mix(static_cast<std::int64_t>(node.inputs.size()));
    for (const ir::NodeId input : node.inputs) mix(input);
    mix(static_cast<std::int64_t>(node.carried.size()));
    for (const ir::CarriedInput& carried : node.carried) {
      mix(carried.producer);
      mix(carried.distance);
      mix(carried.init);
    }
    mix_string(node.mem ? node.mem->array : std::string());
  }

  // Human-readable prefix (kernel + array spec spelled out), content hash
  // appended — the same key style as EvalCache::key.
  std::string k = w.name;
  k += '|';
  k += std::to_string(w.array.rows) + 'x' + std::to_string(w.array.cols);
  k += ";rb" + std::to_string(w.array.read_buses_per_row);
  k += ";wb" + std::to_string(w.array.write_buses_per_row);
  k += ";dw" + std::to_string(w.array.data_width_bits);
  k += '#';
  k += std::to_string(h);
  return k;
}

std::shared_ptr<const dse::KernelPrep> MappingCache::get_or_map(
    const std::string& mapping_key, const kernels::Workload& workload) {
  return cache_.get_or_compute(mapping_key, [&workload] {
    return std::make_shared<const dse::KernelPrep>(
        dse::prepare_kernel(workload));
  });
}

core::PerfEstimate MappingCache::get_or_estimate(
    const std::string& mapping_key,
    const sched::ConfigurationContext& base_context,
    const arch::Architecture& target) {
  return estimates_.get_or_compute(
      mapping_key + '|' + arch_fingerprint(target), [&] {
        return core::estimate_performance(base_context, target);
      });
}

bool MappingCache::invalidate(const std::string& key) {
  // Drop the derived estimates with the record: their values would still
  // be correct (the computation is deterministic per key), but an
  // invalidation means "forget everything about this kernel".
  estimates_.invalidate_prefix(key + '|');
  return cache_.invalidate(key);
}

}  // namespace rsp::runtime
