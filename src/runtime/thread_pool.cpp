#include "runtime/thread_pool.hpp"

namespace rsp::runtime {

int ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  if (threads < 0)
    throw InvalidArgumentError("ThreadPool requires a non-negative count");
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(static_cast<std::size_t>(threads));
  try {
    for (int i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  } catch (...) {
    // A failed std::thread launch (thread exhaustion) must not leave the
    // already-started workers joinable — their ~thread would terminate the
    // process during unwinding. Shut them down, then propagate.
    {
      const util::MutexLock lock(mutex_);
      stopping_ = true;
    }
    ready_.notify_all();
    for (std::thread& w : workers_) w.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    const util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(mutex_);
      lock.wait(ready_, [this]() RSP_REQUIRES(mutex_) {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the task's future
  }
}

}  // namespace rsp::runtime
