#include "runtime/parallel_explorer.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/logging.hpp"

namespace rsp::runtime {

namespace {

// Waits for every task before propagating the first failure, so no task is
// left running with references to stack frames that are being unwound.
void join_all(std::vector<std::future<void>>& futures) {
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

// Runs `submit_loop` and guarantees every future it managed to submit is
// waited on before an exception (from submit itself — allocation failure,
// pool shutdown) propagates; queued tasks reference stack-local state that
// must outlive them.
template <typename F>
void submit_then_join(std::vector<std::future<void>>& futures,
                      const F& submit_loop) {
  try {
    submit_loop();
  } catch (...) {
    for (std::future<void>& f : futures)
      if (f.valid()) f.wait();
    throw;
  }
  join_all(futures);
}

// Deterministic Fisher–Yates over task descriptors: spreads neighbouring
// (and therefore same-shard-prone) tasks apart in the submission order.
template <typename T>
void shuffle_tasks(std::vector<T>& tasks) {
  util::Rng rng = task_rng(tasks.size());
  for (std::size_t i = tasks.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(i) - 1));
    std::swap(tasks[i - 1], tasks[j]);
  }
}

// Resolves the pool to run on: the external one from RuntimeOptions, or a
// private pool owned for the duration of one call.
class PoolLease {
 public:
  explicit PoolLease(const RuntimeOptions& options)
      : owned_(options.pool ? nullptr
                            : std::make_unique<ThreadPool>(options.threads)),
        pool_(options.pool ? options.pool : owned_.get()) {}

  ThreadPool& pool() { return *pool_; }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_;
};

EvalRecord measure_record(const sched::ContextScheduler& scheduler,
                          const sched::PlacedProgram& program,
                          const arch::Architecture& architecture) {
  const core::MeasuredPerf m =
      core::measure_perf(scheduler, program, architecture);
  EvalRecord r;
  r.cycles = m.perf.cycles;
  r.stalls = m.perf.stalls;
  r.nostall_cycles = m.perf.nostall_cycles;
  r.max_critical_issues = m.max_critical_issues;
  return r;
}

}  // namespace

// The memoization protocol, shared by the DSE, suite-eval and distributed
// shard fan-outs so the paths cannot drift: consult the cache under `key`
// when one is configured, measure otherwise.
EvalRecord cached_measure(EvalCache* cache, const std::string& key,
                          const sched::ContextScheduler& scheduler,
                          const sched::PlacedProgram& program,
                          const arch::Architecture& architecture) {
  if (cache == nullptr) return measure_record(scheduler, program, architecture);
  return cache->get_or_compute(
      key, [&] { return measure_record(scheduler, program, architecture); });
}

PreparedKernels prepare_kernels_parallel(
    const dse::Explorer& explorer,
    const std::vector<kernels::Workload>& domain, ThreadPool& pool,
    MappingCache* mapping_cache) {
  if (domain.empty())
    throw InvalidArgumentError("exploration requires at least one kernel");
  for (const kernels::Workload& w : domain)
    if (w.array != explorer.array())
      throw InvalidArgumentError("workload '" + w.name +
                                 "' targets a different array geometry");

  // One task per kernel, memoized. Records land in fixed slots and futures
  // are joined in domain order, so both the reduction and the
  // first-error-wins semantics match the serial loop. Mapping keys are
  // O(kernel) to hash — computed once per kernel and reused by the
  // estimate lookups the callers run next.
  PreparedKernels prep;
  prep.mapping_keys.resize(domain.size());
  if (mapping_cache != nullptr)
    for (std::size_t k = 0; k < domain.size(); ++k)
      prep.mapping_keys[k] = MappingCache::key(domain[k]);
  prep.records.resize(domain.size());
  std::vector<std::future<void>> futures;
  futures.reserve(domain.size());
  submit_then_join(futures, [&] {
    for (std::size_t k = 0; k < domain.size(); ++k) {
      futures.push_back(pool.submit([&, k] {
        const kernels::Workload& w = domain[k];
        prep.records[k] =
            mapping_cache != nullptr
                ? mapping_cache->get_or_map(prep.mapping_keys[k], w)
                : std::make_shared<const dse::KernelPrep>(
                      dse::prepare_kernel(w));
      }));
    }
  });
  return prep;
}

dse::PreparedExploration prepare_parallel(
    const dse::Explorer& explorer,
    const std::vector<kernels::Workload>& domain, ThreadPool& pool,
    MappingCache* mapping_cache) {
  const arch::Architecture base = explorer.base_architecture();

  // Step 1 (see prepare_kernels_parallel).
  PreparedKernels kernels =
      prepare_kernels_parallel(explorer, domain, pool, mapping_cache);
  std::vector<std::string>& mapping_keys = kernels.mapping_keys;
  std::vector<std::shared_ptr<const dse::KernelPrep>>& records =
      kernels.records;

  dse::PreparedExploration prep;
  dse::ExplorationResult& result = prep.result;
  std::vector<const sched::ConfigurationContext*> context_ptrs;
  context_ptrs.reserve(domain.size());
  for (std::size_t k = 0; k < domain.size(); ++k) {
    prep.kernel_names.push_back(domain[k].name);
    prep.programs.push_back(records[k]->program);
    context_ptrs.push_back(&records[k]->base_context);
    result.base_cycles += records[k]->base_context.length();
  }
  result.base_area = explorer.synthesis().area(base);
  result.base_time_ns = static_cast<double>(result.base_cycles) *
                        explorer.synthesis().clock_ns(base);
  const double base_area_raw = explorer.base_area_raw();
  const double base_time_ns = result.base_time_ns;

  // Steps 2–3: the enumerated grid in chunks. Each slot i holds exactly
  // the candidate the serial loop would push i-th, so the post-join
  // assembly preserves the serial candidate order bit for bit. Estimates
  // are memoized per (mapping key, architecture fingerprint) — repeated
  // domains skip the whole sweep, not just the remapping.
  const dse::EstimateFn estimate =
      [&](std::size_t k, const arch::Architecture& target) {
        if (mapping_cache == nullptr)
          return core::estimate_performance(*context_ptrs[k], target);
        return mapping_cache->get_or_estimate(mapping_keys[k],
                                              *context_ptrs[k], target);
      };
  const std::vector<dse::DesignPoint> points = explorer.enumerate_points();
  std::vector<dse::Candidate> slots(points.size());
  const std::size_t chunk = std::max<std::size_t>(
      1, points.size() /
             (static_cast<std::size_t>(pool.thread_count()) * 4));
  {
    std::vector<std::future<void>> futures;
    futures.reserve(points.size() / chunk + 1);
    submit_then_join(futures, [&] {
      for (std::size_t lo = 0; lo < points.size(); lo += chunk) {
        const std::size_t hi = std::min(lo + chunk, points.size());
        futures.push_back(pool.submit([&, lo, hi] {
          for (std::size_t i = lo; i < hi; ++i)
            slots[i] = explorer.estimate_candidate(
                points[i], base, context_ptrs.size(), estimate,
                base_area_raw, base_time_ns);
        }));
      }
    });
  }
  result.candidates.reserve(slots.size());
  for (dse::Candidate& cand : slots)
    result.candidates.push_back(std::move(cand));

  // Step 4: the serial Pareto reduction over the joined estimates.
  explorer.pareto_filter(result);
  return prep;
}

void evaluate_pareto_exact(const std::vector<sched::PlacedProgram>& programs,
                           const std::vector<std::string>& kernel_names,
                           dse::ExplorationResult& result, ThreadPool& pool,
                           EvalCache* cache) {
  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < result.candidates.size(); ++i)
    if (result.candidates[i].pareto) survivors.push_back(i);
  const std::size_t num_kernels = programs.size();

  // One task per (survivor, kernel): measurements land in a fixed matrix
  // slot, so worker interleaving cannot affect the later reduction.
  struct Task {
    std::size_t survivor;
    std::size_t kernel;
  };
  std::vector<Task> tasks;
  tasks.reserve(survivors.size() * num_kernels);
  for (std::size_t s = 0; s < survivors.size(); ++s)
    for (std::size_t k = 0; k < num_kernels; ++k) tasks.push_back({s, k});
  shuffle_tasks(tasks);

  std::vector<std::vector<sched::PerfPoint>> points(
      survivors.size(), std::vector<sched::PerfPoint>(num_kernels));
  const sched::ContextScheduler scheduler;

  // Program tags are O(program) to hash — once per kernel, not per task.
  std::vector<std::string> tags(num_kernels);
  if (cache != nullptr)
    for (std::size_t k = 0; k < num_kernels; ++k)
      tags[k] = EvalCache::program_tag(programs[k]);

  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  submit_then_join(futures, [&] {
    for (const Task& t : tasks) {
      futures.push_back(pool.submit([&, t] {
        const arch::Architecture& a =
            result.candidates[survivors[t.survivor]].architecture;
        const EvalRecord rec = cached_measure(
            cache,
            cache != nullptr
                ? EvalCache::key(kernel_names[t.kernel], tags[t.kernel], a)
                : std::string(),
            scheduler, programs[t.kernel], a);
        points[t.survivor][t.kernel] =
            sched::PerfPoint{rec.cycles, rec.stalls, rec.nostall_cycles};
      }));
    }
  });

  // Deterministic reduction: survivors in candidate order, kernels in
  // domain order — the exact loop structure of the serial path.
  for (std::size_t s = 0; s < survivors.size(); ++s) {
    dse::Candidate& cand = result.candidates[survivors[s]];
    dse::evaluate_exact(cand, num_kernels,
                        [&](std::size_t k, const arch::Architecture&) {
                          return points[s][k];
                        });
    RSP_LOG(kInfo) << "pareto point " << cand.point.label() << ": area "
                   << cand.area_synthesized << " slices, time "
                   << cand.exact_time_ns << " ns";
  }
}

ParallelExplorer::ParallelExplorer(arch::ArraySpec array,
                                   dse::ExplorerConfig config,
                                   synth::SynthesisModel synth,
                                   RuntimeOptions options)
    : explorer_(array, config, std::move(synth)),
      options_(std::move(options)) {
  // A private mapping cache is always worth having (memoization is
  // bit-identical by construction): repeated explore()/prepare() calls on
  // one instance skip remapping even when the caller wired nothing up.
  if (!options_.mapping_cache)
    options_.mapping_cache =
        std::make_shared<MappingCache>(16, options_.max_entries);
}

dse::PreparedExploration ParallelExplorer::prepare(
    const std::vector<kernels::Workload>& domain) const {
  PoolLease lease(options_);
  return prepare_parallel(explorer_, domain, lease.pool(),
                          options_.mapping_cache.get());
}

dse::ExplorationResult ParallelExplorer::explore(
    const std::vector<kernels::Workload>& domain) const {
  PoolLease lease(options_);
  dse::PreparedExploration prep = prepare_parallel(
      explorer_, domain, lease.pool(), options_.mapping_cache.get());
  dse::ExplorationResult result = std::move(prep.result);

  evaluate_pareto_exact(prep.programs, prep.kernel_names, result,
                        lease.pool(), options_.cache.get());

  explorer_.select_optimum(result);
  return result;
}

std::vector<core::EvalResult> ParallelExplorer::evaluate_suite(
    const std::string& kernel_id, const sched::PlacedProgram& program,
    const std::vector<arch::Architecture>& suite) const {
  if (suite.empty())
    throw InvalidArgumentError("evaluate_suite requires architectures");

  std::vector<core::EvalResult> rows(suite.size());
  std::vector<std::size_t> order(suite.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  shuffle_tasks(order);

  const sched::ContextScheduler scheduler;
  EvalCache* cache = options_.cache.get();
  const std::string tag =
      cache != nullptr ? EvalCache::program_tag(program) : std::string();

  {
    PoolLease lease(options_);
    std::vector<std::future<void>> futures;
    futures.reserve(order.size());
    submit_then_join(futures, [&] {
      for (const std::size_t i : order) {
        futures.push_back(lease.pool().submit([&, i] {
          const arch::Architecture& a = suite[i];
          const EvalRecord rec = cached_measure(
              cache,
              cache != nullptr ? EvalCache::key(kernel_id, tag, a)
                               : std::string(),
              scheduler, program, a);
          core::MeasuredPerf measured;
          measured.perf =
              sched::PerfPoint{rec.cycles, rec.stalls, rec.nostall_cycles};
          measured.max_critical_issues = rec.max_critical_issues;
          rows[i] = core::make_eval_result(
              a, measured, explorer_.synthesis().clock_ns(a));
        }));
      }
    });
  }

  core::RspEvaluator::apply_delay_reductions(rows);
  return rows;
}

}  // namespace rsp::runtime
