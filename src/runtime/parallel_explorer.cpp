#include "runtime/parallel_explorer.hpp"

#include <exception>
#include <utility>

#include "util/logging.hpp"

namespace rsp::runtime {

namespace {

// Waits for every task before propagating the first failure, so no task is
// left running with references to stack frames that are being unwound.
void join_all(std::vector<std::future<void>>& futures) {
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

// Runs `submit_loop` and guarantees every future it managed to submit is
// waited on before an exception (from submit itself — allocation failure,
// pool shutdown) propagates; queued tasks reference stack-local state that
// must outlive them.
template <typename F>
void submit_then_join(std::vector<std::future<void>>& futures,
                      const F& submit_loop) {
  try {
    submit_loop();
  } catch (...) {
    for (std::future<void>& f : futures)
      if (f.valid()) f.wait();
    throw;
  }
  join_all(futures);
}

// Deterministic Fisher–Yates over task descriptors: spreads neighbouring
// (and therefore same-shard-prone) tasks apart in the submission order.
template <typename T>
void shuffle_tasks(std::vector<T>& tasks) {
  util::Rng rng = task_rng(tasks.size());
  for (std::size_t i = tasks.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(i) - 1));
    std::swap(tasks[i - 1], tasks[j]);
  }
}

// Resolves the pool to run on: the external one from RuntimeOptions, or a
// private pool owned for the duration of one call.
class PoolLease {
 public:
  explicit PoolLease(const RuntimeOptions& options)
      : owned_(options.pool ? nullptr
                            : std::make_unique<ThreadPool>(options.threads)),
        pool_(options.pool ? options.pool : owned_.get()) {}

  ThreadPool& pool() { return *pool_; }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_;
};

EvalRecord measure_record(const sched::ContextScheduler& scheduler,
                          const sched::PlacedProgram& program,
                          const arch::Architecture& architecture) {
  const core::MeasuredPerf m =
      core::measure_perf(scheduler, program, architecture);
  EvalRecord r;
  r.cycles = m.perf.cycles;
  r.stalls = m.perf.stalls;
  r.nostall_cycles = m.perf.nostall_cycles;
  r.max_critical_issues = m.max_critical_issues;
  return r;
}

// The memoization protocol, shared by the DSE and suite-eval fan-outs so
// the two paths cannot drift: consult the cache under `key` when one is
// configured, measure otherwise.
EvalRecord cached_measure(EvalCache* cache, const std::string& key,
                          const sched::ContextScheduler& scheduler,
                          const sched::PlacedProgram& program,
                          const arch::Architecture& architecture) {
  if (cache == nullptr) return measure_record(scheduler, program, architecture);
  return cache->get_or_compute(
      key, [&] { return measure_record(scheduler, program, architecture); });
}

}  // namespace

void evaluate_pareto_exact(const std::vector<sched::PlacedProgram>& programs,
                           const std::vector<std::string>& kernel_names,
                           dse::ExplorationResult& result, ThreadPool& pool,
                           EvalCache* cache) {
  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < result.candidates.size(); ++i)
    if (result.candidates[i].pareto) survivors.push_back(i);
  const std::size_t num_kernels = programs.size();

  // One task per (survivor, kernel): measurements land in a fixed matrix
  // slot, so worker interleaving cannot affect the later reduction.
  struct Task {
    std::size_t survivor;
    std::size_t kernel;
  };
  std::vector<Task> tasks;
  tasks.reserve(survivors.size() * num_kernels);
  for (std::size_t s = 0; s < survivors.size(); ++s)
    for (std::size_t k = 0; k < num_kernels; ++k) tasks.push_back({s, k});
  shuffle_tasks(tasks);

  std::vector<std::vector<sched::PerfPoint>> points(
      survivors.size(), std::vector<sched::PerfPoint>(num_kernels));
  const sched::ContextScheduler scheduler;

  // Program tags are O(program) to hash — once per kernel, not per task.
  std::vector<std::string> tags(num_kernels);
  if (cache != nullptr)
    for (std::size_t k = 0; k < num_kernels; ++k)
      tags[k] = EvalCache::program_tag(programs[k]);

  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  submit_then_join(futures, [&] {
    for (const Task& t : tasks) {
      futures.push_back(pool.submit([&, t] {
        const arch::Architecture& a =
            result.candidates[survivors[t.survivor]].architecture;
        const EvalRecord rec = cached_measure(
            cache,
            cache != nullptr
                ? EvalCache::key(kernel_names[t.kernel], tags[t.kernel], a)
                : std::string(),
            scheduler, programs[t.kernel], a);
        points[t.survivor][t.kernel] =
            sched::PerfPoint{rec.cycles, rec.stalls, rec.nostall_cycles};
      }));
    }
  });

  // Deterministic reduction: survivors in candidate order, kernels in
  // domain order — the exact loop structure of the serial path.
  for (std::size_t s = 0; s < survivors.size(); ++s) {
    dse::Candidate& cand = result.candidates[survivors[s]];
    dse::evaluate_exact(cand, num_kernels,
                        [&](std::size_t k, const arch::Architecture&) {
                          return points[s][k];
                        });
    RSP_LOG(kInfo) << "pareto point " << cand.point.label() << ": area "
                   << cand.area_synthesized << " slices, time "
                   << cand.exact_time_ns << " ns";
  }
}

ParallelExplorer::ParallelExplorer(arch::ArraySpec array,
                                   dse::ExplorerConfig config,
                                   synth::SynthesisModel synth,
                                   RuntimeOptions options)
    : explorer_(array, config, std::move(synth)),
      options_(std::move(options)) {}

dse::ExplorationResult ParallelExplorer::explore(
    const std::vector<kernels::Workload>& domain) const {
  dse::PreparedExploration prep = explorer_.prepare(domain);
  dse::ExplorationResult result = std::move(prep.result);

  {
    PoolLease lease(options_);
    evaluate_pareto_exact(prep.programs, prep.kernel_names, result,
                          lease.pool(), options_.cache.get());
  }

  explorer_.select_optimum(result);
  return result;
}

std::vector<core::EvalResult> ParallelExplorer::evaluate_suite(
    const std::string& kernel_id, const sched::PlacedProgram& program,
    const std::vector<arch::Architecture>& suite) const {
  if (suite.empty())
    throw InvalidArgumentError("evaluate_suite requires architectures");

  std::vector<core::EvalResult> rows(suite.size());
  std::vector<std::size_t> order(suite.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  shuffle_tasks(order);

  const sched::ContextScheduler scheduler;
  EvalCache* cache = options_.cache.get();
  const std::string tag =
      cache != nullptr ? EvalCache::program_tag(program) : std::string();

  {
    PoolLease lease(options_);
    std::vector<std::future<void>> futures;
    futures.reserve(order.size());
    submit_then_join(futures, [&] {
      for (const std::size_t i : order) {
        futures.push_back(lease.pool().submit([&, i] {
          const arch::Architecture& a = suite[i];
          const EvalRecord rec = cached_measure(
              cache,
              cache != nullptr ? EvalCache::key(kernel_id, tag, a)
                               : std::string(),
              scheduler, program, a);
          core::MeasuredPerf measured;
          measured.perf =
              sched::PerfPoint{rec.cycles, rec.stalls, rec.nostall_cycles};
          measured.max_critical_issues = rec.max_critical_issues;
          rows[i] = core::make_eval_result(
              a, measured, explorer_.synthesis().clock_ns(a));
        }));
      }
    });
  }

  core::RspEvaluator::apply_delay_reductions(rows);
  return rows;
}

}  // namespace rsp::runtime
