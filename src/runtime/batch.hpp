// Compatibility forwarder for the v1 batch API.
//
// The batch machinery moved into the rsp::api::Service façade: requests are
// decoded by api/protocol.hpp, executed concurrently on the service's
// shared pools, and reassembled positionally (results byte-identical to
// the original serial implementation; the runtime hit/miss counters are
// scheduling-dependent). This header keeps the PR-2 entry point
// `runtime::run_batch` alive for existing callers; new code should
// construct an api::Service and call api::run_v1_batch — or speak protocol
// v2 (see docs/PROTOCOL.md).
//
// Callers of this header link against rsp::api (rsp::all provides it).
#pragma once

#include <memory>
#include <utility>

#include "api/protocol.hpp"
#include "api/service.hpp"
#include "runtime/eval_cache.hpp"
#include "runtime/mapping_cache.hpp"
#include "util/json.hpp"

namespace rsp::runtime {

struct BatchOptions {
  /// Worker threads for the shared evaluation pool; 0 = hardware count.
  int threads = 0;
  /// Shared memo table; created internally when null. Pass one in to keep
  /// cache state warm across run_batch calls in the same process.
  std::shared_ptr<EvalCache> cache;
  /// Step-1 mapping memo table; same warm-sharing contract as `cache`.
  std::shared_ptr<MappingCache> mapping_cache;
  /// Capacity bound for internally created memo tables (segmented-LRU
  /// eviction); 0 = unbounded.
  std::size_t cache_max_entries = 0;
};

/// Executes a v1 batch document over a one-shot api::Service. Throws
/// InvalidArgumentError when `requests` is not a JSON array; individual
/// request failures are reported in-band.
inline util::Json run_batch(const util::Json& requests,
                            const BatchOptions& options = {}) {
  api::ServiceOptions service_options;
  service_options.threads = options.threads;
  // `threads` is the caller's concurrency bound: cap the request-level
  // dispatch pool by it as well, so threads=1 cannot fan out across
  // requests behind the caller's back.
  service_options.max_inflight = options.threads;
  service_options.cache = options.cache;
  service_options.mapping_cache = options.mapping_cache;
  service_options.cache_max_entries = options.cache_max_entries;
  api::Service service(std::move(service_options));
  return api::run_v1_batch(requests, service);
}

}  // namespace rsp::runtime
