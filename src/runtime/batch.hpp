// Batch request API: one JSON document in, one JSON document out.
//
// The input is an array of request objects:
//
//   {"op": "eval", "kernel": "SAD"}
//       Tables-4/5-style evaluation of one kernel over the standard
//       architecture suite (Base, RS#1..4, RSP#1..4).
//
//   {"op": "dse", "kernels": ["SAD", "MVM"], "config": {...}}
//       Fig. 7 design space exploration over the named kernels (all nine
//       paper kernels when "kernels" is omitted). "config" may override
//       max_units_per_row, max_units_per_col, max_stages, max_area_ratio,
//       max_time_ratio, pareto_epsilon and objective ("min_time",
//       "min_area", "min_area_time").
//
// Requests are processed in order; each one fans its evaluation work out
// over a shared thread pool and a shared EvalCache, so repeated kernels or
// design points across requests are measured once. A malformed request
// yields {"ok": false, "error": ...} in its result slot without aborting
// the batch. The response carries per-request results plus runtime
// statistics (thread count, cache hits/misses).
#pragma once

#include <memory>

#include "runtime/eval_cache.hpp"
#include "util/json.hpp"

namespace rsp::runtime {

struct BatchOptions {
  /// Worker threads for the shared pool; 0 = hardware count.
  int threads = 0;
  /// Shared memo table; created internally when null. Pass one in to keep
  /// cache state warm across run_batch calls in the same process.
  std::shared_ptr<EvalCache> cache;
};

/// Executes a batch of requests. Throws InvalidArgumentError when
/// `requests` is not a JSON array; individual request failures are
/// reported in-band.
util::Json run_batch(const util::Json& requests,
                     const BatchOptions& options = {});

}  // namespace rsp::runtime
