// Sharded memo table for step-1 mapping products.
//
// Step 1 of the Fig. 7 flow — mapping a kernel and scheduling it on the
// base architecture — is recomputed identically for every `dse`, `eval`
// and `map` request touching the same workload, and it dominates the
// serial front-end of a serving process. This cache memoizes the
// dse::KernelPrep (placed program + base configuration context) per
// stable (kernel, array-spec) fingerprint so repeated requests skip
// remapping entirely. Records are immutable and shared by pointer: a hit
// is one shared_ptr copy, never a program copy, and eviction just drops a
// reference (in-flight readers keep theirs alive).
//
// Key composition: the kernel's canonical name plus a content hash of
// everything the mapper reads — the array spec, the mapping hints, the
// reduction spec and the body-graph structure (trip count, node kinds,
// operand/carried edges, immediates, memory array names). This closes the
// alias trap where one kernel name is paired with two different mapping
// directives against a warm shared cache. The one thing the hash cannot
// see is a memory node's index *function* (an opaque closure); two
// workloads that differ solely there must use distinct names — the
// kernels catalogue guarantees this.
//
// Alongside the step-1 records the cache keeps a second table memoizing
// the step-2/3 fast performance estimates derived from them
// (core::estimate_performance of a base context on a target architecture,
// keyed by mapping key + architecture fingerprint). Repeated explorations
// of the same domain then collapse the whole serial front-end — mapping,
// base scheduling *and* the O(grid × kernels) estimation sweep — to
// lookups, the same way the EvalCache collapses repeated step-5 work.
//
// Concurrency, capacity bounding and segmented-LRU eviction come from
// StripedMemoCache (see runtime/striped_cache.hpp) — the same machinery
// behind the EvalCache. This class holds no locks of its own, so the
// thread-safety annotations live entirely in the shared core.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "core/estimate.hpp"
#include "dse/explorer.hpp"
#include "kernels/workload.hpp"
#include "runtime/striped_cache.hpp"

namespace rsp::runtime {

class MappingCache {
 public:
  /// `max_entries` bounds each table independently (segmented-LRU
  /// eviction, enforced per shard as ceil(max_entries / shards)); 0 keeps
  /// them unbounded.
  explicit MappingCache(std::size_t shards = 16, std::size_t max_entries = 0)
      : cache_(shards, max_entries), estimates_(shards, max_entries) {}

  MappingCache(const MappingCache&) = delete;
  MappingCache& operator=(const MappingCache&) = delete;

  /// Stable fingerprint of everything the mapper reads (see file comment).
  static std::string key(const kernels::Workload& workload);

  /// The memoized step 1: returns the cached record or computes it via
  /// dse::prepare_kernel (outside any shard lock) and publishes it. The
  /// returned record is immutable and safe to share across threads.
  /// `mapping_key` must be key(workload) — callers touching a workload
  /// repeatedly compute it once.
  std::shared_ptr<const dse::KernelPrep> get_or_map(
      const std::string& mapping_key, const kernels::Workload& workload);
  std::shared_ptr<const dse::KernelPrep> get_or_map(
      const kernels::Workload& workload) {
    return get_or_map(key(workload), workload);
  }

  /// The memoized steps 2–3 for one (kernel, architecture) pair: the fast
  /// performance estimate of `base_context` (the step-1 product under
  /// `mapping_key`) on `target`. Deterministic, so a cached value is
  /// bit-identical to a fresh core::estimate_performance call.
  core::PerfEstimate get_or_estimate(
      const std::string& mapping_key,
      const sched::ConfigurationContext& base_context,
      const arch::Architecture& target);

  std::optional<std::shared_ptr<const dse::KernelPrep>> lookup(
      const std::string& key) const {
    return cache_.lookup(key);
  }

  /// Removes one step-1 record and every estimate derived from it (their
  /// keys are prefixed by the mapping key); returns whether the record
  /// existed. The next get_or_map remaps — stale records are never served.
  bool invalidate(const std::string& key);
  void clear() {
    cache_.clear();
    estimates_.clear();
  }

  CacheStats stats() const { return cache_.stats(); }
  CacheStats estimate_stats() const { return estimates_.stats(); }
  std::size_t shard_count() const { return cache_.shard_count(); }
  std::size_t max_entries() const { return cache_.max_entries(); }

 private:
  StripedMemoCache<std::shared_ptr<const dse::KernelPrep>> cache_;
  StripedMemoCache<core::PerfEstimate> estimates_;
};

}  // namespace rsp::runtime
