#include "runtime/dist_shard.hpp"

#include <exception>
#include <future>
#include <string>

#include "core/estimate.hpp"
#include "runtime/parallel_explorer.hpp"
#include "util/error.hpp"

namespace rsp::runtime {

namespace {

// Waits for every task before propagating the first failure, so no task is
// left running with references to stack frames that are being unwound.
void join_all(std::vector<std::future<void>>& futures) {
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void check_bounds(std::size_t begin, std::size_t end,
                  std::size_t grid_size) {
  if (begin >= end)
    throw InvalidArgumentError("shard range [" + std::to_string(begin) +
                               ", " + std::to_string(end) + ") is empty");
  if (end > grid_size)
    throw InvalidArgumentError(
        "shard range [" + std::to_string(begin) + ", " +
        std::to_string(end) + ") exceeds the enumeration grid (" +
        std::to_string(grid_size) + " points)");
}

}  // namespace

EstimateShard estimate_shard(const dse::Explorer& explorer,
                             const std::vector<kernels::Workload>& domain,
                             std::size_t begin, std::size_t end,
                             ThreadPool& pool,
                             MappingCache* mapping_cache) {
  const std::vector<dse::DesignPoint> points = explorer.enumerate_points();
  check_bounds(begin, end, points.size());

  const PreparedKernels prep =
      prepare_kernels_parallel(explorer, domain, pool, mapping_cache);
  const arch::Architecture base = explorer.base_architecture();

  EstimateShard shard;
  for (const auto& record : prep.records)
    shard.base_cycles += record->base_context.length();

  // One task per point: slot i holds the estimated-cycle sum the serial
  // loop would compute for enumeration index begin + i. The estimate hook
  // is the exact one prepare_parallel uses, so memoization cannot drift.
  shard.estimated_cycles.assign(end - begin, 0);
  std::vector<std::future<void>> futures;
  futures.reserve(end - begin);
  try {
    for (std::size_t i = begin; i < end; ++i) {
      futures.push_back(pool.submit([&, i] {
        const arch::Architecture target =
            explorer.point_architecture(points[i], base);
        long sum = 0;
        for (std::size_t k = 0; k < domain.size(); ++k) {
          const sched::ConfigurationContext& ctx =
              prep.records[k]->base_context;
          const core::PerfEstimate est =
              mapping_cache != nullptr
                  ? mapping_cache->get_or_estimate(prep.mapping_keys[k],
                                                   ctx, target)
                  : core::estimate_performance(ctx, target);
          sum += est.estimated_cycles();
        }
        shard.estimated_cycles[i - begin] = sum;
      }));
    }
  } catch (...) {
    for (std::future<void>& f : futures)
      if (f.valid()) f.wait();
    throw;
  }
  join_all(futures);
  return shard;
}

ExactShard exact_shard(const dse::Explorer& explorer,
                       const std::vector<kernels::Workload>& domain,
                       std::size_t begin, std::size_t end, ThreadPool& pool,
                       MappingCache* mapping_cache, EvalCache* eval_cache) {
  const std::vector<dse::DesignPoint> points = explorer.enumerate_points();
  check_bounds(begin, end, points.size());

  const PreparedKernels prep =
      prepare_kernels_parallel(explorer, domain, pool, mapping_cache);
  const arch::Architecture base = explorer.base_architecture();
  const std::size_t num_kernels = domain.size();

  // Program tags are O(program) to hash — once per kernel, not per task.
  std::vector<std::string> tags(num_kernels);
  if (eval_cache != nullptr)
    for (std::size_t k = 0; k < num_kernels; ++k)
      tags[k] = EvalCache::program_tag(prep.records[k]->program);

  ExactShard shard;
  shard.cycles.assign(end - begin, std::vector<long>(num_kernels, 0));
  shard.stalls.assign(end - begin, std::vector<long>(num_kernels, 0));

  // One task per (point, kernel): measurements land in fixed matrix slots
  // under the same cache keys as the single-process step-5 fan-out
  // (kernel name + program tag + architecture fingerprint).
  const sched::ContextScheduler scheduler;
  std::vector<arch::Architecture> targets;
  targets.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i)
    targets.push_back(explorer.point_architecture(points[i], base));

  std::vector<std::future<void>> futures;
  futures.reserve((end - begin) * num_kernels);
  try {
    for (std::size_t i = 0; i < end - begin; ++i) {
      for (std::size_t k = 0; k < num_kernels; ++k) {
        futures.push_back(pool.submit([&, i, k] {
          const arch::Architecture& a = targets[i];
          const EvalRecord rec = cached_measure(
              eval_cache,
              eval_cache != nullptr
                  ? EvalCache::key(domain[k].name, tags[k], a)
                  : std::string(),
              scheduler, prep.records[k]->program, a);
          shard.cycles[i][k] = rec.cycles;
          shard.stalls[i][k] = rec.stalls;
        }));
      }
    }
  } catch (...) {
    for (std::future<void>& f : futures)
      if (f.valid()) f.wait();
    throw;
  }
  join_all(futures);
  return shard;
}

}  // namespace rsp::runtime
