#include "runtime/sim_batch.hpp"

#include <future>
#include <memory>
#include <optional>
#include <utility>

#include "sim/program.hpp"
#include "util/error.hpp"

namespace rsp::runtime {
namespace {

// Runs every job through `pool` (or a scoped pool when null), collecting
// results positionally. `run_job(i, memory)` must be safe to call
// concurrently for distinct i. Exceptions propagate from the first failing
// job by position; later jobs still drain.
template <typename RunJob>
std::vector<SimBatchResult> fan_out(std::vector<ir::Memory> memories,
                                    const SimBatchOptions& options,
                                    const RunJob& run_job) {
  std::vector<SimBatchResult> results;
  results.reserve(memories.size());
  if (memories.empty()) return results;

  if (memories.size() == 1) {  // no pool round-trip for a single job
    results.push_back(run_job(0, std::move(memories[0])));
    return results;
  }

  std::optional<ThreadPool> scoped;
  ThreadPool& pool =
      options.pool ? *options.pool : scoped.emplace(options.threads);

  std::vector<std::future<SimBatchResult>> futures;
  futures.reserve(memories.size());
  for (std::size_t i = 0; i < memories.size(); ++i) {
    futures.push_back(pool.submit(
        [&run_job, i, memory = std::move(memories[i])]() mutable {
          return run_job(i, std::move(memory));
        }));
  }
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

}  // namespace

std::vector<SimBatchResult> simulate_batch(
    const sched::ConfigurationContext& context,
    std::vector<ir::Memory> memories, const SimBatchOptions& options) {
  if (options.engine == sim::SimEngine::kEvent) {
    // Compile once; the immutable program is shared read-only by every
    // worker. Compilation also front-loads structural-legality errors so
    // an illegal context fails before any job is enqueued.
    const sim::SimProgram program = sim::SimProgram::compile(context);
    return fan_out(std::move(memories), options,
                   [&program, &options](std::size_t, ir::Memory memory) {
                     SimBatchResult out;
                     out.result = program.run(memory, options.mode);
                     out.memory = std::move(memory);
                     return out;
                   });
  }
  const sim::Machine machine(options.mode, sim::SimEngine::kDense);
  return fan_out(std::move(memories), options,
                 [&machine, &context](std::size_t, ir::Memory memory) {
                   SimBatchResult out;
                   out.result = machine.run(context, memory);
                   out.memory = std::move(memory);
                   return out;
                 });
}

std::vector<SimBatchResult> simulate_many(
    const std::vector<const sched::ConfigurationContext*>& contexts,
    std::vector<ir::Memory> memories, const SimBatchOptions& options) {
  if (contexts.size() != memories.size())
    throw InvalidArgumentError(
        "simulate_many: " + std::to_string(contexts.size()) +
        " contexts but " + std::to_string(memories.size()) + " memories");
  for (std::size_t i = 0; i < contexts.size(); ++i)
    if (contexts[i] == nullptr)
      throw InvalidArgumentError("simulate_many: context " +
                                 std::to_string(i) + " is null");

  const sim::Machine machine(options.mode, options.engine);
  return fan_out(std::move(memories), options,
                 [&machine, &contexts](std::size_t i, ir::Memory memory) {
                   SimBatchResult out;
                   out.result = machine.run(*contexts[i], memory);
                   out.memory = std::move(memory);
                   return out;
                 });
}

}  // namespace rsp::runtime
