// Worker-side executors for the distributed DSE shard protocol (v2 op
// `dse_shard`, docs/DISTRIBUTED.md).
//
// A shard is an explicit sub-range [begin, end) of the serial enumeration
// order (dse::Explorer::enumerate_points). Workers return **integers
// only** — estimated-cycle sums for estimate shards, per-kernel exact
// cycle/stall counts for exact shards — because integers survive the JSON
// wire bit-for-bit while doubles need not. The coordinator
// (dist::DseCoordinator) recomputes every derived double locally through
// the same dse::Explorer the single-process path uses, which is what makes
// the merged result bit-identical to `rsp_cli dse` by construction.
//
// Both executors run the exact serial loop bodies (point_architecture +
// the shared estimate/measure hooks) on the shard's slice, memoized
// through the same caches as the single-process flow, so a warm worker
// cache can never change a result — only skip recomputing it.
#pragma once

#include <cstddef>
#include <vector>

#include "dse/explorer.hpp"
#include "kernels/workload.hpp"
#include "runtime/eval_cache.hpp"
#include "runtime/mapping_cache.hpp"
#include "runtime/thread_pool.hpp"

namespace rsp::runtime {

/// Estimate products for enumeration indices [begin, end): the summed
/// base-schedule length over the domain (identical for every shard of one
/// run — the coordinator cross-checks it) and, per point in shard order,
/// the estimated-cycle sum over the domain in domain order.
struct EstimateShard {
  long base_cycles = 0;
  std::vector<long> estimated_cycles;  ///< one per point, shard order
};

/// Steps 1–3 of the Fig. 7 flow restricted to points [begin, end): per-
/// kernel mapping (memoized through `mapping_cache` when non-null), then
/// the fast estimate of every (point, kernel) pair fanned out over `pool`.
/// Throws InvalidArgumentError on an empty or out-of-range shard.
EstimateShard estimate_shard(const dse::Explorer& explorer,
                             const std::vector<kernels::Workload>& domain,
                             std::size_t begin, std::size_t end,
                             ThreadPool& pool, MappingCache* mapping_cache);

/// Exact products for enumeration indices [begin, end): per point in shard
/// order, the per-kernel exact cycle and stall counts in domain order.
struct ExactShard {
  std::vector<std::vector<long>> cycles;  ///< [point - begin][kernel]
  std::vector<std::vector<long>> stalls;  ///< same shape
};

/// Step 5 restricted to points [begin, end): per-kernel mapping (memoized),
/// then one exact rescheduling task per (point, kernel) pair over `pool`,
/// memoized through `eval_cache` under the same keys as the single-process
/// step-5 fan-out. Throws InvalidArgumentError on an empty or out-of-range
/// shard.
ExactShard exact_shard(const dse::Explorer& explorer,
                       const std::vector<kernels::Workload>& domain,
                       std::size_t begin, std::size_t end, ThreadPool& pool,
                       MappingCache* mapping_cache, EvalCache* eval_cache);

}  // namespace rsp::runtime
