// Fixed-size worker pool for the evaluation runtime.
//
// Tasks are arbitrary callables submitted through `submit`, which returns a
// std::future delivering the callable's result (or rethrowing its
// exception). Destruction is *draining*: every task already queued runs to
// completion before the workers join, so a pool can be used fire-and-forget
// inside a scope and nothing is lost when it closes.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace rsp::runtime {

class ThreadPool {
 public:
  /// `threads` == 0 picks `default_thread_count()`; negative is an error.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Hardware concurrency, at least 1.
  static int default_thread_count();

  /// Enqueues `fn`; the future delivers its return value or exception.
  /// Throws InvalidArgumentError once the pool has begun shutting down.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      const util::MutexLock lock(mutex_);
      if (stopping_)
        throw InvalidArgumentError("submit() on a stopping ThreadPool");
      queue_.emplace_back([task] { (*task)(); });
    }
    ready_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  util::Mutex mutex_;
  std::condition_variable_any ready_;
  std::deque<std::function<void()>> queue_ RSP_GUARDED_BY(mutex_);
  bool stopping_ RSP_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

/// Deterministic per-task RNG stream: seeding by task index makes any
/// task-local randomness (work-order shuffles, sampling) reproducible
/// regardless of which worker runs the task or in what order.
inline util::Rng task_rng(std::uint64_t task_index) {
  return util::Rng(0x52535054ull ^ (task_index * 0x9e3779b97f4a7c15ull));
}

}  // namespace rsp::runtime
