// Batched multi-config simulation on the shared worker pool.
//
// The event engine's split between compiling a context (sim::SimProgram)
// and running it makes simulation embarrassingly parallel across memories:
// one immutable compiled program is shared read-only by every worker while
// each task owns its private ir::Memory. `simulate_batch` exploits exactly
// that — one context, many memories; `simulate_many` is the transpose —
// many contexts, one memory snapshot each — compiling each context inside
// its own task.
//
// Both fan out over a runtime::ThreadPool (PR 2); pass `options.pool` to
// run on an existing pool (api::Service submits onto its evaluation
// workers) or leave it null to spin up a scoped pool of `options.threads`.
// Results are returned positionally and are bit-identical to running the
// jobs serially with sim::Machine — engine choice included, since both
// engines are bit-identical on legal contexts (docs/SIMULATOR.md).
#pragma once

#include <vector>

#include "ir/interp.hpp"
#include "sched/context.hpp"
#include "sim/machine.hpp"
#include "runtime/thread_pool.hpp"

namespace rsp::runtime {

struct SimBatchOptions {
  /// Workers for the internally created pool; 0 = hardware count.
  /// Ignored when `pool` is set.
  int threads = 0;
  /// Run on this pool instead of creating one. The caller keeps ownership;
  /// the pool must outlive the call.
  ThreadPool* pool = nullptr;
  sim::SimEngine engine = sim::SimEngine::kEvent;
  ir::DatapathMode mode = ir::DatapathMode::kExact;
};

/// One simulation outcome: the SimResult plus the final memory image.
struct SimBatchResult {
  sim::SimResult result;
  ir::Memory memory;
};

/// Runs one context against every memory in `memories` (each job starts
/// from its own element and mutates only its private copy). Results are
/// positional. With the event engine the context is compiled once and the
/// program shared across workers. Throws any rsp::Error the simulation
/// raises (first failing job by position wins).
std::vector<SimBatchResult> simulate_batch(
    const sched::ConfigurationContext& context,
    std::vector<ir::Memory> memories, const SimBatchOptions& options = {});

/// Runs `contexts[i]` against `memories[i]` for every i. Context pointers
/// must be non-null and outlive the call. Sizes must match.
std::vector<SimBatchResult> simulate_many(
    const std::vector<const sched::ConfigurationContext*>& contexts,
    std::vector<ir::Memory> memories, const SimBatchOptions& options = {});

}  // namespace rsp::runtime
