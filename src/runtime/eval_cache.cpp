#include "runtime/eval_cache.hpp"

#include "util/error.hpp"
#include "util/hash.hpp"

namespace rsp::runtime {

EvalCache::EvalCache(std::size_t shards) : shards_(shards) {
  if (shards == 0)
    throw InvalidArgumentError("EvalCache requires at least one shard");
}

std::string EvalCache::program_tag(const sched::PlacedProgram& program) {
  // Hash of the program fields the scheduler reads. Byte-view hashing is
  // endianness-dependent, which is fine for an in-memory memo table — the
  // key only needs to be stable within one process.
  std::uint64_t h = util::kFnvOffsetBasis;
  const auto mix = [&h](std::int64_t v) {
    h = util::fnv1a(
        std::string_view(reinterpret_cast<const char*>(&v), sizeof v), h);
  };
  for (const sched::ProgramOp& op : program.ops()) {
    mix(static_cast<std::int64_t>(op.kind));
    mix(op.pe.row);
    mix(op.pe.col);
    mix(op.priority);
    mix(op.imm);
    mix(op.address);
    mix(op.not_before);
    // Variable-length sections are length-prefixed so, e.g., an operand
    // list {5, 0} and an order_deps list [5, 0] cannot alias.
    mix(static_cast<std::int64_t>(op.array.size()));
    h = util::fnv1a(op.array, h);
    mix(static_cast<std::int64_t>(op.operands.size()));
    for (const sched::ProgOperand& operand : op.operands) {
      mix(operand.producer);
      mix(operand.imm);
    }
    mix(static_cast<std::int64_t>(op.order_deps.size()));
    for (const sched::ProgIndex dep : op.order_deps) mix(dep);
  }
  return std::to_string(h);
}

std::string EvalCache::key(const std::string& kernel_id,
                           const std::string& program_tag,
                           const arch::Architecture& a) {
  // Canonical, human-readable fingerprint. Every field the scheduler or
  // clock model reads is included; cosmetic fields (the name) are not.
  std::string k = kernel_id;
  k += '#';
  k += program_tag;
  k += '|';
  k += std::to_string(a.array.rows) + 'x' + std::to_string(a.array.cols);
  k += ";rb" + std::to_string(a.array.read_buses_per_row);
  k += ";wb" + std::to_string(a.array.write_buses_per_row);
  k += ";dw" + std::to_string(a.array.data_width_bits);
  k += ";pe";
  k += a.pe.has_multiplier ? 'm' : '-';
  k += a.pe.has_bus_switch ? 's' : '-';
  k += a.pe.has_pipeline_regs ? 'p' : '-';
  k += ";res" + std::to_string(static_cast<int>(a.sharing.resource));
  k += ";shr" + std::to_string(a.sharing.units_per_row);
  k += ";shc" + std::to_string(a.sharing.units_per_col);
  k += ";st" + std::to_string(a.sharing.pipeline_stages);
  return k;
}

EvalCache::Shard& EvalCache::shard_for(const std::string& key) {
  // mix64 on top of FNV-1a: near-identical keys (consecutive shr/shc/stage
  // fingerprints) must not cluster on one shard.
  return shards_[util::mix64(util::fnv1a(key)) % shards_.size()];
}

const EvalCache::Shard& EvalCache::shard_for(const std::string& key) const {
  return shards_[util::mix64(util::fnv1a(key)) % shards_.size()];
}

std::optional<EvalRecord> EvalCache::lookup(const std::string& key) const {
  const Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void EvalCache::insert(const std::string& key, const EvalRecord& record) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.map[key] = record;  // last writer wins; records are deterministic
}

EvalRecord EvalCache::get_or_compute(
    const std::string& key, const std::function<EvalRecord()>& compute) {
  Shard& shard = shard_for(key);
  std::uint64_t ticket = 0;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    ticket = ++shard.next_ticket;
    shard.pending[key] = ticket;
  }
  const auto drop_ticket = [&] {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.pending.find(key);
    if (it != shard.pending.end() && it->second == ticket)
      shard.pending.erase(it);
  };
  EvalRecord record;
  try {
    record = compute();  // slow path, outside the lock
  } catch (...) {
    drop_ticket();
    throw;
  }
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    // Publish only if this key's compute was not superseded: an
    // invalidation dropped the ticket (the key must stay gone) or a later
    // compute of the same key replaced it (that one publishes instead).
    const auto it = shard.pending.find(key);
    if (it != shard.pending.end() && it->second == ticket) {
      shard.map[key] = record;
      shard.pending.erase(it);
    }
  }
  return record;
}

bool EvalCache::invalidate(const std::string& key) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const bool erased = shard.map.erase(key) > 0;
  // Also cancel any in-flight compute of this key: its result was derived
  // before the invalidation and must not be published afterwards.
  shard.pending.erase(key);
  if (erased) invalidations_.fetch_add(1, std::memory_order_relaxed);
  return erased;
}

void EvalCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
    shard.pending.clear();
  }
}

util::Json EvalCache::serialize() const {
  util::Json entries = util::Json::array();
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, record] : shard.map) {
      util::Json entry = util::Json::object();
      entry.set("key", key)
          .set("cycles", record.cycles)
          .set("stalls", record.stalls)
          .set("nostall_cycles", record.nostall_cycles)
          .set("max_critical_issues", record.max_critical_issues);
      entries.push(std::move(entry));
    }
  }
  util::Json doc = util::Json::object();
  doc.set("format", "rsp-eval-cache")
      .set("version", kSerialFormatVersion)
      .set("entries", std::move(entries));
  return doc;
}

namespace {

int record_int_field(const util::Json& entry, const char* field) {
  return entry.at(field).as_int("cache entry field '" + std::string(field) +
                                "'");
}

}  // namespace

std::size_t EvalCache::deserialize(const util::Json& doc) {
  if (!doc.is_object() || !doc.contains("format") ||
      !doc.at("format").is_string() ||
      doc.at("format").as_string() != "rsp-eval-cache")
    throw InvalidArgumentError(
        "not an rsp-eval-cache document (missing format marker)");
  const double version = doc.at("version").as_number();
  if (version != static_cast<double>(kSerialFormatVersion))
    throw InvalidArgumentError(
        "unsupported cache format version " + util::Json(version).dump() +
        " (this build reads version " +
        std::to_string(kSerialFormatVersion) + ")");
  const util::Json& entries = doc.at("entries");
  if (!entries.is_array())
    throw InvalidArgumentError("'entries' must be a JSON array");

  // Validate every entry before touching the table: a malformed document
  // is rejected whole, not half-merged.
  std::vector<std::pair<std::string, EvalRecord>> loaded;
  loaded.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const util::Json& entry = entries.at(i);
    if (!entry.is_object())
      throw InvalidArgumentError("cache entry " + std::to_string(i) +
                                 " must be a JSON object");
    EvalRecord record;
    record.cycles = record_int_field(entry, "cycles");
    record.stalls = record_int_field(entry, "stalls");
    record.nostall_cycles = record_int_field(entry, "nostall_cycles");
    record.max_critical_issues = record_int_field(entry, "max_critical_issues");
    loaded.emplace_back(entry.at("key").as_string(), record);
  }
  for (const auto& [key, record] : loaded) insert(key, record);
  return loaded.size();
}

CacheStats EvalCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    s.entries += shard.map.size();
  }
  return s;
}

}  // namespace rsp::runtime
