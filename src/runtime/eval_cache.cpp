#include "runtime/eval_cache.hpp"

#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace rsp::runtime {

std::string EvalCache::program_tag(const sched::PlacedProgram& program) {
  // Hash of the program fields the scheduler reads. Byte-view hashing is
  // endianness-dependent, which is fine for an in-memory memo table — the
  // key only needs to be stable within one process.
  std::uint64_t h = util::kFnvOffsetBasis;
  const auto mix = [&h](std::int64_t v) {
    h = util::fnv1a(
        std::string_view(reinterpret_cast<const char*>(&v), sizeof v), h);
  };
  for (const sched::ProgramOp& op : program.ops()) {
    mix(static_cast<std::int64_t>(op.kind));
    mix(op.pe.row);
    mix(op.pe.col);
    mix(op.priority);
    mix(op.imm);
    mix(op.address);
    mix(op.not_before);
    // Variable-length sections are length-prefixed so, e.g., an operand
    // list {5, 0} and an order_deps list [5, 0] cannot alias.
    mix(static_cast<std::int64_t>(op.array.size()));
    h = util::fnv1a(op.array, h);
    mix(static_cast<std::int64_t>(op.operands.size()));
    for (const sched::ProgOperand& operand : op.operands) {
      mix(operand.producer);
      mix(operand.imm);
    }
    mix(static_cast<std::int64_t>(op.order_deps.size()));
    for (const sched::ProgIndex dep : op.order_deps) mix(dep);
  }
  return std::to_string(h);
}

std::string arch_fingerprint(const arch::Architecture& a) {
  // Every field the scheduler, estimator or clock model reads is included;
  // cosmetic fields (the name) are not.
  std::string k;
  k += std::to_string(a.array.rows) + 'x' + std::to_string(a.array.cols);
  k += ";rb" + std::to_string(a.array.read_buses_per_row);
  k += ";wb" + std::to_string(a.array.write_buses_per_row);
  k += ";dw" + std::to_string(a.array.data_width_bits);
  k += ";pe";
  k += a.pe.has_multiplier ? 'm' : '-';
  k += a.pe.has_bus_switch ? 's' : '-';
  k += a.pe.has_pipeline_regs ? 'p' : '-';
  k += ";res" + std::to_string(static_cast<int>(a.sharing.resource));
  k += ";shr" + std::to_string(a.sharing.units_per_row);
  k += ";shc" + std::to_string(a.sharing.units_per_col);
  k += ";st" + std::to_string(a.sharing.pipeline_stages);
  return k;
}

std::string EvalCache::key(const std::string& kernel_id,
                           const std::string& program_tag,
                           const arch::Architecture& a) {
  std::string k = kernel_id;
  k += '#';
  k += program_tag;
  k += '|';
  k += arch_fingerprint(a);
  return k;
}

util::Json EvalCache::serialize() const {
  util::Json entries = util::Json::array();
  for (const auto& [key, record] : cache_.snapshot()) {
    util::Json entry = util::Json::object();
    entry.set("key", key)
        .set("cycles", record.cycles)
        .set("stalls", record.stalls)
        .set("nostall_cycles", record.nostall_cycles)
        .set("max_critical_issues", record.max_critical_issues);
    entries.push(std::move(entry));
  }
  util::Json doc = util::Json::object();
  doc.set("format", "rsp-eval-cache")
      .set("version", kSerialFormatVersion)
      .set("entries", std::move(entries));
  return doc;
}

namespace {

int record_int_field(const util::Json& entry, const char* field) {
  return entry.at(field).as_int("cache entry field '" + std::string(field) +
                                "'");
}

}  // namespace

std::size_t EvalCache::deserialize(const util::Json& doc) {
  if (!doc.is_object() || !doc.contains("format") ||
      !doc.at("format").is_string() ||
      doc.at("format").as_string() != "rsp-eval-cache")
    throw InvalidArgumentError(
        "not an rsp-eval-cache document (missing format marker)");
  const double version = doc.at("version").as_number();
  if (version != static_cast<double>(kSerialFormatVersion))
    throw InvalidArgumentError(
        "unsupported cache format version " + util::Json(version).dump() +
        " (this build reads version " +
        std::to_string(kSerialFormatVersion) + ")");
  const util::Json& entries = doc.at("entries");
  if (!entries.is_array())
    throw InvalidArgumentError("'entries' must be a JSON array");

  // Validate every entry before touching the table: a malformed document
  // is rejected whole, not half-merged.
  std::vector<std::pair<std::string, EvalRecord>> loaded;
  loaded.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const util::Json& entry = entries.at(i);
    if (!entry.is_object())
      throw InvalidArgumentError("cache entry " + std::to_string(i) +
                                 " must be a JSON object");
    EvalRecord record;
    record.cycles = record_int_field(entry, "cycles");
    record.stalls = record_int_field(entry, "stalls");
    record.nostall_cycles = record_int_field(entry, "nostall_cycles");
    record.max_critical_issues = record_int_field(entry, "max_critical_issues");
    loaded.emplace_back(entry.at("key").as_string(), record);
  }
  for (const auto& [key, record] : loaded) insert(key, record);
  return loaded.size();
}

}  // namespace rsp::runtime
