// Sharded memo table for (kernel, architecture) evaluation results.
//
// Re-mapping and re-scheduling the same kernel on the same architecture is
// the dominant cost of exact evaluation, and both the DSE loop and batch
// serving repeat identical pairs constantly. The cache keys entries by a
// canonical fingerprint string: architecture parameters are spelled out in
// full, the program dimension is a 64-bit content hash — distinct mappings
// collide only with ~2^-64 probability, not never (a persisted
// cross-process cache would need the full program content in the key). The
// full key string is stored and compared, so the shard-picking hash adds
// no further collision risk.
//
// The concurrency machinery — shard striping, the per-key publish ticket
// that keeps an entry invalidated mid-compute from being resurrected, and
// the bounded-capacity segmented-LRU eviction — lives in
// runtime/striped_cache.hpp and is shared with the MappingCache; this
// class adds the key/fingerprint composition and the persistence format.
// It holds no locks of its own, so the thread-safety annotations
// (util/thread_annotations.hpp) live entirely in the shared core.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>

#include "arch/presets.hpp"
#include "runtime/striped_cache.hpp"
#include "sched/program.hpp"
#include "util/json.hpp"

namespace rsp::runtime {

/// Everything the runtime memoizes per (kernel, architecture) pair. All
/// fields come from the same single schedule (core::measure_perf), so an
/// entry written by the DSE path serves the suite-evaluation path and
/// vice versa.
struct EvalRecord {
  int cycles = 0;
  int stalls = 0;
  int nostall_cycles = 0;
  int max_critical_issues = 0;

  bool operator==(const EvalRecord&) const = default;
};

/// Canonical, human-readable fingerprint of the architecture parameters
/// that influence scheduling and estimation. Cosmetic fields (the name)
/// are excluded so a preset ("RSP#2") and an identically-parameterised
/// custom design share one fingerprint. Shared by the EvalCache and
/// MappingCache key compositions.
std::string arch_fingerprint(const arch::Architecture& architecture);

class EvalCache {
 public:
  /// `max_entries` bounds the table (segmented-LRU eviction, enforced per
  /// shard as ceil(max_entries / shards)); 0 keeps it unbounded.
  explicit EvalCache(std::size_t shards = 16, std::size_t max_entries = 0)
      : cache_(shards, max_entries) {}

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Fingerprint of a placed program's scheduling-relevant content. It
  /// closes the alias trap where one kernel id is paired with two
  /// different mappings (e.g. changed hints) against a warm shared cache.
  /// Hashing is O(program) — compute once per program and reuse the tag
  /// across key() calls, not once per lookup.
  static std::string program_tag(const sched::PlacedProgram& program);

  /// Canonical cache key: kernel identifier + `program_tag` + the
  /// architecture parameters that influence scheduling. Architecture
  /// *names* are excluded so a preset ("RSP#2") and an
  /// identically-parameterised custom design share one entry.
  static std::string key(const std::string& kernel_id,
                         const std::string& program_tag,
                         const arch::Architecture& architecture);

  std::optional<EvalRecord> lookup(const std::string& key) const {
    return cache_.lookup(key);
  }
  void insert(const std::string& key, const EvalRecord& record) {
    cache_.insert(key, record);
  }

  /// lookup, or run `compute` and insert its result. `compute` runs outside
  /// any shard lock (it reschedules kernels — far too slow to serialize),
  /// and the result is published only if this key was not invalidated
  /// meanwhile — an entry invalidated mid-compute stays invalidated, and
  /// invalidations of *other* keys do not block the publish.
  EvalRecord get_or_compute(const std::string& key,
                            const std::function<EvalRecord()>& compute) {
    return cache_.get_or_compute(key, compute);
  }

  /// Removes one entry; returns whether it existed. A subsequent lookup
  /// misses and recomputes — stale values are never served.
  bool invalidate(const std::string& key) { return cache_.invalidate(key); }
  void clear() { cache_.clear(); }

  /// Serialization format version; bumped whenever the entry schema or the
  /// key fingerprint composition changes incompatibly.
  static constexpr int kSerialFormatVersion = 1;

  /// Snapshot of every entry as a JSON document:
  ///   {"format": "rsp-eval-cache", "version": 1,
  ///    "entries": [{"key": ..., "cycles": ..., "stalls": ...,
  ///                 "nostall_cycles": ..., "max_critical_issues": ...}]}
  /// Shards are locked one at a time, so the snapshot is consistent per
  /// entry but not across concurrent writers — callers wanting an exact
  /// image quiesce the pool first. Keys embed a byte-view program hash, so
  /// a persisted table is only meaningful to the same build on the same
  /// platform; a mismatched key is simply never looked up (a cold miss),
  /// never a wrong hit. An *evicting* cache snapshots whatever is resident
  /// at that moment; restoring into a bounded table re-enters through the
  /// normal insert path (and may evict again if the bound is smaller).
  util::Json serialize() const;

  /// Merges every entry of `doc` (a `serialize()` document) into the table,
  /// last writer wins; returns the number of entries loaded. Throws
  /// InvalidArgumentError on a wrong format marker, a version mismatch, or
  /// malformed entries — a table from an incompatible build must be
  /// rejected loudly, not half-loaded.
  std::size_t deserialize(const util::Json& doc);

  CacheStats stats() const { return cache_.stats(); }
  std::size_t shard_count() const { return cache_.shard_count(); }
  std::size_t max_entries() const { return cache_.max_entries(); }

 private:
  StripedMemoCache<EvalRecord> cache_;
};

}  // namespace rsp::runtime
