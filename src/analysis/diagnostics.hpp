// Structured diagnostics for the static verification layer.
//
// A Diagnostic is one finding of the schedule/program linter: a stable rule
// id (RSP-Vnnn validation, RSP-Snnn structural, RSP-Wnnn warning), a
// severity, the locus it anchors to (op index, issue cycle, PE), the exact
// message — for error rules, byte-identical to the exception the simulator
// raises on the same input — and a short fix hint. docs/ANALYSIS.md holds
// the full rule catalogue.
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace rsp::analysis {

enum class Severity {
  kError,    // the simulator rejects this context (exception on compile/run)
  kWarning,  // simulator-legal but suspicious (silent zeros, dead work, ...)
};

const char* severity_name(Severity severity);

/// Where a finding anchors. -1 in any field means "not specific to one".
struct Locus {
  int op = -1;      ///< op index in the scheduled program
  int cycle = -1;   ///< issue cycle
  int pe_row = -1;  ///< PE placement, when the op has one
  int pe_col = -1;

  bool operator==(const Locus&) const = default;
};

struct Diagnostic {
  std::string rule;     ///< stable id, e.g. "RSP-S001"
  Severity severity = Severity::kError;
  Locus locus;
  /// For error rules this is the exact text of the exception
  /// `sim::SimProgram::compile` throws on the same context.
  std::string message;
  std::string hint;  ///< one-line suggested fix

  bool operator==(const Diagnostic&) const = default;
};

/// The linter's result: every finding, in discovery order (validation pass
/// in op-index order, then the structural replay in issue order, then the
/// warning passes).
struct LintReport {
  std::vector<Diagnostic> diagnostics;

  int error_count() const;
  int warning_count() const;
  /// Clean = no error-severity findings. Warnings do not make a context
  /// illegal; the simulator accepts it.
  bool clean() const { return error_count() == 0; }

  /// {"errors": N, "warnings": N, "diagnostics": [{"rule", "severity",
  ///  "op", "cycle", "pe", "message", "hint"}, ...]}. Loci fields that are
  /// -1 are omitted; round-trips through util::Json::parse.
  util::Json to_json() const;
};

}  // namespace rsp::analysis
