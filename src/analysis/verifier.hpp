// Static verifier over placed-and-scheduled programs.
//
// One checking implementation serves two callers:
//   * `lint_*` walk every rule and return a full LintReport — the engine
//     behind `rsp_cli lint`, the v2 protocol `lint` op and the fuzzer's
//     pre-flight hook.
//   * `verify_context` / `verify_structural` stop at the first violation
//     and throw exactly what the simulator historically threw
//     (InvalidArgumentError for per-op validation rules, rsp::Error for
//     structural-replay rules). `sim::validate_context` and
//     `sim::SimProgram::compile` delegate here, so a compile-time error and
//     the corresponding lint finding carry identical messages.
//
// The dense reference engine (`Machine::run_dense`) intentionally keeps its
// own inline checks: it is the independent implementation the differential
// tests compare everything else against.
#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "arch/presets.hpp"
#include "sched/context.hpp"

namespace rsp::analysis {

/// Full lint of a raw schedule that may not even construct a
/// ConfigurationContext (negative cycles, zero latencies). Emits the
/// context constructor's messages for those, then every context rule.
LintReport lint_schedule(const arch::Architecture& architecture,
                         const std::vector<sched::ScheduledOp>& ops);

/// Full lint of a constructed (hence cycle/latency-sane) context.
LintReport lint_context(const sched::ConfigurationContext& context);

/// Per-op validation rules (RSP-V*) in op-index order; throws
/// InvalidArgumentError with the first violation's message. This is the
/// body of `sim::validate_context`.
void verify_context(const sched::ConfigurationContext& context);

/// Structural-replay rules (RSP-S*) in issue order (cycle asc, op index
/// asc); throws rsp::Error with the first violation's message. Call only
/// after `verify_context` passed — the replay indexes arrays with the
/// bounds that pass established. This is the check half of
/// `sim::SimProgram::compile`.
void verify_structural(const sched::ConfigurationContext& context);

}  // namespace rsp::analysis
