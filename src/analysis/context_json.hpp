// JSON (de)serialization of an architecture + scheduled-op list, so the
// linter can check programs that never went through the in-process
// toolchain: hand-written schedules, fuzzer repros, arbitrary
// `custom_architecture` points.
//
// Document shape (docs/ANALYSIS.md):
//   {"arch": "RSP#1",              // standard-suite name, or an object:
//    // {"rows": 4, "cols": 4, "units_per_row": 1, "units_per_col": 0,
//    //  "stages": 2}
//    "ops": [{"op": "mult", "pe": [row, col], "cycle": 0, "latency": 2,
//             "operands": [{"producer": 0}, {"imm": 5}],
//             "unit": {"pool": "row", "line": 0, "index": 0},   // optional
//             "array": "A", "address": 3,   // memory ops
//             "imm": 0, "iter": 0}, ...]}
//
// The decoder is deliberately permissive about *semantic* legality — that
// is the linter's job — and strict about document structure (unknown keys,
// wrong types and malformed references all throw InvalidArgumentError).
#pragma once

#include <string>
#include <vector>

#include "arch/presets.hpp"
#include "sched/context.hpp"
#include "util/json.hpp"

namespace rsp::analysis {

/// A decoded lint subject: the architecture plus the raw op list (kept raw
/// so illegal cycles/latencies survive to `lint_schedule`).
struct ScheduleDocument {
  arch::Architecture architecture;
  std::vector<sched::ScheduledOp> ops;
};

ScheduleDocument decode_schedule(const util::Json& doc);
ScheduleDocument parse_schedule(const std::string& text);

/// Inverse of decode_schedule; round-trips bit-exactly for any context
/// (standard-suite architectures encode as their name).
util::Json encode_schedule(const arch::Architecture& architecture,
                           const std::vector<sched::ScheduledOp>& ops);

}  // namespace rsp::analysis
