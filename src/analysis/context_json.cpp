#include "analysis/context_json.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "ir/op.hpp"
#include "util/error.hpp"

namespace rsp::analysis {
namespace {

constexpr ir::OpKind kAllOpKinds[] = {
    ir::OpKind::kConst, ir::OpKind::kLoad,  ir::OpKind::kStore,
    ir::OpKind::kAdd,   ir::OpKind::kSub,   ir::OpKind::kMult,
    ir::OpKind::kAbs,   ir::OpKind::kShift, ir::OpKind::kRoute,
    ir::OpKind::kNop};

ir::OpKind parse_op_kind(const std::string& name) {
  for (const ir::OpKind kind : kAllOpKinds)
    if (name == ir::op_name(kind)) return kind;
  throw InvalidArgumentError("unknown op kind '" + name + "'");
}

std::int64_t as_i64(const util::Json& value, const std::string& what) {
  const double d = value.as_number();
  if (std::floor(d) != d || d < -9.0e18 || d > 9.0e18)
    throw InvalidArgumentError(what + " must be an integer");
  return static_cast<std::int64_t>(d);
}

void require_only(const util::Json& doc, const std::string& what,
                  std::initializer_list<const char*> allowed) {
  for (const std::string& key : doc.keys())
    if (std::none_of(allowed.begin(), allowed.end(),
                     [&](const char* a) { return key == a; }))
      throw InvalidArgumentError("unknown field '" + key + "' in " + what);
}

arch::Architecture decode_architecture(const util::Json& doc) {
  if (!doc.contains("arch"))
    throw InvalidArgumentError("schedule document has no 'arch' field");
  const util::Json& spec = doc.at("arch");
  if (spec.is_string()) {
    const int rows =
        doc.contains("rows") ? doc.at("rows").as_int("rows") : 8;
    const int cols =
        doc.contains("cols") ? doc.at("cols").as_int("cols") : 8;
    for (arch::Architecture& a : arch::standard_suite(rows, cols))
      if (a.name == spec.as_string()) return a;
    throw NotFoundError("unknown architecture '" + spec.as_string() +
                        "' (Base, RS#1..RS#4, RSP#1..RSP#4)");
  }
  if (!spec.is_object())
    throw InvalidArgumentError(
        "'arch' must be a standard-suite name or a custom-geometry object");
  require_only(spec, "'arch'",
               {"name", "rows", "cols", "units_per_row", "units_per_col",
                "stages"});
  return arch::custom_architecture(
      spec.contains("name") ? spec.at("name").as_string() : "custom",
      spec.at("rows").as_int("rows"), spec.at("cols").as_int("cols"),
      spec.at("units_per_row").as_int("units_per_row"),
      spec.at("units_per_col").as_int("units_per_col"),
      spec.at("stages").as_int("stages"));
}

sched::ProgOperand decode_operand(const util::Json& doc) {
  if (!doc.is_object())
    throw InvalidArgumentError("each operand must be an object");
  require_only(doc, "operand", {"producer", "imm"});
  sched::ProgOperand operand;
  if (doc.contains("producer")) {
    if (doc.contains("imm"))
      throw InvalidArgumentError(
          "an operand is either a producer reference or an immediate, not "
          "both");
    operand.producer = as_i64(doc.at("producer"), "producer");
  } else if (doc.contains("imm")) {
    operand.imm = as_i64(doc.at("imm"), "imm");
  } else {
    throw InvalidArgumentError("operand needs a 'producer' or 'imm' field");
  }
  return operand;
}

arch::SharedUnitId decode_unit(const util::Json& doc) {
  if (!doc.is_object())
    throw InvalidArgumentError("'unit' must be an object");
  require_only(doc, "'unit'", {"pool", "line", "index"});
  arch::SharedUnitId unit;
  const std::string& pool = doc.at("pool").as_string();
  if (pool == "row") {
    unit.pool = arch::SharedUnitId::Pool::kRow;
  } else if (pool == "col") {
    unit.pool = arch::SharedUnitId::Pool::kColumn;
  } else {
    throw InvalidArgumentError("unit pool must be 'row' or 'col', got '" +
                               pool + "'");
  }
  unit.line = doc.at("line").as_int("line");
  unit.index = doc.at("index").as_int("index");
  return unit;
}

sched::ScheduledOp decode_op(const util::Json& doc, std::size_t index) {
  if (!doc.is_object())
    throw InvalidArgumentError("op " + std::to_string(index) +
                               " must be an object");
  require_only(doc, "op " + std::to_string(index),
               {"op", "pe", "cycle", "latency", "priority", "iter",
                "operands", "order_deps", "imm", "array", "address", "unit"});
  sched::ScheduledOp op;
  op.kind = parse_op_kind(doc.at("op").as_string());
  const util::Json& pe = doc.at("pe");
  if (!pe.is_array() || pe.size() != 2)
    throw InvalidArgumentError("op " + std::to_string(index) +
                               " 'pe' must be a [row, col] pair");
  op.pe.row = pe.at(std::size_t{0}).as_int("pe row");
  op.pe.col = pe.at(std::size_t{1}).as_int("pe col");
  op.cycle = doc.at("cycle").as_int("cycle");
  if (doc.contains("latency")) op.latency = doc.at("latency").as_int("latency");
  if (doc.contains("priority"))
    op.priority = as_i64(doc.at("priority"), "priority");
  if (doc.contains("iter")) op.iter = as_i64(doc.at("iter"), "iter");
  if (doc.contains("operands")) {
    const util::Json& operands = doc.at("operands");
    if (!operands.is_array())
      throw InvalidArgumentError("'operands' must be an array");
    for (std::size_t i = 0; i < operands.size(); ++i)
      op.operands.push_back(decode_operand(operands.at(i)));
  }
  if (doc.contains("order_deps")) {
    const util::Json& deps = doc.at("order_deps");
    if (!deps.is_array())
      throw InvalidArgumentError("'order_deps' must be an array");
    for (std::size_t i = 0; i < deps.size(); ++i)
      op.order_deps.push_back(as_i64(deps.at(i), "order_deps entry"));
  }
  if (doc.contains("imm")) op.imm = as_i64(doc.at("imm"), "imm");
  if (doc.contains("array")) op.array = doc.at("array").as_string();
  if (doc.contains("address"))
    op.address = as_i64(doc.at("address"), "address");
  if (doc.contains("unit")) op.unit = decode_unit(doc.at("unit"));
  return op;
}

}  // namespace

ScheduleDocument decode_schedule(const util::Json& doc) {
  if (!doc.is_object())
    throw InvalidArgumentError("schedule document must be a JSON object");
  require_only(doc, "schedule document", {"arch", "rows", "cols", "ops"});
  ScheduleDocument out;
  out.architecture = decode_architecture(doc);
  if (!doc.contains("ops"))
    throw InvalidArgumentError("schedule document has no 'ops' field");
  const util::Json& ops = doc.at("ops");
  if (!ops.is_array())
    throw InvalidArgumentError("'ops' must be an array");
  for (std::size_t i = 0; i < ops.size(); ++i)
    out.ops.push_back(decode_op(ops.at(i), i));
  return out;
}

ScheduleDocument parse_schedule(const std::string& text) {
  return decode_schedule(util::Json::parse(text));
}

util::Json encode_schedule(const arch::Architecture& architecture,
                           const std::vector<sched::ScheduledOp>& ops) {
  util::Json doc = util::Json::object();
  // A standard-suite architecture round-trips by name; anything else (e.g.
  // a custom_architecture DSE point) is spelled out as geometry.
  bool standard = false;
  for (const arch::Architecture& a : arch::standard_suite(
           architecture.array.rows, architecture.array.cols))
    if (a.name == architecture.name && a.array == architecture.array &&
        a.sharing == architecture.sharing) {
      standard = true;
      break;
    }
  if (standard) {
    doc.set("arch", architecture.name);
    if (architecture.array.rows != 8) doc.set("rows", architecture.array.rows);
    if (architecture.array.cols != 8) doc.set("cols", architecture.array.cols);
  } else {
    util::Json spec = util::Json::object();
    spec.set("name", architecture.name);
    spec.set("rows", architecture.array.rows);
    spec.set("cols", architecture.array.cols);
    spec.set("units_per_row", architecture.sharing.units_per_row);
    spec.set("units_per_col", architecture.sharing.units_per_col);
    spec.set("stages", architecture.sharing.pipeline_stages);
    doc.set("arch", std::move(spec));
  }

  util::Json list = util::Json::array();
  for (const sched::ScheduledOp& op : ops) {
    util::Json entry = util::Json::object();
    entry.set("op", ir::op_name(op.kind));
    util::Json pe = util::Json::array();
    pe.push(op.pe.row);
    pe.push(op.pe.col);
    entry.set("pe", std::move(pe));
    entry.set("cycle", op.cycle);
    if (op.latency != 1) entry.set("latency", op.latency);
    if (op.priority != 0) entry.set("priority", op.priority);
    if (op.iter != -1) entry.set("iter", op.iter);
    if (!op.operands.empty()) {
      util::Json operands = util::Json::array();
      for (const sched::ProgOperand& o : op.operands) {
        util::Json operand = util::Json::object();
        if (o.is_imm()) {
          operand.set("imm", o.imm);
        } else {
          operand.set("producer", o.producer);
        }
        operands.push(std::move(operand));
      }
      entry.set("operands", std::move(operands));
    }
    if (!op.order_deps.empty()) {
      util::Json deps = util::Json::array();
      for (const sched::ProgIndex dep : op.order_deps) deps.push(dep);
      entry.set("order_deps", std::move(deps));
    }
    if (op.imm != 0) entry.set("imm", op.imm);
    if (!op.array.empty()) entry.set("array", op.array);
    if (op.address != 0) entry.set("address", op.address);
    if (op.unit) {
      util::Json unit = util::Json::object();
      unit.set("pool",
               op.unit->pool == arch::SharedUnitId::Pool::kRow ? "row"
                                                               : "col");
      unit.set("line", op.unit->line);
      unit.set("index", op.unit->index);
      entry.set("unit", std::move(unit));
    }
    list.push(std::move(entry));
  }
  doc.set("ops", std::move(list));
  return doc;
}

}  // namespace rsp::analysis
