#include "analysis/verifier.hpp"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <map>
#include <tuple>
#include <vector>

#include "ir/op.hpp"
#include "util/error.hpp"

namespace rsp::analysis {

const char* severity_name(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

int LintReport::error_count() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::kError) ++n;
  return n;
}

int LintReport::warning_count() const {
  return static_cast<int>(diagnostics.size()) - error_count();
}

util::Json LintReport::to_json() const {
  util::Json doc = util::Json::object();
  doc.set("errors", static_cast<double>(error_count()));
  doc.set("warnings", static_cast<double>(warning_count()));
  util::Json list = util::Json::array();
  for (const Diagnostic& d : diagnostics) {
    util::Json entry = util::Json::object();
    entry.set("rule", d.rule);
    entry.set("severity", severity_name(d.severity));
    if (d.locus.op >= 0) entry.set("op", static_cast<double>(d.locus.op));
    if (d.locus.cycle >= 0)
      entry.set("cycle", static_cast<double>(d.locus.cycle));
    if (d.locus.pe_row >= 0 && d.locus.pe_col >= 0) {
      util::Json pe = util::Json::array();
      pe.push(static_cast<double>(d.locus.pe_row));
      pe.push(static_cast<double>(d.locus.pe_col));
      entry.set("pe", std::move(pe));
    }
    entry.set("message", d.message);
    entry.set("hint", d.hint);
    list.push(std::move(entry));
  }
  doc.set("diagnostics", std::move(list));
  return doc;
}

namespace {

struct Finding {
  const char* rule;
  Severity severity;
  Locus locus;
  std::string message;
};

using EmitFn = std::function<void(Finding)>;

/// One-line fix hint per rule id (docs/ANALYSIS.md mirrors this table).
const char* hint_for(const std::string& rule) {
  if (rule == "RSP-V001") return "issue cycles must lie in [0, length)";
  if (rule == "RSP-V002") return "every op occupies at least one cycle";
  if (rule == "RSP-V003") return "place the op on a PE inside the array";
  if (rule == "RSP-V004")
    return "operand producers must index an op of this program";
  if (rule == "RSP-V005") return "give the store a value operand";
  if (rule == "RSP-V006")
    return "shared-unit line/index must fit the architecture's pools";
  if (rule == "RSP-S001")
    return "a PE issues one op per cycle and blocks for every stage of a "
           "multi-cycle op";
  if (rule == "RSP-S002")
    return "stagger the loads: a row has read_buses_per_row load slots per "
           "cycle";
  if (rule == "RSP-S003")
    return "stagger the stores: a row has write_buses_per_row store slots "
           "per cycle";
  if (rule == "RSP-S004")
    return "on a resource-shared architecture every critical op needs a "
           "shared-unit assignment";
  if (rule == "RSP-S005")
    return "a shared unit accepts one issue per cycle; pick another unit or "
           "cycle";
  if (rule == "RSP-S006")
    return "delay the consumer until producer cycle + latency";
  if (rule == "RSP-W001")
    return "the consumer reads the producer's initial 0; issue the producer "
           "earlier if the value is meant to flow";
  if (rule == "RSP-W002") return "drop the op or route its value somewhere";
  if (rule == "RSP-W003")
    return "loop-carried values must flow from earlier iterations to later "
           "ones";
  if (rule == "RSP-W004")
    return "the last store in index order wins; merge or reorder the stores";
  if (rule == "RSP-W005")
    return "same-cycle load/store on one address depends on issue order; "
           "separate them by a cycle";
  if (rule == "RSP-W006")
    return "no unit assignment can serve this many critical issues in one "
           "cycle; lower the per-cycle pressure or add shared units";
  if (rule == "RSP-W007")
    return "producer and consumer PEs need a same-PE/neighbour/row/column "
           "link; move one of them or insert a route op";
  if (rule == "RSP-W008")
    return "a PE reaches only its own row pool and column pool; pick a unit "
           "on the op's row or column";
  return "";
}

// Dense integer slot of a shared unit: row pools first (rows ×
// units_per_row, row-major), then column pools. Callers bounds-check
// line/index first, so the slot is in [0, sharing.total_units(array)).
int unit_slot(const arch::SharingPlan& sharing, const arch::ArraySpec& array,
              const arch::SharedUnitId& unit) {
  if (unit.pool == arch::SharedUnitId::Pool::kRow)
    return unit.line * sharing.units_per_row + unit.index;
  return array.rows * sharing.units_per_row +
         unit.line * sharing.units_per_col + unit.index;
}

bool unit_in_pools(const arch::Architecture& a, const arch::SharedUnitId& u) {
  const bool row_pool = u.pool == arch::SharedUnitId::Pool::kRow;
  const int lines = row_pool ? a.array.rows : a.array.cols;
  const int pool_size =
      row_pool ? a.sharing.units_per_row : a.sharing.units_per_col;
  return u.line >= 0 && u.line < lines && u.index >= 0 && u.index < pool_size;
}

Locus locus_of(std::size_t i, const sched::ScheduledOp& op) {
  return Locus{static_cast<int>(i), op.cycle, op.pe.row, op.pe.col};
}

/// Per-op validation rules, op-index order, with each op's checks in the
/// exact order `sim::validate_context` historically ran them. When
/// `pre_construction` is set the cycle/latency rules use the
/// ConfigurationContext constructor's messages instead (those inputs never
/// reach validate_context: the constructor rejects them first).
/// `skip_replay[i]` is set when op i cannot safely take part in the
/// structural replay (bad cycle, latency or placement).
void validation_pass(const arch::Architecture& a,
                     const std::vector<sched::ScheduledOp>& ops, int length,
                     bool pre_construction, const EmitFn& emit,
                     std::vector<char>& skip_replay) {
  const auto size = static_cast<sched::ProgIndex>(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const sched::ScheduledOp& op = ops[i];
    if (op.cycle < 0 || op.cycle >= length) {
      skip_replay[i] = 1;
      const std::string message =
          pre_construction && op.cycle < 0
              ? "op " + std::to_string(i) + " has negative issue cycle " +
                    std::to_string(op.cycle)
              : "simulator: op " + std::to_string(i) + " issue cycle " +
                    std::to_string(op.cycle) + " out of range [0, " +
                    std::to_string(length) + ")";
      emit({"RSP-V001", Severity::kError, locus_of(i, op), message});
    }
    if (op.latency < 1) {
      skip_replay[i] = 1;
      const std::string message =
          pre_construction
              ? "op " + std::to_string(i) + " has latency " +
                    std::to_string(op.latency) + "; latency must be >= 1"
              : "simulator: op " + std::to_string(i) + " latency " +
                    std::to_string(op.latency) + " must be >= 1";
      emit({"RSP-V002", Severity::kError, locus_of(i, op), message});
    }
    if (!a.array.contains(op.pe)) {
      skip_replay[i] = 1;
      emit({"RSP-V003", Severity::kError, locus_of(i, op),
            "simulator: op " + std::to_string(i) + " placed on PE (" +
                std::to_string(op.pe.row) + ", " + std::to_string(op.pe.col) +
                ") outside the " + std::to_string(a.array.rows) + "x" +
                std::to_string(a.array.cols) + " array"});
    }
    for (const sched::ProgOperand& o : op.operands)
      if (!o.is_imm() && (o.producer < 0 || o.producer >= size))
        emit({"RSP-V004", Severity::kError, locus_of(i, op),
              "simulator: op " + std::to_string(i) +
                  " operand references producer " +
                  std::to_string(o.producer) + " out of range [0, " +
                  std::to_string(size) + ")"});
    if (op.kind == ir::OpKind::kStore && op.operands.empty())
      emit({"RSP-V005", Severity::kError, locus_of(i, op),
            "simulator: store op " + std::to_string(i) +
                " has no value operand"});
    if (ir::is_critical_op(op.kind) && a.shares_multiplier() && op.unit &&
        !unit_in_pools(a, *op.unit))
      emit({"RSP-V006", Severity::kError, locus_of(i, op),
            "simulator: op " + std::to_string(i) + " names shared unit " +
                arch::to_string(*op.unit) +
                " outside the architecture's pools"});
  }
}

/// Structural-replay rules in issue order (cycle asc, op index asc),
/// message-identical to `sim::SimProgram::compile`'s replay. In full-report
/// mode (`skip_replay` from a failed validation pass) ops that cannot be
/// replayed are left out and findings accumulate; in verify mode the emit
/// callback throws at the first finding, reproducing compile's
/// stop-at-first-error behaviour exactly.
void structural_pass(const arch::Architecture& a,
                     const std::vector<sched::ScheduledOp>& ops, int length,
                     const EmitFn& emit,
                     const std::vector<char>& skip_replay) {
  const arch::ArraySpec& array = a.array;
  const auto n = ops.size();
  std::vector<std::vector<std::size_t>> by_cycle(
      static_cast<std::size_t>(std::max(length, 1)));
  for (std::size_t i = 0; i < n; ++i)
    if (!skip_replay[i])
      by_cycle[static_cast<std::size_t>(ops[i].cycle)].push_back(i);

  const int total_units = a.sharing.total_units(array);
  std::vector<int> pe_busy_until(static_cast<std::size_t>(array.num_pes()),
                                 0);
  std::vector<int> ready_at(n, 0);
  std::vector<int> row_reads(static_cast<std::size_t>(array.rows), 0);
  std::vector<int> row_writes(static_cast<std::size_t>(array.rows), 0);
  std::vector<char> unit_taken(static_cast<std::size_t>(total_units), 0);

  for (int t = 0; t < length; ++t) {
    const auto& issues = by_cycle[static_cast<std::size_t>(t)];
    if (issues.empty()) continue;
    std::fill(row_reads.begin(), row_reads.end(), 0);
    std::fill(row_writes.begin(), row_writes.end(), 0);
    std::fill(unit_taken.begin(), unit_taken.end(), 0);

    for (const std::size_t i : issues) {
      const sched::ScheduledOp& op = ops[i];

      const int pe = array.linear(op.pe);
      if (pe_busy_until[static_cast<std::size_t>(pe)] > t)
        emit({"RSP-S001", Severity::kError, locus_of(i, op),
              "simulator: PE double-booked at cycle " + std::to_string(t)});
      pe_busy_until[static_cast<std::size_t>(pe)] =
          t + (ir::is_critical_op(op.kind) ? op.latency : 1);

      const auto require_ready = [&](const sched::ProgOperand& o) {
        if (o.is_imm()) return;
        if (o.producer < 0 || o.producer >= static_cast<sched::ProgIndex>(n))
          return;  // RSP-V004 already reported the dangling producer
        if (ready_at[static_cast<std::size_t>(o.producer)] > t)
          emit({"RSP-S006", Severity::kError, locus_of(i, op),
                "simulator: operand consumed before ready at cycle " +
                    std::to_string(t)});
      };

      switch (op.kind) {
        case ir::OpKind::kLoad:
          if (++row_reads[static_cast<std::size_t>(op.pe.row)] >
              array.read_buses_per_row)
            emit({"RSP-S002", Severity::kError, locus_of(i, op),
                  "simulator: read-bus oversubscribed on row " +
                      std::to_string(op.pe.row) + " at cycle " +
                      std::to_string(t)});
          break;
        case ir::OpKind::kStore:
          if (++row_writes[static_cast<std::size_t>(op.pe.row)] >
              array.write_buses_per_row)
            emit({"RSP-S003", Severity::kError, locus_of(i, op),
                  "simulator: write-bus oversubscribed on row " +
                      std::to_string(op.pe.row) + " at cycle " +
                      std::to_string(t)});
          if (!op.operands.empty()) require_ready(op.operands[0]);
          break;
        case ir::OpKind::kNop:
          break;
        default: {
          if (ir::is_critical_op(op.kind) && a.shares_multiplier()) {
            if (!op.unit) {
              emit({"RSP-S004", Severity::kError, locus_of(i, op),
                    "simulator: shared multiply without a unit"});
            } else if (unit_in_pools(a, *op.unit)) {
              const int unit = unit_slot(a.sharing, array, *op.unit);
              if (unit_taken[static_cast<std::size_t>(unit)])
                emit({"RSP-S005", Severity::kError, locus_of(i, op),
                      "simulator: unit " + arch::to_string(*op.unit) +
                          " double-issued at cycle " + std::to_string(t)});
              unit_taken[static_cast<std::size_t>(unit)] = 1;
            }
          }
          if (!op.operands.empty()) require_ready(op.operands[0]);
          if (op.operands.size() > 1) require_ready(op.operands[1]);
          break;
        }
      }
      ready_at[i] = t + op.latency;
    }
  }
}

/// Lint-only rules: everything here is simulator-legal (the engines accept
/// the context and produce deterministic values) but almost certainly not
/// what the schedule's author meant.
void warning_pass(const arch::Architecture& a,
                  const std::vector<sched::ScheduledOp>& ops,
                  const EmitFn& emit, const std::vector<char>& skip_replay) {
  const arch::ArraySpec& array = a.array;
  const auto n = ops.size();
  const auto size = static_cast<sched::ProgIndex>(n);
  const auto producer_ok = [&](const sched::ProgOperand& o) {
    return !o.is_imm() && o.producer >= 0 && o.producer < size;
  };

  std::vector<char> consumed(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const sched::ScheduledOp& op = ops[i];
    for (const sched::ProgOperand& o : op.operands) {
      if (!producer_ok(o)) continue;
      const auto p = static_cast<std::size_t>(o.producer);
      consumed[p] = 1;
      const sched::ScheduledOp& prod = ops[p];
      // RSP-W001: the producer issues at (or after) the consumer's slot in
      // replay order, so the consumer silently reads the initial 0 — the
      // silent twin of the RSP-S006 error (producer issued, result not
      // ready yet).
      if (prod.cycle > op.cycle || (prod.cycle == op.cycle && p >= i))
        emit({"RSP-W001", Severity::kWarning, locus_of(i, op),
              "op " + std::to_string(i) + " consumes producer " +
                  std::to_string(p) + " which issues at cycle " +
                  std::to_string(prod.cycle) + ", not before cycle " +
                  std::to_string(op.cycle) +
                  "; the consumer reads the initial 0"});
      // RSP-W003: a loop-carried value flowing backwards in iteration space.
      if (prod.iter >= 0 && op.iter >= 0 && prod.iter > op.iter)
        emit({"RSP-W003", Severity::kWarning, locus_of(i, op),
              "op " + std::to_string(i) + " (iteration " +
                  std::to_string(op.iter) + ") consumes producer " +
                  std::to_string(p) + " from later iteration " +
                  std::to_string(prod.iter)});
      // RSP-W007: the operand has no single-hop route in the interconnect.
      // The simulators move values by index and never check this, so it is
      // a warning here; sched::check_legality rejects it on scheduler
      // output.
      if (!skip_replay[i] && !skip_replay[p] &&
          array.route(prod.pe, op.pe) == arch::RouteKind::kNone)
        emit({"RSP-W007", Severity::kWarning, locus_of(i, op),
              "op " + std::to_string(i) + " cannot receive its operand: no "
                  "single-hop route from producer " + std::to_string(p) +
                  " at PE (" + std::to_string(prod.pe.row) + ", " +
                  std::to_string(prod.pe.col) + ") to PE (" +
                  std::to_string(op.pe.row) + ", " +
                  std::to_string(op.pe.col) + ")"});
    }
    // RSP-W008: a unit that exists but sits on a row/column pool the PE's
    // bus switch does not reach (again simulator-legal: the engines index
    // units globally).
    if (!skip_replay[i] && ir::is_critical_op(op.kind) &&
        a.shares_multiplier() && op.unit && unit_in_pools(a, *op.unit)) {
      const auto reachable = a.sharing.reachable_units(array, op.pe);
      if (std::find(reachable.begin(), reachable.end(), *op.unit) ==
          reachable.end())
        emit({"RSP-W008", Severity::kWarning, locus_of(i, op),
              "op " + std::to_string(i) + " names shared unit " +
                  arch::to_string(*op.unit) + " unreachable from PE (" +
                  std::to_string(op.pe.row) + ", " +
                  std::to_string(op.pe.col) + ")"});
    }
  }

  // RSP-W002: dead values.
  for (std::size_t i = 0; i < n; ++i)
    if (ir::produces_value(ops[i].kind) && !consumed[i])
      emit({"RSP-W002", Severity::kWarning, locus_of(i, ops[i]),
            "op " + std::to_string(i) + " (" + ir::op_name(ops[i].kind) +
                ") computes a value no other op consumes"});

  // RSP-W004/W005: same-cycle conflicts on one memory port
  // (array, address). The engines resolve both deterministically in issue
  // order, but the outcome depends on that order, not the dataflow.
  std::map<std::tuple<int, std::string, long>,
           std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
      ports;  // (cycle, array, address) -> (load ops, store ops)
  for (std::size_t i = 0; i < n; ++i) {
    const sched::ScheduledOp& op = ops[i];
    if (!ir::is_memory_op(op.kind) || skip_replay[i]) continue;
    auto& [loads, stores] =
        ports[{op.cycle, op.array, static_cast<long>(op.address)}];
    (op.kind == ir::OpKind::kLoad ? loads : stores).push_back(i);
  }
  for (const auto& [port, users] : ports) {
    const auto& [loads, stores] = users;
    const auto& [cycle, name, address] = port;
    if (stores.size() > 1)
      emit({"RSP-W004", Severity::kWarning,
            locus_of(stores[1], ops[stores[1]]),
            "array '" + name + "'[" + std::to_string(address) +
                "] is stored " + std::to_string(stores.size()) +
                " times in cycle " + std::to_string(cycle)});
    if (!stores.empty() && !loads.empty())
      emit({"RSP-W005", Severity::kWarning, locus_of(loads[0], ops[loads[0]]),
            "array '" + name + "'[" + std::to_string(address) +
                "] is both loaded (op " + std::to_string(loads[0]) +
                ") and stored (op " + std::to_string(stores[0]) +
                ") in cycle " + std::to_string(cycle)});
  }

  // RSP-W006: aggregate shared-pool over-subscription — more critical
  // issues in one cycle than physical units exist, so no unit assignment
  // can ever legalise the cycle.
  if (a.shares_multiplier()) {
    const int total_units = a.sharing.total_units(array);
    std::map<int, int> critical_per_cycle;
    for (std::size_t i = 0; i < n; ++i)
      if (!skip_replay[i] && ir::is_critical_op(ops[i].kind))
        ++critical_per_cycle[ops[i].cycle];
    for (const auto& [cycle, count] : critical_per_cycle)
      if (count > total_units)
        emit({"RSP-W006", Severity::kWarning, Locus{-1, cycle, -1, -1},
              "cycle " + std::to_string(cycle) + " issues " +
                  std::to_string(count) +
                  " critical ops but the architecture has only " +
                  std::to_string(total_units) + " shared units"});
  }
}

LintReport lint_impl(const arch::Architecture& a,
                     const std::vector<sched::ScheduledOp>& ops, int length,
                     bool pre_construction) {
  LintReport report;
  const EmitFn collect = [&report](Finding f) {
    report.diagnostics.push_back(Diagnostic{
        f.rule, f.severity, f.locus, std::move(f.message), hint_for(f.rule)});
  };
  std::vector<char> skip_replay(ops.size(), 0);
  validation_pass(a, ops, length, pre_construction, collect, skip_replay);
  structural_pass(a, ops, length, collect, skip_replay);
  warning_pass(a, ops, collect, skip_replay);
  return report;
}

}  // namespace

LintReport lint_schedule(const arch::Architecture& architecture,
                         const std::vector<sched::ScheduledOp>& ops) {
  architecture.validate();
  // The length the ConfigurationContext constructor would compute, over the
  // ops it would accept; rejected ops are diagnosed, not measured.
  int length = 0;
  for (const sched::ScheduledOp& op : ops)
    if (op.cycle >= 0 && op.latency >= 1)
      length = std::max(length, op.cycle + op.latency);
  return lint_impl(architecture, ops, length, /*pre_construction=*/true);
}

LintReport lint_context(const sched::ConfigurationContext& context) {
  return lint_impl(context.architecture(), context.ops(), context.length(),
                   /*pre_construction=*/false);
}

void verify_context(const sched::ConfigurationContext& context) {
  const EmitFn raise = [](Finding f) {
    throw InvalidArgumentError(f.message);
  };
  std::vector<char> skip_replay(context.ops().size(), 0);
  validation_pass(context.architecture(), context.ops(), context.length(),
                  /*pre_construction=*/false, raise, skip_replay);
}

void verify_structural(const sched::ConfigurationContext& context) {
  const EmitFn raise = [](Finding f) { throw Error(f.message); };
  const std::vector<char> skip_replay(context.ops().size(), 0);
  structural_pass(context.architecture(), context.ops(), context.length(),
                  raise, skip_replay);
}

}  // namespace rsp::analysis
