// Hardware cost estimation — paper equation (2):
//
//   HWcost = n·m·(Sh_PEarea + Regarea + SWarea)
//            + Sh_Resarea·(n·shr + m·shc)   <   n·m·PEarea
//
// `estimate()` evaluates the raw equation with pre-synthesized component
// areas (what the RSP exploration loop uses), `synthesized()` additionally
// applies the calibrated logic-optimisation factor so the result is
// comparable with the paper's Table 2 synthesis column.
#pragma once

#include "arch/presets.hpp"
#include "synth/components.hpp"

namespace rsp::synth {

struct AreaBreakdown {
  double pe_each = 0.0;          ///< one PE (incl. its bus switch & regs share)
  double switch_each = 0.0;      ///< one bus switch
  double pipeline_regs_total = 0.0;
  double shared_units_total = 0.0;
  double raw_total = 0.0;        ///< eq. (2) left-hand side, no synth factor
  double synthesized_total = 0.0;///< raw_total × optimisation factor
};

class AreaModel {
 public:
  explicit AreaModel(ComponentLibrary library = ComponentLibrary())
      : lib_(std::move(library)) {}

  const ComponentLibrary& library() const { return lib_; }

  AreaBreakdown breakdown(const arch::Architecture& a) const;

  /// eq. (2) estimate in slices (pre-synthesis; used during exploration).
  double estimate(const arch::Architecture& a) const {
    return breakdown(a).raw_total;
  }

  /// Calibrated synthesized area in slices (Table 2 "Array" column).
  double synthesized(const arch::Architecture& a) const {
    return breakdown(a).synthesized_total;
  }

  /// eq. (2) constraint: does the RSP design cost less than the base array
  /// of the same geometry? (Always true for the paper's four topologies.)
  bool satisfies_cost_constraint(const arch::Architecture& a) const;

  /// Area reduction vs. the base architecture of the same geometry, in
  /// percent (Table 2 "R(%)" column).
  double reduction_percent(const arch::Architecture& a) const;

 private:
  ComponentLibrary lib_;
};

}  // namespace rsp::synth
