// Whole-architecture synthesis estimation = area model + clock model.
//
// `SynthesisModel::report()` produces one Table 2 row per architecture:
// PE area, switch area, array area, area reduction, PE path, switch delay,
// array clock, delay reduction.
#pragma once

#include <string>
#include <vector>

#include "synth/area_model.hpp"
#include "synth/clock_model.hpp"

namespace rsp::synth {

struct SynthesisReport {
  std::string arch_name;
  double pe_area = 0.0;       ///< slices, PE without its bus switch
  double switch_area = 0.0;   ///< slices, one bus switch (0 for base)
  double array_area = 0.0;    ///< slices, whole array after calibration
  double area_reduction = 0.0;///< % vs base, positive = smaller
  double pe_delay = 0.0;      ///< ns, PE/stage critical path
  double switch_delay = 0.0;  ///< ns
  double clock = 0.0;         ///< ns, system clock period
  double delay_reduction = 0.0;///< % vs base, positive = faster
};

class SynthesisModel {
 public:
  explicit SynthesisModel(ComponentLibrary library = ComponentLibrary())
      : area_(library), clock_(library) {}

  const AreaModel& area_model() const { return area_; }
  const ClockModel& clock_model() const { return clock_; }

  SynthesisReport report(const arch::Architecture& a) const;
  std::vector<SynthesisReport> report_suite(
      const std::vector<arch::Architecture>& suite) const;

  double area(const arch::Architecture& a) const {
    return area_.synthesized(a);
  }
  double clock_ns(const arch::Architecture& a) const {
    return clock_.clock_ns(a);
  }

 private:
  AreaModel area_;
  ClockModel clock_;
};

}  // namespace rsp::synth
