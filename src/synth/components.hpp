// Pre-synthesized component characterisation (paper Table 1).
//
// The paper evaluates each PE component once with RTL synthesis (Synplify
// Pro, Xilinx Virtex-II) and then performs all exploration with those
// numbers ("we can estimate the hardware cost of an RSP design with
// pre-synthesized architecture components"). This library plays the role of
// that database. Units: area in Virtex-II slices, delay in nanoseconds.
#pragma once

#include <cstdint>

#include "arch/resources.hpp"

namespace rsp::synth {

struct ComponentCost {
  double area_slices = 0.0;
  double delay_ns = 0.0;
};

/// Characterised component database.
class ComponentLibrary {
 public:
  /// The default library holds the paper's Table 1 measurements.
  ComponentLibrary();

  /// Area/delay of a primitive component.
  ComponentCost component(arch::Resource r) const;

  /// Monolithic base PE (Table 1 first row: 910 slices, 25.6 ns).
  ComponentCost base_pe() const { return base_pe_; }

  /// PE with the multiplier extracted (the paper's synthesis reports 489
  /// slices — slightly below 910-416 because the synthesizer re-optimises
  /// the remaining logic). Its critical path is mux + ALU + shift.
  ComponentCost shared_pe() const { return shared_pe_; }

  /// Pipeline register set added per shared multiplier and stage boundary.
  double pipeline_reg_area_per_boundary() const { return pipeline_reg_area_; }
  /// Setup/clk-q overhead a stage boundary adds to a stage path.
  double pipeline_reg_delay() const { return pipeline_reg_delay_; }

  /// Per-PE bus switch cost as a function of the number of shared units the
  /// switch can reach (1..4 measured in the paper: 10/34/55/68 slices and
  /// 0.7/1.2/1.8/2.0 ns; linear extrapolation beyond 4).
  ComponentCost bus_switch(int reachable_units) const;

  /// Intra-array routing overhead added to the system clock by the shared
  /// operand/result network, as a function of the *total* number of shared
  /// units and whether their outputs are registered (RSP). Calibrated on
  /// Table 2; linear extrapolation outside the measured points.
  double wire_load_ns(int total_units, bool pipelined_units) const;

  /// Fixed array-level routing margin of the base design
  /// (26.0 ns array vs 25.6 ns PE in Table 2).
  double base_array_margin_ns() const { return base_array_margin_; }

  /// Synthesis logic-optimisation factor: ratio of synthesized area to the
  /// plain sum of components. Calibrated on Table 2 (0.957 for the
  /// monolithic base design, 0.92 once the multiplier network is split out).
  double optimization_factor(bool shares) const {
    return shares ? shared_opt_factor_ : base_opt_factor_;
  }

  // --- mutation hooks for exploration of other technologies -------------
  void set_component(arch::Resource r, ComponentCost cost);
  void set_base_pe(ComponentCost cost) { base_pe_ = cost; }
  void set_shared_pe(ComponentCost cost) { shared_pe_ = cost; }

 private:
  ComponentCost mux_, alu_, multiplier_, shift_, output_reg_;
  ComponentCost base_pe_, shared_pe_;
  double pipeline_reg_area_ = 100.4;
  double pipeline_reg_delay_ = 0.5;
  double base_array_margin_ = 0.4;
  double base_opt_factor_ = 0.957;
  double shared_opt_factor_ = 0.92;
};

}  // namespace rsp::synth
