#include "synth/components.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rsp::synth {

ComponentLibrary::ComponentLibrary() {
  // Paper Table 1 (Virtex-II, Synplify Pro).
  mux_ = {58.0, 1.3};
  alu_ = {253.0, 11.5};
  multiplier_ = {416.0, 19.7};
  shift_ = {156.0, 2.5};
  // Output registers absorb the remaining PE area (910 - known components)
  // and the path margin that closes the 25.6 ns PE critical path.
  output_reg_ = {910.0 - (58.0 + 253.0 + 416.0 + 156.0), 2.1};
  base_pe_ = {910.0, 25.6};
  // Table 2: PE area drops to 489 once the multiplier is extracted; its
  // critical path becomes mux + ALU + shift = 1.3 + 11.5 + 2.5 = 15.3 ns,
  // matching the RSP PE delay column.
  shared_pe_ = {489.0, 15.3};
}

ComponentCost ComponentLibrary::component(arch::Resource r) const {
  switch (r) {
    case arch::Resource::kMultiplexer:
      return mux_;
    case arch::Resource::kAlu:
      return alu_;
    case arch::Resource::kArrayMultiplier:
      return multiplier_;
    case arch::Resource::kShiftLogic:
      return shift_;
    case arch::Resource::kOutputRegister:
      return output_reg_;
    case arch::Resource::kPipelineRegister:
      return {pipeline_reg_area_, pipeline_reg_delay_};
    case arch::Resource::kBusSwitch:
      throw InvalidArgumentError(
          "bus switch cost depends on its fan-out; use bus_switch(units)");
  }
  throw InternalError("unknown Resource");
}

void ComponentLibrary::set_component(arch::Resource r, ComponentCost cost) {
  switch (r) {
    case arch::Resource::kMultiplexer:
      mux_ = cost;
      return;
    case arch::Resource::kAlu:
      alu_ = cost;
      return;
    case arch::Resource::kArrayMultiplier:
      multiplier_ = cost;
      return;
    case arch::Resource::kShiftLogic:
      shift_ = cost;
      return;
    case arch::Resource::kOutputRegister:
      output_reg_ = cost;
      return;
    case arch::Resource::kPipelineRegister:
      pipeline_reg_area_ = cost.area_slices;
      pipeline_reg_delay_ = cost.delay_ns;
      return;
    case arch::Resource::kBusSwitch:
      throw InvalidArgumentError("bus switch cost is derived, not settable");
  }
  throw InternalError("unknown Resource");
}

ComponentCost ComponentLibrary::bus_switch(int reachable_units) const {
  if (reachable_units <= 0) return {0.0, 0.0};
  // Measured points (paper Table 2 SW columns), indexed by reachable units.
  static constexpr double kArea[] = {10.0, 34.0, 55.0, 68.0};
  static constexpr double kDelay[] = {0.7, 1.2, 1.8, 2.0};
  if (reachable_units <= 4)
    return {kArea[reachable_units - 1], kDelay[reachable_units - 1]};
  // Linear extrapolation using the last measured slope.
  const double area = kArea[3] + (reachable_units - 4) * (kArea[3] - kArea[2]);
  const double delay =
      kDelay[3] + (reachable_units - 4) * (kDelay[3] - kDelay[2]);
  return {area, delay};
}

double ComponentLibrary::wire_load_ns(int total_units,
                                      bool pipelined_units) const {
  if (total_units <= 0) return 0.0;
  // Calibrated on Table 2 at 8/16/24/32 total units. Registered (RSP) unit
  // outputs load the network less than combinational (RS) ones.
  static constexpr int kUnits[] = {8, 16, 24, 32};
  static constexpr double kRs[] = {0.55, 1.17, 1.49, 2.63};
  static constexpr double kRsp[] = {0.72, 0.76, 1.11, 1.53};
  const double* table = pipelined_units ? kRsp : kRs;

  if (total_units <= kUnits[0])
    return table[0] * static_cast<double>(total_units) / kUnits[0];
  for (int i = 1; i < 4; ++i) {
    if (total_units <= kUnits[i]) {
      const double t = static_cast<double>(total_units - kUnits[i - 1]) /
                       (kUnits[i] - kUnits[i - 1]);
      return table[i - 1] + t * (table[i] - table[i - 1]);
    }
  }
  const double slope = (table[3] - table[2]) / (kUnits[3] - kUnits[2]);
  return table[3] + slope * (total_units - kUnits[3]);
}

}  // namespace rsp::synth
