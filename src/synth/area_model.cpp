#include "synth/area_model.hpp"

#include "arch/bus_switch.hpp"

namespace rsp::synth {

AreaBreakdown AreaModel::breakdown(const arch::Architecture& a) const {
  a.validate();
  AreaBreakdown out;
  const int n_pes = a.array.num_pes();

  if (!a.shares_multiplier()) {
    out.pe_each = lib_.base_pe().area_slices;
    out.raw_total = out.pe_each * n_pes;
    out.synthesized_total = out.raw_total * lib_.optimization_factor(false);
    return out;
  }

  const int reachable = a.sharing.units_reachable_per_pe();
  const int total_units = a.sharing.total_units(a.array);

  out.switch_each = lib_.bus_switch(reachable).area_slices;
  out.pe_each = lib_.shared_pe().area_slices + out.switch_each;
  out.shared_units_total =
      lib_.component(arch::Resource::kArrayMultiplier).area_slices *
      total_units;
  if (a.pipelines_multiplier()) {
    const int boundaries = a.sharing.pipeline_stages - 1;
    out.pipeline_regs_total =
        lib_.pipeline_reg_area_per_boundary() * boundaries * total_units;
  }
  out.raw_total = out.pe_each * n_pes + out.shared_units_total +
                  out.pipeline_regs_total;
  out.synthesized_total = out.raw_total * lib_.optimization_factor(true);
  return out;
}

bool AreaModel::satisfies_cost_constraint(const arch::Architecture& a) const {
  const double base = lib_.base_pe().area_slices * a.array.num_pes();
  return estimate(a) < base;
}

double AreaModel::reduction_percent(const arch::Architecture& a) const {
  const arch::Architecture base =
      arch::base_architecture(a.array.rows, a.array.cols);
  const double base_area = synthesized(base);
  return 100.0 * (base_area - synthesized(a)) / base_area;
}

}  // namespace rsp::synth
