// The numbers the paper actually reports, for side-by-side comparison in
// benches and for calibration tests. Taken verbatim from Tables 1, 2, 4, 5
// of Kim et al., DATE 2005.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace rsp::synth::paper {

/// Table 1 row.
struct ComponentRow {
  std::string component;
  int area_slices;
  double area_ratio_percent;
  double delay_ns;
  double delay_ratio_percent;
};
const std::vector<ComponentRow>& table1();

/// Table 2 row.
struct SynthesisRow {
  std::string arch;          // "Base", "RS#1", ..., "RSP#4"
  double pe_area;            // slices
  double switch_area;        // slices (0 for base)
  double array_area;         // slices
  double area_reduction;     // %
  double pe_delay;           // ns
  double switch_delay;       // ns
  double clock;              // ns
  double delay_reduction;    // %
};
const std::vector<SynthesisRow>& table2();
/// Row by architecture name; throws NotFoundError for unknown names.
const SynthesisRow& table2_row(const std::string& arch);

/// Tables 4 and 5: one (kernel, architecture) performance cell.
struct PerformanceCell {
  int cycles;
  double execution_time_ns;
  double delay_reduction_percent;
  std::optional<int> stalls;  // nullopt for the base architecture
};

/// Kernel evaluation record: cells in suite order
/// [Base, RS#1..RS#4, RSP#1..RSP#4].
struct KernelRecord {
  std::string kernel;         // canonical kernel name
  long iterations;            // paper's iteration count annotation (0 = n/a)
  std::vector<PerformanceCell> cells;
};
const std::vector<KernelRecord>& table4();  // Livermore kernels
const std::vector<KernelRecord>& table5();  // DSP kernels
/// Lookup across both tables by kernel name.
const KernelRecord& kernel_record(const std::string& kernel);

/// Table 3: kernel op sets and multiplier pressure.
struct KernelInfo {
  std::string kernel;
  std::string op_set;   // "mult, add" etc.
  int max_mults_per_cycle;
};
const std::vector<KernelInfo>& table3();

}  // namespace rsp::synth::paper
