#include "synth/synthesis.hpp"

namespace rsp::synth {

SynthesisReport SynthesisModel::report(const arch::Architecture& a) const {
  SynthesisReport r;
  r.arch_name = a.name;

  const AreaBreakdown area = area_.breakdown(a);
  r.pe_area = a.shares_multiplier() ? area_.library().shared_pe().area_slices
                                    : area_.library().base_pe().area_slices;
  r.switch_area = area.switch_each;
  r.array_area = area.synthesized_total;
  r.area_reduction = area_.reduction_percent(a);

  const ClockBreakdown clk = clock_.breakdown(a);
  r.pe_delay = clk.pe_path_ns;
  r.switch_delay = clk.switch_ns;
  r.clock = clk.total_ns;
  r.delay_reduction = clock_.reduction_percent(a);
  return r;
}

std::vector<SynthesisReport> SynthesisModel::report_suite(
    const std::vector<arch::Architecture>& suite) const {
  std::vector<SynthesisReport> out;
  out.reserve(suite.size());
  for (const arch::Architecture& a : suite) out.push_back(report(a));
  return out;
}

}  // namespace rsp::synth
