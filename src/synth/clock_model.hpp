// System clock (critical path) model — paper Fig. 5 and Table 2.
//
// Base architecture: the monolithic PE path (mux → multiplier → shift →
// output register, 25.6 ns) plus a fixed array routing margin → 26.0 ns.
//
// RS: the extracted multiplier stays combinational, so the path now runs
// through the bus switch twice (operands out, product back):
//   clock = base PE path + switch delay(reachable units) + wire load(units).
//
// RSP: the shared multiplier is pipelined; the clock becomes the longest
// *stage*: max(primitive PE path = mux+ALU+shift = 15.3 ns,
//              multiplier/stages + pipeline register overhead)
// plus the same switch/wire terms. With 2 stages the primitive path
// dominates (15.3 > 19.7/2 + 0.5), which is why the paper stops at 2.
#pragma once

#include "arch/presets.hpp"
#include "synth/components.hpp"

namespace rsp::synth {

struct ClockBreakdown {
  double pe_path_ns = 0.0;    ///< longest path inside a PE / pipeline stage
  double switch_ns = 0.0;     ///< per-PE bus-switch traversal
  double wire_load_ns = 0.0;  ///< shared-network loading
  double margin_ns = 0.0;     ///< base array routing margin
  double total_ns = 0.0;      ///< system clock period
};

class ClockModel {
 public:
  explicit ClockModel(ComponentLibrary library = ComponentLibrary())
      : lib_(std::move(library)) {}

  const ComponentLibrary& library() const { return lib_; }

  ClockBreakdown breakdown(const arch::Architecture& a) const;

  /// System clock period in ns (Table 2 "Array" delay column).
  double clock_ns(const arch::Architecture& a) const {
    return breakdown(a).total_ns;
  }

  /// Delay reduction vs. the base architecture, percent (negative when the
  /// sharing network makes the clock slower, as for all RS designs).
  double reduction_percent(const arch::Architecture& a) const;

  /// Longest stage of a multiplier split into `stages` pipeline stages.
  double mult_stage_ns(int stages) const;

 private:
  ComponentLibrary lib_;
};

}  // namespace rsp::synth
