#include "synth/paper_reference.hpp"

#include "util/error.hpp"

namespace rsp::synth::paper {

const std::vector<ComponentRow>& table1() {
  static const std::vector<ComponentRow> rows = {
      {"PE", 910, 100.0, 25.6, 100.0},
      {"Multiplexer", 58, 6.37, 1.3, 12.89},
      {"ALU", 253, 27.80, 11.5, 44.92},
      {"Array multiplier", 416, 45.71, 19.7, 76.95},
      {"Shift logic", 156, 17.14, 2.5, 17.58},
  };
  return rows;
}

const std::vector<SynthesisRow>& table2() {
  static const std::vector<SynthesisRow> rows = {
      {"Base", 910, 0, 55739, 0.0, 25.6, 0.0, 26.0, 0.0},
      {"RS#1", 489, 10, 32446, 42.8, 25.6, 0.7, 26.85, -4.88},
      {"RS#2", 489, 34, 36816, 34.05, 25.6, 1.2, 27.97, -9.25},
      {"RS#3", 489, 55, 40577, 27.02, 25.6, 1.8, 28.89, -11.11},
      {"RS#4", 489, 68, 44768, 19.69, 25.6, 2.0, 30.23, -16.27},
      {"RSP#1", 489, 10, 33249, 40.35, 15.3, 0.7, 16.72, 34.69},
      {"RSP#2", 489, 34, 38422, 31.07, 15.3, 1.2, 17.26, 32.58},
      {"RSP#3", 489, 55, 42987, 22.88, 15.3, 1.8, 18.21, 29.97},
      {"RSP#4", 489, 68, 47981, 13.92, 15.3, 2.0, 18.83, 27.58},
  };
  return rows;
}

const SynthesisRow& table2_row(const std::string& arch) {
  for (const SynthesisRow& row : table2())
    if (row.arch == arch) return row;
  throw NotFoundError("no Table 2 row for architecture '" + arch + "'");
}

namespace {

// Helper to keep the table literals compact.
PerformanceCell cell(int cycles, double et, double dr) {
  return PerformanceCell{cycles, et, dr, std::nullopt};
}
PerformanceCell cell(int cycles, double et, double dr, int stalls) {
  return PerformanceCell{cycles, et, dr, stalls};
}

}  // namespace

const std::vector<KernelRecord>& table4() {
  static const std::vector<KernelRecord> rows = {
      {"Hydro",
       32,
       {cell(15, 390.0, 0.0), cell(19, 510.15, -30.80, 4),
        cell(15, 419.55, -7.58, 0), cell(15, 433.35, -11.11, 0),
        cell(15, 453.45, -16.27, 0), cell(21, 351.12, 10.0, 2),
        cell(19, 327.94, 15.92, 0), cell(19, 345.99, 11.28, 0),
        cell(19, 357.77, 8.26, 0)}},
      {"ICCG",
       32,
       {cell(18, 468.0, 0.0), cell(18, 483.3, -3.26, 0),
        cell(18, 503.46, -7.58, 0), cell(18, 520.02, -11.11, 0),
        cell(18, 544.14, -16.27, 0), cell(19, 317.68, 32.12, 0),
        cell(19, 327.94, 29.93, 0), cell(19, 345.99, 26.07, 0),
        cell(19, 357.77, 23.55, 0)}},
      {"Tri-diagonal",
       64,
       {cell(17, 442.0, 0.0), cell(17, 456.45, -3.26, 0),
        cell(17, 475.49, -7.58, 0), cell(17, 491.13, -11.11, 0),
        cell(17, 513.91, -16.27, 0), cell(18, 300.96, 31.91, 0),
        cell(18, 310.68, 29.71, 0), cell(18, 327.78, 25.84, 0),
        cell(18, 338.94, 23.31, 0)}},
      {"Inner product",
       128,
       {cell(21, 546.0, 0.0), cell(21, 563.85, -3.26, 0),
        cell(21, 587.37, -7.58, 0), cell(21, 606.69, -11.11, 0),
        cell(21, 634.83, -16.27, 0), cell(22, 367.84, 32.64, 0),
        cell(22, 379.72, 30.45, 0), cell(22, 400.62, 26.62, 0),
        cell(22, 414.26, 24.12, 0)}},
      {"State",
       16,
       {cell(20, 520.0, 0.0), cell(35, 939.75, -80.72, 15),
        cell(20, 559.4, -7.58, 0), cell(20, 577.8, -11.11, 0),
        cell(20, 604.6, -16.27, 0), cell(37, 618.64, -18.96, 14),
        cell(23, 396.68, 23.65, 0), cell(23, 418.83, 19.45, 0),
        cell(23, 433.09, 16.71, 0)}},
  };
  return rows;
}

const std::vector<KernelRecord>& table5() {
  static const std::vector<KernelRecord> rows = {
      {"2D-FDCT",
       0,
       {cell(32, 832.0, 0.0), cell(56, 1503.6, -80.72, 24),
        cell(38, 1062.86, -7.58, 6), cell(32, 924.48, -11.11, 0),
        cell(32, 967.36, -16.27, 0), cell(64, 1070.08, -28.61, 24),
        cell(40, 690.4, 17.01, 0), cell(40, 728.4, 12.45, 0),
        cell(40, 753.2, 9.47, 0)}},
      {"SAD",
       0,
       {cell(39, 1014.0, 0.0), cell(39, 1047.15, -3.26, 0),
        cell(39, 1090.83, -7.58, 0), cell(39, 1126.7, -11.11, 0),
        cell(39, 1178.97, -16.27, 0), cell(39, 652.08, 35.7, 0),
        cell(39, 673.14, 33.61, 0), cell(39, 710.19, 29.96, 0),
        cell(39, 734.37, 27.57, 0)}},
      {"MVM",
       64,
       {cell(19, 494.0, 0.0), cell(19, 510.15, -3.26, 0),
        cell(19, 531.43, -7.58, 0), cell(19, 548.91, -11.11, 0),
        cell(19, 574.37, -16.27, 0), cell(20, 334.4, 32.31, 0),
        cell(20, 345.2, 30.12, 0), cell(20, 364.2, 26.27, 0),
        cell(20, 376.6, 23.76, 0)}},
      {"FFT",
       32,
       {cell(23, 598.0, 0.0), cell(37, 993.45, -66.12, 14),
        cell(23, 643.31, -7.58, 0), cell(23, 664.47, -11.11, 0),
        cell(23, 695.29, -16.27, 0), cell(40, 668.8, -11.83, 13),
        cell(27, 466.02, 22.07, 0), cell(27, 491.67, 17.78, 0),
        cell(27, 508.41, 14.98, 0)}},
  };
  return rows;
}

const KernelRecord& kernel_record(const std::string& kernel) {
  for (const KernelRecord& r : table4())
    if (r.kernel == kernel) return r;
  for (const KernelRecord& r : table5())
    if (r.kernel == kernel) return r;
  throw NotFoundError("no Table 4/5 record for kernel '" + kernel + "'");
}

const std::vector<KernelInfo>& table3() {
  static const std::vector<KernelInfo> rows = {
      {"Hydro", "mult, add", 6},
      {"ICCG", "mult, sub", 4},
      {"Tri-diagonal", "mult, sub", 4},
      {"Inner product", "mult, add", 8},
      {"State", "mult, add", 7},
      {"2D-FDCT", "mult, shift, add, sub", 16},
      {"SAD", "abs, add", 0},
      {"MVM", "mult, add", 8},
      {"FFT", "add, sub, mult", 8},
  };
  return rows;
}

}  // namespace rsp::synth::paper
