#include "synth/clock_model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rsp::synth {

double ClockModel::mult_stage_ns(int stages) const {
  if (stages < 1) throw InvalidArgumentError("stages must be >= 1");
  const double mult = lib_.component(arch::Resource::kArrayMultiplier).delay_ns;
  if (stages == 1) return mult;
  return mult / stages + lib_.pipeline_reg_delay();
}

ClockBreakdown ClockModel::breakdown(const arch::Architecture& a) const {
  a.validate();
  ClockBreakdown out;

  if (!a.shares_multiplier()) {
    out.pe_path_ns = lib_.base_pe().delay_ns;
    out.margin_ns = lib_.base_array_margin_ns();
    out.total_ns = out.pe_path_ns + out.margin_ns;
    return out;
  }

  const int reachable = a.sharing.units_reachable_per_pe();
  const int total_units = a.sharing.total_units(a.array);
  out.switch_ns = lib_.bus_switch(reachable).delay_ns;
  out.wire_load_ns =
      lib_.wire_load_ns(total_units, a.pipelines_multiplier());

  if (!a.pipelines_multiplier()) {
    // The multiplication still completes within one cycle, so the cycle
    // must cover the whole monolithic PE path plus the shared-network trip.
    out.pe_path_ns = lib_.base_pe().delay_ns;
  } else {
    // Pipelined: the clock covers the longest stage.
    out.pe_path_ns = std::max(lib_.shared_pe().delay_ns,
                              mult_stage_ns(a.sharing.pipeline_stages));
  }
  out.total_ns = out.pe_path_ns + out.switch_ns + out.wire_load_ns;
  return out;
}

double ClockModel::reduction_percent(const arch::Architecture& a) const {
  const arch::Architecture base =
      arch::base_architecture(a.array.rows, a.array.cols);
  const double base_clock = clock_ns(base);
  return 100.0 * (base_clock - clock_ns(a)) / base_clock;
}

}  // namespace rsp::synth
