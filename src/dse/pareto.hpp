// Pareto-front extraction over two minimised objectives.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace rsp::dse {

/// Returns the indices of the Pareto-optimal items: item i survives unless
/// some j is no worse in both objectives and strictly better in one.
template <typename T>
std::vector<std::size_t> pareto_front(const std::vector<T>& items,
                                      std::function<double(const T&)> obj_a,
                                      std::function<double(const T&)> obj_b) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < items.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < items.size() && !dominated; ++j) {
      if (i == j) continue;
      const double ai = obj_a(items[i]), bi = obj_b(items[i]);
      const double aj = obj_a(items[j]), bj = obj_b(items[j]);
      const bool no_worse = aj <= ai && bj <= bi;
      const bool strictly_better = aj < ai || bj < bi;
      if (no_worse && strictly_better) dominated = true;
      // Exact duplicates: keep the first occurrence only.
      if (aj == ai && bj == bi && j < i) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

/// ε-relaxed Pareto front: item i is dropped only when some j is better by
/// more than a factor (1+ε) in *both* objectives. With ε > 0 the front also
/// keeps near-optimal points — useful when the objectives are optimistic
/// estimates and the final ranking uses exact evaluation.
template <typename T>
std::vector<std::size_t> epsilon_pareto_front(
    const std::vector<T>& items, std::function<double(const T&)> obj_a,
    std::function<double(const T&)> obj_b, double epsilon) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < items.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < items.size() && !dominated; ++j) {
      if (i == j) continue;
      if (obj_a(items[j]) * (1.0 + epsilon) <= obj_a(items[i]) &&
          obj_b(items[j]) * (1.0 + epsilon) <= obj_b(items[i]))
        dominated = true;
      // Exact duplicates: keep the first occurrence only.
      if (obj_a(items[j]) == obj_a(items[i]) &&
          obj_b(items[j]) == obj_b(items[i]) && j < i)
        dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace rsp::dse
