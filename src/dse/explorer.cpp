#include "dse/explorer.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "dse/pareto.hpp"
#include "sched/legality.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace rsp::dse {

std::string DesignPoint::label() const {
  if (is_base()) return "Base";
  std::string s;
  if (units_per_row > 0) s += std::to_string(units_per_row) + "r";
  if (units_per_col > 0)
    s += (s.empty() ? "" : "+") + std::to_string(units_per_col) + "c";
  if (stages > 1) s += "/p" + std::to_string(stages);
  return s;
}

const Candidate& ExplorationResult::best() const {
  if (selected < 0) throw NotFoundError("exploration selected no design");
  return candidates[static_cast<std::size_t>(selected)];
}

std::vector<const Candidate*> ExplorationResult::pareto_points() const {
  std::vector<const Candidate*> out;
  for (const Candidate& c : candidates)
    if (c.pareto) out.push_back(&c);
  return out;
}

void ExplorerConfig::validate() const {
  const auto reject = [](const std::string& what) {
    throw InvalidArgumentError("malformed explorer config: " + what);
  };
  if (max_units_per_row < 0) reject("'max_units_per_row' must be >= 0");
  if (max_units_per_col < 0) reject("'max_units_per_col' must be >= 0");
  if (max_stages < 1) reject("'max_stages' must be positive");
  if (!(max_area_ratio > 0.0)) reject("'max_area_ratio' must be positive");
  if (!(max_time_ratio > 0.0)) reject("'max_time_ratio' must be positive");
  if (!(pareto_epsilon >= 0.0))
    reject("'pareto_epsilon' must be non-negative");
}

Explorer::Explorer(arch::ArraySpec array, ExplorerConfig config,
                   synth::SynthesisModel synth)
    : array_(array), config_(config), synth_(std::move(synth)) {
  array_.validate();
  config_.validate();
}

void evaluate_exact(Candidate& cand, std::size_t program_count,
                    const MeasureFn& measure) {
  cand.evaluated = true;
  cand.exact_cycles = 0;
  cand.total_stalls = 0;
  for (std::size_t k = 0; k < program_count; ++k) {
    const sched::PerfPoint p = measure(k, cand.architecture);
    cand.exact_cycles += p.cycles;
    cand.total_stalls += p.stalls;
  }
  cand.exact_time_ns = static_cast<double>(cand.exact_cycles) * cand.clock_ns;
}

KernelPrep prepare_kernel(const kernels::Workload& workload) {
  const sched::LoopPipeliner mapper(workload.array);
  const sched::ContextScheduler scheduler;
  const arch::Architecture base =
      arch::base_architecture(workload.array.rows, workload.array.cols);
  sched::PlacedProgram program =
      mapper.map(workload.kernel, workload.hints, workload.reduction);
  sched::ConfigurationContext base_context =
      scheduler.schedule(program, base);
  sched::require_legal(base_context);
  return KernelPrep{std::move(program), std::move(base_context)};
}

arch::Architecture Explorer::base_architecture() const {
  return arch::base_architecture(array_.rows, array_.cols);
}

double Explorer::base_area_raw() const {
  return synth_.area_model().library().base_pe().area_slices *
         array_.num_pes();
}

std::vector<DesignPoint> Explorer::enumerate_points() const {
  std::vector<DesignPoint> points;
  for (int upr = 0; upr <= config_.max_units_per_row; ++upr)
    for (int upc = 0; upc <= config_.max_units_per_col; ++upc)
      for (int stages = 1; stages <= config_.max_stages; ++stages) {
        const DesignPoint point{upr, upc, stages};
        if (point.is_base() && stages > 1) continue;  // nothing to pipeline
        points.push_back(point);
      }
  return points;
}

arch::Architecture Explorer::point_architecture(
    const DesignPoint& point, const arch::Architecture& base) const {
  if (point.is_base()) return base;
  return arch::custom_architecture("RSP(" + point.label() + ")", array_.rows,
                                   array_.cols, point.units_per_row,
                                   point.units_per_col, point.stages);
}

Candidate Explorer::estimate_candidate(const DesignPoint& point,
                                       const arch::Architecture& base,
                                       std::size_t kernel_count,
                                       const EstimateFn& estimate,
                                       double base_area_raw,
                                       double base_time_ns) const {
  arch::Architecture target = point_architecture(point, base);
  long estimated_cycles = 0;
  for (std::size_t k = 0; k < kernel_count; ++k)
    estimated_cycles += estimate(k, target).estimated_cycles();
  return make_candidate(point, std::move(target), estimated_cycles,
                        base_area_raw, base_time_ns);
}

Candidate Explorer::make_candidate(const DesignPoint& point,
                                   arch::Architecture architecture,
                                   long estimated_cycles,
                                   double base_area_raw,
                                   double base_time_ns) const {
  Candidate cand;
  cand.point = point;
  cand.architecture = std::move(architecture);
  cand.area_estimate = synth_.area_model().estimate(cand.architecture);
  cand.area_synthesized = synth_.area(cand.architecture);
  cand.clock_ns = synth_.clock_ns(cand.architecture);
  cand.estimated_cycles = estimated_cycles;
  cand.estimated_time_ns =
      static_cast<double>(cand.estimated_cycles) * cand.clock_ns;

  if (!point.is_base() &&
      cand.area_estimate >= config_.max_area_ratio * base_area_raw) {
    cand.rejected = true;
    cand.reject_reason = "hardware cost too high (eq. 2)";
  } else if (cand.estimated_time_ns >
             config_.max_time_ratio * base_time_ns) {
    cand.rejected = true;
    cand.reject_reason = "performance too low";
  }
  return cand;
}

void Explorer::pareto_filter(ExplorationResult& result) const {
  std::vector<std::size_t> alive;
  for (std::size_t i = 0; i < result.candidates.size(); ++i)
    if (!result.candidates[i].rejected) alive.push_back(i);
  std::vector<Candidate> alive_cands;
  for (std::size_t i : alive) alive_cands.push_back(result.candidates[i]);
  const std::vector<std::size_t> front = epsilon_pareto_front<Candidate>(
      alive_cands,
      [](const Candidate& c) { return c.area_estimate; },
      [](const Candidate& c) { return c.estimated_time_ns; },
      config_.pareto_epsilon);
  for (std::size_t f : front) result.candidates[alive[f]].pareto = true;
}

PreparedExploration Explorer::prepare(
    const std::vector<kernels::Workload>& domain) const {
  if (domain.empty())
    throw InvalidArgumentError("exploration requires at least one kernel");

  // Step 1: initial configuration contexts on the base architecture.
  const arch::Architecture base = base_architecture();
  PreparedExploration prep;
  std::vector<sched::ConfigurationContext> base_contexts;
  ExplorationResult& result = prep.result;
  for (const kernels::Workload& w : domain) {
    if (w.array != array_)
      throw InvalidArgumentError("workload '" + w.name +
                                 "' targets a different array geometry");
    KernelPrep kernel_prep = prepare_kernel(w);
    prep.kernel_names.push_back(w.name);
    prep.programs.push_back(std::move(kernel_prep.program));
    base_contexts.push_back(std::move(kernel_prep.base_context));
    result.base_cycles += base_contexts.back().length();
  }
  result.base_area = synth_.area(base);
  const double base_clock = synth_.clock_ns(base);
  result.base_time_ns = static_cast<double>(result.base_cycles) * base_clock;

  // Step 2–3: enumerate and estimate.
  const EstimateFn estimate = [&base_contexts](
                                  std::size_t k,
                                  const arch::Architecture& target) {
    return core::estimate_performance(base_contexts[k], target);
  };
  const double area_raw = base_area_raw();
  for (const DesignPoint& point : enumerate_points())
    result.candidates.push_back(
        estimate_candidate(point, base, base_contexts.size(), estimate,
                           area_raw, result.base_time_ns));

  // Step 4: Pareto filter over the surviving estimates.
  pareto_filter(result);
  return prep;
}

ExplorationResult Explorer::explore(
    const std::vector<kernels::Workload>& domain) const {
  PreparedExploration prep = prepare(domain);
  ExplorationResult result = std::move(prep.result);

  // Step 5: exact evaluation of the Pareto points.
  const sched::ContextScheduler scheduler;
  for (Candidate& cand : result.candidates) {
    if (!cand.pareto) continue;
    evaluate_exact(cand, prep.programs.size(),
                   [&](std::size_t k, const arch::Architecture& a) {
                     return sched::measure(scheduler, prep.programs[k], a);
                   });
    RSP_LOG(kInfo) << "pareto point " << cand.point.label() << ": area "
                   << cand.area_synthesized << " slices, time "
                   << cand.exact_time_ns << " ns";
  }

  // Step 6: select the optimum.
  select_optimum(result);
  return result;
}

void Explorer::select_optimum(ExplorationResult& result) const {
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    const Candidate& c = result.candidates[i];
    if (!c.evaluated) continue;
    double score = 0.0;
    switch (config_.objective) {
      case Objective::kMinTime:
        score = c.exact_time_ns;
        break;
      case Objective::kMinArea:
        score = c.area_synthesized;
        break;
      case Objective::kMinAreaTimeProduct:
        score = c.exact_time_ns * c.area_synthesized;
        break;
    }
    if (score < best_score) {
      best_score = score;
      result.selected = static_cast<int>(i);
    }
  }
}

}  // namespace rsp::dse
