// RSP design space exploration (paper §4, Fig. 7).
//
// Inputs: a *domain* — the set of critical loops profiled from the target
// applications — and the base array geometry. The explorer:
//   1. maps every kernel once and schedules it on the base architecture
//      (the "initial configuration contexts");
//   2. enumerates RSP parameter combinations (units per row, units per
//      column, pipeline stages);
//   3. estimates hardware cost with eq. (2) and performance with the fast
//      stall upper bound, rejecting points that violate the cost constraint
//      or the performance floor;
//   4. keeps the Pareto points of (estimated area, estimated time);
//   5. evaluates the survivors exactly (full rescheduling of every kernel)
//      and selects the optimum under the chosen objective.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/estimate.hpp"
#include "kernels/workload.hpp"
#include "sched/mapper.hpp"
#include "sched/report.hpp"
#include "synth/synthesis.hpp"

namespace rsp::dse {

struct DesignPoint {
  int units_per_row = 0;
  int units_per_col = 0;
  int stages = 1;

  bool is_base() const { return units_per_row == 0 && units_per_col == 0; }
  std::string label() const;
};

struct Candidate {
  DesignPoint point;
  arch::Architecture architecture;
  double area_estimate = 0.0;      ///< eq. (2), slices
  double area_synthesized = 0.0;   ///< calibrated synthesis estimate
  double clock_ns = 0.0;
  long estimated_cycles = 0;       ///< Σ over kernels, fast upper bound
  double estimated_time_ns = 0.0;
  bool rejected = false;
  std::string reject_reason;
  bool pareto = false;
  // Exact numbers, filled for Pareto survivors only:
  bool evaluated = false;
  long exact_cycles = 0;
  double exact_time_ns = 0.0;
  long total_stalls = 0;
};

enum class Objective {
  kMinTime,             ///< fastest total execution time
  kMinArea,             ///< smallest array
  kMinAreaTimeProduct,  ///< area × time (default)
};

struct ExplorerConfig {
  int max_units_per_row = 4;
  int max_units_per_col = 4;
  int max_stages = 4;
  /// Reject when eq. (2) cost is not strictly below `max_area_ratio` × base.
  double max_area_ratio = 1.0;
  /// Reject when estimated time exceeds this multiple of the base time
  /// ("performance too low").
  double max_time_ratio = 1.5;
  /// Pareto relaxation: survivors may be up to (1+ε) worse in both
  /// objectives than a dominating point. Since the performance numbers at
  /// this stage are optimistic upper bounds, a small ε keeps genuinely
  /// competitive designs alive for exact evaluation.
  double pareto_epsilon = 0.05;
  Objective objective = Objective::kMinAreaTimeProduct;

  /// Throws InvalidArgumentError naming the offending field: negative unit
  /// bounds, max_stages < 1, non-positive ratios, or a negative epsilon
  /// would silently explore an empty or nonsensical grid. (Zero unit
  /// bounds stay legal — they restrict the grid to one sharing dimension,
  /// or to the base point alone.)
  void validate() const;
};

struct ExplorationResult {
  std::vector<Candidate> candidates;   ///< every enumerated point
  double base_area = 0.0;              ///< synthesized base area
  long base_cycles = 0;                ///< Σ base cycles over the domain
  double base_time_ns = 0.0;
  int selected = -1;                   ///< index into candidates, -1 = none

  const Candidate& best() const;
  std::vector<const Candidate*> pareto_points() const;
};

/// Steps 1–4 of the Fig. 7 flow: initial mapping, enumeration, estimation
/// and Pareto filtering — everything up to (but excluding) exact evaluation.
/// Exposed so alternative step-5 drivers (runtime::ParallelExplorer) can fan
/// the expensive rescheduling out without re-deriving the cheap stages.
struct PreparedExploration {
  std::vector<std::string> kernel_names;       ///< domain order
  std::vector<sched::PlacedProgram> programs;  ///< one per kernel, same order
  /// Candidates carry estimates and `pareto` flags; exact_* fields are
  /// still zero and `selected` is -1.
  ExplorationResult result;
};

/// Step-1 product for one kernel: the placed program and its schedule on
/// the base architecture (one of the paper's "initial configuration
/// contexts"). This is what the runtime's mapping memo-cache stores.
struct KernelPrep {
  sched::PlacedProgram program;
  sched::ConfigurationContext base_context;
};

/// The canonical step-1 computation for one kernel on its own array
/// geometry: map, schedule on the base architecture, legality-check.
/// Every prepare path — Explorer::prepare, runtime::prepare_parallel, the
/// mapping memo-cache fill — goes through this one function so the
/// step-1 products cannot drift between the serial and parallel flows.
KernelPrep prepare_kernel(const kernels::Workload& workload);

/// Measurement hook for `evaluate_exact`: returns the PerfPoint of placed
/// program `program_index` on `architecture`. The serial path calls
/// sched::measure directly; parallel paths may interpose a memo cache.
using MeasureFn = std::function<sched::PerfPoint(
    std::size_t program_index, const arch::Architecture& architecture)>;

/// Estimation hook for `Explorer::estimate_candidate`, the step-2/3
/// analogue of MeasureFn: returns the fast performance estimate of kernel
/// `kernel_index`'s base context on `architecture`. The serial path calls
/// core::estimate_performance directly; parallel paths may interpose the
/// mapping memo-cache's estimate table.
using EstimateFn = std::function<core::PerfEstimate(
    std::size_t kernel_index, const arch::Architecture& architecture)>;

/// Step 5 for a single Pareto survivor: accumulates the per-kernel
/// measurements (in program order, so the reduction is deterministic) into
/// `cand.exact_*`. No-op precondition: `cand.pareto` should be true.
void evaluate_exact(Candidate& cand, std::size_t program_count,
                    const MeasureFn& measure);

class Explorer {
 public:
  Explorer(arch::ArraySpec array, ExplorerConfig config = {},
           synth::SynthesisModel synth = synth::SynthesisModel());

  /// Runs the full Fig. 7 refinement flow on a domain of kernels.
  ExplorationResult explore(const std::vector<kernels::Workload>& domain) const;

  /// Steps 1–4 only (see PreparedExploration).
  PreparedExploration prepare(const std::vector<kernels::Workload>& domain) const;

  /// Step 6: fills `result.selected` with the best evaluated candidate
  /// under the configured objective (-1 when none is evaluated).
  void select_optimum(ExplorationResult& result) const;

  // ---- The individual prepare stages, exposed so parallel drivers
  // ---- (runtime::prepare_parallel) fan out exactly the serial loop
  // ---- bodies and stay bit-identical by construction. All are const and
  // ---- thread-safe (the models hold no mutable state).

  /// The base architecture every candidate is estimated against.
  arch::Architecture base_architecture() const;

  /// Raw eq. (2) base-PE area — the denominator of the cost-constraint
  /// ratio in step 3.
  double base_area_raw() const;

  /// Step 2's enumeration order: the serial loop nest over (units per row,
  /// units per column, stages), flattened. Candidate i of every prepare
  /// path corresponds to point i of this vector.
  std::vector<DesignPoint> enumerate_points() const;

  /// The architecture a design point denotes: `base` for the base point,
  /// the custom RSP(label) construction otherwise. Every path that turns a
  /// DesignPoint into hardware — estimation, exact evaluation, the
  /// distributed shard executors — goes through this one function so the
  /// construction cannot drift.
  arch::Architecture point_architecture(const DesignPoint& point,
                                        const arch::Architecture& base) const;

  /// Steps 2–3 for one design point: architecture construction, area/clock
  /// models, the estimated-cycle sum over kernels 0..kernel_count-1 (in
  /// domain order, through `estimate`) and the two reject checks. Pure
  /// function of its arguments when `estimate` is.
  Candidate estimate_candidate(const DesignPoint& point,
                               const arch::Architecture& base,
                               std::size_t kernel_count,
                               const EstimateFn& estimate,
                               double base_area_raw,
                               double base_time_ns) const;

  /// The candidate arithmetic of steps 2–3 given an already-summed
  /// estimated-cycle total: area/clock models, estimated time, and the two
  /// reject checks. estimate_candidate is exactly this after the per-kernel
  /// estimate sum; the distributed coordinator rebuilds candidates from
  /// worker-returned cycle sums through the same function, which is what
  /// makes the reconstruction bit-identical by construction
  /// (docs/DISTRIBUTED.md).
  Candidate make_candidate(const DesignPoint& point,
                           arch::Architecture architecture,
                           long estimated_cycles, double base_area_raw,
                           double base_time_ns) const;

  /// Step 4: flags the ε-Pareto front of the non-rejected candidates.
  void pareto_filter(ExplorationResult& result) const;

  const arch::ArraySpec& array() const { return array_; }
  const ExplorerConfig& config() const { return config_; }
  const synth::SynthesisModel& synthesis() const { return synth_; }

 private:
  arch::ArraySpec array_;
  ExplorerConfig config_;
  synth::SynthesisModel synth_;
};

}  // namespace rsp::dse
