#include "util/strings.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace rsp::util {

std::string format_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string format_trimmed(double value, int max_digits) {
  std::string s = format_fixed(value, max_digits);
  if (s.find('.') == std::string::npos) return s;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  if (s == "-0") s = "0";
  return s;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::ostringstream os;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) os << sep;
    os << parts[i];
  }
  return os.str();
}

std::string pad_left(const std::string& s, std::size_t w) {
  if (s.size() >= w) return s;
  return std::string(w - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t w) {
  if (s.size() >= w) return s;
  return s + std::string(w - s.size(), ' ');
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

std::string format_percent(double value) {
  return format_trimmed(value, 2);
}

}  // namespace rsp::util
