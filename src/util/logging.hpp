// Minimal leveled logger. The exploration and mapping passes emit progress
// through this interface so examples/benches can silence or redirect it.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace rsp::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns a human-readable name ("DEBUG", "INFO", ...).
const char* to_string(LogLevel level);

/// Sink invoked for every emitted record at or above the threshold.
/// All logging state is mutex-guarded, so any thread (the evaluation
/// runtime's workers included) may log concurrently; the sink runs under
/// the logger's lock and therefore sees one whole record at a time, in a
/// single global order. Sinks must not call back into the logger.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the process-wide sink; returns the previous one.
/// The default sink writes to stderr.
LogSink set_log_sink(LogSink sink);

/// Sets the minimum level that reaches the sink (default kWarning so
/// library use is quiet unless asked).
void set_log_threshold(LogLevel level);
LogLevel log_threshold();

/// Emits one record if `level` passes the threshold.
void log(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace rsp::util

#define RSP_LOG(level) ::rsp::util::detail::LogLine(::rsp::util::LogLevel::level)
