// One bounded, deterministic retry/backoff policy for every loop in the
// tree that re-attempts an operation: `api::connect_socket` retries, the
// DSE coordinator's shard redispatch, and the fleet health probes. A single
// policy type gives those loops one vocabulary (attempt budget, base
// backoff, linear/exponential growth, a per-delay cap) and one give-up
// message shape that always names the operation and the budget, instead of
// each call site hand-rolling its own sleep loop and error text.
//
// Delays are pure functions of the attempt count — no jitter, no clock
// reads — so tests can assert worst-case wall time and two runs of the
// same scenario behave identically.
#pragma once

#include <string>

namespace rsp::util {

struct RetryPolicy {
  enum class Backoff { kLinear, kExponential };

  /// Total tries allowed, the first attempt included; 1 = never retry.
  int attempts = 1;
  /// Base delay; the k-th retry waits delay_ms(k) first.
  int backoff_ms = 25;
  /// kLinear: backoff_ms × k — bounded, predictable worst case (the
  /// default for connect/redispatch). kExponential: backoff_ms × 2^(k-1) —
  /// for probes racing an unknown recovery time.
  Backoff backoff = Backoff::kLinear;
  /// Cap applied to any single delay, whatever the growth curve says.
  int max_backoff_ms = 60000;

  /// Throws InvalidArgumentError (message prefixed with `what`) on a
  /// nonsensical policy.
  void validate(const std::string& what) const;

  /// True while another try is allowed after `attempts_made` failures.
  bool should_retry(int attempts_made) const {
    return attempts_made < attempts;
  }

  /// Deterministic delay before attempt `attempts_made + 1`; 0 when no
  /// failure has happened yet or backoff is disabled.
  int delay_ms(int attempts_made) const;

  /// Sleeps for delay_ms(attempts_made); no-op when that is 0.
  void sleep_before_retry(int attempts_made) const;

  /// "<what> gave up after N attempt(s): <last_error>" — the one give-up
  /// message every retrying call site reports.
  std::string give_up(const std::string& what,
                      const std::string& last_error) const;
};

}  // namespace rsp::util
