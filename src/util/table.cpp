#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace rsp::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty())
    throw InvalidArgumentError("Table requires at least one column");
  align_.assign(header_.size(), Align::kRight);
  align_[0] = Align::kLeft;
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw InvalidArgumentError("row arity " + std::to_string(cells.size()) +
                               " does not match header arity " +
                               std::to_string(header_.size()));
  rows_.push_back(Row{false, std::move(cells)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

void Table::set_align(std::size_t column, Align align) {
  if (column >= align_.size())
    throw InvalidArgumentError("column out of range");
  align_[column] = align;
}

void Table::set_title(std::string title) { title_ = std::move(title); }

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      width[c] = std::max(width[c], row.cells[c].size());
  }

  auto rule = [&]() {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string padded = align_[c] == Align::kLeft
                                     ? pad_right(cells[c], width[c])
                                     : pad_left(cells[c], width[c]);
      s += " " + padded + " |";
    }
    return s + "\n";
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  os << rule() << line(header_) << rule();
  for (const Row& row : rows_) {
    if (row.separator)
      os << rule();
    else
      os << line(row.cells);
  }
  os << rule();
  return os.str();
}

}  // namespace rsp::util
