// Annotated mutex + scoped-lock types for clang thread-safety analysis.
//
// util::Mutex wraps std::mutex as an RSP_CAPABILITY so data members can be
// declared RSP_GUARDED_BY(mu_) and helpers RSP_REQUIRES(mu_); util::MutexLock
// is the RSP_SCOPED_CAPABILITY guard the concurrency core (ThreadPool,
// StripedMemoCache, SocketServer, DseCoordinator) locks with. Condition
// waiting goes through MutexLock::wait/wait_for — the analysis treats the
// capability as held across the wait, which matches the predicate-holds-
// under-lock contract std::condition_variable_any provides.
//
// Under non-clang compilers the annotations vanish (thread_annotations.hpp)
// and this is an ordinary mutex + scoped lock, so behaviour is identical.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace rsp::util {

class RSP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RSP_ACQUIRE() { mu_.lock(); }
  void unlock() RSP_RELEASE() { mu_.unlock(); }
  bool try_lock() RSP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over util::Mutex with condition-variable support. The
/// explicit lock()/unlock() pair exists for the rare "drop the lock around
/// a blocking call" window (see DseCoordinator::prober_loop); the
/// destructor releases only if currently held, so destructing in the
/// unlocked state is fine.
class RSP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RSP_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.mu_.lock();
  }
  ~MutexLock() RSP_RELEASE() {
    if (held_) mu_.mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Re-acquires after an explicit unlock().
  void lock() RSP_ACQUIRE() {
    mu_.mu_.lock();
    held_ = true;
  }
  void unlock() RSP_RELEASE() {
    held_ = false;
    mu_.mu_.unlock();
  }

  /// Blocks until `pred()` holds, releasing the mutex while waiting.
  /// The predicate is always evaluated with the mutex held.
  template <typename Predicate>
  void wait(std::condition_variable_any& cv, Predicate pred) {
    Adapter adapter{mu_.mu_};
    cv.wait(adapter, std::move(pred));
  }

  /// As wait(), giving up after `timeout`; returns pred()'s final value.
  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(std::condition_variable_any& cv,
                const std::chrono::duration<Rep, Period>& timeout,
                Predicate pred) {
    Adapter adapter{mu_.mu_};
    return cv.wait_for(adapter, timeout, std::move(pred));
  }

  /// Untimed single wakeup (no predicate) — callers loop themselves.
  void wait(std::condition_variable_any& cv) {
    Adapter adapter{mu_.mu_};
    cv.wait(adapter);
  }

  /// Waits until `deadline` or a notification, whichever first.
  template <typename Clock, typename Duration>
  void wait_until(std::condition_variable_any& cv,
                  const std::chrono::time_point<Clock, Duration>& deadline) {
    Adapter adapter{mu_.mu_};
    cv.wait_until(adapter, deadline);
  }

 private:
  // BasicLockable view of the underlying std::mutex for
  // condition_variable_any: the cv's internal unlock/relock cycle stays
  // invisible to the thread-safety analysis, which models the capability
  // as held across the whole wait (the contract the predicate sees).
  struct Adapter {
    std::mutex& mu;
    void lock() { mu.lock(); }
    void unlock() { mu.unlock(); }
  };

  Mutex& mu_;
  bool held_;
};

}  // namespace rsp::util
