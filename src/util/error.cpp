#include "util/error.hpp"

#include <sstream>

namespace rsp::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: (" << expr << ") at " << file << ":"
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace rsp::detail
