// Deterministic RNG (splitmix64 + xoshiro256**) so tests, benches and the
// workload generators reproduce bit-identical streams across platforms —
// std::mt19937 distributions are not portable across standard libraries.
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace rsp::util {

/// Deterministic 64-bit generator; same seed → same stream everywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    auto rotl = [](std::uint64_t v, int k) {
      return (v << k) | (v >> (64 - k));
    };
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    RSP_ASSERT_MSG(lo <= hi, "uniform() requires lo <= hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return lo + static_cast<std::int64_t>(v % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform01() < p; }

 private:
  std::uint64_t state_[4] = {};
};

}  // namespace rsp::util
