// ASCII table renderer used by every bench binary to print paper-style
// tables (Table 1..5) with aligned columns.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rsp::util {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// A simple row/column text table.
///
/// Usage:
///   Table t({"Arch", "Area", "R(%)"});
///   t.add_row({"Base", "55739", "0"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator at the current position.
  void add_separator();

  /// Overrides the default alignment (left for col 0, right otherwise).
  void set_align(std::size_t column, Align align);

  /// Optional caption printed above the table.
  void set_title(std::string title);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return header_.size(); }

  /// Renders with box-drawing using '-', '|', '+'.
  std::string render() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<Align> align_;
};

}  // namespace rsp::util
