// Deterministic fault injection for the socket transport — chaos testing
// without kill-timing races.
//
// A FaultPlan is parsed from a compact spec string and scripts byte-level
// misbehaviour at exact request ordinals, so a test can stage "the worker
// drops its connection on the 2nd request it ever sees" as a real
// multi-process scenario (`rsp_cli worker --fault-plan at=2:drop`) and
// still assert byte-identical DSE output. The grammar:
//
//   SPEC   := rule ("," rule)*
//   rule   := "at=" N ":" action        fire once, on the N-th request
//           | "seed=" S [":count=" K]   K pseudo-random rules from seed S
//   action := "drop"                    close the connection, no reply
//           | "delay=" MS               stall handling by MS milliseconds
//           | "truncate"                emit a partial line, then close
//           | "garbage"                 emit a non-JSON line first
//           | "refuse"                  answer {"ok": false} in-band
//
// Ordinals are 1-based and counted process-wide across connections by the
// FaultInjector, and every rule fires exactly once — so a worker that
// dropped its connection behaves normally after the coordinator's health
// probe re-admits it, which is exactly the shape re-admission tests need.
// Seeded rules expand deterministically (same seed → same plan, any
// platform, via util::Rng) to drop/delay/truncate/garbage at ordinals ≥ 2:
// ordinal 1 is the coordinator's worker_info handshake, and `refuse` is
// never generated because an in-band rejection is a deliberately fatal
// coordinator path, not a recoverable fault.
#pragma once

#include <mutex>
#include <string>
#include <vector>

namespace rsp::util {

struct FaultAction {
  enum class Kind { kNone, kDrop, kDelay, kTruncate, kGarbage, kRefuse };
  Kind kind = Kind::kNone;
  int delay_ms = 0;  ///< kDelay only
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses the grammar above; throws InvalidArgumentError naming the
  /// offending rule on any malformed spec.
  static FaultPlan parse(const std::string& spec);

  /// Canonical "at=N:action" form, seeded rules expanded — round-trips
  /// through parse() to an identical plan.
  std::string spec() const;

  bool empty() const { return rules_.empty(); }
  std::size_t size() const { return rules_.size(); }

 private:
  struct Rule {
    long at = 0;
    FaultAction action;
  };
  std::vector<Rule> rules_;
  friend class FaultInjector;
};

/// Thread-safe runtime state of one plan: counts request ordinals
/// process-wide (shared across connections) and fires each rule at most
/// once. One injector per process; hand the same shared_ptr to every
/// connection's serve loop.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Called once per request line; returns the scripted action for this
  /// ordinal (kNone almost always).
  FaultAction on_message();

  long messages() const;  ///< request ordinals observed so far
  long fired() const;     ///< rules fired so far

 private:
  mutable std::mutex mu_;
  FaultPlan plan_;
  std::vector<bool> fired_;
  long count_ = 0;
  long fired_count_ = 0;
};

}  // namespace rsp::util
