// Stable, platform-independent hashing. std::hash makes no cross-platform
// (or even cross-run) guarantees, so anything persisted or sharded — the
// runtime's EvalCache keys in particular — goes through these instead.
#pragma once

#include <cstdint>
#include <string_view>

namespace rsp::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a over a byte string; same input → same value on every platform.
constexpr std::uint64_t fnv1a(std::string_view bytes,
                              std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// splitmix64 finalizer: decorrelates near-identical hash values so they
/// spread uniformly over hash-table shards (see EvalCache::shard_for).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace rsp::util
