// Small string/number formatting helpers used by the table writers and the
// schedule pretty-printers.
#pragma once

#include <string>
#include <vector>

namespace rsp::util {

/// Formats `value` with exactly `digits` digits after the decimal point
/// (round-half-away-from-zero, like the paper's tables).
std::string format_fixed(double value, int digits);

/// Formats `value` trimming trailing zeros ("26.85", "26", "16.72").
std::string format_trimmed(double value, int max_digits = 2);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Left/right pads `s` with spaces to width `w` (no-op if already wider).
std::string pad_left(const std::string& s, std::size_t w);
std::string pad_right(const std::string& s, std::size_t w);

/// Returns true if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> split(const std::string& s, char sep);

/// Formats a percentage like the paper: "42.8", "-16.27", "0".
std::string format_percent(double value);

}  // namespace rsp::util
