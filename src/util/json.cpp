#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace rsp::util {

Json& Json::set(const std::string& key, Json value) {
  if (kind_ != Kind::kObject)
    throw InvalidArgumentError("set() requires a JSON object");
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  fields_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray)
    throw InvalidArgumentError("push() requires a JSON array");
  items_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kObject) return fields_.size();
  if (kind_ == Kind::kArray) return items_.size();
  return 0;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::render(std::string& out, bool pretty, int depth) const {
  const std::string indent = pretty ? std::string(2 * (depth + 1), ' ') : "";
  const std::string closing = pretty ? std::string(2 * depth, ' ') : "";
  const char* nl = pretty ? "\n" : "";
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber: {
      if (std::isfinite(number_) && number_ == std::floor(number_) &&
          std::abs(number_) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        out += buf;
      } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.10g", number_);
        out += buf;
      }
      break;
    }
    case Kind::kString:
      out += '"' + escape(string_) + '"';
      break;
    case Kind::kObject: {
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        out += indent + '"' + escape(fields_[i].first) + "\":";
        if (pretty) out += ' ';
        fields_[i].second.render(out, pretty, depth + 1);
        if (i + 1 != fields_.size()) out += ',';
        out += nl;
      }
      out += closing + '}';
      break;
    }
    case Kind::kArray: {
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += indent;
        items_[i].render(out, pretty, depth + 1);
        if (i + 1 != items_.size()) out += ',';
        out += nl;
      }
      out += closing + ']';
      break;
    }
  }
}

std::string Json::dump(bool pretty) const {
  std::string out;
  render(out, pretty, 0);
  return out;
}

}  // namespace rsp::util
