#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/error.hpp"

namespace rsp::util {

Json& Json::set(const std::string& key, Json value) {
  if (kind_ != Kind::kObject)
    throw InvalidArgumentError("set() requires a JSON object");
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  fields_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::merge(Json other) {
  if (kind_ != Kind::kObject || other.kind_ != Kind::kObject)
    throw InvalidArgumentError("merge() requires JSON objects");
  for (auto& [key, value] : other.fields_) set(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray)
    throw InvalidArgumentError("push() requires a JSON array");
  items_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kObject) return fields_.size();
  if (kind_ == Kind::kArray) return items_.size();
  return 0;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool)
    throw InvalidArgumentError("as_bool() requires a JSON bool");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber)
    throw InvalidArgumentError("as_number() requires a JSON number");
  return number_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString)
    throw InvalidArgumentError("as_string() requires a JSON string");
  return string_;
}

int Json::as_int(const std::string& what) const {
  // Name the offending field on a mistyped value too — the bare
  // as_number() message would not say which field was wrong.
  if (kind_ != Kind::kNumber)
    throw InvalidArgumentError(what + " must be an integer");
  const double value = as_number();
  if (!(value >= -2147483648.0 && value <= 2147483647.0) ||
      value != static_cast<double>(static_cast<int>(value)))
    throw InvalidArgumentError(what + " must be an integer");
  return static_cast<int>(value);
}

bool Json::contains(const std::string& key) const {
  if (kind_ != Kind::kObject) return false;
  for (const auto& [k, v] : fields_)
    if (k == key) return true;
  return false;
}

std::vector<std::string> Json::keys() const {
  if (kind_ != Kind::kObject)
    throw InvalidArgumentError("keys() requires a JSON object");
  std::vector<std::string> out;
  out.reserve(fields_.size());
  for (const auto& [k, v] : fields_) out.push_back(k);
  return out;
}

const Json& Json::at(const std::string& key) const {
  if (kind_ != Kind::kObject)
    throw InvalidArgumentError("at(key) requires a JSON object");
  for (const auto& [k, v] : fields_)
    if (k == key) return v;
  throw NotFoundError("no JSON field '" + key + "'");
}

const Json& Json::at(std::size_t index) const {
  if (kind_ != Kind::kArray)
    throw InvalidArgumentError("at(index) requires a JSON array");
  if (index >= items_.size())
    throw InvalidArgumentError("JSON array index " + std::to_string(index) +
                               " out of range (size " +
                               std::to_string(items_.size()) + ")");
  return items_[index];
}

namespace {

// Recursive-descent parser over the document; positions are byte offsets so
// error messages can point at the offending character.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw InvalidArgumentError("JSON parse error at offset " +
                               std::to_string(pos_) + ": " + why);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::strlen(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
      case '[': {
        // Bounded recursion: containers are the only recursive productions,
        // so pathological nesting fails cleanly instead of blowing the stack.
        if (depth_ >= kMaxDepth) fail("nesting depth exceeds limit");
        ++depth_;
        Json value = text_[pos_] == '{' ? parse_object() : parse_array();
        --depth_;
        return value;
      }
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Json();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_whitespace();
      const std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj.set(key, parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          out += parse_unicode_escape();
          break;
        default:
          fail("invalid escape sequence");
      }
    }
  }

  // The four hex digits of one \uXXXX escape (the "\u" already consumed).
  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9')
        code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        code |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("invalid hex digit in \\u escape");
    }
    return code;
  }

  // Decodes \uXXXX to UTF-8. Astral-plane code points arrive as a UTF-16
  // surrogate *pair* of escapes (an emoji in a request id, say) and decode
  // to the 4-byte UTF-8 sequence; a lone surrogate has no code point and is
  // rejected either way.
  std::string parse_unicode_escape() {
    unsigned code = parse_hex4();
    if (code >= 0xDC00 && code <= 0xDFFF)
      fail("lone low surrogate in \\u escape");
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u')
        fail("high surrogate not followed by a \\u escape");
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF)
        fail("high surrogate not followed by a low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    }
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  // Matches the JSON number grammar exactly: -?int frac? exp?, where int has
  // no leading zero and `+5`, `.5`, `5.` are rejected (strtod alone would
  // accept them).
  Json parse_number() {
    const std::size_t start = pos_;
    auto digit = [this] {
      return pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]));
    };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit()) fail("invalid value");
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit()) fail("expected digit after decimal point");
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digit()) fail("expected digit in exponent");
      while (digit()) ++pos_;
    }
    // from_chars is locale-independent (strtod would mis-parse "1.5" under a
    // comma-decimal LC_NUMERIC) and reports overflow to +-inf as an error.
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec == std::errc::result_out_of_range)
      fail("number out of double range");
    if (ec != std::errc() || ptr != last || !std::isfinite(value))
      fail("invalid number");
    return Json(value);
  }

  static constexpr int kMaxDepth = 1000;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

std::string Json::escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::render(std::string& out, bool pretty, int depth) const {
  const std::string indent = pretty ? std::string(2 * (depth + 1), ' ') : "";
  const std::string closing = pretty ? std::string(2 * depth, ' ') : "";
  const char* nl = pretty ? "\n" : "";
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber: {
      if (!std::isfinite(number_)) {
        // JSON has no inf/nan literal; null keeps the document parseable.
        out += "null";
        break;
      }
      if (number_ == std::floor(number_) && std::abs(number_) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        out += buf;
      } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.10g", number_);
        out += buf;
      }
      break;
    }
    case Kind::kString:
      out += '"' + escape(string_) + '"';
      break;
    case Kind::kObject: {
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        out += indent + '"' + escape(fields_[i].first) + "\":";
        if (pretty) out += ' ';
        fields_[i].second.render(out, pretty, depth + 1);
        if (i + 1 != fields_.size()) out += ',';
        out += nl;
      }
      out += closing + '}';
      break;
    }
    case Kind::kArray: {
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += indent;
        items_[i].render(out, pretty, depth + 1);
        if (i + 1 != items_.size()) out += ',';
        out += nl;
      }
      out += closing + ']';
      break;
    }
  }
}

std::string Json::dump(bool pretty) const {
  std::string out;
  render(out, pretty, 0);
  return out;
}

}  // namespace rsp::util
