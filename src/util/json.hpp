// Minimal JSON value, writer and parser (objects, arrays, strings, numbers,
// bools). Used to export evaluation and exploration reports machine-readably
// and to read them back in tests and tooling; no external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rsp::util {

class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double d) : kind_(Kind::kNumber), number_(d) {}
  Json(int v) : kind_(Kind::kNumber), number_(v) {}
  Json(std::int64_t v)
      : kind_(Kind::kNumber), number_(static_cast<double>(v)) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Throws InvalidArgumentError with a byte offset on malformed input.
  static Json parse(const std::string& text);

  /// Object field setter (creates/overwrites); returns *this for chaining.
  Json& set(const std::string& key, Json value);
  /// Moves every field of `other` (an object) into this object with `set`
  /// semantics — existing keys are overwritten, new ones appended in
  /// `other`'s order. Values are moved, not copied, so folding a large
  /// payload into an envelope is cheap.
  Json& merge(Json other);
  /// Array append.
  Json& push(Json value);

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  std::size_t size() const;

  /// Scalar accessors; throw InvalidArgumentError on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Strict integer read: the number must be integral and in int range
  /// (range-checked before the cast — out-of-range double→int is UB), so
  /// e.g. 3.7 fails instead of silently truncating to 3. `what` names the
  /// field in the InvalidArgumentError message ("<what> must be an
  /// integer").
  int as_int(const std::string& what) const;

  /// True when this is an object with a field named `key`.
  bool contains(const std::string& key) const;
  /// Field names of an object in insertion order; throws
  /// InvalidArgumentError when this is not an object.
  std::vector<std::string> keys() const;
  /// Object field lookup; throws NotFoundError for a missing key and
  /// InvalidArgumentError when this is not an object.
  const Json& at(const std::string& key) const;
  /// Array element lookup; throws InvalidArgumentError out of range.
  const Json& at(std::size_t index) const;

  /// Compact rendering (no whitespace) or pretty with 2-space indent.
  std::string dump(bool pretty = false) const;

  /// Escapes a string for embedding in JSON (without quotes).
  static std::string escape(const std::string& s);

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  void render(std::string& out, bool pretty, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, Json>> fields_;  // object, ordered
  std::vector<Json> items_;                           // array
};

}  // namespace rsp::util
