// Clang thread-safety-analysis attribute macros (RSP_GUARDED_BY and
// friends), following the LLVM ThreadSafetyAnalysis documentation's
// reference header. Under clang the annotations make lock contracts
// machine-checked at compile time (`-Wthread-safety -Werror`, a dedicated
// CI job); under every other compiler they expand to nothing, so the
// annotated tree builds identically with GCC.
//
// Conventions (docs/ANALYSIS.md): data members guarded by a mutex carry
// RSP_GUARDED_BY(mu); private helpers that expect a lock already held carry
// RSP_REQUIRES(mu); util::Mutex / util::MutexLock (util/mutex.hpp) are the
// annotated capability types the concurrency core locks with.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define RSP_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define RSP_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

#define RSP_CAPABILITY(x) RSP_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define RSP_SCOPED_CAPABILITY RSP_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define RSP_GUARDED_BY(x) RSP_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define RSP_PT_GUARDED_BY(x) RSP_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define RSP_ACQUIRED_BEFORE(...) \
  RSP_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define RSP_ACQUIRED_AFTER(...) \
  RSP_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define RSP_REQUIRES(...) \
  RSP_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define RSP_REQUIRES_SHARED(...) \
  RSP_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define RSP_ACQUIRE(...) \
  RSP_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define RSP_ACQUIRE_SHARED(...) \
  RSP_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define RSP_RELEASE(...) \
  RSP_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RSP_RELEASE_SHARED(...) \
  RSP_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define RSP_TRY_ACQUIRE(...) \
  RSP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define RSP_EXCLUDES(...) \
  RSP_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define RSP_ASSERT_CAPABILITY(x) \
  RSP_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define RSP_RETURN_CAPABILITY(x) \
  RSP_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define RSP_NO_THREAD_SAFETY_ANALYSIS \
  RSP_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
