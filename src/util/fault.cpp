#include "util/fault.hpp"

#include <algorithm>
#include <cstdint>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace rsp::util {

namespace {

/// Strict positive-integer field: the whole of `text` must be digits.
long parse_count(const std::string& text, const std::string& rule,
                 const char* what) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos)
    throw InvalidArgumentError("fault plan rule '" + rule + "': " + what +
                               " must be a positive integer");
  long value = 0;
  for (const char c : text) {
    value = value * 10 + (c - '0');
    if (value > 1000000000)
      throw InvalidArgumentError("fault plan rule '" + rule + "': " + what +
                                 " is out of range");
  }
  if (value < 1)
    throw InvalidArgumentError("fault plan rule '" + rule + "': " + what +
                               " must be a positive integer");
  return value;
}

FaultAction parse_action(const std::string& text, const std::string& rule) {
  FaultAction action;
  if (text == "drop") {
    action.kind = FaultAction::Kind::kDrop;
  } else if (text == "truncate") {
    action.kind = FaultAction::Kind::kTruncate;
  } else if (text == "garbage") {
    action.kind = FaultAction::Kind::kGarbage;
  } else if (text == "refuse") {
    action.kind = FaultAction::Kind::kRefuse;
  } else if (text.rfind("delay=", 0) == 0) {
    action.kind = FaultAction::Kind::kDelay;
    action.delay_ms = static_cast<int>(std::min(
        parse_count(text.substr(6), rule, "delay"), 60000L));
  } else {
    throw InvalidArgumentError(
        "fault plan rule '" + rule + "': unknown action '" + text +
        "' (drop, delay=MS, truncate, garbage, refuse)");
  }
  return action;
}

std::string action_spec(const FaultAction& action) {
  switch (action.kind) {
    case FaultAction::Kind::kDrop:
      return "drop";
    case FaultAction::Kind::kDelay:
      return "delay=" + std::to_string(action.delay_ms);
    case FaultAction::Kind::kTruncate:
      return "truncate";
    case FaultAction::Kind::kGarbage:
      return "garbage";
    case FaultAction::Kind::kRefuse:
      return "refuse";
    case FaultAction::Kind::kNone:
      break;
  }
  return "none";
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.find_first_not_of(" \t") == std::string::npos)
    throw InvalidArgumentError("fault plan spec is empty");
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string rule = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (rule.empty())
      throw InvalidArgumentError("fault plan has an empty rule");

    if (rule.rfind("at=", 0) == 0) {
      const std::size_t colon = rule.find(':');
      if (colon == std::string::npos)
        throw InvalidArgumentError("fault plan rule '" + rule +
                                   "': expected at=N:action");
      Rule r;
      r.at = parse_count(rule.substr(3, colon - 3), rule, "message ordinal");
      r.action = parse_action(rule.substr(colon + 1), rule);
      plan.rules_.push_back(r);
    } else if (rule.rfind("seed=", 0) == 0) {
      // Deterministic expansion: same seed, same plan, any platform. Only
      // recoverable faults (never refuse), never ordinal 1 — the handshake
      // must pass so the seeded chaos exercises quarantine + re-admission
      // rather than failing the run at connect time.
      std::size_t colon = rule.find(':');
      long count = 1;
      const std::string seed_text =
          rule.substr(5, std::min(colon, rule.size()) - 5);
      if (colon != std::string::npos) {
        const std::string tail = rule.substr(colon + 1);
        if (tail.rfind("count=", 0) != 0)
          throw InvalidArgumentError("fault plan rule '" + rule +
                                     "': expected seed=S[:count=K]");
        count = parse_count(tail.substr(6), rule, "count");
        if (count > 32)
          throw InvalidArgumentError("fault plan rule '" + rule +
                                     "': count must be at most 32");
      }
      Rng rng(static_cast<std::uint64_t>(
          parse_count(seed_text, rule, "seed")));
      for (long i = 0; i < count; ++i) {
        Rule r;
        r.at = rng.uniform(2, 40);
        switch (rng.uniform(0, 3)) {
          case 0:
            r.action.kind = FaultAction::Kind::kDrop;
            break;
          case 1:
            r.action.kind = FaultAction::Kind::kDelay;
            r.action.delay_ms = static_cast<int>(rng.uniform(1, 25));
            break;
          case 2:
            r.action.kind = FaultAction::Kind::kTruncate;
            break;
          default:
            r.action.kind = FaultAction::Kind::kGarbage;
            break;
        }
        plan.rules_.push_back(r);
      }
    } else {
      throw InvalidArgumentError("fault plan rule '" + rule +
                                 "': expected at=N:action or seed=S");
    }
    if (comma == spec.size()) break;
  }
  std::stable_sort(
      plan.rules_.begin(), plan.rules_.end(),
      [](const Rule& a, const Rule& b) { return a.at < b.at; });
  return plan;
}

std::string FaultPlan::spec() const {
  std::string out;
  for (const Rule& rule : rules_) {
    if (!out.empty()) out += ",";
    out += "at=" + std::to_string(rule.at) + ":" + action_spec(rule.action);
  }
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), fired_(plan_.rules_.size(), false) {}

FaultAction FaultInjector::on_message() {
  std::lock_guard<std::mutex> lk(mu_);
  ++count_;
  for (std::size_t i = 0; i < plan_.rules_.size(); ++i) {
    if (fired_[i] || plan_.rules_[i].at != count_) continue;
    fired_[i] = true;
    ++fired_count_;
    return plan_.rules_[i].action;
  }
  return {};
}

long FaultInjector::messages() const {
  std::lock_guard<std::mutex> lk(mu_);
  return count_;
}

long FaultInjector::fired() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fired_count_;
}

}  // namespace rsp::util
