// Error-handling primitives shared by every rsp library.
//
// The libraries throw `rsp::Error` for contract violations that a caller can
// recover from (malformed graphs, infeasible architecture parameters, ...).
// Internal invariants use RSP_ASSERT, which throws `rsp::InternalError` so a
// test harness can observe the failure instead of aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace rsp {

/// Base class of all exceptions thrown by the rsp libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller passed arguments that violate a documented precondition.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// A requested entity (node, kernel, component, ...) does not exist.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

/// The combination of inputs is understood but cannot be satisfied
/// (e.g. a kernel needs more PEs than the array provides).
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
};

/// An internal invariant was violated; indicates a bug in this library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace rsp

/// Internal-invariant check. Active in all build types: the schedulers are
/// control-plane code where correctness dominates the cost of a branch.
#define RSP_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::rsp::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
    }                                                                 \
  } while (false)

#define RSP_ASSERT_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::rsp::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                 \
  } while (false)
