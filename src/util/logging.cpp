#include "util/logging.hpp"

#include <iostream>
#include <mutex>

namespace rsp::util {

namespace {

// One mutex guards the sink, the threshold and every emission. Sink
// invocation deliberately happens *under* the lock: records from runtime
// worker threads arrive at the sink whole and in a single global order,
// and a sink swapped out by set_log_sink can never be entered again after
// the swap returns. The contract (documented on LogSink) is that sinks
// must not call back into the logger.
std::mutex g_mutex;
LogLevel g_threshold = LogLevel::kWarning;

void default_sink(LogLevel level, const std::string& message) {
  std::cerr << "[rsp:" << to_string(level) << "] " << message << '\n';
}

LogSink& sink_storage() {
  static LogSink sink = default_sink;
  return sink;
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogSink set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  LogSink previous = sink_storage();
  sink_storage() = std::move(sink);
  return previous;
}

void set_log_threshold(LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_threshold = level;
}

LogLevel log_threshold() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_threshold;
}

void log(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (static_cast<int>(level) < static_cast<int>(g_threshold)) return;
  if (sink_storage()) sink_storage()(level, message);
}

}  // namespace rsp::util
