#include "util/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/error.hpp"

namespace rsp::util {

void RetryPolicy::validate(const std::string& what) const {
  if (attempts < 1)
    throw InvalidArgumentError(what + ": 'attempts' must be positive");
  if (backoff_ms < 0)
    throw InvalidArgumentError(what + ": 'backoff_ms' must be non-negative");
  if (max_backoff_ms < 0)
    throw InvalidArgumentError(what +
                               ": 'max_backoff_ms' must be non-negative");
}

int RetryPolicy::delay_ms(int attempts_made) const {
  if (attempts_made < 1 || backoff_ms <= 0) return 0;
  long long delay;
  if (backoff == Backoff::kLinear) {
    delay = static_cast<long long>(backoff_ms) * attempts_made;
  } else {
    // Saturate the doubling count: 2^30 × any positive base is already far
    // past every practical cap, and the shift must never overflow.
    const int doublings = std::min(attempts_made - 1, 30);
    delay = static_cast<long long>(backoff_ms) << doublings;
  }
  return static_cast<int>(std::min<long long>(delay, max_backoff_ms));
}

void RetryPolicy::sleep_before_retry(int attempts_made) const {
  const int delay = delay_ms(attempts_made);
  if (delay > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

std::string RetryPolicy::give_up(const std::string& what,
                                 const std::string& last_error) const {
  return what + " gave up after " + std::to_string(attempts) +
         (attempts == 1 ? " attempt: " : " attempts: ") + last_error;
}

}  // namespace rsp::util
