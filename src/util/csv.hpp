// CSV emission for machine-readable experiment outputs; every bench binary
// can dump its table as CSV next to the pretty-printed version so downstream
// plotting does not have to scrape ASCII art.
#pragma once

#include <string>
#include <vector>

namespace rsp::util {

/// Accumulates rows and renders RFC-4180-ish CSV (quotes fields containing
/// commas, quotes or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }

  /// Full document including header line.
  std::string render() const;

  /// Writes to `path`; throws rsp::Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quotes a single CSV field if needed.
std::string csv_escape(const std::string& field);

}  // namespace rsp::util
