#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace rsp::util {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty())
    throw InvalidArgumentError("CsvWriter requires at least one column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw InvalidArgumentError("CSV row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::render() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) os << ',';
      os << csv_escape(cells[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open for writing: " + path);
  out << render();
  if (!out) throw Error("failed writing: " + path);
}

}  // namespace rsp::util
